GO ?= go

.PHONY: check fmt vet test race build cover bench-transport bench-fleet bench-obs bench-adversary bench-image bench-federation

## check: the full tier-1 gate — formatting, vet, build, tests with the
## race detector (the lifecycle churn stress and the federation
## cross-shard churn stress must pass under -race), and the coverage
## floor on the telemetry packages.
check: fmt vet race cover

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## cover: enforce per-package coverage floors — the observability layer
## (obs registry/exposition, trace recorder), the Controller (lifecycle
## plus crash recovery), the journal persistence layer, the Backend
## scheduler (dispatch, lease reclaim, draining), the Provider facade
## (capacity splitting, multi-part instances, rebind), the transport
## fast path (framing, binary codec, coordinator/node loops), the fleet
## simulation harness (SoA engine, timing wheel integration, analytic
## cross-validation), the federation layer (consistent-hash ring,
## cross-shard rebalancing, journal failover), the netsim layer (links,
## faults, and the byzantine adversary plan), and the DSM-CC carousel
## codec (hashes, delta cycles, chunk cache, receiver interop).
COVER_PKGS ?= ./internal/obs:85 ./internal/trace:85 ./internal/span:80 ./internal/core/controller:85 ./internal/journal:78 ./internal/core/backend:82 ./internal/core/provider:80 ./internal/transport:75 ./internal/fleet:75 ./internal/federation:75 ./internal/netsim:85 ./internal/dsmcc:80
cover:
	@for entry in $(COVER_PKGS); do \
		pkg="$${entry%%:*}"; floor="$${entry##*:}"; \
		pct="$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		ok="$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
		if [ "$$ok" != 1 ]; then \
			echo "$$pkg: coverage $$pct% below floor $$floor%"; exit 1; \
		fi; \
		echo "$$pkg: coverage $$pct% (floor $$floor%)"; \
	done

## bench-transport: regenerate the transport fast-path regression gate
## (BENCH_transport.json) — fails if the broadcast encode counter is not
## flat in session count or the binary codec's alloc win drops below 2x.
bench-transport:
	$(GO) run ./cmd/oddci-bench -sweep transport -out BENCH_transport.json

## bench-fleet: regenerate the million-PNA harness gate
## (BENCH_fleet.json) — wakeup→quorum at n = 10³…10⁶ in one process,
## failing if any availability or ramp-up curve leaves its analytic
## tolerance.
bench-fleet:
	$(GO) run ./cmd/oddci-bench -sweep fleet -out BENCH_fleet.json

## bench-obs: regenerate the tracing overhead gate (BENCH_obs.json) —
## fails if the sampled-off span collector costs the binary task
## hand-off more than 2% versus the untraced baseline, or allocates.
bench-obs:
	$(GO) run ./cmd/oddci-bench -sweep obs -out BENCH_obs.json

## bench-adversary: regenerate the byzantine hardening gate
## (BENCH_adversary.json) — full adversarial deployments over fraction ×
## replication × seed, failing on any wrong commit at Replication 5, on
## quarantine coverage below 95% of the byzantine population, or if
## arming credibility tracking costs the honest dispatch path more
## than 3%.
bench-adversary:
	$(GO) run ./cmd/oddci-bench -sweep adversary -out BENCH_adversary.json

## bench-image: regenerate the delta image distribution gate
## (BENCH_image.json) — re-air wire bytes must stay within 1.25x the
## changed module payload at 1/16, 1/4 and full deltas, cache-warm and
## legacy receivers must both converge (the latter under 20% section
## loss), and transport staging encodes must be flat in session count.
bench-image:
	$(GO) run ./cmd/oddci-bench -sweep image -out BENCH_image.json

## bench-federation: regenerate the sharded control plane gate
## (BENCH_federation.json) — convergence at 1→16 coordinator shards must
## stay within 1.15x the single-shard baseline, a killed shard must
## journal-fail-over and reconverge with zero duplicate wakeups (also
## re-run at 10^6 PNAs in the SoA engine), and the shared chunk cache
## must hit on every shard after the first.
bench-federation:
	$(GO) run ./cmd/oddci-bench -sweep federation -out BENCH_federation.json
