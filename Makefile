GO ?= go

.PHONY: check fmt vet test race build cover

## check: the full tier-1 gate — formatting, vet, build, tests with the
## race detector (the lifecycle churn stress must pass under -race),
## and the coverage floor on the telemetry packages.
check: fmt vet race cover

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## cover: enforce a coverage floor on the observability layer — the
## obs registry/exposition code and the trace recorder.
COVER_FLOOR ?= 85
cover:
	@for pkg in ./internal/obs ./internal/trace; do \
		pct="$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		ok="$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
		if [ "$$ok" != 1 ]; then \
			echo "$$pkg: coverage $$pct% below floor $(COVER_FLOOR)%"; exit 1; \
		fi; \
		echo "$$pkg: coverage $$pct% (floor $(COVER_FLOOR)%)"; \
	done
