GO ?= go

.PHONY: check fmt vet test race build

## check: the full tier-1 gate — formatting, vet, build, tests with the
## race detector (the lifecycle churn stress must pass under -race).
check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
