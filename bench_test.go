package oddci

// Benchmarks regenerating every table and figure of the paper, one per
// evaluation artifact (quick sweeps; run cmd/oddci-sim for the full
// versions), plus product benchmarks of the hot paths.

import (
	"testing"
	"time"

	"oddci/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Config{Seed: 2009 + int64(i), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables)+len(res.Figs) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkTable1Scalability regenerates Table I quantified: staging
// setup time vs N for OddCI and the comparator infrastructures.
func BenchmarkTable1Scalability(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2BlastSTB regenerates Table II: BLAST runtimes on the
// STB (in use / standby) vs the reference PC.
func BenchmarkTable2BlastSTB(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Remote regenerates Table III: remote BLAST over the
// direct channel.
func BenchmarkTable3Remote(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkWakeup regenerates the §5.1 wakeup-overhead analysis.
func BenchmarkWakeup(b *testing.B) { benchExperiment(b, "wakeup") }

// BenchmarkFig6Efficiency regenerates Figure 6 (efficiency vs Φ).
func BenchmarkFig6Efficiency(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Makespan regenerates Figure 7 (makespan vs Φ).
func BenchmarkFig7Makespan(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkAblationProbabilityGate measures instance-sizing accuracy of
// the wakeup probability gate.
func BenchmarkAblationProbabilityGate(b *testing.B) { benchExperiment(b, "abl-prob") }

// BenchmarkAblationChurn measures instance maintenance under churn.
func BenchmarkAblationChurn(b *testing.B) { benchExperiment(b, "abl-churn") }

// BenchmarkAblationHeartbeat measures Controller consolidation
// throughput.
func BenchmarkAblationHeartbeat(b *testing.B) { benchExperiment(b, "abl-heartbeat") }

// BenchmarkAblationCarousel contrasts carousel receiver strategies.
func BenchmarkAblationCarousel(b *testing.B) { benchExperiment(b, "abl-carousel") }

// BenchmarkChurnEfficiency runs the churn-vs-efficiency extension sweep.
func BenchmarkChurnEfficiency(b *testing.B) { benchExperiment(b, "churn-eff") }

// BenchmarkAblationTransport compares the DTV and IP-multicast
// substrates' wakeup distributions.
func BenchmarkAblationTransport(b *testing.B) { benchExperiment(b, "abl-transport") }

// BenchmarkEndToEndSmallJob runs a complete live deployment (32 STBs,
// 128 tasks) per iteration: the product's end-to-end hot path.
func BenchmarkEndToEndSmallJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{Nodes: 32, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		job, err := (&Generator{Name: "bench", Tasks: 128, MeanSeconds: 5,
			InputBytes: 512, OutputBytes: 512, ImageBytes: 1 << 20}).Generate()
		if err != nil {
			b.Fatal(err)
		}
		h, err := sys.SubmitJob(job)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.CreateInstance(InstanceSpec{
			Image: WorkerImage(1 << 20), Target: 32, InitialProbability: 1,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunJob(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualHoursPerSecond measures simulation speed: how much
// virtual time one deployment-hour of idle heartbeating costs.
func BenchmarkVirtualHoursPerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(Options{Nodes: 100, Seed: int64(i),
			HeartbeatPeriod: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		sys.After(time.Hour, sys.Shutdown)
		sys.Wait()
	}
}
