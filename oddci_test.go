package oddci

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := New(Options{Nodes: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, err := (&Generator{
		Name: "facade", Tasks: 128, MeanSeconds: 5,
		InputBytes: 512, OutputBytes: 512, ImageBytes: 1 << 20,
	}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateInstance(InstanceSpec{
		Image:              WorkerImage(1 << 20),
		Target:             32,
		InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ms, err := sys.RunJob(h)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 {
		t.Fatalf("makespan %v", ms)
	}
	if len(h.Results()) != 128 {
		t.Fatalf("results = %d", len(h.Results()))
	}
}

func TestFacadeCustomApp(t *testing.T) {
	sys, err := New(Options{Nodes: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The app must stay resident: an instance whose application exits
	// immediately is recomposed by the maintenance loop (fresh
	// launches), which is correct but not what this test counts.
	ran := 0
	sys.RegisterApp("myapp", func(env *Env) error {
		ran++
		env.Execute(1)
		for env.Sleep(time.Minute) {
		}
		return nil
	})
	img := &Image{Name: "custom", EntryPoint: "myapp", Payload: make([]byte, 10000)}
	if _, err := sys.CreateInstance(InstanceSpec{
		Image: img, Target: 8, InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sys.After(5*time.Minute, sys.Shutdown)
	sys.Wait()
	if ran != 8 {
		t.Fatalf("custom app ran on %d of 8 nodes", ran)
	}
}

func TestFacadeAnalytic(t *testing.T) {
	p := Figure6Defaults(100, 10000).WithPhi(1000)
	if e := p.Efficiency(); e < 0.9 || e > 1 {
		t.Fatalf("efficiency = %v", e)
	}
}

func TestFacadeMeasuredMatchesModel(t *testing.T) {
	// The headline library promise: a simulated run lands near eq. (1).
	const nodes, ratio = 24, 10
	p := Figure6Defaults(ratio, nodes).WithPhi(100)
	sys, err := New(Options{Nodes: nodes, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	job, err := (&Generator{
		Name:        "model",
		Tasks:       ratio * nodes,
		MeanSeconds: p.TaskSeconds,
		InputBytes:  int(p.TaskInBits / 8),
		OutputBytes: int(p.TaskOutBits / 8),
		ImageBytes:  int(p.ImageBits / 8),
	}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitJob(job)
	if err != nil {
		t.Fatal(err)
	}
	// Instantiate after the PNA Xlets are resident (steady state);
	// creating at t=0 instead races the Xlet distribution and costs up
	// to one extra carousel cycle.
	createAt := sys.Now().Add(10 * time.Second)
	sys.After(10*time.Second, func() {
		if _, err := sys.CreateInstance(InstanceSpec{
			Image:              WorkerImage(int(p.ImageBits / 8)),
			Target:             nodes,
			InitialProbability: 1,
		}); err != nil {
			t.Errorf("create: %v", err)
			sys.Shutdown()
		}
	})
	var measured time.Duration
	h.OnComplete(func(at time.Time) {
		measured = at.Sub(createAt)
		sys.Shutdown()
	})
	sys.Wait()
	if measured == 0 {
		t.Fatal("job did not complete")
	}
	// Synchronized live joins beat the random-phase closed form's 1.5
	// cycle wakeup; allow the band between ~0.55× and 1.1×.
	model := p.Makespan()
	rel := measured.Seconds() / model
	if math.IsNaN(rel) || rel < 0.55 || rel > 1.1 {
		t.Fatalf("measured %.1fs vs model %.1fs (ratio %.2f)", measured.Seconds(), model, rel)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestFacadeRealTimeSmoke(t *testing.T) {
	// A tiny wall-clock run: scaled-down sizes so it finishes fast.
	sys, err := New(Options{
		Nodes: 3, Seed: 4, RealTime: true,
		Beta: 800e6, Delta: 100e6, // fast channels: milliseconds of staging
		HeartbeatPeriod:   200 * time.Millisecond,
		MaintenancePeriod: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := (&Generator{Name: "rt", Tasks: 6, MeanSeconds: 0.02,
		InputBytes: 128, OutputBytes: 128, ImageBytes: 4096}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateInstance(InstanceSpec{
		Image:              WorkerImage(4096),
		Target:             3,
		InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	h.OnComplete(func(time.Time) {
		sys.Shutdown()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("real-time run did not complete in 30s")
	}
	sys.Wait()
	if len(h.Results()) != 6 {
		t.Fatalf("results = %d", len(h.Results()))
	}
}

func TestFacadeTimeline(t *testing.T) {
	sys, err := New(Options{Nodes: 4, Seed: 5, TraceCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateInstance(InstanceSpec{
		Image: WorkerImage(10000), Target: 4, InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sys.After(3*time.Minute, sys.Shutdown)
	sys.Wait()
	evs := sys.TraceEvents()
	joins := 0
	for _, ev := range evs {
		if ev.Kind == TraceJoin {
			joins++
		}
	}
	if joins != 4 {
		t.Fatalf("trace joins = %d, want 4", joins)
	}
	if sys.Timeline(0) == "" {
		t.Fatal("empty timeline render")
	}

	off, err := New(Options{Nodes: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if off.TraceEvents() != nil {
		t.Fatal("tracing should be off by default")
	}
	off.Shutdown()
	off.Wait()
}

// TestFacadeCrashRestart drives the durable control plane through the
// facade: create, hard-stop, restart from Options.StateDir, and verify
// the instance state and journal telemetry survive the round trip.
func TestFacadeCrashRestart(t *testing.T) {
	sys, err := New(Options{
		Nodes: 8, Seed: 4, StateDir: t.TempDir(), Metrics: true,
		HeartbeatPeriod: 15 * time.Second, MaintenancePeriod: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashController(); err == nil {
		// Sanity: the very first crash must succeed; only a double
		// crash or a missing StateDir errors. Restart immediately.
		if err := sys.CrashController(); err == nil {
			t.Fatal("double crash accepted")
		}
		if err := sys.RestartController(); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Fatal(err)
	}

	inst, err := sys.CreateInstance(InstanceSpec{
		Image: WorkerImage(1 << 16), Target: 8,
		InitialProbability: 1, HeartbeatPeriod: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		preBusy, postBusy, postWake int
		crashErr, restartErr, stErr error
		appends                     float64
		recoveredMetric             float64
	)
	sys.After(2*time.Minute, func() {
		st, err := inst.Status()
		if err != nil {
			stErr = err
			return
		}
		preBusy = st.Busy
		crashErr = sys.CrashController()
	})
	sys.After(3*time.Minute, func() { restartErr = sys.RestartController() })
	sys.After(7*time.Minute, func() {
		st, err := inst.Status()
		if err != nil {
			stErr = err
		} else {
			postBusy, postWake = st.Busy, st.Wakeups
		}
		appends, _ = sys.Metric("oddci_journal_appends_total")
		recoveredMetric, _ = sys.Metric("oddci_controller_instances_recovered_total")
		sys.Shutdown()
	})
	sys.Wait()

	if stErr != nil || crashErr != nil || restartErr != nil {
		t.Fatalf("status/crash/restart errors: %v / %v / %v", stErr, crashErr, restartErr)
	}
	if preBusy != 8 || postBusy != 8 {
		t.Fatalf("busy across crash: pre=%d post=%d, want 8", preBusy, postBusy)
	}
	if postWake != 1 {
		t.Fatalf("wakeups after restart = %d, want 1 (re-adopted, not re-woken)", postWake)
	}
	if appends < 1 {
		t.Fatalf("journal appends metric = %v, want ≥1", appends)
	}
	if recoveredMetric != 1 {
		t.Fatalf("recovered-instances metric = %v, want 1", recoveredMetric)
	}
}

// TestFacadeCausalTrace drives a simulated deployment with span
// collection on and asserts the whole wakeup → join → image-load →
// dve-start → dispatch → commit causal chain lands in one connected
// tree, reachable through the facade accessors that /trace serves.
func TestFacadeCausalTrace(t *testing.T) {
	sys, err := New(Options{Nodes: 4, Seed: 7, SpanCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	job, err := (&Generator{Name: "traced", Tasks: 16, MeanSeconds: 2,
		InputBytes: 128, OutputBytes: 128, ImageBytes: 10000}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateInstance(InstanceSpec{
		Image: WorkerImage(10000), Target: 4, InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunJob(h); err != nil {
		t.Fatal(err)
	}

	traces := sys.Spans().Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	// The wakeup trace is the one rooted at the controller broadcast;
	// it must be a single connected tree covering all five layers.
	var names map[string]int
	for _, tr := range traces {
		if len(tr.Spans) == 0 || tr.Spans[0].Name != "wakeup" {
			continue
		}
		if !tr.Connected() {
			t.Fatalf("wakeup trace disconnected:\n%s", tr.RenderWaterfall())
		}
		names = map[string]int{}
		for _, d := range tr.Spans {
			names[d.Name]++
		}
		break
	}
	if names == nil {
		t.Fatal("no wakeup-rooted trace retained")
	}
	for _, layer := range []string{"join", "image-load", "dve-start", "dispatch", "commit"} {
		if names[layer] == 0 {
			t.Fatalf("wakeup trace has no %q span (got %v)", layer, names)
		}
	}
	if names["commit"] != 16 {
		t.Fatalf("commit spans = %d, want 16", names["commit"])
	}

	// The facade accessors feed /trace and /trace/{id}.
	idx := sys.RenderTraces(0)
	if !strings.Contains(idx, "wakeup") {
		t.Fatalf("RenderTraces index missing the wakeup root:\n%s", idx)
	}
	id := traces[len(traces)-1].ID.String()
	for _, tr := range traces {
		if tr.Spans[0].Name == "wakeup" {
			id = tr.ID.String()
			break
		}
	}
	wf, ok := sys.RenderTrace(id)
	if !ok || !strings.Contains(wf, "dve-start") {
		t.Fatalf("RenderTrace(%s): ok=%v\n%s", id, ok, wf)
	}
	var jsonl strings.Builder
	if err := sys.WriteSpansJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"name":"dispatch"`) {
		t.Fatal("WriteSpansJSONL missing dispatch spans")
	}

	// Spans stay off (and free) unless asked for.
	off, err := New(Options{Nodes: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if off.Spans() != nil || !strings.Contains(off.RenderTraces(0), "disabled") {
		t.Fatal("span collection should be off by default")
	}
	off.Shutdown()
	off.Wait()
}
