package middleware

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/ait"
	"oddci/internal/dsmcc"
	"oddci/internal/simtime"
	"oddci/internal/xlet"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

// fakeXlet records lifecycle calls.
type fakeXlet struct {
	mu         sync.Mutex
	ctx        xlet.Context
	inits      int
	starts     int
	pauses     int
	destroys   int
	initErr    error
	refuseSoft bool
}

func (f *fakeXlet) InitXlet(ctx xlet.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ctx = ctx
	f.inits++
	return f.initErr
}
func (f *fakeXlet) StartXlet() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.starts++
	return nil
}
func (f *fakeXlet) PauseXlet() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pauses++
}
func (f *fakeXlet) DestroyXlet(unconditional bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !unconditional && f.refuseSoft {
		return errors.New("busy")
	}
	f.destroys++
	return nil
}

type rig struct {
	clk   *simtime.Sim
	bcast *dsmcc.Broadcaster
	sig   *Signalling
}

func newRig(t *testing.T, files ...dsmcc.File) *rig {
	t.Helper()
	clk := simtime.NewSim(epoch)
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(files); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, bcast: b, sig: NewSignalling(clk, 0)}
}

func pnaAIT(code ait.ControlCode) *ait.AIT {
	return &ait.AIT{
		Type:    ait.TypeDVBJ,
		Version: 1,
		Applications: []ait.Application{
			{OrgID: 0xDD, AppID: 1, ControlCode: code, Name: "PNA", ClassFile: "pna.xlet"},
		},
	}
}

func newManager(t *testing.T, r *rig, cfg Config) *Manager {
	t.Helper()
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	m, err := NewManager(r.clk, r.bcast, r.sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAutostartLaunchesXlet(t *testing.T) {
	code := bytes.Repeat([]byte{0x50}, 100000)
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: code})
	m := newManager(t, r, Config{})
	fx := &fakeXlet{}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.sig.Publish(pnaAIT(ait.Autostart)); err != nil {
		t.Fatal(err)
	}
	r.clk.Wait()
	if fx.inits != 1 || fx.starts != 1 {
		t.Fatalf("inits=%d starts=%d, want 1,1", fx.inits, fx.starts)
	}
	apps := m.Apps()
	if len(apps) != 1 || apps[0].State != xlet.Started {
		t.Fatalf("apps: %+v", apps)
	}
	if m.LaunchErrors != 0 {
		t.Fatalf("launch errors: %d", m.LaunchErrors)
	}
}

func TestAutostartIdempotentAcrossRepetitions(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 1000)})
	m := newManager(t, r, Config{})
	launches := 0
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { launches++; return &fakeXlet{} })
	m.Start()
	table := pnaAIT(ait.Autostart)
	// Three repetitions of the same AIT.
	for i := 0; i < 3; i++ {
		r.sig.Publish(table)
	}
	r.clk.Wait()
	if launches != 1 {
		t.Fatalf("launched %d instances, want 1", launches)
	}
}

func TestKillDestroysXlet(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 1000)})
	m := newManager(t, r, Config{})
	fx := &fakeXlet{refuseSoft: true}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	r.sig.Publish(pnaAIT(ait.Kill))
	r.clk.Wait()
	if fx.destroys != 1 {
		t.Fatalf("destroys = %d (KILL is unconditional)", fx.destroys)
	}
	if len(m.Apps()) != 0 {
		t.Fatalf("apps still present: %+v", m.Apps())
	}
}

func TestAuthenticationFailureBlocksLaunch(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: []byte("evil")})
	m := newManager(t, r, Config{
		Authenticate: func(name string, code []byte) error {
			return errors.New("bad signature")
		},
	})
	fx := &fakeXlet{}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	if fx.inits != 0 {
		t.Fatal("unauthenticated code ran")
	}
	if m.AuthFailures != 1 {
		t.Fatalf("auth failures = %d", m.AuthFailures)
	}
	if len(m.Apps()) != 0 {
		t.Fatal("rejected app left registered")
	}
}

func TestUnknownClassFileCountsError(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: []byte{1}})
	m := newManager(t, r, Config{})
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	if m.LaunchErrors == 0 {
		t.Fatal("missing factory not recorded")
	}
}

func TestStopDestroysRunningApps(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 1000)})
	m := newManager(t, r, Config{})
	fx := &fakeXlet{}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	m.Stop()
	if fx.destroys != 1 {
		t.Fatalf("destroys = %d after power-off", fx.destroys)
	}
	// New AITs are ignored after Stop.
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	if fx.inits != 1 {
		t.Fatal("app relaunched after Stop")
	}
}

func TestLaunchDelayIncludesCarouselCycle(t *testing.T) {
	// The Xlet code is 1 MiB on a 1 Mbps channel: launch cannot complete
	// before the carousel delivers it (~8.4s + signalling).
	code := make([]byte, 1<<20)
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: code})
	m := newManager(t, r, Config{})
	var startedAt time.Time
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return &fakeXlet{} })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	apps := m.Apps()
	if len(apps) != 1 || apps[0].State != xlet.Started {
		t.Fatalf("apps: %+v", apps)
	}
	startedAt = r.clk.Now()
	minDelay := time.Duration(float64(len(code)) * 8 / 1e6 * float64(time.Second))
	if startedAt.Sub(epoch) < minDelay {
		t.Fatalf("started after %v, carousel needs ≥ %v", startedAt.Sub(epoch), minDelay)
	}
}

func TestNotifyDestroyedDeregisters(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 100)})
	m := newManager(t, r, Config{})
	fx := &fakeXlet{}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	fx.ctx.NotifyDestroyed()
	if len(m.Apps()) != 0 {
		t.Fatal("self-destroyed app still registered")
	}
}

func TestSignallingTuneInSeesCurrentAIT(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sig := NewSignalling(clk, 200*time.Millisecond)
	sig.Publish(pnaAIT(ait.Autostart))
	var seen int
	var at time.Time
	sig.Subscribe(rand.New(rand.NewSource(5)), func(raw []byte) {
		seen++
		at = clk.Now()
	})
	clk.Wait()
	if seen != 1 {
		t.Fatalf("late subscriber saw %d tables", seen)
	}
	if at.Sub(epoch) >= 200*time.Millisecond {
		t.Fatalf("tune-in delay %v exceeds repetition period", at.Sub(epoch))
	}
}

func TestSignallingCancelledListenerSilent(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sig := NewSignalling(clk, 0)
	n := 0
	cancel := sig.Subscribe(rand.New(rand.NewSource(5)), func([]byte) { n++ })
	cancel()
	sig.Publish(pnaAIT(ait.Autostart))
	clk.Wait()
	if n != 0 {
		t.Fatal("cancelled listener received AIT")
	}
	if sig.Listeners() != 0 {
		t.Fatal("listener count wrong")
	}
}
