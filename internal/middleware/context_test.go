package middleware

import (
	"errors"
	"testing"
	"time"

	"oddci/internal/ait"
	"oddci/internal/dsmcc"
	"oddci/internal/xlet"
)

// ctxProbe captures the context handed to an Xlet and exercises every
// managerContext method.
type ctxProbe struct {
	fakeXlet
	ctx xlet.Context
}

func (p *ctxProbe) InitXlet(ctx xlet.Context) error {
	p.ctx = ctx
	return p.fakeXlet.InitXlet(ctx)
}

func TestManagerContextMethods(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 1000)},
		dsmcc.File{Name: "extra", Data: []byte("payload")})
	m := newManager(t, r, Config{})
	probe := &ctxProbe{}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return probe })
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	if probe.ctx == nil {
		t.Fatal("xlet never initialized")
	}
	ctx := probe.ctx
	if ctx.Clock() != r.clk {
		t.Fatal("Clock() wrong")
	}
	if ctx.AppKey() == 0 {
		t.Fatal("AppKey() zero")
	}

	var fileData []byte
	var fileErr error
	ctx.ReadFile("extra", func(data []byte, err error) { fileData, fileErr = data, err })
	r.clk.Wait()
	if fileErr != nil || string(fileData) != "payload" {
		t.Fatalf("ReadFile = %q, %v", fileData, fileErr)
	}

	ran := false
	ctx.Go(func() { ran = true })
	r.clk.Wait()
	if !ran {
		t.Fatal("Go() did not run")
	}

	fired := false
	ctx.After(time.Second, func() { fired = true })
	r.clk.Wait()
	if !fired {
		t.Fatal("After() did not fire")
	}

	updates := 0
	cancel := ctx.OnCarouselUpdate(func() { updates++ })
	r.bcast.Update([]dsmcc.File{
		{Name: "pna.xlet", Data: make([]byte, 1000)},
		{Name: "extra", Data: []byte("v2")},
	})
	r.clk.Wait()
	if updates != 1 {
		t.Fatalf("carousel updates seen = %d", updates)
	}
	cancel()
	m.Stop()
	r.clk.Wait()
}

func TestInitFailureDestroysXlet(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: make([]byte, 100)})
	m := newManager(t, r, Config{})
	fx := &fakeXlet{initErr: errors.New("boom")}
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { return fx })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.Wait()
	if fx.destroys != 1 {
		t.Fatalf("destroys = %d after init failure", fx.destroys)
	}
	if m.LaunchErrors == 0 {
		t.Fatal("init failure not counted")
	}
	if len(m.Apps()) != 0 {
		t.Fatal("failed app left registered")
	}
}

func TestGarbageAITCounted(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: []byte{1}})
	m := newManager(t, r, Config{})
	m.Start()
	// Raw garbage into the signalling listener path.
	r.clk.Go(func() { m.handleAIT([]byte{0xDE, 0xAD}) })
	r.clk.Wait()
	if m.LaunchErrors != 1 {
		t.Fatalf("launch errors = %d", m.LaunchErrors)
	}
	m.Stop()
	r.clk.Wait()
}

func TestDestroyWhileDownloadInFlight(t *testing.T) {
	// KILL arriving while the Xlet code is still on the carousel must
	// abandon the launch entirely.
	code := make([]byte, 2<<20) // ~17 s on the carousel
	r := newRig(t, dsmcc.File{Name: "pna.xlet", Data: code})
	m := newManager(t, r, Config{})
	launched := false
	m.RegisterFactory("pna.xlet", func() xlet.Xlet { launched = true; return &fakeXlet{} })
	m.Start()
	r.sig.Publish(pnaAIT(ait.Autostart))
	r.clk.AfterFunc(2*time.Second, func() { r.sig.Publish(pnaAIT(ait.Kill)) })
	r.clk.Wait()
	if launched {
		t.Fatal("killed-in-flight app still launched")
	}
	if len(m.Apps()) != 0 {
		t.Fatalf("apps: %+v", m.Apps())
	}
	m.Stop()
	r.clk.Wait()
}

func TestNewManagerRequiresRng(t *testing.T) {
	r := newRig(t, dsmcc.File{Name: "x", Data: []byte{1}})
	if _, err := NewManager(r.clk, r.bcast, r.sig, Config{}); err == nil {
		t.Fatal("missing rng accepted")
	}
}
