package middleware

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oddci/internal/ait"
	"oddci/internal/dsmcc"
	"oddci/internal/simtime"
	"oddci/internal/xlet"
)

// ObjectCarousel is the receiver-side view of any cyclic file-broadcast
// service: the DSM-CC object carousel of a DTV network, or an
// IP-multicast FLUTE-style caster (§3.3 lists both as OddCI enabling
// technologies). The middleware and the applications it hosts are
// agnostic to which one carries their files.
type ObjectCarousel interface {
	// RequestFile delivers the named file as a receiver starting to
	// listen now would obtain it.
	RequestFile(name string, strategy dsmcc.ReceiverStrategy, fn func(data []byte, at time.Time, err error))
	// OnGeneration notifies of content changes; it returns a cancel.
	OnGeneration(fn func(gen uint32, at time.Time)) (cancel func())
}

// Authenticator verifies application code fetched from the carousel
// before it runs — the DTV security hook ("the receiver can authenticate
// downloaded applications signed by application developers or
// transmitters"). A nil Authenticator accepts everything.
type Authenticator func(classFile string, code []byte) error

// CachedCarousel is the optional content-addressed extension of
// ObjectCarousel: carriers that know per-module content hashes (the
// dsmcc Broadcaster) can satisfy reads from a receiver-local chunk
// cache at DII latency instead of re-airing the full module. Carriers
// without hashes (flute) simply don't implement it and reads degrade to
// RequestFile.
type CachedCarousel interface {
	RequestFileCached(name string, cache *dsmcc.ChunkCache, strategy dsmcc.ReceiverStrategy, fn func(data []byte, at time.Time, err error))
}

// Config parameterizes an application manager.
type Config struct {
	// Strategy selects how the carousel is read (FileGranularity is the
	// paper's receiver behaviour).
	Strategy dsmcc.ReceiverStrategy
	// Authenticate, if set, gates application launch.
	Authenticate Authenticator
	// Rng drives this receiver's signalling phase. Required.
	Rng *rand.Rand
	// Cache, if set, is this receiver's persistent chunk store: file
	// reads go through the carousel's content-addressed fast path when
	// it offers one. The cache typically belongs to the set-top box and
	// survives the manager (power cycles).
	Cache *dsmcc.ChunkCache
}

// Manager is the receiver's application manager: it watches the AIT,
// fetches application code from the object carousel, and drives Xlet
// lifecycles.
type Manager struct {
	clk   simtime.Clock
	bcast ObjectCarousel
	sig   *Signalling
	cfg   Config

	mu        sync.Mutex
	factories map[string]xlet.Factory
	apps      map[uint64]*runningApp
	cancelSig func()
	running   bool

	// Counters for diagnostics and tests.
	LaunchErrors int
	AuthFailures int
}

type runningApp struct {
	app ait.Application
	x   xlet.Xlet
	lc  xlet.Lifecycle
}

// AppStatus reports one application's lifecycle state.
type AppStatus struct {
	Application ait.Application
	State       xlet.State
}

// NewManager builds a manager for one receiver.
func NewManager(clk simtime.Clock, bcast ObjectCarousel, sig *Signalling, cfg Config) (*Manager, error) {
	if cfg.Rng == nil {
		return nil, errors.New("middleware: Config.Rng is required")
	}
	return &Manager{
		clk:       clk,
		bcast:     bcast,
		sig:       sig,
		cfg:       cfg,
		factories: make(map[string]xlet.Factory),
		apps:      make(map[uint64]*runningApp),
	}, nil
}

// RegisterFactory maps a carousel class file to the Go implementation of
// the Xlet (the substitution for Java class loading).
func (m *Manager) RegisterFactory(classFile string, f xlet.Factory) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.factories[classFile] = f
}

// Start tunes the receiver: it begins monitoring the AIT.
func (m *Manager) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return errors.New("middleware: manager already started")
	}
	m.running = true
	m.cancelSig = m.sig.Subscribe(m.cfg.Rng, m.handleAIT)
	return nil
}

// Stop powers the receiver down: applications are destroyed
// unconditionally and signalling monitoring ceases.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	cancel := m.cancelSig
	m.cancelSig = nil
	apps := make([]*runningApp, 0, len(m.apps))
	for _, a := range m.apps {
		apps = append(apps, a)
	}
	m.apps = make(map[uint64]*runningApp)
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	for _, a := range apps {
		if a.x != nil {
			a.x.DestroyXlet(true) // unconditional destroy cannot be refused
		}
		a.lc.To(xlet.Destroyed)
	}
}

// Apps reports the current applications and their states.
func (m *Manager) Apps() []AppStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]AppStatus, 0, len(m.apps))
	for _, a := range m.apps {
		out = append(out, AppStatus{Application: a.app, State: a.lc.State()})
	}
	return out
}

// handleAIT processes one received AIT repetition.
func (m *Manager) handleAIT(raw []byte) {
	table, err := ait.Decode(raw)
	if err != nil {
		m.mu.Lock()
		m.LaunchErrors++
		m.mu.Unlock()
		return
	}
	for _, app := range table.Applications {
		app := app
		switch app.ControlCode {
		case ait.Autostart:
			m.launch(app)
		case ait.Kill, ait.Destroy:
			m.destroy(app.Key(), app.ControlCode == ait.Kill)
		}
	}
}

// launch fetches the application code and walks it to Started.
func (m *Manager) launch(app ait.Application) {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	if _, exists := m.apps[app.Key()]; exists {
		m.mu.Unlock()
		return // already running; AUTOSTART is idempotent
	}
	factory := m.factories[app.ClassFile]
	if factory == nil {
		m.LaunchErrors++
		m.mu.Unlock()
		return
	}
	// Reserve the slot so repeated AITs don't double-launch while the
	// carousel download is in flight.
	ra := &runningApp{app: app}
	m.apps[app.Key()] = ra
	m.mu.Unlock()

	m.bcast.RequestFile(app.ClassFile, m.cfg.Strategy, func(code []byte, _ time.Time, err error) {
		abort := func() {
			m.mu.Lock()
			if m.apps[app.Key()] == ra {
				delete(m.apps, app.Key())
			}
			m.mu.Unlock()
		}
		if err != nil {
			m.mu.Lock()
			m.LaunchErrors++
			m.mu.Unlock()
			abort()
			return
		}
		if m.cfg.Authenticate != nil {
			if err := m.cfg.Authenticate(app.ClassFile, code); err != nil {
				m.mu.Lock()
				m.AuthFailures++
				m.mu.Unlock()
				abort()
				return
			}
		}
		m.mu.Lock()
		if !m.running || m.apps[app.Key()] != ra {
			m.mu.Unlock()
			return // powered off or superseded while downloading
		}
		ra.x = factory()
		m.mu.Unlock()

		ctx := &managerContext{m: m, key: app.Key()}
		if err := ra.x.InitXlet(ctx); err != nil {
			m.failLaunch(ra, app.Key(), fmt.Errorf("initXlet: %w", err))
			return
		}
		m.transition(ra, xlet.Paused)
		if err := ra.x.StartXlet(); err != nil {
			m.failLaunch(ra, app.Key(), fmt.Errorf("startXlet: %w", err))
			return
		}
		m.transition(ra, xlet.Started)
	})
}

func (m *Manager) transition(ra *runningApp, to xlet.State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ra.lc.To(to) // manager drives only legal sequences
}

func (m *Manager) failLaunch(ra *runningApp, key uint64, _ error) {
	m.mu.Lock()
	m.LaunchErrors++
	if m.apps[key] == ra {
		delete(m.apps, key)
	}
	m.mu.Unlock()
	ra.x.DestroyXlet(true)
}

// destroy tears an application down per a KILL/DESTROY control code.
func (m *Manager) destroy(key uint64, unconditional bool) {
	m.mu.Lock()
	ra := m.apps[key]
	if ra == nil || ra.x == nil {
		if ra != nil {
			delete(m.apps, key) // still downloading: abandon
		}
		m.mu.Unlock()
		return
	}
	delete(m.apps, key)
	m.mu.Unlock()
	ra.x.DestroyXlet(unconditional)
	m.mu.Lock()
	ra.lc.To(xlet.Destroyed)
	m.mu.Unlock()
}

// managerContext implements xlet.Context.
type managerContext struct {
	m   *Manager
	key uint64
}

func (c *managerContext) Clock() simtime.Clock { return c.m.clk }
func (c *managerContext) AppKey() uint64       { return c.key }

func (c *managerContext) ReadFile(name string, fn func([]byte, error)) {
	if cc, ok := c.m.bcast.(CachedCarousel); ok && c.m.cfg.Cache != nil {
		cc.RequestFileCached(name, c.m.cfg.Cache, c.m.cfg.Strategy, func(data []byte, _ time.Time, err error) {
			fn(data, err)
		})
		return
	}
	c.m.bcast.RequestFile(name, c.m.cfg.Strategy, func(data []byte, _ time.Time, err error) {
		fn(data, err)
	})
}

func (c *managerContext) Go(fn func()) { c.m.clk.Go(fn) }

func (c *managerContext) After(d time.Duration, fn func()) simtime.Timer {
	return c.m.clk.AfterFunc(d, fn)
}

func (c *managerContext) OnCarouselUpdate(fn func()) (cancel func()) {
	return c.m.bcast.OnGeneration(func(uint32, time.Time) { fn() })
}

func (c *managerContext) NotifyDestroyed() {
	c.m.mu.Lock()
	ra := c.m.apps[c.key]
	if ra != nil {
		ra.lc.To(xlet.Destroyed)
		delete(c.m.apps, c.key)
	}
	c.m.mu.Unlock()
}
