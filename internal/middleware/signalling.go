// Package middleware models the receiver-resident DTV middleware (Ginga,
// MHP, ACAP): AIT signalling monitoring and the application manager that
// drives Xlet lifecycles. Together with internal/dsmcc it forms the
// receiver half of the OddCI-DTV wakeup path: AIT says AUTOSTART → the
// manager fetches the Xlet code from the object carousel → initXlet /
// startXlet.
package middleware

import (
	"math/rand"
	"sync"
	"time"

	"oddci/internal/ait"
	"oddci/internal/simtime"
)

// DefaultAITPeriod is the AIT repetition interval on air. Real services
// repeat the AIT every few hundred milliseconds — much faster than the
// object carousel cycle — so receivers notice new applications almost
// immediately while the bulk download still takes carousel time.
const DefaultAITPeriod = 500 * time.Millisecond

// Signalling is the head-end ↔ receivers AIT distribution channel: the
// table rides its own PID and repeats every Period. Receivers see a
// newly published table after a uniform delay in [0, Period) — the wait
// for the next repetition — and likewise on first tune.
type Signalling struct {
	clk    simtime.Clock
	period time.Duration

	mu        sync.Mutex
	current   []byte // encoded AIT section
	listeners map[int]*sigListener
	nextID    int
}

type sigListener struct {
	rng *rand.Rand
	fn  func(raw []byte)
}

// NewSignalling creates an AIT channel with the given repetition period
// (0 selects DefaultAITPeriod).
func NewSignalling(clk simtime.Clock, period time.Duration) *Signalling {
	if period <= 0 {
		period = DefaultAITPeriod
	}
	return &Signalling{clk: clk, period: period, listeners: make(map[int]*sigListener)}
}

// Period returns the repetition interval.
func (s *Signalling) Period() time.Duration { return s.period }

// Publish puts a new AIT on air. Every subscribed receiver sees it at
// its next repetition slot.
func (s *Signalling) Publish(t *ait.AIT) error {
	raw, err := t.Encode()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.current = raw
	ls := make([]*sigListener, 0, len(s.listeners))
	for _, l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l := l
		delay := time.Duration(l.rng.Int63n(int64(s.period)))
		s.clk.AfterFunc(delay, func() { l.fn(raw) })
	}
	return nil
}

// Subscribe registers a receiver. If a table is already on air, fn sees
// it after the tune-in repetition delay. rng drives this receiver's
// repetition phase. The returned cancel detaches the receiver (power
// off / channel change).
func (s *Signalling) Subscribe(rng *rand.Rand, fn func(raw []byte)) (cancel func()) {
	l := &sigListener{rng: rng, fn: fn}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.listeners[id] = l
	current := s.current
	s.mu.Unlock()
	if current != nil {
		delay := time.Duration(rng.Int63n(int64(s.period)))
		s.clk.AfterFunc(delay, func() {
			s.mu.Lock()
			_, live := s.listeners[id]
			s.mu.Unlock()
			if live {
				fn(current)
			}
		})
	}
	return func() {
		s.mu.Lock()
		delete(s.listeners, id)
		s.mu.Unlock()
	}
}

// Listeners reports how many receivers are tuned.
func (s *Signalling) Listeners() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.listeners)
}
