// Package xlet models the JavaTV Xlet application contract used by DTV
// middleware (MHP, ACAP, Ginga): an application with the four lifecycle
// states Loaded, Paused, Started and Destroyed, driven by the receiver's
// application manager. The OddCI PNA is implemented as an Xlet so that
// the broadcast AUTOSTART signalling path is exercised end-to-end.
//
// Substitution note: real middleware loads Java bytecode from the
// carousel; here the carousel carries the code bytes (for transmission
// timing and signature verification) while behaviour comes from a Go
// factory registered with the application manager under the class-file
// name.
package xlet

import (
	"fmt"
	"time"

	"oddci/internal/simtime"
)

// State is an Xlet lifecycle state (JavaTV §6).
type State int

// Lifecycle states.
const (
	Loaded State = iota
	Paused
	Started
	Destroyed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Loaded:
		return "Loaded"
	case Paused:
		return "Paused"
	case Started:
		return "Started"
	case Destroyed:
		return "Destroyed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Context is the middleware-provided environment handed to an Xlet in
// initXlet, mirroring javax.tv.xlet.XletContext plus the carousel file
// access every DTV app uses.
type Context interface {
	// Clock is the receiver's notion of time.
	Clock() simtime.Clock
	// AppKey identifies the application (orgID<<16 | appID).
	AppKey() uint64
	// ReadFile requests a carousel file. fn runs when the object
	// carousel delivers it (possibly a full cycle later), or with err on
	// failure.
	ReadFile(name string, fn func(data []byte, err error))
	// Go spawns a goroutine owned by the Xlet; the middleware tracks it
	// via the clock.
	Go(fn func())
	// NotifyDestroyed tells the application manager the Xlet terminated
	// on its own initiative.
	NotifyDestroyed()
	// After schedules fn on the receiver's timer wheel.
	After(d time.Duration, fn func()) simtime.Timer
	// OnCarouselUpdate registers fn to run whenever the object carousel
	// changes generation (new files on air) — how a resident application
	// notices fresh control messages. It returns a cancel function.
	OnCarouselUpdate(fn func()) (cancel func())
}

// Xlet is the application contract (javax.tv.xlet.Xlet).
type Xlet interface {
	// InitXlet prepares the Xlet; it moves Loaded → Paused.
	InitXlet(ctx Context) error
	// StartXlet begins or resumes service; Paused → Started.
	StartXlet() error
	// PauseXlet suspends service; Started → Paused.
	PauseXlet()
	// DestroyXlet terminates the Xlet; any state → Destroyed. If
	// unconditional is false the Xlet may refuse by returning an error.
	DestroyXlet(unconditional bool) error
}

// Factory builds fresh Xlet instances; registered with the application
// manager under a class-file name.
type Factory func() Xlet

// Lifecycle enforces the legal state transitions of Figure 4 in the
// paper (the JavaTV state diagram). The zero value is Loaded.
type Lifecycle struct {
	state State
}

// State returns the current state.
func (l *Lifecycle) State() State { return l.state }

// legal enumerates the permitted transitions.
func legal(from, to State) bool {
	switch {
	case from == Destroyed:
		return false // terminal: this instance can never be restarted
	case to == Destroyed:
		return true
	case from == Loaded && to == Paused:
		return true // initXlet
	case from == Paused && to == Started:
		return true // startXlet
	case from == Started && to == Paused:
		return true // pauseXlet
	default:
		return false
	}
}

// CanTransition reports whether from → to is a legal lifecycle move.
func CanTransition(from, to State) bool { return legal(from, to) }

// To performs the transition, or reports why it is illegal.
func (l *Lifecycle) To(to State) error {
	if !legal(l.state, to) {
		return fmt.Errorf("xlet: illegal transition %v → %v", l.state, to)
	}
	l.state = to
	return nil
}
