package xlet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLifecycleHappyPath(t *testing.T) {
	var l Lifecycle
	steps := []State{Paused, Started, Paused, Started, Destroyed}
	for _, s := range steps {
		if err := l.To(s); err != nil {
			t.Fatalf("transition to %v: %v", s, err)
		}
	}
	if l.State() != Destroyed {
		t.Fatalf("final state %v", l.State())
	}
}

func TestLifecycleIllegalMoves(t *testing.T) {
	cases := []struct {
		from, to State
	}{
		{Loaded, Started},   // must init first
		{Loaded, Loaded},    // no self-loop
		{Paused, Loaded},    // cannot unload
		{Started, Started},  // no self-loop
		{Started, Loaded},   // cannot unload
		{Destroyed, Loaded}, // terminal
		{Destroyed, Paused},
		{Destroyed, Started},
		{Destroyed, Destroyed},
	}
	for _, c := range cases {
		l := Lifecycle{state: c.from}
		if err := l.To(c.to); err == nil {
			t.Errorf("%v → %v allowed", c.from, c.to)
		}
		if l.State() != c.from {
			t.Errorf("failed transition mutated state to %v", l.State())
		}
	}
}

func TestDestroyFromAnyLiveState(t *testing.T) {
	for _, from := range []State{Loaded, Paused, Started} {
		l := Lifecycle{state: from}
		if err := l.To(Destroyed); err != nil {
			t.Errorf("destroy from %v: %v", from, err)
		}
	}
}

// Property: a random walk through To() can never leave Destroyed, and
// every accepted transition matches CanTransition.
func TestLifecycleWalkProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var l Lifecycle
		for i := 0; i < int(steps); i++ {
			from := l.State()
			to := State(rng.Intn(4))
			err := l.To(to)
			if (err == nil) != CanTransition(from, to) {
				return false
			}
			if err != nil && l.State() != from {
				return false
			}
			if from == Destroyed && l.State() != Destroyed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Loaded: "Loaded", Paused: "Paused", Started: "Started", Destroyed: "Destroyed"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
