package transport

import (
	"bytes"
	"testing"

	"oddci/internal/span"
)

// FuzzReadFrame hammers the frame parsers with arbitrary bytes:
// ReadFrame and FrameReader.Next must never panic, must agree with
// each other, and anything accepted must re-encode through WriteFrame
// to the identical byte prefix.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, FrameHello, []byte(`{"node_id":1}`))
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	WriteFrame(&seed, FrameHeartbeat, []byte("beat"))
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{byte(FrameControl), 0, 0, 0, 0})
	f.Add([]byte{byte(FrameImage), 0xFF, 0xFF, 0xFF, 0xFF}) // over MaxFrame
	f.Add([]byte{byte(FrameTaskAssignBin), 0, 0, 0, 9, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		fr := NewFrameReader(bytes.NewReader(data))
		defer fr.Close()
		typ2, payload2, err2 := fr.Next()
		if (err == nil) != (err2 == nil) {
			t.Fatalf("ReadFrame err=%v but FrameReader err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if typ != typ2 || !bytes.Equal(payload, payload2) {
			t.Fatal("ReadFrame and FrameReader disagree on an accepted frame")
		}
		var re bytes.Buffer
		if err := WriteFrame(&re, typ, payload); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:5+len(payload)]) {
			t.Fatal("re-encoded frame differs from the accepted input")
		}
	})
}

// FuzzTaskPlaneCodec drives all four binary task-plane decoders with
// arbitrary payloads (the first byte selects the message type). None
// may panic, and any accepted payload must be canonical: re-encoding
// the decoded message reproduces the input bit-exactly.
func FuzzTaskPlaneCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(append([]byte{0}, AppendTaskRequest(nil, &TaskRequestMsg{NodeID: 7})...))
	f.Add(append([]byte{1}, AppendTaskAssign(nil, &TaskAssignMsg{
		JobID: 1, TaskID: 2, RefSeconds: 2.5, OutputSize: 64, Payload: []byte("in")})...))
	f.Add(append([]byte{2}, AppendNoTask(nil, &NoTaskMsg{RetryAfterMS: 1500})...))
	f.Add(append([]byte{2}, AppendNoTask(nil, &NoTaskMsg{Done: true})...))
	f.Add(append([]byte{3}, AppendTaskResult(nil, &TaskResultMsg{
		NodeID: 9, JobID: 1, TaskID: 2, Payload: []byte("out")})...))
	// Credentialed variants: each suffix class the decoders must
	// disambiguate (bare, trace-only above, cred-only, cred+trace).
	cred := bytes.Repeat([]byte{0xAB}, 64)
	ctx := span.Context{Trace: span.TraceID{0xDEAD, 0xBEEF}, Span: 0x77, Sampled: true}
	f.Add(append([]byte{1}, AppendTaskAssign(nil, &TaskAssignMsg{
		JobID: 1, TaskID: 2, Payload: []byte("in"), Cred: cred})...))
	f.Add(append([]byte{1}, AppendTaskAssign(nil, &TaskAssignMsg{
		JobID: 1, TaskID: 2, Payload: []byte("in"), Cred: cred, Trace: ctx})...))
	f.Add(append([]byte{3}, AppendTaskResult(nil, &TaskResultMsg{
		NodeID: 9, JobID: 1, TaskID: 2, Payload: []byte("out"), Cred: cred})...))
	f.Add(append([]byte{3}, AppendTaskResult(nil, &TaskResultMsg{
		NodeID: 9, JobID: 1, TaskID: 2, Payload: []byte("out"), Cred: cred, Trace: ctx})...))
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, body := data[0], data[1:]
		switch sel % 4 {
		case 0:
			var m TaskRequestMsg
			if DecodeTaskRequest(body, &m) == nil {
				if !bytes.Equal(AppendTaskRequest(nil, &m), body) {
					t.Fatal("non-canonical task request accepted")
				}
			}
		case 1:
			var m TaskAssignMsg
			if DecodeTaskAssign(body, &m) == nil {
				if !bytes.Equal(AppendTaskAssign(nil, &m), body) {
					t.Fatal("non-canonical task assign accepted")
				}
			}
		case 2:
			var m NoTaskMsg
			if DecodeNoTask(body, &m) == nil {
				if !bytes.Equal(AppendNoTask(nil, &m), body) {
					t.Fatal("non-canonical no-task accepted")
				}
			}
		case 3:
			var m TaskResultMsg
			if DecodeTaskResult(body, &m) == nil {
				if !bytes.Equal(AppendTaskResult(nil, &m), body) {
					t.Fatal("non-canonical task result accepted")
				}
			}
		}
	})
}
