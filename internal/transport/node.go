package transport

import (
	"bufio"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/stb"
)

func jsonUnmarshal(payload []byte, v any) error { return json.Unmarshal(payload, v) }

// NodeConfig parameterizes one node-agent process.
type NodeConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// NodeID identifies this device.
	NodeID uint64
	// Profile describes it (defaults to a reference STB).
	Profile instance.DeviceProfile
	// Perf is the device performance model.
	Perf stb.PerfModel
	// Mode selects in-use or standby.
	Mode stb.Mode
	// TimeScale divides task durations so demos finish quickly
	// (1 = faithful, 100 = 100× faster). Default 1.
	TimeScale float64
	// PinnedKey, if set, must match the coordinator's banner key
	// (otherwise trust-on-first-use).
	PinnedKey ed25519.PublicKey
	// Clock stamps outgoing heartbeats (default wall clock), so
	// transport timestamps agree with simtime-driven tests.
	Clock simtime.Clock
	// Seed drives the probability draw.
	Seed int64
	// ForceJSON speaks the legacy JSON task plane even when the
	// coordinator advertises the binary codec — the mixed-version
	// interop path, also used as the bench baseline.
	ForceJSON bool
	// OmitCredential suppresses the hello's cred advertisement and any
	// credential echo — the pre-credential node's exact wire behavior,
	// used by the mixed-version interop tests.
	OmitCredential bool
	// ForceFullImage suppresses the hello's delta_img advertisement so
	// the image arrives as one legacy FrameImage — the pre-delta node's
	// exact wire behavior, used by the mixed-version interop tests.
	ForceFullImage bool
	// Spans, if set, records this agent's join/image-load/execute spans
	// and advertises trace_ctx in the hello so the coordinator sends
	// dispatch contexts back. A nil collector is the untraced-peer
	// interop path: no contexts on the wire in either direction.
	Spans *span.Collector
}

// NodeReport summarizes one agent run.
type NodeReport struct {
	Joined     bool
	TasksDone  int
	Heartbeats int
	// BinaryTaskPlane reports whether the binary codec was negotiated.
	BinaryTaskPlane bool
	// DeltaImage reports whether the content-addressed image plane was
	// negotiated.
	DeltaImage bool
	// Restages counts mid-session image updates this node assembled and
	// verified from pushed delta chunks.
	Restages int
	// BannerShard echoes the serving coordinator's federation shard id
	// from its banner (0 for unsharded coordinators).
	BannerShard int
}

// RunNode connects, obeys the broadcast control plane, executes tasks
// until the Backend reports done, and returns.
func RunNode(cfg NodeConfig) (report NodeReport, err error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Perf.SlowdownVsPC == 0 {
		cfg.Perf = stb.DefaultPerf()
	}
	if cfg.Profile == (instance.DeviceProfile{}) {
		cfg.Profile = instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewReal()
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.NodeID)))

	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return report, err
	}
	defer conn.Close()
	fr := NewFrameReader(conn)
	defer fr.Close()

	t, payload, err := fr.Next()
	if err != nil {
		return report, fmt.Errorf("transport: banner: %w", err)
	}
	if t != FrameBanner {
		return report, fmt.Errorf("transport: frame type %d, want %d", t, FrameBanner)
	}
	var banner Banner
	if err := jsonUnmarshal(payload, &banner); err != nil {
		return report, fmt.Errorf("transport: banner: %w", err)
	}
	key := ed25519.PublicKey(banner.ControllerKey)
	if cfg.PinnedKey != nil && !key.Equal(cfg.PinnedKey) {
		return report, errors.New("transport: coordinator key does not match pin")
	}
	// Codec negotiation: binary task plane only when the coordinator
	// advertises it (old coordinators don't), JSON otherwise. Trace
	// contexts flow the same way: only when both sides advertise them.
	bin := banner.TaskBin && !cfg.ForceJSON
	report.BinaryTaskPlane = bin
	traceOK := banner.TraceCtx && cfg.Spans != nil
	// The content-addressed image plane flows the same way: both sides
	// must advertise before manifest/chunk frames replace the single
	// FrameImage push.
	deltaOK := banner.DeltaImg && !cfg.ForceFullImage
	report.DeltaImage = deltaOK
	report.BannerShard = banner.Shard
	nodeName := fmt.Sprintf("node-%d", cfg.NodeID)
	// The join span parents under the coordinator's wakeup broadcast
	// (its context rides in the banner), covering control verification
	// through image acquisition. End is idempotent, so the deferred
	// call only stamps early exits.
	joinSp := cfg.Spans.Start(banner.Trace, "join", nodeName)
	joinSp.SetDetail("instance=1 bin=%t", bin)
	defer joinSp.End()

	// The heartbeat goroutine and the worker loop interleave writes on
	// the one connection, so sends serialize on wmu; the bufio writer
	// turns each frame into a single contiguous syscall at flush.
	var wmu sync.Mutex
	bw := bufio.NewWriterSize(conn, 4<<10)
	send := func(t FrameType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := WriteFrame(bw, t, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	sendRaw := func(frame []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		return bw.Flush()
	}
	sendJSON := func(t FrameType, v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		return send(t, raw)
	}
	if err := sendJSON(FrameHello, &Hello{
		NodeID: cfg.NodeID, Class: uint8(cfg.Profile.Class),
		MemMB: cfg.Profile.MemMB, CPUScore: cfg.Profile.CPUScore,
		TraceCtx: cfg.Spans != nil, Cred: !cfg.OmitCredential,
		DeltaImg: deltaOK,
	}); err != nil {
		return report, err
	}

	// Acquire the wakeup and its image from the pushed "broadcast".
	// On the delta plane the image arrives as a manifest plus
	// hash-addressed chunks; chunks persist across re-stagings, so a
	// mid-session update only ships content this node has never held.
	var wakeup *control.Wakeup
	var img *appimage.Image
	var manifest *ImageManifest
	chunks := make(map[string][]byte)
	// tryAssemble concatenates the manifest's chunks when all are held
	// and verifies the result against the current wakeup digest. It
	// returns (nil, nil) while incomplete.
	tryAssemble := func() (*appimage.Image, error) {
		if wakeup == nil || manifest == nil || manifest.Name != wakeup.ImageFile {
			return nil, nil
		}
		buf := make([]byte, 0, manifest.Size)
		for _, h := range manifest.Hashes {
			ch, ok := chunks[h]
			if !ok {
				return nil, nil
			}
			buf = append(buf, ch...)
		}
		if len(buf) != manifest.Size {
			return nil, fmt.Errorf("transport: assembled image is %d bytes, manifest says %d", len(buf), manifest.Size)
		}
		return appimage.Verify(buf, wakeup.ImageDigest)
	}
	storeChunk := func(payload []byte) error {
		var ch ImageChunk
		if err := jsonUnmarshal(payload, &ch); err != nil {
			return err
		}
		if got := dsmcc.HashOf(ch.Data).String(); got != ch.Hash {
			return fmt.Errorf("transport: image chunk hashes to %s, declared %s", got, ch.Hash)
		}
		chunks[ch.Hash] = ch.Data
		return nil
	}
	for img == nil {
		t, payload, err := fr.Next()
		if err != nil {
			return report, err
		}
		switch t {
		case FrameControl:
			msgs, err := control.OpenAll(payload, key)
			if err != nil {
				joinSp.SetError()
				return report, fmt.Errorf("transport: control file rejected: %w", err)
			}
			for _, m := range msgs {
				if w, ok := m.(*control.Wakeup); ok {
					wakeup = w
				}
			}
			if wakeup == nil {
				return report, errors.New("transport: no wakeup on air")
			}
			if !wakeup.Requirements.Match(cfg.Profile) {
				return report, nil // not eligible; report.Joined stays false
			}
			if rng.Float64() >= wakeup.Probability {
				return report, nil // probability gate dropped us
			}
		case FrameImage:
			var f ImageFile
			if err := jsonUnmarshal(payload, &f); err != nil {
				return report, err
			}
			if wakeup == nil || f.Name != wakeup.ImageFile {
				continue
			}
			imgSp := cfg.Spans.Start(joinSp.Context(), "image-load", nodeName)
			verified, err := appimage.Verify(f.Data, wakeup.ImageDigest)
			if err != nil {
				imgSp.SetError()
				imgSp.End()
				joinSp.SetError()
				return report, fmt.Errorf("transport: image rejected: %w", err)
			}
			imgSp.SetDetail("bytes=%d file=%s", len(f.Data), f.Name)
			imgSp.End()
			img = verified
		case FrameImageManifest:
			var m ImageManifest
			if err := jsonUnmarshal(payload, &m); err != nil {
				return report, err
			}
			manifest = &m
		case FrameImageChunk:
			if err := storeChunk(payload); err != nil {
				joinSp.SetError()
				return report, err
			}
		default:
			// Task frames cannot arrive before we ask for work.
		}
		if img == nil && deltaOK && manifest != nil {
			verified, err := tryAssemble()
			if err != nil {
				joinSp.SetError()
				return report, fmt.Errorf("transport: image rejected: %w", err)
			}
			if verified != nil {
				imgSp := cfg.Spans.Start(joinSp.Context(), "image-load", nodeName)
				imgSp.SetDetail("bytes=%d chunks=%d file=%s", manifest.Size, len(manifest.Hashes), manifest.Name)
				imgSp.End()
				img = verified
			}
		}
	}
	report.Joined = true
	joinCtx := joinSp.Context()
	joinSp.End()

	// Heartbeat loop (busy state). The counter is atomic because the
	// loop runs concurrently with the worker below; the deferred wait
	// folds the final count into the named return.
	var hbCount atomic.Int64
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	// Snapshot the session constants: a mid-flight re-stage swaps the
	// wakeup pointer under the worker loop, but the instance identity
	// and heartbeat cadence are fixed for the connection's lifetime.
	hbInstance := wakeup.InstanceID
	hbPeriod := wakeup.HeartbeatPeriod
	go func() {
		defer hbWG.Done()
		period := hbPeriod
		if period <= 0 {
			period = 10 * time.Second
		}
		period = time.Duration(float64(period) / cfg.TimeScale)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-tick.C:
				hb := &control.Heartbeat{
					NodeID: cfg.NodeID, State: control.StateBusy,
					InstanceID: hbInstance, Profile: cfg.Profile,
					SentAt: cfg.Clock.Now(),
				}
				if err := send(FrameHeartbeat, control.EncodeHeartbeat(hb)); err != nil {
					return
				}
				hbCount.Add(1)
			}
		}
	}()
	defer func() {
		close(stopHB)
		hbWG.Wait()
		report.Heartbeats = int(hbCount.Load())
	}()

	// Worker loop: pull → execute (scaled by the device model) → push.
	// Heartbeat replies interleave with task replies on the same
	// connection, so reads skip them. On delta sessions, re-staging
	// frames (a fresh signed control, manifest, and only never-held
	// chunks) also interleave here: the node folds them into its chunk
	// store and re-verifies the image when the set completes.
	lastDigest := wakeup.ImageDigest
	readTaskReply := func() (FrameType, []byte, error) {
		for {
			t, payload, err := fr.Next()
			if err != nil {
				return 0, nil, err
			}
			switch t {
			case FrameHeartbeatReply:
				continue
			case FrameControl:
				// A re-staged wakeup: adopt its digest; assembly waits for
				// the manifest that describes the new content.
				msgs, err := control.OpenAll(payload, key)
				if err != nil {
					return 0, nil, fmt.Errorf("transport: re-staged control rejected: %w", err)
				}
				for _, m := range msgs {
					if w, ok := m.(*control.Wakeup); ok {
						wakeup = w
					}
				}
				continue
			case FrameImageManifest:
				var m ImageManifest
				if err := jsonUnmarshal(payload, &m); err != nil {
					return 0, nil, err
				}
				manifest = &m
			case FrameImageChunk:
				if err := storeChunk(payload); err != nil {
					return 0, nil, err
				}
			default:
				return t, payload, nil
			}
			if wakeup.ImageDigest == lastDigest {
				continue // no new image generation yet
			}
			verified, err := tryAssemble()
			if err != nil {
				return 0, nil, fmt.Errorf("transport: re-staged image rejected: %w", err)
			}
			if verified != nil {
				img = verified
				lastDigest = wakeup.ImageDigest
				report.Restages++
			}
		}
	}
	// On the binary plane the request frame is identical every round:
	// build it once (the join context is constant after joining, so the
	// trace suffix keeps the frame immutable). Result frames rebuild
	// into a reused buffer. Outbound contexts are gated on traceOK: an
	// untraced coordinator's strict binary decoders expect base-length
	// payloads.
	var reqTrace span.Context
	if traceOK {
		reqTrace = joinCtx
	}
	var reqFrame, wbuf []byte
	if bin {
		reqFrame = BeginFrame(nil, FrameTaskRequestBin)
		reqFrame = AppendTaskRequest(reqFrame, &TaskRequestMsg{NodeID: cfg.NodeID, Trace: reqTrace})
		if reqFrame, err = EndFrame(reqFrame, 0); err != nil {
			return report, err
		}
	}
	var assign TaskAssignMsg
	var noTask NoTaskMsg
	for {
		if bin {
			err = sendRaw(reqFrame)
		} else {
			err = sendJSON(FrameTaskRequest, &TaskRequestMsg{NodeID: cfg.NodeID, Trace: reqTrace})
		}
		if err != nil {
			return report, err
		}
		t, payload, err := readTaskReply()
		if err != nil {
			return report, err
		}
		switch t {
		case FrameTaskAssignBin, FrameTaskAssign:
			if t == FrameTaskAssignBin {
				err = DecodeTaskAssign(payload, &assign)
			} else {
				assign = TaskAssignMsg{} // omitted JSON fields must not inherit stale state
				err = jsonUnmarshal(payload, &assign)
			}
			if err != nil {
				return report, err
			}
			// The execute span parents under the dispatch that assigned
			// the task; an untraced coordinator sends no context, so the
			// fallback keeps execution visible in the node's own trace.
			exeParent := assign.Trace
			if !exeParent.Valid() {
				exeParent = joinCtx
			}
			exeSp := cfg.Spans.Start(exeParent, "execute", nodeName)
			exeSp.SetDetail("job=%d task=%d", assign.JobID, assign.TaskID)
			d := cfg.Perf.TaskDuration(assign.RefSeconds, cfg.Mode)
			time.Sleep(time.Duration(float64(d) / cfg.TimeScale))
			exeSp.End()
			res := TaskResultMsg{NodeID: cfg.NodeID, JobID: assign.JobID, TaskID: assign.TaskID}
			if !cfg.OmitCredential {
				// Opaque echo; the backend verifies. An uncredentialed
				// coordinator sent none, so this stays empty against it.
				res.Cred = assign.Cred
			}
			if traceOK {
				// Results parent under the dispatch context so the
				// backend's commit span closes the same subtree.
				res.Trace = assign.Trace
				if !res.Trace.Valid() {
					res.Trace = joinCtx
				}
			}
			if bin {
				wbuf = BeginFrame(wbuf[:0], FrameTaskResultBin)
				wbuf = AppendTaskResult(wbuf, &res)
				if wbuf, err = EndFrame(wbuf, 0); err != nil {
					return report, err
				}
				err = sendRaw(wbuf)
			} else {
				err = sendJSON(FrameTaskResult, &res)
			}
			if err != nil {
				return report, err
			}
			report.TasksDone++
		case FrameNoTaskBin, FrameNoTask:
			if t == FrameNoTaskBin {
				err = DecodeNoTask(payload, &noTask)
			} else {
				noTask = NoTaskMsg{}
				err = jsonUnmarshal(payload, &noTask)
			}
			if err != nil {
				return report, err
			}
			if noTask.Done {
				return report, nil
			}
			time.Sleep(time.Duration(float64(noTask.RetryAfter()) / cfg.TimeScale))
		default:
			return report, fmt.Errorf("transport: unexpected frame %d awaiting task reply", t)
		}
	}
}
