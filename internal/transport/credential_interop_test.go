package transport

import (
	"sync"
	"testing"
	"time"

	"oddci/internal/core/backend"
	"oddci/internal/obs"
)

// runMixedFleet drives one pre-credential node (no cred advertisement,
// no echoes) and one credentialed node against a coordinator in the
// given mode, and returns the obs registry for counter assertions.
func runMixedFleet(t *testing.T, mode backend.CredentialMode, tasks int) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "cred-interop",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
		CredentialMode:  mode,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([]NodeReport, 2)
	errs := make([]error, 2)
	for i, omit := range []bool{true, false} {
		i, omit := i, omit
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = RunNode(NodeConfig{
				Addr:           coord.Addr(),
				NodeID:         uint64(i + 1),
				TimeScale:      200,
				Seed:           5,
				PinnedKey:      coord.PublicKey(),
				OmitCredential: omit,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	if _, done := h.Done(); !done {
		t.Fatalf("job incomplete in mode %d", mode)
	}
	if got := reports[0].TasksDone + reports[1].TasksDone; got != tasks {
		t.Fatalf("nodes report %d tasks, want %d", got, tasks)
	}
	return reg
}

// TestCredentialWarnModeMixedFleet is the migration direction: a
// pre-credential node against a credential-verifying coordinator. In
// warn mode its unsigned results must still be counted — the job
// completes with both nodes contributing — while the missing-credential
// counter records every one of them.
func TestCredentialWarnModeMixedFleet(t *testing.T) {
	reg := runMixedFleet(t, backend.CredWarn, 16)
	if v, ok := reg.Value("oddci_backend_byzantine_cred_missing_total"); !ok || v == 0 {
		t.Fatalf("cred missing counter = %v ok=%v; pre-credential results went unnoticed", v, ok)
	}
	if v, _ := reg.Value("oddci_backend_byzantine_cred_rejected_total"); v != 0 {
		t.Fatalf("warn mode rejected %v votes", v)
	}
	if v, _ := reg.Value("oddci_backend_quarantined_nodes"); v != 0 {
		t.Fatalf("warn mode quarantined %v nodes", v)
	}
}

// TestCredentialNewNodeOldCoordinator is the reverse direction: a
// credential-capable node advertising support to a CredOff coordinator.
// Nothing is issued, nothing is verified, and the wire stays on the
// pre-credential fast path — the job must complete exactly as before.
func TestCredentialNewNodeOldCoordinator(t *testing.T) {
	reg := runMixedFleet(t, backend.CredOff, 16)
	for _, name := range []string{
		"oddci_backend_byzantine_cred_missing_total",
		"oddci_backend_byzantine_cred_forged_total",
		"oddci_backend_byzantine_cred_replayed_total",
		"oddci_backend_byzantine_cred_rejected_total",
	} {
		if v, _ := reg.Value(name); v != 0 {
			t.Fatalf("%s = %v on a CredOff coordinator", name, v)
		}
	}
}

// TestCredentialEnforceHonestFleet: in enforce mode an honest
// credentialed fleet completes a job with zero credential verdicts —
// the enforcement machinery must be invisible to well-behaved nodes.
func TestCredentialEnforceHonestFleet(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "cred-enforce",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
		CredentialMode:  backend.CredEnforce,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunNode(NodeConfig{
		Addr:      coord.Addr(),
		NodeID:    1,
		TimeScale: 200,
		Seed:      9,
		PinnedKey: coord.PublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete under enforce mode")
	}
	if report.TasksDone != 12 {
		t.Fatalf("node reports %d tasks, want 12", report.TasksDone)
	}
	for _, name := range []string{
		"oddci_backend_byzantine_cred_missing_total",
		"oddci_backend_byzantine_cred_forged_total",
		"oddci_backend_byzantine_cred_replayed_total",
		"oddci_backend_byzantine_cred_rejected_total",
	} {
		if v, _ := reg.Value(name); v != 0 {
			t.Fatalf("%s = %v for an honest credentialed fleet", name, v)
		}
	}
}
