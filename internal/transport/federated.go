package transport

import (
	"errors"
	"fmt"

	"oddci/internal/federation"
)

// FederatedNodeConfig parameterizes a node agent joining a federated
// control plane: several coordinator shards, each owning a
// consistent-hash slice of the node-id space. The agent computes its
// home shard from the same ring the coordinators use, dials it, and on
// failure hands the session off around the ring — first to the home
// shard's successor, then to the next distinct shard clockwise, and so
// on. That walk is exactly the order in which a dead shard's
// population is re-adopted at failover, so a node that can't reach its
// home coordinator lands on the shard that replays its journal.
type FederatedNodeConfig struct {
	NodeConfig
	// ShardAddrs lists every coordinator's address, indexed by
	// federation.ShardID. NodeConfig.Addr is ignored.
	ShardAddrs []string
	// VNodes is the ring's virtual node count per shard
	// (federation.DefaultVNodes if 0). Must match the coordinators'.
	VNodes int
	// MaxHandoffs caps the ring walk past the home shard
	// (default: every other shard, i.e. len(ShardAddrs)-1).
	MaxHandoffs int
}

// FederatedReport extends NodeReport with the session's placement.
type FederatedReport struct {
	NodeReport
	// HomeShard is the ring owner of this node's id.
	HomeShard federation.ShardID
	// ServedBy is the shard that actually held the session.
	ServedBy federation.ShardID
	// Handoffs counts failed dials before ServedBy answered.
	Handoffs int
}

// RunFederatedNode runs one node agent against a sharded control
// plane, walking the consistent-hash ring from the node's home shard
// until a coordinator serves the session.
func RunFederatedNode(cfg FederatedNodeConfig) (FederatedReport, error) {
	var rep FederatedReport
	if len(cfg.ShardAddrs) == 0 {
		return rep, errors.New("transport: no shard addresses")
	}
	ring, err := federation.NewRing(len(cfg.ShardAddrs), cfg.VNodes)
	if err != nil {
		return rep, err
	}
	home := ring.Owner(cfg.NodeID)
	rep.HomeShard = home
	rep.ServedBy = -1

	maxHandoffs := cfg.MaxHandoffs
	if maxHandoffs <= 0 || maxHandoffs > len(cfg.ShardAddrs)-1 {
		maxHandoffs = len(cfg.ShardAddrs) - 1
	}
	order := append([]federation.ShardID{home}, ring.Neighbors(home, maxHandoffs)...)

	var lastErr error
	for i, s := range order {
		nc := cfg.NodeConfig
		nc.Addr = cfg.ShardAddrs[int(s)]
		nr, err := RunNode(nc)
		if err != nil {
			lastErr = fmt.Errorf("transport: shard %d (%s): %w", s, nc.Addr, err)
			continue
		}
		rep.NodeReport = nr
		rep.ServedBy = s
		rep.Handoffs = i
		return rep, nil
	}
	return rep, fmt.Errorf("transport: all %d shards unreachable, last: %w",
		len(order), lastErr)
}
