package transport

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"oddci/internal/span"
)

func TestTaskPlaneCodecRoundTrip(t *testing.T) {
	reqs := []TaskRequestMsg{{}, {NodeID: 1}, {NodeID: ^uint64(0)}}
	for _, in := range reqs {
		var out TaskRequestMsg
		if err := DecodeTaskRequest(AppendTaskRequest(nil, &in), &out); err != nil {
			t.Fatalf("request %+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("request round trip: %+v != %+v", out, in)
		}
	}
	assigns := []TaskAssignMsg{
		{},
		{JobID: 3, TaskID: 77, RefSeconds: 2.5, OutputSize: 64},
		{JobID: -1, TaskID: -9, RefSeconds: 0.001, OutputSize: 1 << 30, Payload: []byte("in")},
	}
	for _, in := range assigns {
		raw := AppendTaskAssign(nil, &in)
		var out TaskAssignMsg
		if err := DecodeTaskAssign(raw, &out); err != nil {
			t.Fatalf("assign %+v: %v", in, err)
		}
		if out.JobID != in.JobID || out.TaskID != in.TaskID ||
			out.RefSeconds != in.RefSeconds || out.OutputSize != in.OutputSize ||
			!bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("assign round trip: %+v != %+v", out, in)
		}
		// The decoded payload must not alias the wire buffer (frame
		// buffers are reused).
		if len(raw) > 36 {
			raw[len(raw)-1] ^= 0xFF
			if bytes.Equal(out.Payload, raw[36:]) {
				t.Fatal("decoded payload aliases the frame buffer")
			}
		}
	}
	noTasks := []NoTaskMsg{{}, {RetryAfterMS: 1500}, {Done: true}, {RetryAfterMS: -1, Done: true}}
	for _, in := range noTasks {
		var out NoTaskMsg
		if err := DecodeNoTask(AppendNoTask(nil, &in), &out); err != nil {
			t.Fatalf("no-task %+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("no-task round trip: %+v != %+v", out, in)
		}
	}
	results := []TaskResultMsg{
		{},
		{NodeID: 8, JobID: 1, TaskID: 2, Payload: []byte("out")},
	}
	for _, in := range results {
		var out TaskResultMsg
		if err := DecodeTaskResult(AppendTaskResult(nil, &in), &out); err != nil {
			t.Fatalf("result %+v: %v", in, err)
		}
		if out.NodeID != in.NodeID || out.JobID != in.JobID ||
			out.TaskID != in.TaskID || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("result round trip: %+v != %+v", out, in)
		}
	}
}

func TestTaskPlaneCodecRejectsMalformed(t *testing.T) {
	good := AppendTaskAssign(nil, &TaskAssignMsg{JobID: 1, Payload: []byte("abc")})
	cases := [][]byte{
		nil,
		{1, 2, 3},
		good[:len(good)-1],                    // truncated payload
		append(good[:len(good):len(good)], 0), // trailing byte
	}
	for i, b := range cases {
		var a TaskAssignMsg
		if err := DecodeTaskAssign(b, &a); err == nil {
			t.Errorf("case %d: malformed assign accepted", i)
		}
		var r TaskResultMsg
		if err := DecodeTaskResult(b, &r); err == nil && len(b) >= 28 {
			t.Errorf("case %d: malformed result accepted", i)
		}
	}
	var req TaskRequestMsg
	if err := DecodeTaskRequest([]byte{1, 2, 3}, &req); err == nil {
		t.Error("short request accepted")
	}
	if err := DecodeTaskRequest(make([]byte, 9), &req); err == nil {
		t.Error("long request accepted")
	}
	var nt NoTaskMsg
	if err := DecodeNoTask(make([]byte, 8), &nt); err == nil {
		t.Error("short no-task accepted")
	}
	if err := DecodeNoTask([]byte{0, 0, 0, 0, 0, 0, 0, 0, 7}, &nt); err == nil {
		t.Error("no-task with junk done byte accepted")
	}
}

// Property: the binary codec is canonical — decode(encode(m)) == m for
// arbitrary messages, and every accepted input re-encodes bit-exactly.
func TestTaskAssignCodecProperty(t *testing.T) {
	f := func(job, task int32, ref float64, outSize int32, payload []byte) bool {
		in := TaskAssignMsg{JobID: int(job), TaskID: int(task),
			RefSeconds: ref, OutputSize: int(outSize), Payload: payload}
		raw := AppendTaskAssign(nil, &in)
		var out TaskAssignMsg
		if err := DecodeTaskAssign(raw, &out); err != nil {
			return false
		}
		return bytes.Equal(AppendTaskAssign(nil, &out), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBeginEndFrame(t *testing.T) {
	b := BeginFrame(nil, FrameTaskRequestBin)
	b = AppendTaskRequest(b, &TaskRequestMsg{NodeID: 42})
	b, err := EndFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(bytes.NewReader(b))
	if err != nil || typ != FrameTaskRequestBin {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	var req TaskRequestMsg
	if err := DecodeTaskRequest(payload, &req); err != nil || req.NodeID != 42 {
		t.Fatalf("req=%+v err=%v", req, err)
	}
	// AppendFrame produces identical bytes.
	alt, err := AppendFrame(nil, FrameTaskRequestBin, payload)
	if err != nil || !bytes.Equal(alt, b) {
		t.Fatalf("AppendFrame mismatch: %x vs %x (err=%v)", alt, b, err)
	}
	if _, err := EndFrame([]byte{1}, 0); err == nil {
		t.Fatal("EndFrame on a headerless buffer accepted")
	}
}

// FrameReader must agree with ReadFrame on any frame sequence while
// reusing one pooled payload buffer.
func TestFrameReaderSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	type frame struct {
		t FrameType
		p []byte
	}
	var frames []frame
	for i := 0; i < 50; i++ {
		p := make([]byte, rng.Intn(3000))
		rng.Read(p)
		fr := frame{FrameType(rng.Intn(14) + 1), p}
		frames = append(frames, fr)
		if err := WriteFrame(&buf, fr.t, fr.p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	defer fr.Close()
	for i, want := range frames {
		typ, p, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want.t || !bytes.Equal(p, want.p) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("Next past the end succeeded")
	}
}

// Oversized frames (beyond the pool cap) must still read correctly via
// a one-shot buffer, and count as pool misses.
func TestFrameReaderOversizedPayload(t *testing.T) {
	big := make([]byte, poolBufCap+poolBufCap/2)
	rand.New(rand.NewSource(3)).Read(big)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameImage, big); err != nil {
		t.Fatal(err)
	}
	WriteFrame(&buf, FrameHello, []byte("after"))
	_, m0 := FramePoolStats()
	fr := NewFrameReader(&buf)
	defer fr.Close()
	typ, p, err := fr.Next()
	if err != nil || typ != FrameImage || !bytes.Equal(p, big) {
		t.Fatalf("typ=%d err=%v equal=%v", typ, err, bytes.Equal(p, big))
	}
	if _, m1 := FramePoolStats(); m1 == m0 {
		t.Fatal("oversized payload did not count as a pool miss")
	}
	typ, p, err = fr.Next()
	if err != nil || typ != FrameHello || string(p) != "after" {
		t.Fatalf("frame after oversized payload: typ=%d p=%q err=%v", typ, p, err)
	}
	// The oversized reader must still reject frames above MaxFrame.
	var huge bytes.Buffer
	huge.Write([]byte{byte(FrameImage), 0xFF, 0xFF, 0xFF, 0xFF})
	fr2 := NewFrameReader(&huge)
	defer fr2.Close()
	if _, _, err := fr2.Next(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestNodeSetStriping(t *testing.T) {
	s := newNodeSet()
	for i := uint64(0); i < 1000; i++ {
		if !s.Add(i) {
			t.Fatalf("first add of %d reported duplicate", i)
		}
		if s.Add(i) {
			t.Fatalf("second add of %d reported new", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	if !s.Has(999) || s.Has(1000) {
		t.Fatal("membership wrong")
	}
}

// Benchmarks: one task hand-off message set through each codec, for
// `go test -bench TaskCodec` parity with the oddci-bench sweep.

func BenchmarkBinaryTaskCodec(b *testing.B) {
	assign := TaskAssignMsg{JobID: 1, TaskID: 12345, RefSeconds: 2, OutputSize: 64}
	var buf []byte
	var out TaskAssignMsg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTaskAssign(buf[:0], &assign)
		if err := DecodeTaskAssign(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONTaskCodec(b *testing.B) {
	assign := TaskAssignMsg{JobID: 1, TaskID: 12345, RefSeconds: 2, OutputSize: 64}
	var out TaskAssignMsg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := json.Marshal(&assign)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// Trace-suffix round trips: each task-plane message must carry an
// optional span context and re-encode bit-exactly, while base-length
// (untraced, PR 5-era) encodings still decode with a zero context.
func TestTaskPlaneCodecTraceSuffix(t *testing.T) {
	ctx := span.Context{Trace: span.TraceID{0xDEADBEEF, 0xCAFED00D}, Span: 0x1234, Sampled: true}

	req := TaskRequestMsg{NodeID: 7, Trace: ctx}
	raw := AppendTaskRequest(nil, &req)
	if len(raw) != 8+span.EncodedLen {
		t.Fatalf("traced request length = %d, want %d", len(raw), 8+span.EncodedLen)
	}
	out := TaskRequestMsg{Trace: span.Context{Span: 99}} // stale reused target
	if err := DecodeTaskRequest(raw, &out); err != nil || out != req {
		t.Fatalf("traced request round trip: %+v err=%v", out, err)
	}
	// Base-length frame into the same reused target must zero the trace.
	if err := DecodeTaskRequest(raw[:8], &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace.Valid() {
		t.Fatalf("base-length request left stale trace %+v", out.Trace)
	}

	assign := TaskAssignMsg{JobID: 2, TaskID: 5, RefSeconds: 1.5, OutputSize: 64,
		Payload: []byte("in"), Trace: ctx}
	rawA := AppendTaskAssign(nil, &assign)
	var outA TaskAssignMsg
	if err := DecodeTaskAssign(rawA, &outA); err != nil {
		t.Fatal(err)
	}
	if outA.Trace != ctx || !bytes.Equal(AppendTaskAssign(nil, &outA), rawA) {
		t.Fatalf("traced assign not canonical: %+v", outA)
	}
	if err := DecodeTaskAssign(rawA[:len(rawA)-span.EncodedLen], &outA); err != nil {
		t.Fatal(err)
	}
	if outA.Trace.Valid() || !bytes.Equal(outA.Payload, assign.Payload) {
		t.Fatalf("base-length assign: trace=%+v payload=%q", outA.Trace, outA.Payload)
	}

	res := TaskResultMsg{NodeID: 7, JobID: 2, TaskID: 5, Payload: []byte("out"), Trace: ctx}
	rawR := AppendTaskResult(nil, &res)
	var outR TaskResultMsg
	if err := DecodeTaskResult(rawR, &outR); err != nil {
		t.Fatal(err)
	}
	if outR.Trace != ctx || !bytes.Equal(AppendTaskResult(nil, &outR), rawR) {
		t.Fatalf("traced result not canonical: %+v", outR)
	}
	if err := DecodeTaskResult(rawR[:len(rawR)-span.EncodedLen], &outR); err != nil {
		t.Fatal(err)
	}
	if outR.Trace.Valid() {
		t.Fatalf("base-length result left stale trace %+v", outR.Trace)
	}

	// A suffix with unknown flag bits is rejected, not silently decoded.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] = 0xFF
	if err := DecodeTaskRequest(bad, &out); err == nil {
		t.Fatal("request with junk trace flags accepted")
	}
	badA := append([]byte(nil), rawA...)
	badA[len(badA)-1] = 0xFF
	if err := DecodeTaskAssign(badA, &outA); err == nil {
		t.Fatal("assign with junk trace flags accepted")
	}
	badR := append([]byte(nil), rawR...)
	badR[len(badR)-1] = 0xFF
	if err := DecodeTaskResult(badR, &outR); err == nil {
		t.Fatal("result with junk trace flags accepted")
	}

	// JSON leg (ForceJSON nodes): the context survives marshal/unmarshal.
	j, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	var outJ TaskRequestMsg
	if err := json.Unmarshal(j, &outJ); err != nil || outJ.Trace != ctx {
		t.Fatalf("json trace round trip: %+v err=%v", outJ.Trace, err)
	}
}
