// Package transport carries the OddCI protocol over real TCP: the
// deployment skeleton for running the coordinator (Controller head-end
// + Backend) and the node agents as separate processes. Frames are
// length-prefixed with a one-byte type; control-plane payloads reuse
// the signed binary codecs from internal/control, task-plane payloads
// are JSON.
//
// Scope note: across processes the broadcast channel is emulated as a
// server push of the carousel contents to every connected node — the
// correct OddCI semantics (one logical transmission, every listener
// receives it) without per-node pacing. The virtual-time simulator
// remains the measurement instrument; this package is the interop and
// deployment path.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// FrameType tags a frame.
type FrameType uint8

// Frame types.
const (
	// FrameHello is the node's first frame: JSON Hello.
	FrameHello FrameType = 1
	// FrameBanner is the coordinator's first frame: JSON Banner
	// (carries the Controller public key, trust-on-first-use).
	FrameBanner FrameType = 2
	// FrameControl carries the signed control file (concatenated
	// envelopes, internal/control codec).
	FrameControl FrameType = 3
	// FrameImage carries one named carousel image: JSON ImageFile.
	FrameImage FrameType = 4
	// FrameHeartbeat carries an encoded control.Heartbeat.
	FrameHeartbeat FrameType = 5
	// FrameHeartbeatReply carries an encoded control.HeartbeatReply.
	FrameHeartbeatReply FrameType = 6
	// FrameTaskRequest, FrameTaskAssign, FrameNoTask and
	// FrameTaskResult carry the JSON task-plane messages.
	FrameTaskRequest FrameType = 7
	FrameTaskAssign  FrameType = 8
	FrameNoTask      FrameType = 9
	FrameTaskResult  FrameType = 10
)

// MaxFrame bounds a frame's payload (images dominate).
const MaxFrame = 64 << 20

// Hello introduces a node.
type Hello struct {
	NodeID uint64 `json:"node_id"`
	// Class/MemMB/CPUScore describe the device.
	Class    uint8  `json:"class"`
	MemMB    uint32 `json:"mem_mb"`
	CPUScore uint32 `json:"cpu_score"`
}

// Banner introduces the coordinator.
type Banner struct {
	// ControllerKey is the ed25519 public key (hex-free raw bytes,
	// base64 via JSON) nodes verify control frames against.
	ControllerKey []byte `json:"controller_key"`
	// Name labels the deployment.
	Name string `json:"name"`
}

// ImageFile is one carousel file pushed to nodes.
type ImageFile struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// TaskRequestMsg asks for work.
type TaskRequestMsg struct {
	NodeID uint64 `json:"node_id"`
}

// TaskAssignMsg hands a task over.
type TaskAssignMsg struct {
	JobID      int     `json:"job_id"`
	TaskID     int     `json:"task_id"`
	RefSeconds float64 `json:"ref_seconds"`
	OutputSize int     `json:"output_size"`
	Payload    []byte  `json:"payload,omitempty"`
}

// NoTaskMsg backs a worker off.
type NoTaskMsg struct {
	RetryAfterMS int64 `json:"retry_after_ms"`
	Done         bool  `json:"done"`
}

// RetryAfter converts the wire field.
func (m NoTaskMsg) RetryAfter() time.Duration {
	return time.Duration(m.RetryAfterMS) * time.Millisecond
}

// TaskResultMsg returns output.
type TaskResultMsg struct {
	NodeID  uint64 `json:"node_id"`
	JobID   int    `json:"job_id"`
	TaskID  int    `json:"task_id"`
	Payload []byte `json:"payload,omitempty"`
}

// WriteFrame emits one frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteJSON marshals v and emits it as a frame of type t.
func WriteJSON(w io.Writer, t FrameType, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, raw)
}

// ErrFrameTooLarge reports an oversized incoming frame.
var ErrFrameTooLarge = errors.New("transport: incoming frame exceeds limit")

// ReadFrame consumes one frame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// ReadJSON reads a frame and unmarshals it into v, checking the type.
func ReadJSON(r io.Reader, want FrameType, v any) error {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("transport: frame type %d, want %d", t, want)
	}
	return json.Unmarshal(payload, v)
}
