// Package transport carries the OddCI protocol over real TCP: the
// deployment skeleton for running the coordinator (Controller head-end
// + Backend) and the node agents as separate processes. Frames are
// length-prefixed with a one-byte type; control-plane payloads reuse
// the signed binary codecs from internal/control, task-plane payloads
// are length-delimited binary messages (with a JSON fallback for older
// nodes, negotiated through the banner).
//
// Scope note: across processes the broadcast channel is emulated as a
// server push of the carousel contents to every connected node — the
// correct OddCI semantics (one logical transmission, every listener
// receives it) without per-node pacing. The virtual-time simulator
// remains the measurement instrument; this package is the interop and
// deployment path.
//
// Wire fast path: the coordinator pre-encodes the banner, control, and
// image frames once at construction and writes the same immutable
// bytes to every session, so staging N nodes costs O(1) encodes on the
// coordinator CPU — the broadcast invariant the paper's cost model
// rests on. Task-plane frames are built into reused buffers
// (BeginFrame/EndFrame), read through pooled payload buffers
// (FrameReader), and batched behind bufio writers with explicit flush
// points.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
)

// FrameType tags a frame.
type FrameType uint8

// Frame types.
const (
	// FrameHello is the node's first frame: JSON Hello.
	FrameHello FrameType = 1
	// FrameBanner is the coordinator's first frame: JSON Banner
	// (carries the Controller public key, trust-on-first-use).
	FrameBanner FrameType = 2
	// FrameControl carries the signed control file (concatenated
	// envelopes, internal/control codec).
	FrameControl FrameType = 3
	// FrameImage carries one named carousel image: JSON ImageFile.
	FrameImage FrameType = 4
	// FrameHeartbeat carries an encoded control.Heartbeat.
	FrameHeartbeat FrameType = 5
	// FrameHeartbeatReply carries an encoded control.HeartbeatReply.
	FrameHeartbeatReply FrameType = 6
	// FrameTaskRequest, FrameTaskAssign, FrameNoTask and
	// FrameTaskResult carry the legacy JSON task-plane messages. A
	// coordinator answers them in kind, so old nodes interoperate.
	FrameTaskRequest FrameType = 7
	FrameTaskAssign  FrameType = 8
	FrameNoTask      FrameType = 9
	FrameTaskResult  FrameType = 10
	// FrameTaskRequestBin, FrameTaskAssignBin, FrameNoTaskBin and
	// FrameTaskResultBin carry the binary task-plane codec (below). A
	// node speaks them only when the banner advertises TaskBin.
	FrameTaskRequestBin FrameType = 11
	FrameTaskAssignBin  FrameType = 12
	FrameNoTaskBin      FrameType = 13
	FrameTaskResultBin  FrameType = 14
	// FrameImageManifest and FrameImageChunk carry the content-addressed
	// image plane: the manifest names the image and lists its chunk
	// hashes in order; each chunk frame carries one hash-addressed slice
	// of the encoded image. They flow only on sessions whose hello
	// advertised delta_img, so pre-delta nodes keep seeing exactly one
	// FrameImage.
	FrameImageManifest FrameType = 15
	FrameImageChunk    FrameType = 16
)

// MaxFrame bounds a frame's payload (images dominate).
const MaxFrame = 64 << 20

// Hello introduces a node.
type Hello struct {
	NodeID uint64 `json:"node_id"`
	// Class/MemMB/CPUScore describe the device.
	Class    uint8  `json:"class"`
	MemMB    uint32 `json:"mem_mb"`
	CPUScore uint32 `json:"cpu_score"`
	// TraceCtx advertises that this node understands trace-context
	// propagation on the task plane. Old nodes omit it.
	TraceCtx bool `json:"trace_ctx,omitempty"`
	// Cred advertises that this node echoes result credentials. The
	// coordinator issues credentials only to advertising nodes, so a
	// pre-credential node never sees the new bytes; whether its missing
	// echoes are tolerated is the coordinator's CredentialMode policy.
	Cred bool `json:"cred,omitempty"`
	// DeltaImg advertises that this node assembles images from the
	// content-addressed manifest + chunk plane and accepts mid-session
	// re-staging. Old nodes omit it and receive the single FrameImage.
	DeltaImg bool `json:"delta_img,omitempty"`
}

// Banner introduces the coordinator.
type Banner struct {
	// ControllerKey is the ed25519 public key (hex-free raw bytes,
	// base64 via JSON) nodes verify control frames against.
	ControllerKey []byte `json:"controller_key"`
	// Name labels the deployment.
	Name string `json:"name"`
	// TaskBin advertises the binary task-plane codec. Old coordinators
	// omit it, so new nodes fall back to the JSON frames against them.
	TaskBin bool `json:"task_bin,omitempty"`
	// TraceCtx advertises trace-context propagation, negotiated like
	// TaskBin: both sides must advertise before either stamps contexts
	// onto task-plane messages, so old peers never see the new bytes.
	TraceCtx bool `json:"trace_ctx,omitempty"`
	// Trace is the root wakeup span context of the instance this
	// coordinator stages. A constant for the coordinator's lifetime, so
	// the pre-encoded banner stays encode-once; old nodes parse it as
	// an unknown string field and ignore it.
	Trace span.Context `json:"trace,omitempty"`
	// DeltaImg advertises the content-addressed image plane, negotiated
	// like TaskBin: the node only hears manifest/chunk frames after its
	// hello echoed the capability back.
	DeltaImg bool `json:"delta_img,omitempty"`
	// Shard identifies this coordinator's slice of a federated control
	// plane (federation.ShardID). Single-coordinator deployments omit
	// it; old nodes parse it as an unknown field and ignore it.
	Shard int `json:"shard,omitempty"`
}

// ImageFile is one carousel file pushed to nodes.
type ImageFile struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// ImageManifest describes one content-addressed image: the chunk
// hashes, in concatenation order, whose payloads reassemble the encoded
// image. Hashes are the dsmcc module-hash rendering (16 hex digits of
// truncated SHA-256), so the TCP plane and the carousel plane address
// content identically.
type ImageManifest struct {
	Name string `json:"name"`
	// Size is the assembled image's byte length.
	Size int `json:"size"`
	// ChunkBytes is the split size every chunk but the last uses.
	ChunkBytes int `json:"chunk_bytes"`
	// Hashes lists the chunks in assembly order.
	Hashes []string `json:"hashes"`
}

// ImageChunk is one hash-addressed slice of an encoded image.
type ImageChunk struct {
	Hash string `json:"hash"`
	Data []byte `json:"data"`
}

// TaskRequestMsg asks for work.
type TaskRequestMsg struct {
	NodeID uint64 `json:"node_id"`
	// Trace is the requesting worker's span context (zero when the hop
	// is untraced). Stamped only after TraceCtx negotiation.
	Trace span.Context `json:"trace,omitempty"`
}

// TaskAssignMsg hands a task over.
type TaskAssignMsg struct {
	JobID      int     `json:"job_id"`
	TaskID     int     `json:"task_id"`
	RefSeconds float64 `json:"ref_seconds"`
	OutputSize int     `json:"output_size"`
	Payload    []byte  `json:"payload,omitempty"`
	// Cred is the result credential the worker must echo (empty when the
	// session did not negotiate credentials).
	Cred []byte `json:"cred,omitempty"`
	// Trace is the backend dispatch span context for this assignment.
	Trace span.Context `json:"trace,omitempty"`
}

// NoTaskMsg backs a worker off.
type NoTaskMsg struct {
	RetryAfterMS int64 `json:"retry_after_ms"`
	Done         bool  `json:"done"`
}

// RetryAfter converts the wire field.
func (m NoTaskMsg) RetryAfter() time.Duration {
	return time.Duration(m.RetryAfterMS) * time.Millisecond
}

// TaskResultMsg returns output.
type TaskResultMsg struct {
	NodeID  uint64 `json:"node_id"`
	JobID   int    `json:"job_id"`
	TaskID  int    `json:"task_id"`
	Payload []byte `json:"payload,omitempty"`
	// Cred echoes the assignment's credential back to the coordinator.
	Cred []byte `json:"cred,omitempty"`
	// Trace is the worker's upload span context for this result.
	Trace span.Context `json:"trace,omitempty"`
}

// Binary task-plane codec. Deterministic big-endian layouts in the
// style of internal/control; decoders are strict (no trailing bytes),
// so every accepted input is the canonical encoding of its message.
//
// Trace-context propagation appends an optional fixed 25-byte suffix
// (span.EncodedLen) after each message's base encoding. Strictness is
// preserved per shape: a payload must be exactly the base length or
// exactly base+25 — for the length-prefixed messages the embedded
// payload-length field disambiguates, and the suffix itself rejects
// unknown flag bits. Untraced messages encode without the suffix, so
// negotiated-off sessions are byte-identical to the PR 5 wire format.
//
// Result credentials add a second optional suffix on the assign/result
// shapes, ordered [payload][cred(64)][trace(25)]: the trailing extra
// bytes beyond the embedded payload length must total exactly 0, 25,
// 64, or 89, all pairwise distinct, so the decoder stays strict. Both
// suffixes ride only negotiated sessions (Hello.Cred × the
// coordinator's CredentialMode), so pre-credential peers never see
// them.

// credentialLen mirrors backend.CredentialLen; the codec treats the
// token as opaque fixed-size bytes.
const credentialLen = 64

// AppendTaskRequest appends the binary task-request payload to dst.
func AppendTaskRequest(dst []byte, m *TaskRequestMsg) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.NodeID)
	if m.Trace.Valid() {
		dst = m.Trace.AppendBinary(dst)
	}
	return dst
}

// DecodeTaskRequest reverses AppendTaskRequest into m.
func DecodeTaskRequest(b []byte, m *TaskRequestMsg) error {
	m.Trace = span.Context{}
	switch len(b) {
	case 8:
	case 8 + span.EncodedLen:
		ctx, err := span.DecodeBinary(b[8:])
		if err != nil {
			return errors.New("transport: malformed task request trace context")
		}
		m.Trace = ctx
	default:
		return errors.New("transport: malformed task request")
	}
	m.NodeID = binary.BigEndian.Uint64(b)
	return nil
}

// AppendTaskAssign appends the binary task-assign payload to dst.
func AppendTaskAssign(dst []byte, m *TaskAssignMsg) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.JobID)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.TaskID)))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.RefSeconds))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.OutputSize)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	if len(m.Cred) == credentialLen {
		dst = append(dst, m.Cred...)
	}
	if m.Trace.Valid() {
		dst = m.Trace.AppendBinary(dst)
	}
	return dst
}

// DecodeTaskAssign reverses AppendTaskAssign into m. The payload and
// credential are copied out of b, so b may be a reused frame buffer.
func DecodeTaskAssign(b []byte, m *TaskAssignMsg) error {
	if len(b) < 36 {
		return errors.New("transport: truncated task assign")
	}
	n := binary.BigEndian.Uint32(b[32:])
	if uint64(n) > uint64(len(b)-36) {
		return errors.New("transport: task assign payload length mismatch")
	}
	tail := b[36+int(n):]
	m.Cred, m.Trace = nil, span.Context{}
	if err := decodeTaskSuffix(tail, &m.Cred, &m.Trace); err != nil {
		return fmt.Errorf("transport: task assign %w", err)
	}
	m.JobID = int(int64(binary.BigEndian.Uint64(b)))
	m.TaskID = int(int64(binary.BigEndian.Uint64(b[8:])))
	m.RefSeconds = math.Float64frombits(binary.BigEndian.Uint64(b[16:]))
	m.OutputSize = int(int64(binary.BigEndian.Uint64(b[24:])))
	m.Payload = nil
	if n > 0 {
		m.Payload = append([]byte(nil), b[36:36+int(n)]...)
	}
	return nil
}

// decodeTaskSuffix parses the optional [cred(64)][trace(25)] tail shared
// by the assign and result shapes. The four legal lengths are pairwise
// distinct, so the shape stays strict without any flag byte.
func decodeTaskSuffix(tail []byte, cred *[]byte, trace *span.Context) error {
	withCred := false
	switch len(tail) {
	case 0:
		return nil
	case span.EncodedLen:
	case credentialLen:
		*cred = append([]byte(nil), tail...)
		return nil
	case credentialLen + span.EncodedLen:
		withCred = true
	default:
		return errors.New("payload length mismatch")
	}
	if withCred {
		*cred = append([]byte(nil), tail[:credentialLen]...)
		tail = tail[credentialLen:]
	}
	ctx, err := span.DecodeBinary(tail)
	if err != nil {
		return errors.New("trace context malformed")
	}
	*trace = ctx
	return nil
}

// AppendNoTask appends the binary no-task payload to dst.
func AppendNoTask(dst []byte, m *NoTaskMsg) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.RetryAfterMS))
	done := byte(0)
	if m.Done {
		done = 1
	}
	return append(dst, done)
}

// DecodeNoTask reverses AppendNoTask into m.
func DecodeNoTask(b []byte, m *NoTaskMsg) error {
	if len(b) != 9 || b[8] > 1 {
		return errors.New("transport: malformed no-task")
	}
	m.RetryAfterMS = int64(binary.BigEndian.Uint64(b))
	m.Done = b[8] == 1
	return nil
}

// AppendTaskResult appends the binary task-result payload to dst.
func AppendTaskResult(dst []byte, m *TaskResultMsg) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.NodeID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.JobID)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.TaskID)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	if len(m.Cred) == credentialLen {
		dst = append(dst, m.Cred...)
	}
	if m.Trace.Valid() {
		dst = m.Trace.AppendBinary(dst)
	}
	return dst
}

// DecodeTaskResult reverses AppendTaskResult into m. The payload and
// credential are copied out of b, so b may be a reused frame buffer.
func DecodeTaskResult(b []byte, m *TaskResultMsg) error {
	if len(b) < 28 {
		return errors.New("transport: truncated task result")
	}
	n := binary.BigEndian.Uint32(b[24:])
	if uint64(n) > uint64(len(b)-28) {
		return errors.New("transport: task result payload length mismatch")
	}
	tail := b[28+int(n):]
	m.Cred, m.Trace = nil, span.Context{}
	if err := decodeTaskSuffix(tail, &m.Cred, &m.Trace); err != nil {
		return fmt.Errorf("transport: task result %w", err)
	}
	m.NodeID = binary.BigEndian.Uint64(b)
	m.JobID = int(int64(binary.BigEndian.Uint64(b[8:])))
	m.TaskID = int(int64(binary.BigEndian.Uint64(b[16:])))
	m.Payload = nil
	if n > 0 {
		m.Payload = append([]byte(nil), b[28:28+int(n)]...)
	}
	return nil
}

// Frame buffer pool: payload buffers for reads and contiguous write
// staging share one size-capped sync.Pool. Buffers above poolBufCap
// are allocated one-shot and never pooled, so an occasional huge image
// frame cannot pin memory.
const poolBufCap = 64 << 10

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, poolBufCap)
	return &b
}}

var poolHits, poolMisses atomic.Uint64

// FramePoolStats reports how many frame-buffer requests were served
// within the pooled size cap (hits) versus forced to allocate an
// oversized one-shot buffer (misses), process-wide.
func FramePoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

func getFrameBuf(n int) *[]byte {
	if n <= poolBufCap {
		poolHits.Add(1)
		return framePool.Get().(*[]byte)
	}
	poolMisses.Add(1)
	b := make([]byte, 0, n)
	return &b
}

func putFrameBuf(b *[]byte) {
	if cap(*b) <= poolBufCap {
		*b = (*b)[:0]
		framePool.Put(b)
	}
}

// WriteFrame emits one frame as a single contiguous write: either
// directly into a *bufio.Writer (coalesced at flush) or through a
// pooled staging buffer, so the header and payload never split into
// two short writes on the socket.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if bw, ok := w.(*bufio.Writer); ok {
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	bp := getFrameBuf(5 + len(payload))
	b := append(append((*bp)[:0], hdr[:]...), payload...)
	_, err := w.Write(b)
	*bp = b
	putFrameBuf(bp)
	return err
}

// AppendFrame appends a complete frame (header + payload) to dst — the
// encode-once path for broadcast artifacts that are written verbatim
// to every session.
func AppendFrame(dst []byte, t FrameType, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	dst = append(dst, byte(t))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// BeginFrame appends a frame header for t with a placeholder length to
// dst. The caller appends the payload directly (e.g. via
// AppendTaskAssign) and then calls EndFrame with the pre-BeginFrame
// length — the zero-allocation write path for hot frames built into a
// reused buffer.
func BeginFrame(dst []byte, t FrameType) []byte {
	return append(dst, byte(t), 0, 0, 0, 0)
}

// EndFrame patches the length of the frame begun at offset start.
func EndFrame(b []byte, start int) ([]byte, error) {
	n := len(b) - start - 5
	if n < 0 {
		return nil, errors.New("transport: EndFrame without BeginFrame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[start+1:start+5], uint32(n))
	return b, nil
}

// WriteJSON marshals v and emits it as a frame of type t.
func WriteJSON(w io.Writer, t FrameType, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, raw)
}

// ErrFrameTooLarge reports an oversized incoming frame.
var ErrFrameTooLarge = errors.New("transport: incoming frame exceeds limit")

// ReadFrame consumes one frame. The returned payload is freshly
// allocated and owned by the caller; session loops should prefer
// FrameReader, which reuses a pooled buffer across frames.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// ReadJSON reads a frame and unmarshals it into v, checking the type.
func ReadJSON(r io.Reader, want FrameType, v any) error {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("transport: frame type %d, want %d", t, want)
	}
	return json.Unmarshal(payload, v)
}

// frameReadBufSize is the bufio.Reader size behind a FrameReader.
const frameReadBufSize = 32 << 10

// FrameReader reads frames through buffered I/O into a pooled payload
// buffer. The payload returned by Next is valid only until the
// following Next or Close; decoders that retain bytes must copy (the
// binary task-plane decoders do).
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
	// optional read-latency instrumentation (payload drain time after
	// the header arrived — excludes idle wait for the next frame).
	hist *obs.Histogram
	clk  simtime.Clock
}

// NewFrameReader wraps r. Call Close when the stream ends to return
// the payload buffer to the pool.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{
		br:  bufio.NewReaderSize(r, frameReadBufSize),
		buf: *framePool.Get().(*[]byte),
	}
}

// Instrument records each frame's payload-read latency into h using
// clk (both may be nil to disable).
func (fr *FrameReader) Instrument(h *obs.Histogram, clk simtime.Clock) {
	fr.hist = h
	fr.clk = clk
}

// Buffered reports bytes already read from the connection but not yet
// consumed — zero means the next Next will block, so callers should
// flush pending replies first.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// Next reads one frame. The payload aliases the reader's reused buffer.
func (fr *FrameReader) Next() (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if n > cap(fr.buf) {
		poolMisses.Add(1)
		fr.buf = make([]byte, 0, n)
	} else {
		poolHits.Add(1)
	}
	payload := fr.buf[:n]
	var t0 time.Time
	if fr.hist != nil && fr.clk != nil {
		t0 = fr.clk.Now()
	}
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return 0, nil, err
	}
	if fr.hist != nil && fr.clk != nil {
		fr.hist.ObserveDuration(fr.clk.Now().Sub(t0))
	}
	return FrameType(hdr[0]), payload, nil
}

// Close returns the payload buffer to the pool.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		b := fr.buf
		fr.buf = nil
		putFrameBuf(&b)
	}
}
