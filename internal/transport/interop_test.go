package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/obs"
)

// TestMixedVersionInterop runs a legacy JSON-speaking node and a
// binary-codec node against the same coordinator over real loopback
// TCP; both must complete their share of one job.
func TestMixedVersionInterop(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "interop",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 16))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make([]NodeReport, 2)
	errs := make([]error, 2)
	for i, forceJSON := range []bool{true, false} {
		i, forceJSON := i, forceJSON
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = RunNode(NodeConfig{
				Addr:      coord.Addr(),
				NodeID:    uint64(i + 1),
				TimeScale: 200,
				Seed:      5,
				PinnedKey: coord.PublicKey(),
				ForceJSON: forceJSON,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	if reports[0].BinaryTaskPlane {
		t.Fatal("ForceJSON node negotiated the binary plane")
	}
	if !reports[1].BinaryTaskPlane {
		t.Fatal("default node did not negotiate the binary plane")
	}
	if !reports[0].Joined || !reports[1].Joined {
		t.Fatalf("joins: %+v %+v", reports[0], reports[1])
	}
	if got := reports[0].TasksDone + reports[1].TasksDone; got != 16 {
		t.Fatalf("nodes report %d tasks, want 16", got)
	}
	// Both planes completed the job, so both nodes must have done work
	// (the scheduler spreads a 16-task job over two pull loops).
	if reports[0].TasksDone == 0 || reports[1].TasksDone == 0 {
		t.Logf("lopsided split (legal): %+v", reports)
	}
	if v, ok := reg.Value("oddci_transport_frames_in_task_request_total"); !ok || v == 0 {
		t.Fatalf("task request frames counter = %v ok=%v", v, ok)
	}
	if v, ok := reg.Value("oddci_transport_frames_in_task_result_total"); !ok || v < 16 {
		t.Fatalf("task result frames counter = %v, want >= 16", v)
	}
	if v, ok := reg.Value("oddci_transport_bytes_out_total"); !ok || v == 0 {
		t.Fatalf("bytes out counter = %v ok=%v", v, ok)
	}
}

// stageOnly connects, completes the hello/broadcast exchange, and
// disconnects without requesting work. It returns the number of
// broadcast payload bytes received.
func stageOnly(addr string, nodeID uint64) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	fr := NewFrameReader(conn)
	defer fr.Close()
	typ, payload, err := fr.Next()
	if err != nil {
		return 0, err
	}
	if typ != FrameBanner {
		return 0, fmt.Errorf("first frame type %d, want banner", typ)
	}
	var banner Banner
	if err := jsonUnmarshal(payload, &banner); err != nil {
		return 0, err
	}
	if !banner.TaskBin {
		return 0, errors.New("coordinator banner does not advertise the binary task plane")
	}
	if err := WriteJSON(conn, FrameHello, &Hello{NodeID: nodeID}); err != nil {
		return 0, err
	}
	got := 0
	var sawControl, sawImage bool
	for !sawControl || !sawImage {
		typ, payload, err := fr.Next()
		if err != nil {
			return 0, fmt.Errorf("staging read: %w", err)
		}
		got += len(payload)
		switch typ {
		case FrameControl:
			sawControl = true
		case FrameImage:
			sawImage = true
			var f ImageFile
			if err := jsonUnmarshal(payload, &f); err != nil {
				return 0, err
			}
			if len(f.Data) == 0 {
				return 0, errors.New("empty staged image")
			}
		}
	}
	return got, nil
}

// TestLargeImageEncodeOnce stages a multi-MB image to N concurrent
// sessions and asserts the coordinator-side encode counter stays at
// its construction value — the paper's O(1)-in-N broadcast invariant,
// now enforced on the TCP path.
func TestLargeImageEncodeOnce(t *testing.T) {
	img := &appimage.Image{Name: "big", Version: 1, EntryPoint: "w",
		Payload: bytes.Repeat([]byte{0xA5}, 3<<20)}
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0",
		Image:  img,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	encodesBefore := coord.BroadcastEncodes()
	if encodesBefore == 0 {
		t.Fatal("no broadcast encodes recorded at construction")
	}
	const nodes = 8
	var wg sync.WaitGroup
	gotBytes := make([]int, nodes)
	stageErrs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			gotBytes[i], stageErrs[i] = stageOnly(coord.Addr(), uint64(i+1))
		}()
	}
	wg.Wait()
	for i, err := range stageErrs {
		if err != nil {
			t.Fatalf("stage %d: %v", i+1, err)
		}
	}
	if coord.BroadcastEncodes() != encodesBefore {
		t.Fatalf("staging %d sessions re-encoded the broadcast: %d -> %d encodes",
			nodes, encodesBefore, coord.BroadcastEncodes())
	}
	if coord.NodeCount() != nodes {
		t.Fatalf("NodeCount = %d, want %d", coord.NodeCount(), nodes)
	}
	for i, n := range gotBytes {
		if n < 3<<20 {
			t.Fatalf("node %d received only %d staged bytes", i+1, n)
		}
		if n != gotBytes[0] {
			t.Fatalf("staging bytes differ across sessions: %d vs %d", n, gotBytes[0])
		}
	}
	if coord.BroadcastBytes() < 3<<20 {
		t.Fatalf("BroadcastBytes = %d, want at least the image size", coord.BroadcastBytes())
	}
}

// TestLegacyWireBytesUnchanged pins the legacy JSON frames' wire
// layout: a pre-fast-path node's first frames must decode under the
// old ReadJSON helper exactly as before.
func TestLegacyWireBytesUnchanged(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0",
		Name:   "legacy",
		Image:  testImage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The legacy helpers (unbuffered, per-frame alloc) still parse the
	// stream byte-for-byte.
	var banner Banner
	if err := ReadJSON(conn, FrameBanner, &banner); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(banner.ControllerKey, coord.PublicKey()) {
		t.Fatal("banner key mismatch through legacy reader")
	}
	if err := WriteJSON(conn, FrameHello, &Hello{NodeID: 7}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != FrameControl || len(payload) == 0 {
		t.Fatalf("control frame via legacy reader: typ=%d err=%v", typ, err)
	}
	var f ImageFile
	if err := ReadJSON(conn, FrameImage, &f); err != nil {
		t.Fatal(err)
	}
	if f.Name != "image.1" || len(f.Data) == 0 {
		t.Fatalf("image frame via legacy reader: %q (%d bytes)", f.Name, len(f.Data))
	}
}
