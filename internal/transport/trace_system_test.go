package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"oddci/internal/span"
	"oddci/internal/workload"
)

// tracedJob builds a job with tiny reference times so task leases are
// dominated by the coordinator's LeaseBase and the fault-injection
// timeline below stays fast.
func tracedJob(t *testing.T, n int) *workload.Job {
	t.Helper()
	g := workload.Generator{Name: "traced", Tasks: n, InputBytes: 64, OutputBytes: 32, MeanSeconds: 0.005}
	j, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// stealTask joins as a traced peer, leases exactly one task, and
// disconnects without reporting a result — the injected fault that
// forces a lease-expiry retry. The request parents under the wakeup
// context so the doomed dispatch (and its retry evidence) lands in the
// deployment's single trace.
func stealTask(t *testing.T, addr string, wakeup span.Context) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := NewFrameReader(conn)
	defer fr.Close()
	typ, _, err := fr.Next()
	if err != nil || typ != FrameBanner {
		t.Fatalf("banner: typ=%d err=%v", typ, err)
	}
	if err := WriteJSON(conn, FrameHello, &Hello{NodeID: 99, TraceCtx: true}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(conn, FrameTaskRequest, &TaskRequestMsg{NodeID: 99, Trace: wakeup}); err != nil {
		t.Fatal(err)
	}
	for {
		typ, _, err := fr.Next()
		if err != nil {
			t.Fatalf("awaiting stolen assign: %v", err)
		}
		switch typ {
		case FrameTaskAssign, FrameTaskAssignBin:
			return // lease held; the deferred close abandons it
		case FrameNoTask, FrameNoTaskBin:
			t.Fatal("no task to steal — submit the job before injecting the fault")
		}
	}
}

// TestTraceEndToEndLeaseExpiryRetry is the tentpole acceptance test:
// a fault-injected job over real loopback TCP — one binary-codec node,
// one ForceJSON node, and a peer that leases a task and dies — must
// produce ONE connected causal tree spanning wakeup → join →
// image-load → dispatch → lease-expiry retry → commit.
func TestTraceEndToEndLeaseExpiryRetry(t *testing.T) {
	spans := span.NewCollector(span.Config{Capacity: 8192})
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "traced",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
		Spans:           spans,
		RetryAfter:      20 * time.Millisecond,
		LeaseBase:       60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	const tasks = 6
	h, err := coord.Submit(tracedJob(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	wakeup := coord.WakeupTraceContext()
	if !wakeup.Valid() || !wakeup.Sampled {
		t.Fatalf("wakeup context not sampled: %+v", wakeup)
	}

	// Fault first, honest workers second: the dying peer must win a
	// lease before the real nodes can drain the queue.
	stealTask(t, coord.Addr(), wakeup)

	var wg sync.WaitGroup
	reports := make([]NodeReport, 2)
	errs := make([]error, 2)
	for i, forceJSON := range []bool{false, true} {
		i, forceJSON := i, forceJSON
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = RunNode(NodeConfig{
				Addr:      coord.Addr(),
				NodeID:    uint64(i + 1),
				TimeScale: 500,
				Seed:      3,
				PinnedKey: coord.PublicKey(),
				ForceJSON: forceJSON,
				Spans:     spans,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	if h.Redispatches() < 1 {
		t.Fatalf("Redispatches = %d, want >= 1 (lease-expiry fault did not fire)", h.Redispatches())
	}
	if reports[0].BinaryTaskPlane == reports[1].BinaryTaskPlane {
		t.Fatalf("want one node per codec: %+v %+v", reports[0], reports[1])
	}
	// Let the session goroutines end their spans before snapshotting.
	coord.Drain(2 * time.Second)

	var tree span.Trace
	found := false
	for _, cand := range spans.Traces() {
		if cand.ID == wakeup.Trace {
			tree, found = cand, true
			break
		}
	}
	if !found {
		t.Fatalf("wakeup trace %s not retained", wakeup.Trace)
	}
	if !tree.Connected() {
		t.Fatalf("trace is not a single connected tree:\n%s", tree.RenderWaterfall())
	}
	if !tree.Retry {
		t.Fatalf("trace does not carry the retry flag:\n%s", tree.RenderWaterfall())
	}
	if tree.Spans[0].Name != "wakeup" {
		t.Fatalf("tree root is %q, want wakeup", tree.Spans[0].Name)
	}

	byName := map[string]int{}
	byNode := map[string]int{}
	for _, d := range tree.Spans {
		byName[d.Name]++
		byNode[d.Node]++
	}
	want := map[string]int{
		"wakeup":       1,         // exactly one root broadcast
		"session":      3,         // two honest nodes + the dying peer
		"join":         2,         // honest nodes only (the peer skips image acquisition)
		"image-load":   2,         //
		"dispatch":     tasks + 1, // every task once, the stolen one twice
		"lease-expiry": 1,         // the injected fault
		"execute":      tasks,     // honest executions (stolen lease never ran)
		"commit":       tasks,     // every task commits exactly once
	}
	for name, n := range want {
		if byName[name] != n {
			t.Errorf("span %q count = %d, want %d", name, byName[name], n)
		}
	}
	if t.Failed() {
		t.Fatalf("tree:\n%s", tree.RenderWaterfall())
	}
	if byNode["node-1"] == 0 || byNode["node-2"] == 0 {
		t.Fatalf("both node flavors must appear in the tree: %v", byNode)
	}

	// The retry span must hang off a dispatch span and carry the flag.
	dispatchIDs := map[span.SpanID]bool{}
	for _, d := range tree.Spans {
		if d.Name == "dispatch" {
			dispatchIDs[d.ID] = true
		}
	}
	for _, d := range tree.Spans {
		if d.Name == "lease-expiry" {
			if !dispatchIDs[d.Parent] {
				t.Fatalf("lease-expiry parent %016x is not a dispatch span", uint64(d.Parent))
			}
			if !d.Retry {
				t.Fatal("lease-expiry span lacks the retry flag")
			}
		}
	}

	// The rendered waterfall is what /trace/{id} serves.
	wf, ok := spans.RenderTrace(wakeup.Trace.String())
	if !ok {
		t.Fatal("RenderTrace lost the trace")
	}
	for _, needle := range []string{"wakeup", "lease-expiry", "RETRY", "commit"} {
		if !strings.Contains(wf, needle) {
			t.Fatalf("waterfall missing %q:\n%s", needle, wf)
		}
	}
}

// TestTraceMixedVersionDegradation pins the graceful-degradation
// contract: a traced side paired with an untraced peer completes the
// job with no contexts on the wire and no broken trees.
func TestTraceMixedVersionDegradation(t *testing.T) {
	t.Run("traced-coordinator-untraced-node", func(t *testing.T) {
		spans := span.NewCollector(span.Config{Capacity: 1024})
		coord, err := NewCoordinator(CoordinatorConfig{
			Listen:          "127.0.0.1:0",
			Image:           testImage(),
			HeartbeatPeriod: 5 * time.Second,
			Spans:           spans,
			RetryAfter:      20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		go coord.Serve()
		h, err := coord.Submit(tracedJob(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		report, err := RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1, TimeScale: 500, Seed: 3,
			PinnedKey: coord.PublicKey(), // Spans nil: an old, untraced agent
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, done := h.Done(); !done || report.TasksDone != 4 {
			t.Fatalf("job incomplete: done=%v report=%+v", done, report)
		}
		coord.Drain(2 * time.Second)
		// The coordinator's own spans survive; nothing node-side, and no
		// disconnected fragments — every retained trace is a whole tree.
		for _, tr := range spans.Traces() {
			if !tr.Connected() {
				t.Fatalf("degraded run left a broken tree:\n%s", tr.RenderWaterfall())
			}
			for _, d := range tr.Spans {
				if strings.HasPrefix(d.Node, "node-") {
					t.Fatalf("untraced node grew a span: %+v", d)
				}
			}
		}
	})

	t.Run("untraced-coordinator-traced-node", func(t *testing.T) {
		coord, err := NewCoordinator(CoordinatorConfig{
			Listen:          "127.0.0.1:0",
			Image:           testImage(),
			HeartbeatPeriod: 5 * time.Second, // Spans nil: an old coordinator
			RetryAfter:      20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		go coord.Serve()
		h, err := coord.Submit(tracedJob(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		spans := span.NewCollector(span.Config{Capacity: 1024})
		report, err := RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1, TimeScale: 500, Seed: 3,
			PinnedKey: coord.PublicKey(), Spans: spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, done := h.Done(); !done || report.TasksDone != 4 {
			t.Fatalf("job incomplete: done=%v report=%+v", done, report)
		}
		// No banner context to parent under: the node degrades to
		// untraced rather than inventing orphan roots.
		if started, kept, _ := spans.Stats(); started != 0 || kept != 0 {
			t.Fatalf("traced node against untraced coordinator recorded spans: started=%d kept=%d", started, kept)
		}
	})
}
