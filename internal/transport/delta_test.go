package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/obs"
)

// chunkedImage builds an image whose payload is incompressible random
// bytes, so every chunk carries a distinct content hash.
func chunkedImage(t *testing.T, seed int64, payloadBytes int) *appimage.Image {
	t.Helper()
	p := make([]byte, payloadBytes)
	rand.New(rand.NewSource(seed)).Read(p)
	return &appimage.Image{Name: "net", Version: 1, EntryPoint: "w", Payload: p}
}

// TestDeltaJoinAssemblesChunkedImage: a delta-negotiated node must
// assemble and verify the image from the manifest + chunk plane, and
// the coordinator's encode counter must be exactly the per-artifact
// count — independent of how many sessions joined.
func TestDeltaJoinAssemblesChunkedImage(t *testing.T) {
	img := chunkedImage(t, 1, 32<<10)
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Image:           img,
		ImageChunkBytes: 4 << 10,
		HeartbeatPeriod: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()
	raw, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := (len(raw) + (4 << 10) - 1) / (4 << 10)
	if coord.StagedChunks() != wantChunks {
		t.Fatalf("staged chunks = %d, want %d", coord.StagedChunks(), wantChunks)
	}
	// banner + control + legacy image + manifest + the chunk frames.
	wantEncodes := int64(4 + wantChunks)
	if got := coord.BroadcastEncodes(); got != wantEncodes {
		t.Fatalf("encodes after staging = %d, want %d", got, wantEncodes)
	}

	h, err := coord.Submit(testJob(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 4
	var wg sync.WaitGroup
	reports := make([]NodeReport, nodes)
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = RunNode(NodeConfig{
				Addr: coord.Addr(), NodeID: uint64(i + 1),
				TimeScale: 200, Seed: 5, PinnedKey: coord.PublicKey(),
			})
		}()
	}
	wg.Wait()
	for i := 0; i < nodes; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i+1, errs[i])
		}
		if !reports[i].Joined || !reports[i].DeltaImage {
			t.Fatalf("node %d report %+v, want joined over the delta plane", i+1, reports[i])
		}
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	// Serving 4 delta sessions must not have encoded anything new.
	if got := coord.BroadcastEncodes(); got != wantEncodes {
		t.Fatalf("encodes after %d sessions = %d, want %d (flat in session count)", nodes, got, wantEncodes)
	}
}

// TestUpdateImageRestagesOnlyChangedChunks: a mid-flight UpdateImage
// re-encodes only the changed chunk frames (plus the three per-update
// artifacts: control, legacy image, manifest), and a connected delta
// node picks the new image up at its next heartbeat, re-verifying the
// digest from its retained chunks plus the pushed delta.
func TestUpdateImageRestagesOnlyChangedChunks(t *testing.T) {
	img := chunkedImage(t, 2, 32<<10)
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Image:           img,
		ImageChunkBytes: 4 << 10,
		HeartbeatPeriod: 5 * time.Second, // 25 ms at TimeScale 200
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 32)) // ~10 ms per task: ample update window
	if err != nil {
		t.Fatal(err)
	}
	var report NodeReport
	var nodeErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		report, nodeErr = RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1,
			TimeScale: 200, Seed: 7, PinnedKey: coord.PublicKey(),
		})
	}()

	// Flip bytes inside exactly one 4 KiB chunk while the node works.
	time.Sleep(50 * time.Millisecond)
	before := coord.BroadcastEncodes()
	img2 := chunkedImage(t, 2, 32<<10)
	for i := 9000; i < 9100; i++ {
		img2.Payload[i] ^= 0xFF
	}
	if err := coord.UpdateImage(img2); err != nil {
		t.Fatalf("UpdateImage: %v", err)
	}
	// control + legacy image + manifest + exactly one changed chunk.
	if got := coord.BroadcastEncodes() - before; got != 4 {
		t.Fatalf("UpdateImage cost %d encodes, want 4 (3 artifacts + 1 changed chunk)", got)
	}
	if coord.ImageEpoch() != 1 {
		t.Fatalf("image epoch = %d, want 1", coord.ImageEpoch())
	}
	if coord.Seq() != 2 {
		t.Fatalf("seq after update = %d, want 2", coord.Seq())
	}

	<-done
	if nodeErr != nil {
		t.Fatal(nodeErr)
	}
	if _, ok := h.Done(); !ok {
		t.Fatal("job incomplete")
	}
	if report.Restages != 1 {
		t.Fatalf("node restages = %d, want 1 (one mid-session image update)", report.Restages)
	}
	if v, _ := reg.Value("oddci_transport_restages_total"); v != 1 {
		t.Fatalf("restage counter = %v, want 1", v)
	}
	// The restage push carried the control + manifest + ONE chunk frame,
	// not the whole image.
	restageBytes, _ := reg.Value("oddci_transport_restage_bytes_total")
	if restageBytes <= 0 || restageBytes >= float64(coord.BroadcastBytes()) {
		t.Fatalf("restage bytes = %v, want positive and well under the full broadcast (%d)", restageBytes, coord.BroadcastBytes())
	}
}

// TestMixedVersionImageInterop: a pre-delta node (ForceFullImage) keeps
// its exact legacy wire behaviour against a delta coordinator — one
// FrameImage at join, no mid-session frames even when the image updates
// under it.
func TestMixedVersionImageInterop(t *testing.T) {
	img := chunkedImage(t, 3, 32<<10)
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Image:           img,
		ImageChunkBytes: 4 << 10,
		HeartbeatPeriod: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	var report NodeReport
	var nodeErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		report, nodeErr = RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1,
			TimeScale: 200, Seed: 11, PinnedKey: coord.PublicKey(),
			ForceFullImage: true,
		})
	}()
	time.Sleep(40 * time.Millisecond)
	img2 := chunkedImage(t, 4, 32<<10)
	if err := coord.UpdateImage(img2); err != nil {
		t.Fatalf("UpdateImage: %v", err)
	}
	<-done
	if nodeErr != nil {
		t.Fatal(nodeErr)
	}
	if _, ok := h.Done(); !ok {
		t.Fatal("job incomplete")
	}
	if report.DeltaImage || report.Restages != 0 {
		t.Fatalf("legacy node report %+v, want no delta plane and no restages", report)
	}
	if !report.Joined || report.TasksDone != 16 {
		t.Fatalf("legacy node report %+v, want 16 tasks done", report)
	}

	// A late legacy join sees the updated full image.
	if _, err := coord.Submit(testJob(t, 2)); err != nil {
		t.Fatal(err)
	}
	rep2, err := RunNode(NodeConfig{
		Addr: coord.Addr(), NodeID: 2,
		TimeScale: 200, Seed: 12, PinnedKey: coord.PublicKey(),
		ForceFullImage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Joined {
		t.Fatal("legacy node failed to join after UpdateImage")
	}
}

// TestUpdateImagePersistsAcrossRestart: the journal snapshot written by
// UpdateImage must carry the bumped sequence, so a restarted
// coordinator resumes past it.
func TestUpdateImagePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0", Image: chunkedImage(t, 5, 16<<10), StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.UpdateImage(chunkedImage(t, 6, 16<<10)); err != nil {
		t.Fatal(err)
	}
	if c1.Seq() != 2 {
		t.Fatalf("seq after update = %d, want 2", c1.Seq())
	}
	c1.Close()

	c2, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0", Image: chunkedImage(t, 6, 16<<10), StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Seq() != 3 {
		t.Fatalf("restarted seq = %d, want 3 (bumped past the update's recorded wakeup)", c2.Seq())
	}
}

// TestChunkDedupWithinImage: an image whose chunks are content-identical
// stages (and ships) exactly one chunk frame, and a delta node still
// assembles the full image from the single held chunk.
func TestChunkDedupWithinImage(t *testing.T) {
	img := testImage() // 32 KiB zero payload: every 4 KiB chunk identical
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Image:           img,
		ImageChunkBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()
	if coord.StagedChunks() >= 8 {
		t.Fatalf("staged %d chunk frames for a self-similar image, want deduplicated (<8)", coord.StagedChunks())
	}
	if _, err := coord.Submit(testJob(t, 2)); err != nil {
		t.Fatal(err)
	}
	rep, err := RunNode(NodeConfig{
		Addr: coord.Addr(), NodeID: 1,
		TimeScale: 200, Seed: 13, PinnedKey: coord.PublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Joined || !rep.DeltaImage {
		t.Fatalf("report %+v, want delta join from deduplicated chunks", rep)
	}
}
