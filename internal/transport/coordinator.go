package transport

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/backend"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/journal"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/workload"
)

// CoordinatorConfig assembles the server side of a TCP deployment: the
// Controller head-end and Backend roles in one process.
type CoordinatorConfig struct {
	// Listen is the TCP address ("127.0.0.1:0" for tests).
	Listen string
	// Name labels the deployment in the banner.
	Name string
	// Image is the application image staged to nodes.
	Image *appimage.Image
	// Probability gates node participation (default 1).
	Probability float64
	// Requirements filter devices.
	Requirements instance.Requirements
	// HeartbeatPeriod instructs the nodes (default 10 s).
	HeartbeatPeriod time.Duration
	// Clock drives the backend's lease timestamps and the coordinator's
	// heartbeat bookkeeping (default wall clock). Injecting a simulated
	// clock keeps transport timestamps consistent with simtime-driven
	// tests.
	Clock simtime.Clock
	// Key signs control frames; generated if nil.
	Key ed25519.PrivateKey
	// Obs, if set, collects coordinator, transport and backend
	// telemetry (oddci_coordinator_*, oddci_transport_*,
	// oddci_backend_*) and registers the heartbeat-silence health
	// check.
	Obs *obs.Registry
	// Spans, if set, enables end-to-end causal tracing: the wakeup on
	// the wire starts a root span whose context rides in the banner
	// (capability-negotiated via trace_ctx, like the binary task
	// plane), node sessions record under it, and the backend closes
	// each task's tree with dispatch/lease-expiry/commit spans.
	Spans *span.Collector
	// Shard identifies this coordinator's slice of a federated control
	// plane; it rides in the banner so nodes can confirm which shard
	// answered. 0 (the default) is also the first shard id — single-
	// coordinator deployments simply never check it.
	Shard int
	// RetryAfter is the backend's no-task polling hint (default 1 s).
	RetryAfter time.Duration
	// LeaseBase is the backend's minimum task lease (default 30 s);
	// fault-injection tests shorten it to force lease-expiry retries.
	LeaseBase time.Duration
	// CredentialMode selects the backend's result-credential policy.
	// Credentials are issued only to sessions whose hello advertised
	// them, so pre-credential nodes keep their exact wire format; what
	// happens to their credential-less results is this policy's call
	// (CredWarn tolerates, CredEnforce rejects).
	CredentialMode backend.CredentialMode
	// HeartbeatSilence is how long the coordinator tolerates hearing no
	// heartbeat (while nodes are connected) before the heartbeat-silence
	// health check fails (default 3× HeartbeatPeriod).
	HeartbeatSilence time.Duration
	// StateDir, if set, makes the coordinator durable across restarts:
	// the signing key persists (nodes keep verifying the same identity,
	// unless Key is given explicitly) and the wakeup sequence resumes
	// past its pre-crash value, so nodes that already evaluated the old
	// broadcast re-evaluate the new one instead of ignoring a replayed
	// seq.
	StateDir string
	// ImageChunkBytes is the split size of the content-addressed image
	// plane (default 256 KiB). Delta-capable nodes receive the image as
	// a manifest plus hash-addressed chunks, so an UpdateImage re-stages
	// only the chunks whose content actually changed.
	ImageChunkBytes int
}

// imageStage is one immutable generation of the staged broadcast: the
// signed control frame, the legacy full-image frame, and the
// content-addressed manifest + chunk frames. Sessions read the current
// stage through an atomic pointer; UpdateImage swaps in a successor
// that reuses every pre-encoded chunk frame whose hash survived, so
// re-staging re-encodes only changed content (the PR 5 encode-once
// property, now per chunk instead of per image).
type imageStage struct {
	epoch   uint64
	seq     uint32
	wakeups uint32
	imgRaw  []byte

	ctrlFrame     []byte
	imageFrame    []byte
	manifestFrame []byte
	// hashes lists the chunks in assembly order; chunkFrames holds each
	// distinct chunk pre-encoded as a complete frame.
	hashes      []string
	chunkFrames map[string][]byte
	// broadcast is ctrlFrame+imageFrame concatenated: the two-frame push
	// legacy sessions receive verbatim.
	broadcast []byte
}

// splitChunks cuts raw into n-byte slices (the last may be short).
func splitChunks(raw []byte, n int) [][]byte {
	var out [][]byte
	for len(raw) > 0 {
		k := n
		if k > len(raw) {
			k = len(raw)
		}
		out = append(out, raw[:k])
		raw = raw[k:]
	}
	return out
}

// nodeSetShards stripes the distinct-node set so concurrent sessions
// touch disjoint locks (node IDs hash via SplitMix64).
const nodeSetShards = 16

type nodeSetShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
}

// nodeSet is a counted striped set of node IDs: Add contends only on
// one shard, Len is a single atomic load (O(1) for /metrics scrapes).
type nodeSet struct {
	shards [nodeSetShards]nodeSetShard
	count  atomic.Int64
}

func newNodeSet() *nodeSet {
	s := &nodeSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// mix64 is a SplitMix64-style finalizer (same scheme as the backend's
// stripe locks): cheap, well-distributed bits for shard selection.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts id, reporting whether it was new.
func (s *nodeSet) Add(id uint64) bool {
	sh := &s.shards[mix64(id)%nodeSetShards]
	sh.mu.Lock()
	_, ok := sh.m[id]
	if !ok {
		sh.m[id] = struct{}{}
	}
	sh.mu.Unlock()
	if !ok {
		s.count.Add(1)
	}
	return !ok
}

// Has reports membership.
func (s *nodeSet) Has(id uint64) bool {
	sh := &s.shards[mix64(id)%nodeSetShards]
	sh.mu.Lock()
	_, ok := sh.m[id]
	sh.mu.Unlock()
	return ok
}

// Len returns the distinct-node count without touching any shard.
func (s *nodeSet) Len() int { return int(s.count.Load()) }

// coordMetrics are the transport-plane telemetry handles (all nil-safe
// when the coordinator runs without a registry).
type coordMetrics struct {
	heartbeats *obs.Counter
	sessions   *obs.Counter

	framesInHB      *obs.Counter
	framesInTaskReq *obs.Counter
	framesInTaskRes *obs.Counter
	framesInOther   *obs.Counter
	framesOut       *obs.Counter
	bytesIn         *obs.Counter
	bytesOut        *obs.Counter
	broadcastBytes  *obs.Counter
	restages        *obs.Counter
	restageBytes    *obs.Counter

	readLat  *obs.Histogram
	writeLat *obs.Histogram
}

// Coordinator is the listening process.
type Coordinator struct {
	cfg       CoordinatorConfig
	ln        net.Listener
	pub       ed25519.PublicKey
	be        *backend.Backend
	store     *journal.Store
	recovered bool

	// Encode-once broadcast: the banner frame and the staged carousel
	// (control file + image, chunked and legacy forms) are encoded at
	// construction and written verbatim to every session — per-node cost
	// is a memcpy into the socket, never a marshal. UpdateImage swaps
	// the stage pointer; sessions pick the new generation up at their
	// next heartbeat.
	bannerFrame  []byte
	stage        atomic.Pointer[imageStage]
	hbReplyFrame []byte
	encodeOps    atomic.Int64
	// updateMu serializes UpdateImage (stage readers are lock-free).
	updateMu sync.Mutex

	// wakeupCtx is the root wakeup span's context — one constant per
	// coordinator lifetime, so the banner carrying it stays a shared
	// pre-encoded buffer. Zero when tracing is off or unsampled.
	wakeupCtx span.Context

	// Session accounting: atomics and a striped node set, so heartbeats
	// from N sessions never serialize on one coordinator-global mutex.
	heartbeats   atomic.Int64
	lastBeatNano atomic.Int64
	nodes        *nodeSet

	mu     sync.Mutex // guards closed only
	closed bool

	met coordMetrics

	wg sync.WaitGroup
}

// NewCoordinator binds the listener and prepares the signed control
// file plus the pre-encoded broadcast frames.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Image == nil {
		return nil, errors.New("transport: coordinator needs an image")
	}
	if cfg.Probability == 0 {
		cfg.Probability = 1
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewReal()
	}
	// Durable identity and sequence continuity.
	var (
		store   *journal.Store
		state   *journal.State
		prevRec *journal.InstanceRecord
	)
	if cfg.StateDir != "" {
		if cfg.Key == nil {
			key, err := journal.LoadOrCreateKey(cfg.StateDir)
			if err != nil {
				return nil, err
			}
			cfg.Key = key
		}
		var err error
		store, err = journal.Open(cfg.StateDir, journal.Options{Obs: cfg.Obs, Clock: cfg.Clock})
		if err != nil {
			return nil, err
		}
		state, err = store.Load()
		if err != nil {
			store.Close()
			return nil, err
		}
		prevRec = state.Instances[1]
	}
	if cfg.Key == nil {
		_, key, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		cfg.Key = key
	}
	imgRaw, err := cfg.Image.Encode()
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	digest := appimage.DigestOf(imgRaw)
	// Resume one past the recorded sequence: nodes that already
	// evaluated the pre-crash wakeup evaluate this one afresh.
	seq := uint32(1)
	var wakeups uint32 = 1
	if prevRec != nil {
		seq = prevRec.Seq + 1
		wakeups = prevRec.Wakeups + 1
	}
	wakeup := &control.Wakeup{
		InstanceID:      1,
		Seq:             seq,
		Probability:     cfg.Probability,
		Requirements:    cfg.Requirements,
		ImageFile:       "image.1",
		ImageDigest:     digest,
		HeartbeatPeriod: cfg.HeartbeatPeriod,
	}
	ctrlFile, err := control.SignWakeup(wakeup, cfg.Key)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	if store != nil {
		rec := journal.InstanceRecord{
			ID:              1,
			Seq:             seq,
			Wakeups:         wakeups,
			Probability:     cfg.Probability,
			Target:          1,
			HeartbeatPeriod: cfg.HeartbeatPeriod,
			Requirements:    cfg.Requirements,
			ImageFile:       "image.1",
			Image:           imgRaw,
		}
		if prevRec == nil {
			if err := store.Append(journal.Record{Op: journal.OpCreate, Inst: rec}); err != nil {
				store.Close()
				return nil, err
			}
		} else {
			// Restarted: compact to a one-record snapshot carrying the
			// bumped sequence (and the possibly-updated image).
			st := journal.NewState()
			st.NextID = 2
			st.Instances[1] = &rec
			st.Order = []uint64{1}
			if err := store.Compact(st); err != nil {
				store.Close()
				return nil, err
			}
		}
	}
	if cfg.HeartbeatSilence <= 0 {
		cfg.HeartbeatSilence = 3 * cfg.HeartbeatPeriod
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.LeaseBase <= 0 {
		cfg.LeaseBase = 30 * time.Second
	}
	if cfg.ImageChunkBytes <= 0 {
		cfg.ImageChunkBytes = 256 << 10
	}
	be, err := backend.New(backend.Config{
		Clock:          cfg.Clock,
		RetryAfter:     cfg.RetryAfter,
		LeaseBase:      cfg.LeaseBase,
		Obs:            cfg.Obs,
		Spans:          cfg.Spans,
		CredentialMode: cfg.CredentialMode,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		ln:        ln,
		pub:       cfg.Key.Public().(ed25519.PublicKey),
		be:        be,
		store:     store,
		recovered: prevRec != nil,
		nodes:     newNodeSet(),
	}

	// The wakeup on the wire roots the deployment's trace. Its context
	// rides in the banner — one constant value for the coordinator's
	// lifetime, so the encode-once invariant below survives tracing.
	if wakeupSp := cfg.Spans.Root("wakeup", "coordinator"); wakeupSp != nil {
		wakeupSp.SetDetail("instance=1 seq=%d p=%.2f", seq, cfg.Probability)
		cfg.Spans.SetLink(span.LinkKey(1, uint64(seq)), wakeupSp.Context())
		c.wakeupCtx = wakeupSp.Context()
		wakeupSp.End()
	}

	// Encode-once broadcast staging: banner, control file, and image
	// (legacy and chunked forms) are marshaled exactly once here,
	// independent of how many sessions will replay them.
	bannerRaw, err := json.Marshal(&Banner{
		ControllerKey: c.pub, Name: cfg.Name, TaskBin: true,
		TraceCtx: cfg.Spans != nil, Trace: c.wakeupCtx, DeltaImg: true,
		Shard: cfg.Shard,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	if c.bannerFrame, err = AppendFrame(nil, FrameBanner, bannerRaw); err != nil {
		c.Close()
		return nil, err
	}
	c.encodeOps.Add(1)
	st, err := c.newStage(nil, imgRaw, ctrlFile, seq, wakeups)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.stage.Store(st)
	reply := control.EncodeHeartbeatReply(&control.HeartbeatReply{Command: control.CmdNone})
	if c.hbReplyFrame, err = AppendFrame(nil, FrameHeartbeatReply, reply); err != nil {
		c.Close()
		return nil, err
	}

	c.instrument(cfg.Obs)
	return c, nil
}

// newStage pre-encodes one broadcast generation. prev, when non-nil,
// donates every chunk frame whose content hash is unchanged, so only
// new content costs an encode — the per-chunk form of the encode-once
// invariant that the image bench asserts stays flat in session count.
func (c *Coordinator) newStage(prev *imageStage, imgRaw, ctrlFile []byte, seq, wakeups uint32) (*imageStage, error) {
	st := &imageStage{
		seq: seq, wakeups: wakeups, imgRaw: imgRaw,
		chunkFrames: make(map[string][]byte),
	}
	if prev != nil {
		st.epoch = prev.epoch + 1
	}
	var err error
	if st.ctrlFrame, err = AppendFrame(nil, FrameControl, ctrlFile); err != nil {
		return nil, err
	}
	c.encodeOps.Add(1)
	imgJSON, err := json.Marshal(&ImageFile{Name: "image.1", Data: imgRaw})
	if err != nil {
		return nil, err
	}
	if st.imageFrame, err = AppendFrame(nil, FrameImage, imgJSON); err != nil {
		return nil, err
	}
	c.encodeOps.Add(1)
	chunks := splitChunks(imgRaw, c.cfg.ImageChunkBytes)
	st.hashes = make([]string, len(chunks))
	for i, ch := range chunks {
		h := dsmcc.HashOf(ch).String()
		st.hashes[i] = h
		if _, ok := st.chunkFrames[h]; ok {
			continue // duplicate content within the image
		}
		if prev != nil {
			if f, ok := prev.chunkFrames[h]; ok {
				st.chunkFrames[h] = f // unchanged: reused verbatim, no encode
				continue
			}
		}
		raw, err := json.Marshal(&ImageChunk{Hash: h, Data: ch})
		if err != nil {
			return nil, err
		}
		frame, err := AppendFrame(nil, FrameImageChunk, raw)
		if err != nil {
			return nil, err
		}
		st.chunkFrames[h] = frame
		c.encodeOps.Add(1)
	}
	manRaw, err := json.Marshal(&ImageManifest{
		Name: "image.1", Size: len(imgRaw),
		ChunkBytes: c.cfg.ImageChunkBytes, Hashes: st.hashes,
	})
	if err != nil {
		return nil, err
	}
	if st.manifestFrame, err = AppendFrame(nil, FrameImageManifest, manRaw); err != nil {
		return nil, err
	}
	c.encodeOps.Add(1)
	st.broadcast = append(append([]byte(nil), st.ctrlFrame...), st.imageFrame...)
	return st, nil
}

// UpdateImage recomposes the staged application image mid-flight: the
// wakeup re-signs under the next sequence, the legacy image frame and
// manifest re-encode, and chunk frames re-encode only for changed
// content. Delta sessions are re-staged at their next heartbeat with
// just the chunks this session has not yet received; legacy sessions
// keep their original image (their strict reply loop would reject
// unsolicited mid-session frames) while new legacy joins receive the
// updated full image.
func (c *Coordinator) UpdateImage(img *appimage.Image) error {
	if img == nil {
		return errors.New("transport: UpdateImage needs an image")
	}
	imgRaw, err := img.Encode()
	if err != nil {
		return err
	}
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	prev := c.stage.Load()
	seq, wakeups := prev.seq+1, prev.wakeups+1
	ctrlFile, err := control.SignWakeup(&control.Wakeup{
		InstanceID:      1,
		Seq:             seq,
		Probability:     c.cfg.Probability,
		Requirements:    c.cfg.Requirements,
		ImageFile:       "image.1",
		ImageDigest:     appimage.DigestOf(imgRaw),
		HeartbeatPeriod: c.cfg.HeartbeatPeriod,
	}, c.cfg.Key)
	if err != nil {
		return err
	}
	st, err := c.newStage(prev, imgRaw, ctrlFile, seq, wakeups)
	if err != nil {
		return err
	}
	if c.store != nil {
		// Same one-record snapshot the restart path writes: a coordinator
		// restarted after the update resumes past this sequence with the
		// updated image.
		snap := journal.NewState()
		snap.NextID = 2
		snap.Instances[1] = &journal.InstanceRecord{
			ID: 1, Seq: seq, Wakeups: wakeups,
			Probability:     c.cfg.Probability,
			Target:          1,
			HeartbeatPeriod: c.cfg.HeartbeatPeriod,
			Requirements:    c.cfg.Requirements,
			ImageFile:       "image.1",
			Image:           imgRaw,
		}
		snap.Order = []uint64{1}
		if err := c.store.Compact(snap); err != nil {
			return err
		}
	}
	c.stage.Store(st)
	return nil
}

// instrument registers coordinator telemetry and the heartbeat-silence
// health check.
func (c *Coordinator) instrument(reg *obs.Registry) {
	c.met = coordMetrics{
		heartbeats:      reg.Counter("oddci_coordinator_heartbeats_total", "Heartbeat frames received from nodes"),
		sessions:        reg.Counter("oddci_coordinator_sessions_total", "Node TCP sessions accepted"),
		framesInHB:      reg.Counter("oddci_transport_frames_in_heartbeat_total", "Heartbeat frames read"),
		framesInTaskReq: reg.Counter("oddci_transport_frames_in_task_request_total", "Task-request frames read (JSON and binary)"),
		framesInTaskRes: reg.Counter("oddci_transport_frames_in_task_result_total", "Task-result frames read (JSON and binary)"),
		framesInOther:   reg.Counter("oddci_transport_frames_in_other_total", "Frames read of any other type"),
		framesOut:       reg.Counter("oddci_transport_frames_out_total", "Frames written to node sessions"),
		bytesIn:         reg.Counter("oddci_transport_bytes_in_total", "Frame bytes read from node sessions"),
		bytesOut:        reg.Counter("oddci_transport_bytes_out_total", "Frame bytes written to node sessions"),
		broadcastBytes:  reg.Counter("oddci_transport_broadcast_bytes_total", "Pre-encoded broadcast bytes staged to sessions"),
		restages:        reg.Counter("oddci_transport_restages_total", "Mid-session image re-stagings pushed to delta sessions"),
		restageBytes:    reg.Counter("oddci_transport_restage_bytes_total", "Bytes pushed by mid-session re-stagings (control + manifest + missing chunks only)"),
		readLat:         reg.Histogram("oddci_transport_frame_read_seconds", "Frame payload drain latency after the header arrived", nil),
		writeLat:        reg.Histogram("oddci_transport_frame_write_seconds", "Session write-flush latency", nil),
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("oddci_coordinator_nodes_seen", "Distinct node IDs that have connected", func() float64 {
		return float64(c.nodes.Len())
	})
	reg.GaugeFunc("oddci_transport_broadcast_encodes", "Broadcast artifacts encoded since start (flat in the session count)", func() float64 {
		return float64(c.encodeOps.Load())
	})
	reg.GaugeFunc("oddci_transport_image_epoch", "Staged image generation (bumped by UpdateImage)", func() float64 {
		return float64(c.stage.Load().epoch)
	})
	reg.GaugeFunc("oddci_transport_frame_pool_hits", "Frame buffer requests served within the pool size cap (process-wide)", func() float64 {
		h, _ := FramePoolStats()
		return float64(h)
	})
	reg.GaugeFunc("oddci_transport_frame_pool_misses", "Frame buffer requests above the pool size cap (process-wide)", func() float64 {
		_, m := FramePoolStats()
		return float64(m)
	})
	reg.RegisterHealth("heartbeat-silence", func() error {
		// Sampled from atomics at one-second granularity: the check
		// never touches the heartbeat data path.
		nano := c.lastBeatNano.Load()
		if c.nodes.Len() == 0 || nano == 0 {
			return nil
		}
		if silent := c.cfg.Clock.Now().Sub(time.Unix(0, nano)); silent > c.cfg.HeartbeatSilence {
			return fmt.Errorf("no heartbeat for %v (limit %v)", silent.Round(time.Millisecond), c.cfg.HeartbeatSilence)
		}
		return nil
	})
}

// Addr returns the bound address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// PublicKey returns the Controller key nodes should pin.
func (c *Coordinator) PublicKey() ed25519.PublicKey { return c.pub }

// Seq returns the wakeup sequence on the wire (bumped past the recorded
// one after a StateDir restart, and by each UpdateImage).
func (c *Coordinator) Seq() uint32 { return c.stage.Load().seq }

// ImageEpoch returns the staged image generation (zero at construction,
// bumped by each UpdateImage).
func (c *Coordinator) ImageEpoch() uint64 { return c.stage.Load().epoch }

// StagedChunks returns how many distinct content-addressed chunk frames
// the current stage holds.
func (c *Coordinator) StagedChunks() int { return len(c.stage.Load().chunkFrames) }

// Recovered reports whether this coordinator resumed from a StateDir
// written by a previous run.
func (c *Coordinator) Recovered() bool { return c.recovered }

// Backend exposes the scheduler for job submission.
func (c *Coordinator) Backend() *backend.Backend { return c.be }

// WakeupTraceContext returns the root wakeup span's context (zero when
// tracing is off or the trace was not sampled).
func (c *Coordinator) WakeupTraceContext() span.Context { return c.wakeupCtx }

// HeartbeatCount returns how many heartbeats sessions have consumed.
func (c *Coordinator) HeartbeatCount() int64 { return c.heartbeats.Load() }

// NodeCount returns the number of distinct node IDs seen, in O(1).
func (c *Coordinator) NodeCount() int { return c.nodes.Len() }

// SeenNode reports whether a node ID ever connected.
func (c *Coordinator) SeenNode(id uint64) bool { return c.nodes.Has(id) }

// LastHeartbeat returns the last heartbeat arrival sampled at
// one-second granularity (zero time before the first beat).
func (c *Coordinator) LastHeartbeat() time.Time {
	nano := c.lastBeatNano.Load()
	if nano == 0 {
		return time.Time{}
	}
	return time.Unix(0, nano)
}

// BroadcastEncodes counts the broadcast artifacts (banner, control
// file, image) encoded since construction — flat in the number of
// sessions by design, which the transport bench sweep asserts.
func (c *Coordinator) BroadcastEncodes() int64 { return c.encodeOps.Load() }

// BroadcastBytes returns the size of the pre-encoded staged broadcast
// (control + image frames) each joining legacy session receives.
func (c *Coordinator) BroadcastBytes() int { return len(c.stage.Load().broadcast) }

// Submit enqueues a job and marks the backend draining so nodes go home
// when it finishes.
func (c *Coordinator) Submit(job *workload.Job) (*backend.JobHandle, error) {
	h, err := c.be.Submit(job)
	if err != nil {
		return nil, err
	}
	c.be.SetDraining(true)
	return h, nil
}

// Serve accepts node connections until Close. It returns after the
// listener closes and every session ends.
func (c *Coordinator) Serve() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			break
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.session(conn)
		}()
	}
	c.wg.Wait()
}

// Close shuts the listener down; active sessions end when their nodes
// disconnect.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.ln.Close()
	if c.store != nil {
		c.store.Close()
	}
}

// Drain closes the listener and waits up to d for active node sessions
// to wind down (each node needs one more poll to receive Done).
func (c *Coordinator) Drain(d time.Duration) {
	c.Close()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
	}
}

// sessionWriteBuf sizes the per-session bufio writer: replies batch
// here until the session would otherwise block in a read.
const sessionWriteBuf = 32 << 10

// session runs one node connection. The loop is single-goroutine, so
// writes need no lock: replies accumulate in the buffered writer and
// flush right before the session blocks waiting for the next frame —
// pipelined heartbeats and task hand-offs coalesce into one syscall.
func (c *Coordinator) session(conn net.Conn) {
	bw := bufio.NewWriterSize(conn, sessionWriteBuf)
	fr := NewFrameReader(conn)
	defer fr.Close()
	fr.Instrument(c.met.readLat, c.cfg.Clock)

	flush := func() error {
		if bw.Buffered() == 0 {
			return nil
		}
		var t0 time.Time
		if c.met.writeLat != nil {
			t0 = c.cfg.Clock.Now()
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if c.met.writeLat != nil {
			c.met.writeLat.ObserveDuration(c.cfg.Clock.Now().Sub(t0))
		}
		return nil
	}

	// Banner, then the staged "broadcast" after the hello: all three
	// artifacts are immutable pre-encoded buffers shared by every
	// session — zero per-node marshaling.
	if _, err := bw.Write(c.bannerFrame); err != nil {
		return
	}
	c.met.framesOut.Inc()
	c.met.bytesOut.Add(int64(len(c.bannerFrame)))
	if err := flush(); err != nil {
		return
	}
	t, payload, err := fr.Next()
	if err != nil || t != FrameHello {
		return
	}
	c.met.bytesIn.Add(int64(5 + len(payload)))
	var hello Hello
	if err := jsonUnmarshal(payload, &hello); err != nil {
		return
	}
	c.nodes.Add(hello.NodeID)
	c.met.sessions.Inc()

	// Outbound trace contexts are capability-negotiated like the binary
	// task plane: an untraced node's strict decoders expect base-length
	// frames, so suffixes only flow when its hello advertised trace_ctx.
	traceOK := hello.TraceCtx && c.cfg.Spans != nil
	// Credentials flow only when both sides opted in: the node's hello
	// advertised the echo and the coordinator runs a credentialed mode.
	credOK := hello.Cred && c.cfg.CredentialMode != backend.CredOff
	sessSp := c.cfg.Spans.Start(c.wakeupCtx, "session", "coordinator")
	sessSp.SetDetail("node=%d trace_ctx=%t", hello.NodeID, hello.TraceCtx)
	defer sessSp.End()

	// Staged broadcast push. Delta sessions receive the signed control,
	// the manifest, and every chunk frame; legacy sessions receive the
	// two-frame control+image push. Either way the per-session cost is a
	// memcpy of immutable pre-encoded buffers.
	deltaOK := hello.DeltaImg
	st := c.stage.Load()
	sessEpoch := st.epoch
	var sentHashes map[string]bool
	pushDelta := func(st *imageStage) (int, error) {
		wrote, frames := 0, int64(0)
		write := func(b []byte) error {
			if _, err := bw.Write(b); err != nil {
				return err
			}
			wrote += len(b)
			frames++
			return nil
		}
		err := write(st.ctrlFrame)
		if err == nil {
			err = write(st.manifestFrame)
		}
		for _, h := range st.hashes {
			if err != nil {
				break
			}
			if sentHashes[h] {
				continue
			}
			if err = write(st.chunkFrames[h]); err == nil {
				sentHashes[h] = true
			}
		}
		c.met.framesOut.Add(frames)
		c.met.bytesOut.Add(int64(wrote))
		c.met.broadcastBytes.Add(int64(wrote))
		return wrote, err
	}
	if deltaOK {
		sentHashes = make(map[string]bool, len(st.hashes))
		if _, err := pushDelta(st); err != nil {
			return
		}
	} else {
		if _, err := bw.Write(st.broadcast); err != nil {
			return
		}
		c.met.framesOut.Add(2)
		c.met.bytesOut.Add(int64(len(st.broadcast)))
		c.met.broadcastBytes.Add(int64(len(st.broadcast)))
	}
	if err := flush(); err != nil {
		return
	}

	// Reused hot-path state: decode targets and the frame build buffer
	// live for the whole session, so a task hand-off allocates only
	// what the backend itself does.
	var (
		wbuf   []byte
		binReq TaskRequestMsg
		binRes TaskResultMsg
		beReq  backend.TaskRequest
	)
	sendBin := func(t FrameType, enc func([]byte) []byte) error {
		wbuf = BeginFrame(wbuf[:0], t)
		wbuf = enc(wbuf)
		var err error
		if wbuf, err = EndFrame(wbuf, 0); err != nil {
			return err
		}
		_, err = bw.Write(wbuf)
		c.met.framesOut.Inc()
		c.met.bytesOut.Add(int64(len(wbuf)))
		return err
	}
	sendJSON := func(t FrameType, v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		c.met.framesOut.Inc()
		c.met.bytesOut.Add(int64(5 + len(raw)))
		return WriteFrame(bw, t, raw)
	}
	reply := func(resp any, bin bool) error {
		switch m := resp.(type) {
		case *backend.TaskAssign:
			out := TaskAssignMsg{JobID: m.JobID, TaskID: m.TaskID,
				RefSeconds: m.RefSeconds, OutputSize: m.OutputSize, Payload: m.Payload}
			if traceOK {
				out.Trace = m.Trace
			}
			if credOK {
				out.Cred = m.Credential
			}
			if bin {
				return sendBin(FrameTaskAssignBin, func(b []byte) []byte { return AppendTaskAssign(b, &out) })
			}
			return sendJSON(FrameTaskAssign, &out)
		case *backend.NoTask:
			out := NoTaskMsg{RetryAfterMS: m.RetryAfter.Milliseconds(), Done: m.Done}
			if bin {
				return sendBin(FrameNoTaskBin, func(b []byte) []byte { return AppendNoTask(b, &out) })
			}
			return sendJSON(FrameNoTask, &out)
		}
		return nil
	}

	for {
		// Flush point: batch replies until the next read would block.
		if fr.Buffered() == 0 {
			if err := flush(); err != nil {
				return
			}
		}
		t, payload, err := fr.Next()
		if err != nil {
			return
		}
		c.met.bytesIn.Add(int64(5 + len(payload)))
		switch t {
		case FrameHeartbeat:
			c.met.framesInHB.Inc()
			if _, err := control.DecodeHeartbeat(payload); err != nil {
				continue
			}
			c.heartbeats.Add(1)
			// One-second-granularity atomic sample (same trick as
			// Controller.HandleHeartbeat): the silence health check
			// tolerates minutes, and the load keeps the common case a
			// read-shared cache line instead of a contended store.
			if nano := c.cfg.Clock.Now().UnixNano(); nano-c.lastBeatNano.Load() > int64(time.Second) {
				c.lastBeatNano.Store(nano)
			}
			c.met.heartbeats.Inc()
			if _, err := bw.Write(c.hbReplyFrame); err != nil {
				return
			}
			c.met.framesOut.Inc()
			c.met.bytesOut.Add(int64(len(c.hbReplyFrame)))
			// Heartbeats are the re-staging tick: a delta session whose
			// stage is stale gets the new control + manifest + only the
			// chunks it has never been sent. Legacy sessions are never
			// re-staged mid-flight — their strict reply loop would choke
			// on unsolicited frames.
			if deltaOK {
				if cur := c.stage.Load(); cur.epoch != sessEpoch {
					wrote, err := pushDelta(cur)
					if err != nil {
						return
					}
					sessEpoch = cur.epoch
					c.met.restages.Inc()
					c.met.restageBytes.Add(int64(wrote))
				}
			}
		case FrameTaskRequestBin:
			c.met.framesInTaskReq.Inc()
			if err := DecodeTaskRequest(payload, &binReq); err != nil {
				continue
			}
			beReq.NodeID = binReq.NodeID
			beReq.Trace = binReq.Trace
			if err := reply(c.be.HandleRequest(&beReq), true); err != nil {
				return
			}
		case FrameTaskRequest:
			c.met.framesInTaskReq.Inc()
			var req TaskRequestMsg
			if err := unmarshal(payload, &req); err != nil {
				continue
			}
			beReq.NodeID = req.NodeID
			beReq.Trace = req.Trace
			if err := reply(c.be.HandleRequest(&beReq), false); err != nil {
				return
			}
		case FrameTaskResultBin:
			c.met.framesInTaskRes.Inc()
			if err := DecodeTaskResult(payload, &binRes); err != nil {
				continue
			}
			c.be.HandleResult(&backend.TaskResult{
				NodeID: binRes.NodeID, JobID: binRes.JobID, TaskID: binRes.TaskID,
				Payload: binRes.Payload, Credential: binRes.Cred, Trace: binRes.Trace,
			})
		case FrameTaskResult:
			c.met.framesInTaskRes.Inc()
			var res TaskResultMsg
			if err := unmarshal(payload, &res); err != nil {
				continue
			}
			c.be.HandleResult(&backend.TaskResult{
				NodeID: res.NodeID, JobID: res.JobID, TaskID: res.TaskID,
				Payload: res.Payload, Credential: res.Cred, Trace: res.Trace,
			})
		default:
			// Unknown frames are ignored for forward compatibility.
			c.met.framesInOther.Inc()
		}
	}
}

func unmarshal(payload []byte, v any) error {
	if err := jsonUnmarshal(payload, v); err != nil {
		return fmt.Errorf("transport: bad frame: %w", err)
	}
	return nil
}
