package transport

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/backend"
	"oddci/internal/core/instance"
	"oddci/internal/journal"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// CoordinatorConfig assembles the server side of a TCP deployment: the
// Controller head-end and Backend roles in one process.
type CoordinatorConfig struct {
	// Listen is the TCP address ("127.0.0.1:0" for tests).
	Listen string
	// Name labels the deployment in the banner.
	Name string
	// Image is the application image staged to nodes.
	Image *appimage.Image
	// Probability gates node participation (default 1).
	Probability float64
	// Requirements filter devices.
	Requirements instance.Requirements
	// HeartbeatPeriod instructs the nodes (default 10 s).
	HeartbeatPeriod time.Duration
	// Clock drives the backend's lease timestamps and the coordinator's
	// heartbeat bookkeeping (default wall clock). Injecting a simulated
	// clock keeps transport timestamps consistent with simtime-driven
	// tests.
	Clock simtime.Clock
	// Key signs control frames; generated if nil.
	Key ed25519.PrivateKey
	// Obs, if set, collects coordinator and backend telemetry
	// (oddci_coordinator_*, oddci_backend_*) and registers the
	// heartbeat-silence health check.
	Obs *obs.Registry
	// HeartbeatSilence is how long the coordinator tolerates hearing no
	// heartbeat (while nodes are connected) before the heartbeat-silence
	// health check fails (default 3× HeartbeatPeriod).
	HeartbeatSilence time.Duration
	// StateDir, if set, makes the coordinator durable across restarts:
	// the signing key persists (nodes keep verifying the same identity,
	// unless Key is given explicitly) and the wakeup sequence resumes
	// past its pre-crash value, so nodes that already evaluated the old
	// broadcast re-evaluate the new one instead of ignoring a replayed
	// seq.
	StateDir string
}

// Coordinator is the listening process.
type Coordinator struct {
	cfg       CoordinatorConfig
	ln        net.Listener
	pub       ed25519.PublicKey
	be        *backend.Backend
	control   []byte
	image     ImageFile
	store     *journal.Store
	seq       uint32
	recovered bool

	mu         sync.Mutex
	closed     bool
	Heartbeats int64
	NodesSeen  map[uint64]bool
	lastBeat   time.Time

	metHeartbeats *obs.Counter
	metSessions   *obs.Counter

	wg sync.WaitGroup
}

// NewCoordinator binds the listener and prepares the signed control
// file.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Image == nil {
		return nil, errors.New("transport: coordinator needs an image")
	}
	if cfg.Probability == 0 {
		cfg.Probability = 1
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewReal()
	}
	// Durable identity and sequence continuity.
	var (
		store   *journal.Store
		state   *journal.State
		prevRec *journal.InstanceRecord
	)
	if cfg.StateDir != "" {
		if cfg.Key == nil {
			key, err := journal.LoadOrCreateKey(cfg.StateDir)
			if err != nil {
				return nil, err
			}
			cfg.Key = key
		}
		var err error
		store, err = journal.Open(cfg.StateDir, journal.Options{})
		if err != nil {
			return nil, err
		}
		state, err = store.Load()
		if err != nil {
			store.Close()
			return nil, err
		}
		prevRec = state.Instances[1]
	}
	if cfg.Key == nil {
		_, key, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		cfg.Key = key
	}
	imgRaw, err := cfg.Image.Encode()
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	digest := appimage.DigestOf(imgRaw)
	// Resume one past the recorded sequence: nodes that already
	// evaluated the pre-crash wakeup evaluate this one afresh.
	seq := uint32(1)
	var wakeups uint32 = 1
	if prevRec != nil {
		seq = prevRec.Seq + 1
		wakeups = prevRec.Wakeups + 1
	}
	wakeup := &control.Wakeup{
		InstanceID:      1,
		Seq:             seq,
		Probability:     cfg.Probability,
		Requirements:    cfg.Requirements,
		ImageFile:       "image.1",
		ImageDigest:     digest,
		HeartbeatPeriod: cfg.HeartbeatPeriod,
	}
	ctrlFile, err := control.SignWakeup(wakeup, cfg.Key)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	if store != nil {
		rec := journal.InstanceRecord{
			ID:              1,
			Seq:             seq,
			Wakeups:         wakeups,
			Probability:     cfg.Probability,
			Target:          1,
			HeartbeatPeriod: cfg.HeartbeatPeriod,
			Requirements:    cfg.Requirements,
			ImageFile:       "image.1",
			Image:           imgRaw,
		}
		if prevRec == nil {
			if err := store.Append(journal.Record{Op: journal.OpCreate, Inst: rec}); err != nil {
				store.Close()
				return nil, err
			}
		} else {
			// Restarted: compact to a one-record snapshot carrying the
			// bumped sequence (and the possibly-updated image).
			st := journal.NewState()
			st.NextID = 2
			st.Instances[1] = &rec
			st.Order = []uint64{1}
			if err := store.Compact(st); err != nil {
				store.Close()
				return nil, err
			}
		}
	}
	if cfg.HeartbeatSilence <= 0 {
		cfg.HeartbeatSilence = 3 * cfg.HeartbeatPeriod
	}
	be, err := backend.New(backend.Config{
		Clock:      cfg.Clock,
		RetryAfter: time.Second,
		LeaseBase:  30 * time.Second,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		ln:        ln,
		pub:       cfg.Key.Public().(ed25519.PublicKey),
		be:        be,
		control:   ctrlFile,
		image:     ImageFile{Name: "image.1", Data: imgRaw},
		store:     store,
		seq:       seq,
		recovered: prevRec != nil,
		NodesSeen: make(map[uint64]bool),
	}
	c.instrument(cfg.Obs)
	return c, nil
}

// instrument registers coordinator telemetry and the heartbeat-silence
// health check.
func (c *Coordinator) instrument(reg *obs.Registry) {
	c.metHeartbeats = reg.Counter("oddci_coordinator_heartbeats_total", "Heartbeat frames received from nodes")
	c.metSessions = reg.Counter("oddci_coordinator_sessions_total", "Node TCP sessions accepted")
	if reg == nil {
		return
	}
	reg.GaugeFunc("oddci_coordinator_nodes_seen", "Distinct node IDs that have connected", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.NodesSeen))
	})
	reg.RegisterHealth("heartbeat-silence", func() error {
		c.mu.Lock()
		seen := len(c.NodesSeen)
		last := c.lastBeat
		c.mu.Unlock()
		if seen == 0 || last.IsZero() {
			return nil
		}
		if silent := c.cfg.Clock.Now().Sub(last); silent > c.cfg.HeartbeatSilence {
			return fmt.Errorf("no heartbeat for %v (limit %v)", silent.Round(time.Millisecond), c.cfg.HeartbeatSilence)
		}
		return nil
	})
}

// Addr returns the bound address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// PublicKey returns the Controller key nodes should pin.
func (c *Coordinator) PublicKey() ed25519.PublicKey { return c.pub }

// Seq returns the wakeup sequence on the wire (bumped past the recorded
// one after a StateDir restart).
func (c *Coordinator) Seq() uint32 { return c.seq }

// Recovered reports whether this coordinator resumed from a StateDir
// written by a previous run.
func (c *Coordinator) Recovered() bool { return c.recovered }

// Backend exposes the scheduler for job submission.
func (c *Coordinator) Backend() *backend.Backend { return c.be }

// Submit enqueues a job and marks the backend draining so nodes go home
// when it finishes.
func (c *Coordinator) Submit(job *workload.Job) (*backend.JobHandle, error) {
	h, err := c.be.Submit(job)
	if err != nil {
		return nil, err
	}
	c.be.SetDraining(true)
	return h, nil
}

// Serve accepts node connections until Close. It returns after the
// listener closes and every session ends.
func (c *Coordinator) Serve() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			break
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.session(conn)
		}()
	}
	c.wg.Wait()
}

// Close shuts the listener down; active sessions end when their nodes
// disconnect.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.ln.Close()
	if c.store != nil {
		c.store.Close()
	}
}

// Drain closes the listener and waits up to d for active node sessions
// to wind down (each node needs one more poll to receive Done).
func (c *Coordinator) Drain(d time.Duration) {
	c.Close()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
	}
}

// session runs one node connection.
func (c *Coordinator) session(conn net.Conn) {
	var wmu sync.Mutex
	send := func(t FrameType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return WriteFrame(conn, t, payload)
	}
	sendJSON := func(t FrameType, v any) error {
		wmu.Lock()
		defer wmu.Unlock()
		return WriteJSON(conn, t, v)
	}

	if err := sendJSON(FrameBanner, &Banner{ControllerKey: c.pub, Name: c.cfg.Name}); err != nil {
		return
	}
	var hello Hello
	if err := ReadJSON(conn, FrameHello, &hello); err != nil {
		return
	}
	c.mu.Lock()
	c.NodesSeen[hello.NodeID] = true
	c.mu.Unlock()
	c.metSessions.Inc()

	// The "broadcast": signed control file plus the image.
	if err := send(FrameControl, c.control); err != nil {
		return
	}
	if err := sendJSON(FrameImage, &c.image); err != nil {
		return
	}

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch t {
		case FrameHeartbeat:
			if _, err := control.DecodeHeartbeat(payload); err != nil {
				continue
			}
			c.mu.Lock()
			c.Heartbeats++
			c.lastBeat = c.cfg.Clock.Now()
			c.mu.Unlock()
			c.metHeartbeats.Inc()
			reply := control.EncodeHeartbeatReply(&control.HeartbeatReply{Command: control.CmdNone})
			if err := send(FrameHeartbeatReply, reply); err != nil {
				return
			}
		case FrameTaskRequest:
			var req TaskRequestMsg
			if err := unmarshal(payload, &req); err != nil {
				continue
			}
			switch m := c.be.HandleRequest(&backend.TaskRequest{NodeID: req.NodeID}).(type) {
			case *backend.TaskAssign:
				out := &TaskAssignMsg{JobID: m.JobID, TaskID: m.TaskID,
					RefSeconds: m.RefSeconds, OutputSize: m.OutputSize, Payload: m.Payload}
				if err := sendJSON(FrameTaskAssign, out); err != nil {
					return
				}
			case *backend.NoTask:
				out := &NoTaskMsg{RetryAfterMS: m.RetryAfter.Milliseconds(), Done: m.Done}
				if err := sendJSON(FrameNoTask, out); err != nil {
					return
				}
			}
		case FrameTaskResult:
			var res TaskResultMsg
			if err := unmarshal(payload, &res); err != nil {
				continue
			}
			c.be.HandleResult(&backend.TaskResult{
				NodeID: res.NodeID, JobID: res.JobID, TaskID: res.TaskID, Payload: res.Payload,
			})
		default:
			// Unknown frames are ignored for forward compatibility.
		}
	}
}

func unmarshal(payload []byte, v any) error {
	if err := jsonUnmarshal(payload, v); err != nil {
		return fmt.Errorf("transport: bad frame: %w", err)
	}
	return nil
}
