package transport

import (
	"net"
	"strings"
	"testing"
	"time"

	"oddci/internal/federation"
)

// shardRig starts one loopback coordinator per shard, each announcing
// its shard id in the banner and holding a small job so nodes drain
// and exit.
func shardRig(t *testing.T, shards int) []*Coordinator {
	t.Helper()
	coords := make([]*Coordinator, shards)
	for s := 0; s < shards; s++ {
		c, err := NewCoordinator(CoordinatorConfig{
			Listen: "127.0.0.1:0",
			Name:   "fed",
			Image:  testImage(),
			Shard:  s,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		go c.Serve()
		if _, err := c.Submit(testJob(t, 2)); err != nil {
			t.Fatal(err)
		}
		coords[s] = c
	}
	return coords
}

// idOwnedBy scans node ids for one whose ring home is shard s.
func idOwnedBy(t *testing.T, ring *federation.Ring, s federation.ShardID) uint64 {
	t.Helper()
	for id := uint64(1); id < 10000; id++ {
		if ring.Owner(id) == s {
			return id
		}
	}
	t.Fatalf("no node id owned by shard %d in probe range", s)
	return 0
}

func TestFederatedNodeHomePlacement(t *testing.T) {
	const shards = 3
	coords := shardRig(t, shards)
	addrs := make([]string, shards)
	for s, c := range coords {
		addrs[s] = c.Addr()
	}
	ring, err := federation.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := federation.ShardID(0); s < shards; s++ {
		id := idOwnedBy(t, ring, s)
		rep, err := RunFederatedNode(FederatedNodeConfig{
			NodeConfig: NodeConfig{NodeID: id, TimeScale: 500, Seed: 7},
			ShardAddrs: addrs,
		})
		if err != nil {
			t.Fatalf("shard %d node %d: %v", s, id, err)
		}
		if !rep.Joined {
			t.Fatalf("node %d never joined", id)
		}
		if rep.HomeShard != s || rep.ServedBy != s || rep.Handoffs != 0 {
			t.Fatalf("node %d placement: home=%d served=%d handoffs=%d, want home shard %d",
				id, rep.HomeShard, rep.ServedBy, rep.Handoffs, s)
		}
		if rep.BannerShard != int(s) {
			t.Fatalf("banner shard %d, want %d", rep.BannerShard, s)
		}
	}
}

// TestFederatedNodeHandoff: the home coordinator is unreachable, so the
// agent walks the ring and lands on the home shard's successor — the
// same shard that would replay the home's journal at failover.
func TestFederatedNodeHandoff(t *testing.T) {
	const shards = 3
	ring, err := federation.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	const down = federation.ShardID(1)
	id := idOwnedBy(t, ring, down)
	succ := ring.Successor(down)

	// A listener opened and immediately closed yields an address that
	// refuses connections — the dead home shard.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		if federation.ShardID(s) == down {
			addrs[s] = deadAddr
			continue
		}
		c, err := NewCoordinator(CoordinatorConfig{
			Listen: "127.0.0.1:0", Name: "fed", Image: testImage(), Shard: s,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		go c.Serve()
		if _, err := c.Submit(testJob(t, 2)); err != nil {
			t.Fatal(err)
		}
		addrs[s] = c.Addr()
	}

	rep, err := RunFederatedNode(FederatedNodeConfig{
		NodeConfig: NodeConfig{NodeID: id, TimeScale: 500, Seed: 7},
		ShardAddrs: addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Joined {
		t.Fatal("handed-off node never joined")
	}
	if rep.HomeShard != down || rep.ServedBy != succ || rep.Handoffs != 1 {
		t.Fatalf("handoff placement: home=%d served=%d handoffs=%d, want served by successor %d after 1 handoff",
			rep.HomeShard, rep.ServedBy, rep.Handoffs, succ)
	}
	if rep.BannerShard != int(succ) {
		t.Fatalf("banner shard %d, want successor %d", rep.BannerShard, succ)
	}
}

func TestFederatedNodeAllShardsDown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	start := time.Now()
	_, err = RunFederatedNode(FederatedNodeConfig{
		NodeConfig: NodeConfig{NodeID: 1},
		ShardAddrs: []string{deadAddr, deadAddr},
	})
	if err == nil {
		t.Fatal("all shards down yet the agent joined")
	}
	if !strings.Contains(err.Error(), "all 2 shards unreachable") {
		t.Fatalf("error lacks handoff context: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("dead-shard walk took too long")
	}

	if _, err := RunFederatedNode(FederatedNodeConfig{
		NodeConfig: NodeConfig{NodeID: 1},
	}); err == nil {
		t.Fatal("empty shard list accepted")
	}
}
