package transport

import (
	"bytes"
	"crypto/ed25519"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/instance"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, FrameControl, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameControl || !bytes.Equal(got, payload) {
		t.Fatalf("type=%d payload=%q", typ, got)
	}
}

// Property: any frame sequence round-trips through a shared buffer.
func TestFrameSequenceProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%10 + 1
		var buf bytes.Buffer
		type frame struct {
			t FrameType
			p []byte
		}
		var frames []frame
		for i := 0; i < n; i++ {
			p := make([]byte, rng.Intn(5000))
			rng.Read(p)
			fr := frame{FrameType(rng.Intn(10) + 1), p}
			frames = append(frames, fr)
			if err := WriteFrame(&buf, fr.t, fr.p); err != nil {
				return false
			}
		}
		for _, fr := range frames {
			typ, p, err := ReadFrame(&buf)
			if err != nil || typ != fr.t || !bytes.Equal(p, fr.p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, FrameHello, []byte("abcdef"))
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, len(raw) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{byte(FrameImage), 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func testImage() *appimage.Image {
	return &appimage.Image{Name: "net", Version: 1, EntryPoint: "w", Payload: make([]byte, 32<<10)}
}

func testJob(t *testing.T, n int) *workload.Job {
	t.Helper()
	g := workload.Generator{Name: "net", Tasks: n, InputBytes: 128, OutputBytes: 64, MeanSeconds: 2}
	j, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// Full deployment over real loopback TCP: coordinator + 4 node agents
// in one process, time-scaled 200× so 2-reference-second tasks take
// ~10 ms each.
func TestTCPEndToEnd(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "test",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 24))
	if err != nil {
		t.Fatal(err)
	}

	const nodes = 4
	var wg sync.WaitGroup
	reports := make([]NodeReport, nodes)
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = RunNode(NodeConfig{
				Addr:      coord.Addr(),
				NodeID:    uint64(i + 1),
				TimeScale: 200,
				Seed:      9,
				PinnedKey: coord.PublicKey(),
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	total := 0
	for i, r := range reports {
		if !r.Joined {
			t.Fatalf("node %d never joined", i+1)
		}
		total += r.TasksDone
	}
	if total != 24 {
		t.Fatalf("nodes report %d tasks, want 24", total)
	}
	if coord.NodeCount() != nodes {
		t.Fatalf("coordinator saw %d nodes", coord.NodeCount())
	}
	for i := 1; i <= nodes; i++ {
		if !coord.SeenNode(uint64(i)) {
			t.Fatalf("node %d missing from the striped node set", i)
		}
	}
	if coord.SeenNode(999) {
		t.Fatal("phantom node in the striped node set")
	}
	for i, r := range reports {
		if !r.BinaryTaskPlane {
			t.Fatalf("node %d did not negotiate the binary task plane", i+1)
		}
	}
}

func TestTCPNodeRejectsForgedCoordinator(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0",
		Image:  testImage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()
	if _, err := coord.Submit(testJob(t, 1)); err != nil {
		t.Fatal(err)
	}

	otherPub, _, _ := ed25519.GenerateKey(rand.New(rand.NewSource(1)))
	_, err = RunNode(NodeConfig{
		Addr:      coord.Addr(),
		NodeID:    1,
		TimeScale: 200,
		PinnedKey: otherPub,
	})
	if err == nil {
		t.Fatal("node accepted a coordinator with the wrong key")
	}
}

func TestTCPRequirementsFilter(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:       "127.0.0.1:0",
		Image:        testImage(),
		Requirements: instance.Requirements{Class: instance.ClassConsole},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()
	if _, err := coord.Submit(testJob(t, 1)); err != nil {
		t.Fatal(err)
	}

	report, err := RunNode(NodeConfig{
		Addr: coord.Addr(), NodeID: 1, TimeScale: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Joined {
		t.Fatal("STB joined a console-only instance")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing image accepted")
	}
}

func TestCoordinatorDrain(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0", Image: testImage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	if coord.Backend() == nil {
		t.Fatal("backend accessor nil")
	}
	h, err := coord.Submit(testJob(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1, TimeScale: 500,
		}); err != nil {
			t.Errorf("node: %v", err)
		}
	}()
	<-done
	if _, ok := h.Done(); !ok {
		t.Fatal("job incomplete")
	}
	coord.Drain(5 * time.Second) // returns once the session ended
	coord.Drain(time.Second)     // idempotent
}

// TestCoordinatorRestartKeepsIdentity: a coordinator restarted on the
// same state dir must sign with the same key and resume past the
// recorded wakeup sequence, so nodes that already evaluated the old
// broadcast re-evaluate the new one instead of ignoring a replayed seq.
func TestCoordinatorRestartKeepsIdentity(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0", Image: testImage(), StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Recovered() {
		t.Fatal("fresh state dir reported recovered")
	}
	if c1.Seq() != 1 {
		t.Fatalf("fresh seq = %d, want 1", c1.Seq())
	}
	pub := c1.PublicKey()
	c1.Close()

	c2, err := NewCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0", Image: testImage(), StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Recovered() {
		t.Fatal("restart on populated state dir did not recover")
	}
	if !c2.PublicKey().Equal(pub) {
		t.Fatal("restarted coordinator changed identity")
	}
	if c2.Seq() != 2 {
		t.Fatalf("restarted seq = %d, want 2 (bumped past the recorded wakeup)", c2.Seq())
	}

	// A pinned node still verifies the restarted coordinator.
	go c2.Serve()
	if _, err := c2.Submit(testJob(t, 2)); err != nil {
		t.Fatal(err)
	}
	rep, err := RunNode(NodeConfig{
		Addr: c2.Addr(), NodeID: 1, TimeScale: 200, Seed: 3, PinnedKey: pub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Joined || rep.TasksDone != 2 {
		t.Fatalf("node against restarted coordinator: %+v", rep)
	}
}

// TestInjectedClockStampsTransport runs a loopback deployment with a
// frozen Sim clock injected into both sides. Network I/O and tickers
// still run on wall time, but every timestamp the transport records
// must come from the injected clock: the coordinator's last-heartbeat
// mark has to equal the sim epoch exactly, which wall-clock time.Now()
// could never produce.
func TestInjectedClockStampsTransport(t *testing.T) {
	epoch := time.Date(2030, 6, 1, 12, 0, 0, 0, time.UTC)
	clk := simtime.NewSim(epoch)
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "clock-test",
		Image:           testImage(),
		HeartbeatPeriod: 5 * time.Second,
		Clock:           clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	h, err := coord.Submit(testJob(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunNode(NodeConfig{
		Addr:      coord.Addr(),
		NodeID:    1,
		TimeScale: 200,
		Seed:      9,
		PinnedKey: coord.PublicKey(),
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Joined {
		t.Fatal("node never joined")
	}
	if rep.Heartbeats == 0 {
		t.Fatal("node sent no heartbeats; nothing to assert on")
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}

	last := coord.LastHeartbeat()
	if !last.Equal(epoch) {
		t.Fatalf("coordinator lastBeat = %v, want sim epoch %v (heartbeat timestamps must come from the configured clock)", last, epoch)
	}
}
