package transport

import (
	"crypto/ed25519"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// TestRecomposeDrivesDeltaPlane is the end-to-end recomposition path:
// Provider-facing Controller.Recompose commits the new image, its
// OnImageUpdate hook rides the same update onto a live TCP
// coordinator's delta_img plane, and a connected node re-stages from
// pushed delta chunks — no full image re-air anywhere on the wire.
func TestRecomposeDrivesDeltaPlane(t *testing.T) {
	img := chunkedImage(t, 20, 32<<10)
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Image:           img,
		ImageChunkBytes: 4 << 10,
		HeartbeatPeriod: 5 * time.Second, // 25 ms at TimeScale 200
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go coord.Serve()

	// The control-plane Controller runs on sim time; only its Recompose
	// commit path matters here. Its OnImageUpdate hook runs with the
	// Controller lock held — UpdateImage never calls back into the
	// Controller, so the direct call is safe.
	var pushed atomic.Int32
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
		OnImageUpdate: func(_ instance.ID, img *appimage.Image) {
			if err := coord.UpdateImage(img); err != nil {
				t.Errorf("UpdateImage from Recompose hook: %v", err)
				return
			}
			pushed.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	id, err := ctrl.CreateInstance(controller.InstanceSpec{
		Image: img, Target: 1, InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	h, err := coord.Submit(testJob(t, 32)) // ~10 ms per task: ample window
	if err != nil {
		t.Fatal(err)
	}
	var report NodeReport
	var nodeErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		report, nodeErr = RunNode(NodeConfig{
			Addr: coord.Addr(), NodeID: 1,
			TimeScale: 200, Seed: 7, PinnedKey: coord.PublicKey(),
		})
	}()

	// Recompose mid-session: one chunk's worth of payload changes.
	time.Sleep(50 * time.Millisecond)
	before := coord.BroadcastEncodes()
	img2 := chunkedImage(t, 20, 32<<10)
	img2.Version = 2
	for i := 9000; i < 9100; i++ {
		img2.Payload[i] ^= 0xFF
	}
	if err := ctrl.Recompose(id, img2); err != nil {
		t.Fatalf("Recompose: %v", err)
	}
	if pushed.Load() != 1 {
		t.Fatalf("hook pushed %d updates, want 1", pushed.Load())
	}
	// control + legacy image + manifest + the flipped payload chunk +
	// the header chunk the version bump dirtied: the coordinator never
	// re-encoded the six unchanged chunks.
	if got := coord.BroadcastEncodes() - before; got != 5 {
		t.Fatalf("recompose cost %d encodes, want 5 (3 artifacts + 2 changed chunks)", got)
	}

	<-done
	if nodeErr != nil {
		t.Fatal(nodeErr)
	}
	if _, ok := h.Done(); !ok {
		t.Fatal("job incomplete")
	}
	if !report.DeltaImage || report.Restages != 1 {
		t.Fatalf("report %+v, want delta session with 1 restage", report)
	}
	// The Controller committed the recomposition under the bumped
	// sequence, and the coordinator followed.
	st, err := ctrl.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wakeups != 2 {
		t.Fatalf("controller wakeups = %d, want 2 (create + recompose)", st.Wakeups)
	}
	if coord.ImageEpoch() != 1 || coord.Seq() != 2 {
		t.Fatalf("coordinator epoch=%d seq=%d, want 1/2", coord.ImageEpoch(), coord.Seq())
	}
	// No full re-air: the restage pushed control + manifest + the one
	// missing chunk, a fraction of the staged broadcast.
	restageBytes, _ := reg.Value("oddci_transport_restage_bytes_total")
	if restageBytes <= 0 || restageBytes >= float64(coord.BroadcastBytes()) {
		t.Fatalf("restage bytes = %v, want positive and well under the full broadcast (%d)",
			restageBytes, coord.BroadcastBytes())
	}
}
