// Package sim provides the large-N discrete-event model of an OddCI
// instance executing a bag-of-tasks job — the engine behind the Figure
// 6/7 sweeps, where populations up to millions of nodes and task counts
// in the millions make the goroutine-per-node live mode (internal/
// system) impractical.
//
// The model keeps exactly the quantities equation (1) is built from:
// per-node wakeup times drawn from the carousel model, then a
// work-conserving pull loop per node with s/δ input transfer, p
// compute, r/δ result transfer. Everything else (heartbeats, AIT
// signalling, maintenance) is second-order for makespan and is
// validated separately by the live mode; an integration test pins this
// model against the live system at small N.
package sim

import (
	"errors"
	"math/rand"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/simtime"
)

// JoinModel selects how nodes' wakeup completion times are drawn.
type JoinModel int

const (
	// JoinRandomPhase models receivers whose carousel reads begin at a
	// uniformly random phase: W ~ U(C, 2C) for an image-dominated
	// carousel — the paper's 1.5·I/β expectation.
	JoinRandomPhase JoinModel = iota
	// JoinSynchronized models receivers that all begin reading at the
	// carousel commit: W = C for everyone (the block-cache receiver's
	// best case).
	JoinSynchronized
)

// JobConfig parameterizes one run.
type JobConfig struct {
	Nodes      int
	Tasks      int
	ImageBytes int64
	// Beta and Delta are channel capacities in bps.
	Beta, Delta float64
	// TaskInBytes (s), TaskOutBytes (r), TaskSeconds (p).
	TaskInBytes  int
	TaskOutBytes int
	TaskSeconds  float64
	// RequestBytes is the per-pull request overhead (default 64).
	RequestBytes int
	Join         JoinModel
	Seed         int64
}

func (c *JobConfig) validate() error {
	switch {
	case c.Nodes <= 0 || c.Tasks <= 0:
		return errors.New("sim: nodes and tasks must be positive")
	case c.Beta <= 0 || c.Delta <= 0:
		return errors.New("sim: channel rates must be positive")
	case c.TaskSeconds <= 0:
		return errors.New("sim: task time must be positive")
	case c.ImageBytes < 0 || c.TaskInBytes < 0 || c.TaskOutBytes < 0:
		return errors.New("sim: sizes must be non-negative")
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 64
	}
	return nil
}

// JobResult reports one run.
type JobResult struct {
	Makespan   time.Duration
	WakeupMean time.Duration
	WakeupMax  time.Duration
	// Efficiency is equation (2) evaluated on the measured makespan.
	Efficiency float64
	// TasksMin/TasksMax report per-node load balance.
	TasksMin, TasksMax int
	Events             uint64
}

// Params converts the configuration to the closed-form model's inputs.
func (c JobConfig) Params() analytic.Params {
	return analytic.Params{
		ImageBits:   float64(c.ImageBytes) * 8,
		Beta:        c.Beta,
		Delta:       c.Delta,
		N:           float64(c.Nodes),
		Tasks:       float64(c.Tasks),
		TaskInBits:  float64(c.TaskInBytes) * 8,
		TaskOutBits: float64(c.TaskOutBytes) * 8,
		TaskSeconds: c.TaskSeconds,
	}
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// RunJob executes the model and returns measured quantities.
func RunJob(cfg JobConfig) (JobResult, error) {
	if err := cfg.validate(); err != nil {
		return JobResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)
	clk := simtime.NewSim(epoch)

	cycle := float64(cfg.ImageBytes) * 8 / cfg.Beta
	perTask := secs(float64(cfg.RequestBytes+cfg.TaskInBytes)*8/cfg.Delta) +
		secs(cfg.TaskSeconds) +
		secs(float64(cfg.TaskOutBytes)*8/cfg.Delta)

	var (
		queue     = cfg.Tasks
		lastDone  time.Time
		wakeSum   time.Duration
		wakeMax   time.Duration
		taskCount = make([]int, cfg.Nodes)
	)

	var nodeLoop func(i int)
	nodeLoop = func(i int) {
		if queue == 0 {
			return
		}
		queue--
		taskCount[i]++
		clk.AfterFunc(perTask, func() {
			lastDone = clk.Now()
			nodeLoop(i)
		})
	}

	for i := 0; i < cfg.Nodes; i++ {
		var w time.Duration
		switch cfg.Join {
		case JoinSynchronized:
			w = secs(cycle)
		default:
			w = secs(cycle * (1 + rng.Float64()))
		}
		wakeSum += w
		if w > wakeMax {
			wakeMax = w
		}
		i := i
		clk.AfterFunc(w, func() { nodeLoop(i) })
	}
	clk.Wait()

	if queue != 0 {
		return JobResult{}, errors.New("sim: tasks left unexecuted")
	}
	makespan := lastDone.Sub(epoch)
	res := JobResult{
		Makespan:   makespan,
		WakeupMean: wakeSum / time.Duration(cfg.Nodes),
		WakeupMax:  wakeMax,
		Events:     clk.Fired(),
		TasksMin:   cfg.Tasks,
	}
	for _, tc := range taskCount {
		if tc < res.TasksMin {
			res.TasksMin = tc
		}
		if tc > res.TasksMax {
			res.TasksMax = tc
		}
	}
	p := cfg.Params()
	res.Efficiency = p.Tasks * p.TaskSeconds / (makespan.Seconds() * p.N)
	return res, nil
}
