package sim

import (
	"math"
	"testing"
	"time"

	"oddci/internal/analytic"
)

func fig6Config(ratio, nodes int, phi float64) JobConfig {
	p := analytic.Figure6Defaults(float64(ratio), float64(nodes)).WithPhi(phi)
	return JobConfig{
		Nodes:        nodes,
		Tasks:        ratio * nodes,
		ImageBytes:   int64(p.ImageBits / 8),
		Beta:         p.Beta,
		Delta:        p.Delta,
		TaskInBytes:  int(p.TaskInBits / 8),
		TaskOutBytes: int(p.TaskOutBits / 8),
		TaskSeconds:  p.TaskSeconds,
		Seed:         1,
	}
}

func TestRunJobMatchesAnalyticAtHighRatio(t *testing.T) {
	// At n/N ≥ 10 the staggered joins smooth out and the DES should
	// track equation (1) within a few percent.
	for _, ratio := range []int{10, 100} {
		for _, phi := range []float64{100, 1000, 10000} {
			cfg := fig6Config(ratio, 200, phi)
			res, err := RunJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := cfg.Params().Makespan()
			got := res.Makespan.Seconds()
			if rel := math.Abs(got-want) / want; rel > 0.06 {
				t.Fatalf("ratio=%d Φ=%v: DES %.1fs vs analytic %.1fs (%.1f%%)",
					ratio, phi, got, want, rel*100)
			}
		}
	}
}

func TestRunJobEfficiencyShape(t *testing.T) {
	// E must increase with Φ at fixed ratio, and with ratio at fixed Φ.
	prev := -1.0
	for _, phi := range []float64{10, 100, 1000, 10000} {
		res, err := RunJob(fig6Config(100, 100, phi))
		if err != nil {
			t.Fatal(err)
		}
		if res.Efficiency <= prev {
			t.Fatalf("efficiency not increasing at Φ=%v: %v after %v", phi, res.Efficiency, prev)
		}
		prev = res.Efficiency
	}
	lo, err := RunJob(fig6Config(1, 100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunJob(fig6Config(100, 100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if hi.Efficiency <= lo.Efficiency {
		t.Fatalf("efficiency should grow with n/N: %v vs %v", lo.Efficiency, hi.Efficiency)
	}
}

func TestRunJobWakeupModels(t *testing.T) {
	cfgR := fig6Config(1, 2000, 100)
	cfgR.Seed = 7
	r, err := RunJob(cfgR)
	if err != nil {
		t.Fatal(err)
	}
	cycle := time.Duration(float64(cfgR.ImageBytes) * 8 / cfgR.Beta * float64(time.Second))
	// Random phase: mean ≈ 1.5 cycles, max ≤ 2 cycles.
	if got := r.WakeupMean.Seconds() / cycle.Seconds(); got < 1.45 || got > 1.55 {
		t.Fatalf("random-phase mean wakeup = %.3f cycles", got)
	}
	if r.WakeupMax > 2*cycle {
		t.Fatalf("wakeup max %v exceeds 2 cycles", r.WakeupMax)
	}

	cfgS := cfgR
	cfgS.Join = JoinSynchronized
	s, err := RunJob(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if s.WakeupMean != cycle || s.WakeupMax != cycle {
		t.Fatalf("synchronized wakeup = %v/%v, want exactly one cycle", s.WakeupMean, s.WakeupMax)
	}
	if s.Makespan >= r.Makespan {
		t.Fatal("synchronized join should beat random phase")
	}
}

func TestRunJobLoadBalance(t *testing.T) {
	res, err := RunJob(fig6Config(50, 100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksMin < 45 || res.TasksMax > 55 {
		t.Fatalf("work pull unbalanced: min=%d max=%d, want ≈50", res.TasksMin, res.TasksMax)
	}
}

func TestRunJobScalesToLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N run")
	}
	cfg := fig6Config(10, 100000, 1000) // 1M tasks
	res, err := RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Params().Makespan()
	if rel := math.Abs(res.Makespan.Seconds()-want) / want; rel > 0.06 {
		t.Fatalf("large-N DES off by %.1f%%", rel*100)
	}
	if res.Events < 1000000 {
		t.Fatalf("suspiciously few events: %d", res.Events)
	}
}

func TestRunJobValidation(t *testing.T) {
	bad := []JobConfig{
		{},
		{Nodes: 1, Tasks: 1, Beta: 1},
		{Nodes: 1, Tasks: 1, Beta: 1, Delta: 1},
		{Nodes: 1, Tasks: 1, Beta: 1, Delta: 1, TaskSeconds: 1, ImageBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := RunJob(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func BenchmarkRunJob100kTasks(b *testing.B) {
	cfg := fig6Config(10, 10000, 1000)
	for i := 0; i < b.N; i++ {
		if _, err := RunJob(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The synchronized-join DES must match the discrete closed form
// MakespanSynchronized exactly: both are deterministic.
func TestSynchronizedDESMatchesDiscreteModel(t *testing.T) {
	for _, ratio := range []int{1, 7, 100} {
		cfg := fig6Config(ratio, 50, 250)
		cfg.Join = JoinSynchronized
		cfg.RequestBytes = 64 // pin the default so the model sees it too
		res, err := RunJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.Params().MakespanSynchronized(float64(cfg.RequestBytes) * 8)
		got := res.Makespan.Seconds()
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("ratio=%d: DES %.9fs vs discrete model %.9fs", ratio, got, want)
		}
	}
}
