package sim

import (
	"errors"
	"math/rand"
	"time"

	"oddci/internal/simtime"
)

// ChurnJobConfig extends JobConfig with the viewer behaviour the paper's
// model assumes away: §5.2.1 requires nodes that "will remain tuned for
// at least the time required to complete the execution of the
// application". This model lets them leave.
type ChurnJobConfig struct {
	JobConfig
	// MeanOn and MeanOff are the exponential up/down period means.
	MeanOn, MeanOff time.Duration
	// LeaseSeconds is how long a task lost to a departure stays leased
	// before the Backend re-dispatches it (default 4·p + 120 s).
	LeaseSeconds float64
	// RejoinDelay is the time from a node powering back on to pulling
	// work again (middleware boot + wakeup retransmission + image
	// re-fetch; default 1.5 carousel cycles + 60 s).
	RejoinDelay time.Duration
	// RetryAfter is the idle-node poll backoff (default 30 s).
	RetryAfter time.Duration
}

// ChurnJobResult extends the base result with churn accounting.
type ChurnJobResult struct {
	JobResult
	TasksLost  int
	Departures int
}

// RunChurnJob executes the churn model.
func RunChurnJob(cfg ChurnJobConfig) (ChurnJobResult, error) {
	var out ChurnJobResult
	if err := cfg.JobConfig.validate(); err != nil {
		return out, err
	}
	if cfg.MeanOn <= 0 || cfg.MeanOff <= 0 {
		return out, errors.New("sim: churn means must be positive")
	}
	if cfg.LeaseSeconds <= 0 {
		cfg.LeaseSeconds = 4*cfg.TaskSeconds + 120
	}
	cycle := float64(cfg.ImageBytes) * 8 / cfg.Beta
	if cfg.RejoinDelay <= 0 {
		cfg.RejoinDelay = secs(1.5*cycle) + time.Minute
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 30 * time.Second
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)
	clk := simtime.NewSim(epoch)
	perTask := secs(float64(cfg.RequestBytes+cfg.TaskInBytes)*8/cfg.Delta) +
		secs(cfg.TaskSeconds) +
		secs(float64(cfg.TaskOutBytes)*8/cfg.Delta)

	var (
		queue     = cfg.Tasks
		remaining = cfg.Tasks // not yet successfully completed
		lastDone  time.Time
		deathAt   = make([]time.Time, cfg.Nodes)
		alive     = make([]bool, cfg.Nodes)
		taskCount = make([]int, cfg.Nodes)
	)

	exp := func(mean time.Duration) time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}

	var pull func(i int)
	var nodeUp func(i int)

	// Re-dispatched tasks re-enter the queue; idle nodes find them on
	// their next poll (the Backend's RetryAfter backoff).
	requeue := func(delay time.Duration) {
		clk.AfterFunc(delay, func() { queue++ })
	}

	pull = func(i int) {
		if !alive[i] || remaining == 0 {
			return
		}
		if queue == 0 {
			// Poll again later (a lease may expire meanwhile).
			j := i
			clk.AfterFunc(cfg.RetryAfter, func() {
				if alive[j] && remaining > 0 {
					pull(j)
				}
			})
			return
		}
		queue--
		done := clk.Now().Add(perTask)
		if deathAt[i].Before(done) {
			// The node dies mid-task: the result is lost; the Backend
			// re-dispatches after the lease expires.
			out.TasksLost++
			requeue(deathAt[i].Sub(clk.Now()) + secs(cfg.LeaseSeconds))
			return
		}
		j := i
		clk.AfterFunc(perTask, func() {
			remaining--
			taskCount[j]++
			lastDone = clk.Now()
			if remaining > 0 && alive[j] {
				pull(j)
			}
		})
	}

	nodeUp = func(i int) {
		alive[i] = true
		life := exp(cfg.MeanOn)
		deathAt[i] = clk.Now().Add(life)
		j := i
		clk.AfterFunc(life, func() {
			alive[j] = false
			if remaining == 0 {
				return // the job already finished; not a departure it felt
			}
			out.Departures++
			off := exp(cfg.MeanOff)
			clk.AfterFunc(off+cfg.RejoinDelay, func() {
				if remaining > 0 {
					nodeUp(j) // nodeUp pulls
				}
			})
		})
		pull(i)
	}

	for i := 0; i < cfg.Nodes; i++ {
		var w time.Duration
		switch cfg.Join {
		case JoinSynchronized:
			w = secs(cycle)
		default:
			w = secs(cycle * (1 + rng.Float64()))
		}
		i := i
		clk.AfterFunc(w, func() { nodeUp(i) })
	}
	clk.RunUntil(epoch.Add(1000 * time.Hour))
	if remaining != 0 {
		return out, errors.New("sim: churn job did not complete within 1000 simulated hours")
	}

	makespan := lastDone.Sub(epoch)
	out.Makespan = makespan
	out.Events = clk.Fired()
	out.TasksMin = cfg.Tasks
	for _, tc := range taskCount {
		if tc < out.TasksMin {
			out.TasksMin = tc
		}
		if tc > out.TasksMax {
			out.TasksMax = tc
		}
	}
	p := cfg.Params()
	out.Efficiency = p.Tasks * p.TaskSeconds / (makespan.Seconds() * p.N)
	return out, nil
}
