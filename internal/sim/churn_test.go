package sim

import (
	"testing"
	"time"
)

func churnConfig(ratio, nodes int, phi float64, on, off time.Duration) ChurnJobConfig {
	return ChurnJobConfig{
		JobConfig: fig6Config(ratio, nodes, phi),
		MeanOn:    on,
		MeanOff:   off,
	}
}

func TestChurnJobCompletes(t *testing.T) {
	res, err := RunChurnJob(churnConfig(20, 100, 1000, 30*time.Minute, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("no churn happened")
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Fatalf("efficiency = %v", res.Efficiency)
	}
}

func TestChurnDegradesEfficiency(t *testing.T) {
	stable, err := RunJob(fig6Config(20, 100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	churny, err := RunChurnJob(churnConfig(20, 100, 1000, 20*time.Minute, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if churny.Efficiency >= stable.Efficiency {
		t.Fatalf("churn did not cost anything: %v vs stable %v",
			churny.Efficiency, stable.Efficiency)
	}
	if churny.TasksLost == 0 {
		t.Fatal("no tasks lost despite task times comparable to session lengths")
	}
}

func TestChurnMonotoneInHarshness(t *testing.T) {
	// Harsher churn (shorter sessions) must not improve efficiency.
	gentle, err := RunChurnJob(churnConfig(20, 100, 1000, 2*time.Hour, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := RunChurnJob(churnConfig(20, 100, 1000, 15*time.Minute, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if harsh.Efficiency > gentle.Efficiency*1.02 { // 2% noise allowance
		t.Fatalf("harsh churn (%v) beat gentle churn (%v)", harsh.Efficiency, gentle.Efficiency)
	}
	if harsh.Departures <= gentle.Departures {
		t.Fatalf("departures: harsh %d vs gentle %d", harsh.Departures, gentle.Departures)
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := churnConfig(1, 10, 100, 0, 0)
	if _, err := RunChurnJob(cfg); err == nil {
		t.Fatal("zero churn means accepted")
	}
	bad := ChurnJobConfig{MeanOn: time.Hour, MeanOff: time.Hour}
	if _, err := RunChurnJob(bad); err == nil {
		t.Fatal("invalid base config accepted")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := RunChurnJob(churnConfig(10, 50, 500, 30*time.Minute, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurnJob(churnConfig(10, 50, 500, 30*time.Minute, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TasksLost != b.TasksLost {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.Makespan, a.TasksLost, b.Makespan, b.TasksLost)
	}
}
