package journal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// liveInstance is randInstance constrained to a non-destroyed record,
// so later resize/recompose ops against it actually apply.
func liveInstance(rng *rand.Rand, id uint64) InstanceRecord {
	rec := randInstance(rng, id)
	rec.Destroyed = false
	return rec
}

func openTestStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoSync = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreAppendLoadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	s := openTestStore(t, dir, Options{})

	want := []Record{
		{Op: OpCreate, Inst: liveInstance(rng, 1)},
		{Op: OpCreate, Inst: liveInstance(rng, 2)},
		{Op: OpResize, Inst: InstanceRecord{ID: 1, Target: 9}},
		{Op: OpDestroy, Inst: InstanceRecord{ID: 2, Seq: 4, Resets: 1, ResetTicks: 3}},
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Op, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTestStore(t, dir, Options{})
	st, err := s2.Load()
	if err != nil {
		t.Fatalf("Load after reopen: %v", err)
	}
	if st.NextID != 3 {
		t.Fatalf("NextID = %d, want 3", st.NextID)
	}
	if got := st.Instances[1].Target; got != 9 {
		t.Fatalf("instance 1 target = %d, want 9", got)
	}
	if !st.Instances[2].Destroyed {
		t.Fatal("instance 2 should be destroyed after replay")
	}
}

func TestStoreCompactionResetsJournal(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	s := openTestStore(t, dir, Options{CompactEvery: 3})

	for id := uint64(1); id <= 3; id++ {
		if err := s.Append(Record{Op: OpCreate, Inst: liveInstance(rng, id)}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.NeedsCompaction() {
		t.Fatal("3 records with CompactEvery=3 should arm compaction")
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(st); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.NeedsCompaction() {
		t.Fatal("compaction should reset the record count")
	}
	jb, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(jb) != len(JournalHeader()) {
		t.Fatalf("journal is %d bytes after compaction, want bare header (%d)", len(jb), len(JournalHeader()))
	}

	// Post-compaction appends coexist with the snapshot.
	if err := s.Append(Record{Op: OpResize, Inst: InstanceRecord{ID: 2, Target: 5}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTestStore(t, dir, Options{})
	st2, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Order) != 3 || st2.Instances[2].Target != 5 {
		t.Fatalf("snapshot+journal replay wrong: order=%v target=%d", st2.Order, st2.Instances[2].Target)
	}
}

func TestStoreLoadTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	s := openTestStore(t, dir, Options{})
	if err := s.Append(Record{Op: OpCreate, Inst: liveInstance(rng, 1)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTestStore(t, dir, Options{})
	if _, err := s2.Load(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Load on cut tail = %v, want ErrTruncated", err)
	}
}

func TestStoreHealthAndMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(10))
	s := openTestStore(t, dir, Options{Obs: reg})

	if err := reg.Health()["journal-stalled"]; err != nil {
		t.Fatalf("fresh store health = %v, want ok", err)
	}
	if err := s.Append(Record{Op: OpCreate, Inst: liveInstance(rng, 1)}); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Value("oddci_journal_appends_total"); !ok || v != 1 {
		t.Fatalf("appends counter = %v,%v, want 1", v, ok)
	}
	if v, ok := reg.Value("oddci_journal_records"); !ok || v != 1 {
		t.Fatalf("records gauge = %v,%v, want 1", v, ok)
	}
	if _, err := s.Load(); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("oddci_journal_replayed_records_total"); v != 1 {
		t.Fatalf("replayed counter = %v, want 1", v)
	}

	// Closing the file out from under the store forces an append error,
	// which must latch into Err and the journal-stalled health check.
	s.f.Close()
	if err := s.Append(Record{Op: OpResize, Inst: InstanceRecord{ID: 1, Target: 2}}); err == nil {
		t.Fatal("append after file close should fail")
	}
	if s.Err() == nil {
		t.Fatal("Err() should latch the append failure")
	}
	if err := reg.Health()["journal-stalled"]; err == nil {
		t.Fatal("journal-stalled health check should fail after an append error")
	}
	if v, _ := reg.Value("oddci_journal_errors_total"); v != 1 {
		t.Fatalf("errors counter = %v, want 1", v)
	}
}

func TestStoreClosedAppendFails(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close = %v, want nil", err)
	}
	if err := s.Append(Record{Op: OpGC, Inst: InstanceRecord{ID: 1}}); err == nil {
		t.Fatal("append on closed store should fail")
	}
}

func TestLoadOrCreateKeyPersists(t *testing.T) {
	dir := t.TempDir()
	k1, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Fatal("second load returned a different key")
	}
	if err := os.WriteFile(filepath.Join(dir, keyFile), []byte("short"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreateKey(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short key file = %v, want ErrCorrupt", err)
	}
}

// TestLoadFrozenClockDeterministicTelemetry pins the satellite fix for
// the host-clock leak in Load: replay timing must come from the
// injected simtime.Clock, so two replays of the same journal under a
// frozen sim clock render byte-identical telemetry (and a zero replay
// histogram). Before the fix, time.Now() stamped host wall time into
// oddci_journal_replay_seconds and no two replays matched.
func TestLoadFrozenClockDeterministicTelemetry(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	s := openTestStore(t, dir, Options{})
	for id := uint64(1); id <= 5; id++ {
		if err := s.Append(Record{Op: OpCreate, Inst: liveInstance(rng, id)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	render := func() string {
		clk := simtime.NewSim(time.Unix(1_000_000, 0)) // frozen: never advanced
		reg := obs.NewRegistry()
		st := openTestStore(t, dir, Options{Obs: reg, Clock: clk})
		if _, err := st.Load(); err != nil {
			t.Fatalf("Load: %v", err)
		}
		if v, ok := reg.Value("oddci_journal_replay_seconds_sum"); ok && v != 0 {
			t.Fatalf("replay histogram sum = %v under a frozen clock, want 0 (host clock leaked)", v)
		}
		return reg.RenderPrometheus()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("telemetry differs across identical frozen-clock replays:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "oddci_journal_replayed_records_total 5") {
		t.Fatalf("replayed-records counter missing or wrong:\n%s", a)
	}
}
