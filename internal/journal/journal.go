// Package journal is the Controller's durability layer: a compact
// binary snapshot of control-plane state (instances, wanted sizes,
// sequence counters, reset-retransmission windows) plus an append-only
// journal of lifecycle mutations (create / resize / recompose /
// destroy / gc). A crashed coordinator replays snapshot+journal to
// recover exactly the instances it was maintaining, so the broadcast
// channel's O(1) staging advantage is not forfeited to an O(N)
// re-stage after every restart.
//
// The design splits cleanly in two:
//
//   - the codec and replay state machine (this file): deterministic
//     binary encodings with CRC-32 framing, and a State that applies
//     Records idempotently — replaying the same journal twice yields
//     the same State, and two independent replays of the same bytes
//     yield byte-identical snapshots;
//   - the file Store (store.go): snapshot + journal files on disk,
//     fsync'd appends, and periodic snapshot compaction.
//
// What is deliberately NOT journaled: instance membership, node state,
// and heartbeat back-pressure tuning. All of it is reconstructed from
// the next round of heartbeats after a restart — the PNAs are the
// authoritative source of their own state, exactly as §3.2 consolidates
// it in steady state.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"oddci/internal/core/instance"
)

// Typed decode errors, matchable with errors.Is. A corrupt or truncated
// file must fail loudly instead of yielding partial state: recovering
// half a control plane and then broadcasting from it is worse than
// refusing to start.
var (
	// ErrCorrupt reports a snapshot or journal whose framing, checksum,
	// or field encoding is invalid.
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrTruncated reports a journal whose final record runs past the
	// end of the file (a torn append). It wraps ErrCorrupt.
	ErrTruncated = fmt.Errorf("%w: truncated tail", ErrCorrupt)
)

// Op classifies one journaled lifecycle mutation.
type Op uint8

// Journal operations, mirroring the Controller's instance state
// machine. OpRecompose also covers head-end wakeup retransmissions
// (sequence bumps) outside the maintenance loop.
const (
	OpCreate Op = iota + 1
	OpResize
	OpRecompose
	OpDestroy
	OpGC
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpResize:
		return "resize"
	case OpRecompose:
		return "recompose"
	case OpDestroy:
		return "destroy"
	case OpGC:
		return "gc"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// InstanceRecord is the durable image of one instance: everything the
// Controller needs to re-enter the carousel at the recorded generation
// — spec, image bytes, and counters — and nothing reconstructable from
// heartbeats (membership, trim progress, back-pressure periods).
type InstanceRecord struct {
	ID      uint64
	Seq     uint32
	Wakeups uint32
	Resets  uint32
	// Probability is the last broadcast wakeup probability; the
	// recovered wakeup envelope re-airs with it.
	Probability float64
	Destroyed   bool
	// ResetTicks is the reset-retransmission window at destroy time; a
	// recovered destroyed instance restarts the full window (every
	// grace-windowed PNA gets another chance to observe the reset).
	ResetTicks      int32
	Target          int32
	HeartbeatPeriod time.Duration
	Lifetime        time.Duration
	Requirements    instance.Requirements
	ImageFile       string
	// Image is the canonical appimage encoding staged on the carousel.
	Image []byte
}

// Record is one journal entry. Inst carries the full record for
// OpCreate; the other ops use only the fields they mutate (ID always,
// plus Seq/Wakeups/Probability — and, for image replacements, Image —
// for recompose, Seq/Resets/ResetTicks for destroy, Target for resize).
// Fields are absolute values, never deltas, which is what makes replay
// idempotent.
type Record struct {
	Op   Op
	Inst InstanceRecord
}

// Snapshot is the compact full-state image written at compaction time.
// Instances are in carousel (creation) order; replay preserves it.
type Snapshot struct {
	NextID    uint64
	Instances []InstanceRecord
}

// File magics and the codec version.
var (
	snapshotMagic = [4]byte{'O', 'J', 'S', 'N'}
	journalMagic  = [4]byte{'O', 'J', 'N', 'L'}
)

const codecVersion = 1

// JournalHeader is the fixed prefix of a journal file.
func JournalHeader() []byte {
	return append(journalMagic[:], codecVersion)
}

const journalHeaderLen = 5

func appendInstance(b []byte, r *InstanceRecord) ([]byte, error) {
	if len(r.ImageFile) > 255 {
		return nil, errors.New("journal: image file name too long")
	}
	if r.HeartbeatPeriod < 0 || r.Lifetime < 0 {
		return nil, errors.New("journal: negative durations")
	}
	if r.Probability < 0 || r.Probability > 1 || math.IsNaN(r.Probability) {
		return nil, fmt.Errorf("journal: probability %v out of [0,1]", r.Probability)
	}
	b = binary.BigEndian.AppendUint64(b, r.ID)
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint32(b, r.Wakeups)
	b = binary.BigEndian.AppendUint32(b, r.Resets)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.Probability))
	var flags byte
	if r.Destroyed {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, uint32(r.ResetTicks))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Target))
	b = binary.BigEndian.AppendUint64(b, uint64(r.HeartbeatPeriod))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Lifetime))
	b = r.Requirements.Encode(b)
	b = append(b, byte(len(r.ImageFile)))
	b = append(b, r.ImageFile...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Image)))
	b = append(b, r.Image...)
	return b, nil
}

func decodeInstance(b []byte) (InstanceRecord, []byte, error) {
	const fixed = 8 + 4 + 4 + 4 + 8 + 1 + 4 + 4 + 8 + 8
	if len(b) < fixed {
		return InstanceRecord{}, nil, fmt.Errorf("%w: short instance record", ErrCorrupt)
	}
	r := InstanceRecord{
		ID:      binary.BigEndian.Uint64(b),
		Seq:     binary.BigEndian.Uint32(b[8:]),
		Wakeups: binary.BigEndian.Uint32(b[12:]),
		Resets:  binary.BigEndian.Uint32(b[16:]),
	}
	r.Probability = math.Float64frombits(binary.BigEndian.Uint64(b[20:]))
	if r.Probability < 0 || r.Probability > 1 || math.IsNaN(r.Probability) {
		return InstanceRecord{}, nil, fmt.Errorf("%w: probability out of range", ErrCorrupt)
	}
	flags := b[28]
	if flags&^byte(1) != 0 {
		return InstanceRecord{}, nil, fmt.Errorf("%w: unknown instance flags %#x", ErrCorrupt, flags)
	}
	r.Destroyed = flags&1 != 0
	r.ResetTicks = int32(binary.BigEndian.Uint32(b[29:]))
	r.Target = int32(binary.BigEndian.Uint32(b[33:]))
	r.HeartbeatPeriod = time.Duration(binary.BigEndian.Uint64(b[37:]))
	r.Lifetime = time.Duration(binary.BigEndian.Uint64(b[45:]))
	if r.HeartbeatPeriod < 0 || r.Lifetime < 0 {
		return InstanceRecord{}, nil, fmt.Errorf("%w: negative durations", ErrCorrupt)
	}
	var err error
	r.Requirements, b, err = instance.DecodeRequirements(b[53:])
	if err != nil {
		return InstanceRecord{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(b) < 1 {
		return InstanceRecord{}, nil, fmt.Errorf("%w: missing image name", ErrCorrupt)
	}
	nameLen := int(b[0])
	b = b[1:]
	if len(b) < nameLen+4 {
		return InstanceRecord{}, nil, fmt.Errorf("%w: short image name", ErrCorrupt)
	}
	r.ImageFile = string(b[:nameLen])
	b = b[nameLen:]
	imgLen := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < imgLen {
		return InstanceRecord{}, nil, fmt.Errorf("%w: short image body", ErrCorrupt)
	}
	r.Image = append([]byte(nil), b[:imgLen]...)
	return r, b[imgLen:], nil
}

// appendRecordPayload encodes one record (without framing). Each op
// carries only the fields it mutates, keeping steady-state journal
// growth to a few dozen bytes per lifecycle transition.
func appendRecordPayload(b []byte, r Record) ([]byte, error) {
	b = append(b, byte(r.Op))
	switch r.Op {
	case OpCreate:
		return appendInstance(b, &r.Inst)
	case OpResize:
		b = binary.BigEndian.AppendUint64(b, r.Inst.ID)
		b = binary.BigEndian.AppendUint32(b, uint32(r.Inst.Target))
		return b, nil
	case OpRecompose:
		b = binary.BigEndian.AppendUint64(b, r.Inst.ID)
		b = binary.BigEndian.AppendUint32(b, r.Inst.Seq)
		b = binary.BigEndian.AppendUint32(b, r.Inst.Wakeups)
		if r.Inst.Probability < 0 || r.Inst.Probability > 1 || math.IsNaN(r.Inst.Probability) {
			return nil, fmt.Errorf("journal: probability %v out of [0,1]", r.Inst.Probability)
		}
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.Inst.Probability))
		// Image recompositions (Controller.Recompose) append the
		// replacement image so replay re-enters the carousel with the new
		// content. Maintenance recompositions (sequence bumps) leave it
		// empty and keep the original fixed-size encoding, which old
		// journals decode unchanged.
		if len(r.Inst.Image) > 0 {
			b = binary.BigEndian.AppendUint32(b, uint32(len(r.Inst.Image)))
			b = append(b, r.Inst.Image...)
		}
		return b, nil
	case OpDestroy:
		b = binary.BigEndian.AppendUint64(b, r.Inst.ID)
		b = binary.BigEndian.AppendUint32(b, r.Inst.Seq)
		b = binary.BigEndian.AppendUint32(b, r.Inst.Resets)
		b = binary.BigEndian.AppendUint32(b, uint32(r.Inst.ResetTicks))
		return b, nil
	case OpGC:
		b = binary.BigEndian.AppendUint64(b, r.Inst.ID)
		return b, nil
	default:
		return nil, fmt.Errorf("journal: unknown op %d", r.Op)
	}
}

func decodeRecordPayload(b []byte) (Record, error) {
	if len(b) < 1 {
		return Record{}, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	r := Record{Op: Op(b[0])}
	b = b[1:]
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("%w: short %s record", ErrCorrupt, r.Op)
		}
		return nil
	}
	switch r.Op {
	case OpCreate:
		inst, rest, err := decodeInstance(b)
		if err != nil {
			return Record{}, err
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("%w: trailing bytes in create record", ErrCorrupt)
		}
		r.Inst = inst
	case OpResize:
		if err := need(12); err != nil {
			return Record{}, err
		}
		r.Inst.ID = binary.BigEndian.Uint64(b)
		r.Inst.Target = int32(binary.BigEndian.Uint32(b[8:]))
	case OpRecompose:
		if err := need(24); err != nil {
			return Record{}, err
		}
		r.Inst.ID = binary.BigEndian.Uint64(b)
		r.Inst.Seq = binary.BigEndian.Uint32(b[8:])
		r.Inst.Wakeups = binary.BigEndian.Uint32(b[12:])
		r.Inst.Probability = math.Float64frombits(binary.BigEndian.Uint64(b[16:]))
		if r.Inst.Probability < 0 || r.Inst.Probability > 1 || math.IsNaN(r.Inst.Probability) {
			return Record{}, fmt.Errorf("%w: probability out of range", ErrCorrupt)
		}
		if rest := b[24:]; len(rest) > 0 {
			if len(rest) < 4 {
				return Record{}, fmt.Errorf("%w: short recompose image header", ErrCorrupt)
			}
			n := int(binary.BigEndian.Uint32(rest))
			if n == 0 || len(rest[4:]) != n {
				return Record{}, fmt.Errorf("%w: recompose image length %d vs %d payload bytes", ErrCorrupt, n, len(rest[4:]))
			}
			r.Inst.Image = append([]byte(nil), rest[4:]...)
		}
	case OpDestroy:
		if err := need(20); err != nil {
			return Record{}, err
		}
		r.Inst.ID = binary.BigEndian.Uint64(b)
		r.Inst.Seq = binary.BigEndian.Uint32(b[8:])
		r.Inst.Resets = binary.BigEndian.Uint32(b[12:])
		r.Inst.ResetTicks = int32(binary.BigEndian.Uint32(b[16:]))
	case OpGC:
		if err := need(8); err != nil {
			return Record{}, err
		}
		r.Inst.ID = binary.BigEndian.Uint64(b)
	default:
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, uint8(r.Op))
	}
	return r, nil
}

// EncodeRecord frames one record for the journal file:
// length(4) | payload | crc32(payload).
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := appendRecordPayload(nil, r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 8+len(payload))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return b, nil
}

// EncodeJournal renders a whole journal file (header + framed records).
func EncodeJournal(recs []Record) ([]byte, error) {
	b := JournalHeader()
	for _, r := range recs {
		fr, err := EncodeRecord(r)
		if err != nil {
			return nil, err
		}
		b = append(b, fr...)
	}
	return b, nil
}

// DecodeJournal parses a journal file strictly: a bad header, a record
// whose checksum or encoding is invalid (ErrCorrupt), or a final record
// that runs past the end of the file (ErrTruncated) fails the whole
// decode — no partial state escapes.
func DecodeJournal(b []byte) ([]Record, error) {
	if len(b) == 0 {
		return nil, nil // an absent or empty journal is a valid empty one
	}
	if len(b) < journalHeaderLen || [4]byte(b[:4]) != journalMagic {
		return nil, fmt.Errorf("%w: bad journal header", ErrCorrupt)
	}
	if b[4] != codecVersion {
		return nil, fmt.Errorf("%w: journal version %d (want %d)", ErrCorrupt, b[4], codecVersion)
	}
	b = b[journalHeaderLen:]
	var recs []Record
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrTruncated
		}
		plen := int(binary.BigEndian.Uint32(b))
		if len(b) < 4+plen+4 {
			return nil, ErrTruncated
		}
		payload := b[4 : 4+plen]
		sum := binary.BigEndian.Uint32(b[4+plen:])
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: record %d checksum mismatch", ErrCorrupt, len(recs))
		}
		r, err := decodeRecordPayload(payload)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
		b = b[4+plen+4:]
	}
	return recs, nil
}

// EncodeSnapshot renders a snapshot file:
// magic(4) | version(1) | nextID(8) | count(4) | records | crc32(all).
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	b := append(snapshotMagic[:], codecVersion)
	b = binary.BigEndian.AppendUint64(b, s.NextID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Instances)))
	for i := range s.Instances {
		var err error
		b, err = appendInstance(b, &s.Instances[i])
		if err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// DecodeSnapshot parses a snapshot file strictly.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 5+8+4+4 {
		return nil, fmt.Errorf("%w: short snapshot", ErrCorrupt)
	}
	if [4]byte(b[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if b[4] != codecVersion {
		return nil, fmt.Errorf("%w: snapshot version %d (want %d)", ErrCorrupt, b[4], codecVersion)
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	s := &Snapshot{NextID: binary.BigEndian.Uint64(body[5:])}
	count := int(binary.BigEndian.Uint32(body[13:]))
	rest := body[17:]
	for i := 0; i < count; i++ {
		var rec InstanceRecord
		var err error
		rec, rest, err = decodeInstance(rest)
		if err != nil {
			return nil, err
		}
		s.Instances = append(s.Instances, rec)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in snapshot", ErrCorrupt)
	}
	return s, nil
}

// State is the replayed control-plane image: the instance table in
// carousel order plus the ID high-water mark. NextID is durable so a
// restarted Controller keeps distinguishing IDs it garbage-collected
// (gone) from IDs it never issued (unknown).
type State struct {
	NextID    uint64
	Order     []uint64
	Instances map[uint64]*InstanceRecord
}

// NewState returns an empty state (NextID 1, no instances).
func NewState() *State {
	return &State{NextID: 1, Instances: make(map[uint64]*InstanceRecord)}
}

// Empty reports whether the state records nothing durable.
func (s *State) Empty() bool {
	return s.NextID <= 1 && len(s.Instances) == 0
}

// Apply folds one record into the state. Apply is idempotent: records
// carry absolute values, creates below the ID high-water mark are
// replays and are skipped, and destroy/gc on already-destroyed/absent
// instances are no-ops — so replaying a journal twice yields the same
// state as replaying it once.
func (s *State) Apply(r Record) {
	switch r.Op {
	case OpCreate:
		if r.Inst.ID < s.NextID {
			return // replayed create of an ID already accounted for
		}
		rec := r.Inst
		rec.Image = append([]byte(nil), r.Inst.Image...)
		s.Instances[rec.ID] = &rec
		s.Order = append(s.Order, rec.ID)
		s.NextID = rec.ID + 1
	case OpResize:
		if st, ok := s.Instances[r.Inst.ID]; ok && !st.Destroyed {
			st.Target = r.Inst.Target
		}
	case OpRecompose:
		if st, ok := s.Instances[r.Inst.ID]; ok && !st.Destroyed {
			st.Seq = r.Inst.Seq
			st.Wakeups = r.Inst.Wakeups
			st.Probability = r.Inst.Probability
			if len(r.Inst.Image) > 0 {
				st.Image = append([]byte(nil), r.Inst.Image...)
			}
		}
	case OpDestroy:
		if st, ok := s.Instances[r.Inst.ID]; ok && !st.Destroyed {
			st.Destroyed = true
			st.Seq = r.Inst.Seq
			st.Resets = r.Inst.Resets
			st.ResetTicks = r.Inst.ResetTicks
		}
	case OpGC:
		if st, ok := s.Instances[r.Inst.ID]; ok && st.Destroyed {
			delete(s.Instances, r.Inst.ID)
			for i, id := range s.Order {
				if id == r.Inst.ID {
					s.Order = append(s.Order[:i], s.Order[i+1:]...)
					break
				}
			}
		}
	}
}

// Replay folds a snapshot and a journal into a State. A nil snapshot
// starts from empty.
func Replay(snap *Snapshot, recs []Record) *State {
	s := NewState()
	if snap != nil {
		if snap.NextID > s.NextID {
			s.NextID = snap.NextID
		}
		for i := range snap.Instances {
			rec := snap.Instances[i]
			rec.Image = append([]byte(nil), snap.Instances[i].Image...)
			s.Instances[rec.ID] = &rec
			s.Order = append(s.Order, rec.ID)
			if rec.ID >= s.NextID {
				s.NextID = rec.ID + 1
			}
		}
	}
	for _, r := range recs {
		s.Apply(r)
	}
	return s
}

// Snapshot renders the state back into a compact snapshot, preserving
// carousel order — the deterministic fixed point the property tests
// pivot on: Replay(x.Snapshot(), nil).Snapshot() == x.Snapshot().
func (s *State) Snapshot() *Snapshot {
	out := &Snapshot{NextID: s.NextID}
	for _, id := range s.Order {
		if rec, ok := s.Instances[id]; ok {
			out.Instances = append(out.Instances, *rec)
		}
	}
	return out
}
