package journal

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// File names inside a state directory. The snapshot is replaced
// atomically (write temp + rename); the journal is append-only and
// truncated to empty only as the second half of a compaction.
const (
	snapshotFile = "state.snap"
	journalFile  = "state.journal"
	keyFile      = "controller.key"
)

// Options tunes a Store.
type Options struct {
	// CompactEvery is the journal record count that arms compaction
	// (default 256). NeedsCompaction reports true at or beyond it.
	CompactEvery int
	// NoSync skips the fsync after each append. Tests use it; a real
	// coordinator should not.
	NoSync bool
	// Obs, when set, instruments the store: append/byte/fsync/
	// compaction/error counters, a record-count gauge, replay timing,
	// and a "journal-stalled" health check that fails once any append
	// or compaction has errored.
	Obs *obs.Registry
	// Clock stamps replay timing (default: the wall clock). Injecting
	// the deployment's simtime.Clock keeps telemetry byte-identical
	// under deterministic replay — a frozen sim clock must never leak
	// host time into the metrics.
	Clock simtime.Clock
}

// Store persists a snapshot + journal pair in a directory. It is safe
// for concurrent use; the Controller appends from its maintenance loop
// and API paths.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	recs     int   // journal records since last compaction
	appended int64 // bytes appended this session (telemetry)
	lastErr  error
	closed   bool

	appends     *obs.Counter
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	compactions *obs.Counter
	errored     *obs.Counter
	replayed    *obs.Counter
	replayTime  *obs.Histogram
}

// Open creates or reuses dir and opens the journal for appending. It
// does not replay; call Load for that.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 256
	}
	if opts.Clock == nil {
		opts.Clock = simtime.NewReal()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: state dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	s.instrument(opts.Obs)
	return s, nil
}

func (s *Store) openJournal() error {
	path := filepath.Join(s.dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: stat: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(JournalHeader()); err != nil {
			f.Close()
			return fmt.Errorf("journal: write header: %w", err)
		}
	}
	s.f = f
	return nil
}

func (s *Store) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.appends = reg.Counter("oddci_journal_appends_total", "Journal records appended")
	s.bytes = reg.Counter("oddci_journal_bytes_total", "Bytes appended to the journal")
	s.fsyncs = reg.Counter("oddci_journal_fsyncs_total", "Journal fsyncs issued")
	s.compactions = reg.Counter("oddci_journal_compactions_total", "Snapshot compactions completed")
	s.errored = reg.Counter("oddci_journal_errors_total", "Journal append/compaction failures")
	s.replayed = reg.Counter("oddci_journal_replayed_records_total", "Journal records replayed at recovery")
	s.replayTime = reg.Histogram("oddci_journal_replay_seconds", "Wall time to replay snapshot+journal", nil)
	reg.GaugeFunc("oddci_journal_records", "Journal records since last compaction", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.recs)
	})
	reg.RegisterHealth("journal-stalled", func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.lastErr != nil {
			return fmt.Errorf("journal stalled: %w", s.lastErr)
		}
		return nil
	})
}

// Load replays snapshot+journal from disk into a State. A missing pair
// yields an empty state; corruption is reported with the codec's typed
// errors and nothing is replayed past it.
func (s *Store) Load() (*State, error) {
	start := s.opts.Clock.Now()
	var snap *Snapshot
	if b, err := os.ReadFile(filepath.Join(s.dir, snapshotFile)); err == nil {
		snap, err = DecodeSnapshot(b)
		if err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}
	jb, err := os.ReadFile(filepath.Join(s.dir, journalFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: read journal: %w", err)
	}
	recs, err := DecodeJournal(jb)
	if err != nil {
		return nil, err
	}
	st := Replay(snap, recs)
	s.mu.Lock()
	s.recs = len(recs)
	s.mu.Unlock()
	if s.replayed != nil {
		s.replayed.Add(int64(len(recs)))
		s.replayTime.ObserveDuration(s.opts.Clock.Now().Sub(start))
	}
	return st, nil
}

// Append frames and writes one record, fsyncing unless NoSync. The
// first error latches into Err and the journal-stalled health check.
func (s *Store) Append(r Record) error {
	frame, err := EncodeRecord(r)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("journal: store closed")
	}
	if _, err := s.f.Write(frame); err != nil {
		return s.failLocked(fmt.Errorf("journal: append: %w", err))
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return s.failLocked(fmt.Errorf("journal: fsync: %w", err))
		}
		if s.fsyncs != nil {
			s.fsyncs.Inc()
		}
	}
	s.recs++
	s.appended += int64(len(frame))
	if s.appends != nil {
		s.appends.Inc()
		s.bytes.Add(int64(len(frame)))
	}
	return nil
}

// NeedsCompaction reports whether the journal has grown past the
// compaction threshold.
func (s *Store) NeedsCompaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs >= s.opts.CompactEvery
}

// Compact atomically replaces the snapshot with st's image and resets
// the journal to empty. Crash ordering is safe at every step: the
// snapshot rename is atomic, and until the journal truncation lands the
// journal's records merely replay idempotently on top of the new
// snapshot.
func (s *Store) Compact(st *State) error {
	b, err := EncodeSnapshot(st.Snapshot())
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("journal: store closed")
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return s.failLocked(fmt.Errorf("journal: write snapshot: %w", err))
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return s.failLocked(fmt.Errorf("journal: commit snapshot: %w", err))
	}
	// Reset the journal: truncate and rewrite the header.
	if err := s.f.Truncate(0); err != nil {
		return s.failLocked(fmt.Errorf("journal: truncate: %w", err))
	}
	// O_APPEND writes land at the (new) end regardless of offset.
	if _, err := s.f.Write(JournalHeader()); err != nil {
		return s.failLocked(fmt.Errorf("journal: rewrite header: %w", err))
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return s.failLocked(fmt.Errorf("journal: fsync: %w", err))
		}
		if s.fsyncs != nil {
			s.fsyncs.Inc()
		}
	}
	s.recs = 0
	if s.compactions != nil {
		s.compactions.Inc()
	}
	return nil
}

func (s *Store) fail(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failLocked(err)
}

func (s *Store) failLocked(err error) error {
	if s.lastErr == nil {
		s.lastErr = err
	}
	if s.errored != nil {
		s.errored.Inc()
	}
	return err
}

// Err returns the first append/compaction error, if any — the same
// condition the journal-stalled health check reports.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Dir returns the state directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the journal file. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("journal: fsync on close: %w", err)
		}
	}
	return s.f.Close()
}

// LoadOrCreateKey returns the coordinator's persistent ed25519 signing
// key from dir, generating and saving one on first use. Persisting the
// key matters as much as the instance table: PNAs verify control
// envelopes against the controller's public key, so a restarted
// coordinator must keep signing with the same identity.
func LoadOrCreateKey(dir string) (ed25519.PrivateKey, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: state dir: %w", err)
	}
	path := filepath.Join(dir, keyFile)
	if b, err := os.ReadFile(path); err == nil {
		if len(b) != ed25519.PrivateKeySize {
			return nil, fmt.Errorf("%w: key file %s has %d bytes (want %d)", ErrCorrupt, path, len(b), ed25519.PrivateKeySize)
		}
		return ed25519.PrivateKey(b), nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: read key: %w", err)
	}
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("journal: generate key: %w", err)
	}
	if err := os.WriteFile(path, priv, 0o600); err != nil {
		return nil, fmt.Errorf("journal: save key: %w", err)
	}
	return priv, nil
}
