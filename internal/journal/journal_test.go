package journal

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"oddci/internal/core/instance"
)

func randInstance(rng *rand.Rand, id uint64) InstanceRecord {
	img := make([]byte, rng.Intn(2048))
	rng.Read(img)
	return InstanceRecord{
		ID:              id,
		Seq:             rng.Uint32(),
		Wakeups:         rng.Uint32(),
		Resets:          rng.Uint32(),
		Probability:     rng.Float64(),
		Destroyed:       rng.Intn(2) == 0,
		ResetTicks:      int32(rng.Intn(10) - 2),
		Target:          int32(rng.Intn(1000)),
		HeartbeatPeriod: time.Duration(rng.Intn(1e9)),
		Lifetime:        time.Duration(rng.Intn(1e12)),
		Requirements: instance.Requirements{
			Class: instance.ClassSTB, MinMemMB: uint32(rng.Intn(1 << 16)), MinCPUScore: uint32(rng.Intn(1 << 16)),
		},
		ImageFile: "image." + string(rune('a'+rng.Intn(26))),
		Image:     img,
	}
}

func randRecord(rng *rand.Rand, id uint64) Record {
	op := Op(1 + rng.Intn(5))
	r := Record{Op: op}
	switch op {
	case OpCreate:
		r.Inst = randInstance(rng, id)
	case OpResize:
		r.Inst = InstanceRecord{ID: id, Target: int32(rng.Intn(1000))}
	case OpRecompose:
		r.Inst = InstanceRecord{ID: id, Seq: rng.Uint32(), Wakeups: rng.Uint32(), Probability: rng.Float64()}
	case OpDestroy:
		r.Inst = InstanceRecord{ID: id, Seq: rng.Uint32(), Resets: rng.Uint32(), ResetTicks: int32(rng.Intn(10))}
	case OpGC:
		r.Inst = InstanceRecord{ID: id}
	}
	return r
}

// Property: encode→decode over a random journal is the identity.
func TestJournalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var recs []Record
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			recs = append(recs, randRecord(rng, uint64(1+rng.Intn(8))))
		}
		b, err := EncodeJournal(recs)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := DecodeJournal(b)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("trial %d: %d records round-tripped to %d", trial, len(recs), len(got))
		}
		for i := range recs {
			if !reflect.DeepEqual(normalize(recs[i]), normalize(got[i])) {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, recs[i], got[i])
			}
		}
	}
}

// normalize maps a nil image to an empty one (Decode always allocates).
func normalize(r Record) Record {
	if r.Inst.Image == nil {
		r.Inst.Image = []byte{}
	}
	return r
}

// Property: replaying a journal twice yields the same state as once —
// the idempotence that makes a compaction crash window safe (journal
// records re-apply on top of the snapshot that already contains them).
func TestReplayIdempotenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		// Generate a journal shaped exactly like the Controller's: per
		// instance the record order respects the lifecycle state machine
		// (create → resize/recompose* → destroy → gc). Idempotence is a
		// property of such journals — an out-of-order gc (before its
		// destroy) would be a no-op on first replay yet effective on the
		// second, but the Controller can never write one.
		var recs []Record
		var live, destroyed []uint64
		nextID := uint64(1)
		for i := 0; i < 30; i++ {
			var r Record
			switch {
			case len(live)+len(destroyed) == 0 || rng.Intn(4) == 0:
				r = Record{Op: OpCreate, Inst: randInstance(rng, nextID)}
				r.Inst.Destroyed = false
				live = append(live, nextID)
				nextID++
			case len(destroyed) > 0 && rng.Intn(3) == 0:
				k := rng.Intn(len(destroyed))
				r = Record{Op: OpGC, Inst: InstanceRecord{ID: destroyed[k]}}
				destroyed = append(destroyed[:k], destroyed[k+1:]...)
			case len(live) > 0:
				k := rng.Intn(len(live))
				id := live[k]
				switch rng.Intn(3) {
				case 0:
					r = Record{Op: OpResize, Inst: InstanceRecord{ID: id, Target: int32(rng.Intn(1000))}}
				case 1:
					r = Record{Op: OpRecompose, Inst: InstanceRecord{ID: id, Seq: rng.Uint32(), Wakeups: rng.Uint32(), Probability: rng.Float64()}}
				default:
					r = Record{Op: OpDestroy, Inst: InstanceRecord{ID: id, Seq: rng.Uint32(), Resets: rng.Uint32(), ResetTicks: int32(rng.Intn(10))}}
					live = append(live[:k], live[k+1:]...)
					destroyed = append(destroyed, id)
				}
			default:
				r = Record{Op: OpCreate, Inst: randInstance(rng, nextID)}
				r.Inst.Destroyed = false
				live = append(live, nextID)
				nextID++
			}
			recs = append(recs, r)
		}
		once := Replay(nil, recs)
		twice := Replay(nil, append(append([]Record{}, recs...), recs...))
		s1, err := EncodeSnapshot(once.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: snapshot once: %v", trial, err)
		}
		s2, err := EncodeSnapshot(twice.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: snapshot twice: %v", trial, err)
		}
		if string(s1) != string(s2) {
			t.Fatalf("trial %d: double replay diverged", trial)
		}
		// And the snapshot is a fixed point of replay.
		again := Replay(once.Snapshot(), nil)
		s3, err := EncodeSnapshot(again.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: snapshot again: %v", trial, err)
		}
		if string(s1) != string(s3) {
			t.Fatalf("trial %d: snapshot not a replay fixed point", trial)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	snap := &Snapshot{NextID: 42}
	for i := 0; i < 5; i++ {
		snap.Instances = append(snap.Instances, randInstance(rng, uint64(i+1)))
	}
	b, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != snap.NextID || len(got.Instances) != len(snap.Instances) {
		t.Fatalf("snapshot header round-trip: %+v", got)
	}
	for i := range snap.Instances {
		if !reflect.DeepEqual(snap.Instances[i], got.Instances[i]) {
			t.Fatalf("instance %d: %+v != %+v", i, snap.Instances[i], got.Instances[i])
		}
	}
}

func TestCorruptJournalTypedErrors(t *testing.T) {
	recs := []Record{
		{Op: OpCreate, Inst: randInstance(rand.New(rand.NewSource(5)), 1)},
		{Op: OpResize, Inst: InstanceRecord{ID: 1, Target: 9}},
	}
	good, err := EncodeJournal(recs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated tail", func(t *testing.T) {
		for cut := 1; cut < 12; cut++ {
			_, err := DecodeJournal(good[:len(good)-cut])
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d: ErrTruncated must wrap ErrCorrupt", cut)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-10] ^= 0x40
		if _, err := DecodeJournal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := DecodeJournal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 99
		if _, err := DecodeJournal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty is valid", func(t *testing.T) {
		if recs, err := DecodeJournal(nil); err != nil || len(recs) != 0 {
			t.Fatalf("empty journal: %v, %d records", err, len(recs))
		}
	})
	t.Run("corrupt snapshot", func(t *testing.T) {
		snap, err := EncodeSnapshot(&Snapshot{NextID: 3})
		if err != nil {
			t.Fatal(err)
		}
		snap[len(snap)-1] ^= 1
		if _, err := DecodeSnapshot(snap); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestApplySemantics(t *testing.T) {
	img := InstanceRecord{ID: 1, Seq: 1, Wakeups: 1, Probability: 0.5, Target: 4, ImageFile: "image.1", Image: []byte{1, 2}}
	s := NewState()

	s.Apply(Record{Op: OpCreate, Inst: img})
	if s.NextID != 2 || len(s.Instances) != 1 {
		t.Fatalf("after create: nextID=%d instances=%d", s.NextID, len(s.Instances))
	}
	// Replayed create of a known ID is a no-op (IDs are never reused).
	mut := img
	mut.Target = 99
	s.Apply(Record{Op: OpCreate, Inst: mut})
	if s.Instances[1].Target != 4 {
		t.Fatal("replayed create mutated state")
	}
	// Ops on unknown IDs are no-ops.
	s.Apply(Record{Op: OpResize, Inst: InstanceRecord{ID: 7, Target: 3}})
	s.Apply(Record{Op: OpGC, Inst: InstanceRecord{ID: 7}})
	if len(s.Instances) != 1 {
		t.Fatal("unknown-id op mutated state")
	}
	s.Apply(Record{Op: OpResize, Inst: InstanceRecord{ID: 1, Target: 2}})
	if s.Instances[1].Target != 2 {
		t.Fatal("resize lost")
	}
	s.Apply(Record{Op: OpRecompose, Inst: InstanceRecord{ID: 1, Seq: 5, Wakeups: 3, Probability: 0.25}})
	if st := s.Instances[1]; st.Seq != 5 || st.Wakeups != 3 || st.Probability != 0.25 {
		t.Fatalf("recompose: %+v", st)
	}
	// GC before destroy is a no-op; after destroy it removes.
	s.Apply(Record{Op: OpGC, Inst: InstanceRecord{ID: 1}})
	if len(s.Instances) != 1 {
		t.Fatal("gc removed a live instance")
	}
	s.Apply(Record{Op: OpDestroy, Inst: InstanceRecord{ID: 1, Seq: 6, Resets: 1, ResetTicks: 3}})
	if st := s.Instances[1]; !st.Destroyed || st.Seq != 6 || st.ResetTicks != 3 {
		t.Fatalf("destroy: %+v", st)
	}
	// Second destroy is a no-op.
	s.Apply(Record{Op: OpDestroy, Inst: InstanceRecord{ID: 1, Seq: 99}})
	if s.Instances[1].Seq != 6 {
		t.Fatal("double destroy mutated state")
	}
	s.Apply(Record{Op: OpGC, Inst: InstanceRecord{ID: 1}})
	if len(s.Instances) != 0 || len(s.Order) != 0 {
		t.Fatal("gc left residue")
	}
	if s.NextID != 2 {
		t.Fatal("gc must not lower the ID high-water mark")
	}
	if s.Empty() {
		t.Fatal("state with issued IDs must not report empty")
	}
}
