package journal

import (
	"errors"
	"math/rand"
	"testing"
)

// FuzzDecodeJournal hammers the strict decoder: arbitrary bytes must
// either decode cleanly or fail with the typed ErrCorrupt/ErrTruncated
// — never panic, and never yield records that don't re-encode to a
// decodable journal (no partial state escapes).
func FuzzDecodeJournal(f *testing.F) {
	// Seed corpus: empty, header-only, a real journal, and mutations of
	// it (committed under testdata/fuzz for `go test -fuzz` runs).
	f.Add([]byte{})
	f.Add(JournalHeader())
	rng := rand.New(rand.NewSource(1))
	good, err := EncodeJournal([]Record{
		{Op: OpCreate, Inst: randInstance(rng, 1)},
		{Op: OpResize, Inst: InstanceRecord{ID: 1, Target: 7}},
		{Op: OpRecompose, Inst: InstanceRecord{ID: 1, Seq: 2, Wakeups: 2, Probability: 0.5}},
		{Op: OpDestroy, Inst: InstanceRecord{ID: 1, Seq: 3, Resets: 1, ResetTicks: 3}},
		{Op: OpGC, Inst: InstanceRecord{ID: 1}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJournal(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode and decode to the same records
		// (the decoder only accepts canonical encodings).
		re, err := EncodeJournal(recs)
		if err != nil {
			t.Fatalf("decoded journal does not re-encode: %v", err)
		}
		again, err := DecodeJournal(re)
		if err != nil {
			t.Fatalf("re-encoded journal does not decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-decode lost records: %d != %d", len(again), len(recs))
		}
		// Replay must not panic on any decodable journal.
		Replay(nil, recs)
	})
}

// FuzzDecodeSnapshot is the snapshot-side twin.
func FuzzDecodeSnapshot(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	snap, err := EncodeSnapshot(&Snapshot{
		NextID:    3,
		Instances: []InstanceRecord{randInstance(rng, 1), randInstance(rng, 2)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:len(snap)-5])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if _, err := EncodeSnapshot(s); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		Replay(s, nil)
	})
}
