package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Write(0x47, 8) // sync byte
	w.Write(0, 1)    // TEI
	w.Write(1, 1)    // PUSI
	w.Write(0, 1)    // priority
	w.Write(0x1FFF, 13)
	w.Write(0, 2)
	w.Write(1, 2)
	w.Write(7, 4)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	if len(buf) != 4 {
		t.Fatalf("len = %d, want 4", len(buf))
	}

	r := NewReader(buf)
	checks := []struct {
		n    int
		want uint64
	}{{8, 0x47}, {1, 0}, {1, 1}, {1, 0}, {13, 0x1FFF}, {2, 0}, {2, 1}, {4, 7}}
	for i, c := range checks {
		got, err := r.Read(c.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("field %d = %#x, want %#x", i, got, c.want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d bits", r.Remaining())
	}
}

func TestValueOverflowRecorded(t *testing.T) {
	w := NewWriter()
	w.Write(256, 8)
	if w.Err() == nil {
		t.Fatal("overflow not recorded")
	}
}

func TestUnalignedBytesRejected(t *testing.T) {
	w := NewWriter()
	w.Write(1, 3)
	w.WriteBytes([]byte{1, 2})
	if w.Err() == nil {
		t.Fatal("unaligned WriteBytes not recorded")
	}

	r := NewReader([]byte{0xAB, 0xCD})
	if _, err := r.Read(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBytes(1); err == nil {
		t.Fatal("unaligned ReadBytes not rejected")
	}
}

func TestReaderOverrun(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.Read(9); err != ErrOverrun {
		t.Fatalf("err = %v, want ErrOverrun", err)
	}
	if _, err := r.Read(8); err != nil {
		t.Fatalf("8-bit read after failed 9-bit read: %v", err)
	}
}

func TestSkipAndOffset(t *testing.T) {
	r := NewReader([]byte{0x12, 0x34, 0x56})
	if err := r.Skip(12); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(4)
	if err != nil || v != 0x4 {
		t.Fatalf("read after skip = %#x,%v want 0x4", v, err)
	}
	if r.Offset() != 2 {
		t.Fatalf("offset = %d, want 2", r.Offset())
	}
}

func TestWriteBytesRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Write(0xAB, 8)
	w.WriteBytes([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	if _, err := r.Read(8); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("ReadBytes = %v, %v", got, err)
	}
}

// Property: any sequence of (width, value) fields round-trips.
func TestFieldSequenceRoundTripProperty(t *testing.T) {
	type field struct {
		width uint8
		value uint64
	}
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%64 + 1
		fields := make([]field, n)
		w := NewWriter()
		total := 0
		for i := range fields {
			width := rng.Intn(24) + 1
			value := rng.Uint64() & (1<<uint(width) - 1)
			fields[i] = field{uint8(width), value}
			w.Write(value, width)
			total += width
		}
		if pad := (8 - total%8) % 8; pad > 0 {
			w.Write(0, pad)
		}
		if w.Err() != nil {
			return false
		}
		r := NewReader(w.Bytes())
		for _, fl := range fields {
			got, err := r.Read(int(fl.width))
			if err != nil || got != fl.value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPatchByte(t *testing.T) {
	w := NewWriter()
	w.Write(0, 8)
	w.Write(0xBEEF, 16)
	w.PatchByte(0, 0x02) // backfill a length
	buf := w.Bytes()
	if buf[0] != 0x02 {
		t.Fatalf("patched byte = %#x", buf[0])
	}
	w.PatchByte(99, 0)
	if w.Err() == nil {
		t.Fatal("out-of-range patch not recorded")
	}
}
