// Package bits provides big-endian bit-level readers and writers used by
// the MPEG-2 / DSM-CC / AIT table codecs, where fields routinely straddle
// byte boundaries (13-bit PIDs, 12-bit lengths, 5-bit versions, ...).
package bits

import (
	"errors"
	"fmt"
)

// ErrOverrun is returned when a read requests more bits than remain.
var ErrOverrun = errors.New("bits: read past end of input")

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	bit  uint // bits used in the final byte (0..7); 0 means byte-aligned
	errs []error
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Write appends the low n bits of v, most significant first. n must be in
// [0, 64] and v must fit in n bits; violations are recorded and surfaced
// by Err.
func (w *Writer) Write(v uint64, n int) {
	if n < 0 || n > 64 {
		w.errs = append(w.errs, fmt.Errorf("bits: invalid width %d", n))
		return
	}
	if n < 64 && v >= 1<<uint(n) {
		w.errs = append(w.errs, fmt.Errorf("bits: value %d overflows %d bits", v, n))
		return
	}
	for n > 0 {
		if w.bit == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - w.bit
		take := uint(n)
		if take > free {
			take = free
		}
		shift := uint(n) - take
		chunk := byte(v >> shift & (1<<take - 1))
		w.buf[len(w.buf)-1] |= chunk << (free - take)
		w.bit = (w.bit + take) % 8
		n -= int(take)
	}
}

// WriteBytes appends p; the writer must be byte-aligned.
func (w *Writer) WriteBytes(p []byte) {
	if w.bit != 0 {
		w.errs = append(w.errs, errors.New("bits: WriteBytes while unaligned"))
		return
	}
	w.buf = append(w.buf, p...)
}

// Aligned reports whether the writer sits on a byte boundary.
func (w *Writer) Aligned() bool { return w.bit == 0 }

// Len returns the number of complete bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated buffer. The writer must be byte-aligned.
func (w *Writer) Bytes() []byte {
	if w.bit != 0 {
		w.errs = append(w.errs, errors.New("bits: Bytes while unaligned"))
	}
	return w.buf
}

// Err returns the first recorded usage error, if any.
func (w *Writer) Err() error {
	if len(w.errs) > 0 {
		return w.errs[0]
	}
	return nil
}

// PatchByte overwrites the byte at offset off; used to backfill length
// fields after a variable-size body is written.
func (w *Writer) PatchByte(off int, b byte) {
	if off < 0 || off >= len(w.buf) {
		w.errs = append(w.errs, fmt.Errorf("bits: patch offset %d out of range", off))
		return
	}
	w.buf[off] = b
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos uint // bit position
}

// NewReader wraps p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Read consumes n bits (0..64) and returns them right-aligned.
func (r *Reader) Read(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bits: invalid width %d", n)
	}
	if r.Remaining() < n {
		return 0, ErrOverrun
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		bitOff := r.pos % 8
		avail := 8 - bitOff
		take := uint(n)
		if take > avail {
			take = avail
		}
		chunk := r.buf[byteIdx] >> (avail - take) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		r.pos += take
		n -= int(take)
	}
	return v, nil
}

// ReadBytes consumes n whole bytes; the reader must be byte-aligned.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if r.pos%8 != 0 {
		return nil, errors.New("bits: ReadBytes while unaligned")
	}
	if r.Remaining() < n*8 {
		return nil, ErrOverrun
	}
	start := r.pos / 8
	r.pos += uint(n) * 8
	return r.buf[start : start+uint(n) : start+uint(n)], nil
}

// Skip discards n bits.
func (r *Reader) Skip(n int) error {
	if r.Remaining() < n {
		return ErrOverrun
	}
	r.pos += uint(n)
	return nil
}

// Remaining reports how many bits are left.
func (r *Reader) Remaining() int { return len(r.buf)*8 - int(r.pos) }

// Offset reports the current byte offset (rounded down).
func (r *Reader) Offset() int { return int(r.pos / 8) }
