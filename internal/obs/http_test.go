package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeTimeline struct{}

func (fakeTimeline) Render(limit int) string { return fmt.Sprintf("timeline limit=%d\n", limit) }

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerMetricsAndVarz(t *testing.T) {
	r := NewRegistry()
	r.Counter("oddci_demo_total", "a demo counter").Add(2)
	srv := httptest.NewServer(NewHandler(r, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q lacks exposition version", ct)
	}
	if !strings.Contains(body, "oddci_demo_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get(t, srv, "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz = %d, want 200", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/varz not valid JSON: %v\n%s", err, body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	r := NewRegistry()
	healthy := true
	r.RegisterHealth("toggle", func() error {
		if healthy {
			return nil
		}
		return errors.New("broken")
	})
	srv := httptest.NewServer(NewHandler(r, nil))
	defer srv.Close()

	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	healthy = false
	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503 when a check fails", code)
	}
	if !strings.Contains(body, "toggle: broken") {
		t.Fatalf("/healthz body %q, want failing check line", body)
	}
}

func TestHandlerTimeline(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r, nil))
	code, _, _ := get(t, srv, "/timeline")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/timeline without source = %d, want 404", code)
	}

	srv = httptest.NewServer(NewHandler(r, fakeTimeline{}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/timeline")
	if code != http.StatusOK || body != "timeline limit=100\n" {
		t.Fatalf("/timeline = %d %q, want default limit 100", code, body)
	}
	code, body, _ = get(t, srv, "/timeline?limit=7")
	if code != http.StatusOK || body != "timeline limit=7\n" {
		t.Fatalf("/timeline?limit=7 = %d %q", code, body)
	}
	code, _, _ = get(t, srv, "/timeline?limit=x")
	if code != http.StatusBadRequest {
		t.Fatalf("/timeline?limit=x = %d, want 400", code)
	}
}
