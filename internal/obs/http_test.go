package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeTimeline struct{}

func (fakeTimeline) Render(limit int) string { return fmt.Sprintf("timeline limit=%d\n", limit) }

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerMetricsAndVarz(t *testing.T) {
	r := NewRegistry()
	r.Counter("oddci_demo_total", "a demo counter").Add(2)
	srv := httptest.NewServer(NewHandler(r, nil, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q lacks exposition version", ct)
	}
	if !strings.Contains(body, "oddci_demo_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get(t, srv, "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz = %d, want 200", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/varz not valid JSON: %v\n%s", err, body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	r := NewRegistry()
	healthy := true
	r.RegisterHealth("toggle", func() error {
		if healthy {
			return nil
		}
		return errors.New("broken")
	})
	srv := httptest.NewServer(NewHandler(r, nil, nil))
	defer srv.Close()

	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	healthy = false
	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503 when a check fails", code)
	}
	if !strings.Contains(body, "toggle: broken") {
		t.Fatalf("/healthz body %q, want failing check line", body)
	}
}

func TestHandlerTimeline(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r, nil, nil))
	code, _, _ := get(t, srv, "/timeline")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/timeline without source = %d, want 404", code)
	}

	srv = httptest.NewServer(NewHandler(r, fakeTimeline{}, nil))
	defer srv.Close()
	code, body, _ := get(t, srv, "/timeline")
	if code != http.StatusOK || body != "timeline limit=100\n" {
		t.Fatalf("/timeline = %d %q, want default limit 100", code, body)
	}
	code, body, _ = get(t, srv, "/timeline?limit=7")
	if code != http.StatusOK || body != "timeline limit=7\n" {
		t.Fatalf("/timeline?limit=7 = %d %q", code, body)
	}
	code, _, _ = get(t, srv, "/timeline?limit=x")
	if code != http.StatusBadRequest {
		t.Fatalf("/timeline?limit=x = %d, want 400", code)
	}
}

// fakeTimelineJSONL is a timeline source with the optional JSONL face.
type fakeTimelineJSONL struct{ fakeTimeline }

func (fakeTimelineJSONL) WriteJSONL(w io.Writer) error {
	_, err := io.WriteString(w, `{"at":"t0","kind":"wakeup"}`+"\n")
	return err
}

func TestHandlerTimelineJSONL(t *testing.T) {
	r := NewRegistry()

	// A plain source has no JSONL export: 501, not a panic.
	srv := httptest.NewServer(NewHandler(r, fakeTimeline{}, nil))
	code, _, _ := get(t, srv, "/timeline?format=jsonl")
	srv.Close()
	if code != http.StatusNotImplemented {
		t.Fatalf("/timeline?format=jsonl without JSONL source = %d, want 501", code)
	}

	srv = httptest.NewServer(NewHandler(r, fakeTimelineJSONL{}, nil))
	defer srv.Close()
	code, body, hdr := get(t, srv, "/timeline?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("/timeline?format=jsonl = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("/timeline?format=jsonl content type = %q, want application/x-ndjson", ct)
	}
	if !strings.Contains(body, `"kind":"wakeup"`) {
		t.Fatalf("/timeline?format=jsonl body = %q", body)
	}
}

// fakeTraces is a minimal TraceSource double.
type fakeTraces struct{}

func (fakeTraces) RenderTraces(limit int) string { return fmt.Sprintf("traces limit=%d\n", limit) }
func (fakeTraces) RenderTrace(id string) (string, bool) {
	if id == "deadbeef" {
		return "trace deadbeef\n", true
	}
	return "", false
}
func (fakeTraces) WriteJSONL(w io.Writer) error {
	_, err := io.WriteString(w, `{"trace":"deadbeef"}`+"\n")
	return err
}

func TestHandlerTrace(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r, nil, nil))
	code, _, _ := get(t, srv, "/trace")
	srv.Close()
	if code != http.StatusNotFound {
		t.Fatalf("/trace without source = %d, want 404", code)
	}

	srv = httptest.NewServer(NewHandler(r, nil, fakeTraces{}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/trace")
	if code != http.StatusOK || body != "traces limit=50\n" {
		t.Fatalf("/trace = %d %q, want default limit 50", code, body)
	}
	code, body, _ = get(t, srv, "/trace?limit=3")
	if code != http.StatusOK || body != "traces limit=3\n" {
		t.Fatalf("/trace?limit=3 = %d %q", code, body)
	}
	code, body, hdr := get(t, srv, "/trace?format=jsonl")
	if code != http.StatusOK || !strings.Contains(body, `"trace":"deadbeef"`) {
		t.Fatalf("/trace?format=jsonl = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("/trace?format=jsonl content type = %q", ct)
	}
	code, body, _ = get(t, srv, "/trace/deadbeef")
	if code != http.StatusOK || body != "trace deadbeef\n" {
		t.Fatalf("/trace/deadbeef = %d %q", code, body)
	}
	code, _, _ = get(t, srv, "/trace/unknown99")
	if code != http.StatusNotFound {
		t.Fatalf("/trace/unknown99 = %d, want 404", code)
	}
}
