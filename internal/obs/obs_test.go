package obs

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("same name should return the same counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.RegisterHealth("x", func() error { return errors.New("boom") })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry must report no values")
	}
	if failures := r.Health(); len(failures) != 0 {
		t.Fatal("nil registry must be healthy")
	}
	if r.RenderPrometheus() != "" {
		t.Fatal("nil registry renders empty Prometheus text")
	}
	_ = r.Snapshot()
}

// TestHistogramBucketBoundaries pins the le semantics: a value exactly
// on a bound lands in that bound's bucket, values above the last bound
// land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 2, 2} // {0.5,1} {1.5,2} {3,4} {5,100}
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], n, snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if math.Abs(snap.Sum-117) > 1e-3 {
		t.Fatalf("sum = %g, want 117", snap.Sum)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.5) // bucket (1,2]
	}
	h.Observe(10) // overflow
	h.Observe(10)
	// rank(0.5) = 5 falls in the second bucket: 1 + (5-4)/4 × (2-1).
	if got := h.Quantile(0.5); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("p50 = %g, want 1.25", got)
	}
	// rank(0.99) = 9.9 falls in the overflow bucket, which clamps to
	// the highest finite bound.
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %g, want 4 (overflow clamp)", got)
	}
	// Quantiles are clipped to [0,1].
	if got := h.Quantile(2); got != 4 {
		t.Fatalf("q>1 = %g, want 4", got)
	}
	if h.Quantile(-1) < 0 {
		t.Fatal("q<0 must not go negative")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", nil)
	h.ObserveDuration(3 * time.Millisecond)
	snap := r.Snapshot().Histograms["lat"]
	if len(snap.Bounds) != len(LatencyBuckets) {
		t.Fatalf("bounds = %d, want the default set (%d)", len(snap.Bounds), len(LatencyBuckets))
	}
	// 3 ms lands in the (2.5ms, 5ms] bucket.
	if snap.Counts[2] != 1 {
		t.Fatalf("counts = %v, want observation in bucket 2", snap.Counts)
	}
}

func TestValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(7)
	r.Gauge("g", "").Set(2.5)
	r.GaugeFunc("gf", "", func() float64 { return 9 })
	h := r.Histogram("h", "", nil)
	h.Observe(1)
	h.Observe(2)
	for _, tc := range []struct {
		name string
		want float64
	}{{"c", 7}, {"g", 2.5}, {"gf", 9}, {"h", 2}} {
		got, ok := r.Value(tc.name)
		if !ok || got != tc.want {
			t.Fatalf("Value(%q) = %g,%v, want %g,true", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("missing metric must report !ok")
	}
}

func TestHealth(t *testing.T) {
	r := NewRegistry()
	r.RegisterHealth("good", func() error { return nil })
	if failures := r.Health(); len(failures) != 0 {
		t.Fatalf("expected healthy, got %v", failures)
	}
	r.RegisterHealth("bad", func() error { return errors.New("stuck") })
	failures := r.Health()
	if len(failures) != 1 || failures["bad"] == nil {
		t.Fatalf("expected one failure named bad, got %v", failures)
	}
}

func TestRenderPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("oddci_test_total", "things counted").Add(3)
	r.Gauge("oddci_test_gauge", "a level").Set(1.5)
	r.GaugeFunc("oddci_test_fn", "computed", func() float64 { return 2 })
	h := r.Histogram("oddci_test_seconds", "a latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	out := r.RenderPrometheus()
	for _, want := range []string{
		"# HELP oddci_test_total things counted",
		"# TYPE oddci_test_total counter",
		"oddci_test_total 3",
		"# TYPE oddci_test_gauge gauge",
		"oddci_test_gauge 1.5",
		"oddci_test_fn 2",
		"# TYPE oddci_test_seconds histogram",
		"oddci_test_seconds_bucket{le=\"1\"} 1",
		"oddci_test_seconds_bucket{le=\"2\"} 2",
		"oddci_test_seconds_bucket{le=\"+Inf\"} 3",
		"oddci_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
}

func TestRenderJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(math.NaN()) // must not emit a NaN literal
	r.Histogram("h", "", nil).Observe(0.01)
	var decoded struct {
		Counters   map[string]int64              `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"histograms"`
	}
	out := r.RenderJSON()
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("RenderJSON not valid JSON: %v\n%s", err, out)
	}
	if decoded.Counters["c"] != 1 {
		t.Fatalf("counters = %v, want c=1", decoded.Counters)
	}
	if decoded.Histograms["h"]["count"] != 1 {
		t.Fatalf("histograms = %v, want h.count=1", decoded.Histograms)
	}
}

// TestConcurrentRegistry hammers every handle type from parallel
// goroutines while snapshots render concurrently; run under -race this
// is the registry's thread-safety proof.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	r.GaugeFunc("fn", "", func() float64 { return float64(c.Value()) })
	r.RegisterHealth("always", func() error { return nil })

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 100)
				if i%100 == 0 {
					// Late registration races against snapshots too.
					r.Counter("c", "").Inc()
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.RenderPrometheus()
				_ = r.Health()
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	wantC := int64(workers * (iters + iters/100))
	if got := c.Value(); got != wantC {
		t.Fatalf("counter = %d, want %d", got, wantC)
	}
	if got := h.Count(); got != int64(workers*iters) {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Zero observations: the estimator must not divide by the count.
	empty := r.Histogram("edge_empty", "no observations", []float64{1, 2})
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on empty histogram = %v, want 0", got)
	}

	// A single observation above the top bucket lands in +Inf; every
	// quantile clamps to the highest finite bound instead of inventing
	// an unbounded estimate.
	over := r.Histogram("edge_over", "one overflow observation", []float64{1, 2})
	over.Observe(100)
	for _, q := range []float64{0, 0.5, 1} {
		if got := over.Quantile(q); got != 2 {
			t.Fatalf("Quantile(%v) with only an overflow sample = %v, want top bound 2", q, got)
		}
	}

	// An observation exactly on a bucket boundary counts into that
	// bound's bucket (SearchFloat64s: first bound ≥ v), and the
	// interpolation of a full bucket reaches the boundary exactly.
	edge := r.Histogram("edge_boundary", "exact boundary observation", []float64{1, 2})
	edge.Observe(1)
	if got := edge.Quantile(1); got != 1 {
		t.Fatalf("Quantile(1) of one boundary observation = %v, want 1", got)
	}

	// Out-of-range q clamps rather than extrapolating.
	if got := edge.Quantile(-3); got != edge.Quantile(0) {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, edge.Quantile(0))
	}
	if got := edge.Quantile(7); got != edge.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, edge.Quantile(1))
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("exemplar_hist", "exemplar linkage", []float64{1, 2})
	if h.Exemplars() != nil {
		t.Fatal("exemplars non-nil before any ObserveWithExemplar")
	}
	h.ObserveWithExemplar(0.5, "trace-a")
	h.ObserveWithExemplar(0.7, "trace-b") // same bucket: latest wins
	h.ObserveWithExemplar(50, "trace-inf")
	h.ObserveWithExemplar(1.5, "") // empty exemplar degrades to Observe
	ex := h.Exemplars()
	want := []string{"trace-b", "", "trace-inf"}
	if len(ex) != len(want) {
		t.Fatalf("exemplar slots = %d, want %d", len(ex), len(want))
	}
	for i := range want {
		if ex[i] != want[i] {
			t.Fatalf("exemplar[%d] = %q, want %q", i, ex[i], want[i])
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (empty exemplar still observes)", h.Count())
	}

	// The /varz snapshot carries the exemplar map on the histogram.
	out := r.RenderJSON()
	for _, frag := range []string{`"exemplars"`, `"trace-b"`, `"trace-inf"`, `"+Inf"`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("RenderJSON missing %s:\n%s", frag, out)
		}
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("RenderJSON with exemplars is not valid JSON: %v\n%s", err, out)
	}
}
