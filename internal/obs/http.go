package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// TimelineSource is what /timeline needs from a trace recorder; the
// trace package's Recorder satisfies it (Render), kept as an interface
// so obs stays dependency-free.
type TimelineSource interface {
	Render(limit int) string
}

// NewHandler builds the coordinator's observability mux:
//
//	/metrics   Prometheus text exposition format
//	/varz      expvar-style JSON snapshot
//	/healthz   200 "ok" when every registered check passes, else 503
//	           with one "name: error" line per failing check
//	/timeline  recent trace events (?limit=N, default 100), if a
//	           timeline source is wired (404 otherwise)
func NewHandler(reg *Registry, timeline TimelineSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.RenderPrometheus())
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, reg.RenderJSON())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		failures := reg.Health()
		if len(failures) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		names := make([]string, 0, len(failures))
		for name := range failures {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%s: %v\n", name, failures[name])
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, req *http.Request) {
		if timeline == nil {
			http.NotFound(w, req)
			return
		}
		limit := 100
		if raw := req.URL.Query().Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, timeline.Render(limit))
	})
	return mux
}
