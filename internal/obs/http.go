package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// TimelineSource is what /timeline needs from a trace recorder; the
// trace package's Recorder satisfies it (Render), kept as an interface
// so obs stays dependency-free. A source that also implements
// jsonlSource (trace.Recorder does) unlocks /timeline?format=jsonl.
type TimelineSource interface {
	Render(limit int) string
}

// jsonlSource is the optional streaming face of a timeline source.
type jsonlSource interface {
	WriteJSONL(w io.Writer) error
}

// TraceSource is what /trace needs from a span collector; the span
// package's Collector satisfies it, kept as an interface so obs stays
// dependency-free.
type TraceSource interface {
	// RenderTraces renders an index of the most recent limit traces.
	RenderTraces(limit int) string
	// RenderTrace renders one trace's waterfall by ID (or ≥8-hex
	// prefix); ok is false when the trace is not retained.
	RenderTrace(id string) (string, bool)
	// WriteJSONL streams every retained span, one JSON object per line.
	WriteJSONL(w io.Writer) error
}

// jsonlContentType labels newline-delimited JSON exports.
const jsonlContentType = "application/x-ndjson; charset=utf-8"

// NewHandler builds the coordinator's observability mux:
//
//	/metrics     Prometheus text exposition format
//	/varz        expvar-style JSON snapshot (histogram buckets carry
//	             trace-ID exemplars when tracing is on)
//	/healthz     200 "ok" when every registered check passes, else 503
//	             with one "name: error" line per failing check
//	/timeline    recent trace events (?limit=N, default 100;
//	             ?format=jsonl streams them as NDJSON), if a timeline
//	             source is wired (404 otherwise)
//	/trace       recent distributed traces, one summary line each
//	             (?limit=N, default 50; ?format=jsonl exports every
//	             retained span), if a trace source is wired
//	/trace/{id}  one trace's span waterfall, by full 32-hex trace ID
//	             or a unique ≥8-hex prefix
//
// The returned mux is open for extension (the coordinator CLI mounts
// net/http/pprof on it behind a flag).
func NewHandler(reg *Registry, timeline TimelineSource, traces TraceSource) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.RenderPrometheus())
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, reg.RenderJSON())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		failures := reg.Health()
		if len(failures) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		names := make([]string, 0, len(failures))
		for name := range failures {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%s: %v\n", name, failures[name])
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, req *http.Request) {
		if timeline == nil {
			http.NotFound(w, req)
			return
		}
		if req.URL.Query().Get("format") == "jsonl" {
			js, ok := timeline.(jsonlSource)
			if !ok {
				http.Error(w, "timeline source has no JSONL export", http.StatusNotImplemented)
				return
			}
			w.Header().Set("Content-Type", jsonlContentType)
			js.WriteJSONL(w)
			return
		}
		limit, ok := parseLimit(w, req, 100)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, timeline.Render(limit))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if traces == nil {
			http.NotFound(w, req)
			return
		}
		if req.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", jsonlContentType)
			traces.WriteJSONL(w)
			return
		}
		limit, ok := parseLimit(w, req, 50)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, traces.RenderTraces(limit))
	})
	mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, req *http.Request) {
		if traces == nil {
			http.NotFound(w, req)
			return
		}
		out, ok := traces.RenderTrace(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	})
	return mux
}

func parseLimit(w http.ResponseWriter, req *http.Request, def int) (int, bool) {
	raw := req.URL.Query().Get("limit")
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return 0, false
	}
	return n, true
}
