// Package obs is the live telemetry layer of the control plane: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// latency histograms. Components create their metric handles once at
// construction and update them on the hot path with plain atomic
// operations — no locks, no allocation, no map lookups. Snapshot()
// renders the whole registry as expvar-style JSON or Prometheus text
// exposition format, and registered health checks back the /healthz
// endpoint.
//
// Every handle constructor is nil-receiver safe: a component built
// without a registry gets nil handles whose methods are no-ops, so
// instrumentation costs nothing when telemetry is off.
//
// Metric naming scheme: oddci_<component>_<metric>[_total|_seconds],
// snake_case, Prometheus conventions (counters end in _total, latency
// histograms in _seconds).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; not for hot paths that can
// use Set instead).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets is the default histogram bound set for control-plane
// latencies: 1 ms to 10 min, roughly ×2.5 per step. Upper bounds in
// seconds; observations above the last bound land in the overflow
// (+Inf) bucket.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: a binary search over the (immutable) bounds plus two
// atomic adds.
type Histogram struct {
	name   string
	help   string
	bounds []float64      // immutable after construction
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sumμs  atomic.Int64 // sum in microseconds: atomic add without a CAS loop
	// exemplars retains, per bucket, the trace ID of the last sampled
	// observation that landed there — the metrics→traces link. Lazily
	// allocated on the first ObserveWithExemplar, so histograms on
	// untraced deployments pay nothing.
	exemplars atomic.Pointer[[]atomic.Pointer[string]]
}

// Observe records one value (in seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumμs.Add(int64(v * 1e6))
}

// ObserveWithExemplar records v and pins exemplar (a trace ID) to the
// bucket v lands in, so a /varz reader can jump from a latency bucket
// straight to the trace that produced its most recent sample. An empty
// exemplar degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, exemplar string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if exemplar == "" {
		return
	}
	slots := h.exemplars.Load()
	if slots == nil {
		fresh := make([]atomic.Pointer[string], len(h.bounds)+1)
		if !h.exemplars.CompareAndSwap(nil, &fresh) {
			slots = h.exemplars.Load()
		} else {
			slots = &fresh
		}
	}
	i := sort.SearchFloat64s(h.bounds, v)
	(*slots)[i].Store(&exemplar)
}

// Exemplars returns the per-bucket exemplar trace IDs (aligned with the
// snapshot's Counts; empty strings where no sampled observation landed),
// or nil when no exemplar was ever recorded.
func (h *Histogram) Exemplars() []string {
	if h == nil {
		return nil
	}
	slots := h.exemplars.Load()
	if slots == nil {
		return nil
	}
	out := make([]string, len(*slots))
	for i := range *slots {
		if p := (*slots)[i].Load(); p != nil {
			out[i] = *p
		}
	}
	return out
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumμs.Load()) / 1e6
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket, the same estimator as
// Prometheus's histogram_quantile. Observations in the overflow bucket
// clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow bucket clamps
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket, last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	// Exemplars holds, per bucket, the trace ID of the last sampled
	// observation (empty where none; nil when tracing is off).
	Exemplars []string `json:"exemplars,omitempty"`
}

// HealthCheck reports nil when healthy, or an error describing the
// failing condition.
type HealthCheck func() error

// Registry holds named metrics and health checks. The zero value is not
// usable; use NewRegistry. A nil *Registry hands out nil (no-op)
// handles, so wiring telemetry is always optional.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]gaugeFn
	hists    map[string]*Histogram
	checks   map[string]HealthCheck
	order    []string // registration order, for stable rendering
}

type gaugeFn struct {
	help string
	fn   func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]gaugeFn),
		hists:    make(map[string]*Histogram),
		checks:   make(map[string]HealthCheck),
	}
}

func (r *Registry) noteNameLocked(name string) {
	r.order = append(r.order, name)
}

// Counter returns the named counter, creating it on first use. Repeated
// calls with the same name share one counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	r.noteNameLocked(name)
	return c
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.noteNameLocked(name)
	return g
}

// GaugeFunc registers a gauge evaluated lazily at snapshot time — zero
// hot-path cost for values a component can already report (queue depth,
// population counts). Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.noteNameLocked(name)
	}
	r.gaugeFns[name] = gaugeFn{help: help, fn: fn}
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil bounds = LatencyBuckets).
// Bounds must be sorted ascending; they are copied.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.noteNameLocked(name)
	return h
}

// RegisterHealth installs a named health check backing /healthz.
func (r *Registry) RegisterHealth(name string, check HealthCheck) {
	if r == nil || check == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks[name] = check
}

// Health evaluates every check and returns the failures by name (empty
// map = healthy). Checks run without the registry lock held.
func (r *Registry) Health() map[string]error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	checks := make(map[string]HealthCheck, len(r.checks))
	for name, fn := range r.checks {
		checks[name] = fn
	}
	r.mu.Unlock()
	out := make(map[string]error)
	for name, fn := range checks {
		if err := fn(); err != nil {
			out[name] = err
		}
	}
	return out
}

// Value looks one metric up by name: counters and gauges report their
// value, histograms their observation count.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	c, cok := r.counters[name]
	g, gok := r.gauges[name]
	gf, gfok := r.gaugeFns[name]
	h, hok := r.hists[name]
	r.mu.Unlock()
	switch {
	case cok:
		return float64(c.Value()), true
	case gok:
		return g.Value(), true
	case gfok:
		return gf.fn(), true
	case hok:
		return float64(h.Count()), true
	}
	return 0, false
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry. Gauge functions are evaluated without
// the registry lock held, so components may take their own locks.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for name, gf := range r.gaugeFns {
		fns[name] = gf.fn
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		snap.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.Value()
	}
	for name, fn := range fns {
		snap.Gauges[name] = fn()
	}
	for _, h := range hists {
		hs := HistogramSnapshot{
			Bounds:    h.bounds,
			Counts:    make([]int64, len(h.counts)),
			Count:     h.Count(),
			Sum:       h.Sum(),
			P50:       h.Quantile(0.50),
			P90:       h.Quantile(0.90),
			P99:       h.Quantile(0.99),
			Exemplars: h.Exemplars(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[h.name] = hs
	}
	return snap
}

// RenderJSON renders the snapshot as expvar-style JSON with sorted
// keys (stable output for tests and diffing).
func (s Snapshot) RenderJSON() string {
	var b strings.Builder
	b.WriteString("{\n \"counters\": {")
	writeSorted(&b, sortedKeys(s.Counters), func(b *strings.Builder, k string) {
		fmt.Fprintf(b, "\n  %q: %d", k, s.Counters[k])
	})
	b.WriteString("\n },\n \"gauges\": {")
	writeSorted(&b, sortedKeys(s.Gauges), func(b *strings.Builder, k string) {
		fmt.Fprintf(b, "\n  %q: %s", k, formatJSONFloat(s.Gauges[k]))
	})
	b.WriteString("\n },\n \"histograms\": {")
	writeSorted(&b, sortedKeys(s.Histograms), func(b *strings.Builder, k string) {
		h := s.Histograms[k]
		fmt.Fprintf(b, "\n  %q: {\"count\": %d, \"sum\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s",
			k, h.Count, formatJSONFloat(h.Sum),
			formatJSONFloat(h.P50), formatJSONFloat(h.P90), formatJSONFloat(h.P99))
		if len(h.Exemplars) > 0 {
			b.WriteString(", \"exemplars\": {")
			first := true
			for i, ex := range h.Exemplars {
				if ex == "" {
					continue
				}
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatPromFloat(h.Bounds[i])
				}
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(b, "%q: %q", le, ex)
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	})
	b.WriteString("\n }\n}\n")
	return b.String()
}

// RenderPrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, _bucket/_sum/_count series
// for histograms, cumulative le labels ending in +Inf.
func (s Snapshot) RenderPrometheus(help map[string]string) string {
	var b strings.Builder
	h := func(name string) string {
		if help == nil {
			return ""
		}
		return help[name]
	}
	for _, name := range sortedKeys(s.Counters) {
		writeHeader(&b, name, "counter", h(name))
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeHeader(&b, name, "gauge", h(name))
		fmt.Fprintf(&b, "%s %s\n", name, formatPromFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		writeHeader(&b, name, "histogram", h(name))
		var cum int64
		for i, bound := range hs.Bounds {
			cum += hs.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatPromFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatPromFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, hs.Count)
	}
	return b.String()
}

// RenderPrometheus renders the registry's current state, using each
// metric's registered help text.
func (r *Registry) RenderPrometheus() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	help := make(map[string]string, len(r.order))
	for name, c := range r.counters {
		help[name] = c.help
	}
	for name, g := range r.gauges {
		help[name] = g.help
	}
	for name, gf := range r.gaugeFns {
		help[name] = gf.help
	}
	for name, h := range r.hists {
		help[name] = h.help
	}
	r.mu.Unlock()
	return r.Snapshot().RenderPrometheus(help)
}

// RenderJSON renders the registry's current state as JSON.
func (r *Registry) RenderJSON() string { return r.Snapshot().RenderJSON() }

func writeHeader(b *strings.Builder, name, typ, help string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeSorted(b *strings.Builder, keys []string, item func(*strings.Builder, string)) {
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		item(b, k)
	}
}

// formatJSONFloat renders a float as valid JSON (no NaN/Inf literals).
func formatJSONFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return formatPromFloat(v)
}

func formatPromFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
