// Package metrics provides the measurement toolkit used by the
// experiment harness: summary statistics with confidence intervals (the
// paper reports means "with a confidence level of 90%"), makespan and
// efficiency accounting for job runs, and plain-text table/series
// rendering in the style of the paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddDuration appends a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation (n-1 denominator).
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (0 for empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// tCritical90 approximates the two-sided 90% Student-t critical value
// for n-1 degrees of freedom.
func tCritical90(df int) float64 {
	// Table for small df, asymptote 1.645 (normal) beyond.
	table := map[int]float64{
		1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015,
		6: 1.943, 7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812,
		11: 1.796, 12: 1.782, 13: 1.771, 14: 1.761, 15: 1.753,
		20: 1.725, 25: 1.708, 30: 1.697, 40: 1.684, 60: 1.671, 120: 1.658,
	}
	if v, ok := table[df]; ok {
		return v
	}
	if df > 120 {
		return 1.645 // normal approximation
	}
	// Nearest smaller tabulated df (conservative: its critical value is
	// larger).
	keys := []int{120, 60, 40, 30, 25, 20, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	for _, k := range keys {
		if df >= k {
			return table[k]
		}
	}
	return 6.314
}

// CI90 returns the half-width of the 90% confidence interval of the
// mean.
func (s *Sample) CI90() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical90(n-1) * s.Std() / math.Sqrt(float64(n))
}

// RelativeError90 returns CI90/Mean — the paper's "maximum error"
// phrasing (e.g. "20.6 worse with a maximum error of 10%").
func (s *Sample) RelativeError90() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.CI90() / m
}

// Table renders aligned plain-text tables in the style of the paper.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Series is one labelled curve of a figure: (x, y) points.
type Series struct {
	Label string
	X, Y  []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes, rendered as aligned columns
// (one x column, one y column per series) — the textual equivalent of
// the paper's plots, directly plottable.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new labelled series.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as a column table keyed by the x values of
// the first series (all series must share x values).
func (f *Figure) String() string {
	if len(f.Series) == 0 {
		return f.Title + " (empty)\n"
	}
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	t := NewTable(fmt.Sprintf("%s — %s vs %s", f.Title, f.YLabel, f.XLabel), headers...)
	base := f.Series[0]
	for i, x := range base.X {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, formatFloat(x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}
