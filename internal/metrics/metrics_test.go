package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Std(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("std = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.CI90() != 0 || s.Min() != 0 ||
		s.Max() != 0 || s.Percentile(50) != 0 || s.RelativeError90() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI90CoversTrueMean(t *testing.T) {
	// Draw repeated samples from N(10, 2); the 90% CI should contain the
	// true mean roughly 90% of the time.
	rng := rand.New(rand.NewSource(77))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 15; j++ {
			s.Add(10 + rng.NormFloat64()*2)
		}
		if math.Abs(s.Mean()-10) <= s.CI90() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.85 || rate > 0.95 {
		t.Fatalf("CI90 coverage = %.3f, want ≈ 0.90", rate)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical90(1) != 6.314 {
		t.Fatal("df=1")
	}
	if tCritical90(200) != 1.645 {
		t.Fatal("df=200")
	}
	if got := tCritical90(17); got != 1.753 { // nearest smaller: 15
		t.Fatalf("df=17 → %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table II", "#Test", "STB In Use (s)", "PC (s)")
	tb.AddRow(1, 3.338, 0.162)
	tb.AddRow(12, 38858.298, 1886.214)
	out := tb.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "#Test") {
		t.Fatalf("missing title/headers:\n%s", out)
	}
	if !strings.Contains(out, "3.338") {
		t.Fatalf("missing cell:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableDurationCells(t *testing.T) {
	tb := NewTable("", "w")
	tb.AddRow(1500 * time.Millisecond)
	if !strings.Contains(tb.String(), "1.500s") {
		t.Fatalf("duration cell: %s", tb.String())
	}
}

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("Figure 6", "phi", "efficiency")
	s1 := fig.AddSeries("n/N=1")
	s10 := fig.AddSeries("n/N=10")
	for _, x := range []float64{1, 10, 100} {
		s1.Add(x, x/200)
		s10.Add(x, x/100)
	}
	out := fig.String()
	if !strings.Contains(out, "n/N=1") || !strings.Contains(out, "n/N=10") {
		t.Fatalf("missing series labels:\n%s", out)
	}
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("missing title:\n%s", out)
	}
}

func TestRelativeError(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(100)
	}
	if s.RelativeError90() != 0 {
		t.Fatal("zero-variance sample should have zero relative error")
	}
	s.Add(200)
	if s.RelativeError90() <= 0 {
		t.Fatal("relative error should be positive with variance")
	}
}
