// Package simtime provides the virtual-time kernel used by every simulated
// component in the OddCI reproduction.
//
// Components are written against the Clock interface and never touch the
// time package directly. Two implementations exist:
//
//   - Real: thin wrapper over the time package, for wall-clock demos.
//   - Sim: a deterministic discrete-event clock. Goroutines spawned with
//     Go participate in a runnable-count protocol: virtual time only
//     advances when every participating goroutine is blocked in a clock
//     primitive (Sleep or Suspend), at which point the earliest pending
//     timer fires. This yields deterministic, faster-than-real-time
//     execution of unmodified concurrent component code.
//
// The Sim clock doubles as a plain discrete-event engine: with zero
// participating goroutines, scheduling work with AfterFunc and calling
// Wait runs a classic single-threaded event loop, which is how the
// large-N experiment models in internal/sim execute.
package simtime

import "time"

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing (false if it already fired or was stopped).
	Stop() bool
}

// Clock abstracts the flow of time for simulated components.
//
// Rules for code running under a Sim clock:
//
//   - Every long-lived goroutine must be spawned through Go, never the go
//     statement, so the clock can account for it.
//   - Goroutines must block only through clock primitives (Sleep, Suspend)
//     or on synchronization that is itself driven by clock callbacks
//     (e.g. netsim mailboxes). Blocking on anything else stalls virtual
//     time and is reported as a deadlock.
//   - AfterFunc callbacks run on the clock's event loop and must not call
//     blocking clock primitives; they should do bounded work (deliver a
//     message, wake a waiter, schedule more events).
type Clock interface {
	// Now returns the current (virtual or wall) time.
	Now() time.Time

	// Sleep blocks the calling goroutine for d. Non-positive d yields
	// without advancing time ordering guarantees.
	Sleep(d time.Duration)

	// AfterFunc schedules fn to run once, d from now.
	AfterFunc(d time.Duration, fn func()) Timer

	// Go spawns a participating goroutine running fn.
	Go(fn func())

	// Suspend blocks the calling goroutine until the wake function passed
	// to publish is invoked. publish runs synchronously before blocking;
	// it must hand wake to whoever will eventually call it (exactly once).
	// wake may be called from any goroutine, including before publish
	// returns.
	Suspend(publish func(wake func()))

	// Wait blocks until the system is quiescent: all goroutines spawned
	// with Go have returned and (for the Sim clock) no pending events
	// remain that could wake anything.
	Wait()
}
