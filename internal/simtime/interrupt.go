package simtime

import (
	"sync"
	"time"
)

// Interrupter provides cancellable sleeps over a Clock: long waits
// (heartbeat intervals, task execution) that must end promptly when the
// owning component is torn down (DVE destruction, Xlet destroy, power
// off). The zero value is ready to use.
type Interrupter struct {
	mu        sync.Mutex
	cancelled bool
	wakers    []func()
}

// Cancelled reports whether Cancel has been called.
func (i *Interrupter) Cancelled() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cancelled
}

// Cancel interrupts all current and future sleeps.
func (i *Interrupter) Cancel() {
	i.mu.Lock()
	i.cancelled = true
	w := i.wakers
	i.wakers = nil
	i.mu.Unlock()
	for _, wake := range w {
		wake()
	}
}

// Sleep blocks for d or until Cancel, whichever comes first. It reports
// whether the full duration elapsed without cancellation.
func (i *Interrupter) Sleep(clk Clock, d time.Duration) bool {
	i.mu.Lock()
	if i.cancelled {
		i.mu.Unlock()
		return false
	}
	i.mu.Unlock()

	var tm Timer
	clk.Suspend(func(wake func()) {
		i.mu.Lock()
		if i.cancelled {
			i.mu.Unlock()
			wake()
			return
		}
		i.wakers = append(i.wakers, wake)
		i.mu.Unlock()
		tm = clk.AfterFunc(d, wake)
	})
	if tm != nil {
		tm.Stop()
	}
	return !i.Cancelled()
}
