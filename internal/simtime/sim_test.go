package simtime

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func TestSimAfterFuncOrdering(t *testing.T) {
	clk := NewSim(epoch)
	var got []int
	delays := []time.Duration{50, 10, 30, 20, 40}
	for i, d := range delays {
		i, d := i, d
		clk.AfterFunc(d*time.Millisecond, func() { got = append(got, i) })
	}
	clk.Wait()
	want := []int{1, 3, 2, 4, 0}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v", got, want)
		}
	}
	if n := clk.Now(); !n.Equal(epoch.Add(50 * time.Millisecond)) {
		t.Fatalf("final time %v, want epoch+50ms", n)
	}
}

func TestSimSameInstantFIFO(t *testing.T) {
	clk := NewSim(epoch)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		clk.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	clk.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSimTimerStop(t *testing.T) {
	clk := NewSim(epoch)
	fired := false
	tm := clk.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	clk.Wait()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	clk := NewSim(epoch)
	var woke time.Time
	start := time.Now()
	clk.Go(func() {
		clk.Sleep(10 * time.Hour)
		woke = clk.Now()
	})
	clk.Wait()
	if !woke.Equal(epoch.Add(10 * time.Hour)) {
		t.Fatalf("woke at %v, want epoch+10h", woke)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("virtual 10h sleep took %v of wall time", elapsed)
	}
}

func TestSimManyGoroutinesDeterministic(t *testing.T) {
	run := func() []int {
		clk := NewSim(epoch)
		var mu sync.Mutex
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			clk.Go(func() {
				clk.Sleep(time.Duration(50-i) * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		clk.Wait()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering: run1=%v run2=%v", a, b)
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] > a[j] }) {
		t.Fatalf("goroutines woke out of delay order: %v", a)
	}
}

func TestSimSuspendWake(t *testing.T) {
	clk := NewSim(epoch)
	var delivered string
	clk.Go(func() {
		clk.Suspend(func(wake func()) {
			clk.AfterFunc(3*time.Second, func() {
				delivered = "msg"
				wake()
			})
		})
		if delivered != "msg" {
			t.Error("woke before delivery")
		}
		if !clk.Now().Equal(epoch.Add(3 * time.Second)) {
			t.Errorf("woke at %v, want epoch+3s", clk.Now())
		}
	})
	clk.Wait()
	if delivered != "msg" {
		t.Fatal("suspend never woke")
	}
}

func TestSimWakeBeforeParkIsSafe(t *testing.T) {
	// wake invoked synchronously inside publish (message already waiting).
	clk := NewSim(epoch)
	done := false
	clk.Go(func() {
		clk.Suspend(func(wake func()) { wake() })
		done = true
	})
	clk.Wait()
	if !done {
		t.Fatal("goroutine never resumed")
	}
}

func TestSimDeadlockPanics(t *testing.T) {
	clk := NewSim(epoch)
	panicked := make(chan any, 1)
	clk.Go(func() {
		defer func() { panicked <- recover() }()
		clk.Suspend(func(wake func()) {}) // nobody will ever wake us
	})
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("expected deadlock panic, got nil recover")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock not detected")
	}
}

func TestSimNestedSpawn(t *testing.T) {
	clk := NewSim(epoch)
	var count atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		clk.Sleep(time.Millisecond)
		count.Add(1)
		if depth < 5 {
			for i := 0; i < 2; i++ {
				d := depth
				clk.Go(func() { spawn(d + 1) })
			}
		}
	}
	clk.Go(func() { spawn(0) })
	clk.Wait()
	if got := count.Load(); got != 63 { // 2^6 - 1
		t.Fatalf("ran %d goroutines, want 63", got)
	}
}

func TestSimRunUntil(t *testing.T) {
	clk := NewSim(epoch)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		clk.AfterFunc(d, func() { fired = append(fired, d) })
	}
	clk.RunUntil(epoch.Add(3 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1s and 2s only", fired)
	}
	if !clk.Now().Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("time %v, want epoch+3s", clk.Now())
	}
	clk.RunUntil(epoch.Add(10 * time.Second))
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all three after second RunUntil", fired)
	}
}

// Property: for any set of non-negative delays, events fire in
// nondecreasing time order and all fire.
func TestSimFiringOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		clk := NewSim(epoch)
		var times []time.Time
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			clk.AfterFunc(d, func() { times = append(times, clk.Now()) })
		}
		clk.Wait()
		if len(times) != len(raw) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved sleeps across goroutines always observe
// monotonically nondecreasing Now().
func TestSimMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	clk := NewSim(epoch)
	var mu sync.Mutex
	var stamps []time.Time
	for g := 0; g < 20; g++ {
		n := rng.Intn(20) + 1
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}
		clk.Go(func() {
			for _, d := range delays {
				clk.Sleep(d)
				mu.Lock()
				stamps = append(stamps, clk.Now())
				mu.Unlock()
			}
		})
	}
	clk.Wait()
	for i := 1; i < len(stamps); i++ {
		if stamps[i].Before(stamps[i-1]) {
			t.Fatalf("time went backwards at observation %d", i)
		}
	}
}

func TestRealClockBasics(t *testing.T) {
	clk := NewReal()
	before := clk.Now()
	clk.Sleep(time.Millisecond)
	if !clk.Now().After(before) {
		t.Fatal("real clock did not advance")
	}
	done := make(chan struct{})
	clk.AfterFunc(time.Millisecond, func() { close(done) })
	<-done

	var ran atomic.Bool
	clk.Go(func() { ran.Store(true) })
	clk.Wait()
	if !ran.Load() {
		t.Fatal("Go goroutine did not run before Wait returned")
	}

	woke := false
	clk.Go(func() {
		clk.Suspend(func(wake func()) {
			clk.AfterFunc(time.Millisecond, wake)
		})
		woke = true
	})
	clk.Wait()
	if !woke {
		t.Fatal("real Suspend never woke")
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	clk := NewSim(epoch)
	var i int
	var step func()
	step = func() {
		i++
		if i < b.N {
			clk.AfterFunc(time.Microsecond, step)
		}
	}
	b.ResetTimer()
	clk.AfterFunc(0, step)
	clk.Wait()
}
