package simtime

import (
	"math/rand"
	"sort"
	"testing"
)

// collect drains the wheel up to limit into (tick, id) pairs.
func collect(w *Wheel, limit int64) (ticks []int64, ids []int32) {
	w.AdvanceTo(limit, func(tick int64, batch []int32) {
		for _, id := range batch {
			ticks = append(ticks, tick)
			ids = append(ids, id)
		}
	})
	return
}

func TestWheelFiresInTickOrder(t *testing.T) {
	w := NewWheel(0)
	for i, tick := range []int64{500, 3, 70000, 3, 256, 17_000_000, 257} {
		w.Schedule(tick, int32(i))
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
	ticks, ids := collect(w, 20_000_000)
	wantTicks := []int64{3, 3, 256, 257, 500, 70000, 17_000_000}
	wantIDs := []int32{1, 3, 4, 6, 0, 2, 5}
	if len(ticks) != len(wantTicks) {
		t.Fatalf("fired %d items, want %d", len(ticks), len(wantTicks))
	}
	for i := range wantTicks {
		if ticks[i] != wantTicks[i] || ids[i] != wantIDs[i] {
			t.Fatalf("firing %d = (%d,%d), want (%d,%d)", i, ticks[i], ids[i], wantTicks[i], wantIDs[i])
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}

func TestWheelBatchesSameTick(t *testing.T) {
	w := NewWheel(100)
	for i := int32(0); i < 1000; i++ {
		w.Schedule(5000, i)
	}
	var batches int
	var total int
	w.AdvanceTo(10_000, func(tick int64, ids []int32) {
		batches++
		total += len(ids)
		if tick != 5000 {
			t.Fatalf("fired at %d, want 5000", tick)
		}
	})
	if batches != 1 || total != 1000 {
		t.Fatalf("batches=%d total=%d, want one batch of 1000", batches, total)
	}
}

func TestWheelPastTickClampsToNext(t *testing.T) {
	w := NewWheel(50)
	w.Schedule(10, 1) // in the past: fires at the next tick
	w.Schedule(50, 2) // at the cursor: same
	ticks, _ := collect(w, 60)
	if len(ticks) != 2 || ticks[0] != 51 || ticks[1] != 51 {
		t.Fatalf("clamped ticks = %v, want [51 51]", ticks)
	}
}

func TestWheelAdvanceStopsAtLimit(t *testing.T) {
	w := NewWheel(0)
	w.Schedule(10, 1)
	w.Schedule(20, 2)
	ticks, _ := collect(w, 15)
	if len(ticks) != 1 || ticks[0] != 10 {
		t.Fatalf("fired %v, want [10]", ticks)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want the tick-20 item pending", w.Len())
	}
	ticks, _ = collect(w, 25)
	if len(ticks) != 1 || ticks[0] != 20 {
		t.Fatalf("second advance fired %v, want [20]", ticks)
	}
}

func TestWheelEmptyAdvanceMovesCursor(t *testing.T) {
	w := NewWheel(0)
	w.AdvanceTo(1_000_000, func(int64, []int32) { t.Fatal("fired on empty wheel") })
	if w.Now() != 1_000_000 {
		t.Fatalf("cursor = %d, want 1000000", w.Now())
	}
	w.Schedule(1_000_001, 7)
	ticks, _ := collect(w, 2_000_000)
	if len(ticks) != 1 || ticks[0] != 1_000_001 {
		t.Fatalf("fired %v after cursor jump", ticks)
	}
}

func TestWheelScheduleDuringFire(t *testing.T) {
	w := NewWheel(0)
	w.Schedule(10, 1)
	var fired []int64
	w.AdvanceTo(100, func(tick int64, ids []int32) {
		fired = append(fired, tick)
		if tick == 10 {
			w.Schedule(tick+5, 2) // within the same advance window
			w.Schedule(tick+500, 3)
		}
	})
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired %v, want [10 15]", fired)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want tick-510 item pending", w.Len())
	}
}

func TestWheelHorizonPanics(t *testing.T) {
	w := NewWheel(0)
	defer func() {
		if recover() == nil {
			t.Fatal("schedule past the horizon did not panic")
		}
	}()
	w.Schedule(WheelHorizon, 1)
}

// TestWheelSpanBoundaries pins the inclusive-span placement rule: items
// exactly one ring span away must not defer a full revolution.
func TestWheelSpanBoundaries(t *testing.T) {
	deltas := []int64{
		1, 255, 256, 257,
		wheelSlots*wheelSlots - 1, wheelSlots * wheelSlots, wheelSlots*wheelSlots + 1,
		1<<24 - 1, 1 << 24, 1<<24 + 1,
		WheelHorizon - 1,
	}
	for _, start := range []int64{0, 1, 255, 256, 65535, 1<<24 - 1} {
		for i, d := range deltas {
			w := NewWheel(start)
			w.Schedule(start+d, int32(i))
			ticks, _ := collect(w, start+d+1)
			if len(ticks) != 1 || ticks[0] != start+d {
				t.Fatalf("start=%d delta=%d fired %v, want [%d]", start, d, ticks, start+d)
			}
		}
	}
}

// TestWheelMatchesReference runs randomized schedules (including
// schedules issued mid-fire) against a sorted-slice reference model.
func TestWheelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		start := rng.Int63n(1 << 20)
		w := NewWheel(start)
		type ref struct {
			tick int64
			id   int32
		}
		var want []ref
		var id int32
		add := func(now int64) {
			tick := now + 1 + rng.Int63n(1<<uint(8+rng.Intn(17)))
			w.Schedule(tick, id)
			want = append(want, ref{tick, id})
			id++
		}
		for i := 0; i < 300; i++ {
			add(start)
		}
		var got []ref
		limit := start + 1<<25
		w.AdvanceTo(limit, func(tick int64, ids []int32) {
			for _, fid := range ids {
				got = append(got, ref{tick, fid})
			}
			if rng.Intn(4) == 0 && id < 400 {
				add(tick)
			}
		})
		// Drop reference entries beyond the advance limit.
		var inRange []ref
		for _, r := range want {
			if r.tick <= limit {
				inRange = append(inRange, r)
			}
		}
		sort.SliceStable(inRange, func(i, j int) bool { return inRange[i].tick < inRange[j].tick })
		if len(got) != len(inRange) {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(got), len(inRange))
		}
		for i := range got {
			if got[i].tick != inRange[i].tick {
				t.Fatalf("trial %d: firing %d at tick %d, want %d", trial, i, got[i].tick, inRange[i].tick)
			}
		}
		if w.Len() != len(want)-len(inRange) {
			t.Fatalf("trial %d: Len = %d, want %d pending", trial, w.Len(), len(want)-len(inRange))
		}
	}
}

func BenchmarkWheelScheduleFire(b *testing.B) {
	w := NewWheel(0)
	var fired int
	for i := 0; i < b.N; i++ {
		w.Schedule(w.Now()+1+int64(i%1000), int32(i))
		if i%64 == 63 {
			w.AdvanceTo(w.Now()+32, func(_ int64, ids []int32) { fired += len(ids) })
		}
	}
	w.AdvanceTo(w.Now()+2000, func(_ int64, ids []int32) { fired += len(ids) })
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}
