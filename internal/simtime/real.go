package simtime

import (
	"sync"
	"time"
)

// Real is the wall-clock implementation of Clock. Its zero value is ready
// to use.
type Real struct {
	wg sync.WaitGroup
}

// NewReal returns a wall-clock Clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (r *Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// AfterFunc implements Clock.
func (r *Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

// Go implements Clock.
func (r *Real) Go(fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Suspend implements Clock.
func (r *Real) Suspend(publish func(wake func())) {
	ch := make(chan struct{})
	var once sync.Once
	publish(func() { once.Do(func() { close(ch) }) })
	<-ch
}

// Wait implements Clock.
func (r *Real) Wait() { r.wg.Wait() }
