package simtime

import (
	"strings"
	"testing"
	"time"
)

// TestSimStoppedTimersLazyInvalidation pins the popLocked path: stopped
// events stay in the heap but are skipped, never fired, and never
// counted in Fired.
func TestSimStoppedTimersLazyInvalidation(t *testing.T) {
	clk := NewSim(epoch)
	var fired []int
	var timers []Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, clk.AfterFunc(time.Duration(i+1)*time.Second, func() {
			fired = append(fired, i)
		}))
	}
	// Stop the earliest, one in the middle, and the latest.
	for _, i := range []int{0, 2, 4} {
		if !timers[i].Stop() {
			t.Fatalf("Stop(%d) = false on pending timer", i)
		}
	}
	clk.Wait()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
	if got := clk.Fired(); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if n := clk.Now(); !n.Equal(epoch.Add(4 * time.Second)) {
		t.Fatalf("final time %v, want epoch+4s (stopped tail must not advance time)", n)
	}
	if timers[1].Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

// TestSimAllTimersStoppedWaitReturns: with every event stopped there is
// nothing live, so Wait must return without firing or hanging.
func TestSimAllTimersStoppedWaitReturns(t *testing.T) {
	clk := NewSim(epoch)
	var timers []Timer
	for i := 0; i < 3; i++ {
		timers = append(timers, clk.AfterFunc(time.Second, func() { t.Error("stopped timer fired") }))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	done := make(chan struct{})
	go func() { clk.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung on a heap of stopped timers")
	}
	if !clk.Now().Equal(epoch) {
		t.Fatalf("time advanced to %v with no live events", clk.Now())
	}
}

// TestSimRunUntilSkipsStoppedHead pins the peekLocked path: a stopped
// event at the head of the heap is discarded during the peek, not fired.
func TestSimRunUntilSkipsStoppedHead(t *testing.T) {
	clk := NewSim(epoch)
	head := clk.AfterFunc(time.Second, func() { t.Error("stopped head fired") })
	var liveAt time.Time
	clk.AfterFunc(2*time.Second, func() { liveAt = clk.Now() })
	head.Stop()
	clk.RunUntil(epoch.Add(3 * time.Second))
	if !liveAt.Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("live event fired at %v, want epoch+2s", liveAt)
	}
	if !clk.Now().Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("RunUntil left time at %v, want the target", clk.Now())
	}
}

// TestSimRunUntilAdvancesWhenDrained: when the queue drains before the
// target — or was empty to begin with — RunUntil must still advance now
// to t, so back-to-back model phases stay aligned.
func TestSimRunUntilAdvancesWhenDrained(t *testing.T) {
	clk := NewSim(epoch)
	fired := false
	clk.AfterFunc(time.Second, func() { fired = true })
	clk.RunUntil(epoch.Add(10 * time.Second))
	if !fired {
		t.Fatal("event at +1s never fired")
	}
	if !clk.Now().Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("now = %v after early drain, want epoch+10s", clk.Now())
	}
	// Empty queue: a further RunUntil still advances.
	clk.RunUntil(epoch.Add(20 * time.Second))
	if !clk.Now().Equal(epoch.Add(20 * time.Second)) {
		t.Fatalf("now = %v on empty queue, want epoch+20s", clk.Now())
	}
	// A target in the past must not rewind.
	clk.RunUntil(epoch.Add(5 * time.Second))
	if !clk.Now().Equal(epoch.Add(20 * time.Second)) {
		t.Fatalf("now = %v, RunUntil must never rewind", clk.Now())
	}
}

// TestSimRunUntilRejectsActors: the pure event-loop driver refuses to
// run while participating goroutines exist.
func TestSimRunUntilRejectsActors(t *testing.T) {
	clk := NewSim(epoch)
	clk.Go(func() { clk.Sleep(time.Second) })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunUntil with a live actor did not panic")
			}
		}()
		clk.RunUntil(epoch.Add(time.Minute))
	}()
	clk.Wait() // drain the sleeping actor so the test exits clean
}

// TestSimDeadlockPanicMessage: the no-runnable-actors deadlock panic
// names the parked count and the virtual instant, which is what makes
// hung fleet runs debuggable.
func TestSimDeadlockPanicMessage(t *testing.T) {
	clk := NewSim(epoch)
	msg := make(chan any, 1)
	clk.Go(func() {
		defer func() { msg <- recover() }()
		clk.Suspend(func(wake func()) {}) // wake is dropped: nothing can ever fire
	})
	select {
	case p := <-msg:
		s, ok := p.(string)
		if !ok || !strings.Contains(s, "deadlock") || !strings.Contains(s, "1 goroutine") {
			t.Fatalf("panic = %v, want a deadlock message naming the parked goroutine count", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock not detected")
	}
}
