package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a deterministic discrete-event Clock.
//
// Virtual time advances only when every goroutine spawned through Go is
// blocked inside a clock primitive; then the earliest pending timer fires.
// Events scheduled for the same instant fire in scheduling order, and a
// fired event's effects (typically waking one goroutine) are fully drained
// before the next event at the same instant fires, so runs are repeatable.
//
// With no participating goroutines, Sim degenerates into a classic
// single-threaded event loop: schedule callbacks with AfterFunc and drive
// them with Wait. This is the mode used by the large-N experiment models.
type Sim struct {
	mu   sync.Mutex
	cond *sync.Cond

	now time.Time
	seq uint64

	events eventHeap
	live   int // non-stopped events in the heap

	actors     int // goroutines spawned via Go that have not returned
	runnable   int // actors not currently parked in Sleep/Suspend
	publishing int // actors between runnable-- and their publish returning
	advancing  bool

	fired uint64 // total events fired, for diagnostics
}

// NewSim returns a Sim clock whose virtual time starts at start.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	s.cond = sync.NewCond(&s.mu)
	return s
}

type event struct {
	at      time.Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Fired reports how many events have fired so far; useful in tests and
// experiment diagnostics.
func (s *Sim) Fired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

type simTimer struct {
	s  *Sim
	ev *event
}

func (t simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.stopped || t.ev.index == -1 {
		return false
	}
	t.ev.stopped = true
	t.s.live--
	return true
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	ev := &event{at: s.now.Add(d), seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	s.live++
	s.cond.Broadcast()
	s.mu.Unlock()
	return simTimer{s, ev}
}

// Go implements Clock.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	s.actors++
	s.runnable++
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.actors--
			s.runnable--
			s.maybeAdvanceLocked()
			s.cond.Broadcast()
			s.mu.Unlock()
		}()
		fn()
	}()
}

// Suspend implements Clock.
func (s *Sim) Suspend(publish func(wake func())) {
	ch := make(chan struct{})
	var once sync.Once
	wake := func() {
		once.Do(func() {
			s.mu.Lock()
			s.runnable++
			s.cond.Broadcast()
			s.mu.Unlock()
			close(ch)
		})
	}

	s.mu.Lock()
	s.runnable--
	s.publishing++
	s.mu.Unlock()

	publish(wake)

	s.mu.Lock()
	s.publishing--
	s.maybeAdvanceLocked()
	s.cond.Broadcast()
	s.mu.Unlock()

	<-ch
}

// Sleep implements Clock.
func (s *Sim) Sleep(d time.Duration) {
	s.Suspend(func(wake func()) { s.AfterFunc(d, wake) })
}

// popLocked removes and returns the earliest live event, or nil.
func (s *Sim) popLocked() *event {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			continue
		}
		s.live--
		return ev
	}
	return nil
}

// maybeAdvanceLocked fires pending events while no actor is runnable.
// Caller holds s.mu.
func (s *Sim) maybeAdvanceLocked() {
	if s.advancing || s.runnable > 0 || s.publishing > 0 {
		return
	}
	s.advancing = true
	for s.runnable == 0 && s.publishing == 0 {
		ev := s.popLocked()
		if ev == nil {
			break
		}
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.fired++
		fn := ev.fn
		s.mu.Unlock()
		fn()
		s.mu.Lock()
	}
	s.advancing = false
	s.cond.Broadcast()
	if s.actors > 0 && s.runnable == 0 && s.publishing == 0 && s.live == 0 {
		msg := fmt.Sprintf("simtime: deadlock: %d goroutine(s) parked with no pending events at %s",
			s.actors, s.now.Format(time.RFC3339Nano))
		s.mu.Unlock() // release before panicking so recovery does not poison the clock
		panic(msg)
	}
}

// Wait implements Clock. It drives the event loop when no participating
// goroutines exist, and otherwise blocks until all of them have returned
// and the event queue is drained of live events.
func (s *Sim) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if !s.advancing && s.runnable == 0 && s.publishing == 0 && s.live > 0 {
			s.maybeAdvanceLocked()
			continue
		}
		if s.actors == 0 && s.live == 0 && !s.advancing {
			return
		}
		s.cond.Wait()
	}
}

// RunUntil drives the event loop (which must have no participating
// goroutines) until virtual time reaches t or no live events remain.
// It is a convenience for pure-DES experiment models.
func (s *Sim) RunUntil(t time.Time) {
	for {
		s.mu.Lock()
		if s.actors != 0 {
			s.mu.Unlock()
			panic("simtime: RunUntil requires a goroutine-free simulation")
		}
		ev := s.peekLocked()
		if ev == nil || ev.at.After(t) {
			if s.now.Before(t) && (ev == nil || ev.at.After(t)) {
				s.now = t
			}
			s.mu.Unlock()
			return
		}
		ev = s.popLocked()
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.fired++
		fn := ev.fn
		s.mu.Unlock()
		fn()
	}
}

// peekLocked returns the earliest live event without removing it.
func (s *Sim) peekLocked() *event {
	for s.events.Len() > 0 {
		if s.events[0].stopped {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0]
	}
	return nil
}
