package simtime

import (
	"testing"
	"time"
)

func TestInterrupterFullSleep(t *testing.T) {
	clk := NewSim(epoch)
	var it Interrupter
	var completed bool
	clk.Go(func() { completed = it.Sleep(clk, 5*time.Second) })
	clk.Wait()
	if !completed {
		t.Fatal("uninterrupted sleep reported cancellation")
	}
	if !clk.Now().Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("woke at %v", clk.Now())
	}
}

func TestInterrupterCancelCutsSleepShort(t *testing.T) {
	clk := NewSim(epoch)
	var it Interrupter
	var completed bool
	var at time.Time
	clk.Go(func() {
		completed = it.Sleep(clk, time.Hour)
		at = clk.Now()
	})
	clk.AfterFunc(3*time.Second, it.Cancel)
	clk.Wait()
	if completed {
		t.Fatal("cancelled sleep reported completion")
	}
	if !at.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("woke at %v, want epoch+3s", at)
	}
}

func TestInterrupterCancelBeforeSleep(t *testing.T) {
	clk := NewSim(epoch)
	var it Interrupter
	it.Cancel()
	var completed bool
	clk.Go(func() { completed = it.Sleep(clk, time.Hour) })
	clk.Wait()
	if completed {
		t.Fatal("sleep after cancel completed")
	}
	if !clk.Now().Equal(epoch) {
		t.Fatal("pre-cancelled sleep consumed virtual time")
	}
}

func TestInterrupterMultipleSleepers(t *testing.T) {
	clk := NewSim(epoch)
	var it Interrupter
	results := make([]bool, 5)
	for k := 0; k < 5; k++ {
		k := k
		clk.Go(func() { results[k] = it.Sleep(clk, time.Hour) })
	}
	clk.AfterFunc(time.Second, it.Cancel)
	clk.Wait()
	for k, r := range results {
		if r {
			t.Fatalf("sleeper %d not interrupted", k)
		}
	}
}
