package simtime

import "fmt"

// Wheel is a hierarchical timing wheel for integer-keyed bulk events: a
// fixed hierarchy of slot rings indexed by an int64 tick counter, holding
// int32 ids (typically indices into struct-of-arrays state). It is the
// scheduling core of the fleet simulation harness (internal/fleet), where
// one process tracks the next deadline of 10⁶ simulated nodes and the
// event heap behind Sim.AfterFunc — one allocation and O(log n) heap
// moves per timer — would dominate the run.
//
// Compared with the Sim event heap, the wheel trades generality for bulk
// throughput:
//
//   - events are (tick, id) pairs, not closures: no per-event allocation
//     beyond slot array growth, and slot arrays are recycled;
//   - insertion and cancellation are O(1); cancellation is lazy — callers
//     skip a fired (tick, id) whose id no longer expects that tick;
//   - all events due at one tick are delivered as a single batch, which
//     is what lets a caller turn one Sim event into thousands of node
//     transitions.
//
// A Wheel is not a Clock and is not safe for concurrent use: it is meant
// to be driven from a single goroutine or from Sim event callbacks, with
// one pending Sim timer armed for the wheel's next non-empty tick.
type Wheel struct {
	// now is the cursor: every tick ≤ now has been fired or verified
	// empty. Next may advance it across verified-empty gaps.
	now int64
	// win is the level-0 window id (now >> wheelBits) whose ticks are
	// currently resident in level 0.
	win   int64
	count int
	// resident counts items per level, so seeks skip whole empty
	// windows instead of probing 256 slots each.
	resident [wheelLevels]int
	slots    [wheelLevels][wheelSlots][]wheelItem
	fire     []int32 // reused batch buffer handed to AdvanceTo callbacks
}

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// WheelHorizon is the farthest a tick may be scheduled beyond the
	// cursor: the span of the top level ring.
	WheelHorizon = int64(1) << (wheelBits * wheelLevels)
)

type wheelItem struct {
	tick int64
	id   int32
}

// NewWheel returns a wheel whose cursor starts at start: the first
// schedulable tick is start+1.
func NewWheel(start int64) *Wheel {
	return &Wheel{now: start, win: start >> wheelBits}
}

// Now returns the cursor tick: all ticks ≤ Now have fired or were
// verified empty.
func (w *Wheel) Now() int64 { return w.now }

// Len reports the number of scheduled items, including lazily-cancelled
// ones the caller will skip at fire time.
func (w *Wheel) Len() int { return w.count }

// Schedule books id to fire at tick. A tick at or before the cursor is
// clamped to the next tick (it fires on the next advance). Scheduling
// past the wheel horizon panics: the fleet models bound their draws to
// the simulation end, and silent aliasing would fire events early.
func (w *Wheel) Schedule(tick int64, id int32) {
	if tick <= w.now {
		tick = w.now + 1
	}
	if tick-w.now >= WheelHorizon {
		panic(fmt.Sprintf("simtime: wheel schedule %d exceeds horizon (cursor %d)", tick, w.now))
	}
	w.place(wheelItem{tick: tick, id: id})
	w.count++
}

// place inserts it into the shallowest level whose ring spans the delta
// to the cursor. Slot index is the tick's level-l digit, so the item
// cascades down one level each time its window becomes current. The span
// check is inclusive (delta ≤ ring span): an item exactly one span away
// still lands one level down, where its slot's previous ring pass is
// already behind the cursor — an exclusive check would re-insert a
// boundary item into the level-l slot being drained, deferring it a full
// ring revolution.
func (w *Wheel) place(it wheelItem) {
	delta := it.tick - w.now
	var l int
	for l = 0; l < wheelLevels-1; l++ {
		if delta <= int64(1)<<(wheelBits*(l+1)) {
			break
		}
	}
	slot := (it.tick >> (wheelBits * uint(l))) & wheelMask
	w.slots[l][slot] = append(w.slots[l][slot], it)
	w.resident[l]++
}

// rollWindow moves the level-0 window forward one step, cascading every
// higher-level slot whose window starts at the new boundary. Cascaded
// items re-place at lower levels relative to the advanced cursor.
func (w *Wheel) rollWindow() {
	w.win++
	base := w.win << wheelBits
	for l := wheelLevels - 1; l >= 1; l-- {
		if base&(int64(1)<<(wheelBits*uint(l))-1) != 0 {
			continue // not a level-l window boundary
		}
		slot := &w.slots[l][(base>>(wheelBits*uint(l)))&wheelMask]
		items := *slot
		*slot = (*slot)[:0]
		w.resident[l] -= len(items)
		for _, it := range items {
			w.place(it)
		}
	}
}

// Next returns the earliest pending tick without firing it, advancing
// the cursor across verified-empty ticks (and cascading windows) along
// the way. It reports false when the wheel is empty.
func (w *Wheel) Next() (int64, bool) {
	if w.count == 0 {
		return 0, false
	}
	for {
		winEnd := (w.win+1)<<wheelBits - 1
		if w.resident[0] > 0 {
			for t := w.now + 1; t <= winEnd; t++ {
				if len(w.slots[0][t&wheelMask]) > 0 {
					w.now = t - 1
					return t, true
				}
				w.now = t
			}
		} else {
			w.now = winEnd
		}
		w.rollWindow()
	}
}

// AdvanceTo fires every pending batch with tick ≤ limit, in tick order.
// The cursor ends at limit, or just before the next pending tick when
// the seek verified a longer gap empty. The ids slice passed to fire is
// reused across calls: consume it before returning. fire may Schedule
// new items, including at ticks ≤ limit (they fire in the same advance).
func (w *Wheel) AdvanceTo(limit int64, fire func(tick int64, ids []int32)) {
	for {
		t, ok := w.Next()
		if !ok || t > limit {
			break
		}
		slot := &w.slots[0][t&wheelMask]
		buf := w.fire[:0]
		for _, it := range *slot {
			if it.tick != t {
				panic(fmt.Sprintf("simtime: wheel slot holds tick %d while firing %d", it.tick, t))
			}
			buf = append(buf, it.id)
		}
		*slot = (*slot)[:0]
		w.count -= len(buf)
		w.resident[0] -= len(buf)
		w.now = t
		w.fire = buf
		fire(t, buf)
	}
	if w.now < limit {
		w.now = limit
		w.win = limit >> wheelBits
	}
}
