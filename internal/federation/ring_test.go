package federation

import (
	"math/rand"
	"testing"
)

func TestRingDeterminismAndTotalCoverage(t *testing.T) {
	r1, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(8, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		id := rng.Uint64()
		a, b := r1.Owner(id), r2.Owner(id)
		if a != b {
			t.Fatalf("non-deterministic owner for %d: %d vs %d", id, a, b)
		}
		if a < 0 || int(a) >= 8 {
			t.Fatalf("owner %d out of range", a)
		}
	}
}

// TestRingBalance: with DefaultVNodes points per shard, ownership skew
// (max shard share over the uniform share) stays modest. The bound here
// is deliberately loose — consistent hashing with 64 vnodes typically
// lands near 1.2 — so the test fails only on a genuinely broken hash.
func TestRingBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 16} {
		r, err := NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		ids := make([]uint64, 200000)
		for i := range ids {
			ids[i] = rng.Uint64()
		}
		counts := r.OwnershipCounts(ids)
		if len(counts) != shards {
			t.Fatalf("%d shards: ownership table has %d entries", shards, len(counts))
		}
		uniform := float64(len(ids)) / float64(shards)
		for s, c := range counts {
			if skew := float64(c) / uniform; skew > 1.6 || skew < 0.4 {
				t.Fatalf("%d shards: shard %d owns %d nodes (skew %.2f)", shards, s, c, skew)
			}
		}
	}
}

// TestRingMinimalMovement: removing one shard must only reassign the
// nodes that shard owned; everything else keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	r, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ids := make([]uint64, 50000)
	before := make([]ShardID, len(ids))
	for i := range ids {
		ids[i] = rng.Uint64()
		before[i] = r.Owner(ids[i])
	}
	const victim = ShardID(3)
	r.Remove(victim)
	for i, id := range ids {
		after := r.Owner(id)
		if after == victim {
			t.Fatalf("node %d still owned by removed shard", id)
		}
		if before[i] != victim && after != before[i] {
			t.Fatalf("node %d moved %d→%d though its owner survived", id, before[i], after)
		}
	}
	// Re-adding restores the original assignment exactly.
	r.Add(victim)
	for i, id := range ids {
		if got := r.Owner(id); got != before[i] {
			t.Fatalf("node %d owner %d after re-add, want %d", id, got, before[i])
		}
	}
}

func TestRingSuccessorAndNeighbors(t *testing.T) {
	r, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := ShardID(0); s < 5; s++ {
		succ := r.Successor(s)
		if succ == s || succ < 0 || int(succ) >= 5 {
			t.Fatalf("successor of %d = %d", s, succ)
		}
		ns := r.Neighbors(s, 4)
		if len(ns) != 4 {
			t.Fatalf("neighbors of %d = %v, want 4 distinct", s, ns)
		}
		if ns[0] != succ {
			t.Fatalf("first neighbor %d != successor %d", ns[0], succ)
		}
		seen := map[ShardID]struct{}{s: {}}
		for _, n := range ns {
			if _, dup := seen[n]; dup {
				t.Fatalf("neighbors of %d contain duplicate/self: %v", s, ns)
			}
			seen[n] = struct{}{}
		}
	}
	// Degenerate cases.
	if got := r.Successor(99); got != -1 {
		t.Fatalf("successor of unknown shard = %d, want -1", got)
	}
	single, _ := NewRing(1, 4)
	if got := single.Successor(0); got != 0 {
		t.Fatalf("sole shard's successor = %d, want itself", got)
	}
	if ns := r.Neighbors(0, 0); ns != nil {
		t.Fatalf("Neighbors k=0 = %v", ns)
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestRingShardsEnumerates(t *testing.T) {
	r, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Shards()
	if len(got) != 3 {
		t.Fatalf("Shards() = %v, want 3 entries", got)
	}
	seen := map[ShardID]bool{}
	for _, s := range got {
		seen[s] = true
	}
	for s := ShardID(0); s < 3; s++ {
		if !seen[s] {
			t.Fatalf("Shards() = %v missing %d", got, s)
		}
	}
}
