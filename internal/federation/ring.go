// Package federation shards the OddCI control plane: N coordinator
// shards each own a consistent-hash slice of the PNA population, a
// federated provider splits instance targets across shards in
// proportion to live idle capacity, and journal-backed failover lets a
// ring successor re-adopt a failed shard's sessions without re-airing
// wakeups. This generalizes §3.1's single Provider/Controller pair to a
// control plane that scales horizontally with the device population.
package federation

import (
	"fmt"
	"sort"
)

// ShardID identifies one coordinator shard in the federation.
type ShardID int

// DefaultVNodes is the per-shard virtual-node count. 64 points per
// shard keeps the maximum/mean ownership skew under ~1.25 for up to a
// few dozen shards — tight enough that a proportional split by idle
// population stays close to a split by ring ownership.
const DefaultVNodes = 64

// Ring is a consistent-hash ring mapping node identities to shards.
// Each shard contributes VNodes points; a node is owned by the shard
// whose point is the first at or clockwise of the node's own hash.
// The zero value is not usable; construct with NewRing.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards map[ShardID]struct{}
}

type ringPoint struct {
	hash  uint64
	shard ShardID
}

// mix64 is the SplitMix64-style finalizer used across the repo (node
// striping, fleet PRNG): cheap, well-distributed bits.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointHash derives the ring position of one virtual node. Shard and
// vnode indices are folded into a single word before finalizing so
// adjacent shards do not produce correlated point sequences.
func pointHash(s ShardID, vnode int) uint64 {
	return mix64(uint64(s)*0x9e3779b97f4a7c15 + uint64(vnode) + 1)
}

// NewRing builds a ring over shards 0..shards-1 with vnodes points
// each (DefaultVNodes when vnodes <= 0).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("federation: ring needs at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, shards: make(map[ShardID]struct{})}
	for s := 0; s < shards; s++ {
		r.addLocked(ShardID(s))
	}
	return r, nil
}

func (r *Ring) addLocked(s ShardID) {
	if _, ok := r.shards[s]; ok {
		return
	}
	r.shards[s] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
}

// Add inserts a shard's points into the ring. Only the keys that land
// between the new points and their predecessors move — the classic
// consistent-hashing minimal-disruption property.
func (r *Ring) Add(s ShardID) { r.addLocked(s) }

// Remove deletes a shard's points. Nodes it owned fall to the next
// point clockwise, i.e. to the ring successors.
func (r *Ring) Remove(s ShardID) {
	if _, ok := r.shards[s]; !ok {
		return
	}
	delete(r.shards, s)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != s {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the member shard ids in ascending order.
func (r *Ring) Shards() []ShardID {
	out := make([]ShardID, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Size reports the number of member shards.
func (r *Ring) Size() int { return len(r.shards) }

// Owner maps a node identity to its owning shard: the shard of the
// first ring point at or clockwise of mix64(nodeID).
func (r *Ring) Owner(nodeID uint64) ShardID {
	h := mix64(nodeID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// Successor returns the first distinct shard clockwise of s's lowest
// ring point — the deterministic adopter when s fails. Returns s itself
// if it is the only member, and -1 if s is not on the ring.
func (r *Ring) Successor(s ShardID) ShardID {
	if _, ok := r.shards[s]; !ok {
		return -1
	}
	if len(r.shards) == 1 {
		return s
	}
	// Walk clockwise from s's first point until another shard appears.
	start := -1
	for i, p := range r.points {
		if p.shard == s {
			start = i
			break
		}
	}
	for off := 1; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if p.shard != s {
			return p.shard
		}
	}
	return s
}

// Neighbors returns up to k distinct shards encountered clockwise of
// s's lowest point, excluding s — the borrowing order for deficit
// rebalancing.
func (r *Ring) Neighbors(s ShardID, k int) []ShardID {
	if k <= 0 {
		return nil
	}
	if _, ok := r.shards[s]; !ok {
		return nil
	}
	start := -1
	for i, p := range r.points {
		if p.shard == s {
			start = i
			break
		}
	}
	seen := map[ShardID]struct{}{s: {}}
	var out []ShardID
	for off := 1; off < len(r.points) && len(out) < k; off++ {
		p := r.points[(start+off)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, p.shard)
	}
	return out
}

// OwnershipCounts tallies how many of the given node ids each shard
// owns — the skew diagnostic used by the federation sweep.
func (r *Ring) OwnershipCounts(nodeIDs []uint64) map[ShardID]int {
	out := make(map[ShardID]int, len(r.shards))
	for s := range r.shards {
		out[s] = 0
	}
	for _, id := range nodeIDs {
		out[r.Owner(id)]++
	}
	return out
}
