package federation

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/journal"
	"oddci/internal/middleware"
	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// DriverConfig configures a federation convergence run: real journal-
// backed Controllers, one per shard, driven against a simulated PNA
// population on a virtual clock. This is the machinery behind the
// `oddci-bench -sweep federation` gate.
type DriverConfig struct {
	Shards      int
	PerShardPop int // simulated PNAs per shard
	TotalTarget int // aggregate instance size requested from the federation

	// ImageBytes and Beta parameterize the node-side load model: a
	// recruited PNA completes its image W ~ U(C, 2C) seconds after the
	// wakeup, C = ImageBytes·8/Beta — the random-phase carousel model
	// behind the paper's W = 1.5·I/β.
	ImageBytes int
	Beta       float64

	Seed    int64
	BaseDir string // per-shard journal state dirs live under here
	Obs     *obs.Registry

	// HeartbeatEvery is the per-shard heartbeat sweep period (default
	// 45s — inside the controller's 3-minute staleness window).
	HeartbeatEvery time.Duration

	// Timeout bounds the simulated run (default 30 minutes).
	Timeout time.Duration

	// KillShard, when >= 0, crashes that shard's controller once the
	// aggregate fill reaches KillAtFrac of the target, then fails it
	// over RecoverAfter later via the journal rebuild path.
	KillShard    int
	KillAtFrac   float64
	RecoverAfter time.Duration

	// StarveShard0 powers off shard 0's entire remaining idle pool and
	// half of its recruits right after the wakeup, leaving a deficit
	// that only cross-shard rebalancing can close.
	StarveShard0 bool
	// RebalanceEvery enables periodic Rebalance passes (0 = never).
	RebalanceEvery time.Duration
}

// DriverResult reports a run's outcome.
type DriverResult struct {
	Converged       bool
	ConvergeSeconds float64 // sim seconds from create to busy >= target
	Wakeups         int     // wakeup broadcasts observed across all shards
	DuplicateWakeup int     // wakeups re-airing an already-seen sequence
	FailedOver      bool
	ReadoptedBusy   int // busy members on the killed shard surviving recovery
	MovedTarget     int // target units shifted by rebalancing
	FinalBusy       int
	Target          int
}

const (
	nodeIdle uint8 = iota
	nodeLoading
	nodeBusy
	nodeOff
)

type driverShard struct {
	id    ShardID
	ids   []uint64
	state []uint8
	inst  instance.ID // instance a loading/busy node belongs to
	store *journal.Store
	// maxSeq tracks the highest wakeup sequence seen per instance part
	// on this shard — a repeat is a duplicate wakeup.
	maxSeq map[instance.ID]uint32
}

type driver struct {
	cfg DriverConfig
	clk *simtime.Sim
	fed *Federation
	rng *rand.Rand

	mu     sync.Mutex
	shards []*driverShard
	res    DriverResult
	done   bool

	// wakeQ holds OnWakeup events; the hook runs with the Controller
	// lock held, so recruitment is deferred to a zero-delay timer.
	wakeQ []wakeEvent
}

type wakeEvent struct {
	shard ShardID
	inst  instance.ID
	seq   uint32
	prob  float64
}

// RunDriver executes one federation convergence scenario.
func RunDriver(cfg DriverConfig) (DriverResult, error) {
	if cfg.Shards <= 0 || cfg.PerShardPop <= 0 || cfg.TotalTarget <= 0 {
		return DriverResult{}, errors.New("federation: driver needs shards, population and target")
	}
	if cfg.Beta <= 0 || cfg.ImageBytes <= 0 {
		return DriverResult{}, errors.New("federation: driver needs a carousel model (ImageBytes, Beta)")
	}
	if cfg.BaseDir == "" {
		return DriverResult{}, errors.New("federation: driver needs a state dir")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 45 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Minute
	}

	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	d := &driver{cfg: cfg, clk: clk, rng: rand.New(rand.NewSource(cfg.Seed))}

	if err := d.build(); err != nil {
		return d.res, err
	}
	defer d.teardown()
	return d.run()
}

// buildShardController assembles one journal-backed started Controller
// over its own broadcast stack — the initial construction and the
// Failover rebuild share it (the system.RestartController recipe).
func buildShardController(clk *simtime.Sim, dir string, seed int64,
	onWakeup func(instance.ID, uint32, float64)) (*controller.Controller, *journal.Store, error) {
	store, err := journal.Open(dir, journal.Options{NoSync: true, Clock: clk})
	if err != nil {
		return nil, nil, err
	}
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng, Journal: store,
		OnWakeup: onWakeup,
	})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	if err := ctrl.Start(); err != nil {
		store.Close()
		return nil, nil, err
	}
	return ctrl, store, nil
}

// build assembles the shards, seeds their populations, and wires the
// federation.
func (d *driver) build() error {
	cfg := d.cfg
	shards := make([]Shard, cfg.Shards)
	d.shards = make([]*driverShard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		i := i
		dir := filepath.Join(cfg.BaseDir, fmt.Sprintf("shard-%03d", i))
		seed := cfg.Seed + int64(i)*7919
		ctrl, store, err := buildShardController(d.clk, dir, seed, d.onWakeup(ShardID(i)))
		if err != nil {
			return err
		}
		d.shards[i] = &driverShard{id: ShardID(i), store: store, maxSeq: make(map[instance.ID]uint32)}
		shards[i] = Shard{
			ID:   ShardID(i),
			Ctrl: ctrl,
			Rebuild: func() (*controller.Controller, error) {
				c, st, err := buildShardController(d.clk, dir, seed+104729, d.onWakeup(ShardID(i)))
				if err != nil {
					return nil, err
				}
				d.mu.Lock()
				d.shards[i].store = st
				d.mu.Unlock()
				return c, nil
			},
		}
	}
	fed, err := New(Config{Shards: shards, Obs: cfg.Obs})
	if err != nil {
		return err
	}
	d.fed = fed

	// Partition node identities over shards by ring ownership, so the
	// simulated PNAs land on exactly the coordinator their identity
	// hashes to. Stop once every shard holds PerShardPop nodes.
	want := cfg.Shards * cfg.PerShardPop
	placed := 0
	for id := uint64(1); placed < want; id++ {
		s := fed.Ring().Owner(id)
		ds := d.shards[s]
		if len(ds.ids) >= cfg.PerShardPop {
			continue
		}
		ds.ids = append(ds.ids, id)
		ds.state = append(ds.state, nodeIdle)
		placed++
	}
	return nil
}

func (d *driver) teardown() {
	d.mu.Lock()
	d.done = true
	d.mu.Unlock()
	for _, s := range d.fed.Shards() {
		if ctrl, err := d.fed.Controller(s); err == nil {
			ctrl.Stop()
		}
	}
	for _, ds := range d.shards {
		if ds.store != nil {
			ds.store.Close()
		}
	}
	d.clk.Wait()
}

// onWakeup returns the OnWakeup hook for one shard. It runs with the
// Controller lock held, so it only records the event; recruitment runs
// from a zero-delay timer.
func (d *driver) onWakeup(s ShardID) func(instance.ID, uint32, float64) {
	return func(id instance.ID, seq uint32, prob float64) {
		d.mu.Lock()
		if d.done {
			d.mu.Unlock()
			return
		}
		d.res.Wakeups++
		ds := d.shards[s]
		if prev, ok := ds.maxSeq[id]; ok && seq <= prev {
			d.res.DuplicateWakeup++
		} else {
			ds.maxSeq[id] = seq
		}
		d.wakeQ = append(d.wakeQ, wakeEvent{shard: s, inst: id, seq: seq, prob: prob})
		d.mu.Unlock()
		d.clk.AfterFunc(0, d.drainWakeups)
	}
}

// drainWakeups runs deferred recruitment: Bernoulli(prob) over the
// shard's idle nodes; recruits complete their image load W ~ U(C, 2C)
// later and report busy.
func (d *driver) drainWakeups() {
	d.mu.Lock()
	q := d.wakeQ
	d.wakeQ = nil
	if d.done {
		d.mu.Unlock()
		return
	}
	c := float64(d.cfg.ImageBytes) * 8 / d.cfg.Beta
	var joins []driverJoin
	for _, ev := range q {
		ds := d.shards[ev.shard]
		for n := range ds.ids {
			if ds.state[n] != nodeIdle {
				continue
			}
			if d.rng.Float64() >= ev.prob {
				continue
			}
			ds.state[n] = nodeLoading
			ds.inst = ev.inst
			w := time.Duration((c + c*d.rng.Float64()) * float64(time.Second))
			joins = append(joins, driverJoin{shard: ev.shard, node: n, after: w})
		}
		if d.cfg.StarveShard0 && ev.shard == 0 {
			joins = d.starveShard0Locked(joins)
		}
	}
	d.mu.Unlock()
	for _, j := range joins {
		j := j
		d.clk.AfterFunc(j.after, func() { d.joinNode(j.shard, j.node) })
	}
}

type driverJoin struct {
	shard ShardID
	node  int
	after time.Duration
}

// starveShard0Locked powers off shard 0's remaining idle pool and every
// other recruit — the uncoverable-deficit scenario. Caller holds d.mu.
func (d *driver) starveShard0Locked(joins []driverJoin) []driverJoin {
	ds := d.shards[0]
	for n := range ds.ids {
		if ds.state[n] == nodeIdle {
			ds.state[n] = nodeOff
		}
	}
	kept := joins[:0]
	odd := false
	for _, j := range joins {
		if j.shard == 0 {
			odd = !odd
			if odd {
				ds.state[j.node] = nodeOff
				continue
			}
		}
		kept = append(kept, j)
	}
	return kept
}

// joinNode completes one recruit's image load: it turns busy and
// reports in immediately.
func (d *driver) joinNode(s ShardID, n int) {
	d.mu.Lock()
	if d.done || d.shards[s].state[n] != nodeLoading {
		d.mu.Unlock()
		return
	}
	d.shards[s].state[n] = nodeBusy
	id := d.shards[s].ids[n]
	inst := d.shards[s].inst
	d.mu.Unlock()
	d.heartbeat(s, n, id, control.StateBusy, inst)
}

// heartbeat reports one node's state to its home shard and applies the
// reply (reset commands return the node to idle). Heartbeats to a down
// shard are dropped — consolidation stalls until failover.
func (d *driver) heartbeat(s ShardID, n int, id uint64, st control.NodeState, inst instance.ID) {
	_, ctrl, err := d.fed.Route(id)
	if err != nil {
		return
	}
	hb := &control.Heartbeat{
		NodeID: id, State: st, InstanceID: inst,
		Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		SentAt:  d.clk.Now(),
	}
	reply := ctrl.HandleHeartbeat(hb)
	if reply != nil && reply.Command == control.CmdReset {
		d.mu.Lock()
		if d.shards[s].state[n] == nodeBusy {
			d.shards[s].state[n] = nodeIdle
		}
		d.mu.Unlock()
	}
}

// sweep sends one heartbeat round for every live node on a shard.
func (d *driver) sweep(s ShardID) {
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		return
	}
	ds := d.shards[s]
	type hb struct {
		n    int
		id   uint64
		st   control.NodeState
		inst instance.ID
	}
	batch := make([]hb, 0, len(ds.ids))
	for n, id := range ds.ids {
		switch ds.state[n] {
		case nodeIdle:
			batch = append(batch, hb{n: n, id: id, st: control.StateIdle})
		case nodeBusy:
			batch = append(batch, hb{n: n, id: id, st: control.StateBusy, inst: ds.inst})
		}
	}
	d.mu.Unlock()
	for _, b := range batch {
		d.heartbeat(s, b.n, b.id, b.st, b.inst)
	}
}

// run seeds the populations, creates the instance, and steps virtual
// time until convergence (aggregate busy >= target) or timeout.
func (d *driver) run() (DriverResult, error) {
	cfg := d.cfg
	// Initial idle round so Create sees the populations, then periodic
	// sweeps keep them inside the staleness window.
	for i := range d.shards {
		d.sweep(ShardID(i))
	}
	for i := range d.shards {
		s := ShardID(i)
		var tick func()
		tick = func() {
			d.sweep(s)
			d.mu.Lock()
			stop := d.done
			d.mu.Unlock()
			if !stop {
				d.clk.AfterFunc(cfg.HeartbeatEvery, tick)
			}
		}
		d.clk.AfterFunc(cfg.HeartbeatEvery, tick)
	}

	img := &appimage.Image{
		Name: "fed-bench", EntryPoint: "run",
		Payload: []byte("federation-driver"),
	}
	start := d.clk.Now()
	// InitialProbability 0 lets every shard size its own wakeup
	// probability from its idle population (target·safety/idle).
	inst, err := d.fed.Create(controller.InstanceSpec{
		Image: img, Target: cfg.TotalTarget, InitialProbability: 0,
	})
	if err != nil {
		return d.res, err
	}
	d.res.Target = cfg.TotalTarget

	params := analytic.Params{ImageBits: float64(cfg.ImageBytes) * 8, Beta: cfg.Beta}
	killed, recovered := false, false
	var recoverAt time.Time
	lastRebalance := start

	step := time.Second
	for d.clk.Now().Sub(start) < cfg.Timeout {
		d.clk.RunUntil(d.clk.Now().Add(step))
		now := d.clk.Now()

		if cfg.RebalanceEvery > 0 && now.Sub(lastRebalance) >= cfg.RebalanceEvery {
			lastRebalance = now
			moved, err := d.fed.Rebalance(params, now.Sub(start).Seconds(), 0)
			if err != nil {
				return d.res, err
			}
			d.res.MovedTarget += moved
		}

		agg, aggErr := inst.Status()
		if killed && !recovered && now.Sub(recoverAt) >= 0 {
			if _, err := d.fed.Failover(ShardID(cfg.KillShard)); err != nil {
				return d.res, err
			}
			recovered = true
			d.res.FailedOver = true
			// The next sweep re-adopts survivors; count the busy nodes
			// that outlived the outage.
			d.sweep(ShardID(cfg.KillShard))
			d.mu.Lock()
			for n := range d.shards[cfg.KillShard].ids {
				if d.shards[cfg.KillShard].state[n] == nodeBusy {
					d.res.ReadoptedBusy++
				}
			}
			d.mu.Unlock()
			continue
		}
		if aggErr != nil {
			continue // a shard is down; keep stepping toward failover
		}

		if cfg.KillShard >= 0 && !killed &&
			float64(agg.Busy) >= cfg.KillAtFrac*float64(cfg.TotalTarget) {
			killed = true
			recoverAt = now.Add(cfg.RecoverAfter)
			victim := ShardID(cfg.KillShard)
			ctrl, err := d.fed.Controller(victim)
			if err != nil {
				return d.res, err
			}
			if err := d.fed.Kill(victim); err != nil {
				return d.res, err
			}
			ctrl.Stop()
			d.mu.Lock()
			if st := d.shards[victim].store; st != nil {
				st.Close()
				d.shards[victim].store = nil
			}
			d.mu.Unlock()
			continue
		}

		if agg.Busy >= agg.Target && agg.Target > 0 && (cfg.KillShard < 0 || recovered) {
			d.res.Converged = true
			d.res.ConvergeSeconds = now.Sub(start).Seconds()
			d.res.FinalBusy = agg.Busy
			return d.res, nil
		}
	}
	if agg, err := inst.Status(); err == nil {
		d.res.FinalBusy = agg.Busy
	}
	return d.res, nil
}
