package federation

import (
	"testing"
	"time"
)

func TestDriverConverges(t *testing.T) {
	res, err := RunDriver(DriverConfig{
		Shards: 2, PerShardPop: 256, TotalTarget: 64,
		ImageBytes: 1 << 20, Beta: 1e6, // C ≈ 8.4 s
		Seed: 1, BaseDir: t.TempDir(), KillShard: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// W ∈ [C, 2C]: convergence cannot beat one carousel cycle and
	// should land well inside a few cycles.
	c := float64(1<<20) * 8 / 1e6
	if res.ConvergeSeconds < c || res.ConvergeSeconds > 6*c {
		t.Fatalf("convergence %.1fs outside [C, 6C] (C=%.1fs)", res.ConvergeSeconds, c)
	}
	if res.DuplicateWakeup != 0 {
		t.Fatalf("duplicate wakeups: %+v", res)
	}
	if res.Wakeups < 2 {
		t.Fatalf("expected at least one wakeup per shard: %+v", res)
	}
}

func TestDriverFailover(t *testing.T) {
	res, err := RunDriver(DriverConfig{
		Shards: 3, PerShardPop: 256, TotalTarget: 96,
		ImageBytes: 1 << 20, Beta: 1e6,
		Seed: 2, BaseDir: t.TempDir(),
		KillShard: 1, KillAtFrac: 0.5, RecoverAfter: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatalf("kill scenario never failed over: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("did not reconverge after failover: %+v", res)
	}
	if res.DuplicateWakeup != 0 {
		t.Fatalf("failover re-aired a wakeup: %+v", res)
	}
	if res.ReadoptedBusy == 0 {
		t.Fatalf("no busy members survived the failover: %+v", res)
	}
}

func TestDriverRebalance(t *testing.T) {
	res, err := RunDriver(DriverConfig{
		Shards: 3, PerShardPop: 256, TotalTarget: 96,
		ImageBytes: 1 << 20, Beta: 1e6,
		Seed: 3, BaseDir: t.TempDir(), KillShard: -1,
		StarveShard0: true, RebalanceEvery: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("starved federation did not converge: %+v", res)
	}
	if res.MovedTarget == 0 {
		t.Fatalf("convergence without rebalancing a starved shard: %+v", res)
	}
}
