package federation

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"oddci/internal/analytic"
	"oddci/internal/appimage"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/core/provider"
	"oddci/internal/obs"
)

var (
	// ErrShardDown is returned when an operation needs a shard whose
	// controller is currently failed and not yet rebuilt.
	ErrShardDown = errors.New("federation: shard down")
	// ErrUnknownShard is returned for shard ids outside the federation.
	ErrUnknownShard = errors.New("federation: unknown shard")
)

// DefaultRebalanceLag is the fraction of the analytically expected fill
// a shard may fall behind before Rebalance moves population to ring
// neighbors. 0.25 tolerates ordinary carousel-phase variance while
// catching shards that genuinely cannot recruit.
const DefaultRebalanceLag = 0.25

// Shard declares one coordinator shard: a started Controller plus a
// Rebuild closure that reconstructs it from its journal after a crash
// (journal.Open → controller.New → Start, the system.RestartController
// recipe). Rebuild may be nil for shards that never fail over.
type Shard struct {
	ID      ShardID
	Ctrl    *controller.Controller
	Rebuild func() (*controller.Controller, error)
}

// Config configures a Federation.
type Config struct {
	Shards []Shard
	// VNodes is the per-shard virtual node count (DefaultVNodes if 0).
	VNodes int
	// RebalanceLag overrides DefaultRebalanceLag when > 0.
	RebalanceLag float64
	// Obs receives federation metrics when non-nil.
	Obs *obs.Registry
}

type shardState struct {
	id      ShardID
	ctrl    *controller.Controller
	rebuild func() (*controller.Controller, error)
	down    bool
}

// Federation is the sharded control plane: it owns the consistent-hash
// ring, routes nodes to their home shard, splits instance targets over
// live idle capacity, rebalances deficit shards against the analytic
// ramp, and fails shards over onto journal-rebuilt controllers.
type Federation struct {
	mu     sync.Mutex
	ring   *Ring
	shards map[ShardID]*shardState
	order  []ShardID // ascending, fixed at construction
	insts  map[uint64]*FedInstance
	nextID uint64
	lag    float64

	rebalances  *obs.Counter
	movedTarget *obs.Counter
	failovers   *obs.Counter
	splitSkew   *obs.Histogram
}

// New builds a Federation over the given shards.
func New(cfg Config) (*Federation, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("federation: needs at least one shard")
	}
	f := &Federation{
		shards: make(map[ShardID]*shardState, len(cfg.Shards)),
		insts:  make(map[uint64]*FedInstance),
		lag:    cfg.RebalanceLag,
	}
	if f.lag <= 0 {
		f.lag = DefaultRebalanceLag
	}
	ring, err := NewRing(1, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	ring.Remove(0)
	for _, s := range cfg.Shards {
		if s.Ctrl == nil {
			return nil, fmt.Errorf("federation: shard %d has no controller", s.ID)
		}
		if _, dup := f.shards[s.ID]; dup {
			return nil, fmt.Errorf("federation: duplicate shard id %d", s.ID)
		}
		f.shards[s.ID] = &shardState{id: s.ID, ctrl: s.Ctrl, rebuild: s.Rebuild}
		f.order = append(f.order, s.ID)
		ring.Add(s.ID)
	}
	sort.Slice(f.order, func(a, b int) bool { return f.order[a] < f.order[b] })
	f.ring = ring
	if cfg.Obs != nil {
		f.instrument(cfg.Obs)
	}
	return f, nil
}

func (f *Federation) instrument(reg *obs.Registry) {
	f.rebalances = reg.Counter("oddci_federation_rebalances_total",
		"Cross-shard rebalance passes that moved population.")
	f.movedTarget = reg.Counter("oddci_federation_rebalance_moved_target_total",
		"Target units moved between shards by rebalancing.")
	f.failovers = reg.Counter("oddci_federation_failovers_total",
		"Shard controllers rebuilt from their journal after a failure.")
	f.splitSkew = reg.Histogram("oddci_federation_split_skew",
		"Max/mean ratio of per-shard shares at instance create.",
		[]float64{1.0, 1.05, 1.1, 1.25, 1.5, 2, 4})
	// The registry keys metrics by plain name (no label support), so
	// per-shard population gauges get the shard id baked into the name.
	for _, id := range f.order {
		id := id
		reg.GaugeFunc(fmt.Sprintf("oddci_federation_shard_%d_idle", id),
			fmt.Sprintf("Idle PNAs reported by shard %d's controller.", id),
			func() float64 {
				f.mu.Lock()
				st := f.shards[id]
				down, ctrl := st.down, st.ctrl
				f.mu.Unlock()
				if down {
					return 0
				}
				idle, _ := ctrl.Population()
				return float64(idle)
			})
		reg.GaugeFunc(fmt.Sprintf("oddci_federation_shard_%d_busy", id),
			fmt.Sprintf("Busy PNAs reported by shard %d's controller.", id),
			func() float64 {
				f.mu.Lock()
				st := f.shards[id]
				down, ctrl := st.down, st.ctrl
				f.mu.Unlock()
				if down {
					return 0
				}
				_, busy := ctrl.Population()
				return float64(busy)
			})
	}
}

// Ring exposes the federation's hash ring (read-only use).
func (f *Federation) Ring() *Ring { return f.ring }

// Shards returns the shard ids in ascending order.
func (f *Federation) Shards() []ShardID {
	out := make([]ShardID, len(f.order))
	copy(out, f.order)
	return out
}

// Controller returns the current controller serving shard s.
func (f *Federation) Controller(s ShardID) (*controller.Controller, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.shards[s]
	if !ok {
		return nil, ErrUnknownShard
	}
	if st.down {
		return nil, ErrShardDown
	}
	return st.ctrl, nil
}

// Route maps a node identity to its home shard and that shard's
// current controller — the PNA-facing entry point (heartbeats, task
// traffic). During an outage it returns ErrShardDown: the broadcast
// plane keeps running, but consolidation for that slice stalls until
// failover completes.
func (f *Federation) Route(nodeID uint64) (ShardID, *controller.Controller, error) {
	s := f.ring.Owner(nodeID)
	ctrl, err := f.Controller(s)
	return s, ctrl, err
}

// Kill marks a shard's controller failed. Subsequent Route/Controller
// calls return ErrShardDown until Failover rebuilds it.
func (f *Federation) Kill(s ShardID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.shards[s]
	if !ok {
		return ErrUnknownShard
	}
	st.down = true
	return nil
}

// Down reports whether shard s is currently failed.
func (f *Federation) Down(s ShardID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.shards[s]
	return ok && st.down
}

// Failover rebuilds a failed shard's controller from its journal and
// swaps it in. The returned adopter is the ring successor that would
// host the rebuilt controller in a deployed federation (telemetry; the
// replay itself is location-independent). The rebuilt controller
// replays OpCreate/OpRecompose/OpResize records, then Start() arms the
// heartbeat-grace window (adoptUntil), so surviving members are
// re-adopted from their next heartbeat and no wakeup is re-broadcast —
// zero duplicate wakeups by construction.
func (f *Federation) Failover(s ShardID) (ShardID, error) {
	f.mu.Lock()
	st, ok := f.shards[s]
	if !ok {
		f.mu.Unlock()
		return -1, ErrUnknownShard
	}
	if !st.down {
		f.mu.Unlock()
		return -1, fmt.Errorf("federation: shard %d is not down", s)
	}
	if st.rebuild == nil {
		f.mu.Unlock()
		return -1, fmt.Errorf("federation: shard %d has no rebuild path", s)
	}
	rebuild := st.rebuild
	f.mu.Unlock()

	adopter := f.liveSuccessor(s)
	ctrl, err := rebuild()
	if err != nil {
		return adopter, fmt.Errorf("federation: rebuild shard %d: %w", s, err)
	}

	f.mu.Lock()
	st.ctrl = ctrl
	st.down = false
	f.mu.Unlock()
	if f.failovers != nil {
		f.failovers.Inc()
	}
	return adopter, nil
}

// liveSuccessor walks the ring clockwise from s until a live shard.
func (f *Federation) liveSuccessor(s ShardID) ShardID {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.ring.Neighbors(s, len(f.shards)) {
		if st, ok := f.shards[n]; ok && !st.down {
			return n
		}
	}
	return s
}

// FedInstance is one logical instance spread across the federation.
// Parts are keyed by shard id and resolve their controller through the
// Federation at call time, so a failover's controller swap is
// transparent to outstanding handles (the Rebind pattern, generalized).
type FedInstance struct {
	fed  *Federation
	id   uint64
	spec controller.InstanceSpec

	mu        sync.Mutex
	parts     map[ShardID]instance.ID
	destroyed bool
}

// Create provisions one logical instance across the live shards,
// splitting the target in proportion to each shard's idle population
// (replacing the static split of the single-network Multi provider).
func (f *Federation) Create(spec controller.InstanceSpec) (*FedInstance, error) {
	if spec.Target <= 0 {
		return nil, errors.New("federation: target must be positive")
	}
	f.mu.Lock()
	live := make([]*shardState, 0, len(f.order))
	for _, id := range f.order {
		if st := f.shards[id]; !st.down {
			live = append(live, st)
		}
	}
	f.mu.Unlock()
	if len(live) == 0 {
		return nil, ErrShardDown
	}

	weights := make([]int, len(live))
	for i, st := range live {
		idle, _ := st.ctrl.Population()
		weights[i] = idle
	}
	shares := provider.Split(spec.Target, weights)
	f.observeSkew(shares)

	inst := &FedInstance{fed: f, spec: spec, parts: make(map[ShardID]instance.ID)}
	for i, share := range shares {
		if share == 0 {
			continue
		}
		sub := spec
		sub.Target = share
		id, err := live[i].ctrl.CreateInstance(sub)
		if err != nil {
			for j := 0; j < i; j++ {
				if pid, ok := inst.parts[live[j].id]; ok {
					live[j].ctrl.DestroyInstance(pid)
				}
			}
			return nil, fmt.Errorf("federation: shard %d: %w", live[i].id, err)
		}
		inst.parts[live[i].id] = id
	}
	if len(inst.parts) == 0 {
		return nil, errors.New("federation: no shard received a share")
	}

	f.mu.Lock()
	f.nextID++
	inst.id = f.nextID
	f.insts[inst.id] = inst
	f.mu.Unlock()
	return inst, nil
}

func (f *Federation) observeSkew(shares []int) {
	if f.splitSkew == nil {
		return
	}
	sum, max, n := 0, 0, 0
	for _, s := range shares {
		if s > 0 {
			sum += s
			n++
			if s > max {
				max = s
			}
		}
	}
	if n > 0 && sum > 0 {
		f.splitSkew.Observe(float64(max) * float64(n) / float64(sum))
	}
}

// Instances lists the live logical instances.
func (f *Federation) Instances() []*FedInstance {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FedInstance, 0, len(f.insts))
	for _, inst := range f.insts {
		out = append(out, inst)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Parts returns the per-shard instance ids.
func (fi *FedInstance) Parts() map[ShardID]instance.ID {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	out := make(map[ShardID]instance.ID, len(fi.parts))
	for k, v := range fi.parts {
		out[k] = v
	}
	return out
}

// Status aggregates the per-shard views. A down shard surfaces as
// ErrShardDown: its slice is unknown until failover completes.
func (fi *FedInstance) Status() (controller.InstanceStatus, error) {
	var agg controller.InstanceStatus
	for s, id := range fi.Parts() {
		ctrl, err := fi.fed.Controller(s)
		if err != nil {
			return agg, fmt.Errorf("shard %d: %w", s, err)
		}
		st, err := ctrl.Status(id)
		if err != nil {
			return agg, fmt.Errorf("shard %d: %w", s, err)
		}
		agg.Target += st.Target
		agg.Busy += st.Busy
		agg.Wakeups += st.Wakeups
		agg.Resets += st.Resets
		agg.Trimming += st.Trimming
	}
	return agg, nil
}

// Resize re-splits the new aggregate target over live shards by idle
// capacity plus current membership. Unlike the single-network Multi, a
// shard that had no part can gain one: every shard airs its own
// carousel, so new content starts airing on the shard at create time.
func (fi *FedInstance) Resize(target int) error {
	if target < 0 {
		return errors.New("federation: negative target")
	}
	fi.mu.Lock()
	if fi.destroyed {
		fi.mu.Unlock()
		return errors.New("federation: instance destroyed")
	}
	fi.mu.Unlock()

	f := fi.fed
	f.mu.Lock()
	live := make([]*shardState, 0, len(f.order))
	for _, id := range f.order {
		if st := f.shards[id]; !st.down {
			live = append(live, st)
		}
	}
	f.mu.Unlock()
	if len(live) == 0 {
		return ErrShardDown
	}

	parts := fi.Parts()
	weights := make([]int, len(live))
	for i, st := range live {
		idle, _ := st.ctrl.Population()
		weights[i] = idle
		if pid, ok := parts[st.id]; ok {
			if ps, err := st.ctrl.Status(pid); err == nil {
				weights[i] += ps.Busy
			}
		}
	}
	shares := provider.Split(target, weights)
	for i, share := range shares {
		st := live[i]
		pid, has := parts[st.id]
		switch {
		case has:
			if err := st.ctrl.Resize(pid, share); err != nil {
				return fmt.Errorf("federation: shard %d: %w", st.id, err)
			}
		case share > 0:
			sub := fi.spec
			sub.Target = share
			id, err := st.ctrl.CreateInstance(sub)
			if err != nil {
				return fmt.Errorf("federation: shard %d: %w", st.id, err)
			}
			fi.mu.Lock()
			fi.parts[st.id] = id
			fi.mu.Unlock()
		}
	}
	return nil
}

// Recompose replaces the application image on every part. The first
// failure is returned after all parts were attempted.
func (fi *FedInstance) Recompose(img *appimage.Image) error {
	fi.mu.Lock()
	if fi.destroyed {
		fi.mu.Unlock()
		return errors.New("federation: instance destroyed")
	}
	fi.spec.Image = img
	fi.mu.Unlock()
	var firstErr error
	for s, id := range fi.Parts() {
		ctrl, err := fi.fed.Controller(s)
		if err == nil {
			err = ctrl.Recompose(id, img)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("federation: shard %d: %w", s, err)
		}
	}
	return firstErr
}

// Destroy dismantles every part.
func (fi *FedInstance) Destroy() error {
	fi.mu.Lock()
	if fi.destroyed {
		fi.mu.Unlock()
		return nil
	}
	fi.destroyed = true
	fi.mu.Unlock()
	var firstErr error
	for s, id := range fi.Parts() {
		ctrl, err := fi.fed.Controller(s)
		if err == nil {
			if err = ctrl.DestroyInstance(id); errors.Is(err, controller.ErrInstanceGone) {
				err = nil
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("federation: shard %d: %w", s, err)
		}
	}
	f := fi.fed
	f.mu.Lock()
	delete(f.insts, fi.id)
	f.mu.Unlock()
	return firstErr
}

// Rebalance compares every part's fill against the analytic ramp curve
// elapsed seconds after its wakeup and moves target away from shards
// that are behind by more than the configured lag AND cannot cover the
// deficit from their own idle population. The uncoverable portion goes
// to ring neighbors with surplus idle, in clockwise order — the shard
// that will also adopt on failure borrows first, keeping movement
// local. Returns the number of target units moved.
func (f *Federation) Rebalance(p analytic.Params, elapsed, meanOn float64) (int, error) {
	expect := p.RampUpWithChurn(elapsed, meanOn)
	if expect <= 0 {
		return 0, nil // still inside the first carousel cycle; nothing is late
	}
	moved := 0
	for _, inst := range f.Instances() {
		m, err := f.rebalanceInstance(inst, expect)
		moved += m
		if err != nil {
			return moved, err
		}
	}
	if moved > 0 {
		if f.rebalances != nil {
			f.rebalances.Inc()
		}
		if f.movedTarget != nil {
			f.movedTarget.Add(int64(moved))
		}
	}
	return moved, nil
}

func (f *Federation) rebalanceInstance(inst *FedInstance, expect float64) (int, error) {
	moved := 0
	for s, id := range inst.Parts() {
		ctrl, err := f.Controller(s)
		if err != nil {
			continue // down shards are failover's problem, not rebalance's
		}
		st, err := ctrl.Status(id)
		if err != nil || st.Destroyed || st.Target == 0 {
			continue
		}
		want := int(math.Floor(expect * float64(st.Target)))
		deficit := want - st.Busy
		if want == 0 || float64(deficit) <= f.lag*float64(want) {
			continue
		}
		idle, _ := ctrl.Population()
		short := deficit - idle
		if short <= 0 {
			continue // local recruitment will close the gap
		}
		// Move the uncoverable portion to clockwise neighbors with
		// surplus idle capacity.
		for _, n := range f.ring.Neighbors(s, f.ring.Size()) {
			if short <= 0 {
				break
			}
			nctrl, err := f.Controller(n)
			if err != nil {
				continue
			}
			spareIdle, _ := nctrl.Population()
			take := short
			if take > spareIdle {
				take = spareIdle
			}
			if take <= 0 {
				continue
			}
			if err := f.shiftTarget(inst, s, n, take); err != nil {
				return moved, err
			}
			short -= take
			moved += take
		}
	}
	return moved, nil
}

// shiftTarget moves `take` target units of inst from shard s to shard n.
func (f *Federation) shiftTarget(inst *FedInstance, s, n ShardID, take int) error {
	sctrl, err := f.Controller(s)
	if err != nil {
		return err
	}
	nctrl, err := f.Controller(n)
	if err != nil {
		return err
	}
	parts := inst.Parts()
	sid := parts[s]
	st, err := sctrl.Status(sid)
	if err != nil {
		return err
	}
	if take > st.Target {
		take = st.Target
	}
	if take <= 0 {
		return nil
	}
	if pid, ok := parts[n]; ok {
		ns, err := nctrl.Status(pid)
		if err != nil {
			return err
		}
		if err := nctrl.Resize(pid, ns.Target+take); err != nil {
			return err
		}
	} else {
		sub := inst.spec
		sub.Target = take
		pid, err := nctrl.CreateInstance(sub)
		if err != nil {
			return err
		}
		inst.mu.Lock()
		inst.parts[n] = pid
		inst.mu.Unlock()
	}
	return sctrl.Resize(sid, st.Target-take)
}
