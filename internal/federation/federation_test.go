package federation

import (
	"crypto/ed25519"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/journal"
	"oddci/internal/middleware"
	"oddci/internal/obs"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

// buildCtrl assembles one journal-backed started Controller over its
// own broadcast stack — both the initial construction and the Failover
// rebuild path use it, mirroring system.RestartController.
func buildCtrl(clk *simtime.Sim, dir string, seed int64) (*controller.Controller, *journal.Store, error) {
	store, err := journal.Open(dir, journal.Options{NoSync: true, Clock: clk})
	if err != nil {
		return nil, nil, err
	}
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		return nil, nil, err
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng, Journal: store,
	})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	if err := ctrl.Start(); err != nil {
		store.Close()
		return nil, nil, err
	}
	return ctrl, store, nil
}

// newTestFed builds an n-shard federation on one sim clock. Each shard
// gets its own state dir; the Rebuild closure reopens it.
func newTestFed(t *testing.T, clk *simtime.Sim, n int, reg *obs.Registry) (*Federation, []*journal.Store) {
	t.Helper()
	shards := make([]Shard, n)
	stores := make([]*journal.Store, n)
	for i := 0; i < n; i++ {
		dir := t.TempDir()
		seed := int64(100 + i)
		ctrl, store, err := buildCtrl(clk, dir, seed)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = store
		shards[i] = Shard{
			ID:   ShardID(i),
			Ctrl: ctrl,
			Rebuild: func() (*controller.Controller, error) {
				c, _, err := buildCtrl(clk, dir, seed+1000)
				return c, err
			},
		}
	}
	fed, err := New(Config{Shards: shards, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return fed, stores
}

// feedIdle reports idle heartbeats for nodes [from, to) to a shard.
func feedIdle(t *testing.T, clk *simtime.Sim, fed *Federation, s ShardID, from, to uint64) {
	t.Helper()
	ctrl, err := fed.Controller(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < to; i++ {
		ctrl.HandleHeartbeat(&control.Heartbeat{
			NodeID: i, State: control.StateIdle,
			Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
			SentAt:  clk.Now(),
		})
	}
}

func testSpec() controller.InstanceSpec {
	return controller.InstanceSpec{
		Image:  &appimage.Image{Name: "a", EntryPoint: "e", Payload: []byte{1}},
		Target: 8, InitialProbability: 1,
	}
}

func stopAll(t *testing.T, clk *simtime.Sim, fed *Federation, stores []*journal.Store) {
	t.Helper()
	for _, s := range fed.Shards() {
		if ctrl, err := fed.Controller(s); err == nil {
			ctrl.Stop()
		}
	}
	for _, st := range stores {
		st.Close()
	}
	clk.Wait()
}

func TestFederationCreateSplitsByIdle(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	fed, stores := newTestFed(t, clk, 3, reg)
	defer stopAll(t, clk, fed, stores)

	feedIdle(t, clk, fed, 0, 1, 31)    // 30 idle
	feedIdle(t, clk, fed, 1, 100, 110) // 10 idle
	feedIdle(t, clk, fed, 2, 200, 210) // 10 idle

	spec := testSpec()
	spec.Target = 10
	inst, err := fed.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	parts := inst.Parts()
	st0, _ := mustCtrl(t, fed, 0).Status(parts[0])
	if st0.Target < 5 {
		t.Fatalf("heaviest shard received %d of 10", st0.Target)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Target != 10 {
		t.Fatalf("aggregate target %d, want 10", agg.Target)
	}
	// Skew histogram saw the create.
	if v, ok := reg.Value("oddci_federation_split_skew"); !ok || v != 1 {
		t.Fatalf("split skew histogram count = %v, %v", v, ok)
	}
	// Per-shard gauges render.
	if v, ok := reg.Value("oddci_federation_shard_0_idle"); !ok || v < 0 {
		t.Fatalf("shard 0 idle gauge = %v, %v", v, ok)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func mustCtrl(t *testing.T, fed *Federation, s ShardID) *controller.Controller {
	t.Helper()
	ctrl, err := fed.Controller(s)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestFederationRouteConsistentWithRing(t *testing.T) {
	clk := simtime.NewSim(epoch)
	fed, stores := newTestFed(t, clk, 4, nil)
	defer stopAll(t, clk, fed, stores)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		id := rng.Uint64()
		s, ctrl, err := fed.Route(id)
		if err != nil {
			t.Fatal(err)
		}
		if s != fed.Ring().Owner(id) {
			t.Fatalf("route disagrees with ring for %d", id)
		}
		if want, _ := fed.Controller(s); ctrl != want {
			t.Fatal("route returned wrong controller")
		}
	}
	// Routing to a killed shard fails until failover. Stop the victim's
	// controller first — the crash we model takes its process down.
	victim := fed.Ring().Owner(42)
	mustCtrl(t, fed, victim).Stop()
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Route(42); !errors.Is(err, ErrShardDown) {
		t.Fatalf("route to killed shard = %v, want ErrShardDown", err)
	}
	if _, err := fed.Failover(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Route(42); err != nil {
		t.Fatalf("route after failover = %v", err)
	}
}

// TestFederationFailoverReadopts is the core correctness property: a
// killed shard's controller is rebuilt from its journal, surviving
// members are re-adopted from their next heartbeat inside the grace
// window, and no wakeup is re-broadcast (zero duplicate wakeups).
func TestFederationFailoverReadopts(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	fed, stores := newTestFed(t, clk, 2, reg)
	defer stopAll(t, clk, fed, stores)

	feedIdle(t, clk, fed, 0, 1, 21)
	feedIdle(t, clk, fed, 1, 100, 120)
	inst, err := fed.Create(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	parts := inst.Parts()

	// Members join on shard 0.
	c0 := mustCtrl(t, fed, 0)
	for n := uint64(1); n <= 4; n++ {
		c0.HandleHeartbeat(&control.Heartbeat{
			NodeID: n, State: control.StateBusy, InstanceID: parts[0], SentAt: clk.Now(),
		})
	}
	before, err := c0.Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if before.Busy != 4 {
		t.Fatalf("pre-kill busy %d, want 4", before.Busy)
	}

	// Crash shard 0: stop the controller and release its journal (the
	// process died; the state dir survived).
	if err := fed.Kill(0); err != nil {
		t.Fatal(err)
	}
	c0.Stop()
	stores[0].Close()
	if _, err := inst.Status(); !errors.Is(err, ErrShardDown) {
		t.Fatalf("status during outage = %v, want ErrShardDown", err)
	}

	adopter, err := fed.Failover(0)
	if err != nil {
		t.Fatal(err)
	}
	if adopter != 1 {
		t.Fatalf("adopter = %d, want ring successor 1", adopter)
	}
	c0r := mustCtrl(t, fed, 0)
	if c0r == c0 {
		t.Fatal("failover did not swap the controller")
	}
	if !c0r.Recovered() {
		t.Fatal("rebuilt controller does not report Recovered")
	}

	// The journal restored the part: same target, and crucially the
	// wakeup count did NOT advance — recovery re-adopts, never re-airs.
	after, err := c0r.Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Target != before.Target {
		t.Fatalf("target %d after failover, want %d", after.Target, before.Target)
	}
	if after.Wakeups != before.Wakeups {
		t.Fatalf("wakeups %d after failover, want %d (duplicate wakeup!)", after.Wakeups, before.Wakeups)
	}

	// Surviving members re-adopt via their next heartbeat.
	for n := uint64(1); n <= 4; n++ {
		c0r.HandleHeartbeat(&control.Heartbeat{
			NodeID: n, State: control.StateBusy, InstanceID: parts[0], SentAt: clk.Now(),
		})
	}
	re, err := c0r.Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if re.Busy != 4 {
		t.Fatalf("re-adopted busy %d, want 4", re.Busy)
	}
	if v, _ := reg.Value("oddci_federation_failovers_total"); v != 1 {
		t.Fatalf("failover counter = %v, want 1", v)
	}
	// Instance handle works again without rebinding.
	if _, err := inst.Status(); err != nil {
		t.Fatalf("status after failover = %v", err)
	}
}

// TestFederationRebalance: a shard that cannot recruit (no idle nodes
// left) sheds the uncoverable deficit to ring neighbors with surplus.
func TestFederationRebalance(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	fed, stores := newTestFed(t, clk, 2, reg)
	defer stopAll(t, clk, fed, stores)

	// Shard 0: 4 idle. Shard 1: 20 idle. Create lands 4+? split…
	feedIdle(t, clk, fed, 0, 1, 5)
	feedIdle(t, clk, fed, 1, 100, 120)
	spec := testSpec()
	spec.Target = 12
	inst, err := fed.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	parts := inst.Parts()
	st0, err := mustCtrl(t, fed, 0).Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if st0.Target == 0 {
		t.Skip("shard 0 received no share")
	}

	// Well past two carousel cycles nothing joined on shard 0, and its
	// idle pool is gone (nodes powered off): the deficit is uncoverable.
	c0 := mustCtrl(t, fed, 0)
	clk.RunUntil(clk.Now().Add(10 * time.Minute)) // heartbeats go stale → idle pools drain
	// Shard 1's devices are still on air; shard 0's never came back.
	feedIdle(t, clk, fed, 1, 120, 140)
	params := analyticParams()
	moved, err := fed.Rebalance(params, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing despite uncoverable deficit")
	}
	after0, err := c0.Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if after0.Target >= st0.Target {
		t.Fatalf("deficit shard target %d did not shrink from %d", after0.Target, st0.Target)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Target != 12 {
		t.Fatalf("aggregate target %d after rebalance, want 12", agg.Target)
	}
	if v, _ := reg.Value("oddci_federation_rebalance_moved_target_total"); int(v) != moved {
		t.Fatalf("moved counter %v, want %d", v, moved)
	}
}

// TestFederationChurnStress hammers a 4-shard federation with
// concurrent heartbeats, a kill/failover cycle, and rebalance passes —
// it exists to run under -race in the full gate.
func TestFederationChurnStress(t *testing.T) {
	clk := simtime.NewSim(epoch)
	fed, stores := newTestFed(t, clk, 4, obs.NewRegistry())
	defer stopAll(t, clk, fed, stores)

	for s := 0; s < 4; s++ {
		feedIdle(t, clk, fed, ShardID(s), uint64(s*1000+1), uint64(s*1000+51))
	}
	inst, err := fed.Create(controller.InstanceSpec{
		Image: testSpec().Image, Target: 40, InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				id := uint64(g*1000 + 1 + rng.Intn(50))
				if _, ctrl, err := fed.Route(id); err == nil {
					ctrl.HandleHeartbeat(&control.Heartbeat{
						NodeID: id, State: control.StateIdle,
						Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
						SentAt:  clk.Now(),
					})
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			fed.Rebalance(analyticParams(), float64(i), 0)
			inst.Status()
		}
	}()

	// Kill and fail over shard 2 while traffic flows.
	c2 := mustCtrl(t, fed, 2)
	if err := fed.Kill(2); err != nil {
		t.Fatal(err)
	}
	c2.Stop()
	if _, err := fed.Failover(2); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if _, err := inst.Status(); err != nil {
		t.Fatalf("status after stress = %v", err)
	}
}

// analyticParams is a small carousel model: a 10 Mbit image over a
// 1 Mbit/s channel (C = 10 s, ramp complete by 20 s).
func analyticParams() analytic.Params {
	return analytic.Params{ImageBits: 10e6, Beta: 1e6}
}

// TestFedInstanceResizeRecompose exercises the aggregate mutation
// surface: Resize re-splits over live shards (growing a part on a
// shard that had none), Recompose rides every part's carousel, and
// both refuse a destroyed instance.
func TestFedInstanceResizeRecompose(t *testing.T) {
	clk := simtime.NewSim(epoch)
	fed, stores := newTestFed(t, clk, 2, nil)
	defer stopAll(t, clk, fed, stores)

	// All idle capacity on shard 0: the create lands there alone.
	feedIdle(t, clk, fed, 0, 1, 21)
	spec := testSpec()
	spec.Target = 6
	inst, err := fed.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Parts()) != 1 {
		t.Fatalf("parts = %v, want the idle-rich shard only", inst.Parts())
	}

	if err := inst.Resize(-1); err == nil {
		t.Fatal("negative target accepted")
	}
	if fed.Down(0) || fed.Down(99) {
		t.Fatal("healthy/unknown shard reported down")
	}

	// Idle appears on shard 1; growing the instance must open a part
	// there — unlike the single-network Multi, each shard airs its own
	// carousel.
	feedIdle(t, clk, fed, 1, 100, 140)
	if err := inst.Resize(16); err != nil {
		t.Fatal(err)
	}
	parts := inst.Parts()
	if len(parts) != 2 {
		t.Fatalf("parts after grow = %v, want both shards", parts)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Target != 16 {
		t.Fatalf("aggregate target = %d, want 16", agg.Target)
	}

	// Recompose bumps every part's wakeup sequence.
	before := agg.Wakeups
	img2 := &appimage.Image{Name: "a", Version: 2, EntryPoint: "e", Payload: []byte{2}}
	if err := inst.Recompose(img2); err != nil {
		t.Fatal(err)
	}
	agg, err = inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Wakeups != before+len(parts) {
		t.Fatalf("wakeups %d -> %d, want one recompose broadcast per part", before, agg.Wakeups)
	}

	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Resize(4); err == nil {
		t.Fatal("resize after destroy accepted")
	}
	if err := inst.Recompose(img2); err == nil {
		t.Fatal("recompose after destroy accepted")
	}
	if err := inst.Destroy(); err != nil {
		t.Fatalf("second destroy not idempotent: %v", err)
	}
}

// A fully-down federation refuses Resize rather than dropping the
// request on the floor.
func TestFedResizeAllShardsDown(t *testing.T) {
	clk := simtime.NewSim(epoch)
	fed, stores := newTestFed(t, clk, 1, nil)
	defer stopAll(t, clk, fed, stores)

	feedIdle(t, clk, fed, 0, 1, 11)
	inst, err := fed.Create(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// stopAll skips down shards (Controller errors), so stop the
	// controller here — an orphaned maintenance loop would hang the
	// sim clock's Wait.
	mustCtrl(t, fed, 0).Stop()
	if err := fed.Kill(0); err != nil {
		t.Fatal(err)
	}
	if !fed.Down(0) {
		t.Fatal("killed shard not reported down")
	}
	if err := inst.Resize(4); !errors.Is(err, ErrShardDown) {
		t.Fatalf("resize with every shard down: %v, want ErrShardDown", err)
	}
}
