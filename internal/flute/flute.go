// Package flute implements the second broadcast substrate of §3.3: a
// FLUTE/ALC-style file caster over IP multicast, as a broadband operator
// or mobile network would deploy OddCI ("multicast transmission by
// broadband networks, mobile phone networks"). Files are chunked into
// datagram-sized blocks and transmitted cyclically with the chunks of
// all files interleaved round-robin — the standard FLUTE arrangement.
//
// It satisfies the same two interfaces as the DSM-CC broadcaster
// (controller.HeadEnd and middleware.ObjectCarousel), so the whole OddCI
// control plane runs over it unchanged. The observable difference is
// the receiver model: datagram receivers cache any chunk they see, so a
// join at a random phase completes in at most ONE cycle — versus the
// DSM-CC file-granularity receiver's expected 1.5 cycles.
package flute

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oddci/internal/dsmcc"
	"oddci/internal/simtime"
)

const (
	// ChunkPayload is the file bytes carried per datagram.
	ChunkPayload = 1400
	// chunkOverhead covers IP + UDP + ALC/LCT headers per datagram.
	chunkOverhead = 60
)

// layout is the wire schedule of one cycle: chunks of all files
// interleaved round-robin.
type layout struct {
	generation uint32
	cycleWire  int64
	// chunkEnds maps file name → the wire-byte end offset of each of
	// its chunks within the cycle.
	chunkEnds map[string][]int64
	files     map[string][]byte
}

func buildLayout(files []dsmcc.File, generation uint32) (*layout, error) {
	if len(files) == 0 {
		return nil, errors.New("flute: empty content set")
	}
	l := &layout{
		generation: generation,
		chunkEnds:  make(map[string][]int64, len(files)),
		files:      make(map[string][]byte, len(files)),
	}
	remaining := make([]int, len(files))
	for i, f := range files {
		if f.Name == "" {
			return nil, errors.New("flute: empty file name")
		}
		if _, dup := l.files[f.Name]; dup {
			return nil, fmt.Errorf("flute: duplicate file %q", f.Name)
		}
		l.files[f.Name] = f.Data
		chunks := (len(f.Data) + ChunkPayload - 1) / ChunkPayload
		if chunks == 0 {
			chunks = 1 // empty files still occupy one announcement chunk
		}
		remaining[i] = chunks
	}
	// Round-robin interleave.
	var pos int64
	active := len(files)
	for active > 0 {
		for i, f := range files {
			if remaining[i] == 0 {
				continue
			}
			size := ChunkPayload
			if remaining[i] == 1 {
				if tail := len(f.Data) % ChunkPayload; tail != 0 {
					size = tail
				}
				if len(f.Data) == 0 {
					size = 0
				}
			}
			pos += int64(size + chunkOverhead)
			l.chunkEnds[f.Name] = append(l.chunkEnds[f.Name], pos)
			remaining[i]--
			if remaining[i] == 0 {
				active--
			}
		}
	}
	l.cycleWire = pos
	return l, nil
}

// completion returns the wire-byte position at which a receiver that
// starts listening at pos holds every chunk of name.
func (l *layout) completion(name string, pos int64) (int64, bool) {
	ends, ok := l.chunkEnds[name]
	if !ok {
		return 0, false
	}
	w := l.cycleWire
	k := pos / w
	inCycle := pos - k*w
	base := k * w
	var max int64
	for _, e := range ends {
		var at int64
		if e > inCycle {
			at = base + e
		} else {
			at = base + w + e
		}
		if at > max {
			max = at
		}
	}
	return max, true
}

// Caster is the transmitter: the multicast analogue of
// dsmcc.Broadcaster.
type Caster struct {
	clk  simtime.Clock
	rate float64 // bps

	mu           sync.Mutex
	cur          *layout
	origin       time.Time
	started      bool
	generation   uint32
	pending      []dsmcc.File
	pendingSet   bool
	genListeners map[int]func(uint32, time.Time)
	nextListener int
}

// NewCaster builds an idle caster transmitting at rateBps.
func NewCaster(clk simtime.Clock, rateBps float64) (*Caster, error) {
	if rateBps <= 0 {
		return nil, errors.New("flute: rate must be positive")
	}
	return &Caster{
		clk:          clk,
		rate:         rateBps,
		genListeners: make(map[int]func(uint32, time.Time)),
	}, nil
}

func (c *Caster) airTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) * 8 / c.rate * float64(time.Second))
}

// Start implements controller.HeadEnd.
func (c *Caster) Start(files []dsmcc.File) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("flute: caster already started")
	}
	c.generation++
	l, err := buildLayout(files, c.generation)
	if err != nil {
		c.generation--
		return err
	}
	c.cur = l
	c.origin = c.clk.Now()
	c.started = true
	return nil
}

// Generation returns the on-air content generation.
func (c *Caster) Generation() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// CycleDuration returns the air time of one full cycle.
func (c *Caster) CycleDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0
	}
	return c.airTime(c.cur.cycleWire)
}

func (c *Caster) positionLocked(t time.Time) int64 {
	elapsed := t.Sub(c.origin)
	if elapsed < 0 {
		return 0
	}
	return int64(elapsed.Seconds() * c.rate / 8)
}

// Update implements controller.HeadEnd: new content goes on air at the
// next cycle boundary; queued updates coalesce.
func (c *Caster) Update(files []dsmcc.File) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return errors.New("flute: caster not started")
	}
	if _, err := buildLayout(files, 0); err != nil {
		return err // validate now; commit later
	}
	c.pending = files
	if c.pendingSet {
		return nil
	}
	c.pendingSet = true
	now := c.clk.Now()
	pos := c.positionLocked(now)
	w := c.cur.cycleWire
	boundary := (pos/w + 1) * w
	delay := c.origin.Add(c.airTime(boundary)).Sub(now)
	c.clk.AfterFunc(delay, c.commit)
	return nil
}

func (c *Caster) commit() {
	c.mu.Lock()
	files := c.pending
	c.pending = nil
	c.pendingSet = false
	c.generation++
	l, err := buildLayout(files, c.generation)
	if err != nil {
		c.mu.Unlock()
		panic(fmt.Sprintf("flute: committing validated update failed: %v", err))
	}
	c.cur = l
	c.origin = c.clk.Now()
	gen := c.generation
	at := c.origin
	ls := make([]func(uint32, time.Time), 0, len(c.genListeners))
	for _, fn := range c.genListeners {
		ls = append(ls, fn)
	}
	c.mu.Unlock()
	for _, fn := range ls {
		fn(gen, at)
	}
}

// OnGeneration implements middleware.ObjectCarousel.
func (c *Caster) OnGeneration(fn func(gen uint32, at time.Time)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextListener
	c.nextListener++
	c.genListeners[id] = fn
	return func() {
		c.mu.Lock()
		delete(c.genListeners, id)
		c.mu.Unlock()
	}
}

// CycleWire returns the current cycle's wire size in bytes.
func (c *Caster) CycleWire() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0
	}
	return c.cur.cycleWire
}

// Completion exposes the receiver completion model: the wire-byte
// position at which a receiver that starts listening at pos holds all
// of name's chunks. Used by the transport-comparison experiment.
func (c *Caster) Completion(name string, pos int64) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0, false
	}
	return c.cur.completion(name, pos)
}

// ErrNoSuchFile mirrors the dsmcc error.
var ErrNoSuchFile = errors.New("flute: no such file on air")

// RequestFile implements middleware.ObjectCarousel. The strategy is
// ignored: datagram receivers always cache out-of-order chunks (the
// block-cache behaviour is inherent to FLUTE).
func (c *Caster) RequestFile(name string, _ dsmcc.ReceiverStrategy, fn func(data []byte, at time.Time, err error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		now := c.clk.Now()
		c.clk.AfterFunc(0, func() { fn(nil, now, errors.New("flute: caster not started")) })
		return
	}
	c.scheduleLocked(name, fn)
}

func (c *Caster) scheduleLocked(name string, fn func([]byte, time.Time, error)) {
	now := c.clk.Now()
	l := c.cur
	if _, ok := l.files[name]; !ok {
		c.clk.AfterFunc(0, func() { fn(nil, now, ErrNoSuchFile) })
		return
	}
	gen := l.generation
	pos := c.positionLocked(now)
	done, _ := l.completion(name, pos)
	at := c.origin.Add(c.airTime(done))
	delay := at.Sub(now)
	if delay < 0 {
		delay = 0
	}
	c.clk.AfterFunc(delay, func() {
		c.mu.Lock()
		cur := c.cur
		data, ok := cur.files[name]
		switch {
		case !ok:
			c.mu.Unlock()
			fn(nil, c.clk.Now(), ErrNoSuchFile)
			return
		case cur.generation != gen && !bytesEqual(data, l.files[name]):
			// Content changed mid-read: restart on the new generation.
			c.scheduleLocked(name, fn)
			c.mu.Unlock()
			return
		}
		out := append([]byte(nil), data...)
		c.mu.Unlock()
		fn(out, c.clk.Now(), nil)
	})
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
