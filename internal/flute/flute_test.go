package flute

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/dsmcc"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func startCaster(t *testing.T, clk simtime.Clock, rate float64, files ...dsmcc.File) *Caster {
	t.Helper()
	c, err := NewCaster(clk, rate)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(files); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLayoutInterleavesChunks(t *testing.T) {
	files := []dsmcc.File{
		{Name: "a", Data: make([]byte, 3*ChunkPayload)},
		{Name: "b", Data: make([]byte, 3*ChunkPayload)},
	}
	l, err := buildLayout(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Interleaving: a's chunks and b's chunks alternate, so a's k-th
	// chunk ends before b's k-th chunk, which ends before a's (k+1)-th.
	ea, eb := l.chunkEnds["a"], l.chunkEnds["b"]
	if len(ea) != 3 || len(eb) != 3 {
		t.Fatalf("chunks: %d/%d", len(ea), len(eb))
	}
	for k := 0; k < 3; k++ {
		if !(ea[k] < eb[k]) {
			t.Fatalf("round %d not interleaved: a=%d b=%d", k, ea[k], eb[k])
		}
		if k > 0 && !(eb[k-1] < ea[k]) {
			t.Fatal("rounds overlap")
		}
	}
}

func TestCompletionAtMostOneCycle(t *testing.T) {
	// The FLUTE receiver property: any join phase completes any file
	// within one cycle.
	rng := rand.New(rand.NewSource(3))
	files := []dsmcc.File{
		{Name: "small", Data: make([]byte, 10*ChunkPayload)},
		{Name: "image", Data: make([]byte, 500*ChunkPayload)},
	}
	l, err := buildLayout(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const samples = 3000
	for i := 0; i < samples; i++ {
		pos := rng.Int63n(l.cycleWire)
		done, ok := l.completion("image", pos)
		if !ok {
			t.Fatal("image missing")
		}
		wait := done - pos
		if wait > l.cycleWire {
			t.Fatalf("completion took %d of a %d-byte cycle", wait, l.cycleWire)
		}
		sum += float64(wait)
	}
	mean := sum / samples / float64(l.cycleWire)
	// Interleaved chunks: the last missing chunk is the one airing just
	// before the join, so the expected wait is ≈ one cycle.
	if mean < 0.95 || mean > 1.0 {
		t.Fatalf("mean completion = %.3f cycles, want ≈1.0", mean)
	}
}

func TestRequestFileDeliversContent(t *testing.T) {
	clk := simtime.NewSim(epoch)
	rng := rand.New(rand.NewSource(4))
	img := make([]byte, 100000)
	rng.Read(img)
	c := startCaster(t, clk, 1e6, dsmcc.File{Name: "image", Data: img})
	var got []byte
	var at time.Time
	c.RequestFile("image", dsmcc.FileGranularity, func(data []byte, when time.Time, err error) {
		if err != nil {
			t.Errorf("request: %v", err)
			return
		}
		got, at = data, when
	})
	clk.Wait()
	if !bytes.Equal(got, img) {
		t.Fatal("content mismatch")
	}
	if at.Sub(epoch) > c.CycleDuration() {
		t.Fatalf("delivery %v exceeds one cycle %v", at.Sub(epoch), c.CycleDuration())
	}
}

func TestWakeupBeatsDSMCC(t *testing.T) {
	// Same content, same β: the multicast caster's random-phase wakeup
	// must beat the DSM-CC file-granularity receiver's (1.0 vs ~1.5
	// cycles when the image dominates).
	img := make([]byte, 2<<20)
	files := []dsmcc.File{
		{Name: "pna.xlet", Data: make([]byte, 20000)},
		{Name: "image", Data: img},
	}
	fl, err := buildLayout(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := car.SetFiles(files); err != nil {
		t.Fatal(err)
	}
	dl, err := car.Layout()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var fluteSum, dsmccSum float64
	const samples = 1000
	for i := 0; i < samples; i++ {
		fp := rng.Int63n(fl.cycleWire)
		fd, _ := fl.completion("image", fp)
		fluteSum += float64(fd-fp) / float64(fl.cycleWire)
		dp := rng.Int63n(dl.CycleWire)
		dd, _ := dl.NextCompletion("image", dp, dsmcc.FileGranularity)
		dsmccSum += float64(dd-dp) / float64(dl.CycleWire)
	}
	fluteMean := fluteSum / samples
	dsmccMean := dsmccSum / samples
	if fluteMean >= dsmccMean {
		t.Fatalf("flute %.3f cycles not better than dsmcc %.3f", fluteMean, dsmccMean)
	}
	if dsmccMean < 1.4 || fluteMean > 1.01 {
		t.Fatalf("means off: flute %.3f (≈1.0), dsmcc %.3f (≈1.5)", fluteMean, dsmccMean)
	}
}

func TestUpdateAtCycleBoundary(t *testing.T) {
	clk := simtime.NewSim(epoch)
	c := startCaster(t, clk, 1e6, dsmcc.File{Name: "a", Data: make([]byte, 100000)})
	cycle := c.CycleDuration()
	var gen uint32
	var at time.Time
	c.OnGeneration(func(g uint32, when time.Time) { gen, at = g, when })
	clk.Go(func() {
		clk.Sleep(cycle / 4)
		if err := c.Update([]dsmcc.File{{Name: "a", Data: make([]byte, 200000)}}); err != nil {
			t.Errorf("update: %v", err)
		}
		// Coalesce a second update.
		if err := c.Update([]dsmcc.File{{Name: "a", Data: []byte("final")}}); err != nil {
			t.Errorf("update2: %v", err)
		}
	})
	clk.Wait()
	if gen != 2 {
		t.Fatalf("generation = %d", gen)
	}
	if d := at.Sub(epoch.Add(cycle)); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("commit at %v, want one cycle", at)
	}
	var got []byte
	c.RequestFile("a", dsmcc.FileGranularity, func(data []byte, _ time.Time, err error) { got = data })
	clk.Wait()
	if string(got) != "final" {
		t.Fatalf("content %q, want coalesced final", got)
	}
}

func TestRequestUnknownFile(t *testing.T) {
	clk := simtime.NewSim(epoch)
	c := startCaster(t, clk, 1e6, dsmcc.File{Name: "a", Data: []byte{1}})
	var got error
	c.RequestFile("missing", dsmcc.FileGranularity, func(_ []byte, _ time.Time, err error) { got = err })
	clk.Wait()
	if got != ErrNoSuchFile {
		t.Fatalf("err = %v", got)
	}
}

func TestValidation(t *testing.T) {
	clk := simtime.NewSim(epoch)
	if _, err := NewCaster(clk, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	c, _ := NewCaster(clk, 1e6)
	if err := c.Start(nil); err == nil {
		t.Fatal("empty start accepted")
	}
	if err := c.Update(nil); err == nil {
		t.Fatal("update before start accepted")
	}
	if err := c.Start([]dsmcc.File{{Name: "x", Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start([]dsmcc.File{{Name: "x"}}); err == nil {
		t.Fatal("double start accepted")
	}
	if err := c.Update([]dsmcc.File{{Name: "x"}, {Name: "x"}}); err == nil {
		t.Fatal("duplicate files accepted")
	}
	clk.Wait()
}

func TestAccessorsAndListenerCancel(t *testing.T) {
	clk := simtime.NewSim(epoch)
	c, _ := NewCaster(clk, 1e6)
	if c.Generation() != 0 || c.CycleWire() != 0 || c.CycleDuration() != 0 {
		t.Fatal("unstarted caster not zero")
	}
	if _, ok := c.Completion("x", 0); ok {
		t.Fatal("completion on unstarted caster")
	}
	var got error
	c.RequestFile("x", dsmcc.FileGranularity, func(_ []byte, _ time.Time, err error) { got = err })
	clk.Wait()
	if got == nil {
		t.Fatal("request before start accepted")
	}
	if err := c.Start([]dsmcc.File{{Name: "a", Data: make([]byte, 5000)}}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 1 || c.CycleWire() == 0 {
		t.Fatal("accessors wrong after start")
	}
	if done, ok := c.Completion("a", 0); !ok || done <= 0 || done > c.CycleWire() {
		t.Fatalf("completion = %d, %v", done, ok)
	}
	n := 0
	cancel := c.OnGeneration(func(uint32, time.Time) { n++ })
	cancel()
	clk.Go(func() { c.Update([]dsmcc.File{{Name: "a", Data: []byte("v2")}}) })
	clk.Wait()
	if n != 0 {
		t.Fatal("cancelled listener invoked")
	}
}

// Content version change mid-read restarts the delivery against the new
// generation (the dsmcc semantics, preserved here).
func TestRequestRestartsOnContentChange(t *testing.T) {
	clk := simtime.NewSim(epoch)
	c := startCaster(t, clk, 1e6, dsmcc.File{Name: "a", Data: make([]byte, 500000)})
	var got []byte
	clk.Go(func() {
		clk.Sleep(c.CycleDuration() / 2)
		c.RequestFile("a", dsmcc.FileGranularity, func(data []byte, _ time.Time, err error) {
			if err == nil {
				got = data
			}
		})
		// The update commits before the read completes.
		c.Update([]dsmcc.File{{Name: "a", Data: []byte("fresh")}})
	})
	clk.Wait()
	if string(got) != "fresh" {
		t.Fatalf("delivered %d bytes, want the fresh content", len(got))
	}
}
