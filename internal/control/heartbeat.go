package control

import (
	"encoding/binary"
	"errors"
	"time"

	"oddci/internal/core/instance"
)

// NodeState is a PNA's activity state.
type NodeState uint8

// PNA states from §3.2.
const (
	StateIdle NodeState = iota
	StateBusy
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	if s == StateBusy {
		return "busy"
	}
	return "idle"
}

// Heartbeat is the periodic PNA → Controller status report carried on
// the direct channel: "these messages contain the PNA's state and the
// identification of the OddCI instance to which it currently belongs".
type Heartbeat struct {
	NodeID     uint64
	State      NodeState
	InstanceID instance.ID
	Profile    instance.DeviceProfile
	TasksDone  uint32
	SentAt     time.Time
}

// HeartbeatWireSize is the nominal on-the-wire size in bytes used for
// direct-channel pacing.
const HeartbeatWireSize = 64

// EncodeHeartbeat serializes a heartbeat.
func EncodeHeartbeat(h *Heartbeat) []byte {
	b := make([]byte, 0, 40)
	b = binary.BigEndian.AppendUint64(b, h.NodeID)
	b = append(b, byte(h.State))
	b = binary.BigEndian.AppendUint64(b, uint64(h.InstanceID))
	b = h.Profile.Encode(b)
	b = binary.BigEndian.AppendUint32(b, h.TasksDone)
	b = binary.BigEndian.AppendUint64(b, uint64(h.SentAt.UnixNano()))
	return b
}

// DecodeHeartbeat reverses EncodeHeartbeat.
func DecodeHeartbeat(b []byte) (*Heartbeat, error) {
	if len(b) < 17 {
		return nil, errors.New("control: truncated heartbeat")
	}
	h := &Heartbeat{
		NodeID:     binary.BigEndian.Uint64(b),
		State:      NodeState(b[8]),
		InstanceID: instance.ID(binary.BigEndian.Uint64(b[9:])),
	}
	var err error
	h.Profile, b, err = instance.DecodeProfile(b[17:])
	if err != nil {
		return nil, err
	}
	if len(b) < 12 {
		return nil, errors.New("control: truncated heartbeat tail")
	}
	h.TasksDone = binary.BigEndian.Uint32(b)
	h.SentAt = time.Unix(0, int64(binary.BigEndian.Uint64(b[4:]))).UTC()
	return h, nil
}

// Command is the Controller's instruction in a heartbeat reply —
// "adjust OddCI exceeding size replying heartbeat messages with a reset
// command".
type Command uint8

// Heartbeat reply commands.
const (
	CmdNone Command = iota
	CmdReset
)

// HeartbeatReply acknowledges a heartbeat.
type HeartbeatReply struct {
	Command Command
	// Period, if positive, re-tunes the PNA's heartbeat interval (the
	// Controller's back-pressure knob).
	Period time.Duration
}

// HeartbeatReplyWireSize is the nominal reply size in bytes.
const HeartbeatReplyWireSize = 16

// EncodeHeartbeatReply serializes a reply.
func EncodeHeartbeatReply(r *HeartbeatReply) []byte {
	b := make([]byte, 0, 9)
	b = append(b, byte(r.Command))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Period))
	return b
}

// DecodeHeartbeatReply reverses EncodeHeartbeatReply.
func DecodeHeartbeatReply(b []byte) (*HeartbeatReply, error) {
	if len(b) < 9 {
		return nil, errors.New("control: truncated heartbeat reply")
	}
	return &HeartbeatReply{
		Command: Command(b[0]),
		Period:  time.Duration(binary.BigEndian.Uint64(b[1:])),
	}, nil
}
