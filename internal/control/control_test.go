package control

import (
	"crypto/ed25519"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/instance"
)

func testKeys(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func sampleWakeup() *Wakeup {
	return &Wakeup{
		InstanceID:  42,
		Seq:         3,
		Probability: 0.25,
		Requirements: instance.Requirements{
			Class:       instance.ClassSTB,
			MinMemMB:    128,
			MinCPUScore: 50,
		},
		ImageFile:       "image",
		ImageDigest:     appimage.Digest{1, 2, 3},
		HeartbeatPeriod: 30 * time.Second,
		Lifetime:        2 * time.Hour,
	}
}

func TestWakeupSignOpenRoundTrip(t *testing.T) {
	pub, priv := testKeys(t)
	w := sampleWakeup()
	raw, err := SignWakeup(w, priv)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Open(raw, pub)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Wakeup)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("got %+v want %+v", got, w)
	}
}

func TestResetSignOpenRoundTrip(t *testing.T) {
	pub, priv := testKeys(t)
	r := &Reset{InstanceID: 7, Seq: 9}
	raw, err := SignReset(r, priv)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Open(raw, pub)
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Reset); !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v", got)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	_, priv := testKeys(t)
	otherPub, _, _ := ed25519.GenerateKey(rand.New(rand.NewSource(99)))
	raw, _ := SignWakeup(sampleWakeup(), priv)
	if _, err := Open(raw, otherPub); err != ErrBadSignature {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

// Property: flipping any byte of a signed envelope makes Open fail.
func TestEnvelopeTamperProperty(t *testing.T) {
	pub, priv := testKeys(t)
	raw, _ := SignWakeup(sampleWakeup(), priv)
	f := func(pos uint16, flip uint8) bool {
		if flip == 0 {
			flip = 0xFF
		}
		tampered := append([]byte(nil), raw...)
		tampered[int(pos)%len(tampered)] ^= flip
		_, err := Open(tampered, pub)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWakeupValidation(t *testing.T) {
	_, priv := testKeys(t)
	w := sampleWakeup()
	w.Probability = 1.5
	if _, err := SignWakeup(w, priv); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	w = sampleWakeup()
	w.Probability = -0.1
	if _, err := SignWakeup(w, priv); err == nil {
		t.Fatal("negative probability accepted")
	}
	w = sampleWakeup()
	w.HeartbeatPeriod = -time.Second
	if _, err := SignWakeup(w, priv); err == nil {
		t.Fatal("negative heartbeat period accepted")
	}
}

func TestOpenTruncated(t *testing.T) {
	pub, priv := testKeys(t)
	raw, _ := SignWakeup(sampleWakeup(), priv)
	for _, cut := range []int{0, 10, len(raw) - 1} {
		if _, err := Open(raw[:cut], pub); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Property: arbitrary wakeups round-trip through sign/open.
func TestWakeupRoundTripProperty(t *testing.T) {
	pub, priv := testKeys(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var digest appimage.Digest
		rng.Read(digest[:])
		w := &Wakeup{
			InstanceID:  instance.ID(rng.Uint64()),
			Seq:         rng.Uint32(),
			Probability: rng.Float64(),
			Requirements: instance.Requirements{
				Class:       instance.DeviceClass(rng.Intn(5)),
				MinMemMB:    rng.Uint32(),
				MinCPUScore: rng.Uint32(),
			},
			ImageFile:       "img",
			ImageDigest:     digest,
			HeartbeatPeriod: time.Duration(rng.Int63n(1e12)),
			Lifetime:        time.Duration(rng.Int63n(1e13)),
		}
		raw, err := SignWakeup(w, priv)
		if err != nil {
			return false
		}
		msg, err := Open(raw, pub)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(msg, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	h := &Heartbeat{
		NodeID:     12345,
		State:      StateBusy,
		InstanceID: 42,
		Profile:    instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		TasksDone:  17,
		SentAt:     time.Date(2009, 11, 1, 12, 0, 0, 123, time.UTC),
	}
	got, err := DecodeHeartbeat(EncodeHeartbeat(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestHeartbeatReplyRoundTrip(t *testing.T) {
	r := &HeartbeatReply{Command: CmdReset, Period: time.Minute}
	got, err := DecodeHeartbeatReply(EncodeHeartbeatReply(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v", got)
	}
}

func TestHeartbeatDecodeTruncated(t *testing.T) {
	raw := EncodeHeartbeat(&Heartbeat{SentAt: time.Unix(0, 0)})
	for _, cut := range []int{0, 8, 16, len(raw) - 1} {
		if _, err := DecodeHeartbeat(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeHeartbeatReply(nil); err == nil {
		t.Fatal("empty reply accepted")
	}
}

func TestNodeStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateBusy.String() != "busy" {
		t.Fatal("state strings wrong")
	}
}

func TestRequirementsMatch(t *testing.T) {
	stb := instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
	cases := []struct {
		req  instance.Requirements
		want bool
	}{
		{instance.Requirements{}, true},
		{instance.Requirements{Class: instance.ClassSTB}, true},
		{instance.Requirements{Class: instance.ClassMobile}, false},
		{instance.Requirements{MinMemMB: 256}, true},
		{instance.Requirements{MinMemMB: 512}, false},
		{instance.Requirements{MinCPUScore: 100}, true},
		{instance.Requirements{MinCPUScore: 101}, false},
	}
	for i, c := range cases {
		if got := c.req.Match(stb); got != c.want {
			t.Errorf("case %d: Match = %v", i, got)
		}
	}
}
