// Package control defines the OddCI control-plane messages and their
// deterministic binary wire format: the broadcast wakeup/reset messages
// (ed25519-signed by the Controller, since "the PNA are configured to
// only accept messages broadcast by their associated Controller"), and
// the direct-channel heartbeat exchange.
package control

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/instance"
)

// MsgType tags an envelope.
type MsgType uint8

// Broadcast message types.
const (
	MsgWakeup MsgType = 1
	MsgReset  MsgType = 2
)

// Wakeup commands idle, compliant PNAs to join an instance.
type Wakeup struct {
	// InstanceID names the OddCI instance being built or recomposed.
	InstanceID instance.ID
	// Seq increments per (re)transmission of wakeups for this instance,
	// so a PNA evaluates each retransmission's probability draw once.
	Seq uint32
	// Probability is the chance an idle PNA handles this message — the
	// Provider's instrument for sizing instances on a population much
	// larger than the target size.
	Probability float64
	// Requirements filter which devices may join.
	Requirements instance.Requirements
	// ImageFile is the carousel file carrying the application image.
	ImageFile string
	// ImageDigest authenticates the image content.
	ImageDigest appimage.Digest
	// HeartbeatPeriod tells the PNA how often to report, letting the
	// Controller bound its own heartbeat load.
	HeartbeatPeriod time.Duration
	// Lifetime, if positive, auto-dismantles the DVE after this long.
	Lifetime time.Duration
}

// Reset dismantles an instance ("the Controller may also broadcast
// reset messages to destroy an OddCI instance"). InstanceID 0 resets
// every instance.
type Reset struct {
	InstanceID instance.ID
	Seq        uint32
}

func (w *Wakeup) encode() ([]byte, error) {
	if w.Probability < 0 || w.Probability > 1 || math.IsNaN(w.Probability) {
		return nil, fmt.Errorf("control: probability %v out of [0,1]", w.Probability)
	}
	if len(w.ImageFile) > 255 {
		return nil, errors.New("control: image file name too long")
	}
	if w.HeartbeatPeriod < 0 || w.Lifetime < 0 {
		return nil, errors.New("control: negative durations")
	}
	b := make([]byte, 0, 96+len(w.ImageFile))
	b = binary.BigEndian.AppendUint64(b, uint64(w.InstanceID))
	b = binary.BigEndian.AppendUint32(b, w.Seq)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(w.Probability))
	b = w.Requirements.Encode(b)
	b = append(b, byte(len(w.ImageFile)))
	b = append(b, w.ImageFile...)
	b = append(b, w.ImageDigest[:]...)
	b = binary.BigEndian.AppendUint64(b, uint64(w.HeartbeatPeriod))
	b = binary.BigEndian.AppendUint64(b, uint64(w.Lifetime))
	return b, nil
}

func decodeWakeup(b []byte) (*Wakeup, error) {
	if len(b) < 21 {
		return nil, errors.New("control: truncated wakeup")
	}
	w := &Wakeup{
		InstanceID:  instance.ID(binary.BigEndian.Uint64(b)),
		Seq:         binary.BigEndian.Uint32(b[8:]),
		Probability: math.Float64frombits(binary.BigEndian.Uint64(b[12:])),
	}
	var err error
	w.Requirements, b, err = instance.DecodeRequirements(b[20:])
	if err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, errors.New("control: truncated wakeup image name")
	}
	nameLen := int(b[0])
	b = b[1:]
	if len(b) < nameLen+len(w.ImageDigest)+16 {
		return nil, errors.New("control: truncated wakeup tail")
	}
	w.ImageFile = string(b[:nameLen])
	b = b[nameLen:]
	copy(w.ImageDigest[:], b)
	b = b[len(w.ImageDigest):]
	w.HeartbeatPeriod = time.Duration(binary.BigEndian.Uint64(b))
	w.Lifetime = time.Duration(binary.BigEndian.Uint64(b[8:]))
	if w.Probability < 0 || w.Probability > 1 || math.IsNaN(w.Probability) {
		return nil, errors.New("control: decoded probability out of range")
	}
	return w, nil
}

func (r *Reset) encode() []byte {
	b := make([]byte, 0, 12)
	b = binary.BigEndian.AppendUint64(b, uint64(r.InstanceID))
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	return b
}

func decodeReset(b []byte) (*Reset, error) {
	if len(b) < 12 {
		return nil, errors.New("control: truncated reset")
	}
	return &Reset{
		InstanceID: instance.ID(binary.BigEndian.Uint64(b)),
		Seq:        binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// Envelope framing: type(1) | payloadLen(4) | payload | signature(64).

// SignWakeup encodes and signs a wakeup envelope.
func SignWakeup(w *Wakeup, key ed25519.PrivateKey) ([]byte, error) {
	payload, err := w.encode()
	if err != nil {
		return nil, err
	}
	return seal(MsgWakeup, payload, key), nil
}

// SignReset encodes and signs a reset envelope.
func SignReset(r *Reset, key ed25519.PrivateKey) ([]byte, error) {
	return seal(MsgReset, r.encode(), key), nil
}

func seal(t MsgType, payload []byte, key ed25519.PrivateKey) []byte {
	b := make([]byte, 0, 5+len(payload)+ed25519.SignatureSize)
	b = append(b, byte(t))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	sig := ed25519.Sign(key, b)
	return append(b, sig...)
}

// ErrBadSignature reports an envelope whose signature does not verify —
// a PNA drops such messages silently.
var ErrBadSignature = errors.New("control: bad signature")

// OpenAll parses a concatenation of signed envelopes — the control file
// a Controller managing several concurrent instances broadcasts. Any
// invalid envelope poisons the whole file (a PNA must not act on a
// partially forged message set).
func OpenAll(raw []byte, pub ed25519.PublicKey) ([]any, error) {
	var msgs []any
	for len(raw) > 0 {
		if len(raw) < 5+ed25519.SignatureSize {
			return nil, errors.New("control: truncated envelope in sequence")
		}
		plen := int(binary.BigEndian.Uint32(raw[1:]))
		total := 5 + plen + ed25519.SignatureSize
		if total > len(raw) {
			return nil, errors.New("control: envelope overruns file")
		}
		m, err := Open(raw[:total], pub)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
		raw = raw[total:]
	}
	return msgs, nil
}

// Open verifies an envelope against the Controller's public key and
// returns the decoded message (*Wakeup or *Reset).
func Open(raw []byte, pub ed25519.PublicKey) (any, error) {
	if len(raw) < 5+ed25519.SignatureSize {
		return nil, errors.New("control: truncated envelope")
	}
	body := raw[:len(raw)-ed25519.SignatureSize]
	sig := raw[len(raw)-ed25519.SignatureSize:]
	if !ed25519.Verify(pub, body, sig) {
		return nil, ErrBadSignature
	}
	t := MsgType(body[0])
	plen := int(binary.BigEndian.Uint32(body[1:]))
	if 5+plen != len(body) {
		return nil, errors.New("control: envelope length mismatch")
	}
	payload := body[5:]
	switch t {
	case MsgWakeup:
		return decodeWakeup(payload)
	case MsgReset:
		return decodeReset(payload)
	default:
		return nil, fmt.Errorf("control: unknown message type %d", t)
	}
}
