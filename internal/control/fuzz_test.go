package control

import (
	"crypto/ed25519"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/appimage"
)

// FuzzOpenAll hammers the envelope parser with arbitrary bytes: it must
// never panic, and must never return a message for input that was not
// signed by the key.
func FuzzOpenAll(f *testing.F) {
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(1)))
	if err != nil {
		f.Fatal(err)
	}
	w := &Wakeup{InstanceID: 1, Seq: 1, Probability: 0.5, ImageFile: "img",
		HeartbeatPeriod: time.Minute}
	valid, err := SignWakeup(w, priv)
	if err != nil {
		f.Fatal(err)
	}
	r, err := SignReset(&Reset{InstanceID: 2, Seq: 3}, priv)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), r...))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})

	otherPub, _, _ := ed25519.GenerateKey(rand.New(rand.NewSource(2)))
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := OpenAll(data, pub)
		if err == nil {
			// Anything accepted must verify under the right key and be
			// rejected under a different one.
			if len(data) > 0 {
				if _, err2 := OpenAll(data, otherPub); err2 == nil && len(msgs) > 0 {
					t.Fatal("envelope verified under two unrelated keys")
				}
			}
		}
	})
}

// FuzzDecodeHeartbeat must never panic on arbitrary input.
func FuzzDecodeHeartbeat(f *testing.F) {
	hb := &Heartbeat{NodeID: 1, State: StateBusy, InstanceID: 2, SentAt: time.Unix(0, 0)}
	f.Add(EncodeHeartbeat(hb))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeartbeat(data)
		if err == nil && h == nil {
			t.Fatal("nil heartbeat without error")
		}
	})
}

// FuzzAppImageDecode must never panic; Verify must reject any mutation.
func FuzzAppImageDecode(f *testing.F) {
	im := &appimage.Image{Name: "a", Version: 1, EntryPoint: "e", Payload: []byte("payload")}
	raw, err := im.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	digest := appimage.DigestOf(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		appimage.Decode(data)
		if _, err := appimage.Verify(data, digest); err == nil {
			// Only the exact original bytes may verify.
			if len(data) != len(raw) {
				t.Fatal("digest verified wrong-length input")
			}
			for i := range data {
				if data[i] != raw[i] {
					t.Fatal("digest verified mutated input")
				}
			}
		}
	})
}
