package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWakeupModel(t *testing.T) {
	p := Params{ImageBits: 8 * 8e6, Beta: 1e6} // 8 MB at 1 Mbps
	if got, want := p.Wakeup(), 1.5*64.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("W = %v, want %v", got, want)
	}
}

func TestPhiAnchorsFromPaper(t *testing.T) {
	// With (s+r) = 1 KB and δ = 150 kbps the paper says Φ=1 ⇒ p ≈ 53 ms
	// and Φ=100000 ⇒ p ≈ 1.5 h.
	p := Figure6Defaults(1, 1000).WithPhi(1)
	if p.TaskSeconds < 0.050 || p.TaskSeconds > 0.058 {
		t.Fatalf("Φ=1 ⇒ p = %v s, want ≈ 53 ms", p.TaskSeconds)
	}
	p = p.WithPhi(100000)
	hours := p.TaskSeconds / 3600
	if hours < 1.4 || hours > 1.6 {
		t.Fatalf("Φ=100000 ⇒ p = %v h, want ≈ 1.5 h", hours)
	}
	// And Phi() inverts WithPhi.
	if got := p.Phi(); math.Abs(got-100000) > 1 {
		t.Fatalf("Phi() = %v, want 100000", got)
	}
}

func TestEfficiencyIdentity(t *testing.T) {
	// E·M·N = n·p must hold exactly (definition of eq. 2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			ImageBits:   rng.Float64() * 1e8,
			Beta:        rng.Float64()*1e7 + 1,
			Delta:       rng.Float64()*1e6 + 1,
			N:           float64(rng.Intn(1e6) + 1),
			Tasks:       float64(rng.Intn(1e7) + 1),
			TaskInBits:  rng.Float64() * 1e5,
			TaskOutBits: rng.Float64() * 1e5,
			TaskSeconds: rng.Float64()*1000 + 1e-3,
		}
		lhs := p.Efficiency() * p.Makespan() * p.N
		rhs := p.Tasks * p.TaskSeconds
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyMonotoneInPhi(t *testing.T) {
	// Figure 6's headline shape: E grows with Φ for fixed n/N.
	base := Figure6Defaults(100, 10000)
	prev := -1.0
	for _, phi := range []float64{1, 10, 100, 1000, 10000, 100000} {
		e := base.WithPhi(phi).Efficiency()
		if e <= prev {
			t.Fatalf("E not increasing at Φ=%v: %v after %v", phi, e, prev)
		}
		if e <= 0 || e > 1 {
			t.Fatalf("E = %v out of (0,1]", e)
		}
		prev = e
	}
}

func TestEfficiencyMonotoneInRatio(t *testing.T) {
	// Higher n/N amortizes the wakeup: E grows with the ratio.
	prev := -1.0
	for _, ratio := range []float64{1, 10, 100, 1000} {
		e := Figure6Defaults(ratio, 10000).WithPhi(100).Efficiency()
		if e <= prev {
			t.Fatalf("E not increasing at n/N=%v", ratio)
		}
		prev = e
	}
}

func TestRatio100YieldsHighEfficiency(t *testing.T) {
	// "A ratio above 100 is generally enough to yield very high
	// efficiency for most practical applications."
	e := Figure6Defaults(100, 10000).WithPhi(1000).Efficiency()
	if e < 0.9 {
		t.Fatalf("E = %v at n/N=100, Φ=1000; paper promises ≥ 0.9", e)
	}
}

func TestMakespanDecomposition(t *testing.T) {
	p := Figure6Defaults(10, 1000).WithPhi(100)
	perTask := (p.TaskInBits+p.TaskOutBits)/p.Delta + p.TaskSeconds
	want := p.Wakeup() + 10*perTask
	if got := p.Makespan(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("M = %v, want %v", got, want)
	}
}

func TestParametricPhiInfinite(t *testing.T) {
	p := Params{TaskSeconds: 1, Delta: 1}
	if !math.IsInf(p.Phi(), 1) {
		t.Fatal("Φ of parametric app should be +Inf")
	}
}

func TestValidate(t *testing.T) {
	good := Figure6Defaults(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{Beta: 1},
		{Beta: 1, Delta: 1},
		{Beta: 1, Delta: 1, N: 1},
		{Beta: 1, Delta: 1, N: 1, Tasks: 1},
		{Beta: 1, Delta: 1, N: 1, Tasks: 1, TaskSeconds: 1, ImageBits: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestThroughputs(t *testing.T) {
	p := Params{N: 100, TaskSeconds: 2}
	if p.SingleThroughput() != 0.5 || p.IdealThroughput() != 50 {
		t.Fatal("throughput helpers wrong")
	}
}

func TestMakespanSynchronizedCeiling(t *testing.T) {
	p := Figure6Defaults(1, 100).WithPhi(100)
	p.Tasks = 101 // one task spills into a second round
	one := p
	one.Tasks = 100
	d := p.MakespanSynchronized(512) - one.MakespanSynchronized(512)
	if math.Abs(d-one.PerTaskSeconds(512)) > 1e-9 {
		t.Fatalf("spill round costs %v, want one full service time %v", d, one.PerTaskSeconds(512))
	}
}

func TestPerTaskSecondsComposition(t *testing.T) {
	p := Params{Delta: 1000, TaskInBits: 500, TaskOutBits: 300, TaskSeconds: 2}
	want := (512+500)/1000.0 + 2 + 300/1000.0
	if got := p.PerTaskSeconds(512); math.Abs(got-want) > 1e-12 {
		t.Fatalf("per-task = %v, want %v", got, want)
	}
}

func TestNodesForInvertsMakespan(t *testing.T) {
	p := Figure6Defaults(100, 1) // N overwritten below
	p = p.WithPhi(1000)
	p.Tasks = 50000
	target := 6000.0
	n := p.NodesFor(target)
	if n <= 0 {
		t.Fatal("target reported unreachable")
	}
	p.N = n
	if m := p.Makespan(); m > target {
		t.Fatalf("N=%v gives makespan %v > target %v", n, m, target)
	}
	// One node fewer must miss the target (minimality).
	p.N = n - 1
	if n > 1 && p.Makespan() <= target {
		t.Fatalf("N-1 also meets the target; NodesFor not minimal")
	}
	// Unreachable: target below the wakeup overhead.
	if got := p.NodesFor(p.Wakeup() / 2); got != 0 {
		t.Fatalf("unreachable target returned %v", got)
	}
}
