package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWakeupModel(t *testing.T) {
	p := Params{ImageBits: 8 * 8e6, Beta: 1e6} // 8 MB at 1 Mbps
	if got, want := p.Wakeup(), 1.5*64.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("W = %v, want %v", got, want)
	}
}

func TestPhiAnchorsFromPaper(t *testing.T) {
	// With (s+r) = 1 KB and δ = 150 kbps the paper says Φ=1 ⇒ p ≈ 53 ms
	// and Φ=100000 ⇒ p ≈ 1.5 h.
	p := Figure6Defaults(1, 1000).WithPhi(1)
	if p.TaskSeconds < 0.050 || p.TaskSeconds > 0.058 {
		t.Fatalf("Φ=1 ⇒ p = %v s, want ≈ 53 ms", p.TaskSeconds)
	}
	p = p.WithPhi(100000)
	hours := p.TaskSeconds / 3600
	if hours < 1.4 || hours > 1.6 {
		t.Fatalf("Φ=100000 ⇒ p = %v h, want ≈ 1.5 h", hours)
	}
	// And Phi() inverts WithPhi.
	if got := p.Phi(); math.Abs(got-100000) > 1 {
		t.Fatalf("Phi() = %v, want 100000", got)
	}
}

func TestEfficiencyIdentity(t *testing.T) {
	// E·M·N = n·p must hold exactly (definition of eq. 2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			ImageBits:   rng.Float64() * 1e8,
			Beta:        rng.Float64()*1e7 + 1,
			Delta:       rng.Float64()*1e6 + 1,
			N:           float64(rng.Intn(1e6) + 1),
			Tasks:       float64(rng.Intn(1e7) + 1),
			TaskInBits:  rng.Float64() * 1e5,
			TaskOutBits: rng.Float64() * 1e5,
			TaskSeconds: rng.Float64()*1000 + 1e-3,
		}
		lhs := p.Efficiency() * p.Makespan() * p.N
		rhs := p.Tasks * p.TaskSeconds
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyMonotoneInPhi(t *testing.T) {
	// Figure 6's headline shape: E grows with Φ for fixed n/N.
	base := Figure6Defaults(100, 10000)
	prev := -1.0
	for _, phi := range []float64{1, 10, 100, 1000, 10000, 100000} {
		e := base.WithPhi(phi).Efficiency()
		if e <= prev {
			t.Fatalf("E not increasing at Φ=%v: %v after %v", phi, e, prev)
		}
		if e <= 0 || e > 1 {
			t.Fatalf("E = %v out of (0,1]", e)
		}
		prev = e
	}
}

func TestEfficiencyMonotoneInRatio(t *testing.T) {
	// Higher n/N amortizes the wakeup: E grows with the ratio.
	prev := -1.0
	for _, ratio := range []float64{1, 10, 100, 1000} {
		e := Figure6Defaults(ratio, 10000).WithPhi(100).Efficiency()
		if e <= prev {
			t.Fatalf("E not increasing at n/N=%v", ratio)
		}
		prev = e
	}
}

func TestRatio100YieldsHighEfficiency(t *testing.T) {
	// "A ratio above 100 is generally enough to yield very high
	// efficiency for most practical applications."
	e := Figure6Defaults(100, 10000).WithPhi(1000).Efficiency()
	if e < 0.9 {
		t.Fatalf("E = %v at n/N=100, Φ=1000; paper promises ≥ 0.9", e)
	}
}

func TestMakespanDecomposition(t *testing.T) {
	p := Figure6Defaults(10, 1000).WithPhi(100)
	perTask := (p.TaskInBits+p.TaskOutBits)/p.Delta + p.TaskSeconds
	want := p.Wakeup() + 10*perTask
	if got := p.Makespan(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("M = %v, want %v", got, want)
	}
}

func TestParametricPhiInfinite(t *testing.T) {
	p := Params{TaskSeconds: 1, Delta: 1}
	if !math.IsInf(p.Phi(), 1) {
		t.Fatal("Φ of parametric app should be +Inf")
	}
}

func TestValidate(t *testing.T) {
	good := Figure6Defaults(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{Beta: 1},
		{Beta: 1, Delta: 1},
		{Beta: 1, Delta: 1, N: 1},
		{Beta: 1, Delta: 1, N: 1, Tasks: 1},
		{Beta: 1, Delta: 1, N: 1, Tasks: 1, TaskSeconds: 1, ImageBits: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestThroughputs(t *testing.T) {
	p := Params{N: 100, TaskSeconds: 2}
	if p.SingleThroughput() != 0.5 || p.IdealThroughput() != 50 {
		t.Fatal("throughput helpers wrong")
	}
}

func TestMakespanSynchronizedCeiling(t *testing.T) {
	p := Figure6Defaults(1, 100).WithPhi(100)
	p.Tasks = 101 // one task spills into a second round
	one := p
	one.Tasks = 100
	d := p.MakespanSynchronized(512) - one.MakespanSynchronized(512)
	if math.Abs(d-one.PerTaskSeconds(512)) > 1e-9 {
		t.Fatalf("spill round costs %v, want one full service time %v", d, one.PerTaskSeconds(512))
	}
}

func TestPerTaskSecondsComposition(t *testing.T) {
	p := Params{Delta: 1000, TaskInBits: 500, TaskOutBits: 300, TaskSeconds: 2}
	want := (512+500)/1000.0 + 2 + 300/1000.0
	if got := p.PerTaskSeconds(512); math.Abs(got-want) > 1e-12 {
		t.Fatalf("per-task = %v, want %v", got, want)
	}
}

func TestNodesForInvertsMakespan(t *testing.T) {
	p := Figure6Defaults(100, 1) // N overwritten below
	p = p.WithPhi(1000)
	p.Tasks = 50000
	target := 6000.0
	n := p.NodesFor(target)
	if n <= 0 {
		t.Fatal("target reported unreachable")
	}
	p.N = n
	if m := p.Makespan(); m > target {
		t.Fatalf("N=%v gives makespan %v > target %v", n, m, target)
	}
	// One node fewer must miss the target (minimality).
	p.N = n - 1
	if n > 1 && p.Makespan() <= target {
		t.Fatalf("N-1 also meets the target; NodesFor not minimal")
	}
	// Unreachable: target below the wakeup overhead.
	if got := p.NodesFor(p.Wakeup() / 2); got != 0 {
		t.Fatalf("unreachable target returned %v", got)
	}
}

func TestAvailability(t *testing.T) {
	cases := []struct{ on, off, want float64 }{
		{10800, 3600, 0.75},
		{3600, 3600, 0.5},
		{1, 0, 1},
		{0, 5, 0},
		{-1, 5, 0},
	}
	for _, c := range cases {
		if got := Availability(c.on, c.off); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Availability(%v,%v) = %v, want %v", c.on, c.off, got, c.want)
		}
	}
}

func TestRampUpShape(t *testing.T) {
	p := Figure6Defaults(10, 100)
	c := p.ImageBits / p.Beta // one carousel cycle
	if got := p.RampUp(0); got != 0 {
		t.Fatalf("RampUp(0) = %v, want 0", got)
	}
	if got := p.RampUp(c); got != 0 {
		t.Fatalf("RampUp(C) = %v, want 0 (first join at one full cycle)", got)
	}
	if got := p.RampUp(1.5 * c); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RampUp(1.5C) = %v, want 0.5", got)
	}
	if got := p.RampUp(2 * c); got != 1 {
		t.Fatalf("RampUp(2C) = %v, want 1", got)
	}
	if got := p.RampUp(10 * c); got != 1 {
		t.Fatalf("RampUp(10C) = %v, want 1", got)
	}
	// Monotone nondecreasing across the whole ramp.
	prev := -1.0
	for i := 0; i <= 300; i++ {
		v := p.RampUp(float64(i) / 100 * c)
		if v < prev {
			t.Fatalf("RampUp not monotone at t=%v cycles", float64(i)/100)
		}
		prev = v
	}
}

// TestRampUpMeanIsWakeup ties the curve to the paper's closed form: the
// mean of W ~ U(C,2C), computed as the integral of the survival
// function 1-F, must equal Wakeup() = 1.5·I/β.
func TestRampUpMeanIsWakeup(t *testing.T) {
	p := Figure6Defaults(10, 100)
	c := p.ImageBits / p.Beta
	const steps = 200000
	dt := 2.5 * c / steps
	var mean float64
	for i := 0; i < steps; i++ {
		tt := (float64(i) + 0.5) * dt
		mean += (1 - p.RampUp(tt)) * dt
	}
	if math.Abs(mean-p.Wakeup()) > 1e-3*p.Wakeup() {
		t.Fatalf("integral of survival = %v, want Wakeup() = %v", mean, p.Wakeup())
	}
}

func TestRampUpWithChurn(t *testing.T) {
	p := Figure6Defaults(10, 100)
	c := p.ImageBits / p.Beta
	meanOn := 10800.0
	for _, tt := range []float64{0.5 * c, 1.2 * c, 1.9 * c, 3 * c} {
		base := p.RampUp(tt)
		got := p.RampUpWithChurn(tt, meanOn)
		want := base * math.Exp(-tt/meanOn)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("RampUpWithChurn(%v) = %v, want %v", tt, got, want)
		}
		if got > base {
			t.Fatalf("churn raised the ramp at t=%v", tt)
		}
	}
	// No churn: meanOn ≤ 0 or +Inf degrade to the pure curve.
	if got := p.RampUpWithChurn(1.5*c, 0); got != p.RampUp(1.5*c) {
		t.Fatalf("meanOn=0 = %v, want plain RampUp", got)
	}
	if got := p.RampUpWithChurn(1.5*c, math.Inf(1)); got != p.RampUp(1.5*c) {
		t.Fatalf("meanOn=Inf = %v, want plain RampUp", got)
	}
}

// TestQuorumTimeInvertsRampUp: F(QuorumTime(q)) = q on the open ramp.
func TestQuorumTimeInvertsRampUp(t *testing.T) {
	p := Figure6Defaults(10, 100)
	c := p.ImageBits / p.Beta
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		tq := p.QuorumTime(q)
		if got := p.RampUp(tq); math.Abs(got-q) > 1e-12 {
			t.Fatalf("RampUp(QuorumTime(%v)) = %v", q, got)
		}
	}
	if got := p.QuorumTime(0); math.Abs(got-c) > 1e-12 {
		t.Fatalf("QuorumTime(0) = %v, want one cycle %v", got, c)
	}
	if got := p.QuorumTime(1.5); math.Abs(got-2*c) > 1e-12 {
		t.Fatalf("QuorumTime clamps at 2C, got %v", got)
	}
}
