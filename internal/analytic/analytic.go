// Package analytic implements the closed-form performance models of
// Section 5 of the OddCI paper: the wakeup overhead W = 1.5·I/β, the
// average job makespan (equation 1), the instance efficiency (equation
// 2), and the application-suitability index Φ.
//
// Erratum handled here: the paper prints Φ = (s+r)/(δ·p), but its own
// numeric anchors (Φ=1 ⇒ p ≈ 53 ms and Φ=100 000 ⇒ p ≈ 1.5 h with
// (s+r) = 1 KB and δ = 150 kbps) require the reciprocal. We therefore
// define Φ = p·δ/(s+r): the ratio of a task's compute time to its
// communication time, growing with suitability exactly as Figure 6
// describes.
package analytic

import (
	"errors"
	"math"
)

// Params describes one OddCI instance + job scenario in SI units (bits,
// bits per second, seconds).
type Params struct {
	// ImageBits is I, the application image size in bits.
	ImageBits float64
	// Beta is β, the spare broadcast-channel capacity in bps.
	Beta float64
	// Delta is δ, the per-node direct-channel capacity in bps.
	Delta float64
	// N is the number of processing nodes in the instance.
	N float64
	// Tasks is n, the number of tasks in the job.
	Tasks float64
	// TaskInBits is s̄, the average task input size in bits (0 for
	// parametric applications).
	TaskInBits float64
	// TaskOutBits is r̄, the average task result size in bits.
	TaskOutBits float64
	// TaskSeconds is p̄, the average task processing time on a reference
	// set-top box.
	TaskSeconds float64
}

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Beta <= 0:
		return errors.New("analytic: β must be positive")
	case p.Delta <= 0:
		return errors.New("analytic: δ must be positive")
	case p.N <= 0:
		return errors.New("analytic: N must be positive")
	case p.Tasks <= 0:
		return errors.New("analytic: n must be positive")
	case p.TaskSeconds <= 0:
		return errors.New("analytic: p must be positive")
	case p.ImageBits < 0 || p.TaskInBits < 0 || p.TaskOutBits < 0:
		return errors.New("analytic: sizes must be non-negative")
	}
	return nil
}

// Wakeup returns W = 1.5·I/β in seconds: the average time for every
// tuned node to assemble the image from the cyclic carousel.
func (p Params) Wakeup() float64 { return 1.5 * p.ImageBits / p.Beta }

// Makespan returns equation (1):
//
//	M = 1.5·I/β + (n/N)·((s+r)/δ + p)
func (p Params) Makespan() float64 {
	return p.Wakeup() + p.Tasks/p.N*((p.TaskInBits+p.TaskOutBits)/p.Delta+p.TaskSeconds)
}

// Efficiency returns equation (2): E = n·p/(M·N), the ratio of achieved
// throughput n/M to the ideal N/p.
func (p Params) Efficiency() float64 {
	return p.Tasks * p.TaskSeconds / (p.Makespan() * p.N)
}

// Phi returns the suitability index Φ = p·δ/(s+r) (see the package note
// about the paper's typo). It is +Inf for parametric applications with
// no task I/O.
func (p Params) Phi() float64 {
	io := p.TaskInBits + p.TaskOutBits
	if io == 0 {
		return math.Inf(1)
	}
	return p.TaskSeconds * p.Delta / io
}

// WithPhi returns a copy of p whose TaskSeconds is set so that the
// scenario has suitability phi, holding (s+r) and δ fixed — how the
// Figure 6/7 sweeps are parameterized.
func (p Params) WithPhi(phi float64) Params {
	io := p.TaskInBits + p.TaskOutBits
	p.TaskSeconds = phi * io / p.Delta
	return p
}

// Figure6Defaults returns the scenario of Figures 6 and 7: I = 10 MB,
// β = 1 Mbps, δ = 150 kbps, (s+r) = 1 KB split evenly, N fixed and n
// chosen by the caller via the ratio n/N.
func Figure6Defaults(ratio, nodes float64) Params {
	return Params{
		ImageBits:   10 * 1e6 * 8, // the paper's "10 Mbytes" image (decimal MB)
		Beta:        1e6,
		Delta:       150e3,
		N:           nodes,
		Tasks:       ratio * nodes,
		TaskInBits:  512 * 8,
		TaskOutBits: 512 * 8,
		TaskSeconds: 0.0546, // Φ=1 anchor; callers override via WithPhi
	}
}

// PerTaskSeconds returns the full per-task service time a worker pays:
// request + input at δ, compute, result at δ. reqBits is the pull
// request overhead (the simulator uses 512 bits).
func (p Params) PerTaskSeconds(reqBits float64) float64 {
	return (reqBits+p.TaskInBits)/p.Delta + p.TaskSeconds + p.TaskOutBits/p.Delta
}

// MakespanSynchronized returns the exact makespan of the discrete model
// with synchronized joins: every node starts pulling when the first
// full carousel cycle completes (C = I/β), the pull queue balances the
// load to within one task, and the last node finishes after ⌈n/N⌉
// service times. The continuous model (Makespan) charges the 1.5-cycle
// random-phase wakeup and a fractional n/N instead; this variant is
// what the live system reproduces exactly when agents are resident
// before the wakeup (see the DES cross-validation).
func (p Params) MakespanSynchronized(reqBits float64) float64 {
	cycle := p.ImageBits / p.Beta
	rounds := math.Ceil(p.Tasks / p.N)
	return cycle + rounds*p.PerTaskSeconds(reqBits)
}

// SingleThroughput returns 1/p, the reference single-node throughput.
func (p Params) SingleThroughput() float64 { return 1 / p.TaskSeconds }

// IdealThroughput returns N/p.
func (p Params) IdealThroughput() float64 { return p.N / p.TaskSeconds }

// Availability returns the stationary availability a = on/(on+off) of a
// node alternating exponentially distributed on and off periods with
// the given means (seconds): the probability that a uniformly chosen
// instant finds the node powered on and tuned, and therefore the
// expected fraction of the PNA population a wakeup broadcast reaches.
// The paper sizes instances against exactly this fraction (§5.2.1's
// "nodes that will remain tuned"); the fleet harness validates it
// empirically at 10⁶ nodes.
func Availability(meanOn, meanOff float64) float64 {
	if meanOn <= 0 {
		return 0
	}
	if meanOff < 0 {
		meanOff = 0
	}
	return meanOn / (meanOn + meanOff)
}

// RampUp returns F(t): the fraction of woken receivers that have
// assembled the image t seconds after the wakeup broadcast, under the
// random-phase carousel model behind W = 1.5·I/β. A receiver joining
// the carousel at a uniformly random phase completes in W ~ U(C, 2C)
// with C = I/β, so the ramp-up curve is zero through the first cycle,
// linear across the second, and one thereafter. Its mean recovers
// Wakeup() = 1.5·C.
func (p Params) RampUp(t float64) float64 {
	c := p.ImageBits / p.Beta
	switch {
	case c <= 0:
		return 1 // empty image: joining is instantaneous
	case t <= c:
		return 0
	case t >= 2*c:
		return 1
	default:
		return (t - c) / c
	}
}

// RampUpWithChurn corrects RampUp for power churn with mean on-time
// meanOn seconds. Exponential on-periods are memoryless, so a node
// available at the wakeup instant is still powered on t seconds later
// with probability e^(−t/meanOn) regardless of how long it had already
// been on; the expected fraction of the wakeup-time population that has
// completed its initial (uninterrupted) image load by t and is still on
// is therefore F(t)·e^(−t/meanOn). meanOn ≤ 0 or +Inf means no churn.
func (p Params) RampUpWithChurn(t, meanOn float64) float64 {
	f := p.RampUp(t)
	if meanOn <= 0 || math.IsInf(meanOn, 1) {
		return f
	}
	return f * math.Exp(-t/meanOn)
}

// QuorumTime inverts RampUp: the time after the wakeup broadcast at
// which a fraction frac ∈ [0, 1] of the woken population has joined,
// ignoring churn: t = C·(1+frac). The first join lands at one full
// cycle, the last at two.
func (p Params) QuorumTime(frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.ImageBits / p.Beta * (1 + frac)
}

// NodesFor inverts equation (1): the smallest instance size N that
// completes n tasks within target seconds, or 0 when the target is
// unreachable (it is below the wakeup overhead plus one task's
// service). This is the Provider's sizing question: "how many receivers
// do I need to finish by T?".
func (p Params) NodesFor(targetSeconds float64) float64 {
	perTask := (p.TaskInBits+p.TaskOutBits)/p.Delta + p.TaskSeconds
	budget := targetSeconds - p.Wakeup()
	if budget < perTask {
		return 0
	}
	return math.Ceil(p.Tasks * perTask / budget)
}
