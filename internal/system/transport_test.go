package system

import (
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// The whole OddCI control plane — wakeup, image staging, heartbeats,
// task execution — must run unchanged over the IP-multicast substrate
// of §3.3.
func TestEndToEndOverIPMulticast(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             30,
		Seed:              41,
		Transport:         TransportIPMulticast,
		HeartbeatPeriod:   30 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	gen := workload.Generator{Name: "mcast", Tasks: 90, InputBytes: 512, OutputBytes: 256, MeanSeconds: 5}
	job, _ := gen.Generate()
	h, err := sys.Backend.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(1 << 20),
		Target:             30,
		InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.OnComplete(func(time.Time) { sys.Shutdown() })
	clk.Wait()
	if len(h.Results()) != 90 {
		t.Fatalf("results = %d", len(h.Results()))
	}
}

// With identical parameters and late joiners at random carousel phases,
// the multicast transport's inherent chunk caching must not be slower
// than the DTV file-granularity receiver.
func TestMulticastJoinNotSlowerThanDTV(t *testing.T) {
	run := func(tr Transport) time.Duration {
		clk := simtime.NewSim(epoch)
		sys, err := New(Config{
			Clock:             clk,
			Nodes:             20,
			Seed:              42,
			Transport:         tr,
			HeartbeatPeriod:   30 * time.Second,
			MaintenancePeriod: time.Hour,
			InitialPowerOn:    0.001, // almost everyone joins late
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              testImage(2 << 20),
			Target:             20,
			InitialProbability: 1,
		}); err != nil {
			t.Fatal(err)
		}
		// Power the fleet on at staggered times mid-cycle, then measure
		// when everyone has joined.
		for i, box := range sys.STBs {
			box := box
			clk.AfterFunc(time.Duration(30+i*7)*time.Second, func() { box.PowerOn() })
		}
		var allBusyAt time.Duration
		var check func()
		check = func() {
			if sys.LiveBusy(1) == len(sys.STBs) {
				allBusyAt = clk.Now().Sub(epoch)
				sys.Shutdown()
				return
			}
			clk.AfterFunc(5*time.Second, check)
		}
		clk.AfterFunc(time.Minute, check)
		clk.AfterFunc(2*time.Hour, sys.Shutdown) // safety valve
		clk.Wait()
		if allBusyAt == 0 {
			t.Fatalf("fleet never fully joined over transport %d", tr)
		}
		return allBusyAt
	}
	dtv := run(TransportDTV)
	mcast := run(TransportIPMulticast)
	t.Logf("full join: dtv=%v multicast=%v", dtv, mcast)
	if mcast > dtv {
		t.Fatalf("multicast join (%v) slower than DTV (%v)", mcast, dtv)
	}
}
