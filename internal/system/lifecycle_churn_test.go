package system

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/core/provider"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/trace"
)

// TestLifecycleChurnUnderFaults is the end-to-end hardening stress:
// hundreds of create→destroy rounds against a head-end whose carousel
// updates fail probabilistically, over a node population that
// power-cycles underneath. It asserts the control plane stays bounded
// (control file, carousel, instance table), drains back to baseline
// once the churn stops, and that every surviving PNA observed its
// reset — no instance keeps ghost members.
func TestLifecycleChurnUnderFaults(t *testing.T) {
	const cycles = 212

	clk := simtime.NewSim(epoch)
	rec := trace.NewRecorder(1 << 17)
	plan := netsim.NewFaultPlan(rand.New(rand.NewSource(23)), 0.25, 3)
	sys, err := New(Config{
		Clock:                clk,
		Nodes:                12,
		Seed:                 7,
		HeartbeatPeriod:      15 * time.Second,
		MaintenancePeriod:    10 * time.Second,
		Trace:                rec,
		HeadEndFaults:        plan,
		ResetRetransmitTicks: 3,
		RefreshRetryBase:     2 * time.Second,
		RefreshRetryMax:      8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	for _, box := range sys.STBs {
		if err := box.StartChurn(5*time.Minute, 45*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	var (
		created                                       []instance.ID
		skips, destroys                               int
		errs                                          []error
		finalBytes, finalFiles, finalLive, finalOnAir int
		ghosts                                        int
	)
	clk.Go(func() {
		spec := controller.InstanceSpec{
			Image:              testImage(1 << 10),
			Target:             3,
			InitialProbability: 0.6,
			HeartbeatPeriod:    15 * time.Second,
		}
		for cycle := 0; cycle < cycles; cycle++ {
			var inst *provider.Instance
			for attempt := 0; attempt < 8; attempt++ {
				in, err := sys.Provider.Create(spec)
				if err == nil {
					inst = in
					break
				}
				// Injected staging failure; the create rolled back.
				clk.Sleep(3 * time.Second)
			}
			if inst == nil {
				skips++
				clk.Sleep(5 * time.Second)
				continue
			}
			created = append(created, inst.ID())
			clk.Sleep(10 * time.Second)
			if err := inst.Destroy(); err != nil {
				errs = append(errs, fmt.Errorf("cycle %d destroy: %w", cycle, err))
			} else {
				destroys++
			}
			clk.Sleep(5 * time.Second)
			if cycle%20 == 0 {
				_, files, live, onAir := sys.Controller.ContentStats()
				if live > 2 || onAir > 10 || files != 2+live {
					errs = append(errs, fmt.Errorf(
						"cycle %d control plane unbounded: files=%d live=%d onAir=%d",
						cycle, files, live, onAir))
				}
			}
		}
		// Quiet period: backoff retries, the retransmission windows and
		// heartbeat-driven resets all drain.
		clk.Sleep(2 * time.Minute)
		finalBytes, finalFiles, finalLive, finalOnAir = sys.Controller.ContentStats()
		for _, id := range created {
			ghosts += sys.LiveBusy(id)
		}
		sys.Shutdown()
	})
	clk.Wait()

	for _, err := range errs {
		t.Error(err)
	}
	if destroys < 200 {
		t.Fatalf("only %d/%d cycles completed (skips=%d); need ≥200 rounds", destroys, cycles, skips)
	}
	if finalBytes != 0 || finalFiles != 2 || finalLive != 0 || finalOnAir != 0 {
		t.Fatalf("control plane did not drain: bytes=%d files=%d live=%d onAir=%d",
			finalBytes, finalFiles, finalLive, finalOnAir)
	}
	if ghosts != 0 {
		t.Fatalf("%d ghost members survived their instances' resets", ghosts)
	}
	if gc := rec.Count(trace.KindGC); gc != destroys {
		t.Fatalf("gc events = %d, destroys = %d; every destroyed instance must be GC'd exactly once", gc, destroys)
	}
	injected, failed := plan.Stats()
	if failed == 0 {
		t.Fatalf("plan injected %d updates, failed none — faults never exercised", injected)
	}
	if rec.Count(trace.KindRefreshRetry) == 0 {
		t.Fatal("no refresh-retry events despite injected failures")
	}
	if rec.Count(trace.KindRefreshOK) == 0 {
		t.Fatal("no refresh recoveries recorded")
	}
}
