package system

import (
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/simtime"
)

// A heterogeneous population: wakeup requirements must select exactly
// the compliant stratum — "the PNA assesses its own compliance with the
// requirements present in the message".
func TestRequirementsSelectStratum(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             60,
		Seed:              31,
		HeartbeatPeriod:   30 * time.Second,
		MaintenancePeriod: time.Hour, // single broadcast, no recomposition
		DeviceMix: []DeviceSpec{
			{Fraction: 0.5, Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}},
			{Fraction: 0.3, Profile: instance.DeviceProfile{Class: instance.ClassMobile, MemMB: 128, CPUScore: 40}},
			{Fraction: 0.2, Profile: instance.DeviceProfile{Class: instance.ClassConsole, MemMB: 512, CPUScore: 400}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	// Count the actual strata.
	var stbs, mobiles, consoles int
	for _, box := range sys.STBs {
		switch box.Profile().Class {
		case instance.ClassSTB:
			stbs++
		case instance.ClassMobile:
			mobiles++
		case instance.ClassConsole:
			consoles++
		}
	}
	if stbs == 0 || mobiles == 0 || consoles == 0 {
		t.Fatalf("mix not drawn: %d/%d/%d", stbs, mobiles, consoles)
	}

	// Instance restricted to consoles with high CPU.
	if _, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             consoles,
		InitialProbability: 1,
		Requirements: instance.Requirements{
			Class:       instance.ClassConsole,
			MinCPUScore: 200,
		},
	}); err != nil {
		t.Fatal(err)
	}
	var joined int
	clk.AfterFunc(5*time.Minute, func() {
		joined = sys.LiveBusy(1)
		sys.Shutdown()
	})
	clk.Wait()
	if joined != consoles {
		t.Fatalf("joined = %d, want exactly the %d consoles", joined, consoles)
	}
}

func TestDeviceMixValidation(t *testing.T) {
	clk := simtime.NewSim(epoch)
	_, err := New(Config{
		Clock: clk, Nodes: 2, Seed: 1,
		DeviceMix: []DeviceSpec{{Fraction: -1}},
	})
	if err == nil {
		t.Fatal("negative fraction accepted")
	}
}
