package system

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/core/provider"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/trace"
	"oddci/internal/workload"
)

// TestControllerCrashRecoveryUnderFaults is the durability battery's
// end-to-end: a deployment with a durable state dir runs a real backend
// job while throwaway instances churn against a fault-injected head-end;
// the controller is then hard-stopped mid-round — inside a destroyed
// instance's reset-retransmission window — and restarted from
// snapshot+journal. The recovered control plane must re-adopt the
// surviving workers from their heartbeats (no duplicate wakeups),
// reconverge to the keeper's target, GC every destroyed instance exactly
// once across the crash, and the job must still complete.
func TestControllerCrashRecoveryUnderFaults(t *testing.T) {
	const (
		nodes = 10
		tasks = 600
	)
	clk := simtime.NewSim(epoch)
	rec := trace.NewRecorder(1 << 16)
	plan := netsim.NewFaultPlan(rand.New(rand.NewSource(31)), 0.2, 3)
	sys, err := New(Config{
		Clock:                clk,
		Nodes:                nodes,
		Seed:                 11,
		HeartbeatPeriod:      15 * time.Second,
		MaintenancePeriod:    10 * time.Second,
		Trace:                rec,
		HeadEndFaults:        plan,
		ResetRetransmitTicks: 3,
		RefreshRetryBase:     2 * time.Second,
		RefreshRetryMax:      8 * time.Second,
		StateDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	job, err := (&workload.Generator{
		Name: "crash", ImageBytes: 1 << 18, Tasks: tasks,
		InputBytes: 512, OutputBytes: 256, MeanSeconds: 10,
	}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Backend.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	var jobDone atomic.Bool
	h.OnComplete(func(time.Time) { jobDone.Store(true) })

	createWithRetry := func(spec controller.InstanceSpec) *provider.Instance {
		for attempt := 0; attempt < 8; attempt++ {
			in, err := sys.Provider.Create(spec)
			if err == nil {
				return in
			}
			clk.Sleep(3 * time.Second) // injected staging failure, rolled back
		}
		return nil
	}

	var (
		errs                                  []error
		destroys                              int
		recovered                             bool
		preWake, postWake, postBusy, liveBusy int
		goneErr                               error
		finalLive, finalOnAir                 int
	)
	clk.Go(func() {
		keeper := createWithRetry(controller.InstanceSpec{
			Image: testImage(1 << 18), Target: nodes,
			InitialProbability: 1, HeartbeatPeriod: 15 * time.Second,
		})
		if keeper == nil {
			errs = append(errs, errors.New("keeper instance never staged"))
			sys.Shutdown()
			return
		}
		clk.Sleep(3 * time.Minute) // wakeup, image download, joins, convergence
		if st, err := keeper.Status(); err != nil || st.Busy != nodes {
			errs = append(errs, fmt.Errorf("keeper did not converge pre-crash: %+v, %v", st, err))
		} else {
			preWake = st.Wakeups
		}

		// Lifecycle churn against the faulty head-end: every round
		// journals a create and a destroy; early rounds also GC pre-crash.
		churnSpec := controller.InstanceSpec{
			Image: testImage(4 << 10), Target: 2,
			InitialProbability: 0.5, HeartbeatPeriod: 15 * time.Second,
		}
		for round := 0; round < 4; round++ {
			if in := createWithRetry(churnSpec); in != nil {
				clk.Sleep(10 * time.Second)
				if err := in.Destroy(); err != nil {
					errs = append(errs, fmt.Errorf("churn round %d destroy: %w", round, err))
				} else {
					destroys++
				}
			}
			clk.Sleep(10 * time.Second)
		}
		// Final round: crash inside the fresh reset-retransmission window.
		last := createWithRetry(churnSpec)
		if last == nil {
			errs = append(errs, errors.New("final churn instance never staged"))
			sys.Shutdown()
			return
		}
		clk.Sleep(5 * time.Second)
		if err := last.Destroy(); err != nil {
			errs = append(errs, fmt.Errorf("final destroy: %w", err))
		} else {
			destroys++
		}
		if err := sys.CrashController(); err != nil {
			errs = append(errs, fmt.Errorf("crash: %w", err))
		}
		// The control plane is dead: heartbeats go unanswered, the
		// carousel keeps cycling, the workers keep computing.
		clk.Sleep(45 * time.Second)
		if err := sys.RestartController(); err != nil {
			errs = append(errs, fmt.Errorf("restart: %w", err))
			sys.Shutdown()
			return
		}
		recovered = sys.Controller.Recovered()

		// Adoption grace (3 × 15s heartbeat) plus several maintenance
		// passes: survivors re-adopt, the interrupted reset window runs
		// down, the destroyed instance is GC'd.
		clk.Sleep(150 * time.Second)
		if st, err := keeper.Status(); err != nil {
			errs = append(errs, fmt.Errorf("keeper status post-restart: %w", err))
		} else {
			postWake, postBusy = st.Wakeups, st.Busy
		}
		liveBusy = sys.LiveBusy(keeper.ID())
		_, goneErr = last.Status()

		// Let the job finish (it must survive the crash), then drain.
		for waited := 0; !jobDone.Load() && waited < 240; waited++ {
			clk.Sleep(5 * time.Second)
		}
		clk.Sleep(2 * time.Minute)
		_, _, finalLive, finalOnAir = sys.ContentStats()
		sys.Shutdown()
	})
	clk.Wait()

	for _, err := range errs {
		t.Error(err)
	}
	if !recovered {
		t.Fatal("restarted controller did not report Recovered")
	}
	if preWake != 1 || postWake != preWake {
		t.Fatalf("wakeups across crash: pre=%d post=%d — restart must re-adopt, not re-wake", preWake, postWake)
	}
	if postBusy != nodes || liveBusy != nodes {
		t.Fatalf("keeper did not reconverge: controller view=%d oracle=%d want %d", postBusy, liveBusy, nodes)
	}
	if !errors.Is(goneErr, controller.ErrInstanceGone) {
		t.Fatalf("crash-window destroyed instance = %v, want ErrInstanceGone after recovered GC", goneErr)
	}
	if gc := rec.Count(trace.KindGC); gc != destroys {
		t.Fatalf("gc events = %d, destroys = %d; recovery must GC each destroyed instance exactly once", gc, destroys)
	}
	if !jobDone.Load() {
		t.Fatal("backend job did not complete across the controller crash")
	}
	if len(h.Results()) != tasks {
		t.Fatalf("results = %d, want %d", len(h.Results()), tasks)
	}
	if finalLive != 1 || finalOnAir != 0 {
		t.Fatalf("control plane did not drain: live=%d onAir=%d", finalLive, finalOnAir)
	}
	if injected, failed := plan.Stats(); injected == 0 || failed == 0 {
		t.Fatalf("fault plan never exercised: injected=%d failed=%d", injected, failed)
	}
}
