// Package system wires a complete OddCI-DTV deployment over virtual
// time: one broadcast head-end (Controller + carousel + AIT), one
// Backend, one Provider, and a fleet of simulated set-top boxes running
// PNA Xlets under real DTV middleware. Every component is the same code
// that unit tests exercise in isolation; this package only assembles
// and starts them.
//
// The same wiring runs under the wall clock (demos) and the
// discrete-event clock (experiments), per the simtime contract.
package system

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oddci/internal/control"
	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/core/dve"
	"oddci/internal/core/instance"
	"oddci/internal/core/pna"
	"oddci/internal/core/provider"
	"oddci/internal/dsmcc"
	"oddci/internal/flute"
	"oddci/internal/journal"
	"oddci/internal/middleware"
	"oddci/internal/netsim"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/stb"
	"oddci/internal/trace"
)

// Config sizes a deployment. Zero values select the paper's defaults.
type Config struct {
	Clock simtime.Clock
	// Nodes is the number of set-top boxes.
	Nodes int
	// Beta is the spare broadcast capacity in bps (default 1 Mbps).
	Beta float64
	// Delta is the per-node direct-channel capacity in bps each way
	// (default 150 kbps).
	Delta float64
	// DirectLatency is the direct channels' propagation delay.
	DirectLatency time.Duration
	// Seed drives every random stream in the deployment.
	Seed int64
	// HeartbeatPeriod is the default PNA reporting interval.
	HeartbeatPeriod time.Duration
	// MaintenancePeriod is the Controller's instance-size loop.
	MaintenancePeriod time.Duration
	// AITPeriod is the signalling repetition interval.
	AITPeriod time.Duration
	// Strategy selects the carousel receiver behaviour.
	Strategy dsmcc.ReceiverStrategy
	// StandbyFraction of nodes idle in standby; the rest are in use.
	StandbyFraction float64
	// Perf is the device performance model (default: paper calibration).
	Perf stb.PerfModel
	// InitialPowerOn is the fraction of nodes powered at Start
	// (default 1).
	InitialPowerOn float64
	// Replication runs every task on this many distinct nodes with
	// majority voting at the Backend (default 1).
	Replication int
	// TargetHeartbeatRate, if positive, lets the Controller re-tune
	// idle nodes' heartbeat periods to bound its inbound load.
	TargetHeartbeatRate float64
	// Trace, if set, records control-plane events (wakeups, joins,
	// resets, power transitions, instance lifecycle, refresh health)
	// into a timeline.
	Trace *trace.Recorder
	// Obs, if set, collects telemetry from every component
	// (oddci_controller_*, oddci_backend_*, oddci_pna_*, oddci_dve_*,
	// oddci_dsmcc_*, oddci_netsim_*).
	Obs *obs.Registry
	// Spans, if set, records end-to-end causal traces: wakeup
	// broadcasts start root spans, PNAs hang join/image-load/dve-start
	// under them, and the Backend closes each tree with
	// dispatch/lease-expiry/commit spans.
	Spans *span.Collector
	// HeadEndFaults, if set, injects failures into the Controller's
	// carousel updates (not into the receivers), exercising the
	// refresh-retry path. Start is never injected.
	HeadEndFaults *netsim.FaultPlan
	// Adversary, if set, turns the assigned fraction of nodes byzantine:
	// their result submissions are rewritten on the wire (wrong payloads,
	// forged or replayed credentials) per the plan's deterministic
	// per-node streams. The nodes run the stock worker; only their
	// uplinks lie.
	Adversary *netsim.AdversaryPlan
	// CredentialMode selects the Backend's result-credential policy
	// (default CredOff: the pre-credential wire).
	CredentialMode backend.CredentialMode
	// ResetRetransmitTicks is how many maintenance passes a destroyed
	// instance's reset stays on air before GC (default 3).
	ResetRetransmitTicks int
	// RefreshRetryBase and RefreshRetryMax bound the Controller's
	// head-end retry backoff (defaults 5s and 2min).
	RefreshRetryBase time.Duration
	RefreshRetryMax  time.Duration
	// Transport selects the broadcast substrate: the DTV DSM-CC
	// carousel (default) or the FLUTE-style IP-multicast caster of
	// §3.3.
	Transport Transport
	// DeviceMix, if non-empty, draws each node's profile from these
	// weighted specs (fractions are normalized); empty means a uniform
	// reference-STB population. This is §3's heterogeneous device
	// universe — wakeup requirements select within it.
	DeviceMix []DeviceSpec
	// StateDir, if set, makes the control plane durable: the Controller
	// journals lifecycle mutations there, and CrashController /
	// RestartController exercise a hard stop + snapshot/journal recovery
	// while the carousel keeps cycling and the devices stay up.
	StateDir string
	// ChunkCacheBytes gives every set-top box a persistent
	// content-addressed chunk cache of this size (surviving power
	// cycles), so image updates re-stage as deltas: unchanged carousel
	// modules are served locally at DII latency. Zero disables caching;
	// negative selects dsmcc.DefaultChunkCacheBytes.
	ChunkCacheBytes int64
}

// DeviceSpec is one stratum of a heterogeneous population.
type DeviceSpec struct {
	Fraction float64
	Profile  instance.DeviceProfile
}

// Transport enumerates broadcast substrates.
type Transport int

// Broadcast substrates (§3.3 enabling technologies).
const (
	TransportDTV Transport = iota
	TransportIPMulticast
)

func (c *Config) fill() error {
	if c.Clock == nil {
		return errors.New("system: clock is required")
	}
	if c.Nodes <= 0 {
		return errors.New("system: need at least one node")
	}
	if c.Beta == 0 {
		c.Beta = 1e6
	}
	if c.Delta == 0 {
		c.Delta = 150e3
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = time.Minute
	}
	if c.MaintenancePeriod <= 0 {
		c.MaintenancePeriod = time.Minute
	}
	if c.AITPeriod <= 0 {
		c.AITPeriod = middleware.DefaultAITPeriod
	}
	if c.InitialPowerOn == 0 {
		c.InitialPowerOn = 1
	}
	if c.InitialPowerOn < 0 || c.InitialPowerOn > 1 || c.StandbyFraction < 0 || c.StandbyFraction > 1 {
		return errors.New("system: fractions must be in [0,1]")
	}
	return nil
}

// System is an assembled deployment.
type System struct {
	cfg Config

	Clock       simtime.Clock
	Controller  *controller.Controller
	Provider    *provider.Provider
	Backend     *backend.Backend
	Broadcaster middleware.ObjectCarousel
	Signalling  *middleware.Signalling
	Registry    *dve.Registry
	STBs        []*stb.STB

	controllerPub ed25519.PublicKey

	// Durable control-plane state (Config.StateDir): the journal store,
	// the head-end handle and controller config template needed to
	// rebuild a Controller after a crash, and a dedicated restart rng
	// stream so recovery does not perturb the deployment's other
	// deterministic draws.
	store      *journal.Store
	head       controller.HeadEnd
	ctrlCfg    controller.Config
	restartRng *rand.Rand

	mu      sync.Mutex
	byInst  map[instance.ID]map[uint64]bool // live busy membership, direct observation
	started bool
	crashed bool
}

// New assembles (but does not start) a deployment.
func New(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	clk := cfg.Clock
	rng := rand.New(rand.NewSource(cfg.Seed))

	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("system: keygen: %w", err)
	}

	// The broadcast substrate: both implement the Controller's HeadEnd
	// and the middleware's ObjectCarousel, so the rest of the system is
	// identical either way.
	var bcast interface {
		controller.HeadEnd
		middleware.ObjectCarousel
	}
	switch cfg.Transport {
	case TransportIPMulticast:
		caster, err := flute.NewCaster(clk, cfg.Beta)
		if err != nil {
			return nil, err
		}
		bcast = caster
	default:
		car, err := dsmcc.NewCarousel(0x300, 0)
		if err != nil {
			return nil, err
		}
		b, err := dsmcc.NewBroadcaster(clk, car, cfg.Beta)
		if err != nil {
			return nil, err
		}
		b.Instrument(cfg.Obs)
		bcast = b
	}
	sig := middleware.NewSignalling(clk, cfg.AITPeriod)

	// Fault injection wraps only the Controller's transmit path; the
	// receivers keep reading whatever the carousel last committed.
	head := controller.HeadEnd(bcast)
	if cfg.HeadEndFaults != nil {
		head = &faultyHeadEnd{inner: bcast, plan: cfg.HeadEndFaults}
		cfg.HeadEndFaults.Instrument(cfg.Obs, "headend")
	}

	var onLifecycle func(controller.LifecycleEvent)
	if cfg.Trace != nil {
		onLifecycle = func(ev controller.LifecycleEvent) {
			var kind trace.Kind
			detail := ""
			switch ev.Kind {
			case controller.LifecycleCreated:
				kind = trace.KindCreate
			case controller.LifecycleTrimmed:
				kind = trace.KindTrim
			case controller.LifecycleDestroyed:
				kind = trace.KindDestroy
			case controller.LifecycleGCed:
				kind = trace.KindGC
			case controller.LifecycleRefreshRetry:
				kind, detail = trace.KindRefreshRetry, fmt.Sprintf("attempt=%d", ev.Attempt)
			case controller.LifecycleRefreshRecovered:
				kind, detail = trace.KindRefreshOK, fmt.Sprintf("attempts=%d", ev.Attempt)
			default:
				// Recompositions already surface as wakeup events.
				return
			}
			cfg.Trace.Record(trace.Event{
				At: clk.Now(), Kind: kind, Node: ev.Node, Instance: uint64(ev.Instance), Detail: detail,
			})
		}
	}

	ctrlCfg := controller.Config{
		Clock:                clk,
		Broadcaster:          head,
		Signalling:           sig,
		Key:                  priv,
		OrgID:                0x0DDC1,
		MaintenancePeriod:    cfg.MaintenancePeriod,
		TargetHeartbeatRate:  cfg.TargetHeartbeatRate,
		ResetRetransmitTicks: cfg.ResetRetransmitTicks,
		RefreshRetryBase:     cfg.RefreshRetryBase,
		RefreshRetryMax:      cfg.RefreshRetryMax,
		Obs:                  cfg.Obs,
		Spans:                cfg.Spans,
		OnLifecycle:          onLifecycle,
		OnWakeup: func(id instance.ID, seq uint32, probability float64) {
			if cfg.Trace != nil {
				cfg.Trace.Record(trace.Event{
					At: clk.Now(), Kind: trace.KindWakeup, Instance: uint64(id),
					Detail: fmt.Sprintf("seq=%d p=%.2f", seq, probability),
				})
			}
		},
	}
	var store *journal.Store
	if cfg.StateDir != "" {
		var err error
		store, err = journal.Open(cfg.StateDir, journal.Options{Obs: cfg.Obs, Clock: clk})
		if err != nil {
			return nil, err
		}
	}
	runCfg := ctrlCfg
	runCfg.Journal = store
	runCfg.Rng = rand.New(rand.NewSource(rng.Int63()))
	ctrl, err := controller.New(runCfg)
	if err != nil {
		return nil, err
	}
	beCfg := backend.Config{Clock: clk, Replication: cfg.Replication, Obs: cfg.Obs, Spans: cfg.Spans, CredentialMode: cfg.CredentialMode}
	if cfg.CredentialMode != backend.CredOff {
		// Deterministic MAC secret: derived from the deployment seed so
		// credentialed runs replay bit-identically.
		secret := make([]byte, 32)
		rng.Read(secret)
		beCfg.CredentialSecret = secret
	}
	if cfg.Adversary != nil {
		// Facing an adversary, track credibility even at Replication 1 so
		// credential rejections still quarantine.
		beCfg.TrackCredibility = true
		cfg.Adversary.Instrument(cfg.Obs, "adversary")
	}
	be, err := backend.New(beCfg)
	if err != nil {
		return nil, err
	}
	reg := dve.NewRegistry()
	reg.Register(backend.WorkerEntryPoint, backend.Worker)

	s := &System{
		cfg:           cfg,
		Clock:         clk,
		Controller:    ctrl,
		Provider:      provider.New(ctrl),
		Backend:       be,
		Broadcaster:   bcast,
		Signalling:    sig,
		Registry:      reg,
		controllerPub: pub,
		store:         store,
		head:          head,
		ctrlCfg:       ctrlCfg,
		restartRng:    rand.New(rand.NewSource(rng.Int63())),
		byInst:        make(map[instance.ID]map[uint64]bool),
	}

	var mixTotal float64
	for _, d := range cfg.DeviceMix {
		if d.Fraction <= 0 {
			return nil, errors.New("system: device-mix fractions must be positive")
		}
		mixTotal += d.Fraction
	}
	drawProfile := func(r *rand.Rand) instance.DeviceProfile {
		if len(cfg.DeviceMix) == 0 {
			return instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
		}
		x := r.Float64() * mixTotal
		for _, d := range cfg.DeviceMix {
			if x < d.Fraction {
				return d.Profile
			}
			x -= d.Fraction
		}
		return cfg.DeviceMix[len(cfg.DeviceMix)-1].Profile
	}

	var cacheMet *dsmcc.CacheMetrics
	if cfg.ChunkCacheBytes != 0 {
		cacheMet = dsmcc.NewCacheMetrics(cfg.Obs)
	}
	linkCfg := netsim.LinkConfig{RateBps: cfg.Delta, Latency: cfg.DirectLatency}
	for i := 0; i < cfg.Nodes; i++ {
		nodeID := uint64(i + 1)
		nodeRng := rand.New(rand.NewSource(rng.Int63()))
		mode := stb.InUse
		if nodeRng.Float64() < cfg.StandbyFraction {
			mode = stb.Standby
		}
		box, err := stb.New(stb.Config{
			ID:          nodeID,
			Clock:       clk,
			Broadcaster: bcast,
			Signalling:  sig,
			Profile:     drawProfile(nodeRng),
			Perf:        cfg.Perf,
			Mode:        mode,
			Strategy:    cfg.Strategy,
			Rng:         nodeRng,

			ChunkCacheBytes: cfg.ChunkCacheBytes,
			CacheMetrics:    cacheMet,
		})
		if err != nil {
			return nil, err
		}
		factory, err := pna.NewFactory(pna.Config{
			NodeID:           nodeID,
			Profile:          box.Profile(),
			ControllerKey:    pub,
			DialController:   s.dialer(linkCfg, "controller", s.serveController),
			DialBackend:      s.backendDialer(linkCfg, be.Serve, nodeID),
			Registry:         reg,
			TaskDuration:     box.TaskDuration,
			Rng:              rand.New(rand.NewSource(nodeRng.Int63())),
			DefaultHeartbeat: cfg.HeartbeatPeriod,
			OnStateChange:    s.noteState,
			Obs:              cfg.Obs,
			Spans:            cfg.Spans,
		})
		if err != nil {
			return nil, err
		}
		box.OnPower = func(on bool, at time.Time) {
			if !on {
				// A box that dies mid-task leaves no state-change
				// callback behind; evict it from the oracle so LiveBusy
				// does not count ghosts.
				s.notePowerGone(nodeID)
			}
			if cfg.Trace != nil {
				kind := trace.KindPowerOff
				if on {
					kind = trace.KindPowerOn
				}
				cfg.Trace.Record(trace.Event{At: at, Kind: kind, Node: nodeID})
			}
		}
		box.RegisterApp("pna.xlet", factory)
		s.STBs = append(s.STBs, box)
	}
	return s, nil
}

// faultyHeadEnd makes the Controller's carousel updates fail according
// to a deterministic netsim.FaultPlan. Bring-up (Start) is passed
// through untouched so injected runs always reach steady state.
type faultyHeadEnd struct {
	inner controller.HeadEnd
	plan  *netsim.FaultPlan
}

func (f *faultyHeadEnd) Start(files []dsmcc.File) error { return f.inner.Start(files) }

func (f *faultyHeadEnd) Update(files []dsmcc.File) error {
	if f.plan.Next() {
		return errors.New("system: injected head-end update failure")
	}
	return f.inner.Update(files)
}

// serveController is the head-end side of every node's direct channel.
// Unlike binding Controller.ServeNode at dial time, it resolves the
// current Controller per message, so node sessions survive a controller
// crash: while crashed, heartbeats simply go unanswered (the PNA's
// RecvTimeout tolerates missing replies), and after a restart the same
// sessions feed the recovered Controller — re-adoption, not re-waking.
func (s *System) serveController(ep *netsim.Endpoint) {
	for {
		pkt, err := ep.Recv()
		if err != nil {
			return
		}
		raw, ok := pkt.Payload.([]byte)
		if !ok {
			continue
		}
		hb, err := control.DecodeHeartbeat(raw)
		if err != nil {
			continue
		}
		ctrl := s.currentController()
		if ctrl == nil {
			continue // controller down: the report vanishes, no reply
		}
		reply := ctrl.HandleHeartbeat(hb)
		ep.Send(pkt.From, control.EncodeHeartbeatReply(reply), control.HeartbeatReplyWireSize)
	}
}

// currentController returns the live Controller, or nil while crashed.
func (s *System) currentController() *controller.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil
	}
	return s.Controller
}

// CrashController hard-stops the control plane in place, as a killed
// coordinator process would: maintenance and refresh loops halt, the
// journal store closes, and heartbeats go unanswered. Everything else
// — the cycling carousel, AIT repetition, devices, running DVEs, the
// Backend — stays up, which is exactly the failure split durability is
// for.
func (s *System) CrashController() error {
	s.mu.Lock()
	if s.store == nil {
		s.mu.Unlock()
		return errors.New("system: no StateDir, control plane is not durable")
	}
	if s.crashed {
		s.mu.Unlock()
		return errors.New("system: controller already crashed")
	}
	s.crashed = true
	ctrl := s.Controller
	store := s.store
	s.mu.Unlock()
	ctrl.Stop()
	return store.Close()
}

// resumedHeadEnd adapts an already-cycling head-end for a recovered
// Controller: its Start maps to Update, since the broadcast never
// stopped while the control plane was down.
type resumedHeadEnd struct{ inner controller.HeadEnd }

func (r resumedHeadEnd) Start(files []dsmcc.File) error  { return r.inner.Update(files) }
func (r resumedHeadEnd) Update(files []dsmcc.File) error { return r.inner.Update(files) }

// RestartController brings the control plane back from the state
// directory: it reopens the journal store, replays snapshot+journal
// into a fresh Controller, re-airs the recovered content in one
// head-end update, and rebinds the Provider's outstanding handles.
func (s *System) RestartController() error {
	s.mu.Lock()
	if !s.crashed {
		s.mu.Unlock()
		return errors.New("system: controller is not crashed")
	}
	cfg := s.ctrlCfg
	cfg.Broadcaster = resumedHeadEnd{s.head}
	cfg.Rng = rand.New(rand.NewSource(s.restartRng.Int63()))
	s.mu.Unlock()

	store, err := journal.Open(s.cfg.StateDir, journal.Options{Obs: s.cfg.Obs, Clock: s.Clock})
	if err != nil {
		return err
	}
	cfg.Journal = store
	ctrl, err := controller.New(cfg)
	if err != nil {
		store.Close()
		return err
	}
	if err := ctrl.Start(); err != nil {
		store.Close()
		return err
	}
	s.mu.Lock()
	s.Controller = ctrl
	s.store = store
	s.crashed = false
	s.mu.Unlock()
	s.Provider.Rebind(ctrl)
	return nil
}

// ContentStats reports the current Controller's head-end content
// (crash-safe accessor for tests that span a restart).
func (s *System) ContentStats() (controlFileBytes, carouselFiles, live, destroyedOnAir int) {
	s.mu.Lock()
	ctrl := s.Controller
	s.mu.Unlock()
	return ctrl.ContentStats()
}

// dialer builds a Dialer that creates a fresh duplex channel to a
// server component and spawns its per-connection session.
func (s *System) dialer(cfg netsim.LinkConfig, server string, serve func(*netsim.Endpoint)) pna.Dialer {
	clk := s.Clock
	return func() (*netsim.Endpoint, func()) {
		client, srv := netsim.NewDuplex(clk, "node", server, cfg, cfg)
		clk.Go(func() { serve(srv) })
		hangup := func() {
			client.Close()
			srv.Close()
		}
		return client, hangup
	}
}

// backendDialer is the node-side backend dialer; when nodeID is assigned
// a byzantine behavior, the client endpoint's SendHook rewrites result
// submissions on the wire per the plan.
func (s *System) backendDialer(cfg netsim.LinkConfig, serve func(*netsim.Endpoint), nodeID uint64) pna.Dialer {
	inner := s.dialer(cfg, "backend", serve)
	plan := s.cfg.Adversary
	if plan == nil || !plan.IsByzantine(nodeID) {
		return inner
	}
	hook := adversaryHook(plan, nodeID)
	return func() (*netsim.Endpoint, func()) {
		client, hangup := inner()
		client.SendHook = hook
		return client, hangup
	}
}

// adversaryHook applies nodeID's assigned misbehavior to outgoing task
// results. Netsim stays payload-agnostic; this is where the plan's
// decisions meet the task-plane message types.
func adversaryHook(plan *netsim.AdversaryPlan, nodeID uint64) func(to string, payload any) (any, bool) {
	behavior := plan.Behavior(nodeID)
	return func(to string, payload any) (any, bool) {
		res, ok := payload.(*backend.TaskResult)
		if !ok {
			return payload, true
		}
		mut := *res
		switch behavior {
		case netsim.WrongResult, netsim.FlipFlop, netsim.Collude:
			if !plan.ShouldLie(nodeID) {
				return payload, true
			}
			mut.Payload = plan.WrongPayload(nodeID, res.JobID, res.TaskID)
		case netsim.ForgeCred:
			mut.Credential = plan.ForgeCredential(nodeID, res.Credential)
		case netsim.ReplayCred:
			mut.Credential = plan.ReplayCredential(nodeID, res.Credential)
		default:
			return payload, true
		}
		return &mut, true
	}
}

// noteState maintains the direct (oracle) view of instance membership
// used by tests and experiments; the Controller's own view comes only
// from heartbeats.
func (s *System) noteState(nodeID uint64, st control.NodeState, inst instance.ID) {
	s.mu.Lock()
	for _, members := range s.byInst {
		delete(members, nodeID)
	}
	if st == control.StateBusy {
		m := s.byInst[inst]
		if m == nil {
			m = make(map[uint64]bool)
			s.byInst[inst] = m
		}
		m[nodeID] = true
	}
	s.mu.Unlock()
	if s.cfg.Trace != nil {
		kind := trace.KindLeave
		if st == control.StateBusy {
			kind = trace.KindJoin
		}
		s.cfg.Trace.Record(trace.Event{
			At: s.Clock.Now(), Kind: kind, Node: nodeID, Instance: uint64(inst),
		})
	}
}

// notePowerGone drops a powered-off node from the oracle membership.
func (s *System) notePowerGone(nodeID uint64) {
	s.mu.Lock()
	for _, members := range s.byInst {
		delete(members, nodeID)
	}
	s.mu.Unlock()
}

// LiveBusy reports the oracle count of nodes busy on an instance.
func (s *System) LiveBusy(id instance.ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byInst[id])
}

// Start boots the head-end and powers on the initial node fraction.
func (s *System) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("system: already started")
	}
	s.started = true
	s.mu.Unlock()

	if err := s.Controller.Start(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x51B0))
	for _, box := range s.STBs {
		if rng.Float64() < s.cfg.InitialPowerOn {
			if err := box.PowerOn(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Shutdown powers every node off and stops the head-end loops, letting
// a simulated clock's Wait return.
func (s *System) Shutdown() {
	for _, box := range s.STBs {
		box.StopChurn()
		box.PowerOff()
	}
	s.mu.Lock()
	ctrl := s.Controller
	s.mu.Unlock()
	ctrl.Stop()
}

// PoweredOn counts live nodes.
func (s *System) PoweredOn() int {
	n := 0
	for _, box := range s.STBs {
		if box.Powered() {
			n++
		}
	}
	return n
}
