package system

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/core/provider"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// TestAdversarialChurnStress is the byzantine hardening stress: 100+
// small replicated jobs run back to back while a quarter of the node
// population lies, forges, or replays credentials, every STB
// power-cycles underneath, and the head-end's carousel updates fail
// probabilistically. Every round must commit only honest (empty)
// results, quarantine must catch liars without collateral damage, and
// the whole run must be race-clean under -race.
func TestAdversarialChurnStress(t *testing.T) {
	const (
		rounds        = 110
		tasksPerRound = 2
		nodes         = 20
	)

	clk := simtime.NewSim(epoch)
	faults := netsim.NewFaultPlan(rand.New(rand.NewSource(23)), 0.25, 3)
	adversary := netsim.NewAdversaryPlan(netsim.AdversaryConfig{
		Seed:     0xADBE,
		Fraction: 0.25,
	})
	sys, err := New(Config{
		Clock:                clk,
		Nodes:                nodes,
		Seed:                 11,
		HeartbeatPeriod:      30 * time.Second,
		MaintenancePeriod:    30 * time.Second,
		Replication:          5,
		Adversary:            adversary,
		CredentialMode:       backend.CredEnforce,
		HeadEndFaults:        faults,
		ResetRetransmitTicks: 3,
		RefreshRetryBase:     2 * time.Second,
		RefreshRetryMax:      8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	for _, box := range sys.STBs {
		if err := box.StartChurn(5*time.Minute, 45*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	var (
		completed, wrong int
		errs             []error
	)
	clk.Go(func() {
		defer sys.Shutdown()
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              testImage(1 << 18),
			Target:             nodes,
			InitialProbability: 1,
			HeartbeatPeriod:    30 * time.Second,
		}); err != nil {
			errs = append(errs, fmt.Errorf("create: %w", err))
			return
		}
		for round := 0; round < rounds; round++ {
			gen := workload.Generator{
				Name: "stress", ImageBytes: 1 << 18, Tasks: tasksPerRound,
				InputBytes: 256, OutputBytes: 128, MeanSeconds: 2,
			}
			job, err := gen.Generate()
			if err != nil {
				errs = append(errs, fmt.Errorf("round %d: %w", round, err))
				return
			}
			h, err := sys.Backend.Submit(job)
			if err != nil {
				errs = append(errs, fmt.Errorf("round %d submit: %w", round, err))
				return
			}
			deadline := clk.Now().Add(30 * time.Minute)
			for {
				if _, done := h.Done(); done {
					break
				}
				if clk.Now().After(deadline) {
					errs = append(errs, fmt.Errorf("round %d wedged after 30 sim-minutes", round))
					return
				}
				clk.Sleep(10 * time.Second)
			}
			completed++
			for id, payload := range h.Results() {
				if len(payload) != 0 {
					// Tasks carry no concrete work; any non-empty commit
					// is an adversary payload that beat the quorum.
					wrong++
					errs = append(errs, fmt.Errorf("round %d task %d committed adversary payload", round, id))
				}
			}
			// Cycle a throwaway instance through the faulty head-end so
			// carousel updates (and their injected failures) keep flowing
			// alongside the adversarial task plane. Near-zero probability:
			// it must not poach workers from the job instance for long.
			if round%2 == 0 {
				var aux *provider.Instance
				for attempt := 0; attempt < 5; attempt++ {
					in, err := sys.Provider.Create(controller.InstanceSpec{
						Image:              testImage(1 << 10),
						Target:             1,
						InitialProbability: 0.05,
						HeartbeatPeriod:    30 * time.Second,
					})
					if err == nil {
						aux = in
						break
					}
					clk.Sleep(3 * time.Second) // injected staging failure; retry
				}
				if aux != nil {
					clk.Sleep(5 * time.Second)
					if err := aux.Destroy(); err != nil {
						errs = append(errs, fmt.Errorf("round %d aux destroy: %w", round, err))
					}
				}
			}
		}
	})
	clk.Wait()

	for _, err := range errs {
		t.Error(err)
	}
	if completed < 100 {
		t.Fatalf("only %d/%d rounds completed; need ≥100", completed, rounds)
	}
	if wrong != 0 {
		t.Fatalf("%d wrong commits across %d rounds", wrong, completed)
	}
	var byz int
	for n := uint64(1); n <= nodes; n++ {
		if adversary.IsByzantine(n) {
			byz++
		}
	}
	if byz == 0 {
		t.Fatal("adversary plan marked no nodes byzantine")
	}
	quarantined := sys.Backend.QuarantinedNodes()
	if len(quarantined) == 0 {
		t.Fatalf("no quarantines across %d adversarial rounds (%d byzantine nodes)", completed, byz)
	}
	for _, n := range quarantined {
		if !adversary.IsByzantine(n) {
			t.Errorf("honest node %d quarantined (collateral damage)", n)
		}
	}
	if _, lies := adversary.Stats(); lies == 0 {
		t.Fatal("adversary never actually mutated a submission")
	}
	if injected, failed := faults.Stats(); failed == 0 {
		t.Fatalf("head-end plan injected %d updates, failed none — faults never exercised", injected)
	}
}
