package system

import (
	"math/rand"
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// Heavy-tailed task durations: the mean-based closed form underestimates
// the makespan because the last few stragglers gate completion — a
// regime the live pull scheduler must still complete correctly.
func TestHeavyTailedWorkloadStragglers(t *testing.T) {
	run := func(cv float64) time.Duration {
		clk := simtime.NewSim(epoch)
		sys, err := New(Config{
			Clock:             clk,
			Nodes:             16,
			Seed:              61,
			HeartbeatPeriod:   30 * time.Second,
			MaintenancePeriod: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}
		gen := workload.Generator{
			Name: "tail", Tasks: 96, InputBytes: 512, OutputBytes: 256,
			MeanSeconds: 10, JitterCV: cv,
		}
		if cv > 0 {
			gen.Rng = rand.New(rand.NewSource(3))
		}
		job, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.Backend.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              testImage(200000),
			Target:             16,
			InitialProbability: 1,
		}); err != nil {
			t.Fatal(err)
		}
		var ms time.Duration
		h.OnComplete(func(at time.Time) {
			ms, _ = h.Makespan()
			sys.Shutdown()
		})
		clk.Wait()
		if len(h.Results()) != 96 {
			t.Fatalf("cv=%v: results = %d", cv, len(h.Results()))
		}
		if h.Redispatches() != 0 {
			t.Fatalf("cv=%v: spurious redispatches (%d) — leases must cover jittered tasks",
				cv, h.Redispatches())
		}
		return ms
	}
	uniform := run(0)
	tailed := run(2.0)
	t.Logf("makespan: uniform=%v heavy-tailed=%v", uniform, tailed)
	if tailed <= uniform {
		t.Fatalf("heavy tail (%v) did not stretch the makespan beyond uniform (%v)", tailed, uniform)
	}
}
