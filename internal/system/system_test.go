package system

import (
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func testImage(payloadBytes int) *appimage.Image {
	return &appimage.Image{
		Name:       "worker",
		Version:    1,
		EntryPoint: backend.WorkerEntryPoint,
		Payload:    make([]byte, payloadBytes),
	}
}

func newSystem(t *testing.T, clk simtime.Clock, nodes int, seed int64) *System {
	t.Helper()
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             nodes,
		Seed:              seed,
		HeartbeatPeriod:   30 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEndToEndJobCompletes(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 40, 1)

	gen := workload.Generator{
		Name: "e2e", ImageBytes: 1 << 20, Tasks: 200,
		InputBytes: 512, OutputBytes: 256, MeanSeconds: 5,
	}
	job, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Backend.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(1 << 20),
		Target:             40,
		InitialProbability: 1,
		HeartbeatPeriod:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.OnComplete(func(time.Time) { sys.Shutdown() })
	clk.Wait()

	ms, done := h.Makespan()
	if !done {
		t.Fatal("job never completed")
	}
	if len(h.Results()) != 200 {
		t.Fatalf("results = %d, want 200", len(h.Results()))
	}
	// Sanity bounds: compute floor is n·p/N = 25 s; everything (wakeup,
	// signalling, transfers, heartbeat phases) must fit well under 10
	// minutes at these sizes.
	if ms < 25*time.Second {
		t.Fatalf("makespan %v beats the compute floor", ms)
	}
	if ms > 10*time.Minute {
		t.Fatalf("makespan %v implausibly high", ms)
	}
	if st, err := inst.Status(); err != nil || st.Wakeups < 1 {
		t.Fatalf("status %+v err %v", st, err)
	}
	if sys.Backend.Completed != 200 {
		t.Fatalf("backend completed = %d", sys.Backend.Completed)
	}
}

func TestAllNodesJoinWithProbabilityOne(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 30, 2)
	_, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(100000),
		Target:             30,
		InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(5*time.Minute, sys.Shutdown)
	var joined int
	clk.AfterFunc(4*time.Minute, func() { joined = sys.LiveBusy(1) })
	clk.Wait()
	if joined != 30 {
		t.Fatalf("joined = %d of 30", joined)
	}
}

func TestProbabilisticSizingConverges(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 200, 3)

	// Let two heartbeat rounds populate the Controller's idle view,
	// then ask for a 50-node instance with auto probability.
	clk.AfterFunc(90*time.Second, func() {
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:  testImage(100000),
			Target: 50,
		}); err != nil {
			t.Errorf("create: %v", err)
		}
	})
	// After several maintenance rounds the live size must have
	// converged to the target (recomposition fills deficits, trims cut
	// overshoot).
	var live, busyView int
	clk.AfterFunc(20*time.Minute, func() {
		live = sys.LiveBusy(1)
		st, err := sys.Controller.Status(1)
		if err != nil {
			t.Errorf("status: %v", err)
		}
		busyView = st.Busy
		sys.Shutdown()
	})
	clk.Wait()
	if live < 45 || live > 55 {
		t.Fatalf("live busy = %d, want ≈50", live)
	}
	if busyView < 45 || busyView > 55 {
		t.Fatalf("controller's view = %d, want ≈50", busyView)
	}
}

func TestDestroyInstanceFreesNodes(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 20, 4)
	inst, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             20,
		InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var joined, after int
	clk.AfterFunc(3*time.Minute, func() {
		joined = sys.LiveBusy(inst.ID())
		if err := inst.Destroy(); err != nil {
			t.Errorf("destroy: %v", err)
		}
	})
	clk.AfterFunc(10*time.Minute, func() {
		after = sys.LiveBusy(1)
		sys.Shutdown()
	})
	clk.Wait()
	if joined == 0 {
		t.Fatal("nobody joined before destroy")
	}
	if after != 0 {
		t.Fatalf("still %d busy after destroy", after)
	}
}

func TestResizeShrinksInstance(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 30, 5)
	inst, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             30,
		InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(4*time.Minute, func() {
		if err := inst.Resize(10); err != nil {
			t.Errorf("resize: %v", err)
		}
	})
	var after int
	clk.AfterFunc(15*time.Minute, func() {
		after = sys.LiveBusy(inst.ID())
		sys.Shutdown()
	})
	clk.Wait()
	if after != 10 {
		t.Fatalf("after resize: %d busy, want 10", after)
	}
}

func TestChurnRecomposition(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             60,
		Seed:              6,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	// Churn: mean 10 min on, 2 min off.
	for _, box := range sys.STBs {
		if err := box.StartChurn(10*time.Minute, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             30,
		InitialProbability: 0.6,
	}); err != nil {
		t.Fatal(err)
	}
	// Sample the live size late; maintenance must keep it near target
	// despite continuous departures.
	var samples []int
	for i := 1; i <= 5; i++ {
		i := i
		clk.AfterFunc(time.Duration(20+5*i)*time.Minute, func() {
			samples = append(samples, sys.LiveBusy(1))
		})
	}
	clk.AfterFunc(50*time.Minute, sys.Shutdown)
	clk.Wait()
	cycles := 0
	for _, box := range sys.STBs {
		cycles += box.PowerCycles
	}
	if cycles == 0 {
		t.Fatal("churn produced no power cycles")
	}
	sum := 0
	for _, s := range samples {
		sum += s
	}
	mean := float64(sum) / float64(len(samples))
	if mean < 20 || mean > 36 {
		t.Fatalf("mean live size under churn = %.1f (samples %v), want ≈30", mean, samples)
	}
}

func TestJobSurvivesChurn(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             40,
		Seed:              7,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	for _, box := range sys.STBs {
		if err := box.StartChurn(8*time.Minute, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	gen := workload.Generator{Name: "churny", Tasks: 120, InputBytes: 512, OutputBytes: 256, MeanSeconds: 20}
	job, _ := gen.Generate()
	h, err := sys.Backend.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(100000),
		Target:             40,
		InitialProbability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h.OnComplete(func(time.Time) { sys.Shutdown() })
	// Safety valve: fail rather than hang if the job stalls. The timer
	// fires during Wait's drain even after completion, so it must check.
	clk.AfterFunc(6*time.Hour, func() {
		if _, done := h.Done(); !done {
			t.Error("job did not finish within 6 simulated hours")
		}
		sys.Shutdown()
	})
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job lost under churn")
	}
	if len(h.Results()) != 120 {
		t.Fatalf("results = %d, want 120", len(h.Results()))
	}
}

func TestTwoConcurrentInstances(t *testing.T) {
	clk := simtime.NewSim(epoch)
	sys := newSystem(t, clk, 40, 8)
	// Instance 1 takes ~half the population, instance 2 the rest.
	i1, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             20,
		InitialProbability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(2*time.Minute, func() {
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              testImage(50000),
			Target:             15,
			InitialProbability: 0.8,
		}); err != nil {
			t.Errorf("create second: %v", err)
		}
	})
	var live1, live2 int
	clk.AfterFunc(25*time.Minute, func() {
		live1 = sys.LiveBusy(i1.ID())
		live2 = sys.LiveBusy(2)
		sys.Shutdown()
	})
	clk.Wait()
	if live1 < 17 || live1 > 23 {
		t.Fatalf("instance 1 size = %d, want ≈20", live1)
	}
	if live2 < 12 || live2 > 18 {
		t.Fatalf("instance 2 size = %d, want ≈15", live2)
	}
}

// Back-pressure end to end: with a heartbeat-rate target, the
// Controller re-tunes idle PNAs through heartbeat replies and its
// inbound load drops accordingly.
func TestHeartbeatBackpressureEndToEnd(t *testing.T) {
	run := func(rate float64) int64 {
		clk := simtime.NewSim(epoch)
		sys, err := New(Config{
			Clock:               clk,
			Nodes:               50,
			Seed:                71,
			HeartbeatPeriod:     10 * time.Second,
			MaintenancePeriod:   time.Hour,
			TargetHeartbeatRate: rate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}
		clk.AfterFunc(30*time.Minute, sys.Shutdown)
		clk.Wait()
		return sys.Controller.HeartbeatsSeen()
	}
	unbounded := run(0)
	bounded := run(0.5) // 50 nodes at 0.5/s → 100 s periods
	t.Logf("heartbeats in 30 min: unbounded=%d bounded=%d", unbounded, bounded)
	if bounded >= unbounded/3 {
		t.Fatalf("back-pressure ineffective: %d vs %d", bounded, unbounded)
	}
}
