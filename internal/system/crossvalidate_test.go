package system

import (
	"testing"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/core/controller"
	"oddci/internal/sim"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// TestLiveMatchesDESModel pins the full live system (goroutines, real
// DTV middleware, heartbeats, signed control plane) against the reduced
// DES model and the closed-form makespan at a small scale. This is what
// licenses using the reduced model for the large-N figure sweeps.
func TestLiveMatchesDESModel(t *testing.T) {
	const (
		nodes = 20
		ratio = 5
		phi   = 100.0
	)
	p := analytic.Figure6Defaults(ratio, nodes).WithPhi(phi)

	// Live run.
	clk := simtime.NewSim(epoch)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             nodes,
		Seed:              11,
		HeartbeatPeriod:   30 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	job, err := workload.FromParams(p, "xval")
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Backend.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	// Let the PNA Xlets boot from the small pre-instance carousel first
	// (the paper's steady state: agents resident before wakeups), then
	// instantiate. Creating at t=0 instead would race the Xlet launch
	// against the image-dominated carousel and cost an extra cycle.
	createAt := epoch.Add(10 * time.Second)
	var liveMakespan time.Duration
	clk.AfterFunc(10*time.Second, func() {
		img := testImage(int(p.ImageBits / 8))
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              img,
			Target:             nodes,
			InitialProbability: 1,
		}); err != nil {
			t.Errorf("create: %v", err)
			sys.Shutdown()
		}
	})
	h.OnComplete(func(at time.Time) {
		// The paper's M is measured from instantiation.
		liveMakespan = at.Sub(createAt)
		sys.Shutdown()
	})
	clk.Wait()
	if liveMakespan == 0 {
		t.Fatal("live job never completed")
	}

	// Reduced DES run. Live agents are all resident at the commit, so
	// they begin reading together: the synchronized-join model.
	des, err := sim.RunJob(sim.JobConfig{
		Nodes:        nodes,
		Tasks:        ratio * nodes,
		ImageBytes:   int64(p.ImageBits / 8),
		Beta:         p.Beta,
		Delta:        p.Delta,
		TaskInBytes:  int(p.TaskInBits / 8),
		TaskOutBytes: int(p.TaskOutBits / 8),
		TaskSeconds:  p.TaskSeconds,
		Join:         sim.JoinSynchronized,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}

	liveS := liveMakespan.Seconds()
	desS := des.Makespan.Seconds()
	anaS := p.Makespan()
	t.Logf("makespan: live=%.1fs des(sync)=%.1fs analytic(random-phase)=%.1fs", liveS, desS, anaS)
	// The live system carries real overheads over the reduced model (TS
	// framing ≈3%, AIT signalling, the config-file read, request RTTs),
	// so it should land close to and above the synchronized DES, and
	// below the conservative random-phase closed form.
	if liveS < desS {
		t.Fatalf("live %.1fs beats the reduced model %.1fs", liveS, desS)
	}
	if rel := (liveS - desS) / desS; rel > 0.15 {
		t.Fatalf("live exceeds DES by %.1f%%", rel*100)
	}
	if liveS > anaS*1.10 {
		t.Fatalf("live %.1fs far above the random-phase bound %.1fs", liveS, anaS)
	}
}
