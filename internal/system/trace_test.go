package system

import (
	"testing"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/simtime"
	"oddci/internal/trace"
)

// The trace recorder must capture the causal story of an instance's
// life: wakeup broadcast → joins → (churn) leaves and recomposition
// wakeups.
func TestTraceTimeline(t *testing.T) {
	clk := simtime.NewSim(epoch)
	rec := trace.NewRecorder(0)
	sys, err := New(Config{
		Clock:             clk,
		Nodes:             20,
		Seed:              81,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
		Trace:             rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              testImage(50000),
		Target:             20,
		InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(5*time.Minute, func() {
		if err := inst.Destroy(); err != nil {
			t.Errorf("destroy: %v", err)
		}
	})
	clk.AfterFunc(10*time.Minute, sys.Shutdown)
	clk.Wait()

	if got := rec.Count(trace.KindWakeup); got < 1 {
		t.Fatalf("wakeup events = %d", got)
	}
	if got := rec.Count(trace.KindJoin); got != 20 {
		t.Fatalf("join events = %d, want 20", got)
	}
	if got := rec.Count(trace.KindLeave); got != 20 {
		t.Fatalf("leave events = %d after destroy, want 20", got)
	}
	// Causality: the first join must come after the first wakeup.
	evs := rec.Events()
	firstWakeup, firstJoin := -1, -1
	for i, ev := range evs {
		if ev.Kind == trace.KindWakeup && firstWakeup == -1 {
			firstWakeup = i
		}
		if ev.Kind == trace.KindJoin && firstJoin == -1 {
			firstJoin = i
		}
	}
	if firstWakeup == -1 || firstJoin == -1 || firstJoin < firstWakeup {
		t.Fatalf("causality broken: wakeup@%d join@%d", firstWakeup, firstJoin)
	}
}
