// Package baseline implements the comparator infrastructures of Table I
// so the paper's qualitative claims become measurable: how long does it
// take each technology to stage an application image onto N nodes and
// have them ready to compute?
//
//   - Desktop grid: a master unicasts the image to every worker; the
//     master's uplink is the bottleneck, so staging grows linearly in N.
//   - IaaS: virtual machines boot with bounded provisioning concurrency,
//     so staging grows as ceil(N/C)·boot.
//   - Multicast overlay: workers re-serve the image to k children each
//     (store-and-forward), so staging grows logarithmically in N.
//   - OddCI: one broadcast transmission reaches everyone; staging is
//     flat in N (1.5·I/β expected, cyclic carousel).
//
// Each model has a closed form and a discrete-event simulation; tests
// pin them to each other.
package baseline

import (
	"errors"
	"math"
	"time"

	"oddci/internal/simtime"
)

// StagingResult reports one staging run.
type StagingResult struct {
	// Mean is the average time for a node to become ready.
	Mean time.Duration
	// Last is when the final node became ready (the setup makespan).
	Last time.Duration
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Unicast models the desktop-grid master: N workers each pull I bytes
// through a master uplink of uplinkBps, each worker additionally capped
// at deltaBps. The master serves transfers fairly (processor sharing
// approximated by serial service in image-sized units, which yields the
// same completion envelope).
type Unicast struct {
	ImageBytes int64
	UplinkBps  float64
	DeltaBps   float64
}

// Analytic returns the closed-form staging envelope.
func (u Unicast) Analytic(n int) (StagingResult, error) {
	if err := u.validate(); err != nil {
		return StagingResult{}, err
	}
	// Worker i (1-based, serial service) finishes at
	// max(i·I/U, I/δ): the uplink serializes, but no single transfer
	// beats the worker's own link.
	iu := float64(u.ImageBytes) * 8 / u.UplinkBps
	id := float64(u.ImageBytes) * 8 / u.DeltaBps
	var sum float64
	var last float64
	for i := 1; i <= n; i++ {
		f := math.Max(float64(i)*iu, id)
		sum += f
		last = f
	}
	return StagingResult{Mean: secs(sum / float64(n)), Last: secs(last)}, nil
}

// Simulate runs the staging as a DES and returns the same envelope.
func (u Unicast) Simulate(clk *simtime.Sim, n int) (StagingResult, error) {
	if err := u.validate(); err != nil {
		return StagingResult{}, err
	}
	start := clk.Now()
	var sum time.Duration
	var last time.Duration
	served := 0
	uplinkFree := start
	for i := 0; i < n; i++ {
		txDone := uplinkFree.Add(secs(float64(u.ImageBytes) * 8 / u.UplinkBps))
		uplinkFree = txDone
		ready := txDone
		if minReady := start.Add(secs(float64(u.ImageBytes) * 8 / u.DeltaBps)); ready.Before(minReady) {
			ready = minReady
		}
		clk.AfterFunc(ready.Sub(start), func() {
			d := clk.Now().Sub(start)
			sum += d
			if d > last {
				last = d
			}
			served++
		})
	}
	clk.Wait()
	if served != n {
		return StagingResult{}, errors.New("baseline: unicast simulation lost nodes")
	}
	return StagingResult{Mean: sum / time.Duration(n), Last: last}, nil
}

func (u Unicast) validate() error {
	if u.ImageBytes <= 0 || u.UplinkBps <= 0 || u.DeltaBps <= 0 {
		return errors.New("baseline: unicast needs positive image and rates")
	}
	return nil
}

// IaaS models bounded-concurrency VM provisioning: C machines boot in
// parallel, each taking Boot plus the image pull at deltaBps from a
// well-provisioned store.
type IaaS struct {
	ImageBytes  int64
	DeltaBps    float64
	Boot        time.Duration
	Concurrency int
}

// Analytic returns the staging envelope.
func (v IaaS) Analytic(n int) (StagingResult, error) {
	if v.Concurrency <= 0 || v.Boot <= 0 || v.DeltaBps <= 0 {
		return StagingResult{}, errors.New("baseline: iaas needs positive boot, concurrency and rate")
	}
	per := v.Boot + secs(float64(v.ImageBytes)*8/v.DeltaBps)
	waves := (n + v.Concurrency - 1) / v.Concurrency
	var sum time.Duration
	for i := 0; i < n; i++ {
		wave := i/v.Concurrency + 1
		sum += time.Duration(wave) * per
	}
	return StagingResult{Mean: sum / time.Duration(n), Last: time.Duration(waves) * per}, nil
}

// MulticastTree models an overlay where every staged worker serves k
// children (store-and-forward levels at deltaBps).
type MulticastTree struct {
	ImageBytes int64
	DeltaBps   float64
	Fanout     int
}

// Analytic returns the staging envelope: level ℓ finishes at ℓ·I/δ.
func (m MulticastTree) Analytic(n int) (StagingResult, error) {
	if m.Fanout < 2 || m.DeltaBps <= 0 || m.ImageBytes <= 0 {
		return StagingResult{}, errors.New("baseline: multicast needs fanout ≥ 2 and positive rates")
	}
	per := float64(m.ImageBytes) * 8 / m.DeltaBps
	// Nodes per level: k, k², ...; node count n ⇒ depth ceil(log_k of
	// covered population).
	var sum float64
	level := 1
	remaining := n
	capacity := m.Fanout
	var last float64
	for remaining > 0 {
		take := remaining
		if take > capacity {
			take = capacity
		}
		t := float64(level) * per
		sum += float64(take) * t
		last = t
		remaining -= take
		capacity *= m.Fanout
		level++
	}
	return StagingResult{Mean: secs(sum / float64(n)), Last: secs(last)}, nil
}

// OddCI models the broadcast staging: every tuned node assembles the
// image from the cyclic carousel; for a carousel dominated by the image
// the expected per-node time is 1.5·I/β and the worst case 2·I/β,
// independent of N.
type OddCI struct {
	ImageBytes int64
	BetaBps    float64
}

// Analytic returns the staging envelope.
func (o OddCI) Analytic(n int) (StagingResult, error) {
	if o.ImageBytes <= 0 || o.BetaBps <= 0 {
		return StagingResult{}, errors.New("baseline: oddci needs positive image and rate")
	}
	cycle := float64(o.ImageBytes) * 8 / o.BetaBps
	return StagingResult{Mean: secs(1.5 * cycle), Last: secs(2 * cycle)}, nil
}
