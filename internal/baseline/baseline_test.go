package baseline

import (
	"testing"
	"time"

	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

const mb8 = 8 << 20

func TestUnicastLinearInN(t *testing.T) {
	u := Unicast{ImageBytes: mb8, UplinkBps: 100e6, DeltaBps: 10e6}
	r100, err := u.Analytic(100)
	if err != nil {
		t.Fatal(err)
	}
	r1000, err := u.Analytic(1000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1000.Last.Seconds() / r100.Last.Seconds()
	if ratio < 8 || ratio > 12 {
		t.Fatalf("10× nodes scaled setup by %.2f, want ≈10 (linear)", ratio)
	}
}

func TestUnicastWorkerLinkFloor(t *testing.T) {
	// With few workers, each transfer is bounded by the worker's own
	// slow link, not the fat uplink.
	u := Unicast{ImageBytes: mb8, UplinkBps: 1e9, DeltaBps: 150e3}
	r, err := u.Analytic(3)
	if err != nil {
		t.Fatal(err)
	}
	floor := secs(float64(mb8) * 8 / 150e3)
	if r.Last < floor {
		t.Fatalf("last = %v beats the worker link floor %v", r.Last, floor)
	}
}

func TestUnicastSimulationMatchesAnalytic(t *testing.T) {
	u := Unicast{ImageBytes: mb8, UplinkBps: 100e6, DeltaBps: 150e3}
	for _, n := range []int{1, 7, 50, 500} {
		want, err := u.Analytic(n)
		if err != nil {
			t.Fatal(err)
		}
		clk := simtime.NewSim(epoch)
		got, err := u.Simulate(clk, n)
		if err != nil {
			t.Fatal(err)
		}
		tol := time.Millisecond
		if d := got.Last - want.Last; d < -tol || d > tol {
			t.Fatalf("n=%d: sim last %v vs analytic %v", n, got.Last, want.Last)
		}
		if d := got.Mean - want.Mean; d < -tol || d > tol {
			t.Fatalf("n=%d: sim mean %v vs analytic %v", n, got.Mean, want.Mean)
		}
	}
}

func TestIaaSWaves(t *testing.T) {
	v := IaaS{ImageBytes: mb8, DeltaBps: 100e6, Boot: time.Minute, Concurrency: 20}
	r20, err := v.Analytic(20)
	if err != nil {
		t.Fatal(err)
	}
	r200, err := v.Analytic(200)
	if err != nil {
		t.Fatal(err)
	}
	if got := r200.Last.Seconds() / r20.Last.Seconds(); got < 9.9 || got > 10.1 {
		t.Fatalf("10 waves should be 10× one wave, got %.2f", got)
	}
}

func TestMulticastLogarithmic(t *testing.T) {
	m := MulticastTree{ImageBytes: mb8, DeltaBps: 150e3, Fanout: 8}
	r64, err := m.Analytic(64)
	if err != nil {
		t.Fatal(err)
	}
	r4096, err := m.Analytic(64 * 64)
	if err != nil {
		t.Fatal(err)
	}
	// 64 → 4096 at fanout 8: depth 2 → 4 levels.
	if got := r4096.Last.Seconds() / r64.Last.Seconds(); got < 1.5 || got > 2.5 {
		t.Fatalf("depth scaling = %.2f, want ≈2 (logarithmic)", got)
	}
}

func TestOddCIFlatInN(t *testing.T) {
	o := OddCI{ImageBytes: mb8, BetaBps: 1e6}
	r1, err := o.Analytic(1)
	if err != nil {
		t.Fatal(err)
	}
	r1e6, err := o.Analytic(1000000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mean != r1e6.Mean || r1.Last != r1e6.Last {
		t.Fatal("broadcast staging must not depend on N")
	}
	wantMean := secs(1.5 * float64(mb8) * 8 / 1e6)
	if r1.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", r1.Mean, wantMean)
	}
}

// The headline crossover of Table I: at small N unicast with a fat
// uplink wins; at large N OddCI's flat broadcast staging wins.
func TestCrossoverOddCIVsUnicast(t *testing.T) {
	u := Unicast{ImageBytes: mb8, UplinkBps: 1e9, DeltaBps: 10e6}
	o := OddCI{ImageBytes: mb8, BetaBps: 1e6}
	uSmall, _ := u.Analytic(10)
	oSmall, _ := o.Analytic(10)
	if uSmall.Last >= oSmall.Last {
		t.Fatalf("at N=10, unicast (%v) should beat broadcast (%v)", uSmall.Last, oSmall.Last)
	}
	uBig, _ := u.Analytic(1000000)
	oBig, _ := o.Analytic(1000000)
	if oBig.Last >= uBig.Last {
		t.Fatalf("at N=1e6, broadcast (%v) should beat unicast (%v)", oBig.Last, uBig.Last)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Unicast{}).Analytic(1); err == nil {
		t.Fatal("zero unicast accepted")
	}
	if _, err := (IaaS{}).Analytic(1); err == nil {
		t.Fatal("zero iaas accepted")
	}
	if _, err := (MulticastTree{Fanout: 1, DeltaBps: 1, ImageBytes: 1}).Analytic(1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := (OddCI{}).Analytic(1); err == nil {
		t.Fatal("zero oddci accepted")
	}
	clk := simtime.NewSim(epoch)
	if _, err := (Unicast{}).Simulate(clk, 1); err == nil {
		t.Fatal("zero unicast simulation accepted")
	}
}
