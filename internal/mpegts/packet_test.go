package mpegts

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketMarshalParseRoundTrip(t *testing.T) {
	cases := []Packet{
		{PID: 0x100, PUSI: true, Continuity: 5, Payload: bytes.Repeat([]byte{0xAA}, 184)},
		{PID: 0x1FFF, Payload: bytes.Repeat([]byte{1}, 10)},
		{PID: 0, Priority: true, Continuity: 15, Payload: []byte{0x42}},
		{PID: 42, Adaptation: []byte{0x00, 1, 2, 3}, Payload: bytes.Repeat([]byte{7}, 100)},
		{PID: 42, Adaptation: []byte{0x40}}, // adaptation-only
	}
	for i, c := range cases {
		b, err := c.Marshal()
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		if len(b) != PacketSize {
			t.Fatalf("case %d: %d bytes", i, len(b))
		}
		p, err := ParsePacket(b)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if p.PID != c.PID || p.PUSI != c.PUSI || p.Priority != c.Priority || p.Continuity != c.Continuity {
			t.Fatalf("case %d header mismatch: %+v vs %+v", i, p, c)
		}
		if c.Payload != nil {
			if p.Payload == nil || !bytes.Equal(p.Payload[:len(c.Payload)], c.Payload) {
				t.Fatalf("case %d payload mismatch", i)
			}
		}
	}
}

func TestPacketMarshalErrors(t *testing.T) {
	if _, err := (&Packet{PID: 0x2000, Payload: []byte{1}}).Marshal(); err == nil {
		t.Fatal("oversized PID accepted")
	}
	if _, err := (&Packet{PID: 1, Continuity: 16, Payload: []byte{1}}).Marshal(); err == nil {
		t.Fatal("oversized continuity accepted")
	}
	if _, err := (&Packet{PID: 1, Payload: bytes.Repeat([]byte{1}, 185)}).Marshal(); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := (&Packet{PID: 1}).Marshal(); err == nil {
		t.Fatal("empty packet accepted")
	}
}

func TestParsePacketErrors(t *testing.T) {
	if _, err := ParsePacket(make([]byte, 10)); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, PacketSize)
	if _, err := ParsePacket(b); err != ErrBadSync {
		t.Fatalf("bad sync: %v", err)
	}
	b[0] = SyncByte // afc == 0
	if _, err := ParsePacket(b); err != ErrBadHeader {
		t.Fatalf("afc 0: %v", err)
	}
}

// Property: any payload 1..184 bytes survives marshal/parse, with exact
// content at the front of the parsed payload.
func TestPacketPayloadRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size)%184 + 1
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, n)
		rng.Read(payload)
		// Avoid 0xFF-prefix confusion: this layer does not interpret
		// payloads, so any content is legal.
		pkt := Packet{PID: uint16(rng.Intn(0x1FFF)), Continuity: uint8(rng.Intn(16)), Payload: payload}
		b, err := pkt.Marshal()
		if err != nil || len(b) != PacketSize {
			return false
		}
		got, err := ParsePacket(b)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload[:n], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
