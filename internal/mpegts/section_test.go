package mpegts

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSectionRoundTrip(t *testing.T) {
	s := &Section{
		TableID:     TableIDDSMCCDDB,
		TableIDExt:  0xBEEF,
		Version:     17,
		CurrentNext: true,
		Number:      3,
		LastNumber:  9,
		Payload:     []byte("carousel module data"),
	}
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeSection(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if got.TableID != s.TableID || got.TableIDExt != s.TableIDExt || got.Version != s.Version ||
		got.Number != s.Number || got.LastNumber != s.LastNumber || !got.CurrentNext {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSectionCRCRejectsCorruption(t *testing.T) {
	s := &Section{TableID: 1, Payload: []byte{1, 2, 3, 4}}
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0x01
	if _, _, err := DecodeSection(raw); err != ErrSectionCRC {
		t.Fatalf("err = %v, want ErrSectionCRC", err)
	}
}

func TestSectionMaxPayload(t *testing.T) {
	s := &Section{TableID: 1, Payload: make([]byte, MaxSectionPayload)}
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3+MaxSectionLength {
		t.Fatalf("encoded %d bytes, want %d", len(raw), 3+MaxSectionLength)
	}
	s.Payload = make([]byte, MaxSectionPayload+1)
	if _, err := s.Encode(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPacketizeAssembleSingleSection(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	s := &Section{TableID: TableIDDSMCCDDB, TableIDExt: 1, Payload: payload}
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkts, nextCC, err := PacketizeSection(0x123, 0, raw)
	if err != nil {
		t.Fatal(err)
	}
	if int(nextCC) != len(pkts)%16 {
		t.Fatalf("nextCC = %d with %d packets", nextCC, len(pkts))
	}

	a := NewAssembler(0x123)
	var sections [][]byte
	for _, p := range pkts {
		sections = append(sections, a.Push(p)...)
	}
	if len(sections) != 1 {
		t.Fatalf("assembled %d sections, want 1", len(sections))
	}
	if !bytes.Equal(sections[0], raw) {
		t.Fatal("reassembled section differs")
	}
	if a.Errors != 0 {
		t.Fatalf("assembler reported %d errors", a.Errors)
	}
}

func TestAssemblerContinuityBreakDiscardsPartial(t *testing.T) {
	s := &Section{TableID: 1, Payload: make([]byte, 1000)}
	raw, _ := s.Encode()
	pkts, _, _ := PacketizeSection(7, 0, raw)
	if len(pkts) < 3 {
		t.Fatalf("need ≥3 packets, got %d", len(pkts))
	}
	a := NewAssembler(7)
	a.Push(pkts[0])
	// skip pkts[1]: continuity gap
	var out [][]byte
	for _, p := range pkts[2:] {
		out = append(out, a.Push(p)...)
	}
	if len(out) != 0 {
		t.Fatal("section completed despite lost packet")
	}
	if a.Errors == 0 {
		t.Fatal("loss not recorded")
	}

	// A fresh retransmission must still succeed afterwards.
	pkts2, _, _ := PacketizeSection(7, 8, raw)
	for _, p := range pkts2 {
		out = append(out, a.Push(p)...)
	}
	if len(out) != 1 || !bytes.Equal(out[0], raw) {
		t.Fatal("assembler did not recover after retransmission")
	}
}

func TestAssemblerIgnoresForeignPID(t *testing.T) {
	s := &Section{TableID: 1, Payload: []byte{1}}
	raw, _ := s.Encode()
	pkts, _, _ := PacketizeSection(5, 0, raw)
	a := NewAssembler(6)
	for _, p := range pkts {
		if got := a.Push(p); got != nil {
			t.Fatal("assembler accepted foreign PID")
		}
	}
}

// Property: any sequence of sections with random payload sizes, streamed
// through packetization and reassembly, comes out intact and in order.
func TestSectionStreamRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%8 + 1
		var raws [][]byte
		cc := uint8(0)
		a := NewAssembler(0x55)
		var got [][]byte
		for i := 0; i < n; i++ {
			payload := make([]byte, rng.Intn(4000)+1)
			rng.Read(payload)
			s := &Section{TableID: 0x3C, TableIDExt: uint16(i), Payload: payload}
			raw, err := s.Encode()
			if err != nil {
				return false
			}
			raws = append(raws, raw)
			pkts, next, err := PacketizeSection(0x55, cc, raw)
			if err != nil {
				return false
			}
			cc = next
			for _, p := range pkts {
				got = append(got, a.Push(p)...)
			}
		}
		if len(got) != len(raws) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], raws[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPacketizeAssemble(b *testing.B) {
	s := &Section{TableID: 0x3C, Payload: make([]byte, 4000)}
	raw, _ := s.Encode()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		pkts, _, _ := PacketizeSection(1, 0, raw)
		a := NewAssembler(1)
		for _, p := range pkts {
			a.Push(p)
		}
	}
}
