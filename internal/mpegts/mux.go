package mpegts

import (
	"fmt"
	"sync"
)

// Mux interleaves per-PID section queues into a single transport stream,
// round-robin across PIDs, maintaining per-PID continuity counters. It is
// the byte-exact tail of the transmission chain; timing is handled by the
// broadcast bus it feeds.
type Mux struct {
	mu     sync.Mutex
	queues map[uint16]*muxQueue
	order  []uint16
	next   int
}

type muxQueue struct {
	pkts []*Packet
	cc   uint8
}

// NewMux returns an empty multiplexer.
func NewMux() *Mux {
	return &Mux{queues: make(map[uint16]*muxQueue)}
}

// EnqueueSection packetizes an encoded section onto pid.
func (m *Mux) EnqueueSection(pid uint16, section []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[pid]
	if q == nil {
		q = &muxQueue{}
		m.queues[pid] = q
		m.order = append(m.order, pid)
	}
	pkts, cc, err := PacketizeSection(pid, q.cc, section)
	if err != nil {
		return err
	}
	q.cc = cc
	q.pkts = append(q.pkts, pkts...)
	return nil
}

// Pending reports the total queued packets.
func (m *Mux) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queues {
		n += len(q.pkts)
	}
	return n
}

// NextPacket emits the next packet round-robin, or nil when all queues
// are empty.
func (m *Mux) NextPacket() *Packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.order) == 0 {
		return nil
	}
	for i := 0; i < len(m.order); i++ {
		pid := m.order[(m.next+i)%len(m.order)]
		q := m.queues[pid]
		if len(q.pkts) > 0 {
			p := q.pkts[0]
			q.pkts = q.pkts[1:]
			m.next = (m.next + i + 1) % len(m.order)
			return p
		}
	}
	return nil
}

// DrainBytes emits the entire backlog as a contiguous byte stream.
func (m *Mux) DrainBytes() ([]byte, error) {
	var out []byte
	for {
		p := m.NextPacket()
		if p == nil {
			return out, nil
		}
		b, err := p.Marshal()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
}

// Demux routes a transport stream to per-PID section handlers.
type Demux struct {
	mu         sync.Mutex
	assemblers map[uint16]*Assembler
	handlers   map[uint16]func(section []byte)
	// Unhandled counts packets on PIDs with no registered handler.
	Unhandled int
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	return &Demux{
		assemblers: make(map[uint16]*Assembler),
		handlers:   make(map[uint16]func([]byte)),
	}
}

// Handle registers fn to receive completed sections on pid.
func (d *Demux) Handle(pid uint16, fn func(section []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[pid] = fn
	if d.assemblers[pid] == nil {
		d.assemblers[pid] = NewAssembler(pid)
	}
}

// Unhandle removes the handler for pid.
func (d *Demux) Unhandle(pid uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.handlers, pid)
	delete(d.assemblers, pid)
}

// PushPacket routes one decoded packet.
func (d *Demux) PushPacket(p *Packet) {
	d.mu.Lock()
	a := d.assemblers[p.PID]
	fn := d.handlers[p.PID]
	if a == nil || fn == nil {
		d.Unhandled++
		d.mu.Unlock()
		return
	}
	sections := a.Push(p)
	d.mu.Unlock()
	for _, s := range sections {
		fn(s)
	}
}

// PushBytes parses and routes a stream of packets; it returns an error on
// framing problems.
func (d *Demux) PushBytes(b []byte) error {
	if len(b)%PacketSize != 0 {
		return fmt.Errorf("mpegts: stream length %d not a packet multiple", len(b))
	}
	for off := 0; off < len(b); off += PacketSize {
		p, err := ParsePacket(b[off : off+PacketSize])
		if err != nil {
			return err
		}
		d.PushPacket(p)
	}
	return nil
}
