// Package mpegts implements the subset of the MPEG-2 transport stream
// (ISO/IEC 13818-1) that a DTV data service needs: 188-byte TS packets,
// PSI section framing with CRC-32/MPEG-2, section packetization and
// reassembly, PAT/PMT codecs, and a round-robin multiplexer. The DSM-CC
// object carousel (internal/dsmcc) and the AIT (internal/ait) ride on
// these sections, exactly as in a real OddCI-DTV transmission chain.
package mpegts

import (
	"errors"
	"fmt"
)

const (
	// PacketSize is the fixed TS packet size in bytes.
	PacketSize = 188
	// SyncByte begins every TS packet.
	SyncByte = 0x47
	// MaxPayload is the payload capacity of a packet without an
	// adaptation field.
	MaxPayload = PacketSize - 4
	// NullPID identifies stuffing packets.
	NullPID = 0x1FFF
	// PATPID is the fixed PID of the Program Association Table.
	PATPID = 0x0000
)

// Errors returned by packet parsing.
var (
	ErrBadSync   = errors.New("mpegts: missing sync byte")
	ErrShort     = errors.New("mpegts: truncated packet")
	ErrBadHeader = errors.New("mpegts: malformed header")
)

// Packet is a decoded transport-stream packet.
type Packet struct {
	TransportError bool
	PUSI           bool // payload_unit_start_indicator
	Priority       bool
	PID            uint16
	Scrambling     uint8
	Continuity     uint8 // 4-bit continuity counter
	// Adaptation holds the adaptation field body (after its length
	// byte), nil if absent. Stuffing-only fields are preserved.
	Adaptation []byte
	// Payload holds the payload bytes, nil if absent.
	Payload []byte
}

// Marshal encodes p into exactly 188 bytes. Payloads shorter than the
// remaining space are padded with adaptation-field stuffing, as the
// standard requires.
func (p *Packet) Marshal() ([]byte, error) {
	if p.PID > 0x1FFF {
		return nil, fmt.Errorf("mpegts: PID %#x out of range", p.PID)
	}
	if p.Continuity > 0x0F {
		return nil, fmt.Errorf("mpegts: continuity counter %d out of range", p.Continuity)
	}
	buf := make([]byte, PacketSize)
	buf[0] = SyncByte
	b1 := byte(p.PID >> 8 & 0x1F)
	if p.TransportError {
		b1 |= 0x80
	}
	if p.PUSI {
		b1 |= 0x40
	}
	if p.Priority {
		b1 |= 0x20
	}
	buf[1] = b1
	buf[2] = byte(p.PID)

	hasPayload := p.Payload != nil
	af := p.Adaptation
	hasAF := af != nil

	if hasPayload {
		used := len(p.Payload)
		if hasAF {
			used += 1 + len(af)
		}
		if used > MaxPayload {
			return nil, fmt.Errorf("mpegts: payload %d bytes does not fit", len(p.Payload))
		}
		// Absorb slack with adaptation-field stuffing, as the standard
		// requires for short payloads.
		if slack := MaxPayload - used; slack > 0 {
			if !hasAF {
				hasAF = true
				slack-- // the adaptation_field_length byte itself
				if slack > 0 {
					af = make([]byte, slack)
					af[0] = 0x00 // no flags
					for i := 1; i < slack; i++ {
						af[i] = 0xFF
					}
				} else {
					af = []byte{}
				}
			} else {
				padded := make([]byte, len(af), len(af)+slack)
				copy(padded, af)
				for i := 0; i < slack; i++ {
					padded = append(padded, 0xFF)
				}
				af = padded
			}
		}
	} else if hasAF {
		// Adaptation-only packet: the field fills the packet.
		if len(af) > PacketSize-5 {
			return nil, fmt.Errorf("mpegts: adaptation field %d bytes too long", len(af))
		}
		padded := make([]byte, PacketSize-5)
		copy(padded, af)
		for i := len(af); i < len(padded); i++ {
			padded[i] = 0xFF
		}
		if len(af) == 0 {
			padded[0] = 0x00
		}
		af = padded
	} else {
		return nil, errors.New("mpegts: packet with neither adaptation field nor payload")
	}

	afc := byte(0)
	if hasAF {
		afc |= 0x2
	}
	if hasPayload {
		afc |= 0x1
	}
	buf[3] = p.Scrambling<<6 | afc<<4 | p.Continuity

	pos := 4
	if hasAF {
		buf[pos] = byte(len(af))
		pos++
		copy(buf[pos:], af)
		pos += len(af)
	}
	if hasPayload {
		copy(buf[pos:], p.Payload)
	}
	return buf, nil
}

// ParsePacket decodes a 188-byte TS packet.
func ParsePacket(b []byte) (*Packet, error) {
	if len(b) < PacketSize {
		return nil, ErrShort
	}
	b = b[:PacketSize]
	if b[0] != SyncByte {
		return nil, ErrBadSync
	}
	p := &Packet{
		TransportError: b[1]&0x80 != 0,
		PUSI:           b[1]&0x40 != 0,
		Priority:       b[1]&0x20 != 0,
		PID:            uint16(b[1]&0x1F)<<8 | uint16(b[2]),
		Scrambling:     b[3] >> 6,
		Continuity:     b[3] & 0x0F,
	}
	afc := b[3] >> 4 & 0x3
	if afc == 0 {
		return nil, ErrBadHeader
	}
	pos := 4
	if afc&0x2 != 0 {
		afLen := int(b[pos])
		pos++
		if pos+afLen > PacketSize {
			return nil, ErrBadHeader
		}
		p.Adaptation = b[pos : pos+afLen]
		pos += afLen
	}
	if afc&0x1 != 0 {
		p.Payload = b[pos:]
	}
	return p, nil
}
