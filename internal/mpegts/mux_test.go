package mpegts

import (
	"bytes"
	"testing"
)

// Round-robin fairness: with two PIDs queued, emitted packets alternate
// so neither stream starves — the multiplexing behaviour that lets a
// data service share the transport stream with audio/video.
func TestMuxRoundRobinFairness(t *testing.T) {
	mux := NewMux()
	big := &Section{TableID: 1, Payload: bytes.Repeat([]byte{0xA}, 3000)}
	rawA, _ := big.Encode()
	rawB, _ := big.Encode()
	if err := mux.EnqueueSection(0x100, rawA); err != nil {
		t.Fatal(err)
	}
	if err := mux.EnqueueSection(0x200, rawB); err != nil {
		t.Fatal(err)
	}
	var order []uint16
	for {
		p := mux.NextPacket()
		if p == nil {
			break
		}
		order = append(order, p.PID)
	}
	if len(order) < 4 {
		t.Fatalf("too few packets: %d", len(order))
	}
	// Strict alternation while both queues are non-empty.
	for i := 1; i < len(order)-1; i++ {
		if order[i] == order[i-1] {
			t.Fatalf("packet %d repeated PID %#x: %v", i, order[i], order)
		}
	}
}

func TestMuxPendingAndDrain(t *testing.T) {
	mux := NewMux()
	s := &Section{TableID: 1, Payload: []byte{1, 2, 3}}
	raw, _ := s.Encode()
	mux.EnqueueSection(7, raw)
	if mux.Pending() != 1 {
		t.Fatalf("pending = %d", mux.Pending())
	}
	stream, err := mux.DrainBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != PacketSize {
		t.Fatalf("stream = %d bytes", len(stream))
	}
	if mux.Pending() != 0 {
		t.Fatal("drain left packets")
	}
	if mux.NextPacket() != nil {
		t.Fatal("empty mux emitted a packet")
	}
}

// Continuity counters increment per PID across enqueued sections.
func TestMuxContinuityPerPID(t *testing.T) {
	mux := NewMux()
	s := &Section{TableID: 1, Payload: []byte{9}}
	raw, _ := s.Encode()
	for i := 0; i < 3; i++ {
		mux.EnqueueSection(5, raw)
		mux.EnqueueSection(6, raw)
	}
	ccByPID := map[uint16][]uint8{}
	for {
		p := mux.NextPacket()
		if p == nil {
			break
		}
		ccByPID[p.PID] = append(ccByPID[p.PID], p.Continuity)
	}
	for pid, ccs := range ccByPID {
		for i, cc := range ccs {
			if int(cc) != i%16 {
				t.Fatalf("PID %#x continuity %v", pid, ccs)
			}
		}
	}
}
