package mpegts

import (
	"errors"
	"fmt"
	"sort"

	"oddci/internal/bits"
)

// Table IDs used in this system.
const (
	TableIDPAT       = 0x00
	TableIDPMT       = 0x02
	TableIDDSMCCDII  = 0x3B // DSM-CC U-N messages (DownloadInfoIndication)
	TableIDDSMCCDDB  = 0x3C // DSM-CC download data (DownloadDataBlock)
	TableIDAIT       = 0x74
	TableIDForbidden = 0xFF
)

// PAT is the Program Association Table: program_number → PMT PID.
type PAT struct {
	TransportStreamID uint16
	Version           uint8
	Programs          map[uint16]uint16
}

// EncodePAT produces the PAT's single section.
func EncodePAT(p *PAT) ([]byte, error) {
	w := bits.NewWriter()
	nums := make([]int, 0, len(p.Programs))
	for n := range p.Programs {
		nums = append(nums, int(n))
	}
	sort.Ints(nums)
	for _, n := range nums {
		pid := p.Programs[uint16(n)]
		if pid > 0x1FFF {
			return nil, fmt.Errorf("mpegts: PMT PID %#x out of range", pid)
		}
		w.Write(uint64(n), 16)
		w.Write(7, 3) // reserved
		w.Write(uint64(pid), 13)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	s := &Section{
		TableID:     TableIDPAT,
		TableIDExt:  p.TransportStreamID,
		Version:     p.Version,
		CurrentNext: true,
		Payload:     w.Bytes(),
	}
	return s.Encode()
}

// DecodePAT parses a PAT section.
func DecodePAT(raw []byte) (*PAT, error) {
	s, _, err := DecodeSection(raw)
	if err != nil {
		return nil, err
	}
	if s.TableID != TableIDPAT {
		return nil, fmt.Errorf("mpegts: table id %#x is not a PAT", s.TableID)
	}
	if len(s.Payload)%4 != 0 {
		return nil, errors.New("mpegts: PAT payload not a multiple of 4")
	}
	p := &PAT{TransportStreamID: s.TableIDExt, Version: s.Version, Programs: make(map[uint16]uint16)}
	r := bits.NewReader(s.Payload)
	for r.Remaining() >= 32 {
		num, _ := r.Read(16)
		r.Skip(3)
		pid, _ := r.Read(13)
		p.Programs[uint16(num)] = uint16(pid)
	}
	return p, nil
}

// Descriptor is a tagged PSI descriptor.
type Descriptor struct {
	Tag  uint8
	Data []byte
}

func encodeDescriptors(w *bits.Writer, ds []Descriptor) error {
	for _, d := range ds {
		if len(d.Data) > 255 {
			return fmt.Errorf("mpegts: descriptor %#x data too long", d.Tag)
		}
		w.Write(uint64(d.Tag), 8)
		w.Write(uint64(len(d.Data)), 8)
		w.WriteBytes(d.Data)
	}
	return nil
}

func decodeDescriptors(b []byte) ([]Descriptor, error) {
	var ds []Descriptor
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, errors.New("mpegts: truncated descriptor")
		}
		tag, n := b[0], int(b[1])
		if len(b) < 2+n {
			return nil, errors.New("mpegts: truncated descriptor body")
		}
		ds = append(ds, Descriptor{Tag: tag, Data: append([]byte(nil), b[2:2+n]...)})
		b = b[2+n:]
	}
	return ds, nil
}

// Stream types relevant to a data service.
const (
	StreamTypeDSMCCSections = 0x0B // DSM-CC U-N messages
	StreamTypePrivateData   = 0x06
)

// ESInfo describes one elementary stream in a PMT.
type ESInfo struct {
	StreamType  uint8
	PID         uint16
	Descriptors []Descriptor
}

// PMT is the Program Map Table for one service.
type PMT struct {
	ProgramNumber uint16
	Version       uint8
	PCRPID        uint16
	Streams       []ESInfo
}

// EncodePMT produces the PMT's single section.
func EncodePMT(p *PMT) ([]byte, error) {
	w := bits.NewWriter()
	w.Write(7, 3) // reserved
	w.Write(uint64(p.PCRPID), 13)
	w.Write(15, 4) // reserved
	w.Write(0, 12) // program_info_length (no program descriptors)
	for _, es := range p.Streams {
		dw := bits.NewWriter()
		if err := encodeDescriptors(dw, es.Descriptors); err != nil {
			return nil, err
		}
		if dw.Err() != nil {
			return nil, dw.Err()
		}
		desc := dw.Bytes()
		w.Write(uint64(es.StreamType), 8)
		w.Write(7, 3)
		w.Write(uint64(es.PID), 13)
		w.Write(15, 4)
		w.Write(uint64(len(desc)), 12)
		w.WriteBytes(desc)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	s := &Section{
		TableID:     TableIDPMT,
		TableIDExt:  p.ProgramNumber,
		Version:     p.Version,
		CurrentNext: true,
		Payload:     w.Bytes(),
	}
	return s.Encode()
}

// DecodePMT parses a PMT section.
func DecodePMT(raw []byte) (*PMT, error) {
	s, _, err := DecodeSection(raw)
	if err != nil {
		return nil, err
	}
	if s.TableID != TableIDPMT {
		return nil, fmt.Errorf("mpegts: table id %#x is not a PMT", s.TableID)
	}
	r := bits.NewReader(s.Payload)
	p := &PMT{ProgramNumber: s.TableIDExt, Version: s.Version}
	r.Skip(3)
	pcr, err := r.Read(13)
	if err != nil {
		return nil, err
	}
	p.PCRPID = uint16(pcr)
	r.Skip(4)
	pil, err := r.Read(12)
	if err != nil {
		return nil, err
	}
	if _, err := r.ReadBytes(int(pil)); err != nil {
		return nil, err
	}
	for r.Remaining() >= 40 {
		st, _ := r.Read(8)
		r.Skip(3)
		pid, _ := r.Read(13)
		r.Skip(4)
		dl, err := r.Read(12)
		if err != nil {
			return nil, err
		}
		db, err := r.ReadBytes(int(dl))
		if err != nil {
			return nil, err
		}
		ds, err := decodeDescriptors(db)
		if err != nil {
			return nil, err
		}
		p.Streams = append(p.Streams, ESInfo{StreamType: uint8(st), PID: uint16(pid), Descriptors: ds})
	}
	return p, nil
}
