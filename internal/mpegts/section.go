package mpegts

import (
	"encoding/binary"
	"errors"
	"fmt"

	"oddci/internal/bits"
	"oddci/internal/crc"
)

// Section framing constants.
const (
	// MaxSectionLength is the largest value of the 12-bit section length
	// field for private/DSM-CC sections.
	MaxSectionLength = 4093
	// sectionHeaderLen counts bytes before the payload in a long-form
	// section (table_id through last_section_number).
	sectionHeaderLen = 8
	// MaxSectionPayload is the payload capacity of one long-form
	// section: length field covers 5 header bytes + payload + 4 CRC.
	MaxSectionPayload = MaxSectionLength - 5 - 4
)

// Section is a long-form (section_syntax_indicator = 1) PSI/private
// section, the container used by the PAT, PMT, AIT and all DSM-CC
// messages.
type Section struct {
	TableID     uint8
	TableIDExt  uint16
	Version     uint8 // 5 bits
	CurrentNext bool
	Number      uint8
	LastNumber  uint8
	Payload     []byte
}

// Encode serializes the section, computing its CRC-32/MPEG-2.
func (s *Section) Encode() ([]byte, error) {
	if len(s.Payload) > MaxSectionPayload {
		return nil, fmt.Errorf("mpegts: section payload %d exceeds %d", len(s.Payload), MaxSectionPayload)
	}
	if s.Version > 31 {
		return nil, fmt.Errorf("mpegts: version %d exceeds 5 bits", s.Version)
	}
	length := 5 + len(s.Payload) + 4
	w := bits.NewWriter()
	w.Write(uint64(s.TableID), 8)
	w.Write(1, 1) // section_syntax_indicator
	w.Write(1, 1) // private_indicator
	w.Write(3, 2) // reserved
	w.Write(uint64(length), 12)
	w.Write(uint64(s.TableIDExt), 16)
	w.Write(3, 2) // reserved
	w.Write(uint64(s.Version), 5)
	cn := uint64(0)
	if s.CurrentNext {
		cn = 1
	}
	w.Write(cn, 1)
	w.Write(uint64(s.Number), 8)
	w.Write(uint64(s.LastNumber), 8)
	w.WriteBytes(s.Payload)
	if err := w.Err(); err != nil {
		return nil, err
	}
	body := w.Bytes()
	sum := crc.Checksum(body)
	out := make([]byte, len(body)+4)
	copy(out, body)
	binary.BigEndian.PutUint32(out[len(body):], sum)
	return out, nil
}

// Errors returned by DecodeSection.
var (
	ErrSectionShort = errors.New("mpegts: truncated section")
	ErrSectionCRC   = errors.New("mpegts: section CRC mismatch")
)

// DecodeSection parses one section from the front of b, verifying its
// CRC. It returns the section and the total encoded length consumed.
func DecodeSection(b []byte) (*Section, int, error) {
	if len(b) < 3 {
		return nil, 0, ErrSectionShort
	}
	r := bits.NewReader(b)
	tableID, _ := r.Read(8)
	ssi, _ := r.Read(1)
	r.Skip(1)
	r.Skip(2)
	length, _ := r.Read(12)
	total := 3 + int(length)
	if len(b) < total {
		return nil, 0, ErrSectionShort
	}
	if !crc.SelfCheck(b[:total]) {
		return nil, 0, ErrSectionCRC
	}
	if ssi != 1 {
		return nil, 0, errors.New("mpegts: short-form sections unsupported")
	}
	if length < 9 {
		return nil, 0, ErrSectionShort
	}
	ext, _ := r.Read(16)
	r.Skip(2)
	version, _ := r.Read(5)
	cn, _ := r.Read(1)
	num, _ := r.Read(8)
	last, _ := r.Read(8)
	payload := b[sectionHeaderLen : total-4]
	return &Section{
		TableID:     uint8(tableID),
		TableIDExt:  uint16(ext),
		Version:     uint8(version),
		CurrentNext: cn == 1,
		Number:      uint8(num),
		LastNumber:  uint8(last),
		Payload:     payload,
	}, total, nil
}

// PacketizeSection splits one encoded section into TS packets on pid.
// Each section starts a fresh packet (pointer_field = 0); the final
// packet's tail is stuffed with 0xFF as PSI rules allow. cc is the
// continuity counter of the first packet; the next counter value is
// returned.
func PacketizeSection(pid uint16, cc uint8, section []byte) ([]*Packet, uint8, error) {
	if len(section) == 0 {
		return nil, cc, errors.New("mpegts: empty section")
	}
	var pkts []*Packet
	first := true
	rest := section
	for len(rest) > 0 {
		capacity := MaxPayload
		var payload []byte
		if first {
			capacity-- // pointer_field
			n := min(capacity, len(rest))
			payload = make([]byte, 1+n, MaxPayload)
			payload[0] = 0 // pointer_field: section starts immediately
			copy(payload[1:], rest[:n])
			rest = rest[n:]
		} else {
			n := min(capacity, len(rest))
			payload = make([]byte, n, MaxPayload)
			copy(payload, rest[:n])
			rest = rest[n:]
		}
		for len(payload) < cap(payload) {
			payload = append(payload, 0xFF)
		}
		pkts = append(pkts, &Packet{PUSI: first, PID: pid, Continuity: cc & 0x0F, Payload: payload})
		cc = (cc + 1) & 0x0F
		first = false
	}
	return pkts, cc, nil
}

// Assembler reconstructs sections from the TS packets of one PID.
type Assembler struct {
	PID uint16

	buf     []byte
	lastCC  int // -1 before first packet
	started bool

	// Completed counts CRC-valid sections produced; Errors counts
	// discarded partials (continuity gaps, CRC failures).
	Completed int
	Errors    int
}

// NewAssembler returns an assembler for pid.
func NewAssembler(pid uint16) *Assembler {
	return &Assembler{PID: pid, lastCC: -1}
}

// Push feeds one packet and returns any sections completed by it (raw,
// CRC-verified bytes).
func (a *Assembler) Push(p *Packet) [][]byte {
	if p.PID != a.PID || p.Payload == nil {
		return nil
	}
	if a.lastCC >= 0 && int(p.Continuity) != (a.lastCC+1)&0x0F {
		// Continuity break: discard any partial section.
		if a.started {
			a.Errors++
		}
		a.buf = nil
		a.started = false
	}
	a.lastCC = int(p.Continuity)

	data := p.Payload
	if p.PUSI {
		if len(data) < 1 {
			return nil
		}
		ptr := int(data[0])
		if 1+ptr > len(data) {
			a.Errors++
			return nil
		}
		tail := data[1 : 1+ptr]
		if a.started {
			a.buf = append(a.buf, tail...)
		}
		out := a.drain()
		a.buf = append([]byte(nil), data[1+ptr:]...)
		a.started = true
		return append(out, a.drain()...)
	}
	if !a.started {
		return nil // waiting for a PUSI
	}
	a.buf = append(a.buf, data...)
	return a.drain()
}

// drain extracts all complete sections currently in the buffer.
func (a *Assembler) drain() [][]byte {
	var out [][]byte
	for {
		if len(a.buf) == 0 {
			return out
		}
		if a.buf[0] == 0xFF { // stuffing: rest of buffer is padding
			a.buf = nil
			a.started = false
			return out
		}
		if len(a.buf) < 3 {
			return out
		}
		length := int(a.buf[1]&0x0F)<<8 | int(a.buf[2])
		total := 3 + length
		if len(a.buf) < total {
			return out
		}
		sec := append([]byte(nil), a.buf[:total]...)
		a.buf = a.buf[total:]
		if crc.SelfCheck(sec) {
			a.Completed++
			out = append(out, sec)
		} else {
			a.Errors++
		}
	}
}
