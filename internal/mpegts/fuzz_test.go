package mpegts

import (
	"bytes"
	"testing"
)

// FuzzDecodeSection: the section parser faces whatever the demodulator
// produces; it must never panic and never accept a CRC-broken section.
func FuzzDecodeSection(f *testing.F) {
	s := &Section{TableID: 0x3C, TableIDExt: 7, Payload: []byte("block data")}
	raw, err := s.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		sec, n, err := DecodeSection(data)
		if err != nil {
			return
		}
		if sec == nil || n <= 0 || n > len(data) {
			t.Fatalf("inconsistent success: n=%d", n)
		}
		// A successful decode re-encodes to the same bytes.
		re, err := sec.Encode()
		if err != nil {
			t.Fatalf("decoded section fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatal("decode/encode not inverse")
		}
	})
}

// FuzzParsePacket must never panic on a 188-byte buffer.
func FuzzParsePacket(f *testing.F) {
	p := &Packet{PID: 0x100, PUSI: true, Payload: bytes.Repeat([]byte{1}, 184)}
	raw, _ := p.Marshal()
	f.Add(raw)
	f.Add(make([]byte, PacketSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := ParsePacket(data)
		if err == nil && pkt == nil {
			t.Fatal("nil packet without error")
		}
	})
}

// FuzzAssembler pushes arbitrary packet streams through reassembly; the
// CRC gate must hold (no corrupt section ever emitted as valid).
func FuzzAssembler(f *testing.F) {
	s := &Section{TableID: 0x3B, Payload: bytes.Repeat([]byte{0xA5}, 500)}
	raw, _ := s.Encode()
	pkts, _, _ := PacketizeSection(0x55, 0, raw)
	var stream []byte
	for _, p := range pkts {
		b, _ := p.Marshal()
		stream = append(stream, b...)
	}
	f.Add(stream)
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewAssembler(0x55)
		for off := 0; off+PacketSize <= len(data); off += PacketSize {
			p, err := ParsePacket(data[off : off+PacketSize])
			if err != nil {
				continue
			}
			for _, sec := range a.Push(p) {
				if _, _, err := DecodeSection(sec); err != nil {
					t.Fatalf("assembler emitted an invalid section: %v", err)
				}
			}
		}
	})
}
