package mpegts

import (
	"bytes"
	"reflect"
	"testing"
)

func TestPATRoundTrip(t *testing.T) {
	pat := &PAT{
		TransportStreamID: 0x1001,
		Version:           3,
		Programs:          map[uint16]uint16{1: 0x100, 2: 0x200, 65000: 0x1F00},
	}
	raw, err := EncodePAT(pat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePAT(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pat) {
		t.Fatalf("got %+v want %+v", got, pat)
	}
}

func TestPMTRoundTrip(t *testing.T) {
	pmt := &PMT{
		ProgramNumber: 1,
		Version:       7,
		PCRPID:        0x1FFF,
		Streams: []ESInfo{
			{StreamType: StreamTypeDSMCCSections, PID: 0x300,
				Descriptors: []Descriptor{{Tag: 0x52, Data: []byte{0x01}}}},
			{StreamType: StreamTypePrivateData, PID: 0x301},
		},
	}
	raw, err := EncodePMT(pmt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePMT(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramNumber != pmt.ProgramNumber || got.PCRPID != pmt.PCRPID || got.Version != pmt.Version {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Streams) != 2 {
		t.Fatalf("streams = %d", len(got.Streams))
	}
	if got.Streams[0].PID != 0x300 || got.Streams[0].StreamType != StreamTypeDSMCCSections {
		t.Fatalf("stream 0: %+v", got.Streams[0])
	}
	if len(got.Streams[0].Descriptors) != 1 || got.Streams[0].Descriptors[0].Tag != 0x52 ||
		!bytes.Equal(got.Streams[0].Descriptors[0].Data, []byte{0x01}) {
		t.Fatalf("descriptors: %+v", got.Streams[0].Descriptors)
	}
	if got.Streams[1].Descriptors != nil {
		t.Fatalf("unexpected descriptors on stream 1")
	}
}

func TestDecodePATRejectsWrongTable(t *testing.T) {
	pmt := &PMT{ProgramNumber: 1, PCRPID: 1}
	raw, _ := EncodePMT(pmt)
	if _, err := DecodePAT(raw); err == nil {
		t.Fatal("PMT accepted as PAT")
	}
	pat := &PAT{Programs: map[uint16]uint16{1: 2}}
	rawPAT, _ := EncodePAT(pat)
	if _, err := DecodePMT(rawPAT); err == nil {
		t.Fatal("PAT accepted as PMT")
	}
}

func TestMuxDemuxEndToEnd(t *testing.T) {
	mux := NewMux()
	// Three PIDs carrying different tables, interleaved.
	pat := &PAT{TransportStreamID: 9, Programs: map[uint16]uint16{1: 0x100}}
	rawPAT, _ := EncodePAT(pat)
	if err := mux.EnqueueSection(PATPID, rawPAT); err != nil {
		t.Fatal(err)
	}
	var wantData [][]byte
	for i := 0; i < 5; i++ {
		s := &Section{TableID: TableIDDSMCCDDB, TableIDExt: uint16(i), Payload: bytes.Repeat([]byte{byte(i)}, 900)}
		raw, _ := s.Encode()
		wantData = append(wantData, raw)
		if err := mux.EnqueueSection(0x300, raw); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := mux.DrainBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(stream)%PacketSize != 0 {
		t.Fatalf("stream not packet-aligned: %d", len(stream))
	}

	demux := NewDemux()
	var gotPAT *PAT
	var gotData [][]byte
	demux.Handle(PATPID, func(sec []byte) {
		p, err := DecodePAT(sec)
		if err != nil {
			t.Errorf("decode PAT: %v", err)
			return
		}
		gotPAT = p
	})
	demux.Handle(0x300, func(sec []byte) { gotData = append(gotData, sec) })
	if err := demux.PushBytes(stream); err != nil {
		t.Fatal(err)
	}
	if gotPAT == nil || gotPAT.Programs[1] != 0x100 {
		t.Fatalf("PAT not recovered: %+v", gotPAT)
	}
	if len(gotData) != len(wantData) {
		t.Fatalf("recovered %d data sections, want %d", len(gotData), len(wantData))
	}
	for i := range gotData {
		if !bytes.Equal(gotData[i], wantData[i]) {
			t.Fatalf("data section %d differs", i)
		}
	}
}

func TestDemuxCountsUnhandled(t *testing.T) {
	demux := NewDemux()
	p := &Packet{PID: 0x99, Payload: bytes.Repeat([]byte{0}, 184)}
	demux.PushPacket(p)
	if demux.Unhandled != 1 {
		t.Fatalf("Unhandled = %d", demux.Unhandled)
	}
}

func TestDemuxUnhandle(t *testing.T) {
	demux := NewDemux()
	n := 0
	demux.Handle(5, func([]byte) { n++ })
	s := &Section{TableID: 1, Payload: []byte{1}}
	raw, _ := s.Encode()
	pkts, _, _ := PacketizeSection(5, 0, raw)
	for _, p := range pkts {
		demux.PushPacket(p)
	}
	demux.Unhandle(5)
	pkts2, _, _ := PacketizeSection(5, 1, raw)
	for _, p := range pkts2 {
		demux.PushPacket(p)
	}
	if n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
}
