// Package crc implements CRC-32/MPEG-2 as required by MPEG-2 PSI and
// DSM-CC sections (ISO/IEC 13818-1 Annex A): polynomial 0x04C11DB7,
// initial value 0xFFFFFFFF, no input/output reflection, no final XOR.
//
// The stdlib hash/crc32 only provides reflected variants, so the MPEG
// flavour is implemented here with a precomputed table.
package crc

var table [256]uint32

func init() {
	const poly = 0x04C11DB7
	for i := 0; i < 256; i++ {
		c := uint32(i) << 24
		for bit := 0; bit < 8; bit++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		table[i] = c
	}
}

// Update folds p into the running CRC value.
func Update(crc uint32, p []byte) uint32 {
	for _, b := range p {
		crc = crc<<8 ^ table[byte(crc>>24)^b]
	}
	return crc
}

// Checksum computes the CRC-32/MPEG-2 of p.
func Checksum(p []byte) uint32 {
	return Update(0xFFFFFFFF, p)
}

// SelfCheck reports whether a section whose last four bytes hold its
// CRC-32/MPEG-2 verifies: the CRC of the whole buffer, checksum included,
// is zero for a valid section.
func SelfCheck(section []byte) bool {
	return len(section) >= 4 && Checksum(section) == 0
}
