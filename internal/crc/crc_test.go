package crc

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestKnownVector(t *testing.T) {
	// The catalogue check value for CRC-32/MPEG-2 ("123456789").
	got := Checksum([]byte("123456789"))
	const want = 0x0376E6E7
	if got != want {
		t.Fatalf("Checksum(123456789) = %#08x, want %#08x", got, want)
	}
}

func TestEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xFFFFFFFF {
		t.Fatalf("Checksum(nil) = %#08x, want 0xFFFFFFFF", got)
	}
}

func TestUpdateIncremental(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	whole := Checksum(data)
	part := Update(Update(0xFFFFFFFF, data[:10]), data[10:])
	if whole != part {
		t.Fatalf("incremental %#08x != whole %#08x", part, whole)
	}
}

// Property: appending the big-endian CRC to any payload yields a buffer
// whose self-check passes — exactly how MPEG sections are validated.
func TestSelfCheckProperty(t *testing.T) {
	f := func(payload []byte) bool {
		c := Checksum(payload)
		buf := make([]byte, len(payload)+4)
		copy(buf, payload)
		binary.BigEndian.PutUint32(buf[len(payload):], c)
		return SelfCheck(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any byte breaks the self-check.
func TestCorruptionDetectedProperty(t *testing.T) {
	f := func(payload []byte, pos uint8, flip uint8) bool {
		if flip == 0 {
			flip = 1
		}
		c := Checksum(payload)
		buf := make([]byte, len(payload)+4)
		copy(buf, payload)
		binary.BigEndian.PutUint32(buf[len(payload):], c)
		i := int(pos) % len(buf)
		buf[i] ^= flip
		return !SelfCheck(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChecksum4K(b *testing.B) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}
