// Package workload models MTC jobs as the paper defines them: a job is
// J = (I, n, T, R) with image size I, n independent tasks, each task
// t = (s, p) with input size s and processing time p on a reference
// set-top box, producing a result of size r. Generators build jobs for
// the experiment sweeps, including the Φ-parameterized scenarios of
// Figures 6 and 7.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"oddci/internal/analytic"
)

// Task is one unit of independent work.
type Task struct {
	ID int
	// InputBytes is s: bytes fetched from the Backend before
	// processing (0 for parametric applications).
	InputBytes int
	// OutputBytes is r: bytes of result returned to the Backend.
	OutputBytes int
	// STBSeconds is p: processing time on a reference set-top box.
	STBSeconds float64
	// Payload optionally carries concrete work (e.g. a BLAST work
	// unit) for byte-exact demos; the simulator only needs the sizes.
	Payload any
}

// Job is a bag of independent tasks plus the application image that must
// be staged to every node.
type Job struct {
	Name       string
	ImageBytes int
	Tasks      []Task
}

// TotalSTBSeconds sums task processing times.
func (j *Job) TotalSTBSeconds() float64 {
	var total float64
	for _, t := range j.Tasks {
		total += t.STBSeconds
	}
	return total
}

// MeanTask returns the average (s, r, p) across the job's tasks.
func (j *Job) MeanTask() (inBytes, outBytes float64, seconds float64) {
	if len(j.Tasks) == 0 {
		return 0, 0, 0
	}
	for _, t := range j.Tasks {
		inBytes += float64(t.InputBytes)
		outBytes += float64(t.OutputBytes)
		seconds += t.STBSeconds
	}
	n := float64(len(j.Tasks))
	return inBytes / n, outBytes / n, seconds / n
}

// Generator builds synthetic jobs.
type Generator struct {
	// Name labels generated jobs.
	Name string
	// ImageBytes is the application image size I.
	ImageBytes int
	// Tasks is n.
	Tasks int
	// InputBytes, OutputBytes are the mean s and r.
	InputBytes, OutputBytes int
	// MeanSeconds is the mean p on a reference STB.
	MeanSeconds float64
	// JitterCV, if positive, draws each task's p from a lognormal with
	// this coefficient of variation around MeanSeconds. Sizes stay
	// fixed.
	JitterCV float64
	// Rng drives jitter; required when JitterCV > 0.
	Rng *rand.Rand
}

// Generate builds the job.
func (g *Generator) Generate() (*Job, error) {
	if g.Tasks <= 0 {
		return nil, fmt.Errorf("workload: task count %d must be positive", g.Tasks)
	}
	if g.MeanSeconds <= 0 {
		return nil, fmt.Errorf("workload: mean task time %v must be positive", g.MeanSeconds)
	}
	if g.JitterCV > 0 && g.Rng == nil {
		return nil, fmt.Errorf("workload: jitter requires a Rng")
	}
	j := &Job{Name: g.Name, ImageBytes: g.ImageBytes, Tasks: make([]Task, g.Tasks)}
	// Lognormal with mean MeanSeconds and CV JitterCV:
	// sigma² = ln(1+CV²), mu = ln(mean) - sigma²/2.
	var mu, sigma float64
	if g.JitterCV > 0 {
		sigma2 := math.Log(1 + g.JitterCV*g.JitterCV)
		sigma = math.Sqrt(sigma2)
		mu = math.Log(g.MeanSeconds) - sigma2/2
	}
	for i := range j.Tasks {
		p := g.MeanSeconds
		if g.JitterCV > 0 {
			p = math.Exp(mu + sigma*g.Rng.NormFloat64())
		}
		j.Tasks[i] = Task{
			ID:          i,
			InputBytes:  g.InputBytes,
			OutputBytes: g.OutputBytes,
			STBSeconds:  p,
		}
	}
	return j, nil
}

// FromParams builds the uniform job described by an analytic parameter
// set — the bridge between the closed-form models and the simulator.
func FromParams(p analytic.Params, name string) (*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		Name:        name,
		ImageBytes:  int(p.ImageBits / 8),
		Tasks:       int(p.Tasks),
		InputBytes:  int(p.TaskInBits / 8),
		OutputBytes: int(p.TaskOutBits / 8),
		MeanSeconds: p.TaskSeconds,
	}
	return g.Generate()
}

// Params derives the analytic parameters that describe this job on an
// instance of N nodes with channel capacities beta and delta.
func (j *Job) Params(nodes int, beta, delta float64) analytic.Params {
	s, r, p := j.MeanTask()
	return analytic.Params{
		ImageBits:   float64(j.ImageBytes) * 8,
		Beta:        beta,
		Delta:       delta,
		N:           float64(nodes),
		Tasks:       float64(len(j.Tasks)),
		TaskInBits:  s * 8,
		TaskOutBits: r * 8,
		TaskSeconds: p,
	}
}
