package workload

import (
	"math"
	"math/rand"
	"testing"

	"oddci/internal/analytic"
)

func TestGeneratorUniform(t *testing.T) {
	g := &Generator{Name: "u", ImageBytes: 1 << 20, Tasks: 100,
		InputBytes: 512, OutputBytes: 512, MeanSeconds: 2}
	j, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Tasks) != 100 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	for i, task := range j.Tasks {
		if task.ID != i || task.STBSeconds != 2 || task.InputBytes != 512 {
			t.Fatalf("task %d: %+v", i, task)
		}
	}
	if got := j.TotalSTBSeconds(); got != 200 {
		t.Fatalf("total = %v", got)
	}
	s, r, p := j.MeanTask()
	if s != 512 || r != 512 || p != 2 {
		t.Fatalf("means = %v %v %v", s, r, p)
	}
}

func TestGeneratorJitterPreservesMean(t *testing.T) {
	g := &Generator{Tasks: 20000, MeanSeconds: 5, JitterCV: 0.5,
		Rng: rand.New(rand.NewSource(42))}
	j, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	_, _, p := j.MeanTask()
	if math.Abs(p-5)/5 > 0.03 {
		t.Fatalf("jittered mean %v, want ≈5", p)
	}
	var differ bool
	for _, task := range j.Tasks[1:] {
		if task.STBSeconds != j.Tasks[0].STBSeconds {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("jitter produced identical tasks")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := (&Generator{Tasks: 0, MeanSeconds: 1}).Generate(); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := (&Generator{Tasks: 1}).Generate(); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := (&Generator{Tasks: 1, MeanSeconds: 1, JitterCV: 0.1}).Generate(); err == nil {
		t.Fatal("jitter without rng accepted")
	}
}

func TestFromParamsRoundTrip(t *testing.T) {
	p := analytic.Figure6Defaults(10, 100).WithPhi(100)
	j, err := FromParams(p, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	got := j.Params(100, p.Beta, p.Delta)
	if math.Abs(got.TaskSeconds-p.TaskSeconds) > 1e-9 {
		t.Fatalf("p: %v vs %v", got.TaskSeconds, p.TaskSeconds)
	}
	if got.Tasks != p.Tasks {
		t.Fatalf("n: %v vs %v", got.Tasks, p.Tasks)
	}
	if math.Abs(got.Makespan()-p.Makespan()) > 1e-6*p.Makespan() {
		t.Fatalf("makespan drifted: %v vs %v", got.Makespan(), p.Makespan())
	}
	if _, err := FromParams(analytic.Params{}, "bad"); err == nil {
		t.Fatal("invalid params accepted")
	}
}
