package netsim

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/simtime"
)

func TestBusPerSubscriberLoss(t *testing.T) {
	clk := simtime.NewSim(epoch)
	rng := rand.New(rand.NewSource(13))
	bus := NewBus(clk, BusConfig{RateBps: 0, DropProb: 0.3, Rng: rng})
	const subs = 400
	received := make([]int, subs)
	for i := 0; i < subs; i++ {
		i := i
		bus.Subscribe(func(p Packet) { received[i]++ })
	}
	const msgs = 50
	for m := 0; m < msgs; m++ {
		bus.Publish("c", m, 100)
	}
	clk.Wait()
	total := 0
	for _, r := range received {
		total += r
	}
	want := float64(subs*msgs) * 0.7
	got := float64(total)
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("delivered %d of %d with p_drop=0.3, want ≈%.0f", total, subs*msgs, want)
	}
	// Loss must be independent per subscriber: some spread expected.
	min, max := received[0], received[0]
	for _, r := range received[1:] {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min == max {
		t.Fatal("per-subscriber loss is not independent")
	}
}

func TestLinkLatencyOnly(t *testing.T) {
	clk := simtime.NewSim(epoch)
	dst := NewMailbox[Packet](clk)
	l := NewLink(clk, LinkConfig{Latency: 250 * time.Millisecond}, dst)
	l.Send(Packet{Payload: 1, Size: 1 << 20}) // infinite rate: pure latency
	clk.Wait()
	p, ok := dst.TryRecv()
	if !ok || !p.ArrivedAt.Equal(epoch.Add(250*time.Millisecond)) {
		t.Fatalf("arrival %v", p.ArrivedAt)
	}
}

func TestMailboxManyWaiters(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	const readers = 20
	var mu sync.Mutex
	got := make([]int, 0, readers)
	for i := 0; i < readers; i++ {
		clk.Go(func() {
			v, err := m.Recv()
			if err == nil {
				mu.Lock()
				got = append(got, v)
				mu.Unlock()
			}
		})
	}
	clk.AfterFunc(time.Second, func() {
		for i := 0; i < readers; i++ {
			m.Put(i)
		}
	})
	clk.Wait()
	if len(got) != readers {
		t.Fatalf("%d of %d readers served", len(got), readers)
	}
}
