package netsim

import (
	"math/rand"
	"testing"
)

func TestRingFIFOAcrossGrowth(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 10_000; step++ {
		if rng.Intn(3) > 0 {
			r.PushBack(next)
			next++
		} else if v, ok := r.PopFront(); ok {
			if v != want {
				t.Fatalf("PopFront = %d, want %d", v, want)
			}
			want++
		}
		if r.Len() != next-want {
			t.Fatalf("Len = %d, want %d", r.Len(), next-want)
		}
	}
	for want < next {
		v, ok := r.PopFront()
		if !ok || v != want {
			t.Fatalf("drain PopFront = %d,%v want %d,true", v, ok, want)
		}
		want++
	}
	if _, ok := r.PopFront(); ok {
		t.Fatal("PopFront on empty ring returned ok")
	}
}

func TestRingPeek(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring returned ok")
	}
	r.PushBack("a")
	r.PushBack("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v want a,true", v, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Peek consumed an item: Len = %d", r.Len())
	}
}

// TestRingReleasesPoppedSlots is the slice-retention regression: after a
// pointer payload is dequeued, no slot of the backing array may still
// reference it (the old q = q[1:] idiom kept the array head alive
// forever).
func TestRingReleasesPoppedSlots(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 100; i++ {
		v := i
		r.PushBack(&v)
	}
	for i := 0; i < 60; i++ {
		if _, ok := r.PopFront(); !ok {
			t.Fatal("unexpected empty ring")
		}
	}
	live := 0
	for _, p := range r.buf {
		if p != nil {
			live++
		}
	}
	if live != r.Len() {
		t.Fatalf("%d non-nil slots in the backing array, want exactly Len()=%d: popped payloads are being retained", live, r.Len())
	}
}
