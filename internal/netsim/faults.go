package netsim

import (
	"math/rand"
	"sync"
	"time"

	"oddci/internal/obs"
)

// FaultPlan is a seeded, concurrency-safe fault-injection schedule:
// each call to Next draws whether the guarded operation should fail.
// It is the deterministic seam churn tests use to make head-end
// updates, broadcast sections, or direct-channel operations flaky
// without wiring randomness into the components themselves.
type FaultPlan struct {
	mu sync.Mutex
	// rng drives the failure draws.
	rng *rand.Rand
	// failProb is the per-operation failure probability.
	failProb float64
	// maxConsecutive bounds runs of injected failures (0 = unbounded):
	// with a bound, progress is guaranteed — the property retry loops
	// are tested against.
	maxConsecutive int
	consecutive    int
	// forced failures are consumed before any probabilistic draw.
	forced   int
	injected int64
	failed   int64
	// delay, if positive, is reported by Delay for callers modelling
	// slow (rather than failing) operations.
	delay time.Duration
}

// NewFaultPlan builds a plan failing each operation with probability
// failProb, never injecting more than maxConsecutive failures in a row
// (0 = unbounded). rng is required when failProb is in (0,1).
func NewFaultPlan(rng *rand.Rand, failProb float64, maxConsecutive int) *FaultPlan {
	return &FaultPlan{rng: rng, failProb: failProb, maxConsecutive: maxConsecutive}
}

// WithDelay sets the slow-operation latency reported by Delay and
// returns the plan (builder style).
func (f *FaultPlan) WithDelay(d time.Duration) *FaultPlan {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
	return f
}

// Next draws one operation: true means the caller should fail it.
func (f *FaultPlan) Next() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.injected++
	if f.forced > 0 {
		f.forced--
		f.consecutive++
		f.failed++
		return true
	}
	fail := false
	switch {
	case f.failProb >= 1:
		fail = true
	case f.failProb > 0 && f.rng != nil:
		fail = f.rng.Float64() < f.failProb
	}
	if fail && f.maxConsecutive > 0 && f.consecutive >= f.maxConsecutive {
		fail = false
	}
	if fail {
		f.consecutive++
		f.failed++
	} else {
		f.consecutive = 0
	}
	return fail
}

// FailNext forces the next n draws to fail regardless of probability
// and the consecutive bound — deterministic scripts use it to stage
// exact failure bursts.
func (f *FaultPlan) FailNext(n int) {
	f.mu.Lock()
	f.forced += n
	f.mu.Unlock()
}

// Delay reports the configured slow-operation latency (0 = fast).
func (f *FaultPlan) Delay() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay
}

// Stats reports operations seen and failures injected.
func (f *FaultPlan) Stats() (injected, failed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected, f.failed
}

// Instrument exposes the plan's draw and injected-failure counts as
// gauges named oddci_netsim_<label>_ops and oddci_netsim_<label>_faults.
func (f *FaultPlan) Instrument(reg *obs.Registry, label string) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("oddci_netsim_"+label+"_ops", "Operations drawn against the "+label+" fault plan", func() float64 {
		ops, _ := f.Stats()
		return float64(ops)
	})
	reg.GaugeFunc("oddci_netsim_"+label+"_faults", "Failures injected by the "+label+" fault plan", func() float64 {
		_, failed := f.Stats()
		return float64(failed)
	})
}
