package netsim

// Ring is a growable FIFO ring buffer. It replaces the q = q[1:]
// dequeue idiom, which never releases the backing array's head: under
// that idiom every delivered payload stays reachable until the slice
// happens to reallocate, which for a long-lived mailbox is never. Ring
// reuses one backing array, and PopFront zeroes the vacated slot so
// pointer payloads become collectable the moment they are consumed.
//
// The zero value is an empty, ready-to-use ring. Ring is not
// synchronized; callers guard it with their own locking (the Mailbox
// mutex, or the fleet harness's single-threaded event loop, which uses
// the same type for its join/event queues).
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued items.
func (r *Ring[T]) Len() int { return r.n }

// PushBack appends v, growing the backing array by doubling when full.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PopFront removes and returns the oldest item, zeroing its slot.
func (r *Ring[T]) PopFront() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// Peek returns the oldest item without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	if r.n == 0 {
		var zero T
		return zero, false
	}
	return r.buf[r.head], true
}

func (r *Ring[T]) grow() {
	capacity := 2 * len(r.buf)
	if capacity < 8 {
		capacity = 8
	}
	buf := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
