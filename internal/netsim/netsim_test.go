package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func TestMailboxFIFO(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	for i := 0; i < 10; i++ {
		m.Put(i)
	}
	for i := 0; i < 10; i++ {
		v, ok := m.TryRecv()
		if !ok || v != i {
			t.Fatalf("TryRecv = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[string](clk)
	var got string
	var at time.Time
	clk.Go(func() {
		v, err := m.Recv()
		if err != nil {
			t.Errorf("Recv error: %v", err)
		}
		got, at = v, clk.Now()
	})
	clk.AfterFunc(5*time.Second, func() { m.Put("hello") })
	clk.Wait()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if !at.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("received at %v, want epoch+5s", at)
	}
}

func TestMailboxClose(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	m.Put(1)
	m.Close()
	v, err := m.Recv()
	if err != nil || v != 1 {
		t.Fatalf("Recv after close should drain queue first, got %v,%v", v, err)
	}
	if _, err := m.Recv(); err != ErrClosed {
		t.Fatalf("Recv on drained closed mailbox = %v, want ErrClosed", err)
	}
	var blockedErr error
	clk.Go(func() {
		m2 := NewMailbox[int](clk)
		clk.AfterFunc(time.Second, m2.Close)
		_, blockedErr = m2.Recv()
	})
	clk.Wait()
	if blockedErr != ErrClosed {
		t.Fatalf("blocked Recv after Close = %v, want ErrClosed", blockedErr)
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	var err1 error
	var v2 int
	var err2 error
	clk.Go(func() {
		_, err1 = m.RecvTimeout(2 * time.Second) // nothing arrives: timeout at +2s
		clk.AfterFunc(time.Second, func() { m.Put(42) })
		v2, err2 = m.RecvTimeout(5 * time.Second) // arrives at +3s
	})
	clk.Wait()
	if err1 != ErrTimeout {
		t.Fatalf("first RecvTimeout = %v, want ErrTimeout", err1)
	}
	if err2 != nil || v2 != 42 {
		t.Fatalf("second RecvTimeout = %d,%v want 42,nil", v2, err2)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	clk := simtime.NewSim(epoch)
	dst := NewMailbox[Packet](clk)
	// 1 Mbps, 100ms latency: 125000 bytes take 1s on the wire.
	l := NewLink(clk, LinkConfig{RateBps: 1e6, Latency: 100 * time.Millisecond}, dst)
	l.Send(Packet{Payload: "a", Size: 125000})
	clk.Wait()
	p, ok := dst.TryRecv()
	if !ok {
		t.Fatal("packet not delivered")
	}
	want := epoch.Add(1*time.Second + 100*time.Millisecond)
	if !p.ArrivedAt.Equal(want) {
		t.Fatalf("arrived at %v, want %v", p.ArrivedAt, want)
	}
}

func TestLinkBackToBackSerializes(t *testing.T) {
	clk := simtime.NewSim(epoch)
	dst := NewMailbox[Packet](clk)
	l := NewLink(clk, LinkConfig{RateBps: 8e6}, dst) // 1 MB/s
	for i := 0; i < 3; i++ {
		l.Send(Packet{Payload: i, Size: 1 << 20}) // 1 MiB each
	}
	clk.Wait()
	var arrivals []time.Time
	for {
		p, ok := dst.TryRecv()
		if !ok {
			break
		}
		arrivals = append(arrivals, p.ArrivedAt)
	}
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(arrivals))
	}
	per := serialization(1<<20, 8e6)
	for i, a := range arrivals {
		want := epoch.Add(time.Duration(i+1) * per)
		if !a.Equal(want) {
			t.Fatalf("packet %d arrived %v, want %v (strict serialization)", i, a, want)
		}
	}
}

func TestLinkLoss(t *testing.T) {
	clk := simtime.NewSim(epoch)
	dst := NewMailbox[Packet](clk)
	rng := rand.New(rand.NewSource(7))
	l := NewLink(clk, LinkConfig{RateBps: 0, DropProb: 0.5, Rng: rng}, dst)
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(Packet{Size: 10})
	}
	clk.Wait()
	sent, dropped, _ := l.Stats()
	if sent != n {
		t.Fatalf("sent %d, want %d", sent, n)
	}
	got := dst.Len()
	if got+int(dropped) != n {
		t.Fatalf("delivered %d + dropped %d != %d", got, dropped, n)
	}
	if got < n/2-150 || got > n/2+150 {
		t.Fatalf("delivered %d of %d with p=0.5; outside tolerance", got, n)
	}
}

func TestDuplexRoundTrip(t *testing.T) {
	clk := simtime.NewSim(epoch)
	cfg := LinkConfig{RateBps: 150e3, Latency: 50 * time.Millisecond} // δ=150 kbps
	a, b := NewDuplex(clk, "stb", "backend", cfg, cfg)
	var rtt time.Duration
	clk.Go(func() { // server
		p, err := b.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		b.Send(p.From, "resp", 1024)
	})
	clk.Go(func() { // client
		start := clk.Now()
		a.Send("backend", "req", 1024)
		if _, err := a.Recv(); err != nil {
			t.Errorf("client recv: %v", err)
			return
		}
		rtt = clk.Now().Sub(start)
	})
	clk.Wait()
	// Each direction: 1024B at 150kbps = 54.6ms + 50ms latency.
	oneWay := serialization(1024, 150e3) + 50*time.Millisecond
	want := 2 * oneWay
	if rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}

func TestBusReachesAllSubscribers(t *testing.T) {
	clk := simtime.NewSim(epoch)
	bus := NewBus(clk, BusConfig{RateBps: 1e6})
	const n = 500
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		bus.Subscribe(func(p Packet) { got[i]++ })
	}
	bus.Publish("controller", "wakeup", 125000) // 1s at 1 Mbps
	clk.Wait()
	for i, c := range got {
		if c != 1 {
			t.Fatalf("subscriber %d received %d packets, want 1", i, c)
		}
	}
}

func TestBusDeliveryTimeIndependentOfN(t *testing.T) {
	arrival := func(n int) time.Time {
		clk := simtime.NewSim(epoch)
		bus := NewBus(clk, BusConfig{RateBps: 1e6})
		var at time.Time
		for i := 0; i < n; i++ {
			bus.Subscribe(func(p Packet) { at = p.ArrivedAt })
		}
		bus.Publish("c", "img", 1<<20)
		clk.Wait()
		return at
	}
	if a1, a2 := arrival(1), arrival(10000); !a1.Equal(a2) {
		t.Fatalf("broadcast arrival depends on N: %v vs %v", a1, a2)
	}
}

func TestBusUnsubscribe(t *testing.T) {
	clk := simtime.NewSim(epoch)
	bus := NewBus(clk, BusConfig{})
	count := 0
	sub := bus.Subscribe(func(p Packet) { count++ })
	bus.Publish("c", 1, 10)
	clk.Wait()
	sub.Cancel()
	bus.Publish("c", 2, 10)
	clk.Wait()
	if count != 1 {
		t.Fatalf("received %d packets, want 1 (unsubscribed before second)", count)
	}
	if bus.Subscribers() != 0 {
		t.Fatalf("subscribers = %d, want 0", bus.Subscribers())
	}
}

func TestBusSerializesTransmissions(t *testing.T) {
	clk := simtime.NewSim(epoch)
	bus := NewBus(clk, BusConfig{RateBps: 8e6})
	var arrivals []time.Time
	bus.Subscribe(func(p Packet) { arrivals = append(arrivals, p.ArrivedAt) })
	bus.Publish("c", "m1", 1<<20)
	bus.Publish("c", "m2", 1<<20)
	clk.Wait()
	per := serialization(1<<20, 8e6)
	if len(arrivals) != 2 || !arrivals[1].Equal(epoch.Add(2*per)) {
		t.Fatalf("arrivals %v, want second at epoch+%v", arrivals, 2*per)
	}
}

// Property: serialization delay is additive and proportional to size.
func TestSerializationProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		rate := 1e6
		da := serialization(int(a), rate)
		db := serialization(int(b), rate)
		dab := serialization(int(a)+int(b), rate)
		diff := dab - da - db
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond // rounding tolerance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationZeroRateInstant(t *testing.T) {
	if serialization(1<<30, 0) != 0 {
		t.Fatal("zero rate should mean infinite capacity")
	}
}
