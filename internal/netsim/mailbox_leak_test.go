package netsim

import (
	"errors"
	"testing"
	"time"

	"oddci/internal/simtime"
)

// TestMailboxRecvTimeoutNoWaiterLeak is the stale-waiter regression: a
// receiver that repeatedly times out on an idle mailbox must not grow
// the waiter list — before the fix every timeout left its spent wake
// closure registered until the next Put.
func TestMailboxRecvTimeoutNoWaiterLeak(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[*int](clk)
	const rounds = 64
	clk.Go(func() {
		for i := 0; i < rounds; i++ {
			if _, err := m.RecvTimeout(time.Second); !errors.Is(err, ErrTimeout) {
				t.Errorf("round %d: err = %v, want ErrTimeout", i, err)
			}
		}
	})
	clk.Wait()
	if n := m.waiterCount(); n != 0 {
		t.Fatalf("%d stale waiters after %d timeouts, want 0", n, rounds)
	}
}

// TestMailboxTimeoutsInterleavedWithDeliveries mixes timed-out and
// successful receives (including two concurrent receivers) and asserts
// both delivery correctness and a clean waiter list afterwards.
func TestMailboxTimeoutsInterleavedWithDeliveries(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	got := make(chan int, 16)
	recv := func() {
		deliveries := 0
		for deliveries < 2 {
			v, err := m.RecvTimeout(3 * time.Second)
			switch {
			case err == nil:
				got <- v
				deliveries++
			case errors.Is(err, ErrTimeout):
				// Idle stretch: keep polling, as the PNA poll loops do.
			default:
				t.Errorf("unexpected error: %v", err)
				return
			}
		}
	}
	clk.Go(recv)
	clk.Go(recv)
	for i := 0; i < 4; i++ {
		v := i
		clk.AfterFunc(time.Duration(7*(i+1))*time.Second, func() { m.Put(v) })
	}
	clk.Wait()
	close(got)
	var sum, n int
	for v := range got {
		sum += v
		n++
	}
	if n != 4 || sum != 0+1+2+3 {
		t.Fatalf("delivered %d items (sum %d), want all 4", n, sum)
	}
	if w := m.waiterCount(); w != 0 {
		t.Fatalf("%d stale waiters after mixed timeouts/deliveries, want 0", w)
	}
}

// TestMailboxRecvTimeoutZeroAfterClose: closing with timed-out receivers
// around must not strand waiters either.
func TestMailboxRecvTimeoutZeroAfterClose(t *testing.T) {
	clk := simtime.NewSim(epoch)
	m := NewMailbox[int](clk)
	clk.Go(func() {
		if _, err := m.RecvTimeout(time.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("first recv: %v, want ErrTimeout", err)
		}
		if _, err := m.RecvTimeout(10 * time.Second); !errors.Is(err, ErrClosed) {
			t.Errorf("second recv: %v, want ErrClosed", err)
		}
	})
	clk.AfterFunc(2*time.Second, m.Close)
	clk.Wait()
	if w := m.waiterCount(); w != 0 {
		t.Fatalf("%d stale waiters after close, want 0", w)
	}
}
