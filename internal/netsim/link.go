package netsim

import (
	"math/rand"
	"sync"
	"time"

	"oddci/internal/simtime"
)

// Packet is the unit carried by links and buses. Size is the on-the-wire
// size in bytes and drives serialization delay; Payload is the decoded
// content handed to the receiver (the simulation does not re-serialize
// application objects, it accounts for their size).
type Packet struct {
	From      string
	To        string
	Payload   any
	Size      int
	SentAt    time.Time
	ArrivedAt time.Time
}

// LinkConfig describes one direction of a point-to-point channel.
type LinkConfig struct {
	// RateBps is the capacity in bits per second. Zero means infinite.
	RateBps float64
	// Latency is the propagation delay added after serialization.
	Latency time.Duration
	// DropProb is the probability that a packet is silently lost.
	DropProb float64
	// Rng drives loss decisions; required when DropProb > 0.
	Rng *rand.Rand
}

// Link is a unidirectional bandwidth/latency-modelled channel delivering
// into a destination mailbox. Packets serialize one after another: a
// packet's transmission starts when the previous one finishes, which is
// what makes a shared uplink (e.g. a desktop-grid master staging images
// over unicast) a bottleneck.
type Link struct {
	clk simtime.Clock
	cfg LinkConfig
	dst *Mailbox[Packet]

	mu        sync.Mutex
	busyUntil time.Time
	sent      int64
	dropped   int64
	bytesSent int64
}

// NewLink creates a link feeding dst.
func NewLink(clk simtime.Clock, cfg LinkConfig, dst *Mailbox[Packet]) *Link {
	return &Link{clk: clk, cfg: cfg, dst: dst}
}

// serialization returns the time needed to clock size bytes onto the wire.
func serialization(size int, rateBps float64) time.Duration {
	if rateBps <= 0 {
		return 0
	}
	sec := float64(size) * 8 / rateBps
	return time.Duration(sec * float64(time.Second))
}

// Send queues p for transmission. It never blocks; the packet arrives at
// the destination mailbox after queueing + serialization + latency.
func (l *Link) Send(p Packet) {
	now := l.clk.Now()
	p.SentAt = now

	l.mu.Lock()
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	done := start.Add(serialization(p.Size, l.cfg.RateBps))
	l.busyUntil = done
	l.sent++
	l.bytesSent += int64(p.Size)
	drop := l.cfg.DropProb > 0 && l.cfg.Rng != nil && l.cfg.Rng.Float64() < l.cfg.DropProb
	if drop {
		l.dropped++
	}
	l.mu.Unlock()

	if drop {
		return
	}
	arrival := done.Add(l.cfg.Latency)
	l.clk.AfterFunc(arrival.Sub(now), func() {
		p.ArrivedAt = l.clk.Now()
		l.dst.Put(p)
	})
}

// Stats reports packets sent, packets dropped, and bytes accepted.
func (l *Link) Stats() (sent, dropped, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent, l.dropped, l.bytesSent
}

// Endpoint is one side of a duplex channel: an outgoing link plus an
// incoming mailbox.
type Endpoint struct {
	Name string
	out  *Link
	In   *Mailbox[Packet]

	// SendHook, when set, may rewrite (or suppress, by returning false)
	// every outgoing payload before it hits the link. It is the seam the
	// adversary layer uses to make a node lie on the wire without the
	// node's own code knowing.
	SendHook func(to string, payload any) (any, bool)
}

// Send transmits payload of the given wire size to the peer endpoint.
func (e *Endpoint) Send(to string, payload any, size int) {
	if e.SendHook != nil {
		mutated, ok := e.SendHook(to, payload)
		if !ok {
			return
		}
		payload = mutated
	}
	e.out.Send(Packet{From: e.Name, To: to, Payload: payload, Size: size})
}

// Recv blocks for the next packet.
func (e *Endpoint) Recv() (Packet, error) { return e.In.Recv() }

// RecvTimeout blocks for the next packet up to d.
func (e *Endpoint) RecvTimeout(d time.Duration) (Packet, error) { return e.In.RecvTimeout(d) }

// Close tears down the receive side.
func (e *Endpoint) Close() { e.In.Close() }

// NewDuplex builds a full-duplex channel between two named parties with
// per-direction configs, returning a's endpoint first.
func NewDuplex(clk simtime.Clock, a, b string, aToB, bToA LinkConfig) (*Endpoint, *Endpoint) {
	inA := NewMailbox[Packet](clk)
	inB := NewMailbox[Packet](clk)
	epA := &Endpoint{Name: a, In: inA}
	epB := &Endpoint{Name: b, In: inB}
	epA.out = NewLink(clk, aToB, inB)
	epB.out = NewLink(clk, bToA, inA)
	return epA, epB
}
