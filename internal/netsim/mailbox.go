// Package netsim emulates the two communication fabrics of an OddCI
// system over virtual time: the one-to-many broadcast channel (capacity β)
// and the per-node full-duplex direct channels (capacity δ) that link each
// processing node to the Controller and the Backend.
//
// All pacing is expressed through simtime.Clock, so the same component
// code runs under the wall clock (demos) and the discrete-event clock
// (experiments) unchanged.
package netsim

import (
	"errors"
	"sync"
	"time"

	"oddci/internal/simtime"
)

// Errors returned by mailbox and endpoint receive operations.
var (
	ErrClosed  = errors.New("netsim: closed")
	ErrTimeout = errors.New("netsim: timeout")
)

// Mailbox is a clock-aware unbounded FIFO queue. Senders never block;
// receivers block through the clock's Suspend primitive, so blocking
// receives participate correctly in virtual-time advancement.
type Mailbox[T any] struct {
	clk simtime.Clock

	mu      sync.Mutex
	q       []T
	waiters []func()
	closed  bool
}

// NewMailbox returns an empty mailbox bound to clk.
func NewMailbox[T any](clk simtime.Clock) *Mailbox[T] {
	return &Mailbox[T]{clk: clk}
}

// Put enqueues v and wakes any blocked receivers. Put on a closed mailbox
// drops v silently (the network delivered to a torn-down endpoint).
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.q = append(m.q, v)
	w := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, wake := range w {
		wake()
	}
}

// Close marks the mailbox closed. Blocked receivers return ErrClosed once
// the queue drains.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	w := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, wake := range w {
		wake()
	}
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}

// TryRecv dequeues without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		var zero T
		return zero, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Recv blocks until an item is available or the mailbox is closed and
// drained.
func (m *Mailbox[T]) Recv() (T, error) {
	for {
		m.mu.Lock()
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			m.mu.Unlock()
			return v, nil
		}
		if m.closed {
			m.mu.Unlock()
			var zero T
			return zero, ErrClosed
		}
		m.mu.Unlock()
		m.clk.Suspend(func(wake func()) {
			m.mu.Lock()
			if len(m.q) > 0 || m.closed {
				m.mu.Unlock()
				wake()
				return
			}
			m.waiters = append(m.waiters, wake)
			m.mu.Unlock()
		})
	}
}

// RecvTimeout behaves like Recv but gives up after d, returning
// ErrTimeout.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (T, error) {
	deadline := m.clk.Now().Add(d)
	for {
		m.mu.Lock()
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			m.mu.Unlock()
			return v, nil
		}
		if m.closed {
			m.mu.Unlock()
			var zero T
			return zero, ErrClosed
		}
		m.mu.Unlock()

		remaining := deadline.Sub(m.clk.Now())
		if remaining <= 0 {
			var zero T
			return zero, ErrTimeout
		}
		var tm simtime.Timer
		m.clk.Suspend(func(wake func()) {
			m.mu.Lock()
			if len(m.q) > 0 || m.closed {
				m.mu.Unlock()
				wake()
				return
			}
			m.waiters = append(m.waiters, wake)
			m.mu.Unlock()
			tm = m.clk.AfterFunc(remaining, wake)
		})
		if tm != nil {
			tm.Stop()
		}
	}
}
