// Package netsim emulates the two communication fabrics of an OddCI
// system over virtual time: the one-to-many broadcast channel (capacity β)
// and the per-node full-duplex direct channels (capacity δ) that link each
// processing node to the Controller and the Backend.
//
// All pacing is expressed through simtime.Clock, so the same component
// code runs under the wall clock (demos) and the discrete-event clock
// (experiments) unchanged.
package netsim

import (
	"errors"
	"sync"
	"time"

	"oddci/internal/simtime"
)

// Errors returned by mailbox and endpoint receive operations.
var (
	ErrClosed  = errors.New("netsim: closed")
	ErrTimeout = errors.New("netsim: timeout")
)

// waiter is one registered wake callback. The sequence number lets a
// timed-out receiver deregister its own spent closure: wake closures are
// single-shot, so an entry whose wake already fired is dead weight that
// would otherwise accumulate until the next Put.
type waiter struct {
	seq  uint64
	wake func()
}

// Mailbox is a clock-aware unbounded FIFO queue. Senders never block;
// receivers block through the clock's Suspend primitive, so blocking
// receives participate correctly in virtual-time advancement.
type Mailbox[T any] struct {
	clk simtime.Clock

	mu      sync.Mutex
	q       Ring[T]
	waiters []waiter
	wseq    uint64
	closed  bool
}

// NewMailbox returns an empty mailbox bound to clk.
func NewMailbox[T any](clk simtime.Clock) *Mailbox[T] {
	return &Mailbox[T]{clk: clk}
}

// Put enqueues v and wakes any blocked receivers. Put on a closed mailbox
// drops v silently (the network delivered to a torn-down endpoint).
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.q.PushBack(v)
	w := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, wt := range w {
		wt.wake()
	}
}

// Close marks the mailbox closed. Blocked receivers return ErrClosed once
// the queue drains.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	w := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, wt := range w {
		wt.wake()
	}
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.q.Len()
}

// waiterCount reports the registered wake closures; the leak regression
// tests assert it returns to zero after timed-out receives.
func (m *Mailbox[T]) waiterCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// dropWaiter removes the entry registered under seq, if a Put or Close
// has not already consumed the whole list.
func (m *Mailbox[T]) dropWaiter(seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, wt := range m.waiters {
		if wt.seq == seq {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// TryRecv dequeues without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.q.PopFront()
}

// Recv blocks until an item is available or the mailbox is closed and
// drained.
func (m *Mailbox[T]) Recv() (T, error) {
	for {
		m.mu.Lock()
		if v, ok := m.q.PopFront(); ok {
			m.mu.Unlock()
			return v, nil
		}
		if m.closed {
			m.mu.Unlock()
			var zero T
			return zero, ErrClosed
		}
		m.mu.Unlock()
		m.clk.Suspend(func(wake func()) {
			m.mu.Lock()
			if m.q.Len() > 0 || m.closed {
				m.mu.Unlock()
				wake()
				return
			}
			m.waiters = append(m.waiters, waiter{seq: m.wseq, wake: wake})
			m.wseq++
			m.mu.Unlock()
		})
	}
}

// RecvTimeout behaves like Recv but gives up after d, returning
// ErrTimeout.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (T, error) {
	deadline := m.clk.Now().Add(d)
	for {
		m.mu.Lock()
		if v, ok := m.q.PopFront(); ok {
			m.mu.Unlock()
			return v, nil
		}
		if m.closed {
			m.mu.Unlock()
			var zero T
			return zero, ErrClosed
		}
		m.mu.Unlock()

		remaining := deadline.Sub(m.clk.Now())
		if remaining <= 0 {
			var zero T
			return zero, ErrTimeout
		}
		var tm simtime.Timer
		var seq uint64
		registered := false
		m.clk.Suspend(func(wake func()) {
			m.mu.Lock()
			if m.q.Len() > 0 || m.closed {
				m.mu.Unlock()
				wake()
				return
			}
			seq = m.wseq
			m.wseq++
			m.waiters = append(m.waiters, waiter{seq: seq, wake: wake})
			registered = true
			m.mu.Unlock()
			tm = m.clk.AfterFunc(remaining, wake)
		})
		if tm != nil {
			tm.Stop()
		}
		if registered {
			// Whatever woke us, this wake closure is spent: if the timer
			// fired (or a Put raced the registration), the entry is still
			// on the list and would pile up across repeated timeouts.
			m.dropWaiter(seq)
		}
	}
}
