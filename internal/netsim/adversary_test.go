package netsim

import (
	"bytes"
	"testing"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

func planWith(cfg AdversaryConfig) *AdversaryPlan { return NewAdversaryPlan(cfg) }

// TestAdversaryBehaviorDeterministic: behavior assignment is a pure
// function of (Seed, node) — two plans with the same seed agree on every
// node, a reseeded plan reshuffles, and Fraction 0 (or a nil plan) is
// all-honest.
func TestAdversaryBehaviorDeterministic(t *testing.T) {
	a := planWith(AdversaryConfig{Seed: 42, Fraction: 0.4})
	b := planWith(AdversaryConfig{Seed: 42, Fraction: 0.4})
	c := planWith(AdversaryConfig{Seed: 43, Fraction: 0.4})
	byz, differs := 0, false
	for n := uint64(1); n <= 400; n++ {
		if a.Behavior(n) != b.Behavior(n) {
			t.Fatalf("same seed disagrees on node %d", n)
		}
		if a.Behavior(n) != c.Behavior(n) {
			differs = true
		}
		if a.IsByzantine(n) {
			byz++
		}
	}
	if !differs {
		t.Fatal("reseeding did not reshuffle behaviors")
	}
	// ~40% of 400 draws; loose 3-sigma-ish band.
	if byz < 120 || byz > 200 {
		t.Fatalf("byzantine count %d/400 far from fraction 0.4", byz)
	}
	honest := planWith(AdversaryConfig{Seed: 42})
	var nilPlan *AdversaryPlan
	for n := uint64(1); n <= 50; n++ {
		if honest.Behavior(n) != Honest || nilPlan.Behavior(n) != Honest {
			t.Fatal("zero-fraction or nil plan assigned a misbehavior")
		}
	}
	for _, b := range []Behavior{Honest, WrongResult, FlipFlop, ReplayCred, ForgeCred, Collude, Behavior(99)} {
		if b.String() == "" {
			t.Fatalf("behavior %d has no name", b)
		}
	}
}

// TestAdversaryShouldLie: WrongResult and Collude lie on every draw;
// FlipFlop stays honest for its configured streak and then turns.
func TestAdversaryShouldLie(t *testing.T) {
	pick := func(p *AdversaryPlan, want Behavior) uint64 {
		for n := uint64(1); n < 4000; n++ {
			if p.Behavior(n) == want {
				return n
			}
		}
		t.Fatalf("no node drew behavior %v", want)
		return 0
	}
	p := planWith(AdversaryConfig{Seed: 7, Fraction: 0.9, FlipFlopHonest: 3})
	wrong, flip := pick(p, WrongResult), pick(p, FlipFlop)
	for i := 0; i < 5; i++ {
		if !p.ShouldLie(wrong) {
			t.Fatal("WrongResult skipped a lie")
		}
	}
	for i := 0; i < 3; i++ {
		if p.ShouldLie(flip) {
			t.Fatalf("FlipFlop lied during its honest streak (submission %d)", i+1)
		}
	}
	for i := 0; i < 4; i++ {
		if !p.ShouldLie(flip) {
			t.Fatal("FlipFlop stayed honest after its streak")
		}
	}
	draws, lies := p.Stats()
	if draws != 12 || lies != 9 {
		t.Fatalf("stats = (%d, %d), want (12, 9)", draws, lies)
	}
}

// TestAdversaryWrongPayload: independent liars never agree, colluding
// group members agree exactly, and the payload varies by (job, task).
func TestAdversaryWrongPayload(t *testing.T) {
	p := planWith(AdversaryConfig{Seed: 9, Fraction: 1,
		Behaviors: []Behavior{Collude}, ColludeGroup: 2})
	// Groups are ID-adjacent blocks: {2k, 2k+1}.
	if !bytes.Equal(p.WrongPayload(4, 1, 2), p.WrongPayload(5, 1, 2)) {
		t.Fatal("colluding group members disagree")
	}
	if bytes.Equal(p.WrongPayload(4, 1, 2), p.WrongPayload(6, 1, 2)) {
		t.Fatal("distinct colluding groups agree")
	}
	if bytes.Equal(p.WrongPayload(4, 1, 2), p.WrongPayload(4, 1, 3)) {
		t.Fatal("payload constant across tasks")
	}
	ind := planWith(AdversaryConfig{Seed: 9, Fraction: 1,
		Behaviors: []Behavior{WrongResult}})
	if bytes.Equal(ind.WrongPayload(4, 1, 2), ind.WrongPayload(5, 1, 2)) {
		t.Fatal("independent liars agree")
	}
	if !bytes.Equal(ind.WrongPayload(4, 1, 2), ind.WrongPayload(4, 1, 2)) {
		t.Fatal("WrongPayload is not a pure function")
	}
}

// TestAdversaryCredentialMutations: ForgeCredential corrupts a copy
// (never the original buffer) or fabricates bytes from nothing;
// ReplayCredential passes the first token through and replays it on
// every later submission.
func TestAdversaryCredentialMutations(t *testing.T) {
	p := planWith(AdversaryConfig{Seed: 5, Fraction: 1})
	orig := bytes.Repeat([]byte{0x5A}, 64)
	forged := p.ForgeCredential(1, orig)
	if bytes.Equal(forged, orig) {
		t.Fatal("forgery returned the genuine token")
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0x5A}, 64)) {
		t.Fatal("forgery mutated the caller's buffer")
	}
	if len(forged) != 64 {
		t.Fatalf("forged token is %d bytes", len(forged))
	}
	if fab := p.ForgeCredential(2, nil); len(fab) != 64 {
		t.Fatalf("fabricated token is %d bytes", len(fab))
	}

	first := bytes.Repeat([]byte{0x01}, 64)
	second := bytes.Repeat([]byte{0x02}, 64)
	if got := p.ReplayCredential(3, first); !bytes.Equal(got, first) {
		t.Fatal("first submission was not passed through clean")
	}
	if got := p.ReplayCredential(3, second); !bytes.Equal(got, first) {
		t.Fatal("later submission did not replay the stored token")
	}
	_, lies := p.Stats()
	if lies != 3 { // two forgeries + one replay; the clean pass-through is no lie
		t.Fatalf("lies = %d, want 3", lies)
	}
}

// TestAdversarySendHook: the Endpoint seam rewrites and suppresses
// outgoing payloads without the sender's code knowing.
func TestAdversarySendHook(t *testing.T) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	cfg := LinkConfig{RateBps: 1e6}
	a, b := NewDuplex(clk, "node", "backend", cfg, cfg)
	a.SendHook = func(to string, payload any) (any, bool) {
		s, _ := payload.(string)
		if s == "drop-me" {
			return nil, false
		}
		return s + "-mutated", true
	}
	var got []string
	clk.Go(func() {
		a.Send("backend", "drop-me", 16)
		a.Send("backend", "hello", 16)
		pkt, err := b.Recv()
		if err != nil {
			return
		}
		got = append(got, pkt.Payload.(string))
		a.Close()
		b.Close()
	})
	clk.Wait()
	if len(got) != 1 || got[0] != "hello-mutated" {
		t.Fatalf("hook delivered %v, want [hello-mutated]", got)
	}
}

// TestAdversaryInstrument: the ops/lies gauges follow Stats.
func TestAdversaryInstrument(t *testing.T) {
	p := planWith(AdversaryConfig{Seed: 11, Fraction: 1, Behaviors: []Behavior{WrongResult}})
	reg := obs.NewRegistry()
	p.Instrument(reg, "adversary")
	p.Instrument(nil, "ignored") // nil registry is a no-op
	for n := uint64(1); n <= 3; n++ {
		p.ShouldLie(n)
	}
	if v, ok := reg.Value("oddci_netsim_adversary_ops"); !ok || v != 3 {
		t.Fatalf("ops gauge = %v ok=%v", v, ok)
	}
	if v, ok := reg.Value("oddci_netsim_adversary_lies"); !ok || v != 3 {
		t.Fatalf("lies gauge = %v ok=%v", v, ok)
	}
}
