package netsim

import (
	"math/rand"
	"sync"
	"time"

	"oddci/internal/simtime"
)

// BusConfig describes the broadcast channel.
type BusConfig struct {
	// RateBps is the spare broadcast capacity β in bits per second.
	RateBps float64
	// Latency is the air-interface propagation delay.
	Latency time.Duration
	// DropProb is an independent per-subscriber loss probability,
	// modelling reception errors at individual receivers.
	DropProb float64
	// Rng drives per-subscriber loss; required when DropProb > 0.
	Rng *rand.Rand
}

// Bus is the one-to-many broadcast channel. A single transmission reaches
// every subscriber tuned in when the transmission completes, regardless of
// how many there are — the property OddCI builds on. Transmissions
// serialize on the channel exactly like link packets do.
type Bus struct {
	clk simtime.Clock
	cfg BusConfig

	mu        sync.Mutex
	busyUntil time.Time
	nextID    int
	subs      map[int]func(Packet)
	published int64
	bytes     int64
}

// NewBus creates an idle broadcast channel.
func NewBus(clk simtime.Clock, cfg BusConfig) *Bus {
	return &Bus{clk: clk, cfg: cfg, subs: make(map[int]func(Packet))}
}

// Subscription identifies a bus listener for later cancellation.
type Subscription struct {
	bus *Bus
	id  int
}

// Cancel stops delivery to this subscriber.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s.id)
	s.bus.mu.Unlock()
}

// Subscribe registers fn to receive every packet whose transmission
// completes while the subscription is active. fn runs on the clock's
// event loop and must not block.
func (b *Bus) Subscribe(fn func(Packet)) *Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.subs[id] = fn
	return &Subscription{bus: b, id: id}
}

// Subscribers reports the current number of listeners.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Publish transmits payload of the given wire size. Delivery happens to
// the subscribers present when serialization completes; the per-node
// cyclic-access behaviour of the carousel is layered above in
// internal/dsmcc.
func (b *Bus) Publish(from string, payload any, size int) {
	now := b.clk.Now()
	p := Packet{From: from, Payload: payload, Size: size, SentAt: now}

	b.mu.Lock()
	start := now
	if b.busyUntil.After(start) {
		start = b.busyUntil
	}
	done := start.Add(serialization(size, b.cfg.RateBps))
	b.busyUntil = done
	b.published++
	b.bytes += int64(size)
	b.mu.Unlock()

	arrival := done.Add(b.cfg.Latency)
	b.clk.AfterFunc(arrival.Sub(now), func() {
		p.ArrivedAt = b.clk.Now()
		b.mu.Lock()
		targets := make([]func(Packet), 0, len(b.subs))
		for _, fn := range b.subs {
			if b.cfg.DropProb > 0 && b.cfg.Rng != nil && b.cfg.Rng.Float64() < b.cfg.DropProb {
				continue
			}
			targets = append(targets, fn)
		}
		b.mu.Unlock()
		for _, fn := range targets {
			fn(p)
		}
	})
}

// BusyUntil reports when the channel finishes its current backlog; used by
// the carousel scheduler to plan cycles.
func (b *Bus) BusyUntil() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.busyUntil
}

// Stats reports transmissions and bytes accepted onto the channel.
func (b *Bus) Stats() (published, bytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.bytes
}
