package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestFaultPlanAlwaysAndNever(t *testing.T) {
	always := NewFaultPlan(nil, 1, 0)
	for i := 0; i < 10; i++ {
		if !always.Next() {
			t.Fatal("failProb=1 did not fail")
		}
	}
	never := NewFaultPlan(nil, 0, 0)
	for i := 0; i < 10; i++ {
		if never.Next() {
			t.Fatal("failProb=0 failed")
		}
	}
	if inj, failed := always.Stats(); inj != 10 || failed != 10 {
		t.Fatalf("stats = %d/%d", inj, failed)
	}
}

func TestFaultPlanBoundsConsecutiveFailures(t *testing.T) {
	p := NewFaultPlan(rand.New(rand.NewSource(7)), 1, 3)
	run := 0
	for i := 0; i < 100; i++ {
		if p.Next() {
			run++
			if run > 3 {
				t.Fatalf("consecutive failures = %d, bound is 3", run)
			}
		} else {
			run = 0
		}
	}
	if inj, failed := p.Stats(); inj != 100 || failed == 0 || failed == 100 {
		t.Fatalf("stats = %d/%d, want a mix", inj, failed)
	}
}

func TestFaultPlanForcedBurst(t *testing.T) {
	p := NewFaultPlan(nil, 0, 1)
	p.FailNext(4)
	for i := 0; i < 4; i++ {
		if !p.Next() {
			t.Fatalf("forced draw %d did not fail", i)
		}
	}
	if p.Next() {
		t.Fatal("draw after forced burst failed")
	}
}

func TestFaultPlanDeterministicUnderSeed(t *testing.T) {
	draw := func() []bool {
		p := NewFaultPlan(rand.New(rand.NewSource(42)), 0.5, 0)
		out := make([]bool, 32)
		for i := range out {
			out[i] = p.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across equal seeds", i)
		}
	}
}

func TestFaultPlanDelay(t *testing.T) {
	p := NewFaultPlan(nil, 0, 0).WithDelay(250 * time.Millisecond)
	if p.Delay() != 250*time.Millisecond {
		t.Fatalf("delay = %v", p.Delay())
	}
}
