package netsim

import (
	"encoding/binary"
	"sync"

	"oddci/internal/obs"
)

// Byzantine node models. An AdversaryPlan deterministically assigns a
// misbehavior to a fraction of the node population and supplies the
// seeded streams those nodes draw their lies from. The plan is
// payload-agnostic: it decides WHO lies, WHEN, and WITH WHAT BYTES,
// while the system wiring (which knows the task-plane message types)
// applies the mutation on the wire through Endpoint.SendHook. That keeps
// netsim free of application imports and keeps the node's own code
// honest — a byzantine node runs the stock worker; only its uplink lies.
//
// Determinism: every decision is a pure function of (Seed, node) — or of
// (Seed, node, job, task) for payload bytes — through SplitMix64
// streams, so runs replay bit-identically regardless of goroutine
// interleaving, exactly like the fleet engine's per-node streams.

// Behavior is one node's assigned misbehavior.
type Behavior int

// Behaviors. Honest nodes pass traffic through untouched.
const (
	// Honest submits exactly what the worker computed.
	Honest Behavior = iota
	// WrongResult always substitutes node-specific garbage for the
	// result payload. Independent liars never agree with each other.
	WrongResult
	// FlipFlop builds a streak of honest results first (earning full
	// credibility), then turns and submits garbage forever — the
	// reputation-milking adversary.
	FlipFlop
	// ReplayCred echoes the first genuine credential it was ever issued
	// on every later submission: a valid token presented for the wrong
	// slot. The payload stays honest, so only credential verification
	// can catch it.
	ReplayCred
	// ForgeCred corrupts the credential bytes (or fabricates them when
	// none were issued) while keeping the payload honest.
	ForgeCred
	// Collude submits the same garbage as the other members of its
	// group, trying to assemble a lying quorum. Groups are ID-adjacent
	// blocks of ColludeGroup nodes, so the group size — and therefore
	// the maximum agreeing-liar weight — is structurally capped.
	Collude
)

// String names the behavior for reports and test output.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case WrongResult:
		return "wrong-result"
	case FlipFlop:
		return "flip-flop"
	case ReplayCred:
		return "replay-cred"
	case ForgeCred:
		return "forge-cred"
	case Collude:
		return "collude"
	}
	return "unknown"
}

// AdversaryConfig parameterizes a plan.
type AdversaryConfig struct {
	// Seed drives every stream; equal seeds replay identical adversaries.
	Seed uint64
	// Fraction is the per-node probability of being byzantine.
	Fraction float64
	// Behaviors is the misbehavior pool byzantine nodes draw from.
	// Empty means all non-honest behaviors.
	Behaviors []Behavior
	// FlipFlopHonest is the honest streak before a FlipFlop node turns
	// (0 = default 2).
	FlipFlopHonest int
	// ColludeGroup is the colluding group size (0 = default 2). Groups
	// are blocks of adjacent node IDs, so no group can exceed this.
	ColludeGroup int
}

// adversaryNode is one byzantine node's mutable state.
type adversaryNode struct {
	behavior  Behavior
	submitted int64  // results drawn through ShouldLie
	firstCred []byte // ReplayCred: the stored genuine token
}

// AdversaryPlan assigns behaviors and supplies lie streams. Safe for
// concurrent use by every node's send path.
type AdversaryPlan struct {
	cfg AdversaryConfig

	mu    sync.Mutex
	nodes map[uint64]*adversaryNode
	draws int64 // results inspected
	lies  int64 // results mutated
}

// allBehaviors is the default misbehavior pool.
var allBehaviors = []Behavior{WrongResult, FlipFlop, ReplayCred, ForgeCred, Collude}

// NewAdversaryPlan builds a plan; Fraction 0 yields an all-honest plan
// that passes everything through.
func NewAdversaryPlan(cfg AdversaryConfig) *AdversaryPlan {
	if len(cfg.Behaviors) == 0 {
		cfg.Behaviors = allBehaviors
	}
	if cfg.FlipFlopHonest <= 0 {
		cfg.FlipFlopHonest = 2
	}
	if cfg.ColludeGroup <= 0 {
		cfg.ColludeGroup = 2
	}
	return &AdversaryPlan{cfg: cfg, nodes: make(map[uint64]*adversaryNode)}
}

// nodeStream seeds node's SplitMix64 stream (same derivation as the
// fleet engine's per-node streams).
func (p *AdversaryPlan) nodeStream(node uint64) uint64 {
	return p.cfg.Seed*0xD1342543DE82EF95 + (node+1)*0x9E3779B97F4A7C15
}

// splitmix64 advances s and returns the next draw.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Behavior returns node's assigned behavior: a pure function of
// (Seed, node).
func (p *AdversaryPlan) Behavior(node uint64) Behavior {
	if p == nil || p.cfg.Fraction <= 0 {
		return Honest
	}
	s := p.nodeStream(node)
	u := float64(splitmix64(&s)>>11) / (1 << 53)
	if u >= p.cfg.Fraction {
		return Honest
	}
	return p.cfg.Behaviors[splitmix64(&s)%uint64(len(p.cfg.Behaviors))]
}

// IsByzantine reports whether node was assigned a misbehavior.
func (p *AdversaryPlan) IsByzantine(node uint64) bool {
	return p.Behavior(node) != Honest
}

// get returns node's state entry. Called with mu held.
func (p *AdversaryPlan) get(node uint64) *adversaryNode {
	an := p.nodes[node]
	if an == nil {
		an = &adversaryNode{behavior: p.Behavior(node)}
		p.nodes[node] = an
	}
	return an
}

// ShouldLie draws one result submission for node and reports whether its
// payload should be replaced. WrongResult and Collude always lie;
// FlipFlop lies only after its honest streak.
func (p *AdversaryPlan) ShouldLie(node uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.draws++
	an := p.get(node)
	an.submitted++
	switch an.behavior {
	case WrongResult, Collude:
		p.lies++
		return true
	case FlipFlop:
		if an.submitted > int64(p.cfg.FlipFlopHonest) {
			p.lies++
			return true
		}
	}
	return false
}

// WrongPayload returns the garbage payload node submits for (job, task):
// per-node bytes for independent liars, per-group bytes for colluders so
// the group genuinely agrees. Pure function — no state advances.
func (p *AdversaryPlan) WrongPayload(node uint64, job, task int) []byte {
	key := node
	if p.Behavior(node) == Collude {
		key = node / uint64(p.cfg.ColludeGroup) // ID-adjacent block
		key = ^key                              // never collides with a node-keyed stream
	}
	s := p.nodeStream(key) ^ uint64(int64(job))*0xBF58476D1CE4E5B9 ^ uint64(int64(task))*0x94D049BB133111EB
	return binary.BigEndian.AppendUint64(nil, splitmix64(&s))
}

// ForgeCredential returns a corrupted copy of cred — a bit flipped in
// the MAC — or a fabricated token when none was issued. The original
// slice is never modified (it may be the assign's own buffer).
func (p *AdversaryPlan) ForgeCredential(node uint64, cred []byte) []byte {
	p.mu.Lock()
	p.draws++
	p.lies++
	p.mu.Unlock()
	if len(cred) == 0 {
		s := p.nodeStream(node)
		out := make([]byte, 0, 64)
		for i := 0; i < 8; i++ {
			out = binary.BigEndian.AppendUint64(out, splitmix64(&s))
		}
		return out
	}
	out := append([]byte(nil), cred...)
	out[len(out)-1] ^= 0x01
	return out
}

// ReplayCredential stores node's first genuine credential and echoes it
// on every later call: submission 1 is clean, every subsequent one
// presents a stale-but-valid token.
func (p *AdversaryPlan) ReplayCredential(node uint64, cred []byte) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.draws++
	an := p.get(node)
	if an.firstCred == nil {
		an.firstCred = append([]byte(nil), cred...)
		return cred
	}
	p.lies++
	return append([]byte(nil), an.firstCred...)
}

// Stats reports results inspected and results mutated.
func (p *AdversaryPlan) Stats() (draws, lies int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draws, p.lies
}

// Instrument exposes the plan's draw and lie counts as gauges named
// oddci_netsim_<label>_ops and oddci_netsim_<label>_lies.
func (p *AdversaryPlan) Instrument(reg *obs.Registry, label string) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("oddci_netsim_"+label+"_ops", "Result submissions inspected by the "+label+" adversary plan", func() float64 {
		ops, _ := p.Stats()
		return float64(ops)
	})
	reg.GaugeFunc("oddci_netsim_"+label+"_lies", "Result submissions mutated by the "+label+" adversary plan", func() float64 {
		_, lies := p.Stats()
		return float64(lies)
	})
}
