package stb

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/obs"
	"oddci/internal/simtime"
)

func shardBroadcaster(t *testing.T, clk simtime.Clock, pid uint16, img []byte) *dsmcc.Broadcaster {
	t.Helper()
	car, err := dsmcc.NewCarousel(pid, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]dsmcc.File{{Name: "image", Data: img}}); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSharedChunkCacheAcrossShards: the federated deployment seam. Two
// coordinator shards air the same application image on separate
// carousels; receivers built with Config.SharedCache stage through one
// content-addressed store, so the second shard's fetch completes from
// cached chunks (a DII-latency wait) instead of re-reading the module
// off the air.
func TestSharedChunkCacheAcrossShards(t *testing.T) {
	clk := simtime.NewSim(epoch)
	img := make([]byte, 256<<10)
	rand.New(rand.NewSource(31)).Read(img)
	bA := shardBroadcaster(t, clk, 0x300, img)
	bB := shardBroadcaster(t, clk, 0x301, img)

	reg := obs.NewRegistry()
	met := dsmcc.NewCacheMetrics(reg)
	shared := dsmcc.NewChunkCache(4 << 20)
	shared.Instrument(met)

	mkSTB := func(id uint64, b *dsmcc.Broadcaster) *STB {
		s, err := New(Config{
			ID: id, Clock: clk, Broadcaster: b,
			Signalling: middleware.NewSignalling(clk, 0),
			Profile:    instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
			Rng:        rand.New(rand.NewSource(int64(id))),
			// Ignored in favour of the shared store.
			ChunkCacheBytes: 1,
			SharedCache:     shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mkSTB(1, bA), mkSTB(2, bB)
	if s1.ChunkCache() != shared || s2.ChunkCache() != shared {
		t.Fatal("SharedCache not adopted as the receivers' chunk store")
	}

	// Cold: receiver 1 stages off shard A's carousel and warms the store.
	var coldAt time.Time
	bA.RequestFileCached("image", s1.ChunkCache(), dsmcc.FileGranularity, func(data []byte, at time.Time, err error) {
		if err != nil || !bytes.Equal(data, img) {
			t.Errorf("cold fetch via shard A: err=%v", err)
		}
		coldAt = at
	})
	clk.Wait()
	if met.Misses() == 0 || met.Hits() != 0 {
		t.Fatalf("cold fetch: hits=%d misses=%d, want pure misses", met.Hits(), met.Misses())
	}
	coldWait := coldAt.Sub(epoch)

	// Warm: receiver 2 asks shard B — a different carousel airing the
	// same content — and completes from shared chunks.
	start := clk.Now()
	var warmAt time.Time
	bB.RequestFileCached("image", s2.ChunkCache(), dsmcc.FileGranularity, func(data []byte, at time.Time, err error) {
		if err != nil || !bytes.Equal(data, img) {
			t.Errorf("warm fetch via shard B: err=%v", err)
		}
		warmAt = at
	})
	clk.Wait()
	if met.Hits() == 0 {
		t.Fatal("cross-shard fetch missed the shared cache")
	}
	if warmWait := warmAt.Sub(start); warmWait >= coldWait {
		t.Fatalf("cross-shard warm fetch took %v, want under the cold %v", warmWait, coldWait)
	}
}

// A receiver with neither SharedCache nor ChunkCacheBytes stays
// cacheless, and a per-box cache is still private.
func TestSharedCacheSeamDefaults(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 9)
	if s.ChunkCache() != nil {
		t.Fatal("default STB grew a chunk cache")
	}
}
