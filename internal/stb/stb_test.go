package stb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
	"oddci/internal/xlet"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func TestPerfModelConversions(t *testing.T) {
	m := DefaultPerf()
	// Reference STB = in-use: identity.
	if d := m.TaskDuration(10, InUse); d != 10*time.Second {
		t.Fatalf("in-use duration = %v", d)
	}
	// Standby is 1.65× faster.
	if d := m.TaskDuration(10, Standby); math.Abs(d.Seconds()-10/1.65) > 1e-9 {
		t.Fatalf("standby duration = %v", d)
	}
	// PC is 20.6× faster than the in-use STB.
	if pc := m.PCSeconds(20.6); math.Abs(pc-1) > 1e-9 {
		t.Fatalf("PCSeconds = %v", pc)
	}
	// Round trip.
	if got := m.FromPCSeconds(m.PCSeconds(7), InUse); math.Abs(got-7) > 1e-9 {
		t.Fatalf("round trip = %v", got)
	}
	// The two published factors compose: standby/PC = 20.6/1.65.
	if got := m.FromPCSeconds(1, Standby); math.Abs(got-20.6/1.65) > 1e-9 {
		t.Fatalf("standby/PC = %v", got)
	}
}

func newTestSTB(t *testing.T, clk simtime.Clock, id uint64) *STB {
	t.Helper()
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]dsmcc.File{{Name: "x", Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		ID:          id,
		Clock:       clk,
		Broadcaster: b,
		Signalling:  middleware.NewSignalling(clk, 0),
		Profile:     instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		Rng:         rand.New(rand.NewSource(int64(id))),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPowerCycleCreatesFreshManager(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 1)
	if s.Powered() {
		t.Fatal("new STB should be off")
	}
	if err := s.PowerOn(); err != nil {
		t.Fatal(err)
	}
	m1 := s.Manager()
	if m1 == nil {
		t.Fatal("no manager while powered")
	}
	s.PowerOff()
	if s.Manager() != nil {
		t.Fatal("manager survives power off")
	}
	if err := s.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if s.Manager() == m1 {
		t.Fatal("manager not recreated across power cycle")
	}
	if s.PowerCycles != 1 {
		t.Fatalf("power cycles = %d", s.PowerCycles)
	}
	s.PowerOff()
	clk.Wait()
}

func TestRegisteredAppsSurvivePowerCycle(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 2)
	s.RegisterApp("a.xlet", func() xlet.Xlet { return nil })
	if err := s.PowerOn(); err != nil {
		t.Fatal(err)
	}
	s.PowerOff()
	if err := s.PowerOn(); err != nil {
		t.Fatal(err)
	}
	// Registration is reflected in the fresh manager: launching through
	// it would find the factory (counted indirectly: no LaunchErrors
	// path is exercised here, so check the internal map via a second
	// registration being idempotent).
	s.RegisterApp("a.xlet", func() xlet.Xlet { return nil })
	s.PowerOff()
	clk.Wait()
}

func TestModeSwitchAffectsTaskDuration(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 3)
	inUse := s.TaskDuration(10)
	s.SetMode(Standby)
	standby := s.TaskDuration(10)
	if standby >= inUse {
		t.Fatalf("standby (%v) not faster than in-use (%v)", standby, inUse)
	}
	if s.Mode() != Standby {
		t.Fatal("mode not recorded")
	}
	clk.Wait()
}

func TestChurnTogglesPower(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 4)
	var transitions int
	s.OnPower = func(on bool, at time.Time) { transitions++ }
	if err := s.StartChurn(10*time.Minute, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(3*time.Hour, s.StopChurn)
	clk.Wait()
	if transitions < 10 {
		t.Fatalf("only %d power transitions in 3h of 13-min-mean churn", transitions)
	}
	if s.PowerCycles == 0 {
		t.Fatal("no power cycles recorded")
	}
}

func TestChurnDeterministicPerSeed(t *testing.T) {
	run := func() []time.Duration {
		clk := simtime.NewSim(epoch)
		s := newTestSTB(t, clk, 42)
		var at []time.Duration
		s.OnPower = func(on bool, when time.Time) { at = append(at, when.Sub(epoch)) }
		s.StartChurn(20*time.Minute, 5*time.Minute)
		clk.AfterFunc(2*time.Hour, s.StopChurn)
		clk.Wait()
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestChurnValidation(t *testing.T) {
	clk := simtime.NewSim(epoch)
	s := newTestSTB(t, clk, 5)
	if err := s.StartChurn(0, time.Minute); err == nil {
		t.Fatal("zero mean accepted")
	}
	if err := s.StartChurn(time.Minute, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.StartChurn(time.Minute, time.Minute); err == nil {
		t.Fatal("double churn accepted")
	}
	s.StopChurn()
	s.PowerOff()
	clk.Wait()
}

func TestSTBValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	clk := simtime.NewSim(epoch)
	car, _ := dsmcc.NewCarousel(1, 0)
	b, _ := dsmcc.NewBroadcaster(clk, car, 1e6)
	if _, err := New(Config{Clock: clk, Broadcaster: b,
		Signalling: middleware.NewSignalling(clk, 0)}); err == nil {
		t.Fatal("missing rng accepted")
	}
}

func TestModeString(t *testing.T) {
	if InUse.String() != "in-use" || Standby.String() != "standby" {
		t.Fatal("mode strings wrong")
	}
}
