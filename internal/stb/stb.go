// Package stb models the set-top box: the processing node of an
// OddCI-DTV system. An STB couples a tuner (carousel + AIT signalling
// subscriptions), the DTV middleware (application manager), a CPU
// performance model calibrated to the paper's measurements, and a power
// state driven by the viewer (the churn source of §3.2: "a PNA can
// generally be switched off at the will of its owner").
package stb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
	"oddci/internal/xlet"
)

// Mode is the viewer-visible activity state of the receiver.
type Mode uint8

// Receiver modes from §4.4: the prototype was measured both with a TV
// channel tuned ("use mode") and with the middleware inactive ("standby
// mode").
const (
	InUse Mode = iota
	Standby
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Standby {
		return "standby"
	}
	return "in-use"
}

// PerfModel converts reference processing times across platforms and
// modes, calibrated from Table II: the STB in use averaged 20.6× slower
// than the reference PC (max error 10%), and in-use runs averaged 1.65×
// slower than standby (max error 17%).
type PerfModel struct {
	// SlowdownVsPC is (STB in-use time) / (PC time).
	SlowdownVsPC float64
	// InUseFactor is (in-use time) / (standby time).
	InUseFactor float64
}

// DefaultPerf returns the paper-calibrated model.
func DefaultPerf() PerfModel { return PerfModel{SlowdownVsPC: 20.6, InUseFactor: 1.65} }

// TaskDuration converts a task's reference-STB processing time p (which
// the paper defines against an in-use reference receiver) to this
// device's wall time in the given mode.
func (m PerfModel) TaskDuration(refSTBSeconds float64, mode Mode) time.Duration {
	sec := refSTBSeconds
	if mode == Standby {
		sec /= m.InUseFactor
	}
	return time.Duration(sec * float64(time.Second))
}

// PCSeconds converts a reference-STB time to the reference PC.
func (m PerfModel) PCSeconds(refSTBSeconds float64) float64 {
	return refSTBSeconds / m.SlowdownVsPC
}

// FromPCSeconds converts a PC-measured time to this device in the given
// mode.
func (m PerfModel) FromPCSeconds(pcSeconds float64, mode Mode) float64 {
	sec := pcSeconds * m.SlowdownVsPC
	if mode == Standby {
		sec /= m.InUseFactor
	}
	return sec
}

// Config assembles an STB.
type Config struct {
	ID          uint64
	Clock       simtime.Clock
	Broadcaster middleware.ObjectCarousel
	Signalling  *middleware.Signalling
	Profile     instance.DeviceProfile
	Perf        PerfModel
	Mode        Mode
	// Strategy selects the carousel receiver behaviour.
	Strategy dsmcc.ReceiverStrategy
	// Authenticate gates application launch (DTV code signing).
	Authenticate middleware.Authenticator
	// Rng drives this receiver's phases and churn. Required.
	Rng *rand.Rand
	// ChunkCacheBytes sizes this receiver's persistent chunk store
	// (flash-backed, so it survives power cycles). Zero disables
	// caching; negative selects dsmcc.DefaultChunkCacheBytes.
	ChunkCacheBytes int64
	// SharedCache, if set, is used as the chunk store instead of a
	// per-box allocation, and ChunkCacheBytes is ignored. This is the
	// federated deployment seam: coordinator shards air the same image
	// on their own carousels, so receivers behind one regional
	// content-addressed store turn every shard after the first into
	// cache hits. The owner instruments the shared store; this receiver
	// does not re-instrument it.
	SharedCache *dsmcc.ChunkCache
	// CacheMetrics, if set, aggregates the chunk cache's telemetry
	// (typically shared across the deployment's whole fleet).
	CacheMetrics *dsmcc.CacheMetrics
}

// STB is one simulated receiver.
type STB struct {
	cfg Config

	mu        sync.Mutex
	mode      Mode
	powered   bool
	mgr       *middleware.Manager
	factories map[string]xlet.Factory
	cache     *dsmcc.ChunkCache

	churning   bool
	churnTimer simtime.Timer
	churnRng   *rand.Rand
	meanOn     time.Duration
	meanOff    time.Duration

	// PowerCycles counts power-off events (churn accounting).
	PowerCycles int
	// OnPower, if set, observes power transitions (tests, experiment
	// accounting). Runs without the STB lock.
	OnPower func(on bool, at time.Time)
}

// New builds a powered-off STB.
func New(cfg Config) (*STB, error) {
	if cfg.Clock == nil || cfg.Broadcaster == nil || cfg.Signalling == nil {
		return nil, errors.New("stb: clock, broadcaster and signalling are required")
	}
	if cfg.Rng == nil {
		return nil, errors.New("stb: rng is required")
	}
	if cfg.Perf.SlowdownVsPC == 0 {
		cfg.Perf = DefaultPerf()
	}
	s := &STB{cfg: cfg, mode: cfg.Mode, factories: make(map[string]xlet.Factory)}
	if cfg.SharedCache != nil {
		s.cache = cfg.SharedCache
	} else if cfg.ChunkCacheBytes != 0 {
		size := cfg.ChunkCacheBytes
		if size < 0 {
			size = dsmcc.DefaultChunkCacheBytes
		}
		// The chunk cache lives on the STB, not the middleware: like the
		// factory registrations it models persistent (flash) state, so a
		// power cycle reboots into warm content-addressed storage and a
		// recomposed image re-stages as a delta.
		s.cache = dsmcc.NewChunkCache(size)
		s.cache.Instrument(cfg.CacheMetrics)
	}
	return s, nil
}

// ChunkCache exposes the receiver's persistent chunk store (nil when
// caching is disabled).
func (s *STB) ChunkCache() *dsmcc.ChunkCache { return s.cache }

// ID returns the device identifier.
func (s *STB) ID() uint64 { return s.cfg.ID }

// Profile returns the device profile.
func (s *STB) Profile() instance.DeviceProfile { return s.cfg.Profile }

// Mode returns the current viewer mode.
func (s *STB) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode switches between in-use and standby. Tasks started before the
// switch keep their sampled duration (documented simplification).
func (s *STB) SetMode(m Mode) {
	s.mu.Lock()
	s.mode = m
	s.mu.Unlock()
}

// TaskDuration converts a reference task time for this device now.
func (s *STB) TaskDuration(refSTBSeconds float64) time.Duration {
	s.mu.Lock()
	mode := s.mode
	s.mu.Unlock()
	return s.cfg.Perf.TaskDuration(refSTBSeconds, mode)
}

// RegisterApp maps a carousel class file to an Xlet implementation; the
// registration survives power cycles (it models code burned into the
// middleware's trust store, not volatile state).
func (s *STB) RegisterApp(classFile string, f xlet.Factory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factories[classFile] = f
	if s.mgr != nil {
		s.mgr.RegisterFactory(classFile, f)
	}
}

// Powered reports power state.
func (s *STB) Powered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.powered
}

// PowerOn boots the receiver: a fresh middleware instance tunes in and
// begins AIT monitoring. Running applications never survive a power
// cycle.
func (s *STB) PowerOn() error {
	s.mu.Lock()
	if s.powered {
		s.mu.Unlock()
		return nil
	}
	mgr, err := middleware.NewManager(s.cfg.Clock, s.cfg.Broadcaster, s.cfg.Signalling, middleware.Config{
		Strategy:     s.cfg.Strategy,
		Authenticate: s.cfg.Authenticate,
		Rng:          rand.New(rand.NewSource(s.cfg.Rng.Int63())),
		Cache:        s.cache,
	})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for name, f := range s.factories {
		mgr.RegisterFactory(name, f)
	}
	s.mgr = mgr
	s.powered = true
	hook := s.OnPower
	s.mu.Unlock()
	if err := mgr.Start(); err != nil {
		return fmt.Errorf("stb: tune in: %w", err)
	}
	if hook != nil {
		hook(true, s.cfg.Clock.Now())
	}
	return nil
}

// PowerOff cuts power: all applications die immediately.
func (s *STB) PowerOff() {
	s.mu.Lock()
	if !s.powered {
		s.mu.Unlock()
		return
	}
	s.powered = false
	s.PowerCycles++
	mgr := s.mgr
	s.mgr = nil
	hook := s.OnPower
	s.mu.Unlock()
	if mgr != nil {
		mgr.Stop()
	}
	if hook != nil {
		hook(false, s.cfg.Clock.Now())
	}
}

// Manager exposes the live middleware (nil when powered off).
func (s *STB) Manager() *middleware.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// StartChurn begins viewer-driven power cycling: on-periods and
// off-periods are exponentially distributed with the given means. The
// STB powers on immediately if it is off.
func (s *STB) StartChurn(meanOn, meanOff time.Duration) error {
	if meanOn <= 0 || meanOff <= 0 {
		return errors.New("stb: churn means must be positive")
	}
	s.mu.Lock()
	if s.churning {
		s.mu.Unlock()
		return errors.New("stb: already churning")
	}
	s.churning = true
	s.churnRng = rand.New(rand.NewSource(s.cfg.Rng.Int63()))
	s.meanOn, s.meanOff = meanOn, meanOff
	s.mu.Unlock()
	if err := s.PowerOn(); err != nil {
		return err
	}
	s.scheduleToggle()
	return nil
}

// StopChurn halts power cycling, leaving the STB in its current state.
func (s *STB) StopChurn() {
	s.mu.Lock()
	s.churning = false
	t := s.churnTimer
	s.churnTimer = nil
	s.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

func (s *STB) scheduleToggle() {
	s.mu.Lock()
	if !s.churning {
		s.mu.Unlock()
		return
	}
	mean := s.meanOff
	if s.powered {
		mean = s.meanOn
	}
	d := time.Duration(s.churnRng.ExpFloat64() * float64(mean))
	s.churnTimer = s.cfg.Clock.AfterFunc(d, func() {
		s.mu.Lock()
		if !s.churning {
			s.mu.Unlock()
			return
		}
		powered := s.powered
		s.mu.Unlock()
		if powered {
			s.PowerOff()
		} else {
			s.PowerOn()
		}
		s.scheduleToggle()
	})
	s.mu.Unlock()
}
