// Package dsmcc implements the DSM-CC data/object carousel (ISO/IEC
// 13818-6) to the depth an OddCI-DTV deployment needs: a set of named
// files is chunked into versioned modules, described by a
// DownloadInfoIndication (DII), carried in DownloadDataBlocks (DDB), and
// transmitted cyclically so receivers tuning in at any time eventually
// assemble every file. The cyclic schedule is what produces the paper's
// 1.5·I/β expected wakeup time.
//
// Simplification vs. the full standard: BIOP object binding is replaced
// by a name field in the DII's module info, and the dsmccMessageHeader is
// reduced to the fields this system consumes. The section/TS framing
// below these messages is the real MPEG-2 encoding from internal/mpegts.
package dsmcc

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"oddci/internal/mpegts"
)

// DefaultBlockSize is the DDB payload size used unless configured
// otherwise; it keeps each block within a single section.
const DefaultBlockSize = 4000

// maxBlockSize keeps a DDB message inside one section payload.
const maxBlockSize = mpegts.MaxSectionPayload - ddbHeaderLen

const (
	diiHeaderLen = 12 // transactionId(4) downloadId(4) blockSize(2) numModules(2)
	ddbHeaderLen = 9  // downloadId(4) moduleId(2) version(1) blockNumber(2)
)

// ModuleHash is the content address of one module's bytes: SHA-256
// truncated to a fixed 8-byte wire field. Truncation keeps the DII
// within its one-section budget; at 64 bits an accidental collision
// needs ~2³² distinct module contents on one carousel, far beyond any
// deployment here. Zero means "no hash known" (a pre-hash sender or a
// module whose hash was never computed); HashOf never returns zero.
type ModuleHash uint64

// HashLen is the wire size of a ModuleHash.
const HashLen = 8

// diiHashExtTag introduces the hash extension appended after a DII's
// module list. Pre-hash decoders read exactly numModules entries and
// ignore trailing payload bytes, so the extension is invisible to them.
const diiHashExtTag = 0x01

// HashOf content-addresses data. The zero value is reserved as "no
// hash", so the (astronomically unlikely) all-zero truncation is mapped
// to 1.
func HashOf(data []byte) ModuleHash {
	sum := sha256.Sum256(data)
	h := ModuleHash(binary.BigEndian.Uint64(sum[:HashLen]))
	if h == 0 {
		h = 1
	}
	return h
}

// String renders the hash as fixed-width hex.
func (h ModuleHash) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// NewerGeneration reports whether generation a is newer than b under
// serial-number arithmetic (RFC 1982): a is newer iff (a-b) mod 2³²
// lies in (0, 2³¹). This is how receivers must compare DII
// TransactionIDs — a plain a > b stalls forever when a long-lived
// carousel wraps 2³²→0, and accepts ancient stragglers as fresh.
// Exactly opposite values (distance 2³¹) are incomparable and report
// false in both directions.
func NewerGeneration(a, b uint32) bool {
	return a != b && a-b < 1<<31
}

// ModuleInfo describes one module (one file) within a DII.
type ModuleInfo struct {
	ID      uint16
	Version uint8
	Size    uint32
	Name    string
	// Hash is the module's content address, or zero when the sender did
	// not provide one.
	Hash ModuleHash
}

// DII is the DownloadInfoIndication: the carousel's directory.
type DII struct {
	// TransactionID identifies the carousel generation; receivers treat
	// a change as "new content available".
	TransactionID uint32
	DownloadID    uint32
	BlockSize     uint16
	Modules       []ModuleInfo
}

// Encode serializes the DII into a section (table id 0x3B).
func (d *DII) Encode() ([]byte, error) {
	if len(d.Modules) > 0xFFFF {
		return nil, errors.New("dsmcc: too many modules")
	}
	buf := make([]byte, 0, diiHeaderLen+16*len(d.Modules))
	buf = binary.BigEndian.AppendUint32(buf, d.TransactionID)
	buf = binary.BigEndian.AppendUint32(buf, d.DownloadID)
	buf = binary.BigEndian.AppendUint16(buf, d.BlockSize)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Modules)))
	hashed := false
	for _, m := range d.Modules {
		if len(m.Name) > 255 {
			return nil, fmt.Errorf("dsmcc: module name %q too long", m.Name)
		}
		buf = binary.BigEndian.AppendUint16(buf, m.ID)
		buf = append(buf, m.Version)
		buf = binary.BigEndian.AppendUint32(buf, m.Size)
		buf = append(buf, byte(len(m.Name)))
		buf = append(buf, m.Name...)
		if m.Hash != 0 {
			hashed = true
		}
	}
	if hashed {
		// Content-hash extension: appended after the module list so
		// pre-hash decoders (which stop after numModules entries) skip it.
		buf = append(buf, diiHashExtTag)
		for _, m := range d.Modules {
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.Hash))
		}
	}
	if len(buf) > mpegts.MaxSectionPayload {
		return nil, errors.New("dsmcc: DII exceeds one section; split the carousel")
	}
	s := &mpegts.Section{
		TableID:     mpegts.TableIDDSMCCDII,
		TableIDExt:  uint16(d.TransactionID & 0xFFFF),
		Version:     uint8(d.TransactionID & 0x1F),
		CurrentNext: true,
		Payload:     buf,
	}
	return s.Encode()
}

// DecodeDII parses a DII section.
func DecodeDII(raw []byte) (*DII, error) {
	s, _, err := mpegts.DecodeSection(raw)
	if err != nil {
		return nil, err
	}
	if s.TableID != mpegts.TableIDDSMCCDII {
		return nil, fmt.Errorf("dsmcc: table id %#x is not a DII", s.TableID)
	}
	b := s.Payload
	if len(b) < diiHeaderLen {
		return nil, errors.New("dsmcc: truncated DII")
	}
	d := &DII{
		TransactionID: binary.BigEndian.Uint32(b[0:]),
		DownloadID:    binary.BigEndian.Uint32(b[4:]),
		BlockSize:     binary.BigEndian.Uint16(b[8:]),
	}
	n := int(binary.BigEndian.Uint16(b[10:]))
	b = b[diiHeaderLen:]
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return nil, errors.New("dsmcc: truncated DII module info")
		}
		m := ModuleInfo{
			ID:      binary.BigEndian.Uint16(b[0:]),
			Version: b[2],
			Size:    binary.BigEndian.Uint32(b[3:]),
		}
		nameLen := int(b[7])
		b = b[8:]
		if len(b) < nameLen {
			return nil, errors.New("dsmcc: truncated DII module name")
		}
		m.Name = string(b[:nameLen])
		b = b[nameLen:]
		d.Modules = append(d.Modules, m)
	}
	// Optional content-hash extension. A malformed or unknown trailer is
	// ignored (hashes stay zero) — that is the legacy decoder's behaviour
	// too, so mixed-version carousels degrade instead of erroring.
	if len(b) >= 1+HashLen*n && b[0] == diiHashExtTag {
		b = b[1:]
		for i := 0; i < n; i++ {
			d.Modules[i].Hash = ModuleHash(binary.BigEndian.Uint64(b[i*HashLen:]))
		}
	}
	return d, nil
}

// DDB is one DownloadDataBlock: a chunk of one module.
type DDB struct {
	DownloadID  uint32
	ModuleID    uint16
	Version     uint8
	BlockNumber uint16
	Data        []byte
}

// Encode serializes the DDB into a section (table id 0x3C).
func (d *DDB) Encode() ([]byte, error) {
	if len(d.Data) > maxBlockSize {
		return nil, fmt.Errorf("dsmcc: block of %d bytes exceeds %d", len(d.Data), maxBlockSize)
	}
	buf := make([]byte, 0, ddbHeaderLen+len(d.Data))
	buf = binary.BigEndian.AppendUint32(buf, d.DownloadID)
	buf = binary.BigEndian.AppendUint16(buf, d.ModuleID)
	buf = append(buf, d.Version)
	buf = binary.BigEndian.AppendUint16(buf, d.BlockNumber)
	buf = append(buf, d.Data...)
	s := &mpegts.Section{
		TableID:     mpegts.TableIDDSMCCDDB,
		TableIDExt:  d.ModuleID,
		Version:     d.Version & 0x1F,
		CurrentNext: true,
		Number:      uint8(d.BlockNumber & 0xFF),
		LastNumber:  0xFF,
		Payload:     buf,
	}
	return s.Encode()
}

// DecodeDDB parses a DDB section.
func DecodeDDB(raw []byte) (*DDB, error) {
	s, _, err := mpegts.DecodeSection(raw)
	if err != nil {
		return nil, err
	}
	if s.TableID != mpegts.TableIDDSMCCDDB {
		return nil, fmt.Errorf("dsmcc: table id %#x is not a DDB", s.TableID)
	}
	b := s.Payload
	if len(b) < ddbHeaderLen {
		return nil, errors.New("dsmcc: truncated DDB")
	}
	return &DDB{
		DownloadID:  binary.BigEndian.Uint32(b[0:]),
		ModuleID:    binary.BigEndian.Uint16(b[4:]),
		Version:     b[6],
		BlockNumber: binary.BigEndian.Uint16(b[7:]),
		Data:        b[ddbHeaderLen:],
	}, nil
}
