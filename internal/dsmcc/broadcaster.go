package dsmcc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// Broadcaster transmits a Carousel cyclically at a fixed rate over
// virtual time. It is the timing model of the broadcast channel: rather
// than emitting an event per TS packet (unworkable at scale), it exposes
// the deterministic position of the cyclic stream and schedules one
// event per requested file delivery, which is byte-exact with respect to
// the Layout (a test cross-checks this against streaming the real
// encoded bytes).
type Broadcaster struct {
	clk  simtime.Clock
	rate float64 // bits per second (the β of the paper)

	mu           sync.Mutex
	car          *Carousel
	layout       *Layout
	origin       time.Time // when byte position 0 of the current layout aired
	started      bool
	pending      []File
	pendingSet   bool
	commitTimer  simtime.Timer
	genListeners map[int]func(gen uint32, at time.Time)
	nextListener int
	// airedWire accumulates the wire bytes broadcast by generations that
	// have already been replaced; the live generation's contribution is
	// its stream position (telemetry).
	airedWire    int64
	commits      *obs.Counter
	delivered    *obs.Counter
	deltaBytes   *obs.Counter
	deltaModules *obs.Counter
	savedBytes   *obs.Counter
	cacheServed  *obs.Counter
}

// Instrument registers broadcast telemetry against reg: cumulative
// wire bytes aired, carousel cycle time, generation number, and commit
// / file-delivery counters.
func (b *Broadcaster) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	b.commits = reg.Counter("oddci_dsmcc_updates_committed_total", "Carousel content updates committed at cycle boundaries")
	b.delivered = reg.Counter("oddci_dsmcc_file_deliveries_total", "Receiver file deliveries completed")
	b.deltaBytes = reg.Counter("oddci_dsmcc_delta_air_bytes_total", "Wire bytes of delta re-airs (DII + changed modules) across commits")
	b.deltaModules = reg.Counter("oddci_dsmcc_delta_modules_total", "Changed modules carried by delta re-airs across commits")
	b.savedBytes = reg.Counter("oddci_dsmcc_reair_saved_bytes_total", "Wire bytes a full re-air would have cost beyond the delta, across commits")
	b.cacheServed = reg.Counter("oddci_dsmcc_cache_deliveries_total", "File deliveries satisfied from a receiver chunk cache at DII time")
	b.mu.Unlock()
	reg.GaugeFunc("oddci_dsmcc_broadcast_bytes", "Cumulative wire bytes aired by the carousel", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		if !b.started {
			return 0
		}
		return float64(b.airedWire + b.positionLocked(b.clk.Now()))
	})
	reg.GaugeFunc("oddci_dsmcc_cycle_seconds", "Air time of one full carousel cycle", func() float64 {
		return b.CycleDuration().Seconds()
	})
	// The generation gauge reflects the raw uint32 and saws back to 0
	// when a long-lived carousel wraps; treat it as an identifier, not a
	// monotone series (oddci_dsmcc_updates_committed_total is the
	// monotone one). Receivers compare generations with NewerGeneration.
	reg.GaugeFunc("oddci_dsmcc_generation", "Carousel generation on air (wraps at 2^32; compare with serial-number arithmetic)", func() float64 {
		return float64(b.Generation())
	})
}

// NewBroadcaster wraps car for transmission at rateBps.
func NewBroadcaster(clk simtime.Clock, car *Carousel, rateBps float64) (*Broadcaster, error) {
	if rateBps <= 0 {
		return nil, errors.New("dsmcc: broadcast rate must be positive")
	}
	return &Broadcaster{
		clk:          clk,
		rate:         rateBps,
		car:          car,
		genListeners: make(map[int]func(uint32, time.Time)),
	}, nil
}

// airTime converts wire bytes to transmission duration at the broadcast
// rate.
func (b *Broadcaster) airTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) * 8 / b.rate * float64(time.Second))
}

// Start loads the initial contents and begins cycling immediately.
func (b *Broadcaster) Start(files []File) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return errors.New("dsmcc: broadcaster already started")
	}
	if err := b.car.SetFiles(files); err != nil {
		return err
	}
	l, err := b.car.Layout()
	if err != nil {
		return err
	}
	b.layout = l
	b.origin = b.clk.Now()
	b.started = true
	return nil
}

// Generation returns the generation currently on air.
func (b *Broadcaster) Generation() uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.layout == nil {
		return 0
	}
	return b.layout.Generation
}

// CycleDuration returns the air time of one full cycle of the current
// layout.
func (b *Broadcaster) CycleDuration() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.layout == nil {
		return 0
	}
	return b.airTime(b.layout.CycleWire)
}

// positionLocked returns the wire-byte position of the stream at t.
func (b *Broadcaster) positionLocked(t time.Time) int64 {
	elapsed := t.Sub(b.origin)
	if elapsed < 0 {
		return 0
	}
	return int64(elapsed.Seconds() * b.rate / 8)
}

// Update replaces the carousel contents at the next cycle boundary, as a
// real playout server would (receivers mid-read of the old generation
// finish their cycle). Successive updates before the boundary coalesce;
// the last one wins.
func (b *Broadcaster) Update(files []File) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		return errors.New("dsmcc: broadcaster not started")
	}
	b.pending = files
	if b.pendingSet {
		return nil // commit already scheduled
	}
	b.pendingSet = true
	now := b.clk.Now()
	pos := b.positionLocked(now)
	w := b.layout.CycleWire
	boundary := (pos/w + 1) * w
	delay := b.origin.Add(b.airTime(boundary)).Sub(now)
	b.commitTimer = b.clk.AfterFunc(delay, b.commit)
	return nil
}

// commit applies the pending update at a cycle boundary.
func (b *Broadcaster) commit() {
	b.mu.Lock()
	files := b.pending
	b.pending = nil
	b.pendingSet = false
	if err := b.car.SetFiles(files); err != nil {
		b.mu.Unlock()
		panic(fmt.Sprintf("dsmcc: committing validated update failed: %v", err))
	}
	b.airedWire += b.positionLocked(b.clk.Now())
	l, err := b.car.Layout()
	if err != nil {
		b.mu.Unlock()
		panic(fmt.Sprintf("dsmcc: layout of committed update failed: %v", err))
	}
	b.layout = l
	b.origin = b.clk.Now()
	b.commits.Inc()
	// Delta accounting: what this commit costs to re-air (DII + changed
	// modules) versus the full cycle a delta-unaware head-end would burn.
	b.deltaBytes.Add(l.DeltaWire)
	b.deltaModules.Add(int64(l.ChangedModules))
	if saved := l.CycleWire - l.DeltaWire; saved > 0 {
		b.savedBytes.Add(saved)
	}
	gen := l.Generation
	at := b.origin
	listeners := make([]func(uint32, time.Time), 0, len(b.genListeners))
	for _, fn := range b.genListeners {
		listeners = append(listeners, fn)
	}
	b.mu.Unlock()
	for _, fn := range listeners {
		fn(gen, at)
	}
}

// OnGeneration registers fn to run whenever a new generation goes on
// air. It returns a cancel function. fn runs on the clock's event loop.
func (b *Broadcaster) OnGeneration(fn func(gen uint32, at time.Time)) (cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextListener
	b.nextListener++
	b.genListeners[id] = fn
	return func() {
		b.mu.Lock()
		delete(b.genListeners, id)
		b.mu.Unlock()
	}
}

// ErrNoSuchFile reports a RequestFile against a name absent from the
// carousel directory.
var ErrNoSuchFile = errors.New("dsmcc: no such file in carousel")

// RequestFile asks for the named file as a receiver that starts
// listening now would obtain it. fn is invoked exactly once with the
// file data and delivery time, or with err != nil if the file
// disappears from the carousel before delivery. If the carousel content
// changes mid-read (version bump), the read restarts against the new
// generation, exactly as a receiver re-acquiring a new module version
// would.
func (b *Broadcaster) RequestFile(name string, strategy ReceiverStrategy, fn func(data []byte, at time.Time, err error)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		now := b.clk.Now()
		b.clk.AfterFunc(0, func() { fn(nil, now, errors.New("dsmcc: broadcaster not started")) })
		return
	}
	b.scheduleDeliveryLocked(name, strategy, fn)
}

// RequestFileCached is RequestFile for a receiver holding a persistent
// chunk cache. If the cache already holds the named module's current
// content (by hash), delivery completes as soon as the next DII airs —
// the receiver needs only the directory to learn its local bytes are
// current, which is what shrinks a re-stage from I/β to changed/β.
// Otherwise the read proceeds on the normal cyclic schedule and the
// delivered bytes are published into the cache for next time. Against a
// pre-hash carousel (no hash extension) this degrades to RequestFile
// exactly.
func (b *Broadcaster) RequestFileCached(name string, cache *ChunkCache, strategy ReceiverStrategy, fn func(data []byte, at time.Time, err error)) {
	if cache == nil {
		b.RequestFile(name, strategy, fn)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		now := b.clk.Now()
		b.clk.AfterFunc(0, func() { fn(nil, now, errors.New("dsmcc: broadcaster not started")) })
		return
	}
	b.scheduleCachedLocked(name, cache, strategy, fn)
}

func (b *Broadcaster) scheduleCachedLocked(name string, cache *ChunkCache, strategy ReceiverStrategy, fn func([]byte, time.Time, error)) {
	now := b.clk.Now()
	e, ok := b.layout.Entry(name)
	if !ok {
		b.clk.AfterFunc(0, func() { fn(nil, now, ErrNoSuchFile) })
		return
	}
	var cached []byte
	hit := false
	if e.Hash != 0 {
		cached, hit = cache.Get(e.Hash)
	}
	if !hit {
		// Air path; publish the delivered bytes for future reads.
		b.scheduleDeliveryLocked(name, strategy, func(d []byte, at time.Time, err error) {
			if err == nil {
				cache.Put(HashOf(d), d)
			}
			fn(d, at, err)
		})
		return
	}
	// Cache hit: done once the next DII airs and confirms the hash.
	version := e.Version
	pos := b.positionLocked(now)
	w := b.layout.CycleWire
	k := pos / w
	done := k*w + b.layout.DIIWire
	if pos-k*w > 0 {
		done += w // mid-cycle: the next DII starts a cycle later
	}
	at := b.origin.Add(b.airTime(done))
	delay := at.Sub(now)
	if delay < 0 {
		delay = 0
	}
	b.clk.AfterFunc(delay, func() {
		b.mu.Lock()
		cur, ok := b.layout.Entry(name)
		switch {
		case !ok:
			b.mu.Unlock()
			fn(nil, b.clk.Now(), ErrNoSuchFile)
			return
		case cur.Version != version:
			// Content changed before the DII aired: re-evaluate — the
			// new content may be cached too.
			b.scheduleCachedLocked(name, cache, strategy, fn)
			b.mu.Unlock()
			return
		}
		delivered, served := b.delivered, b.cacheServed
		b.mu.Unlock()
		delivered.Inc()
		served.Inc()
		fn(append([]byte(nil), cached...), b.clk.Now(), nil)
	})
}

func (b *Broadcaster) scheduleDeliveryLocked(name string, strategy ReceiverStrategy, fn func([]byte, time.Time, error)) {
	now := b.clk.Now()
	e, ok := b.layout.Entry(name)
	if !ok {
		b.clk.AfterFunc(0, func() { fn(nil, now, ErrNoSuchFile) })
		return
	}
	version := e.Version
	pos := b.positionLocked(now)
	done, _ := b.layout.NextCompletion(name, pos, strategy)
	at := b.origin.Add(b.airTime(done))
	delay := at.Sub(now)
	if delay < 0 {
		delay = 0
	}
	b.clk.AfterFunc(delay, func() {
		b.mu.Lock()
		cur, ok := b.layout.Entry(name)
		switch {
		case !ok:
			b.mu.Unlock()
			fn(nil, b.clk.Now(), ErrNoSuchFile)
			return
		case cur.Version != version:
			// Content changed under the read: restart on the new
			// generation.
			b.scheduleDeliveryLocked(name, strategy, fn)
			b.mu.Unlock()
			return
		}
		var data []byte
		for _, f := range b.car.Files() {
			if f.Name == name {
				data = append([]byte(nil), f.Data...)
				break
			}
		}
		delivered := b.delivered
		b.mu.Unlock()
		delivered.Inc()
		fn(data, b.clk.Now(), nil)
	})
}
