package dsmcc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// feedSections pushes raw sections straight into a receiver.
func feedSections(r *Receiver, secs [][]byte) {
	for _, s := range secs {
		r.HandleSection(s)
	}
}

func mustSetFiles(t *testing.T, c *Carousel, files ...File) {
	t.Helper()
	if err := c.SetFiles(files); err != nil {
		t.Fatal(err)
	}
}

func mustCycle(t *testing.T, c *Carousel) [][]byte {
	t.Helper()
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	return secs
}

func mustDelta(t *testing.T, c *Carousel) [][]byte {
	t.Helper()
	secs, err := c.EncodeDeltaCycle()
	if err != nil {
		t.Fatal(err)
	}
	return secs
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestDeltaCycleCarriesOnlyChangedModules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := randBytes(rng, 30000), randBytes(rng, 30000), randBytes(rng, 30000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b}, File{"d", d})

	// First SetFiles: everything is new, delta == full.
	if got, want := len(mustDelta(t, c)), len(mustCycle(t, c)); got != want {
		t.Fatalf("initial delta has %d sections, full has %d", got, want)
	}

	// Change one module: the delta is the DII + that module's blocks.
	b2 := randBytes(rng, 30000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b2}, File{"d", d})
	delta := mustDelta(t, c)
	wantBlocks := blocksFor(len(b2), c.BlockSize())
	if got := len(delta) - 1; got != wantBlocks {
		t.Fatalf("delta carries %d DDBs, want %d (only module b)", got, wantBlocks)
	}
	l, err := c.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l.ChangedModules != 1 {
		t.Fatalf("ChangedModules = %d, want 1", l.ChangedModules)
	}
	// DeltaWire must equal the wire bytes of exactly these sections.
	var wire int64
	for _, s := range delta {
		wire += sectionWireBytes(len(s))
	}
	if l.DeltaWire != wire {
		t.Fatalf("DeltaWire = %d, encoded delta = %d", l.DeltaWire, wire)
	}
	if l.DeltaWire >= l.CycleWire {
		t.Fatalf("delta (%d) not smaller than full cycle (%d)", l.DeltaWire, l.CycleWire)
	}

	// No-op update: delta is just the DII.
	mustSetFiles(t, c, File{"a", a}, File{"b", b2}, File{"d", d})
	if got := len(mustDelta(t, c)); got != 1 {
		t.Fatalf("no-op delta has %d sections, want 1 (DII only)", got)
	}
}

// A warm hash-aware receiver must converge to the new generation from
// the delta airing alone: changed modules off the air, unchanged ones
// confirmed by hash against what it already assembled.
func TestWarmReceiverConvergesFromDeltaAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randBytes(rng, 25000), randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b})

	recv := NewReceiver()
	feedSections(recv, mustCycle(t, c))
	for name, want := range map[string][]byte{"a": a, "b": b} {
		if got, ok := recv.File(name); !ok || !bytes.Equal(got, want) {
			t.Fatalf("gen1 %s not assembled", name)
		}
	}

	b2 := randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b2})
	feedSections(recv, mustDelta(t, c))
	if got, ok := recv.File("b"); !ok || !bytes.Equal(got, b2) {
		t.Fatal("changed module b not re-assembled from delta")
	}
	if got, ok := recv.File("a"); !ok || !bytes.Equal(got, a) {
		t.Fatal("unchanged module a lost across delta")
	}
	if recv.HashMismatches != 0 {
		t.Fatalf("unexpected hash mismatches: %d", recv.HashMismatches)
	}
}

// Block loss inside the changed module of a delta airing: the receiver
// must not assemble corrupt bytes, and the re-air (next delta cycle)
// must heal it.
func TestDeltaReairHealsBlockLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randBytes(rng, 25000), randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b})
	recv := NewReceiver()
	feedSections(recv, mustCycle(t, c))

	b2 := randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b2})
	delta := mustDelta(t, c)
	// Drop one DDB of the changed module (section index 2: DII, blk0, blk1...).
	lossy := append([][]byte(nil), delta[:2]...)
	lossy = append(lossy, delta[3:]...)
	feedSections(recv, lossy)
	if got, _ := recv.File("b"); bytes.Equal(got, b2) {
		t.Fatal("test vacuous: receiver completed despite the dropped block")
	}
	if got, ok := recv.File("b"); !ok || !bytes.Equal(got, b) {
		t.Fatal("receiver must keep serving the old generation while incomplete")
	}
	// Re-air heals.
	feedSections(recv, delta)
	if got, ok := recv.File("b"); !ok || !bytes.Equal(got, b2) {
		t.Fatal("re-aired delta did not heal the lost block")
	}
}

// Losing the DII of a delta airing: the orphan DDBs buffer, and the
// directory from the next airing promotes them without re-hearing the
// blocks.
func TestDeltaDIILossBuffersBlocksUntilDirectory(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randBytes(rng, 25000), randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b})
	recv := NewReceiver()
	feedSections(recv, mustCycle(t, c))

	b2 := randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b2})
	delta := mustDelta(t, c)
	feedSections(recv, delta[1:]) // DII lost
	if got, ok := recv.File("b"); !ok || !bytes.Equal(got, b) {
		t.Fatal("receiver must stay on the old generation without a directory")
	}
	feedSections(recv, delta[:1]) // just the DII of a re-air
	if got, ok := recv.File("b"); !ok || !bytes.Equal(got, b2) {
		t.Fatal("buffered delta blocks were not promoted by the late DII")
	}
}

// A chunk cache carries assembly across receiver churn (power cycles):
// a rebooted receiver sharing the cache converges from a delta airing
// alone, pulling unchanged modules out of local storage.
func TestCacheHitAssemblyUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randBytes(rng, 25000), randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b})

	reg := obs.NewRegistry()
	met := NewCacheMetrics(reg)
	cache := NewChunkCache(1 << 20)
	cache.Instrument(met)

	first := NewReceiver()
	first.SetCache(cache)
	feedSections(first, mustCycle(t, c))
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d chunks after full cycle, want 2", cache.Len())
	}

	// Power cycle: a brand-new receiver, same cache. Only a delta airs.
	b2 := randBytes(rng, 25000)
	mustSetFiles(t, c, File{"a", a}, File{"b", b2})
	second := NewReceiver()
	second.SetCache(cache)
	feedSections(second, mustDelta(t, c))
	if got, ok := second.File("a"); !ok || !bytes.Equal(got, a) {
		t.Fatal("unchanged module a not served from the chunk cache")
	}
	if got, ok := second.File("b"); !ok || !bytes.Equal(got, b2) {
		t.Fatal("changed module b not assembled from the delta airing")
	}
	if met.Hits() == 0 {
		t.Fatal("expected cache hits to be counted")
	}
	if !cache.Contains(HashOf(b2)) {
		t.Fatal("newly assembled module must be published into the cache")
	}
}

// The uint8 module-version wrap regression (satellite 1): drive well
// over 256 content changes through one module. A receiver must track
// the latest content at every step — before the fix, the done-mark
// recorded under {id, version} 256 generations earlier suppressed the
// fresh blocks once the version wrapped.
func TestModuleVersionWrapRegression(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		name := "hash-aware"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			c, err := NewCarousel(0x300, 0)
			if err != nil {
				t.Fatal(err)
			}
			if legacy {
				c.SetHashExtension(false)
			}
			fixed := []byte("steady payload that never changes")
			recv := NewReceiver()
			recv.DisableHashes = legacy
			for i := 0; i < 300; i++ {
				content := []byte(fmt.Sprintf("generation %d content", i))
				mustSetFiles(t, c, File{"mod", content}, File{"fixed", fixed})
				feedSections(recv, mustDelta(t, c))
				if got, ok := recv.File("mod"); !ok || !bytes.Equal(got, content) {
					t.Fatalf("update %d (version %d): receiver serves %q, want %q",
						i, uint8(i), got, content)
				}
			}
			if got, ok := recv.File("fixed"); !ok || !bytes.Equal(got, fixed) {
				t.Fatal("unchanged module lost during version churn")
			}
		})
	}
}

// The uint32 generation wrap (satellite 3): a long-lived carousel
// crossing 2³²→0 must not stall receivers, and stale straggler DIIs
// must not roll the directory back.
func TestGenerationWrapReceiverFollows(t *testing.T) {
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSetFiles(t, c, File{"mod", []byte("old")})
	c.generation = 0xFFFFFFFF - 1 // long-lived instance near the wrap

	recv := NewReceiver()
	feedSections(recv, mustCycle(t, c))
	for i, content := range []string{"newer", "newest", "post-wrap"} {
		mustSetFiles(t, c, File{"mod", []byte(content)})
		feedSections(recv, mustCycle(t, c))
		if got, ok := recv.File("mod"); !ok || string(got) != content {
			t.Fatalf("step %d (generation %#x): receiver serves %q, want %q",
				i, c.Generation(), got, content)
		}
	}
	if c.Generation() >= 2 {
		t.Fatalf("test vacuous: generation %#x never wrapped", c.Generation())
	}

	// A stale straggler from the pre-wrap generation must be ignored.
	stale := &DII{TransactionID: 0xFFFFFFFF, DownloadID: c.DownloadID, BlockSize: uint16(c.BlockSize()),
		Modules: []ModuleInfo{{ID: 0, Version: 0, Size: 3, Name: "mod"}}}
	recv.handleDII(stale)
	if got := recv.Directory().TransactionID; got != c.Generation() {
		t.Fatalf("stale straggler DII rolled the directory back to %#x", got)
	}
}

func TestNewerGeneration(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false},
		{0, 0xFFFFFFFF, true},  // wrap: 0 succeeds max
		{0xFFFFFFFF, 0, false}, // and not vice versa
		{2, 0xFFFFFFF0, true},  // small post-wrap vs large pre-wrap
		{1 << 31, 0, false},    // exactly opposite: incomparable
		{0, 1 << 31, false},    // in both directions
		{1<<31 + 1, 0, false},  // more than half the space behind
		{0, 1<<31 + 1, true},   // ... means the other side is newer
		{100, 50, true},
		{50, 100, false},
	}
	for _, tc := range cases {
		if got := NewerGeneration(tc.a, tc.b); got != tc.want {
			t.Errorf("NewerGeneration(%#x, %#x) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Interop: a hash-unaware receiver fed by a hash-airing broadcaster
// (extension present on the wire) and a hash-aware receiver fed by a
// legacy head-end (no extension) must both assemble correctly.
func TestMixedVersionInterop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randBytes(rng, 20000)

	t.Run("legacy receiver, hashed wire", func(t *testing.T) {
		c, _ := NewCarousel(0x300, 0)
		mustSetFiles(t, c, File{"mod", data})
		recv := NewReceiver()
		recv.DisableHashes = true
		feedSections(recv, mustCycle(t, c))
		if got, ok := recv.File("mod"); !ok || !bytes.Equal(got, data) {
			t.Fatal("legacy receiver failed against hash extension on the wire")
		}
	})
	t.Run("hash-aware receiver, legacy wire", func(t *testing.T) {
		c, _ := NewCarousel(0x300, 0)
		c.SetHashExtension(false)
		mustSetFiles(t, c, File{"mod", data})
		recv := NewReceiver()
		cache := NewChunkCache(1 << 20)
		recv.SetCache(cache)
		feedSections(recv, mustCycle(t, c))
		if got, ok := recv.File("mod"); !ok || !bytes.Equal(got, data) {
			t.Fatal("hash-aware receiver failed against a pre-hash head-end")
		}
	})
}

func TestDIIHashExtensionCodec(t *testing.T) {
	d := &DII{TransactionID: 7, DownloadID: 9, BlockSize: 4000, Modules: []ModuleInfo{
		{ID: 0, Version: 3, Size: 10, Name: "a", Hash: HashOf([]byte("aaa"))},
		{ID: 1, Version: 0, Size: 20, Name: "b", Hash: HashOf([]byte("bbb"))},
	}}
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDII(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Modules {
		if got.Modules[i].Hash != d.Modules[i].Hash {
			t.Fatalf("module %d hash %v, want %v", i, got.Modules[i].Hash, d.Modules[i].Hash)
		}
	}

	// Hashless DIIs decode with zero hashes.
	d2 := &DII{TransactionID: 7, Modules: []ModuleInfo{{ID: 0, Size: 10, Name: "a"}}}
	raw2, err := d2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeDII(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Modules[0].Hash != 0 {
		t.Fatalf("hashless DII decoded hash %v, want 0", got2.Modules[0].Hash)
	}

	if HashOf([]byte("x")) == 0 {
		t.Fatal("HashOf must never return the zero sentinel")
	}
	if HashOf([]byte("x")) == HashOf([]byte("y")) {
		t.Fatal("distinct contents must not collide in a sane universe")
	}
}

func TestChunkCacheLRUAndBounds(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewCacheMetrics(reg)
	cache := NewChunkCache(100)
	cache.Instrument(met)

	pay := func(c byte, n int) []byte { return bytes.Repeat([]byte{c}, n) }
	h1, h2, h3 := HashOf(pay('1', 40)), HashOf(pay('2', 40)), HashOf(pay('3', 40))
	cache.Put(h1, pay('1', 40))
	cache.Put(h2, pay('2', 40))
	if cache.Bytes() != 80 || cache.Len() != 2 {
		t.Fatalf("cache %d bytes / %d chunks, want 80/2", cache.Bytes(), cache.Len())
	}
	// Touch h1 so h2 is the LRU victim.
	if _, ok := cache.Get(h1); !ok {
		t.Fatal("h1 missing")
	}
	cache.Put(h3, pay('3', 40))
	if _, ok := cache.Get(h2); ok {
		t.Fatal("h2 should have been evicted (LRU)")
	}
	if _, ok := cache.Get(h1); !ok {
		t.Fatal("h1 (recently used) should have survived")
	}
	if met.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", met.Evictions())
	}
	if met.Inserts() != 3 {
		t.Fatalf("inserts = %d, want 3", met.Inserts())
	}

	// Oversized payloads are ignored; zero hashes are ignored.
	cache.Put(HashOf(pay('4', 200)), pay('4', 200))
	if cache.Bytes() > 100 {
		t.Fatal("oversized payload admitted past the byte bound")
	}
	cache.Put(0, pay('5', 10))
	if _, ok := cache.Get(0); ok {
		t.Fatal("zero-hash entries must not be stored")
	}

	// Nil cache is inert.
	var nilCache *ChunkCache
	nilCache.Put(h1, pay('1', 40))
	if _, ok := nilCache.Get(h1); ok {
		t.Fatal("nil cache returned a value")
	}
	if nilCache.Len() != 0 || nilCache.Bytes() != 0 {
		t.Fatal("nil cache reports contents")
	}
}

// RequestFileCached: a warm cache turns a full-module wait into a
// DII-latency wait; a cold cache behaves like RequestFile and warms up.
func TestRequestFileCachedDeliveryTiming(t *testing.T) {
	clk := simtime.NewSim(epoch)
	img := randBytes(rand.New(rand.NewSource(7)), 1<<20)
	cfgFile := []byte("config")
	b := startBroadcaster(t, clk, 1e6, File{Name: "image", Data: img}, File{Name: "conf", Data: cfgFile})
	cache := NewChunkCache(4 << 20)

	// Cold: same completion as an uncached receiver, and the cache warms.
	var coldAt time.Time
	b.RequestFileCached("image", cache, FileGranularity, func(data []byte, at time.Time, err error) {
		if err != nil || !bytes.Equal(data, img) {
			t.Errorf("cold fetch: err=%v", err)
		}
		coldAt = at
	})
	clk.Wait()
	l, _ := b.car.Layout()
	e, _ := l.Entry("image")
	if want := epoch.Add(b.airTime(e.WireEnd)); !coldAt.Equal(want) {
		t.Fatalf("cold delivery at %v, want %v", coldAt, want)
	}
	if !cache.Contains(HashOf(img)) {
		t.Fatal("cold fetch did not warm the cache")
	}

	// Warm: a fresh listener holding the bytes completes at the next
	// DII, not after the megabyte module re-airs.
	start := clk.Now()
	var warmAt time.Time
	b.RequestFileCached("image", cache, FileGranularity, func(data []byte, at time.Time, err error) {
		if err != nil || !bytes.Equal(data, img) {
			t.Errorf("warm fetch: err=%v", err)
		}
		warmAt = at
	})
	clk.Wait()
	warmWait := warmAt.Sub(start)
	cycle := b.airTime(l.CycleWire)
	diiTime := b.airTime(l.DIIWire)
	if warmWait > cycle+diiTime {
		t.Fatalf("warm delivery took %v, want ≤ cycle+DII (%v)", warmWait, cycle+diiTime)
	}
	if fullWait := b.airTime(e.WireEnd); warmWait >= fullWait {
		t.Fatalf("warm delivery (%v) not faster than a full re-read (%v)", warmWait, fullWait)
	}
}

// RequestFileCached must restart cleanly when content changes before
// the cached delivery lands, and must not serve stale bytes.
func TestRequestFileCachedRestartsOnUpdate(t *testing.T) {
	clk := simtime.NewSim(epoch)
	rng := rand.New(rand.NewSource(8))
	v1 := randBytes(rng, 500000)
	b := startBroadcaster(t, clk, 1e6, File{Name: "image", Data: v1})
	cache := NewChunkCache(4 << 20)
	cache.Put(HashOf(v1), v1)

	v2 := randBytes(rng, 500000)
	var got []byte
	b.RequestFileCached("image", cache, FileGranularity, func(data []byte, at time.Time, err error) {
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
		got = data
	})
	// Commit v2 at the next cycle boundary — before the pending cached
	// delivery's DII confirmation would fire for a mid-cycle joiner.
	if err := b.Update([]File{{Name: "image", Data: v2}}); err != nil {
		t.Fatal(err)
	}
	clk.Wait()
	if !bytes.Equal(got, v2) && !bytes.Equal(got, v1) {
		t.Fatal("delivered bytes match neither generation")
	}
	if bytes.Equal(got, v1) {
		// Acceptable only if delivery landed before the commit; the
		// cached fast path confirms at DII time, which for a phase-0
		// listener precedes the boundary commit.
		return
	}
	if !cache.Contains(HashOf(v2)) {
		t.Fatal("restarted fetch did not warm the cache with the new bytes")
	}
}
