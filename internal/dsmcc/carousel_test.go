package dsmcc

import (
	"bytes"
	"math/rand"
	"testing"

	"oddci/internal/mpegts"
)

func mkCarousel(t *testing.T, files ...File) *Carousel {
	t.Helper()
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFiles(files); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCarouselVersioning(t *testing.T) {
	c := mkCarousel(t, File{Name: "a", Data: []byte{1}}, File{Name: "b", Data: []byte{2}})
	if c.Generation() != 1 {
		t.Fatalf("generation = %d", c.Generation())
	}
	d := c.DII()
	if len(d.Modules) != 2 || d.Modules[0].Version != 0 {
		t.Fatalf("DII: %+v", d)
	}
	// Change a, keep b: only a's version bumps; module IDs stay stable.
	if err := c.SetFiles([]File{{Name: "a", Data: []byte{9}}, {Name: "b", Data: []byte{2}}}); err != nil {
		t.Fatal(err)
	}
	d2 := c.DII()
	var va, vb uint8
	var ida, ida0 uint16
	for _, m := range d.Modules {
		if m.Name == "a" {
			ida0 = m.ID
		}
	}
	for _, m := range d2.Modules {
		switch m.Name {
		case "a":
			va, ida = m.Version, m.ID
		case "b":
			vb = m.Version
		}
	}
	if va != 1 || vb != 0 {
		t.Fatalf("versions a=%d b=%d, want 1,0", va, vb)
	}
	if ida != ida0 {
		t.Fatalf("module id for a changed: %d → %d", ida0, ida)
	}
	if c.Generation() != 2 {
		t.Fatalf("generation = %d", c.Generation())
	}
}

func TestCarouselRejectsBadInput(t *testing.T) {
	c, _ := NewCarousel(1, 0)
	if err := c.SetFiles([]File{{Name: "", Data: nil}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := c.SetFiles([]File{{Name: "x"}, {Name: "x"}}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewCarousel(1, maxBlockSize+1); err == nil {
		t.Fatal("oversized block size accepted")
	}
	if _, err := c.Layout(); err == nil {
		t.Fatal("layout of empty carousel accepted")
	}
	if _, err := c.EncodeCycle(); err == nil {
		t.Fatal("cycle of empty carousel accepted")
	}
}

// The Layout's analytical wire size must match the actual encoded bytes
// through the real TS packetizer — the timing model and the byte path
// must agree exactly.
func TestLayoutMatchesEncodedWireBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := make([]byte, 300000)
	rng.Read(img)
	c := mkCarousel(t,
		File{Name: "pna.xlet", Data: make([]byte, 50000)},
		File{Name: "image", Data: img},
		File{Name: "config", Data: []byte("probability=1.0")},
	)
	l, err := c.Layout()
	if err != nil {
		t.Fatal(err)
	}
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	mux := mpegts.NewMux()
	// Enqueue in cycle order on one PID (sequential, as broadcast).
	var wire int64
	for _, s := range secs {
		pkts, _, err := mpegts.PacketizeSection(c.PID, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		wire += int64(len(pkts) * mpegts.PacketSize)
	}
	_ = mux
	if wire != l.CycleWire {
		t.Fatalf("layout says %d wire bytes, encoding produced %d", l.CycleWire, wire)
	}
	// Per-module spans are contiguous and ordered.
	prev := l.Entries[0].WireStart
	for _, e := range l.Entries {
		if e.WireStart != prev {
			t.Fatalf("gap before %s: start %d, want %d", e.Name, e.WireStart, prev)
		}
		if e.WireEnd <= e.WireStart {
			t.Fatalf("empty span for %s", e.Name)
		}
		prev = e.WireEnd
	}
	if prev != l.CycleWire {
		t.Fatalf("last module ends at %d, cycle is %d", prev, l.CycleWire)
	}
}

func TestNextCompletionFileGranularity(t *testing.T) {
	c := mkCarousel(t, File{Name: "image", Data: make([]byte, 100000)})
	l, _ := c.Layout()
	e, _ := l.Entry("image")

	// Tuned before the module starts: complete at first instance end.
	done, ok := l.NextCompletion("image", 0, FileGranularity)
	if !ok || done != e.WireEnd {
		t.Fatalf("pos 0: done=%d want %d", done, e.WireEnd)
	}
	// Tuned mid-module: must wait for the next instance.
	mid := (e.WireStart + e.WireEnd) / 2
	done, _ = l.NextCompletion("image", mid, FileGranularity)
	if done != l.CycleWire+e.WireEnd {
		t.Fatalf("mid: done=%d want %d", done, l.CycleWire+e.WireEnd)
	}
	// Unknown file.
	if _, ok := l.NextCompletion("nope", 0, FileGranularity); ok {
		t.Fatal("unknown file reported ok")
	}
}

func TestNextCompletionBlockCache(t *testing.T) {
	c := mkCarousel(t, File{Name: "image", Data: make([]byte, 100000)})
	l, _ := c.Layout()
	e, _ := l.Entry("image")
	mid := (e.WireStart + e.WireEnd) / 2
	done, ok := l.NextCompletion("image", mid, BlockCache)
	if !ok || done != mid+l.CycleWire {
		t.Fatalf("mid: done=%d want %d (exactly one cycle)", done, mid+l.CycleWire)
	}
	// Before start: same as file granularity.
	done, _ = l.NextCompletion("image", e.WireStart, BlockCache)
	if done != e.WireEnd {
		t.Fatalf("at start: done=%d want %d", done, e.WireEnd)
	}
}

// Property: over random tune positions, when one file dominates the
// cycle the FileGranularity wait averages ≈1.5 cycles and BlockCache
// ≤1 cycle + module — the paper's W model and its optimized variant.
func TestCompletionAverageProperty(t *testing.T) {
	c := mkCarousel(t, File{Name: "image", Data: make([]byte, 2<<20)}) // image-only carousel
	l, _ := c.Layout()
	rng := rand.New(rand.NewSource(11))
	const samples = 5000
	var sumFG, sumBC float64
	for i := 0; i < samples; i++ {
		pos := rng.Int63n(l.CycleWire)
		fg, _ := l.NextCompletion("image", pos, FileGranularity)
		bc, _ := l.NextCompletion("image", pos, BlockCache)
		sumFG += float64(fg - pos)
		sumBC += float64(bc - pos)
		if bc > fg {
			t.Fatal("BlockCache slower than FileGranularity")
		}
	}
	meanFG := sumFG / samples / float64(l.CycleWire)
	meanBC := sumBC / samples / float64(l.CycleWire)
	if meanFG < 1.40 || meanFG > 1.60 {
		t.Fatalf("FileGranularity mean = %.3f cycles, want ≈1.5", meanFG)
	}
	if meanBC < 0.95 || meanBC > 1.05 {
		t.Fatalf("BlockCache mean = %.3f cycles, want ≈1.0", meanBC)
	}
}

func TestEncodeCycleEmptyFile(t *testing.T) {
	c := mkCarousel(t, File{Name: "empty", Data: nil}, File{Name: "x", Data: []byte{1}})
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	// DII + 1 empty block + 1 data block.
	if len(secs) != 3 {
		t.Fatalf("sections = %d, want 3", len(secs))
	}
	r := NewReceiver()
	for _, s := range secs {
		r.HandleSection(s)
	}
	if d, ok := r.File("empty"); !ok || len(d) != 0 {
		t.Fatalf("empty file not assembled: %v %v", d, ok)
	}
	if d, ok := r.File("x"); !ok || !bytes.Equal(d, []byte{1}) {
		t.Fatal("x not assembled")
	}
}
