package dsmcc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"oddci/internal/mpegts"
)

// File is one named payload carried by the carousel.
type File struct {
	Name string
	Data []byte
}

// Carousel is the sender-side content model: a versioned set of files
// mapped onto DSM-CC modules. It produces both the byte-exact section
// stream for one cycle and the wire-byte Layout used for timing.
type Carousel struct {
	PID        uint16
	DownloadID uint32
	blockSize  int

	generation uint32
	moduleIDs  map[string]uint16
	versions   map[string]uint8
	hashes     map[string]ModuleHash
	changed    map[string]bool
	nextModule uint16
	files      []File
	noHashExt  bool
}

// NewCarousel returns an empty carousel transmitting on pid. blockSize 0
// selects DefaultBlockSize.
func NewCarousel(pid uint16, blockSize int) (*Carousel, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 1 || blockSize > maxBlockSize {
		return nil, fmt.Errorf("dsmcc: block size %d out of range [1,%d]", blockSize, maxBlockSize)
	}
	return &Carousel{
		PID:       pid,
		blockSize: blockSize,
		moduleIDs: make(map[string]uint16),
		versions:  make(map[string]uint8),
		hashes:    make(map[string]ModuleHash),
		changed:   make(map[string]bool),
	}, nil
}

// SetHashExtension toggles the DII content-hash extension (on by
// default). Turning it off models a pre-hash head-end for
// mixed-version interop tests.
func (c *Carousel) SetHashExtension(on bool) { c.noHashExt = !on }

// Generation returns the current content generation (the DII transaction
// id). It starts at 0 (empty) and increments on every SetFiles.
func (c *Carousel) Generation() uint32 { return c.generation }

// BlockSize returns the configured DDB payload size.
func (c *Carousel) BlockSize() int { return c.blockSize }

// Files returns the current contents.
func (c *Carousel) Files() []File { return c.files }

// SetFiles replaces the carousel contents. Module IDs are stable per
// name; versions bump when a file's content changes. The generation
// counter always increments, signalling receivers that the directory
// changed.
func (c *Carousel) SetFiles(files []File) error {
	seen := make(map[string]bool, len(files))
	for _, f := range files {
		if f.Name == "" || len(f.Name) > 255 {
			return fmt.Errorf("dsmcc: invalid file name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("dsmcc: duplicate file %q", f.Name)
		}
		seen[f.Name] = true
		blocks := (len(f.Data) + c.blockSize - 1) / c.blockSize
		if blocks > 0xFFFF {
			return fmt.Errorf("dsmcc: file %q needs %d blocks, max 65535", f.Name, blocks)
		}
	}
	old := make(map[string][]byte, len(c.files))
	for _, f := range c.files {
		old[f.Name] = f.Data
	}
	c.changed = make(map[string]bool)
	for _, f := range files {
		if _, ok := c.moduleIDs[f.Name]; !ok {
			c.moduleIDs[f.Name] = c.nextModule
			c.nextModule++
		}
		if prev, existed := old[f.Name]; !existed || !bytesEqual(prev, f.Data) {
			if existed {
				c.versions[f.Name]++
			}
			// New files keep version 0 (map zero value).
			c.changed[f.Name] = true
			c.hashes[f.Name] = HashOf(f.Data)
		}
	}
	sorted := append([]File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool {
		return c.moduleIDs[sorted[i].Name] < c.moduleIDs[sorted[j].Name]
	})
	c.files = sorted
	c.generation++
	return nil
}

// Changed returns the names whose content changed (or first appeared)
// in the most recent SetFiles — the delta a re-air needs to carry.
func (c *Carousel) Changed() []string {
	out := make([]string, 0, len(c.changed))
	for _, f := range c.files {
		if c.changed[f.Name] {
			out = append(out, f.Name)
		}
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DII builds the current directory message.
func (c *Carousel) DII() *DII {
	d := &DII{
		TransactionID: c.generation,
		DownloadID:    c.DownloadID,
		BlockSize:     uint16(c.blockSize),
	}
	for _, f := range c.files {
		m := ModuleInfo{
			ID:      c.moduleIDs[f.Name],
			Version: c.versions[f.Name],
			Size:    uint32(len(f.Data)),
			Name:    f.Name,
		}
		if !c.noHashExt {
			m.Hash = c.hashes[f.Name]
		}
		d.Modules = append(d.Modules, m)
	}
	return d
}

// EncodeCycle emits the encoded sections of one full carousel cycle:
// the DII followed by every module's blocks in module order.
func (c *Carousel) EncodeCycle() ([][]byte, error) {
	if len(c.files) == 0 {
		return nil, errors.New("dsmcc: empty carousel")
	}
	dii, err := c.DII().Encode()
	if err != nil {
		return nil, err
	}
	out := [][]byte{dii}
	for _, f := range c.files {
		out, err = c.appendModuleSections(out, f)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeDeltaCycle emits the sections of one delta re-air: the full DII
// (directory plus content hashes) followed by the blocks of only those
// modules whose content changed in the last SetFiles. A hash-aware
// receiver with a warm chunk cache converges from this alone; a
// hash-unaware or cold receiver treats the unchanged modules as lost
// blocks and heals from the regular full cycles that follow.
func (c *Carousel) EncodeDeltaCycle() ([][]byte, error) {
	if len(c.files) == 0 {
		return nil, errors.New("dsmcc: empty carousel")
	}
	dii, err := c.DII().Encode()
	if err != nil {
		return nil, err
	}
	out := [][]byte{dii}
	for _, f := range c.files {
		if !c.changed[f.Name] {
			continue
		}
		out, err = c.appendModuleSections(out, f)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendModuleSections encodes one module's DDB run onto out.
func (c *Carousel) appendModuleSections(out [][]byte, f File) ([][]byte, error) {
	id := c.moduleIDs[f.Name]
	ver := c.versions[f.Name]
	for blk, off := 0, 0; off < len(f.Data) || (len(f.Data) == 0 && blk == 0); blk++ {
		end := off + c.blockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		ddb := &DDB{
			DownloadID:  c.DownloadID,
			ModuleID:    id,
			Version:     ver,
			BlockNumber: uint16(blk),
			Data:        f.Data[off:end],
		}
		sec, err := ddb.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, sec)
		off = end
		if len(f.Data) == 0 {
			break
		}
	}
	return out, nil
}

// sectionWireBytes is the on-air cost of one section: full 188-byte TS
// packets, the first carrying a pointer field.
func sectionWireBytes(sectionLen int) int64 {
	// First packet holds 183 payload bytes (pointer field), the rest 184.
	if sectionLen <= mpegts.MaxPayload-1 {
		return mpegts.PacketSize
	}
	rest := sectionLen - (mpegts.MaxPayload - 1)
	pkts := 1 + (rest+mpegts.MaxPayload-1)/mpegts.MaxPayload
	return int64(pkts) * mpegts.PacketSize
}

// LayoutEntry records where one module's block run sits within a cycle,
// in wire bytes.
type LayoutEntry struct {
	Name      string
	ModuleID  uint16
	Version   uint8
	Size      int
	WireStart int64
	WireEnd   int64
	// Hash is the module's content address (zero with the hash
	// extension disabled).
	Hash ModuleHash
	// Changed marks modules whose content changed in the SetFiles this
	// layout was computed from — the delta re-air set.
	Changed bool
}

// Layout is the wire-byte schedule of one carousel cycle. Offset 0 is
// the start of the DII.
type Layout struct {
	Generation uint32
	CycleWire  int64
	// DIIWire is the on-air cost of the directory section alone; a
	// cache-warm receiver converges after hearing just this much.
	DIIWire int64
	// DeltaWire is the wire cost of one delta re-air (DII + changed
	// modules), and ChangedModules counts the modules it carries.
	DeltaWire      int64
	ChangedModules int
	Entries        []LayoutEntry
	byName         map[string]*LayoutEntry
}

// Layout computes the current cycle's schedule without encoding payload
// bytes (sizes are derived from the framing rules, so it matches
// EncodeCycle exactly; a test asserts this).
func (c *Carousel) Layout() (*Layout, error) {
	if len(c.files) == 0 {
		return nil, errors.New("dsmcc: empty carousel")
	}
	dii, err := c.DII().Encode()
	if err != nil {
		return nil, err
	}
	l := &Layout{Generation: c.generation, byName: make(map[string]*LayoutEntry)}
	pos := sectionWireBytes(len(dii))
	l.DIIWire = pos
	l.DeltaWire = pos
	for _, f := range c.files {
		e := LayoutEntry{
			Name:      f.Name,
			ModuleID:  c.moduleIDs[f.Name],
			Version:   c.versions[f.Name],
			Size:      len(f.Data),
			WireStart: pos,
			Changed:   c.changed[f.Name],
		}
		if !c.noHashExt {
			e.Hash = c.hashes[f.Name]
		}
		blocks := (len(f.Data) + c.blockSize - 1) / c.blockSize
		if blocks == 0 {
			blocks = 1
		}
		for b := 0; b < blocks; b++ {
			sz := c.blockSize
			if b == blocks-1 {
				sz = len(f.Data) - b*c.blockSize
			}
			secLen := 3 + 5 + ddbHeaderLen + sz + 4 // section framing + DDB header + data + CRC
			pos += sectionWireBytes(secLen)
		}
		e.WireEnd = pos
		if e.Changed {
			l.DeltaWire += pos - e.WireStart
			l.ChangedModules++
		}
		l.Entries = append(l.Entries, e)
		l.byName[f.Name] = &l.Entries[len(l.Entries)-1]
	}
	l.CycleWire = pos
	return l, nil
}

// Entry looks up a file's layout entry.
func (l *Layout) Entry(name string) (*LayoutEntry, bool) {
	e, ok := l.byName[name]
	return e, ok
}

// CycleDuration converts the cycle's wire bytes to air time at rateBps.
func (l *Layout) CycleDuration(rateBps float64) time.Duration {
	return time.Duration(float64(l.CycleWire) * 8 / rateBps * float64(time.Second))
}

// ReceiverStrategy selects how a receiver assembles a module from the
// cyclic stream.
type ReceiverStrategy int

const (
	// FileGranularity waits for the next transmission of the module that
	// starts after the receiver begins listening — the behaviour the
	// paper describes ("the access is delayed until the next data
	// retransmission for that particular file"), averaging 1.5 cycles
	// when one file dominates the carousel.
	FileGranularity ReceiverStrategy = iota
	// BlockCache caches blocks from the moment the receiver starts
	// listening, accepting an out-of-order tail + head; it completes in
	// at most one full cycle.
	BlockCache
)

// NextCompletion computes, in wire bytes since cycle origin, when a
// receiver that starts listening at byte position pos will have fully
// assembled the named module. The second return is false if the file is
// not in the carousel.
func (l *Layout) NextCompletion(name string, pos int64, strategy ReceiverStrategy) (int64, bool) {
	e, ok := l.byName[name]
	if !ok {
		return 0, false
	}
	w := l.CycleWire
	k := pos / w
	inCycle := pos - k*w
	switch strategy {
	case BlockCache:
		if inCycle > e.WireStart && inCycle < e.WireEnd {
			// Mid-module: tail this cycle, missed head next cycle.
			return pos + w, true
		}
		fallthrough
	default:
		// Next instance whose start is ≥ pos.
		if inCycle <= e.WireStart {
			return k*w + e.WireEnd, true
		}
		return (k+1)*w + e.WireEnd, true
	}
}
