package dsmcc

import (
	"container/list"
	"sync"

	"oddci/internal/obs"
)

// DefaultChunkCacheBytes bounds a ChunkCache when the caller passes no
// budget — sized like the flash partition a set-top box dedicates to
// carousel persistence.
const DefaultChunkCacheBytes = 16 << 20

// ChunkCache is a bounded, hash-keyed store of module payloads — the
// PNA-side half of delta image distribution. Receivers populate it as
// modules assemble and satisfy unchanged modules from it when a new DII
// arrives, so a delta re-air (DII + changed modules) is enough to
// converge. Keys are content addresses, so the cache is immune to the
// module-version wrap: two different contents can never collide under
// one key. Eviction is LRU by bytes. It is safe for concurrent use and
// deliberately outlives receiver instances (a set-top box keeps it
// across power cycles, like flash storage).
type ChunkCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[ModuleHash]*list.Element
	met   *CacheMetrics
}

type chunkEntry struct {
	hash ModuleHash
	data []byte
}

// NewChunkCache returns a cache bounded to maxBytes (0 or negative
// selects DefaultChunkCacheBytes).
func NewChunkCache(maxBytes int64) *ChunkCache {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkCacheBytes
	}
	return &ChunkCache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[ModuleHash]*list.Element),
	}
}

// Instrument attaches shared metrics handles (may be nil). A fleet of
// caches typically shares one CacheMetrics so the counters aggregate.
func (c *ChunkCache) Instrument(m *CacheMetrics) {
	c.mu.Lock()
	c.met = m
	c.mu.Unlock()
}

// Get returns the payload stored under h. Callers must not mutate the
// returned slice.
func (c *ChunkCache) Get(h ModuleHash) ([]byte, bool) {
	if c == nil || h == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[h]
	if !ok {
		c.met.miss()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.met.hit()
	return el.Value.(*chunkEntry).data, true
}

// Contains reports whether h is cached without touching recency or the
// hit/miss counters.
func (c *ChunkCache) Contains(h ModuleHash) bool {
	if c == nil || h == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[h]
	return ok
}

// Put stores data under h, evicting least-recently-used entries to stay
// within the byte bound. Payloads larger than the whole cache are
// ignored. The data is copied.
func (c *ChunkCache) Put(h ModuleHash, data []byte) {
	if c == nil || h == 0 || int64(len(data)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[h]; ok {
		// Same hash, same content (that is the point of the key); just
		// refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	e := &chunkEntry{hash: h, data: append([]byte(nil), data...)}
	c.items[h] = c.ll.PushFront(e)
	c.bytes += int64(len(e.data))
	c.met.insert()
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*chunkEntry)
		c.ll.Remove(back)
		delete(c.items, victim.hash)
		c.bytes -= int64(len(victim.data))
		c.met.evict()
	}
}

// Len returns the number of cached chunks.
func (c *ChunkCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the cached payload bytes.
func (c *ChunkCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// CacheMetrics aggregates chunk-cache telemetry across a fleet of
// caches. All methods are nil-safe, matching the obs idiom.
type CacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	inserts   *obs.Counter
	evictions *obs.Counter
}

// NewCacheMetrics registers the chunk-cache counters against reg (nil
// yields inert metrics).
func NewCacheMetrics(reg *obs.Registry) *CacheMetrics {
	m := &CacheMetrics{}
	if reg == nil {
		return m
	}
	m.hits = reg.Counter("oddci_dsmcc_cache_hits_total", "Chunk-cache lookups satisfied locally")
	m.misses = reg.Counter("oddci_dsmcc_cache_misses_total", "Chunk-cache lookups that fell through to the air")
	m.inserts = reg.Counter("oddci_dsmcc_cache_inserts_total", "Chunks admitted to local caches")
	m.evictions = reg.Counter("oddci_dsmcc_cache_evictions_total", "Chunks evicted from local caches (LRU, byte bound)")
	return m
}

func (m *CacheMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *CacheMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *CacheMetrics) insert() {
	if m != nil {
		m.inserts.Inc()
	}
}

func (m *CacheMetrics) evict() {
	if m != nil {
		m.evictions.Inc()
	}
}

// Hits, Misses, Inserts, and Evictions expose the counters for tests
// and benches.
func (m *CacheMetrics) Hits() int64 {
	if m == nil {
		return 0
	}
	return m.hits.Value()
}

func (m *CacheMetrics) Misses() int64 {
	if m == nil {
		return 0
	}
	return m.misses.Value()
}

func (m *CacheMetrics) Inserts() int64 {
	if m == nil {
		return 0
	}
	return m.inserts.Value()
}

func (m *CacheMetrics) Evictions() int64 {
	if m == nil {
		return 0
	}
	return m.evictions.Value()
}
