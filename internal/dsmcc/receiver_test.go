package dsmcc

import (
	"strings"
	"testing"
	"time"

	"oddci/internal/simtime"
)

func TestReceiverRejectsGarbageSections(t *testing.T) {
	r := NewReceiver()
	r.HandleSection(nil)
	r.HandleSection([]byte{0x3B, 1, 2})       // truncated DII
	r.HandleSection([]byte{0x3C, 1, 2})       // truncated DDB
	r.HandleSection([]byte{0x42, 0, 0, 0, 0}) // foreign table
	if r.SectionErrors != 3 {
		t.Fatalf("section errors = %d, want 3 (nil input is ignored)", r.SectionErrors)
	}
	if r.Directory() != nil {
		t.Fatal("directory from garbage")
	}
	if !strings.Contains(r.String(), "errors:3") {
		t.Fatalf("diagnostics: %s", r.String())
	}
}

func TestReceiverDirectoryAndCallbacks(t *testing.T) {
	c := mkCarousel(t, File{Name: "f", Data: []byte("hello")})
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReceiver()
	var dirSeen, fileSeen int
	r.OnDirectory = func(d *DII) { dirSeen++ }
	r.OnFile = func(name string, data []byte) {
		fileSeen++
		if name != "f" || string(data) != "hello" {
			t.Errorf("OnFile %q %q", name, data)
		}
	}
	// Two full cycles: the directory callback fires once per
	// transaction id, the file completes once.
	for i := 0; i < 2; i++ {
		for _, s := range secs {
			r.HandleSection(s)
		}
	}
	if dirSeen != 1 || fileSeen != 1 {
		t.Fatalf("dir=%d file=%d, want 1,1", dirSeen, fileSeen)
	}
	if d := r.Directory(); d == nil || len(d.Modules) != 1 {
		t.Fatalf("directory: %+v", d)
	}
}

func TestCarouselAccessors(t *testing.T) {
	c := mkCarousel(t, File{Name: "a", Data: make([]byte, 125000)})
	if c.BlockSize() != DefaultBlockSize {
		t.Fatalf("block size = %d", c.BlockSize())
	}
	l, err := c.Layout()
	if err != nil {
		t.Fatal(err)
	}
	// ≈1 s of air time at 1 Mbps for 125 kB + framing.
	d := l.CycleDuration(1e6)
	if d < time.Second || d > 1100*time.Millisecond {
		t.Fatalf("cycle duration = %v", d)
	}
}

func TestBroadcasterConstructionErrors(t *testing.T) {
	clk := simtime.NewSim(epoch)
	car, err := NewCarousel(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBroadcaster(clk, car, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	b, err := NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var got error
	b.RequestFile("x", FileGranularity, func(_ []byte, _ time.Time, err error) { got = err })
	clk.Wait()
	if got == nil {
		t.Fatal("request before start accepted")
	}
	if err := b.Update(nil); err == nil {
		t.Fatal("update before start accepted")
	}
	if b.Generation() != 0 || b.CycleDuration() != 0 {
		t.Fatal("unstarted accessors not zero")
	}
	if err := b.Start([]File{{Name: "a", Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]File{{Name: "a", Data: []byte{1}}}); err == nil {
		t.Fatal("double start accepted")
	}
	clk.Wait()
}
