package dsmcc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"oddci/internal/mpegts"
)

// encodeCyclePackets renders one full cycle as TS packets, continuing
// continuity counters across calls.
func encodeCyclePackets(t *testing.T, c *Carousel, mux *mpegts.Mux) [][]byte {
	t.Helper()
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if err := mux.EnqueueSection(c.PID, s); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := mux.DrainBytes()
	if err != nil {
		t.Fatal(err)
	}
	var pkts [][]byte
	for off := 0; off < len(stream); off += mpegts.PacketSize {
		pkts = append(pkts, stream[off:off+mpegts.PacketSize])
	}
	return pkts
}

// The carousel's whole point: reception losses in one cycle are healed
// by the next retransmission. Drop 5% of cycle 1's packets; the
// receiver must finish from cycle 2 (and never assemble corrupt data).
func TestCyclicRetransmissionHealsLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	img := make([]byte, 150000)
	rng.Read(img)
	c, err := NewCarousel(0x340, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFiles([]File{
		{Name: "pna.xlet", Data: bytes.Repeat([]byte{0x11}, 20000)},
		{Name: "image", Data: img},
	}); err != nil {
		t.Fatal(err)
	}
	mux := mpegts.NewMux()
	recv := NewReceiver()
	demux := mpegts.NewDemux()
	demux.Handle(c.PID, recv.HandleSection)

	// Cycle 1 with 5% packet loss.
	dropped := 0
	for _, pkt := range encodeCyclePackets(t, c, mux) {
		if rng.Float64() < 0.05 {
			dropped++
			continue
		}
		p, err := mpegts.ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		demux.PushPacket(p)
	}
	if dropped == 0 {
		t.Fatal("test vacuous: nothing dropped")
	}
	if data, ok := recv.File("image"); ok && !bytes.Equal(data, img) {
		t.Fatal("receiver assembled corrupt data from the lossy cycle")
	}

	// Cycle 2 clean: everything must complete correctly.
	for _, pkt := range encodeCyclePackets(t, c, mux) {
		p, err := mpegts.ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		demux.PushPacket(p)
	}
	for _, name := range []string{"pna.xlet", "image"} {
		got, ok := recv.File(name)
		if !ok {
			t.Fatalf("%s not recovered after retransmission (%v)", name, recv)
		}
		want := img
		if name == "pna.xlet" {
			want = bytes.Repeat([]byte{0x11}, 20000)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s content corrupt after loss + retransmission", name)
		}
	}
}

// Property: corrupt content is never surfaced regardless of loss rate,
// and at low loss (≤5%, where a 4 KB section still survives a cycle
// with good probability) retransmission always completes the file.
// Higher rates may legitimately fail to converge: one lost TS packet
// voids a whole ~23-packet section, which is why real DVB runs forward
// error correction below the TS layer.
func TestLossRecoveryProperty(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		loss := float64(lossPct%16) / 100
		payload := make([]byte, rng.Intn(60000)+5000)
		rng.Read(payload)
		c, err := NewCarousel(0x341, 0)
		if err != nil {
			return false
		}
		if err := c.SetFiles([]File{{Name: "f", Data: payload}}); err != nil {
			return false
		}
		mux := mpegts.NewMux()
		recv := NewReceiver()
		demux := mpegts.NewDemux()
		demux.Handle(c.PID, recv.HandleSection)
		for cycle := 0; cycle < 40; cycle++ {
			secs, err := c.EncodeCycle()
			if err != nil {
				return false
			}
			for _, s := range secs {
				if err := mux.EnqueueSection(c.PID, s); err != nil {
					return false
				}
			}
			stream, err := mux.DrainBytes()
			if err != nil {
				return false
			}
			for off := 0; off < len(stream); off += mpegts.PacketSize {
				if rng.Float64() < loss {
					continue
				}
				p, err := mpegts.ParsePacket(stream[off : off+mpegts.PacketSize])
				if err != nil {
					return false
				}
				demux.PushPacket(p)
			}
			if got, ok := recv.File("f"); ok {
				return bytes.Equal(got, payload) // never corrupt
			}
		}
		// Non-completion after 40 cycles: acceptable only above the
		// low-loss regime.
		return loss > 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
