package dsmcc

import (
	"fmt"
	"sync"
)

// Receiver assembles carousel files from a stream of decoded DSM-CC
// sections — the byte-exact counterpart of the Broadcaster's timing
// model. Feed it sections from an mpegts.Demux handler. Blocks may
// arrive in any order and spanning cycle boundaries (the BlockCache
// behaviour); completed files are surfaced through OnFile.
type Receiver struct {
	mu sync.Mutex

	dii      *DII
	partials map[moduleKey]*partialModule
	complete map[string][]byte
	done     map[moduleKey]bool

	// OnFile, if set, runs when a file is fully assembled (including
	// again after a version change). It is called without the receiver
	// lock held.
	OnFile func(name string, data []byte)
	// OnDirectory, if set, runs whenever a DII with a new transaction id
	// is seen.
	OnDirectory func(d *DII)

	// SectionErrors counts undecodable sections.
	SectionErrors int
}

type moduleKey struct {
	id      uint16
	version uint8
}

type partialModule struct {
	info   ModuleInfo
	blocks map[uint16][]byte
	need   int
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{
		partials: make(map[moduleKey]*partialModule),
		complete: make(map[string][]byte),
		done:     make(map[moduleKey]bool),
	}
}

// File returns the assembled contents of name, if complete.
func (r *Receiver) File(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.complete[name]
	return d, ok
}

// Directory returns the most recent DII, if any.
func (r *Receiver) Directory() *DII {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dii
}

// HandleSection consumes one raw section (table 0x3B or 0x3C).
func (r *Receiver) HandleSection(sec []byte) {
	if len(sec) == 0 {
		return
	}
	switch sec[0] {
	case 0x3B:
		d, err := DecodeDII(sec)
		if err != nil {
			r.mu.Lock()
			r.SectionErrors++
			r.mu.Unlock()
			return
		}
		r.handleDII(d)
	case 0x3C:
		b, err := DecodeDDB(sec)
		if err != nil {
			r.mu.Lock()
			r.SectionErrors++
			r.mu.Unlock()
			return
		}
		r.handleDDB(b)
	default:
		r.mu.Lock()
		r.SectionErrors++
		r.mu.Unlock()
	}
}

func (r *Receiver) handleDII(d *DII) {
	r.mu.Lock()
	fresh := r.dii == nil || r.dii.TransactionID != d.TransactionID
	r.dii = d
	var completed []struct {
		name string
		data []byte
	}
	if fresh {
		// Register expected modules; drop partials for superseded
		// versions, and promote any partials that were buffered before
		// this DII arrived and are already complete.
		valid := make(map[moduleKey]ModuleInfo, len(d.Modules))
		for _, m := range d.Modules {
			valid[moduleKey{m.ID, m.Version}] = m
		}
		for k, p := range r.partials {
			m, ok := valid[k]
			if !ok {
				delete(r.partials, k)
				continue
			}
			p.info = m
			p.need = blocksFor(int(m.Size), int(d.BlockSize))
			if data, ok := p.assemble(); ok {
				r.complete[m.Name] = data
				r.done[k] = true
				delete(r.partials, k)
				completed = append(completed, struct {
					name string
					data []byte
				}{m.Name, data})
			}
		}
	}
	cb := r.OnDirectory
	onFile := r.OnFile
	r.mu.Unlock()
	if fresh && cb != nil {
		cb(d)
	}
	if onFile != nil {
		for _, c := range completed {
			onFile(c.name, c.data)
		}
	}
}

func blocksFor(size, blockSize int) int {
	if size == 0 {
		return 1
	}
	return (size + blockSize - 1) / blockSize
}

func (r *Receiver) handleDDB(b *DDB) {
	r.mu.Lock()
	k := moduleKey{b.ModuleID, b.Version}
	if r.done[k] {
		// This module version is already assembled; cyclic
		// retransmissions of its blocks are expected and ignored.
		r.mu.Unlock()
		return
	}
	p := r.partials[k]
	if p == nil {
		p = &partialModule{blocks: make(map[uint16][]byte)}
		if r.dii != nil {
			for _, m := range r.dii.Modules {
				if m.ID == b.ModuleID && m.Version == b.Version {
					p.info = m
					p.need = blocksFor(int(m.Size), int(r.dii.BlockSize))
					break
				}
			}
		}
		r.partials[k] = p
	}
	if _, dup := p.blocks[b.BlockNumber]; !dup {
		p.blocks[b.BlockNumber] = append([]byte(nil), b.Data...)
	}
	var name string
	var data []byte
	if p.need > 0 && len(p.blocks) >= p.need && r.dii != nil {
		if d, ok := p.assemble(); ok {
			name, data = p.info.Name, d
			r.complete[name] = data
			r.done[k] = true
			delete(r.partials, k)
		}
	}
	onFile := r.OnFile
	r.mu.Unlock()
	if data != nil && onFile != nil {
		onFile(name, data)
	}
}

// assemble stitches blocks into the module payload; done is false if
// metadata is missing or blocks are absent/ill-sized.
func (p *partialModule) assemble() ([]byte, bool) {
	if p.need == 0 || len(p.blocks) < p.need {
		return nil, false
	}
	data := make([]byte, 0, p.info.Size)
	for i := 0; i < p.need; i++ {
		blk, ok := p.blocks[uint16(i)]
		if !ok {
			return nil, false
		}
		data = append(data, blk...)
	}
	if len(data) != int(p.info.Size) {
		return nil, false
	}
	return data, true
}

// String summarizes receiver state for diagnostics.
func (r *Receiver) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("dsmcc.Receiver{complete:%d partial:%d errors:%d}",
		len(r.complete), len(r.partials), r.SectionErrors)
}
