package dsmcc

import (
	"fmt"
	"sync"
)

// Receiver assembles carousel files from a stream of decoded DSM-CC
// sections — the byte-exact counterpart of the Broadcaster's timing
// model. Feed it sections from an mpegts.Demux handler. Blocks may
// arrive in any order and spanning cycle boundaries (the BlockCache
// behaviour); completed files are surfaced through OnFile.
//
// When the DII carries the content-hash extension, the receiver keys
// correctness on hashes: assembled modules are verified against the
// advertised hash, unchanged modules survive version-number wraps, and
// an attached ChunkCache satisfies modules without hearing their blocks
// at all — which is what makes a delta re-air (DII + changed modules)
// sufficient. With DisableHashes set (or against a pre-hash sender) it
// behaves as a legacy receiver: versions compare by equality per DII,
// so it stays correct as long as it hears a DII at least once per 256
// updates of a module.
type Receiver struct {
	// DisableHashes ignores the DII content-hash extension, modelling a
	// pre-hash receiver for mixed-version interop tests. Set before use.
	DisableHashes bool

	mu sync.Mutex

	dii      *DII
	partials map[moduleKey]*partialModule
	complete map[string][]byte
	// meta records the ModuleInfo each completed file was assembled
	// under (with Hash always populated when hashes are enabled), so a
	// fresh DII can tell "same content" from "wrapped version".
	meta  map[string]ModuleInfo
	done  map[moduleKey]bool
	cache *ChunkCache

	// OnFile, if set, runs when a file is fully assembled (including
	// again after a version change). It is called without the receiver
	// lock held.
	OnFile func(name string, data []byte)
	// OnDirectory, if set, runs whenever a DII with a newer transaction
	// id is seen.
	OnDirectory func(d *DII)

	// SectionErrors counts undecodable sections.
	SectionErrors int
	// HashMismatches counts modules that assembled to bytes whose
	// content hash contradicts the DII — corrupt deliveries, dropped.
	HashMismatches int
}

type moduleKey struct {
	id      uint16
	version uint8
}

type partialModule struct {
	info   ModuleInfo
	blocks map[uint16][]byte
	need   int
}

type fileDelivery struct {
	name string
	data []byte
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{
		partials: make(map[moduleKey]*partialModule),
		complete: make(map[string][]byte),
		meta:     make(map[string]ModuleInfo),
		done:     make(map[moduleKey]bool),
	}
}

// SetCache attaches a chunk cache: assembled modules are published into
// it, and fresh DIIs satisfy changed-directory entries from it by
// content hash. A nil cache detaches. The cache may be shared across
// receivers and outlive this one.
func (r *Receiver) SetCache(c *ChunkCache) {
	r.mu.Lock()
	r.cache = c
	r.mu.Unlock()
}

// File returns the assembled contents of name, if complete.
func (r *Receiver) File(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.complete[name]
	return d, ok
}

// Directory returns the most recent DII, if any.
func (r *Receiver) Directory() *DII {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dii
}

// HandleSection consumes one raw section (table 0x3B or 0x3C).
func (r *Receiver) HandleSection(sec []byte) {
	if len(sec) == 0 {
		return
	}
	switch sec[0] {
	case 0x3B:
		d, err := DecodeDII(sec)
		if err != nil {
			r.mu.Lock()
			r.SectionErrors++
			r.mu.Unlock()
			return
		}
		r.handleDII(d)
	case 0x3C:
		b, err := DecodeDDB(sec)
		if err != nil {
			r.mu.Lock()
			r.SectionErrors++
			r.mu.Unlock()
			return
		}
		r.handleDDB(b)
	default:
		r.mu.Lock()
		r.SectionErrors++
		r.mu.Unlock()
	}
}

func (r *Receiver) handleDII(d *DII) {
	r.mu.Lock()
	// Serial-number comparison, not inequality: a long-lived carousel
	// wraps its uint32 generation, and out-of-order stragglers from an
	// older generation must not roll the directory back.
	fresh := r.dii == nil || NewerGeneration(d.TransactionID, r.dii.TransactionID)
	if !fresh {
		r.mu.Unlock()
		return
	}
	r.dii = d
	var completed []fileDelivery
	valid := make(map[moduleKey]ModuleInfo, len(d.Modules))
	// Rebuild the done set from the new directory. This is the uint8
	// version-wrap fix: a done mark recorded 256 content changes ago
	// under the same {id, version} key must not suppress fresh blocks,
	// so done marks survive only for modules whose content is verifiably
	// unchanged (hash match, or version equality on the legacy path).
	// It also bounds done/partial growth to the live directory.
	done := make(map[moduleKey]bool, len(d.Modules))
	for _, m := range d.Modules {
		k := moduleKey{m.ID, m.Version}
		valid[k] = m
		if r.currentLocked(m) {
			done[k] = true
			prev := r.meta[m.Name]
			if m.Hash == 0 {
				m.Hash = prev.Hash
			}
			r.meta[m.Name] = m
			continue
		}
		if !r.DisableHashes && m.Hash != 0 {
			if data, ok := r.cache.Get(m.Hash); ok {
				// Content-addressed short-circuit: the module changed on
				// air but we already hold these exact bytes locally.
				r.complete[m.Name] = data
				r.meta[m.Name] = m
				done[k] = true
				completed = append(completed, fileDelivery{m.Name, data})
			}
		}
	}
	r.done = done
	// Drop partials for superseded versions and promote any that were
	// buffered before this DII arrived and are already complete.
	for k, p := range r.partials {
		m, ok := valid[k]
		if !ok || done[k] {
			delete(r.partials, k)
			continue
		}
		p.info = m
		p.need = blocksFor(int(m.Size), int(d.BlockSize))
		if data, ok := r.assembleLocked(p); ok {
			r.finishLocked(k, p, data)
			completed = append(completed, fileDelivery{m.Name, data})
		}
	}
	cb := r.OnDirectory
	onFile := r.OnFile
	r.mu.Unlock()
	if cb != nil {
		cb(d)
	}
	if onFile != nil {
		for _, c := range completed {
			onFile(c.name, c.data)
		}
	}
}

// currentLocked reports whether the completed bytes held for m.Name are
// exactly the content the directory entry m describes. Hashes decide
// when both sides have one (immune to version wraps); otherwise version
// equality per DII is the best a legacy receiver can do.
func (r *Receiver) currentLocked(m ModuleInfo) bool {
	prev, ok := r.meta[m.Name]
	if !ok || prev.ID != m.ID {
		return false
	}
	if _, have := r.complete[m.Name]; !have {
		return false
	}
	if !r.DisableHashes && m.Hash != 0 && prev.Hash != 0 {
		return prev.Hash == m.Hash
	}
	return prev.Version == m.Version
}

func blocksFor(size, blockSize int) int {
	if size == 0 {
		return 1
	}
	return (size + blockSize - 1) / blockSize
}

func (r *Receiver) handleDDB(b *DDB) {
	r.mu.Lock()
	k := moduleKey{b.ModuleID, b.Version}
	if r.done[k] {
		// This module version is already assembled; cyclic
		// retransmissions of its blocks are expected and ignored.
		r.mu.Unlock()
		return
	}
	p := r.partials[k]
	if p == nil {
		p = &partialModule{blocks: make(map[uint16][]byte)}
		if r.dii != nil {
			for _, m := range r.dii.Modules {
				if m.ID == b.ModuleID && m.Version == b.Version {
					p.info = m
					p.need = blocksFor(int(m.Size), int(r.dii.BlockSize))
					break
				}
			}
		}
		r.partials[k] = p
	}
	if _, dup := p.blocks[b.BlockNumber]; !dup {
		p.blocks[b.BlockNumber] = append([]byte(nil), b.Data...)
	}
	var name string
	var data []byte
	if p.need > 0 && len(p.blocks) >= p.need && r.dii != nil {
		if d, ok := r.assembleLocked(p); ok {
			name, data = p.info.Name, d
			r.finishLocked(k, p, d)
		}
	}
	onFile := r.OnFile
	r.mu.Unlock()
	if data != nil && onFile != nil {
		onFile(name, data)
	}
}

// assembleLocked stitches p and verifies the result against the DII's
// content hash when one is advertised. A mismatch means the blocks are
// corrupt (or a version wrap mixed two contents under one key); the
// partial is discarded so the cyclic retransmission rebuilds it.
func (r *Receiver) assembleLocked(p *partialModule) ([]byte, bool) {
	data, ok := p.assemble()
	if !ok {
		return nil, false
	}
	if !r.DisableHashes && p.info.Hash != 0 && HashOf(data) != p.info.Hash {
		r.HashMismatches++
		p.blocks = make(map[uint16][]byte)
		return nil, false
	}
	return data, true
}

// finishLocked records an assembled module: completed bytes, metadata
// (with the content hash filled in), done mark, and cache publication.
func (r *Receiver) finishLocked(k moduleKey, p *partialModule, data []byte) {
	m := p.info
	if !r.DisableHashes {
		if m.Hash == 0 {
			m.Hash = HashOf(data)
		}
		r.cache.Put(m.Hash, data)
	}
	r.complete[m.Name] = data
	r.meta[m.Name] = m
	r.done[k] = true
	delete(r.partials, k)
}

// assemble stitches blocks into the module payload; done is false if
// metadata is missing or blocks are absent/ill-sized.
func (p *partialModule) assemble() ([]byte, bool) {
	if p.need == 0 || len(p.blocks) < p.need {
		return nil, false
	}
	data := make([]byte, 0, p.info.Size)
	for i := 0; i < p.need; i++ {
		blk, ok := p.blocks[uint16(i)]
		if !ok {
			return nil, false
		}
		data = append(data, blk...)
	}
	if len(data) != int(p.info.Size) {
		return nil, false
	}
	return data, true
}

// String summarizes receiver state for diagnostics.
func (r *Receiver) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("dsmcc.Receiver{complete:%d partial:%d errors:%d}",
		len(r.complete), len(r.partials), r.SectionErrors)
}
