package dsmcc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDIIRoundTrip(t *testing.T) {
	d := &DII{
		TransactionID: 42,
		DownloadID:    7,
		BlockSize:     4000,
		Modules: []ModuleInfo{
			{ID: 0, Version: 1, Size: 1 << 20, Name: "pna.xlet"},
			{ID: 1, Version: 0, Size: 8 << 20, Name: "image"},
			{ID: 2, Version: 3, Size: 120, Name: "config"},
		},
	}
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDII(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("got %+v want %+v", got, d)
	}
}

func TestDDBRoundTrip(t *testing.T) {
	d := &DDB{DownloadID: 7, ModuleID: 300, Version: 5, BlockNumber: 1234,
		Data: bytes.Repeat([]byte{0xAB}, 4000)}
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDDB(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.DownloadID != 7 || got.ModuleID != 300 || got.Version != 5 || got.BlockNumber != 1234 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Data, d.Data) {
		t.Fatal("data mismatch")
	}
}

func TestDDBOversizedRejected(t *testing.T) {
	d := &DDB{Data: make([]byte, maxBlockSize+1)}
	if _, err := d.Encode(); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestCrossDecodeRejected(t *testing.T) {
	dii, _ := (&DII{BlockSize: 100}).Encode()
	if _, err := DecodeDDB(dii); err == nil {
		t.Fatal("DII decoded as DDB")
	}
	ddb, _ := (&DDB{Data: []byte{1}}).Encode()
	if _, err := DecodeDII(ddb); err == nil {
		t.Fatal("DDB decoded as DII")
	}
}

// Property: DII round-trips for arbitrary module tables.
func TestDIIRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n) % 20
		d := &DII{
			TransactionID: rng.Uint32(),
			DownloadID:    rng.Uint32(),
			BlockSize:     uint16(rng.Intn(4000) + 1),
		}
		for i := 0; i < count; i++ {
			name := make([]byte, rng.Intn(30)+1)
			for j := range name {
				name[j] = byte('a' + rng.Intn(26))
			}
			d.Modules = append(d.Modules, ModuleInfo{
				ID:      uint16(rng.Intn(65536)),
				Version: uint8(rng.Intn(256)),
				Size:    rng.Uint32(),
				Name:    string(name),
			})
		}
		raw, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeDII(raw)
		if err != nil {
			return false
		}
		if len(got.Modules) == 0 {
			got.Modules = nil
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: DDB round-trips for arbitrary block payloads.
func TestDDBRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(size)%maxBlockSize)
		rng.Read(data)
		d := &DDB{
			DownloadID:  rng.Uint32(),
			ModuleID:    uint16(rng.Intn(65536)),
			Version:     uint8(rng.Intn(256)),
			BlockNumber: uint16(rng.Intn(65536)),
			Data:        data,
		}
		raw, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeDDB(raw)
		if err != nil {
			return false
		}
		return got.DownloadID == d.DownloadID && got.ModuleID == d.ModuleID &&
			got.Version == d.Version && got.BlockNumber == d.BlockNumber &&
			bytes.Equal(got.Data, d.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
