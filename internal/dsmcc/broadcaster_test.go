package dsmcc

import (
	"bytes"
	"math"
	"testing"
	"time"

	"oddci/internal/mpegts"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func startBroadcaster(t *testing.T, clk simtime.Clock, rate float64, files ...File) *Broadcaster {
	t.Helper()
	c, err := NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBroadcaster(clk, c, rate)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(files); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBroadcasterDeliveryAtPhaseZero(t *testing.T) {
	clk := simtime.NewSim(epoch)
	img := make([]byte, 1<<20)
	b := startBroadcaster(t, clk, 1e6, File{Name: "image", Data: img})

	var at time.Time
	var got []byte
	b.RequestFile("image", FileGranularity, func(data []byte, when time.Time, err error) {
		if err != nil {
			t.Errorf("request: %v", err)
			return
		}
		got, at = data, when
	})
	clk.Wait()
	if !bytes.Equal(got, img) {
		t.Fatal("image data mismatch")
	}
	// Tuned at phase 0: delivery at the module's first WireEnd.
	l, _ := b.car.Layout()
	e, _ := l.Entry("image")
	want := epoch.Add(b.airTime(e.WireEnd))
	if d := at.Sub(want); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestBroadcasterMidCycleWaitsFullRetransmission(t *testing.T) {
	clk := simtime.NewSim(epoch)
	img := make([]byte, 1<<20)
	b := startBroadcaster(t, clk, 1e6, File{Name: "image", Data: img})
	cycle := b.CycleDuration()

	var at time.Time
	clk.Go(func() {
		clk.Sleep(cycle / 2) // tune mid-module
		b.RequestFile("image", FileGranularity, func(_ []byte, when time.Time, err error) {
			if err != nil {
				t.Errorf("request: %v", err)
			}
			at = when
		})
	})
	clk.Wait()
	// Tuned at 0.5 cycles: wait the remaining half cycle for the next
	// module start, then read a full cycle — delivery ≈ 2 cycles from
	// epoch (1.5 cycles after tuning, the paper's average case).
	want := epoch.Add(2 * cycle)
	tol := 50 * time.Millisecond
	if d := at.Sub(want); d < -tol || d > tol {
		t.Fatalf("delivered at %v, want ≈%v", at, want)
	}
}

func TestBroadcasterWakeupMatchesPaperModel(t *testing.T) {
	// The paper: W = 1.5·I/β on average for random tune phases. Sample
	// uniformly and compare.
	clk := simtime.NewSim(epoch)
	const I = 4 << 20 // 4 MiB
	const beta = 1e6
	b := startBroadcaster(t, clk, beta, File{Name: "image", Data: make([]byte, I)})
	cycle := b.CycleDuration()

	const n = 200
	var total time.Duration
	var count int
	for i := 0; i < n; i++ {
		offset := time.Duration(i) * cycle / n
		clk.Go(func() {
			clk.Sleep(offset)
			start := clk.Now()
			b.RequestFile("image", FileGranularity, func(_ []byte, when time.Time, err error) {
				if err == nil {
					total += when.Sub(start)
					count++
				}
			})
		})
	}
	clk.Wait()
	if count != n {
		t.Fatalf("%d of %d deliveries", count, n)
	}
	meanSec := (total / time.Duration(count)).Seconds()
	wantSec := 1.5 * float64(I) * 8 / beta
	// TS framing overhead inflates the wire size ~3%; allow 5%.
	if math.Abs(meanSec-wantSec)/wantSec > 0.05 {
		t.Fatalf("mean wakeup %.2fs, paper model %.2fs", meanSec, wantSec)
	}
}

func TestBroadcasterUpdateAtCycleBoundary(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := startBroadcaster(t, clk, 1e6, File{Name: "image", Data: make([]byte, 1<<20)})
	cycle := b.CycleDuration()

	var gen uint32
	var at time.Time
	b.OnGeneration(func(g uint32, when time.Time) { gen, at = g, when })

	clk.Go(func() {
		clk.Sleep(cycle / 3)
		if err := b.Update([]File{{Name: "image", Data: make([]byte, 2<<20)}}); err != nil {
			t.Errorf("update: %v", err)
		}
	})
	clk.Wait()
	if gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	// Commit lands on the first cycle boundary after the update.
	want := epoch.Add(cycle)
	if d := at.Sub(want); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("committed at %v, want %v", at, want)
	}
	if b.Generation() != 2 {
		t.Fatalf("on-air generation = %d", b.Generation())
	}
}

func TestBroadcasterCoalescesUpdates(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := startBroadcaster(t, clk, 1e6, File{Name: "a", Data: make([]byte, 100000)})
	commits := 0
	b.OnGeneration(func(uint32, time.Time) { commits++ })
	clk.Go(func() {
		b.Update([]File{{Name: "a", Data: []byte("v2")}})
		b.Update([]File{{Name: "a", Data: []byte("v3")}})
	})
	clk.Wait()
	if commits != 1 {
		t.Fatalf("commits = %d, want 1 (coalesced)", commits)
	}
	if got := b.car.Files()[0].Data; !bytes.Equal(got, []byte("v3")) {
		t.Fatalf("committed content %q, want v3 (last update wins)", got)
	}
}

func TestBroadcasterRequestUnknownFile(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := startBroadcaster(t, clk, 1e6, File{Name: "a", Data: []byte{1}})
	var got error
	b.RequestFile("missing", FileGranularity, func(_ []byte, _ time.Time, err error) { got = err })
	clk.Wait()
	if got != ErrNoSuchFile {
		t.Fatalf("err = %v, want ErrNoSuchFile", got)
	}
}

func TestBroadcasterGenerationListenerCancel(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := startBroadcaster(t, clk, 1e6, File{Name: "a", Data: make([]byte, 1000)})
	n := 0
	cancel := b.OnGeneration(func(uint32, time.Time) { n++ })
	cancel()
	clk.Go(func() { b.Update([]File{{Name: "a", Data: []byte("v2")}}) })
	clk.Wait()
	if n != 0 {
		t.Fatal("cancelled listener still invoked")
	}
}

// End-to-end byte path: encode a full cycle, push it through the real TS
// mux/demux, and confirm the Receiver assembles every file — and that
// the wire byte count equals the Layout used for timing.
func TestByteExactEndToEnd(t *testing.T) {
	c, err := NewCarousel(0x310, 0)
	if err != nil {
		t.Fatal(err)
	}
	files := []File{
		{Name: "pna.xlet", Data: bytes.Repeat([]byte{0x50}, 60000)},
		{Name: "image", Data: bytes.Repeat([]byte{0x42}, 250000)},
		{Name: "config", Data: []byte("message_type=wakeup\nprobability=0.5\n")},
	}
	if err := c.SetFiles(files); err != nil {
		t.Fatal(err)
	}
	secs, err := c.EncodeCycle()
	if err != nil {
		t.Fatal(err)
	}
	mux := mpegts.NewMux()
	for _, s := range secs {
		if err := mux.EnqueueSection(c.PID, s); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := mux.DrainBytes()
	if err != nil {
		t.Fatal(err)
	}
	l, _ := c.Layout()
	if int64(len(stream)) != l.CycleWire {
		t.Fatalf("stream %d bytes, layout %d", len(stream), l.CycleWire)
	}

	recv := NewReceiver()
	demux := mpegts.NewDemux()
	demux.Handle(c.PID, recv.HandleSection)
	if err := demux.PushBytes(stream); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		got, ok := recv.File(f.Name)
		if !ok {
			t.Fatalf("file %q not assembled (%v)", f.Name, recv)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("file %q content mismatch", f.Name)
		}
	}
	if recv.SectionErrors != 0 {
		t.Fatalf("receiver errors: %d", recv.SectionErrors)
	}
}

// A receiver that starts mid-cycle on the byte path assembles files
// after seeing the tail and then the head of the next cycle — the
// BlockCache behaviour.
func TestByteExactMidCycleJoin(t *testing.T) {
	c, _ := NewCarousel(0x311, 0)
	img := bytes.Repeat([]byte{0xEE}, 200000)
	if err := c.SetFiles([]File{{Name: "image", Data: img}}); err != nil {
		t.Fatal(err)
	}
	secs, _ := c.EncodeCycle()
	mux := mpegts.NewMux()
	for _, s := range secs {
		mux.EnqueueSection(c.PID, s)
	}
	cycle1, _ := mux.DrainBytes()
	// Second identical cycle (continuity counters continue).
	for _, s := range secs {
		mux.EnqueueSection(c.PID, s)
	}
	cycle2, _ := mux.DrainBytes()

	recv := NewReceiver()
	demux := mpegts.NewDemux()
	demux.Handle(c.PID, recv.HandleSection)
	// Join mid-way through cycle 1, at a packet boundary.
	skip := len(cycle1) / 2 / mpegts.PacketSize * mpegts.PacketSize
	if err := demux.PushBytes(cycle1[skip:]); err != nil {
		t.Fatal(err)
	}
	if _, ok := recv.File("image"); ok {
		t.Fatal("file complete from half a cycle")
	}
	if err := demux.PushBytes(cycle2); err != nil {
		t.Fatal(err)
	}
	got, ok := recv.File("image")
	if !ok || !bytes.Equal(got, img) {
		t.Fatalf("image not assembled after second cycle (%v)", recv)
	}
}
