package ait

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oddci/internal/mpegts"
)

func TestAITRoundTrip(t *testing.T) {
	a := &AIT{
		Type:    TypeDVBJ,
		Version: 9,
		Applications: []Application{
			{OrgID: 0x0ddc1, AppID: 1, ControlCode: Autostart, Name: "PNA", ClassFile: "pna.xlet"},
			{OrgID: 0x0ddc1, AppID: 2, ControlCode: Kill, Name: "old-app", ClassFile: "old.xlet"},
		},
	}
	raw, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("got %+v want %+v", got, a)
	}
}

func TestAITRejectsWrongTable(t *testing.T) {
	s := &mpegts.Section{TableID: 0x42, Payload: []byte{0}}
	raw, _ := s.Encode()
	if _, err := Decode(raw); err == nil {
		t.Fatal("non-AIT section accepted")
	}
}

func TestControlCodeString(t *testing.T) {
	if Autostart.String() != "AUTOSTART" || Kill.String() != "KILL" {
		t.Fatal("control code strings wrong")
	}
	if ControlCode(0x99).String() == "" {
		t.Fatal("unknown code has empty string")
	}
}

func TestApplicationKeyUnique(t *testing.T) {
	a := Application{OrgID: 1, AppID: 2}
	b := Application{OrgID: 2, AppID: 1}
	if a.Key() == b.Key() {
		t.Fatal("distinct identifiers collide")
	}
}

// Property: arbitrary AITs round-trip.
func TestAITRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n) % 12
		a := &AIT{Type: uint16(rng.Intn(1 << 16)), Version: uint8(rng.Intn(32))}
		for i := 0; i < count; i++ {
			name := make([]byte, rng.Intn(20))
			for j := range name {
				name[j] = byte('a' + rng.Intn(26))
			}
			a.Applications = append(a.Applications, Application{
				OrgID:       rng.Uint32(),
				AppID:       uint16(rng.Intn(1 << 16)),
				ControlCode: ControlCode(rng.Intn(7)),
				Name:        string(name),
				ClassFile:   string(name) + ".xlet",
			})
		}
		raw, err := a.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		if len(got.Applications) == 0 {
			got.Applications = nil
		}
		return reflect.DeepEqual(got, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncations(t *testing.T) {
	full := &AIT{Type: TypeDVBJ, Applications: []Application{
		{OrgID: 1, AppID: 2, ControlCode: Autostart, Name: "app", ClassFile: "a.xlet"},
	}}
	raw, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild sections with truncated payloads: cut inside the entry,
	// inside the name, and inside the class file.
	dec, _, _ := mpegts.DecodeSection(raw)
	for _, cut := range []int{1, 5, 9, len(dec.Payload) - 1} {
		s := &mpegts.Section{TableID: mpegts.TableIDAIT, Payload: dec.Payload[:cut]}
		broken, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(broken); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("garbage accepted")
	}
	// All control code strings.
	for _, c := range []ControlCode{Autostart, Present, Destroy, Kill, Remote, Disabled} {
		if c.String() == "" {
			t.Fatal("empty code string")
		}
	}
}
