// Package ait implements the Application Information Table that signals
// interactive applications to DTV receivers (ETSI TS 102 809 / MHP,
// simplified). The AIT is what makes the OddCI wakeup work: the PNA Xlet
// is announced with control code AUTOSTART, so every tuned receiver
// loads and starts it without user intervention.
//
// Simplification vs. the full standard: the application descriptor loop
// is reduced to the two fields this system consumes — the application
// name and the carousel file carrying its code ("base directory" +
// "initial class" collapsed into one name).
package ait

import (
	"encoding/binary"
	"errors"
	"fmt"

	"oddci/internal/mpegts"
)

// ControlCode directs the receiver's application manager.
type ControlCode uint8

// Control codes from TS 102 809 §5.3.5.2.
const (
	Autostart ControlCode = 0x01
	Present   ControlCode = 0x02
	Destroy   ControlCode = 0x03
	Kill      ControlCode = 0x04
	Remote    ControlCode = 0x05
	Disabled  ControlCode = 0x06
)

// String implements fmt.Stringer.
func (c ControlCode) String() string {
	switch c {
	case Autostart:
		return "AUTOSTART"
	case Present:
		return "PRESENT"
	case Destroy:
		return "DESTROY"
	case Kill:
		return "KILL"
	case Remote:
		return "REMOTE"
	case Disabled:
		return "DISABLED"
	default:
		return fmt.Sprintf("ControlCode(%#x)", uint8(c))
	}
}

// ApplicationType values (table_id_extension).
const (
	TypeDVBJ uint16 = 0x0001 // Java/Xlet applications
)

// Application is one entry in the AIT.
type Application struct {
	OrgID       uint32
	AppID       uint16
	ControlCode ControlCode
	// Name is the human-readable application name.
	Name string
	// ClassFile is the carousel file carrying the application code (the
	// Xlet's initial class).
	ClassFile string
}

// Key returns the application identifier as a single comparable value.
func (a *Application) Key() uint64 { return uint64(a.OrgID)<<16 | uint64(a.AppID) }

// AIT is the full table for one application type.
type AIT struct {
	Type         uint16
	Version      uint8 // 5 bits; receivers reprocess on change
	Applications []Application
}

// Encode serializes the AIT into one section (table id 0x74).
func (t *AIT) Encode() ([]byte, error) {
	if len(t.Applications) > 255 {
		return nil, errors.New("ait: too many applications")
	}
	buf := []byte{byte(len(t.Applications))}
	for _, a := range t.Applications {
		if len(a.Name) > 255 || len(a.ClassFile) > 255 {
			return nil, fmt.Errorf("ait: strings too long for app %#x", a.AppID)
		}
		buf = binary.BigEndian.AppendUint32(buf, a.OrgID)
		buf = binary.BigEndian.AppendUint16(buf, a.AppID)
		buf = append(buf, byte(a.ControlCode), byte(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = append(buf, byte(len(a.ClassFile)))
		buf = append(buf, a.ClassFile...)
	}
	if len(buf) > mpegts.MaxSectionPayload {
		return nil, errors.New("ait: table exceeds one section")
	}
	s := &mpegts.Section{
		TableID:     mpegts.TableIDAIT,
		TableIDExt:  t.Type,
		Version:     t.Version & 0x1F,
		CurrentNext: true,
		Payload:     buf,
	}
	return s.Encode()
}

// Decode parses an AIT section.
func Decode(raw []byte) (*AIT, error) {
	s, _, err := mpegts.DecodeSection(raw)
	if err != nil {
		return nil, err
	}
	if s.TableID != mpegts.TableIDAIT {
		return nil, fmt.Errorf("ait: table id %#x is not an AIT", s.TableID)
	}
	b := s.Payload
	if len(b) < 1 {
		return nil, errors.New("ait: empty payload")
	}
	n := int(b[0])
	b = b[1:]
	t := &AIT{Type: s.TableIDExt, Version: s.Version}
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return nil, errors.New("ait: truncated application entry")
		}
		a := Application{
			OrgID:       binary.BigEndian.Uint32(b[0:]),
			AppID:       binary.BigEndian.Uint16(b[4:]),
			ControlCode: ControlCode(b[6]),
		}
		nameLen := int(b[7])
		b = b[8:]
		if len(b) < nameLen+1 {
			return nil, errors.New("ait: truncated application name")
		}
		a.Name = string(b[:nameLen])
		b = b[nameLen:]
		classLen := int(b[0])
		b = b[1:]
		if len(b) < classLen {
			return nil, errors.New("ait: truncated class file")
		}
		a.ClassFile = string(b[:classLen])
		b = b[classLen:]
		t.Applications = append(t.Applications, a)
	}
	return t, nil
}
