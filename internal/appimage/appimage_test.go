package appimage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := &Image{
		Name:       "blast-worker",
		Version:    3,
		EntryPoint: "botworker",
		Payload:    bytes.Repeat([]byte{0xAB}, 100000),
	}
	raw, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, im) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode(make([]byte, 32)); err == nil {
		t.Fatal("zero magic accepted")
	}
	im := &Image{Name: "x", EntryPoint: "y", Payload: []byte{1, 2, 3}}
	raw, _ := im.Encode()
	if _, err := Decode(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestDigestVerify(t *testing.T) {
	im := &Image{Name: "app", EntryPoint: "main", Payload: []byte("body")}
	raw, _ := im.Encode()
	d, err := im.Digest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Verify(raw, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "app" {
		t.Fatalf("verified image: %+v", got)
	}
	raw[len(raw)-1] ^= 1
	if _, err := Verify(raw, d); err == nil {
		t.Fatal("tampered image verified")
	}
}

// Property: digest is content-determined and collision-evident for
// single-byte changes.
func TestDigestProperty(t *testing.T) {
	f := func(payload []byte, flip uint8, pos uint16) bool {
		im := &Image{Name: "p", EntryPoint: "e", Payload: payload}
		d1, err := im.Digest()
		if err != nil {
			return false
		}
		d2, err := im.Digest()
		if err != nil || d1 != d2 {
			return false
		}
		if len(payload) == 0 || flip == 0 {
			return true
		}
		mutated := append([]byte(nil), payload...)
		mutated[int(pos)%len(mutated)] ^= flip
		im2 := &Image{Name: "p", EntryPoint: "e", Payload: mutated}
		d3, err := im2.Digest()
		if err != nil {
			return false
		}
		return d1 != d3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary images round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, size)
		rng.Read(payload)
		im := &Image{
			Name:       "app",
			Version:    rng.Uint32(),
			EntryPoint: "entry",
			Payload:    payload,
		}
		raw, err := im.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedNamesRejected(t *testing.T) {
	im := &Image{Name: string(make([]byte, 256))}
	if _, err := im.Encode(); err == nil {
		t.Fatal("256-byte name accepted")
	}
}
