// Package appimage defines the application-image format staged to
// processing nodes through the broadcast channel: a manifest (name,
// version, entry point) plus the payload, with a SHA-256 digest binding
// the two. The wakeup control message references an image by digest so
// a PNA can verify what the carousel delivered before executing it.
package appimage

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Image is one deployable application.
type Image struct {
	// Name labels the application.
	Name string
	// Version distinguishes successive deployments.
	Version uint32
	// EntryPoint names the application behaviour to run inside the DVE
	// (resolved against the node's registry — the substitution for
	// executing shipped binaries).
	EntryPoint string
	// Payload is the application body staged over broadcast; for the
	// simulator its size is what matters, for demos it can carry real
	// content (e.g. an encoded BLAST database).
	Payload []byte
}

const magic = 0x0DDC1136

// Encode serializes the image into its canonical wire form.
func (im *Image) Encode() ([]byte, error) {
	if len(im.Name) > 255 || len(im.EntryPoint) > 255 {
		return nil, errors.New("appimage: name or entry point too long")
	}
	b := make([]byte, 0, 16+len(im.Name)+len(im.EntryPoint)+len(im.Payload))
	b = binary.BigEndian.AppendUint32(b, magic)
	b = binary.BigEndian.AppendUint32(b, im.Version)
	b = append(b, byte(len(im.Name)))
	b = append(b, im.Name...)
	b = append(b, byte(len(im.EntryPoint)))
	b = append(b, im.EntryPoint...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(im.Payload)))
	b = append(b, im.Payload...)
	return b, nil
}

// Decode parses an encoded image.
func Decode(raw []byte) (*Image, error) {
	if len(raw) < 10 {
		return nil, errors.New("appimage: truncated")
	}
	if binary.BigEndian.Uint32(raw) != magic {
		return nil, errors.New("appimage: bad magic")
	}
	im := &Image{Version: binary.BigEndian.Uint32(raw[4:])}
	b := raw[8:]
	nameLen := int(b[0])
	b = b[1:]
	if len(b) < nameLen+1 {
		return nil, errors.New("appimage: truncated name")
	}
	im.Name = string(b[:nameLen])
	b = b[nameLen:]
	epLen := int(b[0])
	b = b[1:]
	if len(b) < epLen+4 {
		return nil, errors.New("appimage: truncated entry point")
	}
	im.EntryPoint = string(b[:epLen])
	b = b[epLen:]
	plen := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != plen {
		return nil, fmt.Errorf("appimage: payload length %d, header says %d", len(b), plen)
	}
	im.Payload = b
	return im, nil
}

// Digest is a SHA-256 over the canonical encoding.
type Digest [sha256.Size]byte

// Digest computes the image's content digest.
func (im *Image) Digest() (Digest, error) {
	raw, err := im.Encode()
	if err != nil {
		return Digest{}, err
	}
	return sha256.Sum256(raw), nil
}

// DigestOf hashes an already-encoded image.
func DigestOf(raw []byte) Digest { return sha256.Sum256(raw) }

// Verify checks raw against an expected digest and decodes it.
func Verify(raw []byte, want Digest) (*Image, error) {
	if DigestOf(raw) != want {
		return nil, errors.New("appimage: digest mismatch")
	}
	return Decode(raw)
}
