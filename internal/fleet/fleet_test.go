package fleet

import (
	"math"
	"reflect"
	"testing"
	"time"

	"oddci/internal/analytic"
)

// TestRunValidates is the main cross-validation gate at test scale: a
// few thousand nodes through warm-up, wakeup, and ramp, with every
// availability and ramp sample inside its analytic bound.
func TestRunValidates(t *testing.T) {
	r, err := Run(Config{Nodes: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Availability != 0.75 {
		t.Fatalf("model availability = %v, want 0.75 for 3h on / 1h off", r.Availability)
	}
	// AvailAtWake is Binomial(2000, 0.75): mean 1500, σ ≈ 19.4.
	if r.AvailAtWake < 1350 || r.AvailAtWake > 1650 {
		t.Fatalf("AvailAtWake = %d, implausible for Binomial(2000, 0.75)", r.AvailAtWake)
	}
	if len(r.Avail) != 48 || len(r.Ramp) != 48 {
		t.Fatalf("curve lengths %d/%d, want 48 samples each", len(r.Avail), len(r.Ramp))
	}
	if r.QuorumSimSeconds < 0 {
		t.Fatal("quorum never reached")
	}
	// Defaults: C = 80s, quorum 0.8 ⇒ model ≈ C(1+q) minus a hair of churn.
	if r.QuorumModelSeconds < 140 || r.QuorumModelSeconds > 160 {
		t.Fatalf("model quorum = %.1fs, want near C(1+0.8) = 144s", r.QuorumModelSeconds)
	}
	if r.Heartbeats == 0 {
		t.Fatal("no heartbeats generated")
	}
	if r.DirectJoins == 0 || r.FinalJoined == 0 {
		t.Fatalf("no joins recorded: direct=%d final=%d", r.DirectJoins, r.FinalJoined)
	}
}

// TestRunDeterministic: identical configs produce identical results,
// bit for bit — the whole point of per-node RNG streams plus the
// deterministic wheel/Sim stack.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Nodes: 1500, Seed: 7}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two runs of the same config differ")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	r1, err := Run(Config{Nodes: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Nodes: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Ramp, r2.Ramp) {
		t.Fatal("different seeds produced identical ramp curves")
	}
}

// TestRunBatching: the event-batching claim. Node transitions must
// dwarf the number of events the simtime heap fires — the wheel turns
// one Sim event into a whole tick's batch. Needs a population large
// enough that many transitions share each 10 ms tick.
func TestRunBatching(t *testing.T) {
	r, err := Run(Config{Nodes: 100_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NodeEvents < 2*r.SimEvents {
		t.Fatalf("node events %d vs sim events %d: wheel batching not effective", r.NodeEvents, r.SimEvents)
	}
	if r.WheelBatches == 0 || r.NodeEvents < r.WheelBatches {
		t.Fatalf("implausible batch accounting: %d batches, %d node events", r.WheelBatches, r.NodeEvents)
	}
}

// TestRunNoChurn: with effectively infinite on-times the ramp is the
// pure random-phase curve — everyone available at the wakeup has
// joined by 2C and stays joined.
func TestRunNoChurn(t *testing.T) {
	r, err := Run(Config{
		Nodes:  1000,
		Seed:   5,
		MeanOn: 1e6 * time.Hour,
		// MeanOff shrinks so the off population still cycles in.
		MeanOff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.DirectJoins != r.AvailAtWake {
		t.Fatalf("without churn every wakeup-time node must join: %d of %d", r.DirectJoins, r.AvailAtWake)
	}
	last := r.Ramp[len(r.Ramp)-1]
	if last.Sim != 1 {
		t.Fatalf("final ramp sample = %v, want exactly 1 without churn", last.Sim)
	}
}

// TestRunAgainstAnalyticForms pins the model columns of the curves to
// the analytic package directly, so the harness cannot drift from the
// closed forms it claims to validate against.
func TestRunAgainstAnalyticForms(t *testing.T) {
	r, err := Run(Config{Nodes: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := analytic.Params{ImageBits: 10e6 * 8, Beta: 1e6}
	meanOn := (3 * time.Hour).Seconds()
	for _, pt := range r.Avail {
		if want := analytic.Availability(meanOn, time.Hour.Seconds()); pt.Model != want {
			t.Fatalf("avail model column %v, want %v", pt.Model, want)
		}
	}
	for _, pt := range r.Ramp {
		if want := p.RampUpWithChurn(pt.T, meanOn); math.Abs(pt.Model-want) > 1e-12 {
			t.Fatalf("ramp model at t=%v: %v, want %v", pt.T, pt.Model, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0},
		{Nodes: 100, Beta: -1},
		{Nodes: 100, MeanOn: -time.Second},
		{Nodes: 100, QuorumFrac: 1.5},
		{Nodes: 100, HeartbeatPeriod: time.Millisecond, Tick: time.Second},
		{Nodes: 100, Warmup: time.Second, Tick: time.Second, Samples: 48},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted, want error", i)
		}
	}
	if err := (Config{Nodes: 100}).withDefaults().Validate(); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
}

// TestResultValidateFlagsViolations: the acceptance check must actually
// trip when a sample leaves its bound.
func TestResultValidateFlagsViolations(t *testing.T) {
	r, err := Run(Config{Nodes: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	tampered := *r
	tampered.Avail = append([]Point(nil), r.Avail...)
	tampered.Avail[3].Sim = tampered.Avail[3].Model + 2*tampered.Avail[3].Tol
	if tampered.Validate() == nil {
		t.Fatal("out-of-bound availability sample not flagged")
	}
	tampered = *r
	tampered.Ramp = append([]Point(nil), r.Ramp...)
	tampered.Ramp[40].Sim = tampered.Ramp[40].Model + 2*tampered.Ramp[40].Tol
	if tampered.Validate() == nil {
		t.Fatal("out-of-bound ramp sample not flagged")
	}
	tampered = *r
	tampered.QuorumSimSeconds = r.QuorumModelSeconds + 2*r.QuorumTolSeconds
	if tampered.Validate() == nil {
		t.Fatal("out-of-bound quorum time not flagged")
	}
	tampered = *r
	tampered.QuorumSimSeconds = -1
	if tampered.Validate() == nil {
		t.Fatal("unreached quorum not flagged")
	}
}
