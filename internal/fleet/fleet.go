// Package fleet is a compact million-PNA simulation harness: one
// process tracks the power/join lifecycle of up to 10⁶ simulated
// processing-node agents in virtual time, with no per-node goroutines
// and no per-node Sim timers.
//
// The live stack (internal/system) runs real Controller/Backend/STB
// code and tops out around 10³–10⁴ nodes per run; the analytic package
// gives closed forms with no variance at all. fleet sits between them:
// it keeps only what the paper's population-scale questions need — each
// node's power phase, its next deadline, and a private RNG stream — in
// struct-of-arrays form (25 bytes per node), and schedules all node
// deadlines on one hierarchical timing wheel (simtime.Wheel). The wheel
// delivers every deadline due at a tick as a single batch, so one
// simtime event turns into thousands of node transitions; that batching
// is what makes 10⁶ nodes tractable in one process.
//
// The model: each node alternates exponentially distributed on and off
// periods (means MeanOn, MeanOff), so the stationary probability of
// being on is a = MeanOn/(MeanOn+MeanOff) (analytic.Availability). At
// a configured instant a wakeup message is broadcast; every node that
// is on joins the image carousel at a uniformly random phase and
// completes the load after W ~ U(C, 2C) with C = ImageBytes·8/Beta —
// the random-phase model behind the paper's W = 1.5·I/β. Nodes that
// power on later join the still-cycling carousel the same way. Joined
// nodes heartbeat every HeartbeatPeriod (generated per cohort, not per
// node) and leave when they power off.
//
// Every run cross-validates itself against internal/analytic:
//
//   - availability: during warm-up the on-fraction at each sample
//     instant is exactly Binomial(Nodes, a) under the stationary
//     initialization, so each sample must sit within 5σ of a;
//   - ramp-up: the fraction of the wakeup-time population that has
//     completed its initial load and is still on t seconds after the
//     broadcast is exactly Binomial(AvailAtWake, F(t)·e^(−t/MeanOn))
//     by the memorylessness of exponential on-times, so each sample
//     must sit within 5σ (plus a one-tick discretization term) of
//     analytic.RampUpWithChurn;
//   - quorum: the first instant that fraction reaches QuorumFrac must
//     match the numerical inverse of the churn-adjusted ramp within
//     the binomial fluctuation divided by the curve's local slope.
//
// Result.Validate applies all three bounds; the fleet sweep in
// cmd/oddci-bench fails its JSON gate on any violation.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
)

// Config parameterizes one fleet run. The zero value of every field
// selects the documented default.
type Config struct {
	// Nodes is the PNA population size.
	Nodes int
	// ImageBytes is the application image size I (default 10 MB, the
	// Figure 6 scenario).
	ImageBytes float64
	// Beta is the broadcast carousel capacity in bits/s (default 1 Mbps),
	// so one carousel cycle is C = ImageBytes·8/Beta seconds.
	Beta float64
	// MeanOn and MeanOff are the exponential power-cycle means
	// (defaults 3 h on, 1 h off: availability 0.75).
	MeanOn, MeanOff time.Duration
	// HeartbeatPeriod is the joined-node heartbeat interval (default 30 s).
	HeartbeatPeriod time.Duration
	// QuorumFrac is the fraction of the wakeup-time population whose
	// join ends the ramp measurement (default 0.8).
	QuorumFrac float64
	// Tick is the wheel resolution (default 10 ms).
	Tick time.Duration
	// Warmup is the virtual time before the wakeup broadcast, used to
	// measure stationary availability (default 10 min).
	Warmup time.Duration
	// Window is the observation window after the wakeup (default 2.5·C).
	Window time.Duration
	// Samples is the number of availability and of ramp-up sample
	// points (default 48 each).
	Samples int
	// Seed selects the deterministic per-node RNG streams.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ImageBytes == 0 {
		c.ImageBytes = 10e6
	}
	if c.Beta == 0 {
		c.Beta = 1e6
	}
	if c.MeanOn == 0 {
		c.MeanOn = 3 * time.Hour
	}
	if c.MeanOff == 0 {
		c.MeanOff = time.Hour
	}
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = 30 * time.Second
	}
	if c.QuorumFrac == 0 {
		c.QuorumFrac = 0.8
	}
	if c.Tick == 0 {
		c.Tick = 10 * time.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.Window == 0 {
		cycle := c.ImageBytes * 8 / c.Beta
		c.Window = time.Duration(2.5 * cycle * float64(time.Second))
	}
	if c.Samples == 0 {
		c.Samples = 48
	}
	return c
}

// Validate reports structural problems with the (defaulted) config.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return errors.New("fleet: Nodes must be positive")
	case c.Nodes > math.MaxInt32:
		return errors.New("fleet: Nodes exceeds int32 ids")
	case c.ImageBytes <= 0 || c.Beta <= 0:
		return errors.New("fleet: ImageBytes and Beta must be positive")
	case c.MeanOn <= 0 || c.MeanOff <= 0:
		return errors.New("fleet: MeanOn and MeanOff must be positive")
	case c.HeartbeatPeriod < c.Tick:
		return errors.New("fleet: HeartbeatPeriod must be at least one tick")
	case c.QuorumFrac <= 0 || c.QuorumFrac > 1:
		return errors.New("fleet: QuorumFrac must be in (0, 1]")
	case c.Tick <= 0:
		return errors.New("fleet: Tick must be positive")
	case c.Samples <= 0:
		return errors.New("fleet: Samples must be positive")
	case int64(c.Warmup/c.Tick) < int64(c.Samples):
		return errors.New("fleet: Warmup too short for Samples distinct ticks")
	case int64(c.Window/c.Tick) < int64(c.Samples):
		return errors.New("fleet: Window too short for Samples distinct ticks")
	}
	return nil
}

// Point is one cross-validation sample: the simulated value, the
// analytic model's value, and the acceptance tolerance at virtual time
// T seconds (availability: since the run start; ramp-up: since the
// wakeup broadcast).
type Point struct {
	T     float64 `json:"t"`
	Sim   float64 `json:"sim"`
	Model float64 `json:"model"`
	Tol   float64 `json:"tol"`
}

// Result reports one fleet run and carries its own acceptance check.
type Result struct {
	Nodes        int     `json:"nodes"`
	Availability float64 `json:"availability"` // model a = on/(on+off)
	AvailAtWake  int     `json:"avail_at_wake"`

	Avail []Point `json:"avail_curve"`
	Ramp  []Point `json:"ramp_curve"`

	QuorumFrac         float64 `json:"quorum_frac"`
	QuorumSimSeconds   float64 `json:"quorum_sim_seconds"` // -1: not reached
	QuorumModelSeconds float64 `json:"quorum_model_seconds"`
	QuorumTolSeconds   float64 `json:"quorum_tol_seconds"`

	DirectJoins int    `json:"direct_joins"` // wakeup-time nodes that completed the load
	FinalJoined int    `json:"final_joined"` // in-instance nodes at window end
	Heartbeats  uint64 `json:"heartbeats"`

	// NodeEvents / WheelBatches is the batching ratio; SimEvents is how
	// few events the simtime heap actually saw.
	NodeEvents   uint64 `json:"node_events"`
	WheelBatches uint64 `json:"wheel_batches"`
	SimEvents    uint64 `json:"sim_events"`
}

// Validate checks every cross-validation bound the run recorded.
func (r *Result) Validate() error {
	for _, p := range r.Avail {
		if math.Abs(p.Sim-p.Model) > p.Tol {
			return fmt.Errorf("fleet: availability at t=%.1fs: sim %.5f vs model %.5f exceeds tol %.5f",
				p.T, p.Sim, p.Model, p.Tol)
		}
	}
	for _, p := range r.Ramp {
		if math.Abs(p.Sim-p.Model) > p.Tol {
			return fmt.Errorf("fleet: ramp-up at t=%.1fs: sim %.5f vs model %.5f exceeds tol %.5f",
				p.T, p.Sim, p.Model, p.Tol)
		}
	}
	if !math.IsInf(r.QuorumModelSeconds, 1) {
		if r.QuorumSimSeconds < 0 {
			return fmt.Errorf("fleet: quorum %.2f never reached (model predicts %.1fs)",
				r.QuorumFrac, r.QuorumModelSeconds)
		}
		if d := math.Abs(r.QuorumSimSeconds - r.QuorumModelSeconds); d > r.QuorumTolSeconds {
			return fmt.Errorf("fleet: quorum time: sim %.2fs vs model %.2fs exceeds tol %.2fs",
				r.QuorumSimSeconds, r.QuorumModelSeconds, r.QuorumTolSeconds)
		}
	}
	return nil
}

// Node lifecycle phases. The high bit marks a "direct" node: one that
// was on at the wakeup instant and has not power-cycled since — the
// population the analytic ramp-up curve describes.
const (
	phaseOff uint8 = iota
	phaseIdle
	phaseLoading
	phaseJoined

	flagDirect uint8 = 0x80
	phaseMask  uint8 = 0x7f
)

// Sentinel wheel ids (negative, so they never collide with node
// indices). Heartbeat cohorts occupy idCohortBase-k for cohort k.
const (
	idWakeup     int32 = -1
	idAvail      int32 = -2
	idRamp       int32 = -3
	idCohortBase int32 = -4
)

const maxCohorts = 256

type engine struct {
	cfg Config
	clk *simtime.Sim
	whl *simtime.Wheel

	// Struct-of-arrays node state, indexed by node id.
	phase    []uint8
	offAt    []int64 // on nodes: power-off tick; off nodes: unused
	deadline []int64 // tick of the node's (single) live wheel entry
	rng      []uint64

	// joinq defers load completions out of the wheel's fire batch; it
	// reuses netsim.Ring, the same structure that fixed the Mailbox
	// dequeue retention.
	joinq netsim.Ring[int32]

	epoch       time.Time
	secPerTick  float64
	wakeTick    int64
	endTick     int64
	meanOnSec   float64
	meanOffSec  float64
	cycleSec    float64
	params      analytic.Params
	avail       float64
	ncoh        int32
	hbTicks     int64
	cohortOn    []int32
	onCount     int
	joined      int
	directOn    int
	directJoins int
	availAtWake int
	quorumTick  int64
	quorumNeed  int

	availTicks, rampTicks []int64
	availIdx, rampIdx     int
	res                   *Result

	// ext, when non-nil, overlays the sharded-coordinator view on the
	// node dynamics (see sharded.go). Node behavior is identical with
	// and without it: the broadcast plane does not depend on which
	// coordinator shard consolidates a node's heartbeats.
	ext *shardExt
}

// Run executes one fleet simulation and returns its (self-validating)
// result. It does not call Result.Validate; callers decide whether a
// bound violation is fatal.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	e.init()
	e.armNext()
	e.clk.RunUntil(e.timeOf(e.endTick))
	return e.finish(), nil
}

func newEngine(cfg Config) *engine {
	n := cfg.Nodes
	e := &engine{
		cfg:        cfg,
		epoch:      time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC),
		clk:        nil,
		whl:        simtime.NewWheel(0),
		phase:      make([]uint8, n),
		offAt:      make([]int64, n),
		deadline:   make([]int64, n),
		rng:        make([]uint64, n),
		secPerTick: cfg.Tick.Seconds(),
		meanOnSec:  cfg.MeanOn.Seconds(),
		meanOffSec: cfg.MeanOff.Seconds(),
		cycleSec:   cfg.ImageBytes * 8 / cfg.Beta,
		quorumTick: -1,
	}
	e.clk = simtime.NewSim(e.epoch)
	e.params = analytic.Params{ImageBits: cfg.ImageBytes * 8, Beta: cfg.Beta}
	e.avail = analytic.Availability(e.meanOnSec, e.meanOffSec)
	e.wakeTick = int64(cfg.Warmup / cfg.Tick)
	e.endTick = e.wakeTick + int64(cfg.Window/cfg.Tick)
	e.ncoh = int32(min(n, maxCohorts))
	e.hbTicks = max(int64(cfg.HeartbeatPeriod/cfg.Tick), 1)
	e.cohortOn = make([]int32, e.ncoh)
	e.res = &Result{
		Nodes:        n,
		Availability: e.avail,
		QuorumFrac:   cfg.QuorumFrac,
	}
	return e
}

func (e *engine) timeOf(tick int64) time.Time { return e.epoch.Add(time.Duration(tick) * e.cfg.Tick) }
func (e *engine) tickOf(t time.Time) int64    { return int64(t.Sub(e.epoch) / e.cfg.Tick) }

// clampTick bounds a tick to just past the simulation end: the wheel
// horizon (2³² ticks) would otherwise reject the far tail of the
// exponential draws, and nothing after endTick is ever fired anyway.
func (e *engine) clampTick(t int64) int64 { return min(t, e.endTick+1) }

// setDeadline books id's single live deadline. Every set schedules a
// wheel entry; superseded entries are cancelled lazily — nodeEvent
// skips a fired (tick, id) whose deadline has moved on.
func (e *engine) setDeadline(id int32, tick int64) {
	tick = e.clampTick(tick)
	e.deadline[id] = tick
	e.whl.Schedule(tick, id)
}

// SplitMix64: one 8-byte state word per node gives each node an
// independent, deterministic stream regardless of event interleaving.
func nextU64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unitOpen returns a uniform draw in (0, 1], safe for log.
func unitOpen(s *uint64) float64 { return (float64(nextU64(s)>>11) + 1) / (1 << 53) }

// unitHalf returns a uniform draw in [0, 1).
func unitHalf(s *uint64) float64 { return float64(nextU64(s)>>11) / (1 << 53) }

// expTicks draws Exp(mean seconds) rounded to ticks, at least 1.
func (e *engine) expTicks(s *uint64, mean float64) int64 {
	return max(int64(math.Round(-mean*math.Log(unitOpen(s))/e.secPerTick)), 1)
}

// loadTicks draws the carousel load time W ~ U(C, 2C) in ticks: the
// node joins the cyclic carousel at a uniformly random phase and needs
// the remainder of the current cycle plus one full cycle.
func (e *engine) loadTicks(s *uint64) int64 {
	w := e.cycleSec * (1 + unitHalf(s))
	return max(int64(math.Round(w/e.secPerTick)), 1)
}

// init draws the stationary initial state and books the fixed events:
// the wakeup broadcast, the first availability and ramp samplers, and
// one staggered heartbeat generator per cohort.
//
// Stationary initialization is what makes the availability samples
// exactly Binomial(Nodes, a): each node is on with probability a, and
// its residual period is a fresh exponential draw (legitimate by
// memorylessness), so the alternating process starts in equilibrium
// instead of converging toward it during warm-up.
func (e *engine) init() {
	for i := range e.phase {
		id := int32(i)
		s := &e.rng[i]
		*s = uint64(e.cfg.Seed)*0xD1342543DE82EF95 + (uint64(i)+1)*0x9E3779B97F4A7C15
		if unitHalf(s) < e.avail {
			e.phase[i] = phaseIdle
			e.onCount++
			e.cohortOn[id%e.ncoh]++
			e.offAt[i] = e.clampTick(e.expTicks(s, e.meanOnSec))
			e.setDeadline(id, e.offAt[i])
		} else {
			e.phase[i] = phaseOff
			e.setDeadline(id, e.expTicks(s, e.meanOffSec))
		}
	}

	e.whl.Schedule(e.wakeTick, idWakeup)

	e.availTicks = sampleGrid(0, e.wakeTick, e.cfg.Samples)
	e.rampTicks = sampleGrid(e.wakeTick, e.endTick, e.cfg.Samples)
	e.whl.Schedule(e.availTicks[0], idAvail)
	e.whl.Schedule(e.rampTicks[0], idRamp)

	for k := int32(0); k < e.ncoh; k++ {
		first := (int64(k)*e.hbTicks)/int64(e.ncoh) + 1
		e.whl.Schedule(first, idCohortBase-k)
	}
}

// sampleGrid returns n strictly increasing ticks in (from, to].
func sampleGrid(from, to int64, n int) []int64 {
	ticks := make([]int64, n)
	for i := range ticks {
		ticks[i] = from + (to-from)*int64(i+1)/int64(n)
	}
	return ticks
}

// armNext books one Sim timer for the wheel's next pending tick — the
// only place the event heap is involved. Each firing advances the wheel
// through the current tick, delivering every node deadline due there as
// one batch.
func (e *engine) armNext() {
	next, ok := e.whl.Next()
	if !ok {
		return
	}
	e.clk.AfterFunc(e.timeOf(next).Sub(e.clk.Now()), e.step)
}

func (e *engine) step() {
	e.whl.AdvanceTo(e.tickOf(e.clk.Now()), e.fire)
	e.armNext()
}

func (e *engine) fire(tick int64, ids []int32) {
	e.res.WheelBatches++
	for _, id := range ids {
		if id >= 0 {
			e.nodeEvent(tick, id)
		} else {
			e.sentinel(tick, id)
		}
	}
	e.drainJoins(tick)
}

// nodeEvent applies one node's due transition. The staleness check is
// the wheel's lazy cancellation: a deadline that moved after this entry
// was scheduled leaves the stale (tick, id) behind, and it is dropped
// here.
func (e *engine) nodeEvent(tick int64, id int32) {
	if e.deadline[id] != tick {
		return
	}
	e.res.NodeEvents++
	switch e.phase[id] & phaseMask {
	case phaseOff:
		e.powerOn(tick, id)
	case phaseIdle, phaseJoined:
		e.powerOff(tick, id)
	case phaseLoading:
		if tick >= e.offAt[id] {
			e.powerOff(tick, id) // powered off mid-load
		} else {
			e.joinq.PushBack(id) // load complete; join after the batch
		}
	}
}

func (e *engine) powerOn(tick int64, id int32) {
	e.onCount++
	e.cohortOn[id%e.ncoh]++
	s := &e.rng[id]
	e.offAt[id] = e.clampTick(tick + e.expTicks(s, e.meanOnSec))
	if tick >= e.wakeTick {
		// The wakeup message and image are still on the carousel:
		// late arrivals load and join too (they are counted in the
		// instance, but not in the direct ramp statistic).
		e.phase[id] = phaseLoading
		e.setDeadline(id, min(tick+e.loadTicks(s), e.offAt[id]))
	} else {
		e.phase[id] = phaseIdle
		e.setDeadline(id, e.offAt[id])
	}
}

func (e *engine) powerOff(tick int64, id int32) {
	e.onCount--
	e.cohortOn[id%e.ncoh]--
	if e.phase[id]&phaseMask == phaseJoined {
		e.joined--
		if e.phase[id]&flagDirect != 0 {
			e.directOn--
		}
		if e.ext != nil {
			e.ext.onLeave(id)
		}
	}
	e.phase[id] = phaseOff
	e.setDeadline(id, e.clampTick(tick+e.expTicks(&e.rng[id], e.meanOffSec)))
}

// drainJoins completes the load→join transitions deferred by the fire
// batch and checks the quorum crossing.
func (e *engine) drainJoins(tick int64) {
	for {
		id, ok := e.joinq.PopFront()
		if !ok {
			return
		}
		e.phase[id] = phaseJoined | e.phase[id]&flagDirect
		e.setDeadline(id, e.offAt[id])
		e.joined++
		if e.ext != nil {
			e.ext.onJoin(id)
		}
		if e.phase[id]&flagDirect != 0 {
			e.directOn++
			e.directJoins++
			if e.quorumTick < 0 && e.directOn >= e.quorumNeed {
				e.quorumTick = tick
			}
		}
	}
}

func (e *engine) sentinel(tick int64, id int32) {
	switch id {
	case idWakeup:
		e.wakeup(tick)
	case idAvail:
		e.sampleAvail(tick)
	case idRamp:
		e.sampleRamp(tick)
	default:
		// Sharded-overlay sentinels sit far below the cohort range;
		// give the extension first refusal before the cohort decode.
		if e.ext != nil && e.ext.sentinel(tick, id) {
			return
		}
		e.heartbeat(tick, idCohortBase-id)
	}
}

// wakeup broadcasts the instance creation: every on node joins the
// carousel at a random phase. This is the one O(Nodes) event; all
// other work is proportional to transitions, not population.
func (e *engine) wakeup(tick int64) {
	e.availAtWake = e.onCount
	e.quorumNeed = int(math.Ceil(e.cfg.QuorumFrac * float64(e.availAtWake)))
	for i := range e.phase {
		if e.phase[i]&phaseMask != phaseIdle {
			continue
		}
		id := int32(i)
		e.phase[i] = phaseLoading | flagDirect
		e.setDeadline(id, min(tick+e.loadTicks(&e.rng[i]), e.offAt[i]))
	}
	if e.ext != nil {
		e.ext.onWakeup()
	}
}

func (e *engine) sampleAvail(tick int64) {
	t := float64(tick) * e.secPerTick
	e.res.Avail = append(e.res.Avail, Point{
		T:     t,
		Sim:   float64(e.onCount) / float64(e.cfg.Nodes),
		Model: e.avail,
		Tol:   e.tolFor(e.avail, e.cfg.Nodes),
	})
	e.availIdx++
	if e.availIdx < len(e.availTicks) {
		e.whl.Schedule(e.availTicks[e.availIdx], idAvail)
	}
}

func (e *engine) sampleRamp(tick int64) {
	t := float64(tick-e.wakeTick) * e.secPerTick
	model := e.params.RampUpWithChurn(t, e.meanOnSec)
	sim := 0.0
	if e.availAtWake > 0 {
		sim = float64(e.directOn) / float64(e.availAtWake)
	}
	e.res.Ramp = append(e.res.Ramp, Point{
		T:     t,
		Sim:   sim,
		Model: model,
		Tol:   e.tolFor(model, e.availAtWake),
	})
	e.rampIdx++
	if e.rampIdx < len(e.rampTicks) {
		e.whl.Schedule(e.rampTicks[e.rampIdx], idRamp)
	}
}

// heartbeat generates one cohort's heartbeats as a single counted
// batch: cohortOn[k] nodes each owe one heartbeat this period. Nothing
// per-node is materialized — this is the batched generation that keeps
// 10⁶ nodes from costing 10⁶ events every period.
func (e *engine) heartbeat(tick int64, k int32) {
	e.res.Heartbeats += uint64(e.cohortOn[k])
	if next := tick + e.hbTicks; next <= e.endTick {
		e.whl.Schedule(next, idCohortBase-k)
	}
}

// tolFor is the acceptance tolerance for a Binomial(n, p) fraction:
// five standard deviations plus one tick's worth of curve motion (load
// completions and power flips are quantized to ticks). p is clamped
// away from {0, 1} by the discretization floor so the bound never
// collapses to zero at the curve's flats.
func (e *engine) tolFor(p float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	floor := e.secPerTick / e.cycleSec
	p = min(max(p, floor), 1-floor)
	return 5*math.Sqrt(p*(1-p)/float64(n)) + floor
}

// finish assembles the result, computing the model quorum time by
// bisecting the churn-adjusted ramp and converting the binomial count
// fluctuation into seconds through the curve's local slope.
func (e *engine) finish() *Result {
	r := e.res
	r.AvailAtWake = e.availAtWake
	r.DirectJoins = e.directJoins
	r.FinalJoined = e.joined
	r.SimEvents = e.clk.Fired()
	r.QuorumSimSeconds = -1
	if e.quorumTick >= 0 {
		r.QuorumSimSeconds = float64(e.quorumTick-e.wakeTick) * e.secPerTick
	}

	q := e.cfg.QuorumFrac
	curve := func(t float64) float64 { return e.params.RampUpWithChurn(t, e.meanOnSec) }
	r.QuorumModelSeconds = math.Inf(1)
	if hi := 2 * e.cycleSec; curve(hi) >= q {
		lo := e.cycleSec
		for i := 0; i < 64; i++ {
			mid := (lo + hi) / 2
			if curve(mid) < q {
				lo = mid
			} else {
				hi = mid
			}
		}
		t := (lo + hi) / 2
		r.QuorumModelSeconds = t
		// Local slope of the churn-adjusted ramp, for the count→time
		// tolerance conversion. Six standard deviations rather than
		// five: the first-crossing time of a fluctuating count is
		// biased slightly early relative to the mean crossing.
		h := e.secPerTick
		slope := (curve(t+h) - curve(t-h)) / (2 * h)
		if slope <= 0 {
			slope = 1 / e.cycleSec
		}
		sigma := math.Sqrt(q * (1 - q) / float64(max(e.availAtWake, 1)))
		r.QuorumTolSeconds = (6*sigma+e.secPerTick/e.cycleSec)/slope + 2*e.secPerTick
	}
	return r
}
