package fleet

import (
	"testing"
	"time"
)

func TestShardedMatchesAnalyticAndReconciles(t *testing.T) {
	res, err := RunSharded(ShardedConfig{
		Config: Config{Nodes: 50000, Seed: 11},
		Shards: 8, KillShard: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.WakeupBroadcasts != 8 {
		t.Fatalf("wakeup broadcasts %d, want 8", res.WakeupBroadcasts)
	}
	if res.MaxOwnershipSkew < 1 || res.MaxOwnershipSkew > 1.6 {
		t.Fatalf("ownership skew %.2f out of sane range", res.MaxOwnershipSkew)
	}
	// With every shard up, views track truth exactly.
	for _, s := range res.ViewSamples {
		if s.DownLag != 0 {
			t.Fatalf("down-lag %d with no kill", s.DownLag)
		}
	}
}

func TestShardedKillRecover(t *testing.T) {
	res, err := RunSharded(ShardedConfig{
		Config: Config{Nodes: 50000, Seed: 12},
		Shards: 8,
		// C = 80 s with the 10 MB / 1 Mbps defaults: kill mid-ramp,
		// recover well inside the 200 s window.
		KillShard: 3, KillAfter: 90 * time.Second, RecoverAfter: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.KilledShard != 3 || res.RecoverAtSeconds <= res.KillAtSeconds {
		t.Fatalf("kill/recover schedule: %+v", res)
	}
	// The outage spans the steep part of the ramp: the frozen view must
	// actually have diverged before recovery snapped it back.
	if res.PeakDownLag == 0 {
		t.Fatal("coordinator view never diverged during the outage")
	}
	if res.Readopted == 0 {
		t.Fatal("no members re-adopted at recovery")
	}
	// Zero duplicate wakeups: recovery did not re-broadcast.
	if res.WakeupBroadcasts != 8 {
		t.Fatalf("wakeup broadcasts %d after failover, want 8", res.WakeupBroadcasts)
	}
	if res.LostNodes != 0 {
		t.Fatalf("%d lost nodes after reconciliation", res.LostNodes)
	}
}

func TestShardedRejectsBadConfig(t *testing.T) {
	if _, err := RunSharded(ShardedConfig{Config: Config{Nodes: 100}, Shards: 0}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := RunSharded(ShardedConfig{Config: Config{Nodes: 100}, Shards: 2, KillShard: 5}); err == nil {
		t.Fatal("out-of-range kill shard accepted")
	}
	if _, err := RunSharded(ShardedConfig{
		Config: Config{Nodes: 100}, Shards: 2,
		KillShard: 1, KillAfter: time.Hour, RecoverAfter: time.Hour,
	}); err == nil {
		t.Fatal("kill schedule beyond the window accepted")
	}
}
