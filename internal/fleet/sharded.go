package fleet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"oddci/internal/federation"
)

// ShardedConfig runs a fleet simulation with the PNA population split
// over federated coordinator shards by consistent hashing, optionally
// killing one shard's coordinator mid-ramp and recovering it later via
// journal failover.
//
// The node dynamics are exactly those of the plain engine: a dead
// coordinator does not touch the broadcast plane, so nodes keep
// loading, joining and churning regardless. What the overlay adds is
// each coordinator's *view* of its slice — updated by heartbeat
// consolidation while the shard is up, frozen during its outage, and
// snapped back to the truth at recovery when the rebuilt controller
// re-adopts members inside the heartbeat grace window. The gates encode
// the federation's correctness claims at population scale: one wakeup
// broadcast per shard and none at recovery (zero duplicate wakeups),
// and zero lost nodes once every shard's view is reconciled.
type ShardedConfig struct {
	Config
	// Shards is the coordinator shard count (required, <= 64).
	Shards int
	// VNodes is the consistent-hash virtual node count per shard
	// (federation.DefaultVNodes if 0).
	VNodes int
	// KillShard, when >= 0, crashes that shard's coordinator KillAfter
	// after the wakeup and rebuilds it RecoverAfter later.
	KillShard    int
	KillAfter    time.Duration
	RecoverAfter time.Duration
}

// ShardSample is one per-shard reconciliation sample: the coordinator
// views vs the ground truth, summed over all live shards, plus the
// frozen divergence on the killed shard.
type ShardSample struct {
	T            float64 `json:"t"`
	LiveMismatch int     `json:"live_mismatch"` // sum |view-truth| over up shards
	DownLag      int     `json:"down_lag"`      // |view-truth| on the down shard
}

// ShardedResult extends Result with the federation overlay's outcome.
type ShardedResult struct {
	*Result
	Shards           int           `json:"shards"`
	MaxOwnershipSkew float64       `json:"max_ownership_skew"` // max shard pop / uniform
	WakeupBroadcasts int           `json:"wakeup_broadcasts"`
	KilledShard      int           `json:"killed_shard"` // -1: no kill
	KillAtSeconds    float64       `json:"kill_at_seconds"`
	RecoverAtSeconds float64       `json:"recover_at_seconds"`
	Readopted        int           `json:"readopted"`  // members re-adopted at recovery
	LostNodes        int           `json:"lost_nodes"` // sum |view-truth| at window end
	PeakDownLag      int           `json:"peak_down_lag"`
	ViewSamples      []ShardSample `json:"view_samples"`
}

// Validate layers the federation gates on the plain fleet bounds.
func (r *ShardedResult) Validate() error {
	if err := r.Result.Validate(); err != nil {
		return err
	}
	if r.WakeupBroadcasts != r.Shards {
		return fmt.Errorf("fleet: %d wakeup broadcasts for %d shards (recovery re-aired?)",
			r.WakeupBroadcasts, r.Shards)
	}
	if r.LostNodes != 0 {
		return fmt.Errorf("fleet: %d nodes lost between coordinator views and truth", r.LostNodes)
	}
	for _, s := range r.ViewSamples {
		if s.LiveMismatch != 0 {
			return fmt.Errorf("fleet: live shard view diverged from truth at t=%.1fs (%d nodes)",
				s.T, s.LiveMismatch)
		}
	}
	if r.KilledShard >= 0 && r.Readopted == 0 {
		return errors.New("fleet: failover re-adopted no members")
	}
	return nil
}

// Sharded-overlay sentinel ids. Heartbeat cohorts occupy
// [idCohortBase-maxCohorts+1, idCohortBase] = [-259, -4]; the overlay
// sits safely below that range.
const (
	idShardKill    int32 = -300
	idShardRecover int32 = -301
	idShardSample  int32 = -302
)

const shardSamples = 32

type shardExt struct {
	e    *engine
	res  *ShardedResult
	ring *federation.Ring

	shardOf []uint8
	truth   []int // joined nodes per shard (ground truth)
	view    []int // coordinator-consolidated count per shard
	down    []bool

	killShard   int
	sampleTicks []int64
	sampleIdx   int
}

// RunSharded executes one sharded fleet simulation.
func RunSharded(cfg ShardedConfig) (*ShardedResult, error) {
	cfg.Config = cfg.Config.withDefaults()
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 || cfg.Shards > 64 {
		return nil, errors.New("fleet: Shards must be in [1, 64]")
	}
	if cfg.KillShard >= cfg.Shards {
		return nil, errors.New("fleet: KillShard out of range")
	}
	ring, err := federation.NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}

	e := newEngine(cfg.Config)
	x := &shardExt{
		e: e, ring: ring,
		shardOf:   make([]uint8, cfg.Nodes),
		truth:     make([]int, cfg.Shards),
		view:      make([]int, cfg.Shards),
		down:      make([]bool, cfg.Shards),
		killShard: -1,
	}
	counts := make([]int, cfg.Shards)
	for i := range x.shardOf {
		s := ring.Owner(uint64(i) + 1)
		x.shardOf[i] = uint8(s)
		counts[int(s)]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	x.res = &ShardedResult{
		Result:           e.res,
		Shards:           cfg.Shards,
		MaxOwnershipSkew: float64(maxCount) * float64(cfg.Shards) / float64(cfg.Nodes),
		KilledShard:      -1,
		KillAtSeconds:    -1,
		RecoverAtSeconds: -1,
	}
	e.ext = x

	e.init()

	// Reconciliation samples across the post-wakeup window.
	x.sampleTicks = sampleGrid(e.wakeTick, e.endTick, shardSamples)
	e.whl.Schedule(x.sampleTicks[0], idShardSample)

	if cfg.KillShard >= 0 {
		x.killShard = cfg.KillShard
		killTick := e.clampTick(e.wakeTick + int64(cfg.KillAfter/cfg.Tick))
		recoverTick := e.clampTick(killTick + int64(cfg.RecoverAfter/cfg.Tick))
		if recoverTick > e.endTick {
			return nil, errors.New("fleet: kill/recover schedule exceeds the observation window")
		}
		e.whl.Schedule(killTick, idShardKill)
		e.whl.Schedule(recoverTick, idShardRecover)
	}

	e.armNext()
	e.clk.RunUntil(e.timeOf(e.endTick))
	e.finish()
	return x.finish(), nil
}

// onWakeup: every shard's carousel airs its own copy of the signed
// wakeup — k broadcasts for k shards, and none ever again.
func (x *shardExt) onWakeup() { x.res.WakeupBroadcasts += x.res.Shards }

// onJoin consolidates a node's join into its home coordinator's view —
// unless that coordinator is down, in which case the heartbeat is
// dropped and the view freezes (the node itself joined regardless).
func (x *shardExt) onJoin(id int32) {
	s := int(x.shardOf[id])
	x.truth[s]++
	if !x.down[s] {
		x.view[s]++
	}
}

// onLeave mirrors onJoin for power-off departures: a down coordinator
// does not observe the leave either.
func (x *shardExt) onLeave(id int32) {
	s := int(x.shardOf[id])
	x.truth[s]--
	if !x.down[s] {
		x.view[s]--
	}
}

// sentinel dispatches the overlay's wheel events; false hands the id
// back to the engine's cohort decode.
func (x *shardExt) sentinel(tick int64, id int32) bool {
	switch id {
	case idShardKill:
		x.kill(tick)
	case idShardRecover:
		x.recover(tick)
	case idShardSample:
		x.sample(tick)
	default:
		return false
	}
	return true
}

func (x *shardExt) kill(tick int64) {
	s := x.killShard
	x.down[s] = true
	x.res.KilledShard = s
	x.res.KillAtSeconds = float64(tick-x.e.wakeTick) * x.e.secPerTick
}

// recover models the journal failover: the ring successor replays the
// dead shard's journal, restarts the controller, and the heartbeat
// grace window re-adopts every member still alive — the view snaps to
// the truth with no wakeup broadcast.
func (x *shardExt) recover(tick int64) {
	s := x.killShard
	x.down[s] = false
	x.res.RecoverAtSeconds = float64(tick-x.e.wakeTick) * x.e.secPerTick
	x.res.Readopted = x.truth[s]
	x.view[s] = x.truth[s]
}

func (x *shardExt) sample(tick int64) {
	smp := ShardSample{T: float64(tick-x.e.wakeTick) * x.e.secPerTick}
	for s := range x.truth {
		d := x.view[s] - x.truth[s]
		if d < 0 {
			d = -d
		}
		if x.down[s] {
			smp.DownLag += d
		} else {
			smp.LiveMismatch += d
		}
	}
	if smp.DownLag > x.res.PeakDownLag {
		x.res.PeakDownLag = smp.DownLag
	}
	x.res.ViewSamples = append(x.res.ViewSamples, smp)
	x.sampleIdx++
	if x.sampleIdx < len(x.sampleTicks) {
		x.e.whl.Schedule(x.sampleTicks[x.sampleIdx], idShardSample)
	}
}

func (x *shardExt) finish() *ShardedResult {
	lost := 0
	for s := range x.truth {
		lost += int(math.Abs(float64(x.view[s] - x.truth[s])))
	}
	x.res.LostNodes = lost
	return x.res
}
