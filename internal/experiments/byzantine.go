package experiments

import (
	"fmt"
	"time"

	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/metrics"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/system"
	"oddci/internal/workload"
)

func init() {
	register("byzantine", "Extension: byzantine nodes vs credibility-weighted quorum (§3.1 replication under adversaries)", runByzantine)
}

// ByzantineScenario sizes one adversarial deployment run.
type ByzantineScenario struct {
	// Nodes and Tasks size the deployment (defaults 40 / 200).
	Nodes int
	Tasks int
	// Replication is the per-task vote count (default 5).
	Replication int
	// Fraction of nodes assigned a byzantine behavior.
	Fraction float64
	// Behaviors restricts the misbehavior pool (empty = all).
	Behaviors []netsim.Behavior
	// Mode is the backend credential policy (default CredEnforce — the
	// full defence; credential-only attackers are invisible below it).
	Mode backend.CredentialMode
	// Seed drives every stream.
	Seed int64
}

// ByzantineOutcome is what one scenario run measured.
type ByzantineOutcome struct {
	Makespan time.Duration
	// Committed counts tasks with a committed result; WrongCommits are
	// the committed results that differ from the honest computation
	// (tasks here carry no concrete payload, so the honest result is
	// empty and any non-empty commit is wrong).
	Committed    int
	WrongCommits int
	// Byzantine counts nodes assigned a misbehavior; ByzQuarantined of
	// those ended quarantined, HonestQuarantined counts collateral.
	Byzantine         int
	ByzQuarantined    int
	HonestQuarantined int
	// Conflicts and Unresolved mirror the backend counters; Lies counts
	// submissions the adversary actually mutated on the wire.
	Conflicts  int64
	Unresolved int64
	Lies       int64
}

// RunByzantineScenario assembles a full deployment with the scenario's
// adversary plan, runs one job to completion, and audits the committed
// results against ground truth. Shared by the byzantine experiment and
// the oddci-bench adversary sweep, so the gates and the tables measure
// the same code path.
func RunByzantineScenario(sc ByzantineScenario) (*ByzantineOutcome, error) {
	if sc.Nodes <= 0 {
		sc.Nodes = 40
	}
	if sc.Tasks <= 0 {
		sc.Tasks = 200
	}
	if sc.Replication <= 0 {
		sc.Replication = 5
	}
	if sc.Mode == backend.CredOff {
		sc.Mode = backend.CredEnforce
	}
	clk := simtime.NewSim(simEpoch)
	var plan *netsim.AdversaryPlan
	if sc.Fraction > 0 {
		plan = netsim.NewAdversaryPlan(netsim.AdversaryConfig{
			Seed:      uint64(sc.Seed)*0x9E3779B97F4A7C15 + 1,
			Fraction:  sc.Fraction,
			Behaviors: sc.Behaviors,
		})
	}
	sys, err := system.New(system.Config{
		Clock:             clk,
		Nodes:             sc.Nodes,
		Seed:              sc.Seed,
		HeartbeatPeriod:   30 * time.Second,
		MaintenancePeriod: 30 * time.Second,
		Replication:       sc.Replication,
		Adversary:         plan,
		CredentialMode:    sc.Mode,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	gen := workload.Generator{
		Name: "byzantine", ImageBytes: 1 << 20, Tasks: sc.Tasks,
		InputBytes: 512, OutputBytes: 256, MeanSeconds: 5,
	}
	job, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	h, err := sys.Backend.Submit(job)
	if err != nil {
		return nil, err
	}
	if _, err := sys.Provider.Create(controller.InstanceSpec{
		Image:              workerImage(1 << 20),
		Target:             sc.Nodes,
		InitialProbability: 1,
		HeartbeatPeriod:    30 * time.Second,
	}); err != nil {
		return nil, err
	}
	h.OnComplete(func(time.Time) { sys.Shutdown() })
	clk.Wait()

	ms, done := h.Makespan()
	if !done {
		return nil, fmt.Errorf("byzantine: job wedged (f=%.2f R=%d seed=%d)", sc.Fraction, sc.Replication, sc.Seed)
	}
	out := &ByzantineOutcome{
		Makespan:   ms,
		Conflicts:  sys.Backend.Conflicts,
		Unresolved: sys.Backend.Unresolved,
	}
	for _, payload := range h.Results() {
		out.Committed++
		if len(payload) != 0 {
			// Tasks carry no concrete work, so the honest result is
			// empty; only an adversary-substituted payload can commit
			// non-empty bytes.
			out.WrongCommits++
		}
	}
	for i := 0; i < sc.Nodes; i++ {
		node := uint64(i + 1)
		byz := plan != nil && plan.IsByzantine(node)
		if byz {
			out.Byzantine++
		}
		if sys.Backend.Quarantined(node) {
			if byz {
				out.ByzQuarantined++
			} else {
				out.HonestQuarantined++
			}
		}
	}
	if plan != nil {
		_, out.Lies = plan.Stats()
	}
	return out, nil
}

// runByzantine sweeps byzantine fraction × replication and tabulates
// wrong commits, quarantine coverage, and collateral damage.
func runByzantine(cfg Config) (*Result, error) {
	fractions := []float64{0, 0.1, 0.2, 0.3}
	replications := []int{3, 5}
	if cfg.Quick {
		fractions = []float64{0, 0.2}
		replications = []int{5}
	}
	tbl := metrics.NewTable(
		"Byzantine fraction × replication (40 nodes, 200 tasks, enforce mode)",
		"f", "R", "byz nodes", "byz quarantined", "honest quarantined",
		"wrong commits", "unresolved", "conflicts", "lies", "makespan")
	for _, r := range replications {
		for _, f := range fractions {
			out, err := RunByzantineScenario(ByzantineScenario{
				Fraction: f, Replication: r, Seed: cfg.Seed + int64(r)*1000 + int64(f*100),
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(f, r, out.Byzantine, out.ByzQuarantined, out.HonestQuarantined,
				out.WrongCommits, out.Unresolved, out.Conflicts, out.Lies,
				out.Makespan.Round(time.Second))
		}
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"weighted quorum at R=5 needs 3000 milli-credits of agreeing weight; colluding groups are capped at 2 members (2000), so agreeing liars cannot commit a wrong result — the R=3 rows show the margin boundary where a full-trust colluding pair reaches quorum",
			"credential-only attackers (replay/forge) submit honest payloads and are caught purely by MAC verification in enforce mode; two rejections halve full trust below the 300 quarantine floor",
		},
	}, nil
}
