package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"oddci/blast"
	"oddci/internal/metrics"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/stb"
)

func init() {
	register("table2", "Table II: BLAST runtimes on STB (in use / standby) vs reference PC", runTable2)
	register("table3", "Table III: remote BLAST (BLASTCL3-style) over the direct channel", runTable3)
}

// blastTest defines one workload of the paper's benchmark suite.
type blastTest struct {
	id       int
	queryLen int
	numSeqs  int
	seqLen   int
	execute  bool // run the kernel for real (small DBs) vs cost model
}

// table2Tests spans the paper's three categories: local processing with
// small databases (#1–9) and with large databases (#10–12).
func table2Tests(quick bool) []blastTest {
	tests := []blastTest{
		{1, 64, 20, 2000, true},
		{2, 64, 40, 2000, true},
		{3, 128, 40, 2000, true},
		{4, 64, 10, 1000, true},
		{5, 32, 10, 1000, true},
		{6, 48, 10, 1000, true},
		{7, 96, 30, 1500, true},
		{8, 80, 30, 1500, true},
		{9, 128, 20, 1500, true},
		// Large databases: minutes-to-hours of STB time; derived from
		// the calibrated cell rate instead of executed.
		{10, 256, 2000, 10000, false},
		{11, 512, 10000, 10000, false},
		{12, 1024, 20000, 10000, false},
	}
	if quick {
		return tests[:6]
	}
	return tests
}

// calibrateCellRate measures the host kernel's throughput in
// query×subject cells per wall second.
func calibrateCellRate(seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	query := blast.RandomSeq(rng, 128)
	db := blast.RandomDB(rng, 200, 5000, 5000) // 1 Mbase
	p := blast.DefaultParams()
	// Warm up once, then time.
	if _, err := blast.Search(query, db, p); err != nil {
		return 0, err
	}
	const reps = 3
	var serr error
	elapsed := hostSeconds(func() {
		for i := 0; i < reps; i++ {
			if _, err := blast.Search(query, db, p); err != nil {
				serr = err
				return
			}
		}
	}) / reps
	if serr != nil {
		return 0, serr
	}
	cells := float64(len(query)) * float64(blast.DBBytes(db))
	return cells / elapsed, nil
}

// runBlastTest returns the PC-equivalent seconds for one test: measured
// for small DBs, cost-modelled for large ones.
func runBlastTest(t blastTest, rng *rand.Rand, cellRate float64) (pcSeconds float64, hits int, err error) {
	if !t.execute {
		cells := float64(t.queryLen) * float64(t.numSeqs) * float64(t.seqLen)
		return cells / cellRate, -1, nil
	}
	query := blast.RandomSeq(rng, t.queryLen)
	db := blast.RandomDB(rng, t.numSeqs, t.seqLen, t.seqLen)
	blast.PlantHit(rng, db, query, rng.Intn(t.numSeqs), 0, 10, t.queryLen/2, 1)
	p := blast.DefaultParams()
	pcSeconds = hostSeconds(func() {
		var hs []blast.Hit
		hs, err = blast.Search(query, db, p)
		hits = len(hs)
	})
	if err != nil {
		return 0, 0, err
	}
	return pcSeconds, hits, nil
}

func runTable2(cfg Config) (*Result, error) {
	cellRate, err := calibrateCellRate(cfg.Seed + 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	perf := stb.DefaultPerf()

	tbl := metrics.NewTable(
		"BLAST processing time (seconds)",
		"#Test", "Query (nt)", "DB (kbases)", "PC", "STB in use", "STB standby", "Source")
	var inUseOverPC, inUseOverStandby metrics.Sample
	for _, t := range table2Tests(cfg.Quick) {
		pc, hits, err := runBlastTest(t, rng, cellRate)
		if err != nil {
			return nil, err
		}
		inUse := perf.FromPCSeconds(pc, stb.InUse)
		standby := perf.FromPCSeconds(pc, stb.Standby)
		src := "measured"
		if !t.execute {
			src = "cost model"
		}
		_ = hits
		tbl.AddRow(t.id, t.queryLen, t.numSeqs*t.seqLen/1000, pc, inUse, standby, src)
		inUseOverPC.Add(inUse / pc)
		inUseOverStandby.Add(inUse / standby)
	}

	// Pipeline check: the same conversion must come out of the full
	// device model (STB → DVE task execution) in virtual time.
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	probe := perf.TaskDuration(10, stb.InUse) // 10 reference seconds
	var elapsed time.Duration
	clk.Go(func() {
		start := clk.Now()
		clk.Sleep(probe)
		elapsed = clk.Now().Sub(start)
	})
	clk.Wait()

	notes := []string{
		fmt.Sprintf("host kernel calibration: %.2e cells/s; the PC column is real kernel wall time (or the calibrated cost model for #10–12)", cellRate),
		fmt.Sprintf("STB columns derive from the paper-calibrated device model: in-use = %.1f × PC, in-use = %.2f × standby (Table II reported 20.6× ±10%% and 1.65× ±17%%)",
			inUseOverPC.Mean(), inUseOverStandby.Mean()),
		fmt.Sprintf("device-model pipeline check: a 10 reference-second task occupies the virtual clock for %.1fs in use", elapsed.Seconds()),
	}
	return &Result{Tables: []*metrics.Table{tbl}, Notes: notes}, nil
}

// runTable3 reproduces the remote-processing category (#13–15): the STB
// acts as a thin client, shipping the query over its 150 kbps direct
// channel to a PC-class service that scans a large database, then
// receiving the hits. Compared against running the same search locally
// on the STB.
func runTable3(cfg Config) (*Result, error) {
	cellRate, err := calibrateCellRate(cfg.Seed + 1)
	if err != nil {
		return nil, err
	}
	perf := stb.DefaultPerf()
	type remoteTest struct {
		id         int
		queryLen   int
		dbBases    int64
		resultHits int
	}
	tests := []remoteTest{
		{13, 512, 20e6, 40},
		{14, 1024, 50e6, 120},
		{15, 2048, 100e6, 300},
	}
	if cfg.Quick {
		tests = tests[:2]
	}

	tbl := metrics.NewTable(
		"Remote BLAST round trip (seconds, δ=150 kbps)",
		"#Test", "Query (nt)", "DB (Mbases)", "Upload", "Server", "Download", "Total", "Local on STB")
	notes := []string{}
	for _, t := range tests {
		clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
		link := netsim.LinkConfig{RateBps: 150e3, Latency: 50 * time.Millisecond}
		client, server := netsim.NewDuplex(clk, "stb", "blast-service", link, link)

		cells := float64(t.queryLen) * float64(t.dbBases)
		serverSeconds := cells / cellRate
		resultBytes := 4 + t.resultHits*(1+8+16) // EncodeHits framing

		var upload, serverT, download, total time.Duration
		clk.Go(func() { // service
			pkt, err := server.Recv()
			if err != nil {
				return
			}
			upload = clk.Now().Sub(pkt.SentAt)
			clk.Sleep(time.Duration(serverSeconds * float64(time.Second)))
			serverT = time.Duration(serverSeconds * float64(time.Second))
			server.Send(pkt.From, "hits", resultBytes)
		})
		clk.Go(func() { // STB client
			start := clk.Now()
			client.Send("blast-service", "query", t.queryLen)
			pkt, err := client.Recv()
			if err != nil {
				return
			}
			download = clk.Now().Sub(pkt.SentAt)
			total = clk.Now().Sub(start)
		})
		clk.Wait()

		localSTB := perf.FromPCSeconds(cells/cellRate, stb.InUse)
		tbl.AddRow(t.id, t.queryLen, float64(t.dbBases)/1e6,
			upload.Seconds(), serverT.Seconds(), download.Seconds(), total.Seconds(), localSTB)
		if total.Seconds() >= localSTB {
			notes = append(notes, fmt.Sprintf("test %d: remote did NOT beat local — unexpected for large DBs", t.id))
		}
	}
	notes = append(notes,
		"remote processing trades a ~20× device slowdown for two 150 kbps transfers: for large databases the server-side scan dominates and the STB is better used as a thin client — the paper's BLASTCL3 scenario")
	return &Result{Tables: []*metrics.Table{tbl}, Notes: notes}, nil
}
