package experiments

import (
	"fmt"
	"math"

	"oddci/internal/analytic"
	"oddci/internal/metrics"
	"oddci/internal/sim"
)

func init() {
	register("fig6", "Figure 6: efficiency vs suitability Φ for n/N ∈ {1,10,100,1000}", runFig6)
	register("fig7", "Figure 7: makespan vs suitability Φ (same scenario)", runFig7)
}

// fig67Phis returns the Φ sweep (log-spaced 1..10⁵).
func fig67Phis(quick bool) []float64 {
	if quick {
		return []float64{1, 10, 100, 1000, 10000, 100000}
	}
	var phis []float64
	for e := 0.0; e <= 5.0; e += 0.25 {
		phis = append(phis, math.Pow(10, e))
	}
	return phis
}

var fig67Ratios = []float64{1, 10, 100, 1000}

// desValidation runs the DES at sampled points and reports deviation
// from the closed form.
func desValidation(cfg Config, metric func(p analytic.Params, r sim.JobResult) (got, want float64)) (*metrics.Table, error) {
	nodes := 200
	phis := []float64{10, 1000, 100000}
	ratios := []float64{10, 100}
	if cfg.Quick {
		nodes = 50
		phis = []float64{1000}
	}
	tbl := metrics.NewTable("DES cross-validation (N="+fmt.Sprint(nodes)+")",
		"n/N", "Φ", "DES", "analytic", "deviation %")
	for _, ratio := range ratios {
		for _, phi := range phis {
			p := analytic.Figure6Defaults(ratio, float64(nodes)).WithPhi(phi)
			res, err := sim.RunJob(sim.JobConfig{
				Nodes:        nodes,
				Tasks:        int(ratio) * nodes,
				ImageBytes:   int64(p.ImageBits / 8),
				Beta:         p.Beta,
				Delta:        p.Delta,
				TaskInBytes:  int(p.TaskInBits / 8),
				TaskOutBytes: int(p.TaskOutBits / 8),
				TaskSeconds:  p.TaskSeconds,
				Seed:         cfg.Seed + int64(ratio*7) + int64(phi),
			})
			if err != nil {
				return nil, err
			}
			got, want := metric(p, res)
			dev := (got - want) / want * 100
			tbl.AddRow(ratio, phi, got, want, dev)
		}
	}
	return tbl, nil
}

func runFig6(cfg Config) (*Result, error) {
	fig := metrics.NewFigure("Efficiency of an OddCI-DTV instance, (s+r)=1 KB", "phi", "efficiency")
	for _, ratio := range fig67Ratios {
		s := fig.AddSeries(fmt.Sprintf("n/N=%g", ratio))
		for _, phi := range fig67Phis(cfg.Quick) {
			p := analytic.Figure6Defaults(ratio, 10000).WithPhi(phi)
			s.Add(phi, p.Efficiency())
		}
	}
	val, err := desValidation(cfg, func(p analytic.Params, r sim.JobResult) (float64, float64) {
		return r.Efficiency, p.Efficiency()
	})
	if err != nil {
		return nil, err
	}
	notes := []string{
		"E rises with Φ and with n/N; n/N ≥ 100 yields E ≳ 0.9 for Φ ≥ 10³ — the paper's headline reading of Figure 6",
		"Φ = p·δ/(s+r) (the paper's printed formula is inverted relative to its own numeric anchors; see DESIGN.md)",
		"DES deviations at small n/N stem from join-phase discreteness: with ~1 task per node the slowest joiner (2 cycles) sets the makespan while the closed form charges the 1.5-cycle mean",
	}
	return &Result{Figs: []*metrics.Figure{fig}, Tables: []*metrics.Table{val}, Notes: notes}, nil
}

func runFig7(cfg Config) (*Result, error) {
	fig := metrics.NewFigure("Makespan of an OddCI-DTV instance (log y)", "phi", "makespan seconds")
	for _, ratio := range fig67Ratios {
		s := fig.AddSeries(fmt.Sprintf("n/N=%g", ratio))
		for _, phi := range fig67Phis(cfg.Quick) {
			p := analytic.Figure6Defaults(ratio, 10000).WithPhi(phi)
			s.Add(phi, p.Makespan())
		}
	}
	val, err := desValidation(cfg, func(p analytic.Params, r sim.JobResult) (float64, float64) {
		return r.Makespan.Seconds(), p.Makespan()
	})
	if err != nil {
		return nil, err
	}
	notes := []string{
		"high efficiency buys long makespans: at fixed n/N the makespan grows ~linearly in Φ once compute dominates the wakeup term — the efficiency/latency compromise §5.2.2 discusses",
	}
	return &Result{Figs: []*metrics.Figure{fig}, Tables: []*metrics.Table{val}, Notes: notes}, nil
}
