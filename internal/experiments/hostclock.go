package experiments

import "time"

// hostSeconds returns the wall-clock seconds fn takes to run on this
// machine. It exists to make the experiments' only legitimate uses of
// the host clock explicit and greppable: calibrating the real cost of
// host computation — the BLAST kernel's cells-per-second rate, the
// heartbeat consolidator's throughput — which is a property of the
// hardware, not of the simulation, and is reported as such.
//
// Everything that happens in virtual time must instead be measured
// through the run's simtime.Clock; a time.Now() on a sim-clock path
// smears host scheduling jitter into runs that are supposed to replay
// byte-identically (see the frozen-clock regressions in
// internal/core/backend and internal/transport).
func hostSeconds(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}
