package experiments

import (
	"fmt"
	"math/rand"

	"oddci/internal/dsmcc"
	"oddci/internal/metrics"
)

func init() {
	register("wakeup", "§5.1: wakeup overhead vs analytic W = 1.5·I/β", runWakeup)
}

// runWakeup sweeps image size and spare broadcast capacity, measuring
// the carousel-delivery time for receivers joining at uniformly random
// phases (the paper's receiver model) and for the optimized block-cache
// receiver, against the closed form W = 1.5·I/β.
func runWakeup(cfg Config) (*Result, error) {
	images := []int{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	betas := []float64{1e6, 5e6, 19e6}
	samples := 2000
	if cfg.Quick {
		images = []int{1 << 20, 8 << 20}
		betas = []float64{1e6}
		samples = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	tbl := metrics.NewTable(
		"Wakeup time (seconds)",
		"Image (MB)", "β (Mbps)", "analytic 1.5·I/β", "measured mean (file gran.)", "measured max", "block-cache mean")
	fig := metrics.NewFigure("Wakeup vs image size (β=1 Mbps)", "image MB", "seconds")
	sa := fig.AddSeries("analytic")
	sm := fig.AddSeries("measured")

	for _, beta := range betas {
		for _, img := range images {
			car, err := dsmcc.NewCarousel(0x300, 0)
			if err != nil {
				return nil, err
			}
			// The wakeup carousel: PNA Xlet + control file + image, the
			// image dominating.
			err = car.SetFiles([]dsmcc.File{
				{Name: "pna.xlet", Data: make([]byte, 16<<10)},
				{Name: "oddci.config", Data: make([]byte, 512)},
				{Name: "image", Data: make([]byte, img)},
			})
			if err != nil {
				return nil, err
			}
			layout, err := car.Layout()
			if err != nil {
				return nil, err
			}
			var fg, bc metrics.Sample
			var fgMax float64
			byteSec := 8 / beta
			for i := 0; i < samples; i++ {
				pos := rng.Int63n(layout.CycleWire)
				// A joining receiver first reads the control file, then
				// the image — the PNA's actual sequence.
				cfgDone, ok := layout.NextCompletion("oddci.config", pos, dsmcc.FileGranularity)
				if !ok {
					return nil, fmt.Errorf("config missing from layout")
				}
				imgDone, ok := layout.NextCompletion("image", cfgDone, dsmcc.FileGranularity)
				if !ok {
					return nil, fmt.Errorf("image missing from layout")
				}
				w := float64(imgDone-pos) * byteSec
				fg.Add(w)
				if w > fgMax {
					fgMax = w
				}
				bcDone, _ := layout.NextCompletion("image", pos, dsmcc.BlockCache)
				bc.Add(float64(bcDone-pos) * byteSec)
			}
			analytic := 1.5 * float64(img) * 8 / beta
			tbl.AddRow(float64(img)/(1<<20), beta/1e6, analytic, fg.Mean(), fgMax, bc.Mean())
			if beta == 1e6 {
				sa.Add(float64(img)/(1<<20), analytic)
				sm.Add(float64(img)/(1<<20), fg.Mean())
			}
		}
	}
	notes := []string{
		"measured means sit ~3–5% above 1.5·I/β: TS packet framing plus the Xlet/control files share the cycle",
		"the block-cache receiver (out-of-order block reassembly) needs only ~1.0 cycle — the ablation the paper's file-granularity receiver leaves on the table",
		"the paper's text claims <64 s for an 8 MB image at 1 Mbps, but its own W formula gives 96 s; the formula (and our measurement) is taken as authoritative",
	}
	return &Result{Tables: []*metrics.Table{tbl}, Figs: []*metrics.Figure{fig}, Notes: notes}, nil
}
