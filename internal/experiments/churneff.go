package experiments

import (
	"fmt"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/metrics"
	"oddci/internal/sim"
)

func init() {
	register("churn-eff", "Extension: efficiency under viewer churn (relaxing §5.2.1's stable-N assumption)", runChurnEff)
}

// runChurnEff sweeps churn harshness × suitability and reports the gap
// between the measured efficiency and the stable-population closed form
// — quantifying how much of Figure 6 survives real viewer behaviour.
func runChurnEff(cfg Config) (*Result, error) {
	const (
		nodes = 100
		ratio = 20
	)
	type regime struct {
		name    string
		on, off time.Duration
	}
	regimes := []regime{
		{"stable (no churn)", 0, 0},
		{"calm (2h/5m)", 2 * time.Hour, 5 * time.Minute},
		{"evening (30m/5m)", 30 * time.Minute, 5 * time.Minute},
		{"zapping (10m/3m)", 10 * time.Minute, 3 * time.Minute},
	}
	phis := []float64{100, 1000, 10000}
	if cfg.Quick {
		regimes = []regime{regimes[0], regimes[2]}
		phis = []float64{1000}
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("Efficiency under churn (N=%d, n/N=%d)", nodes, ratio),
		"regime", "Φ", "efficiency", "vs stable model", "tasks lost", "departures")
	for _, rg := range regimes {
		for _, phi := range phis {
			p := analytic.Figure6Defaults(ratio, nodes).WithPhi(phi)
			base := sim.JobConfig{
				Nodes:        nodes,
				Tasks:        ratio * nodes,
				ImageBytes:   int64(p.ImageBits / 8),
				Beta:         p.Beta,
				Delta:        p.Delta,
				TaskInBytes:  int(p.TaskInBits / 8),
				TaskOutBytes: int(p.TaskOutBits / 8),
				TaskSeconds:  p.TaskSeconds,
				Seed:         cfg.Seed + int64(phi),
			}
			var eff float64
			var lost, departures int
			if rg.on == 0 {
				res, err := sim.RunJob(base)
				if err != nil {
					return nil, err
				}
				eff = res.Efficiency
			} else {
				res, err := sim.RunChurnJob(sim.ChurnJobConfig{
					JobConfig: base, MeanOn: rg.on, MeanOff: rg.off,
				})
				if err != nil {
					return nil, err
				}
				eff, lost, departures = res.Efficiency, res.TasksLost, res.Departures
			}
			model := p.Efficiency()
			tbl.AddRow(rg.name, phi, eff, fmt.Sprintf("%.1f%%", eff/model*100), lost, departures)
		}
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"churn hurts most when task times approach session lengths (high Φ): lost work plus lease latency compound; short tasks barely notice churn",
			"the paper's Figure 6 assumes nodes stay for the whole job (§5.2.1); this extension quantifies the optimism of that assumption",
		},
	}, nil
}
