package experiments

import (
	"crypto/ed25519"
	"fmt"
	"math"
	"math/rand"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/metrics"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
	"oddci/internal/system"
)

func init() {
	register("abl-prob", "Ablation: accuracy of probabilistic instance sizing", runAblProb)
	register("abl-churn", "Ablation: instance maintenance under device churn", runAblChurn)
	register("abl-heartbeat", "Ablation: Controller heartbeat-consolidation throughput", runAblHeartbeat)
	register("abl-carousel", "Ablation: carousel receiver strategy (file granularity vs block cache)", runAblCarousel)
}

var simEpoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func workerImage(size int) *appimage.Image {
	return &appimage.Image{
		Name:       "worker",
		Version:    1,
		EntryPoint: backend.WorkerEntryPoint,
		Payload:    make([]byte, size),
	}
}

// runAblProb broadcasts one wakeup with probability p over an idle
// population and compares the joining count with the binomial model —
// the mechanism the Provider relies on to size instances without
// knowing individual nodes.
func runAblProb(cfg Config) (*Result, error) {
	nodes := 1000
	if cfg.Quick {
		nodes = 300
	}
	probs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	if cfg.Quick {
		probs = []float64{0.3, 0.7}
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Joiners after one wakeup over %d idle nodes", nodes),
		"p", "expected p·N", "joined", "|z| (binomial std units)")
	maxZ := 0.0
	for i, p := range probs {
		clk := simtime.NewSim(simEpoch)
		sys, err := system.New(system.Config{
			Clock: clk, Nodes: nodes, Seed: cfg.Seed + int64(i),
			HeartbeatPeriod: time.Minute, MaintenancePeriod: time.Hour, // no recomposition
		})
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              workerImage(10000),
			Target:             nodes, // target irrelevant: single broadcast
			InitialProbability: p,
		}); err != nil {
			return nil, err
		}
		var joined int
		clk.AfterFunc(5*time.Minute, func() {
			joined = sys.LiveBusy(1)
			sys.Shutdown()
		})
		clk.Wait()
		mean := p * float64(nodes)
		std := math.Sqrt(float64(nodes) * p * (1 - p))
		z := math.Abs(float64(joined)-mean) / std
		if z > maxZ {
			maxZ = z
		}
		tbl.AddRow(p, mean, joined, z)
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("worst deviation %.2f binomial standard units — the gate sizes instances to ±√N accuracy, which the maintenance loop then trims", maxZ),
		},
	}, nil
}

// runAblChurn keeps an instance at target size while devices power
// cycle, measuring how close maintenance holds the size and how many
// wakeup rebroadcasts it costs.
func runAblChurn(cfg Config) (*Result, error) {
	nodes := 120
	if cfg.Quick {
		nodes = 60
	}
	type churnCase struct {
		name    string
		meanOn  time.Duration
		meanOff time.Duration
	}
	cases := []churnCase{
		{"calm (2h on / 5m off)", 2 * time.Hour, 5 * time.Minute},
		{"evening (30m on / 5m off)", 30 * time.Minute, 5 * time.Minute},
		{"zapping (8m on / 2m off)", 8 * time.Minute, 2 * time.Minute},
	}
	if cfg.Quick {
		cases = cases[2:]
	}
	target := nodes / 2
	tbl := metrics.NewTable(
		fmt.Sprintf("Instance size under churn (N=%d, target=%d, 45 min)", nodes, target),
		"churn", "mean size", "min", "max", "wakeup rebroadcasts", "power cycles")
	for ci, cc := range cases {
		clk := simtime.NewSim(simEpoch)
		sys, err := system.New(system.Config{
			Clock: clk, Nodes: nodes, Seed: cfg.Seed + 100 + int64(ci),
			HeartbeatPeriod: 20 * time.Second, MaintenancePeriod: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		for _, box := range sys.STBs {
			if err := box.StartChurn(cc.meanOn, cc.meanOff); err != nil {
				return nil, err
			}
		}
		if _, err := sys.Provider.Create(controller.InstanceSpec{
			Image:              workerImage(10000),
			Target:             target,
			InitialProbability: float64(target) / float64(nodes) * 1.2,
		}); err != nil {
			return nil, err
		}
		var size metrics.Sample
		for m := 10; m <= 45; m++ {
			m := m
			clk.AfterFunc(time.Duration(m)*time.Minute, func() {
				size.Add(float64(sys.LiveBusy(1)))
			})
		}
		var wakeups, cycles int
		clk.AfterFunc(46*time.Minute, func() {
			st, err := sys.Controller.Status(1)
			if err == nil {
				wakeups = st.Wakeups
			}
			for _, box := range sys.STBs {
				cycles += box.PowerCycles
			}
			sys.Shutdown()
		})
		clk.Wait()
		tbl.AddRow(cc.name, size.Mean(), size.Min(), size.Max(), wakeups, cycles)
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"the maintenance loop (heartbeat expiry + wakeup retransmission with re-estimated probability) holds the instance near target across churn regimes; harsher churn costs more rebroadcasts",
		},
	}, nil
}

// runAblHeartbeat measures the Controller's consolidation throughput:
// how many heartbeats per second one Controller absorbs, and therefore
// what population a given heartbeat period supports.
func runAblHeartbeat(cfg Config) (*Result, error) {
	clk := simtime.NewSim(simEpoch)
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		return nil, err
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		return nil, err
	}
	sigch := middleware.NewSignalling(clk, 0)
	_, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast, Signalling: sigch,
		Key: priv, Rng: rand.New(rand.NewSource(cfg.Seed)),
	})
	if err != nil {
		return nil, err
	}
	if err := ctrl.Start(); err != nil {
		return nil, err
	}

	n := 2_000_000
	if cfg.Quick {
		n = 200_000
	}
	profile := instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
	hb := &control.Heartbeat{State: control.StateIdle, Profile: profile, SentAt: simEpoch}
	// Explicitly a host-cost calibration: the consolidator's real
	// throughput on this machine, not a virtual-time quantity.
	elapsed := hostSeconds(func() {
		for i := 0; i < n; i++ {
			hb.NodeID = uint64(i%100000) + 1
			ctrl.HandleHeartbeat(hb)
		}
	})
	ctrl.Stop()
	perSec := float64(n) / elapsed

	tbl := metrics.NewTable("Heartbeat consolidation throughput (sharded consolidator, one core)",
		"heartbeats", "wall seconds", "heartbeats/s", "population @30s period", "population @5min period")
	tbl.AddRow(n, elapsed, perSec, perSec*30, perSec*300)
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"the paper defers Controller-bottleneck engineering to future work (§3, footnote 3); the consolidator shards node state 64 ways (BenchmarkHandleHeartbeatParallel exercises all cores) and the heartbeat period — adaptively re-tuned when TargetHeartbeatRate is set — is the first-order scaling knob",
		},
	}, nil
}

// runAblCarousel contrasts the two receiver strategies across the file's
// share of the carousel cycle.
func runAblCarousel(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	samples := 4000
	if cfg.Quick {
		samples = 1000
	}
	tbl := metrics.NewTable("Carousel access latency in cycles, by target file share of cycle",
		"file share", "file-gran. mean", "file-gran. max", "block-cache mean", "block-cache max")
	for _, share := range []float64{0.1, 0.5, 0.9, 0.99} {
		const total = 1 << 20
		target := int(share * total)
		car, err := dsmcc.NewCarousel(0x300, 0)
		if err != nil {
			return nil, err
		}
		if err := car.SetFiles([]dsmcc.File{
			{Name: "other", Data: make([]byte, total-target)},
			{Name: "target", Data: make([]byte, target)},
		}); err != nil {
			return nil, err
		}
		l, err := car.Layout()
		if err != nil {
			return nil, err
		}
		var fg, bc metrics.Sample
		for i := 0; i < samples; i++ {
			pos := rng.Int63n(l.CycleWire)
			f, _ := l.NextCompletion("target", pos, dsmcc.FileGranularity)
			b, _ := l.NextCompletion("target", pos, dsmcc.BlockCache)
			fg.Add(float64(f-pos) / float64(l.CycleWire))
			bc.Add(float64(b-pos) / float64(l.CycleWire))
		}
		tbl.AddRow(share, fg.Mean(), fg.Max(), bc.Mean(), bc.Max())
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"file-granularity receivers (the paper's model) pay up to ~2 cycles when the file dominates; block caching caps the wait at ~1 cycle — a free 33% wakeup improvement the standard permits",
		},
	}, nil
}
