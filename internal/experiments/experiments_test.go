package experiments

import (
	"strings"
	"testing"
)

// Every registered experiment must run clean in quick mode and produce
// at least one table or figure.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Config{Seed: 42, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tables)+len(res.Figs) == 0 {
				t.Fatal("experiment produced no output")
			}
			var b strings.Builder
			res.Render(&b)
			if !strings.Contains(b.String(), res.ID) {
				t.Fatal("render missing experiment id")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsStable(t *testing.T) {
	want := []string{"table1", "table2", "table3", "wakeup", "fig6", "fig7",
		"abl-prob", "abl-churn", "abl-heartbeat", "abl-carousel", "abl-transport", "churn-eff",
		"lifecycle", "byzantine"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	seen := make(map[string]bool)
	for _, id := range got {
		seen[id] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("missing experiment %q in %v", id, got)
		}
	}
}

// Shape assertions on the headline results (quick mode).
func TestTable1Shape(t *testing.T) {
	res, err := Run("table1", Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// OddCI column must be constant; grid column must grow.
	fig := res.Figs[0]
	var oddci, grid *struct{ first, last float64 }
	for _, s := range fig.Series {
		v := &struct{ first, last float64 }{s.Y[0], s.Y[len(s.Y)-1]}
		switch s.Label {
		case "oddci":
			oddci = v
		case "desktop-grid":
			grid = v
		}
	}
	if oddci == nil || grid == nil {
		t.Fatal("missing series")
	}
	if oddci.first != oddci.last {
		t.Fatalf("oddci setup not flat: %v → %v", oddci.first, oddci.last)
	}
	if grid.last <= grid.first {
		t.Fatal("grid setup did not grow with N")
	}
	if grid.last <= oddci.last {
		t.Fatal("at the largest N, oddci should win")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Run("fig6", Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Figs[0].Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("series %s not increasing at point %d", s.Label, i)
			}
		}
		if last := s.Y[len(s.Y)-1]; last <= 0 || last > 1 {
			t.Fatalf("series %s efficiency out of range: %v", s.Label, last)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Run("fig7", Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Makespan increases with Φ within a series, and higher n/N costs
	// more at the same Φ.
	series := res.Figs[0].Series
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("series %s makespan not increasing", s.Label)
			}
		}
	}
	lastIdx := len(series[0].Y) - 1
	if series[len(series)-1].Y[lastIdx] <= series[0].Y[lastIdx] {
		t.Fatal("higher n/N should have larger makespan at same Φ")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Run("table2", Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[0].String()
	if !strings.Contains(out, "measured") {
		t.Fatalf("no measured rows:\n%s", out)
	}
}
