package experiments

import (
	"fmt"
	"time"

	"oddci/internal/baseline"
	"oddci/internal/metrics"
	"oddci/internal/simtime"
)

func init() {
	register("table1", "Table I quantified: image-staging setup time vs population size", runTable1)
}

// runTable1 turns the paper's qualitative requirements table into
// numbers: the time until the *last* of N nodes holds the 8 MB
// application image, per technology. Parameters are era-appropriate:
// β = 1 Mbps spare broadcast capacity, a desktop-grid master on a
// 1 Gbps uplink with 10 Mbps workers, an IaaS region booting 100 VMs
// concurrently (2 min each) from a fat store, and an overlay multicast
// with fanout 8 on worker links.
func runTable1(cfg Config) (*Result, error) {
	const imageBytes = 8 << 20
	oddci := baseline.OddCI{ImageBytes: imageBytes, BetaBps: 1e6}
	grid := baseline.Unicast{ImageBytes: imageBytes, UplinkBps: 1e9, DeltaBps: 10e6}
	iaas := baseline.IaaS{ImageBytes: imageBytes, DeltaBps: 1e9, Boot: 2 * time.Minute, Concurrency: 100}
	tree := baseline.MulticastTree{ImageBytes: imageBytes, DeltaBps: 10e6, Fanout: 8}

	ns := []int{100, 1000, 10000, 100000, 1000000}
	if cfg.Quick {
		ns = []int{100, 10000, 1000000}
	}
	tbl := metrics.NewTable(
		"Setup time (last node ready, seconds) — image 8 MB",
		"N", "OddCI (β=1Mbps)", "Desktop grid (1Gbps uplink)", "IaaS (C=100, 2min boot)", "Multicast tree (k=8)")
	fig := metrics.NewFigure("Table I scalability", "N", "setup seconds")
	so := fig.AddSeries("oddci")
	sg := fig.AddSeries("desktop-grid")
	si := fig.AddSeries("iaas")
	sm := fig.AddSeries("multicast")

	var crossover string
	prevGridWins := true
	for _, n := range ns {
		ro, err := oddci.Analytic(n)
		if err != nil {
			return nil, err
		}
		rg, err := grid.Analytic(n)
		if err != nil {
			return nil, err
		}
		ri, err := iaas.Analytic(n)
		if err != nil {
			return nil, err
		}
		rm, err := tree.Analytic(n)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, ro.Last.Seconds(), rg.Last.Seconds(), ri.Last.Seconds(), rm.Last.Seconds())
		so.Add(float64(n), ro.Last.Seconds())
		sg.Add(float64(n), rg.Last.Seconds())
		si.Add(float64(n), ri.Last.Seconds())
		sm.Add(float64(n), rm.Last.Seconds())
		gridWins := rg.Last < ro.Last
		if prevGridWins && !gridWins && crossover == "" {
			crossover = fmt.Sprintf("OddCI overtakes the desktop grid between the previous N and N=%d", n)
		}
		prevGridWins = gridWins
	}

	// DES spot-check of the unicast model.
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	simN := 1000
	if cfg.Quick {
		simN = 100
	}
	simRes, err := grid.Simulate(clk, simN)
	if err != nil {
		return nil, err
	}
	anaRes, err := grid.Analytic(simN)
	if err != nil {
		return nil, err
	}

	notes := []string{
		"OddCI setup is flat in N (one broadcast transmission); every alternative grows with N.",
		fmt.Sprintf("unicast DES spot-check at N=%d: simulated %.1fs vs analytic %.1fs",
			simN, simRes.Last.Seconds(), anaRes.Last.Seconds()),
	}
	if crossover != "" {
		notes = append(notes, crossover)
	}
	return &Result{Tables: []*metrics.Table{tbl}, Figs: []*metrics.Figure{fig}, Notes: notes}, nil
}
