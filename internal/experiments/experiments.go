// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the ablations DESIGN.md calls out). Each experiment
// is a Runner keyed by ID; cmd/oddci-sim drives them from the command
// line and the repository benchmarks wrap them via testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"oddci/internal/metrics"
)

// Config tunes a run.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks sweeps for CI and benchmarks.
	Quick bool
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Figs   []*metrics.Figure
	Notes  []string
}

// Render writes the result as text.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintln(w, t.String())
	}
	for _, f := range r.Figs {
		fmt.Fprintln(w, f.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

type entry struct {
	id    string
	title string
	run   Runner
}

var registry []entry

func register(id, title string, run Runner) {
	registry = append(registry, entry{id, title, run})
}

// IDs lists registered experiment IDs in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			res, err := e.run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID, res.Title = e.id, e.title
			return res, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, e := range registry {
		res, err := Run(e.id, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
