package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"oddci/internal/core/controller"
	"oddci/internal/core/provider"
	"oddci/internal/metrics"
	"oddci/internal/netsim"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/system"
	"oddci/internal/trace"
)

func init() {
	register("lifecycle", "Hardening: instance lifecycle under head-end faults (destroy, reset retransmission, GC, refresh retry)", runLifecycle)
}

// runLifecycle churns instances (create → run → destroy) against a
// head-end whose carousel updates fail with a given probability, and
// reports whether the recovery machinery — bounded reset
// retransmission, GC, refresh retry with backoff — keeps the broadcast
// state bounded and drains it back to baseline.
func runLifecycle(cfg Config) (*Result, error) {
	cyclesFor := func(quick bool) int {
		if quick {
			return 30
		}
		return 200
	}
	failProbs := []float64{0, 0.25, 0.5}
	if cfg.Quick {
		failProbs = []float64{0, 0.25}
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("Lifecycle churn, %d create→destroy rounds over 12 power-cycling nodes", cyclesFor(cfg.Quick)),
		"update fail prob", "rounds", "injected", "failed", "refresh retries", "GCs", "peak resets on air", "final files", "final ctl bytes")
	telTbl := metrics.NewTable(
		"Live telemetry snapshot at end of run (obs registry)",
		"update fail prob", "heartbeats", "wakeups", "joins", "nodes expired", "resets sent", "wakeup→join p90 (s)", "broadcast MB")

	for i, prob := range failProbs {
		clk := simtime.NewSim(simEpoch)
		rec := trace.NewRecorder(1 << 17)
		reg := obs.NewRegistry()
		plan := netsim.NewFaultPlan(rand.New(rand.NewSource(cfg.Seed+int64(i))), prob, 3)
		sys, err := system.New(system.Config{
			Clock:                clk,
			Nodes:                12,
			Seed:                 cfg.Seed + int64(i),
			HeartbeatPeriod:      15 * time.Second,
			MaintenancePeriod:    10 * time.Second,
			Trace:                rec,
			Obs:                  reg,
			HeadEndFaults:        plan,
			ResetRetransmitTicks: 3,
			RefreshRetryBase:     2 * time.Second,
			RefreshRetryMax:      8 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		for _, box := range sys.STBs {
			if err := box.StartChurn(5*time.Minute, 45*time.Second); err != nil {
				return nil, err
			}
		}

		var rounds, peakOnAir, finalFiles, finalBytes int
		clk.Go(func() {
			spec := controller.InstanceSpec{
				Image:              workerImage(1 << 10),
				Target:             3,
				InitialProbability: 0.6,
				HeartbeatPeriod:    15 * time.Second,
			}
			for cycle := 0; cycle < cyclesFor(cfg.Quick); cycle++ {
				var inst *provider.Instance
				for attempt := 0; attempt < 8; attempt++ {
					in, err := sys.Provider.Create(spec)
					if err == nil {
						inst = in
						break
					}
					clk.Sleep(3 * time.Second)
				}
				if inst == nil {
					clk.Sleep(5 * time.Second)
					continue
				}
				clk.Sleep(10 * time.Second)
				_ = inst.Destroy() // tolerant of already-gone instances
				rounds++
				clk.Sleep(5 * time.Second)
				if _, _, _, onAir := sys.Controller.ContentStats(); onAir > peakOnAir {
					peakOnAir = onAir
				}
			}
			clk.Sleep(2 * time.Minute) // drain retries + GC windows
			finalBytes, finalFiles, _, _ = sys.Controller.ContentStats()
			sys.Shutdown()
		})
		clk.Wait()

		injected, failed := plan.Stats()
		tbl.AddRow(prob, rounds, injected, failed,
			rec.Count(trace.KindRefreshRetry), rec.Count(trace.KindGC),
			peakOnAir, finalFiles, finalBytes)

		snap := reg.Snapshot()
		mbAired := 0.0
		if v, ok := reg.Value("oddci_dsmcc_broadcast_bytes"); ok {
			mbAired = v / 1e6
		}
		telTbl.AddRow(prob,
			snap.Counters["oddci_controller_heartbeats_total"],
			snap.Counters["oddci_controller_wakeups_total"],
			snap.Counters["oddci_pna_joins_total"],
			snap.Counters["oddci_controller_nodes_expired_total"],
			snap.Counters["oddci_controller_resets_total"],
			snap.Histograms["oddci_controller_wakeup_to_join_seconds"].P90,
			mbAired)
	}
	return &Result{
		Tables: []*metrics.Table{tbl, telTbl},
		Notes: []string{
			"destroyed instances keep their reset on air for a bounded retransmission window, then are GC'd: final carousel always returns to 2 files (xlet + control file) and an empty control file",
			"failed carousel updates never strand state — the refresh retries with exponential backoff and each maintenance pass re-attempts, so higher fail probabilities cost retries, not correctness",
		},
	}, nil
}
