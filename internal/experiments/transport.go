package experiments

import (
	"fmt"
	"math/rand"

	"oddci/internal/dsmcc"
	"oddci/internal/flute"
	"oddci/internal/metrics"
	"oddci/internal/simtime"
)

func init() {
	register("abl-transport", "Ablation: broadcast substrate — DTV carousel vs IP-multicast FLUTE", runAblTransport)
}

// runAblTransport compares the wakeup-time distribution of the two §3.3
// substrates at equal spare capacity β, for receivers joining at random
// phases: DSM-CC contiguous modules with a file-granularity receiver vs
// FLUTE interleaved chunks with an inherent chunk cache.
func runAblTransport(cfg Config) (*Result, error) {
	images := []int{1 << 20, 4 << 20, 8 << 20}
	samples := 2000
	if cfg.Quick {
		images = []int{4 << 20}
		samples = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))

	tbl := metrics.NewTable(
		"Random-phase wakeup, cycles of the respective carousel (β equal)",
		"Image (MB)", "DTV mean", "DTV max", "FLUTE mean", "FLUTE max")
	for _, img := range images {
		files := []dsmcc.File{
			{Name: "pna.xlet", Data: make([]byte, 16<<10)},
			{Name: "oddci.config", Data: make([]byte, 512)},
			{Name: "image", Data: make([]byte, img)},
		}
		car, err := dsmcc.NewCarousel(0x300, 0)
		if err != nil {
			return nil, err
		}
		if err := car.SetFiles(files); err != nil {
			return nil, err
		}
		dl, err := car.Layout()
		if err != nil {
			return nil, err
		}
		caster, err := flute.NewCaster(simtime.NewSim(simEpoch), 1e6)
		if err != nil {
			return nil, err
		}
		if err := caster.Start(files); err != nil {
			return nil, err
		}
		var dtv, fm metrics.Sample
		for i := 0; i < samples; i++ {
			dp := rng.Int63n(dl.CycleWire)
			dd, _ := dl.NextCompletion("image", dp, dsmcc.FileGranularity)
			dtv.Add(float64(dd-dp) / float64(dl.CycleWire))
			fp := rng.Int63n(caster.CycleWire())
			fd, ok := caster.Completion("image", fp)
			if !ok {
				return nil, fmt.Errorf("flute layout missing image")
			}
			fm.Add(float64(fd-fp) / float64(caster.CycleWire()))
		}
		tbl.AddRow(float64(img)/(1<<20), dtv.Mean(), dtv.Max(), fm.Mean(), fm.Max())
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"FLUTE's interleaved chunks plus receiver-side caching cap the wakeup at 1.0 cycle (vs the DTV receiver's 1.5 mean / 2.0 max) — §3.3's substrate choice has a measurable wakeup consequence",
			"the full control plane runs unchanged over either substrate (see TestEndToEndOverIPMulticast)",
		},
	}, nil
}
