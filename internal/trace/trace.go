// Package trace records the control-plane events of a running OddCI
// deployment into a bounded in-memory timeline: wakeup broadcasts, node
// joins and resets, power transitions. Experiments and demos use it to
// show *why* an instance's size moved, not just that it did.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"oddci/internal/simtime"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindWakeup Kind = iota + 1
	KindReset
	KindJoin
	KindLeave
	KindPowerOn
	KindPowerOff
	// Instance lifecycle (live → destroyed → reset-on-air → GC'd) and
	// head-end refresh health, emitted by the Controller.
	KindCreate
	KindTrim
	KindDestroy
	KindGC
	KindRefreshRetry
	KindRefreshOK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWakeup:
		return "wakeup"
	case KindReset:
		return "reset"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindPowerOn:
		return "power-on"
	case KindPowerOff:
		return "power-off"
	case KindCreate:
		return "create"
	case KindTrim:
		return "trim"
	case KindDestroy:
		return "destroy"
	case KindGC:
		return "gc"
	case KindRefreshRetry:
		return "refresh-retry"
	case KindRefreshOK:
		return "refresh-ok"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At       time.Time
	Kind     Kind
	Node     uint64 // 0 for head-end events
	Instance uint64 // 0 when not instance-scoped
	Detail   string
}

// Recorder is a bounded, concurrency-safe event buffer. Once full, the
// oldest events are dropped (Dropped counts them).
type Recorder struct {
	// clk stamps events recorded without an explicit At. It is the
	// injected deployment clock, never time.Now() directly, so
	// frozen-sim replays render byte-identical timelines.
	clk simtime.Clock

	mu      sync.Mutex
	buf     []Event
	start   int
	count   int
	dropped int
	// tallies counts every event ever recorded per kind — unlike the
	// ring it is not bounded, so Count stays O(1) and exact even after
	// old events fall off the buffer.
	tallies map[Kind]int
}

// NewRecorder creates a recorder holding up to max events (default 4096
// when max ≤ 0).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{clk: simtime.NewReal(), buf: make([]Event, max), tallies: make(map[Kind]int)}
}

// WithClock rebinds the stamping clock (the deployment's simtime.Clock)
// and returns r for chaining. Call before recording starts.
func (r *Recorder) WithClock(clk simtime.Clock) *Recorder {
	if clk != nil {
		r.clk = clk
	}
	return r
}

// Record appends one event. A zero At is stamped from the recorder's
// injected clock — the only time source this package ever consults.
func (r *Recorder) Record(ev Event) {
	if ev.At.IsZero() {
		ev.At = r.clk.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.count--
		r.dropped++
	}
	r.buf[(r.start+r.count)%len(r.buf)] = ev
	r.count++
	r.tallies[ev.Kind]++
}

// Dropped reports how many events fell off the ring.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the timeline, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Count tallies events of one kind in O(1): it reports every event ever
// recorded, including those that have since fallen off the ring.
func (r *Recorder) Count(kind Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tallies[kind]
}

// Render prints the timeline with offsets relative to the first event.
// A zero or negative limit renders everything.
func (r *Recorder) Render(limit int) string {
	evs := r.Events()
	if len(evs) == 0 {
		return "(empty timeline)\n"
	}
	if limit < 0 {
		limit = 0
	}
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	t0 := evs[0].At
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "%9s  %-9s", ev.At.Sub(t0).Truncate(time.Millisecond), ev.Kind)
		if ev.Node != 0 {
			fmt.Fprintf(&b, "  node=%d", ev.Node)
		}
		if ev.Instance != 0 {
			fmt.Fprintf(&b, "  instance=%d", ev.Instance)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, "  %s", ev.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// jsonEvent is the JSONL wire form of one event.
type jsonEvent struct {
	At       time.Time `json:"at"`
	Kind     string    `json:"kind"`
	Node     uint64    `json:"node,omitempty"`
	Instance uint64    `json:"instance,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// WriteJSONL streams the timeline to w as JSON Lines, one event object
// per line ({"at","kind","node","instance","detail"}), oldest first —
// the machine-readable export experiments and demos dump for offline
// analysis.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(jsonEvent{
			At:       ev.At,
			Kind:     ev.Kind.String(),
			Node:     ev.Node,
			Instance: ev.Instance,
			Detail:   ev.Detail,
		}); err != nil {
			return err
		}
	}
	return nil
}
