package trace

import (
	"oddci/internal/simtime"

	"encoding/json"
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func TestRecordAndRender(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{At: epoch, Kind: KindWakeup, Instance: 1, Detail: "seq=1 p=0.50"})
	r.Record(Event{At: epoch.Add(3 * time.Second), Kind: KindJoin, Node: 7, Instance: 1})
	r.Record(Event{At: epoch.Add(9 * time.Second), Kind: KindLeave, Node: 7})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindWakeup || evs[2].Kind != KindLeave {
		t.Fatalf("order wrong: %v", evs)
	}
	out := r.Render(0)
	for _, want := range []string{"wakeup", "join", "node=7", "instance=1", "seq=1 p=0.50", "3s", "9s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if r.Count(KindJoin) != 1 || r.Count(KindReset) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: epoch.Add(time.Duration(i) * time.Second), Node: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d", len(evs))
	}
	if evs[0].Node != 6 || evs[3].Node != 9 {
		t.Fatalf("wrong window: %v", evs)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestCountSurvivesRingDrops(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: epoch, Kind: KindJoin})
	}
	r.Record(Event{At: epoch, Kind: KindLeave})
	if got := r.Count(KindJoin); got != 10 {
		t.Fatalf("join count = %d, want 10 (tallies must outlive the ring)", got)
	}
	if got := r.Count(KindLeave); got != 1 {
		t.Fatalf("leave count = %d", got)
	}
}

func TestRenderNegativeLimit(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: epoch, Kind: KindPowerOn, Node: uint64(i + 1)})
	}
	if got := strings.Count(r.Render(-3), "power-on"); got != 5 {
		t.Fatalf("negative limit rendered %d events, want all 5", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{At: epoch, Kind: KindWakeup, Instance: 3, Detail: "seq=1 p=0.50"})
	r.Record(Event{At: epoch.Add(time.Second), Kind: KindJoin, Node: 7, Instance: 3})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	for _, want := range []string{`"kind":"wakeup"`, `"instance":3`, `"detail":"seq=1 p=0.50"`} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("line 0 missing %s: %s", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], `"node":7`) || !strings.Contains(lines[1], `"kind":"join"`) {
		t.Fatalf("line 1 wrong: %s", lines[1])
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
}

func TestRenderLimitAndEmpty(t *testing.T) {
	r := NewRecorder(8)
	if !strings.Contains(r.Render(0), "empty") {
		t.Fatal("empty render wrong")
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{At: epoch, Kind: KindPowerOn, Node: uint64(i + 1)})
	}
	out := r.Render(2)
	if strings.Count(out, "power-on") != 2 {
		t.Fatalf("limit ignored:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindWakeup: "wakeup", KindReset: "reset", KindJoin: "join",
		KindLeave: "leave", KindPowerOn: "power-on", KindPowerOff: "power-off",
		KindCreate: "create", KindTrim: "trim", KindDestroy: "destroy",
		KindGC: "gc", KindRefreshRetry: "refresh-retry", KindRefreshOK: "refresh-ok",
	} {
		if k.String() != want {
			t.Errorf("%d → %q", k, k.String())
		}
	}
}

// TestClockStampedFrozenSimReplay drives two identical simulated-clock
// runs recording events *without* explicit timestamps: the recorder
// must stamp them from its injected clock (never the wall clock), so
// both timelines render byte-identical.
func TestClockStampedFrozenSimReplay(t *testing.T) {
	run := func() string {
		sim := simtime.NewSim(epoch)
		r := NewRecorder(16).WithClock(sim)
		r.Record(Event{Kind: KindWakeup, Instance: 1, Detail: "seq=1 p=0.50"})
		sim.AfterFunc(1500*time.Millisecond, func() {
			r.Record(Event{Kind: KindJoin, Node: 7, Instance: 1})
		})
		sim.AfterFunc(4*time.Second, func() {
			r.Record(Event{Kind: KindLeave, Node: 7})
		})
		sim.Wait()
		return r.Render(0)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("frozen-sim replays differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{"1.5s", "4s", "join", "leave"} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
	// Wall-clock stamping would put all three events microseconds apart;
	// the injected sim clock spaces them exactly as scheduled.
	if strings.Count(a, "0s") > 1 {
		t.Fatalf("events collapsed onto the wall clock:\n%s", a)
	}
}
