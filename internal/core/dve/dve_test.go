package dve

import (
	"errors"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func testImage(entry string) *appimage.Image {
	return &appimage.Image{Name: "t", EntryPoint: entry, Payload: []byte{1}}
}

func TestLaunchRunsApp(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := NewRegistry()
	var ran bool
	var exitErr error
	reg.Register("app", func(env *Env) error {
		ran = true
		if env.NodeID != 7 || env.InstanceID != 3 {
			t.Errorf("env identity: %d/%d", env.NodeID, env.InstanceID)
		}
		return nil
	})
	d, err := Launch(Config{
		Clock: clk, Registry: reg, Image: testImage("app"),
		NodeID: 7, InstanceID: 3,
		OnExit: func(err error) { exitErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Wait()
	if !ran {
		t.Fatal("app never ran")
	}
	done, appErr := d.Done()
	if !done || appErr != nil || exitErr != nil {
		t.Fatalf("done=%v err=%v exit=%v", done, appErr, exitErr)
	}
}

func TestLaunchUnknownEntryPoint(t *testing.T) {
	clk := simtime.NewSim(epoch)
	if _, err := Launch(Config{Clock: clk, Registry: NewRegistry(), Image: testImage("nope")}); err == nil {
		t.Fatal("unknown entry point accepted")
	}
}

func TestExecuteUsesPerfModel(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := NewRegistry()
	var finished time.Time
	reg.Register("app", func(env *Env) error {
		env.Execute(10) // 10 reference seconds
		finished = env.Clk.Now()
		return nil
	})
	_, err := Launch(Config{
		Clock: clk, Registry: reg, Image: testImage("app"),
		TaskDuration: func(ref float64) time.Duration {
			return time.Duration(ref * 2 * float64(time.Second)) // 2× slower device
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Wait()
	if !finished.Equal(epoch.Add(20 * time.Second)) {
		t.Fatalf("finished at %v, want epoch+20s", finished)
	}
}

func TestDestroyInterruptsExecute(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := NewRegistry()
	var completed, sawDestroyed bool
	reg.Register("app", func(env *Env) error {
		completed = env.Execute(3600)
		sawDestroyed = env.Destroyed()
		return errors.New("aborted")
	})
	d, err := Launch(Config{Clock: clk, Registry: reg, Image: testImage("app")})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(5*time.Second, d.Destroy)
	clk.Wait()
	if completed {
		t.Fatal("destroyed task reported completion")
	}
	if !sawDestroyed {
		t.Fatal("env did not observe destruction")
	}
	if !clk.Now().Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("teardown at %v, want epoch+5s (prompt)", clk.Now())
	}
	if done, appErr := d.Done(); !done || appErr == nil {
		t.Fatalf("done=%v err=%v", done, appErr)
	}
}

func TestOnTaskCounter(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := NewRegistry()
	count := 0
	reg.Register("app", func(env *Env) error {
		for i := 0; i < 3; i++ {
			env.Execute(1)
			env.NoteTaskDone()
		}
		return nil
	})
	_, err := Launch(Config{
		Clock: clk, Registry: reg, Image: testImage("app"),
		OnTask: func() { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Wait()
	if count != 3 {
		t.Fatalf("task count = %d", count)
	}
}

func TestLaunchValidation(t *testing.T) {
	if _, err := Launch(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
