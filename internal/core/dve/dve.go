// Package dve implements the Disposable Virtual Environment: the
// sandbox a PNA creates to run a user application image ("the PNA
// creates a DVE for loading and executing the user's application
// present in the message"). A DVE owns the application's goroutine, its
// direct channel to the Backend, and its share of the device CPU; when
// the instance is reset the DVE is destroyed and everything inside it
// stops.
//
// Substitution note: the paper's DVE executes arbitrary shipped code.
// Here image entry points resolve against a Registry of Go functions;
// the image payload (delivered and digest-verified over broadcast) can
// carry the application's data (e.g. a BLAST database slice).
package dve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/instance"
	"oddci/internal/netsim"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
)

// AppFunc is an application behaviour: it runs inside the DVE until the
// work is done or the environment is destroyed.
type AppFunc func(env *Env) error

// Registry resolves image entry points to behaviours.
type Registry struct {
	mu sync.Mutex
	m  map[string]AppFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]AppFunc)} }

// Register binds an entry point name to fn.
func (r *Registry) Register(entryPoint string, fn AppFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[entryPoint] = fn
}

// Lookup resolves an entry point.
func (r *Registry) Lookup(entryPoint string) (AppFunc, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn, ok := r.m[entryPoint]
	return fn, ok
}

// Env is the application's view of its sandbox.
type Env struct {
	Clk        simtime.Clock
	NodeID     uint64
	InstanceID instance.ID
	Image      *appimage.Image
	// Backend is the direct channel to the Backend component.
	Backend *netsim.Endpoint
	// TaskDuration converts a reference-STB processing time to this
	// device's wall time (the STB performance model).
	TaskDuration func(refSTBSeconds float64) time.Duration
	// Trace is the span context the hosting PNA launched this DVE
	// under; the worker stamps it onto task requests so backend
	// dispatches join the node's wakeup trace. Zero when untraced.
	Trace span.Context

	noteTask  func()
	interrupt simtime.Interrupter
}

// NoteTaskDone reports one completed task to the hosting PNA (surfaces
// in heartbeat statistics).
func (e *Env) NoteTaskDone() {
	if e.noteTask != nil {
		e.noteTask()
	}
}

// Execute runs one task of the given reference duration, honouring the
// device performance model. It reports false if the DVE was destroyed
// before the task completed (the result must then be discarded).
func (e *Env) Execute(refSTBSeconds float64) bool {
	d := time.Duration(refSTBSeconds * float64(time.Second))
	if e.TaskDuration != nil {
		d = e.TaskDuration(refSTBSeconds)
	}
	return e.interrupt.Sleep(e.Clk, d)
}

// Sleep pauses the application, returning false if destroyed meanwhile.
func (e *Env) Sleep(d time.Duration) bool { return e.interrupt.Sleep(e.Clk, d) }

// Destroyed reports whether the DVE has been torn down.
func (e *Env) Destroyed() bool { return e.interrupt.Cancelled() }

// DVE is the handle the PNA keeps for the running environment.
type DVE struct {
	env       *Env
	hangup    func()
	destroyed *obs.Counter

	mu   sync.Mutex
	done bool
	err  error
	// torn guards the destroyed counter against double Destroy calls.
	torn   bool
	onExit func(err error)
}

// Config launches an environment.
type Config struct {
	Clock      simtime.Clock
	Registry   *Registry
	Image      *appimage.Image
	NodeID     uint64
	InstanceID instance.ID
	// Backend is the freshly dialled channel to the Backend; Hangup
	// releases it on destruction.
	Backend *netsim.Endpoint
	Hangup  func()
	// TaskDuration is the device performance model hook.
	TaskDuration func(refSTBSeconds float64) time.Duration
	// OnExit, if set, runs when the application returns (after a
	// completed run or a destruction). It receives the app error.
	OnExit func(err error)
	// OnTask, if set, observes each completed task.
	OnTask func()
	// Trace seeds Env.Trace (see there).
	Trace span.Context
	// Obs, if set, counts DVE launches, destructions, and app errors
	// (oddci_dve_* metrics).
	Obs *obs.Registry
}

// Launch resolves the image's entry point and starts the application.
func Launch(cfg Config) (*DVE, error) {
	if cfg.Clock == nil || cfg.Registry == nil || cfg.Image == nil {
		return nil, errors.New("dve: clock, registry and image are required")
	}
	fn, ok := cfg.Registry.Lookup(cfg.Image.EntryPoint)
	if !ok {
		return nil, fmt.Errorf("dve: unknown entry point %q", cfg.Image.EntryPoint)
	}
	env := &Env{
		Clk:          cfg.Clock,
		NodeID:       cfg.NodeID,
		InstanceID:   cfg.InstanceID,
		Image:        cfg.Image,
		Backend:      cfg.Backend,
		TaskDuration: cfg.TaskDuration,
		Trace:        cfg.Trace,
		noteTask:     cfg.OnTask,
	}
	d := &DVE{
		env:       env,
		hangup:    cfg.Hangup,
		onExit:    cfg.OnExit,
		destroyed: cfg.Obs.Counter("oddci_dve_destroyed_total", "DVEs torn down"),
	}
	cfg.Obs.Counter("oddci_dve_launched_total", "DVEs launched").Inc()
	appErrors := cfg.Obs.Counter("oddci_dve_app_errors_total", "Applications that exited with an error")
	cfg.Clock.Go(func() {
		err := fn(env)
		if err != nil {
			appErrors.Inc()
		}
		d.mu.Lock()
		d.done = true
		d.err = err
		exit := d.onExit
		d.mu.Unlock()
		if exit != nil {
			exit(err)
		}
	})
	return d, nil
}

// Destroy tears the environment down: the application's blocking
// operations (Execute, Sleep, Backend receives) return immediately and
// the direct channel is released.
func (d *DVE) Destroy() {
	d.mu.Lock()
	first := !d.torn
	d.torn = true
	d.mu.Unlock()
	if first {
		d.destroyed.Inc()
	}
	d.env.interrupt.Cancel()
	if d.env.Backend != nil {
		d.env.Backend.Close()
	}
	if d.hangup != nil {
		d.hangup()
	}
}

// Done reports whether the application goroutine has returned, and its
// error.
func (d *DVE) Done() (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.done, d.err
}
