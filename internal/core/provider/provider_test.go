package provider

import (
	"crypto/ed25519"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/controller"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func newProvider(t *testing.T) (*Provider, *simtime.Sim, *controller.Controller) {
	t.Helper()
	clk := simtime.NewSim(epoch)
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	return New(ctrl), clk, ctrl
}

func spec() controller.InstanceSpec {
	return controller.InstanceSpec{
		Image:              &appimage.Image{Name: "a", EntryPoint: "e", Payload: []byte{1}},
		Target:             5,
		InitialProbability: 1,
	}
}

func TestCreateAndTrack(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	inst, err := p.Create(spec())
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID() == 0 {
		t.Fatal("zero instance id")
	}
	if got := p.Instances(); len(got) != 1 || got[0] != inst {
		t.Fatalf("instances = %v", got)
	}
	st, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Target != 5 || st.Wakeups != 1 {
		t.Fatalf("status %+v", st)
	}
	ctrl.Stop()
	clk.Wait()
}

func TestDestroyRemovesHandle(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	inst, err := p.Create(spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if len(p.Instances()) != 0 {
		t.Fatal("destroyed instance still tracked")
	}
	// Idempotent destroy; resize after destroy fails.
	if err := inst.Destroy(); err != nil {
		t.Fatalf("second destroy: %v", err)
	}
	if err := inst.Resize(3); err == nil {
		t.Fatal("resize after destroy accepted")
	}
	ctrl.Stop()
	clk.Wait()
}

func TestResizePassesThrough(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	inst, err := p.Create(spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Resize(9); err != nil {
		t.Fatal(err)
	}
	st, _ := inst.Status()
	if st.Target != 9 {
		t.Fatalf("target = %d", st.Target)
	}
	ctrl.Stop()
	clk.Wait()
}

func TestCreateErrorPropagates(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	if _, err := p.Create(controller.InstanceSpec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if len(p.Instances()) != 0 {
		t.Fatal("failed create left a handle")
	}
	ctrl.Stop()
	clk.Wait()
}

func TestPopulationDelegates(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	if idle, busy := p.Population(); idle != 0 || busy != 0 {
		t.Fatalf("population = %d/%d", idle, busy)
	}
	ctrl.Stop()
	clk.Wait()
}
