package provider

import (
	"crypto/ed25519"
	"errors"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/controller"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

// newStoppedNetwork builds a Controller that was never started, so
// every lifecycle call on it fails — the per-network error injector.
func newStoppedNetwork(t *testing.T, clk *simtime.Sim, seed int64) *controller.Controller {
	t.Helper()
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// gcPart destroys one network-level instance and advances virtual time
// through enough maintenance passes that the Controller garbage-collects
// it, so later Status/Resize calls hit ErrInstanceGone.
func gcPart(t *testing.T, clk *simtime.Sim, net *controller.Controller, id uint64) {
	t.Helper()
	if err := net.DestroyInstance(1); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(clk.Now().Add(10 * time.Minute))
	if _, err := net.Status(1); !errors.Is(err, controller.ErrInstanceGone) {
		t.Fatalf("part not garbage-collected: %v", err)
	}
	_ = id
}

func TestMultiStatusErrorPath(t *testing.T) {
	clk := simtime.NewSim(epoch)
	netA := newNetwork(t, clk, 20)
	netB := newNetwork(t, clk, 21)
	feedIdle(clk, netA, 1, 11)
	feedIdle(clk, netB, 100, 110)
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Destroy part A behind the MultiInstance's back and let the
	// maintenance loop garbage-collect it: aggregation must surface the
	// ErrInstanceGone instead of silently reporting half the fleet.
	gcPart(t, clk, netA, 1)
	if _, err := inst.Status(); !errors.Is(err, controller.ErrInstanceGone) {
		t.Fatalf("Status over a gone part = %v, want ErrInstanceGone", err)
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

func TestMultiResizeErrorPaths(t *testing.T) {
	clk := simtime.NewSim(epoch)
	netA := newNetwork(t, clk, 22)
	netB := newNetwork(t, clk, 23)
	feedIdle(clk, netA, 1, 11)
	feedIdle(clk, netB, 100, 110)
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Resize(-1); err == nil {
		t.Fatal("negative target accepted")
	}
	gcPart(t, clk, netA, 1)
	if err := inst.Resize(6); !errors.Is(err, controller.ErrInstanceGone) {
		t.Fatalf("Resize over a gone part = %v, want ErrInstanceGone", err)
	}
	if err := inst.Destroy(); err == nil {
		t.Fatal("Destroy should surface the gone part")
	}
	if err := inst.Resize(6); err == nil {
		t.Fatal("resize after destroy accepted")
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

// TestMultiResizeFoldsNonParticipants: a network that received no share
// at create time cannot gain one later; its share folds into the first
// participating network so the aggregate target stays exact.
func TestMultiResizeFoldsNonParticipants(t *testing.T) {
	clk := simtime.NewSim(epoch)
	netA := newNetwork(t, clk, 24)
	netB := newNetwork(t, clk, 25)
	feedIdle(clk, netA, 1, 11) // netB has no idle nodes: share 0
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 4, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if parts := inst.Parts(); parts[1] != 0 {
		t.Fatalf("empty network received a share: %v", parts)
	}
	// Now netB has idle population, so the re-split assigns it weight —
	// which must fold back into netA.
	feedIdle(clk, netB, 100, 140)
	if err := inst.Resize(8); err != nil {
		t.Fatal(err)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Target != 8 {
		t.Fatalf("aggregate target %d after fold-in resize, want 8", agg.Target)
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

// TestMultiCreateRollsBack: when a later network rejects its share, the
// parts already created on earlier networks are destroyed again.
func TestMultiCreateRollsBack(t *testing.T) {
	clk := simtime.NewSim(epoch)
	netA := newNetwork(t, clk, 26)
	netB := newStoppedNetwork(t, clk, 27) // CreateInstance fails: not started
	feedIdle(clk, netA, 1, 11)
	feedIdle(clk, netB, 100, 110)
	m, _ := NewMulti(netA, netB)
	if _, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1}); err == nil {
		t.Fatal("create against a dead network succeeded")
	}
	// The part staged on netA must have been rolled back (destroyed;
	// the reset envelope lingers until garbage collection).
	st, err := netA.Status(1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Destroyed {
		t.Fatal("rolled-back part still alive on network A")
	}
	netA.Stop()
	clk.Wait()
}

func TestMultiRecompose(t *testing.T) {
	clk := simtime.NewSim(epoch)
	netA := newNetwork(t, clk, 28)
	netB := newNetwork(t, clk, 29)
	feedIdle(clk, netA, 1, 11)
	feedIdle(clk, netB, 100, 110)
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := &appimage.Image{Name: "a", Version: 2, EntryPoint: "e", Payload: []byte{9, 9}}
	if err := inst.Recompose(v2); err != nil {
		t.Fatal(err)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	// Each part re-airs its wakeup once for the image update.
	if agg.Wakeups != 4 {
		t.Fatalf("aggregate wakeups %d after recompose, want 4", agg.Wakeups)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Recompose(v2); err == nil {
		t.Fatal("recompose after destroy accepted")
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

func TestProviderRecomposeAndRebind(t *testing.T) {
	p, clk, ctrl := newProvider(t)
	inst, err := p.Create(spec())
	if err != nil {
		t.Fatal(err)
	}
	// Feed one member so the instance is observably live.
	ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: 7, State: control.StateBusy, InstanceID: inst.ID(),
		SentAt: clk.Now(),
	})
	v2 := &appimage.Image{Name: "a", Version: 2, EntryPoint: "e", Payload: []byte{2}}
	if err := inst.Recompose(v2); err != nil {
		t.Fatal(err)
	}
	st, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Wakeups != 2 || st.Busy != 1 {
		t.Fatalf("status after recompose: %+v", st)
	}
	// Rebind keeps the handle working against a replacement Controller
	// of the same lineage (here: the same one, the minimal contract).
	p.Rebind(ctrl)
	if inst.Destroyed() {
		t.Fatal("handle reports destroyed")
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Recompose(v2); err == nil {
		t.Fatal("recompose after destroy accepted")
	}
	ctrl.Stop()
	clk.Wait()
}
