package provider

import (
	"errors"
	"fmt"
	"sync"

	"oddci/internal/appimage"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
)

// Multi is a Provider spanning several broadcast networks, each with its
// own Controller — §4.3's observation that "multiple channels to
// distribute the trigger application increases the potential number of
// receivers" and §3.1's Provider/Controller separation taken to its
// intended conclusion: one user request, fanned out across networks in
// proportion to each network's idle population.
type Multi struct {
	mu       sync.Mutex
	networks []*controller.Controller
}

// NewMulti wraps the given started Controllers.
func NewMulti(networks ...*controller.Controller) (*Multi, error) {
	if len(networks) == 0 {
		return nil, errors.New("provider: multi needs at least one network")
	}
	return &Multi{networks: networks}, nil
}

// MultiInstance is one logical instance spread over several networks.
type MultiInstance struct {
	m *Multi
	// parts maps network index → instance id on that network (0 when
	// the network received no share).
	parts []instance.ID

	mu        sync.Mutex
	destroyed bool
}

// Create provisions one logical instance across the networks, splitting
// the target by eligible idle populations through Split.
func (m *Multi) Create(spec controller.InstanceSpec) (*MultiInstance, error) {
	if spec.Target <= 0 {
		return nil, errors.New("provider: target must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	weights := make([]int, len(m.networks))
	for i, c := range m.networks {
		idle, _ := c.Population()
		weights[i] = idle
	}
	shares := Split(spec.Target, weights)

	inst := &MultiInstance{m: m, parts: make([]instance.ID, len(m.networks))}
	created := 0
	for i, share := range shares {
		if share == 0 {
			continue
		}
		sub := spec
		sub.Target = share
		id, err := m.networks[i].CreateInstance(sub)
		if err != nil {
			// Roll back what was created.
			for j := 0; j < i; j++ {
				if inst.parts[j] != 0 {
					m.networks[j].DestroyInstance(inst.parts[j])
				}
			}
			return nil, fmt.Errorf("provider: network %d: %w", i, err)
		}
		inst.parts[i] = id
		created++
	}
	if created == 0 {
		return nil, errors.New("provider: no network received a share")
	}
	return inst, nil
}

// Status aggregates the per-network views.
func (mi *MultiInstance) Status() (controller.InstanceStatus, error) {
	var agg controller.InstanceStatus
	for i, id := range mi.parts {
		if id == 0 {
			continue
		}
		st, err := mi.m.networks[i].Status(id)
		if err != nil {
			return agg, err
		}
		agg.Target += st.Target
		agg.Busy += st.Busy
		agg.Wakeups += st.Wakeups
		agg.Resets += st.Resets
		agg.Trimming += st.Trimming
	}
	return agg, nil
}

// Resize re-splits the new target by current idle populations plus the
// instance's own members (so shrinking works even with no idle nodes).
func (mi *MultiInstance) Resize(target int) error {
	if target < 0 {
		return errors.New("provider: negative target")
	}
	mi.mu.Lock()
	if mi.destroyed {
		mi.mu.Unlock()
		return errors.New("provider: instance destroyed")
	}
	mi.mu.Unlock()

	weights := make([]int, len(mi.parts))
	for i, id := range mi.parts {
		idle, _ := mi.m.networks[i].Population()
		weights[i] = idle
		if id != 0 {
			if st, err := mi.m.networks[i].Status(id); err == nil {
				weights[i] += st.Busy
			}
		}
	}
	shares := Split(target, weights)
	for i, share := range shares {
		if mi.parts[i] == 0 {
			if share > 0 {
				// A network that had no share cannot gain one after the
				// fact (its carousel never carried the image); fold the
				// share into the first participating network.
				for j, id := range mi.parts {
					if id != 0 {
						shares[j] += share
						break
					}
				}
			}
			continue
		}
	}
	for i, share := range shares {
		if mi.parts[i] == 0 {
			continue
		}
		if err := mi.m.networks[i].Resize(mi.parts[i], share); err != nil {
			return err
		}
	}
	return nil
}

// Recompose replaces the application image on every participating
// network. The first failure is returned after all parts were attempted,
// so a flaky network does not strand the rest on the old content.
func (mi *MultiInstance) Recompose(img *appimage.Image) error {
	mi.mu.Lock()
	if mi.destroyed {
		mi.mu.Unlock()
		return errors.New("provider: instance destroyed")
	}
	mi.mu.Unlock()
	var firstErr error
	for i, id := range mi.parts {
		if id == 0 {
			continue
		}
		if err := mi.m.networks[i].Recompose(id, img); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("provider: network %d: %w", i, err)
		}
	}
	return firstErr
}

// Destroy dismantles every part.
func (mi *MultiInstance) Destroy() error {
	mi.mu.Lock()
	if mi.destroyed {
		mi.mu.Unlock()
		return nil
	}
	mi.destroyed = true
	mi.mu.Unlock()
	var firstErr error
	for i, id := range mi.parts {
		if id == 0 {
			continue
		}
		if err := mi.m.networks[i].DestroyInstance(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Parts exposes the per-network instance ids (0 = no share).
func (mi *MultiInstance) Parts() []instance.ID {
	out := make([]instance.ID, len(mi.parts))
	copy(out, mi.parts)
	return out
}
