package provider

import (
	"crypto/ed25519"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"oddci/internal/control"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

// newNetwork builds one started Controller over its own broadcast stack.
func newNetwork(t *testing.T, clk *simtime.Sim, seed int64) *controller.Controller {
	t.Helper()
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// feedIdle reports idle heartbeats for nodes [from, to) on a network.
func feedIdle(clk *simtime.Sim, c *controller.Controller, from, to uint64) {
	for i := from; i < to; i++ {
		c.HandleHeartbeat(&control.Heartbeat{
			NodeID: i, State: control.StateIdle,
			Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
			SentAt:  clk.Now(),
		})
	}
}

func TestSplitExactAndProportional(t *testing.T) {
	got := Split(10, []int{30, 10})
	if got[0]+got[1] != 10 {
		t.Fatalf("split not exact: %v", got)
	}
	if got[0] != 8 && got[0] != 7 {
		t.Fatalf("split not proportional: %v", got)
	}
	even := Split(10, []int{0, 0, 0})
	if even[0]+even[1]+even[2] != 10 {
		t.Fatalf("even split not exact: %v", even)
	}
}

// Property: split always sums to the target and never goes negative.
func TestSplitProperty(t *testing.T) {
	f := func(target uint8, raw []uint8) bool {
		if len(raw) == 0 {
			raw = []uint8{1}
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		weights := make([]int, len(raw))
		for i, w := range raw {
			weights[i] = int(w)
		}
		out := Split(int(target), weights)
		sum := 0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == int(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCreateSplitsByPopulation(t *testing.T) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	netA := newNetwork(t, clk, 1)
	netB := newNetwork(t, clk, 2)
	feedIdle(clk, netA, 1, 31)    // 30 idle
	feedIdle(clk, netB, 100, 110) // 10 idle

	m, err := NewMulti(netA, netB)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Create(controller.InstanceSpec{
		Image: spec().Image, Target: 20, InitialProbability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := inst.Parts()
	stA, err := netA.Status(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	stB, err := netB.Status(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if stA.Target+stB.Target != 20 {
		t.Fatalf("targets %d+%d != 20", stA.Target, stB.Target)
	}
	if stA.Target != 15 || stB.Target != 5 {
		t.Fatalf("split %d/%d, want 15/5 (proportional to 30/10)", stA.Target, stB.Target)
	}
	agg, err := inst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Target != 20 || agg.Wakeups != 2 {
		t.Fatalf("aggregate %+v", agg)
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

func TestMultiDestroyAllParts(t *testing.T) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	netA := newNetwork(t, clk, 3)
	netB := newNetwork(t, clk, 4)
	feedIdle(clk, netA, 1, 11)
	feedIdle(clk, netB, 100, 110)
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatalf("idempotent destroy: %v", err)
	}
	for i, id := range inst.Parts() {
		nets := []*controller.Controller{netA, netB}
		if id == 0 {
			continue
		}
		if err := nets[i].DestroyInstance(id); err == nil {
			t.Fatalf("part %d still alive after multi destroy", i)
		}
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

func TestMultiResize(t *testing.T) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	netA := newNetwork(t, clk, 5)
	netB := newNetwork(t, clk, 6)
	feedIdle(clk, netA, 1, 21)
	feedIdle(clk, netB, 100, 120)
	m, _ := NewMulti(netA, netB)
	inst, err := m.Create(controller.InstanceSpec{Image: spec().Image, Target: 10, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Resize(30); err != nil {
		t.Fatal(err)
	}
	agg, _ := inst.Status()
	if agg.Target != 30 {
		t.Fatalf("aggregate target = %d after resize", agg.Target)
	}
	netA.Stop()
	netB.Stop()
	clk.Wait()
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Fatal("empty multi accepted")
	}
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	net := newNetwork(t, clk, 7)
	m, _ := NewMulti(net)
	if _, err := m.Create(controller.InstanceSpec{Image: spec().Image}); err == nil {
		t.Fatal("zero target accepted")
	}
	net.Stop()
	clk.Wait()
}
