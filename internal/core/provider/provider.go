// Package provider implements the OddCI Provider: the component
// "responsible for creating, managing and destroying the instances of
// OddCI according to the user's requests" (§3.1). It is the public face
// of the control plane: users ask for an instance of a given size
// running a given image; the Provider instructs the Controller and
// exposes consolidated status.
package provider

import (
	"errors"
	"fmt"
	"sync"

	"oddci/internal/appimage"
	"oddci/internal/core/controller"
	"oddci/internal/core/instance"
)

// Provider fronts one Controller. (The paper allows a Provider to
// manage several Controllers/broadcast networks; this implementation
// pairs one of each — the multi-network generalization would add a
// routing table here.)
type Provider struct {
	mu        sync.Mutex
	ctrl      *controller.Controller
	instances map[instance.ID]*Instance
}

// New wraps a started Controller.
func New(ctrl *controller.Controller) *Provider {
	return &Provider{ctrl: ctrl, instances: make(map[instance.ID]*Instance)}
}

// Rebind points the Provider (and every outstanding Instance handle) at
// a replacement Controller — the crash-recovery path, where a restarted
// Controller replays its journal and resumes serving the same instance
// IDs.
func (p *Provider) Rebind(ctrl *controller.Controller) {
	p.mu.Lock()
	p.ctrl = ctrl
	p.mu.Unlock()
}

// controller returns the current Controller under the lock.
func (p *Provider) controller() *controller.Controller {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ctrl
}

// Instance is a user's handle on one provisioned OddCI instance.
type Instance struct {
	id instance.ID
	p  *Provider

	mu        sync.Mutex
	destroyed bool
}

// Create provisions a new instance.
func (p *Provider) Create(spec controller.InstanceSpec) (*Instance, error) {
	id, err := p.controller().CreateInstance(spec)
	if err != nil {
		return nil, err
	}
	inst := &Instance{id: id, p: p}
	p.mu.Lock()
	p.instances[id] = inst
	p.mu.Unlock()
	return inst, nil
}

// Instances lists live handles.
func (p *Provider) Instances() []*Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Instance, 0, len(p.instances))
	for _, inst := range p.instances {
		out = append(out, inst)
	}
	return out
}

// Population reports the Controller's view of the device population.
func (p *Provider) Population() (idle, busy int) { return p.controller().Population() }

// ID returns the instance identifier.
func (i *Instance) ID() instance.ID { return i.id }

// Status returns consolidated instance state.
func (i *Instance) Status() (controller.InstanceStatus, error) {
	return i.p.controller().Status(i.id)
}

// Resize adjusts the target size.
func (i *Instance) Resize(target int) error {
	i.mu.Lock()
	if i.destroyed {
		i.mu.Unlock()
		return errors.New("provider: instance destroyed")
	}
	i.mu.Unlock()
	return i.p.controller().Resize(i.id, target)
}

// Recompose replaces the instance's application image in place; live
// members receive the new content as a delta (carousel module hashes on
// the broadcast plane, delta_img chunks on TCP).
func (i *Instance) Recompose(img *appimage.Image) error {
	i.mu.Lock()
	if i.destroyed {
		i.mu.Unlock()
		return errors.New("provider: instance destroyed")
	}
	i.mu.Unlock()
	return i.p.controller().Recompose(i.id, img)
}

// Destroyed reports whether Destroy has been called on this handle.
func (i *Instance) Destroyed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.destroyed
}

// Destroy dismantles the instance. Finding the Controller has already
// destroyed (or garbage-collected) it is not an error: the state the
// caller asked for holds either way.
func (i *Instance) Destroy() error {
	i.mu.Lock()
	if i.destroyed {
		i.mu.Unlock()
		return nil
	}
	i.destroyed = true
	i.mu.Unlock()
	err := i.p.controller().DestroyInstance(i.id)
	if err != nil && !errors.Is(err, controller.ErrInstanceGone) {
		return fmt.Errorf("provider: destroy %d: %w", i.id, err)
	}
	i.p.mu.Lock()
	delete(i.p.instances, i.id)
	i.p.mu.Unlock()
	return nil
}
