package provider

import "sort"

// Split apportions target units across weights proportionally using the
// largest-remainder (Hamilton) method, guaranteeing the shares sum to
// exactly target. Each share is the floor or the ceiling of its exact
// proportional value.
//
// Leftover units after the floor pass go to the largest remainders.
// Remainders are compared as exact integer fractions (target·w mod
// total), so ties are detected precisely, and a tie breaks toward the
// larger weight and then the lower index: with idle populations [1, 3]
// and target 2 the heavier network takes the spare unit ([0, 2]), where
// a first-come scan would skew the small fleet onto the light network
// ([1, 1]). The federation layer and Multi both route through this one
// apportionment.
//
// Negative weights count as zero. A weight vector that sums to zero
// carries no information: the target spreads evenly, remainder to the
// lowest indices.
func Split(target int, weights []int) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || target <= 0 {
		return out
	}
	total := int64(0)
	for _, w := range weights {
		if w > 0 {
			total += int64(w)
		}
	}
	if total == 0 {
		for i := range out {
			out[i] = target / n
		}
		for i := 0; i < target%n; i++ {
			out[i]++
		}
		return out
	}
	type entry struct {
		idx    int
		weight int
		rem    int64 // target·w mod total: the exact remainder numerator
	}
	entries := make([]entry, n)
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := int64(target) * int64(w)
		out[i] = int(exact / total)
		assigned += out[i]
		entries[i] = entry{idx: i, weight: w, rem: exact % total}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.rem != eb.rem {
			return ea.rem > eb.rem
		}
		if ea.weight != eb.weight {
			return ea.weight > eb.weight
		}
		return ea.idx < eb.idx
	})
	for i := 0; i < target-assigned; i++ {
		out[entries[i].idx]++
	}
	return out
}
