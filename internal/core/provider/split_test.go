package provider

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestSplitTieGoesToHighestWeight pins the deterministic tie-break: with
// idle populations [1, 3] and target 2 the exact shares are 0.5 and 1.5
// — equal remainders — and the spare unit must land on the heavier
// network, not on whichever entry a scan saw first.
func TestSplitTieGoesToHighestWeight(t *testing.T) {
	got := Split(2, []int{1, 3})
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Split(2, [1 3]) = %v, want [0 2]", got)
	}
	// Symmetric order: the heavier network still wins regardless of index.
	got = Split(2, []int{3, 1})
	if !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("Split(2, [3 1]) = %v, want [2 0]", got)
	}
	// Equal weights with equal remainders fall back to the lower index.
	got = Split(3, []int{2, 2})
	if !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("Split(3, [2 2]) = %v, want [2 1]", got)
	}
}

// TestSplitPropertyBounds checks the Hamilton apportionment invariants
// over random weight vectors: shares sum exactly to the target, every
// share is the floor or ceiling of its exact proportional value, and
// zero-weight entries receive nothing while any weight is positive.
func TestSplitPropertyBounds(t *testing.T) {
	f := func(target uint16, raw []uint16) bool {
		if len(raw) == 0 {
			raw = []uint16{1}
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		weights := make([]int, len(raw))
		total := 0
		for i, w := range raw {
			weights[i] = int(w % 1000)
			total += weights[i]
		}
		tgt := int(target % 5000)
		out := Split(tgt, weights)
		sum := 0
		for i, v := range out {
			sum += v
			if v < 0 {
				return false
			}
			if total > 0 {
				exact := int64(tgt) * int64(weights[i])
				floor := int(exact / int64(total))
				ceil := floor
				if exact%int64(total) != 0 {
					ceil++
				}
				if v < floor || v > ceil {
					return false
				}
				if weights[i] == 0 && v != 0 {
					return false
				}
			}
		}
		return sum == tgt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitDeterministicRemainderOrder verifies the leftover units go to
// a prefix of the (remainder desc, weight desc, index asc) order — i.e.
// no lower-priority entry is ever rounded up while a higher-priority one
// holds its floor.
func TestSplitDeterministicRemainderOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 500; round++ {
		n := 2 + rng.Intn(8)
		weights := make([]int, n)
		total := 0
		for i := range weights {
			weights[i] = rng.Intn(50)
			total += weights[i]
		}
		if total == 0 {
			continue
		}
		target := 1 + rng.Intn(200)
		out := Split(target, weights)
		if again := Split(target, weights); !reflect.DeepEqual(out, again) {
			t.Fatalf("Split not deterministic: %v vs %v", out, again)
		}
		type pri struct {
			idx     int
			rem     int64
			weight  int
			rounded bool
		}
		pris := make([]pri, n)
		for i, w := range weights {
			exact := int64(target) * int64(w)
			pris[i] = pri{
				idx: i, rem: exact % int64(total), weight: w,
				rounded: out[i] > int(exact/int64(total)),
			}
		}
		sort.Slice(pris, func(a, b int) bool {
			if pris[a].rem != pris[b].rem {
				return pris[a].rem > pris[b].rem
			}
			if pris[a].weight != pris[b].weight {
				return pris[a].weight > pris[b].weight
			}
			return pris[a].idx < pris[b].idx
		})
		seenFloor := false
		for _, p := range pris {
			if p.rounded && seenFloor {
				t.Fatalf("target %d weights %v: entry %d rounded up after a higher-priority floor (%v)",
					target, weights, p.idx, out)
			}
			if !p.rounded && p.rem > 0 {
				seenFloor = true
			}
		}
	}
}

func TestSplitDegenerateInputs(t *testing.T) {
	if out := Split(0, []int{3, 4}); out[0] != 0 || out[1] != 0 {
		t.Fatalf("Split(0, ...) = %v", out)
	}
	if out := Split(5, nil); len(out) != 0 {
		t.Fatalf("Split over empty weights = %v", out)
	}
	// Negative weights are clamped to zero, not allowed to siphon shares.
	out := Split(4, []int{-10, 2, 2})
	if out[0] != 0 || out[1]+out[2] != 4 {
		t.Fatalf("Split with negative weight = %v", out)
	}
}
