package backend

import (
	"testing"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// counter reads a registry counter, defaulting to 0.
func counter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	v, _ := reg.Value(name)
	return v
}

// TestQuarantineLifecycle drives one liar through the full credibility
// arc: conflict losses halve its score, the second loss quarantines it
// (outstanding lease revoked, dispatch refuses it, late votes dropped),
// and the job still commits only honest results.
func TestQuarantineLifecycle(t *testing.T) {
	const liar = uint64(4)
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	b, err := New(Config{Clock: clk, Replication: 3, Obs: reg,
		RetryAfter: 5 * time.Second, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(mkJob(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}

	// The liar grabs one slot of every task, answers the first three
	// wrong, and sits on the fourth lease.
	var assigns []*TaskAssign
	for {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: liar}).(*TaskAssign)
		if !ok {
			break
		}
		assigns = append(assigns, a)
	}
	if len(assigns) != 4 {
		t.Fatalf("liar leased %d tasks, want 4", len(assigns))
	}
	for _, a := range assigns[:3] {
		b.HandleResult(&TaskResult{NodeID: liar, JobID: a.JobID, TaskID: a.TaskID,
			Payload: []byte("WRONG")})
	}
	if got := b.Credibility(liar); got != credFullScore {
		t.Fatalf("scores moved before any commit: %d", got)
	}

	// Honest pairs commit the wrong-voted tasks one by one (a result
	// does not need a lease, so commit order is deterministic here):
	// each conflicted commit halves the liar — 1000 → 500 → 250
	// (quarantined, fourth lease revoked) → 125.
	for i, a := range assigns[:3] {
		for n := uint64(1); n <= 2; n++ {
			b.HandleResult(&TaskResult{NodeID: n, JobID: a.JobID, TaskID: a.TaskID,
				Payload: []byte("ok")})
		}
		if want := []int64{500, 250, 125}[i]; b.Credibility(liar) != want {
			t.Fatalf("liar credibility after loss %d = %d, want %d", i+1, b.Credibility(liar), want)
		}
	}
	// The fourth task never saw the liar's vote; honest votes finish it.
	for n := uint64(1); n <= 2; n++ {
		b.HandleResult(&TaskResult{NodeID: n, JobID: assigns[3].JobID,
			TaskID: assigns[3].TaskID, Payload: []byte("ok")})
	}
	if _, done := h.Done(); !done {
		t.Fatal("job did not complete around the quarantined liar")
	}
	for id, payload := range h.Results() {
		if string(payload) != "ok" {
			t.Fatalf("task %d committed %q", id, payload)
		}
	}
	if got := b.Credibility(liar); got != 125 {
		t.Fatalf("liar credibility = %d, want 125 after three losses", got)
	}
	if !b.Quarantined(liar) || b.Quarantined(1) {
		t.Fatalf("quarantine flags wrong: liar=%t honest=%t", b.Quarantined(liar), b.Quarantined(1))
	}
	if got := b.QuarantinedNodes(); len(got) != 1 || got[0] != liar {
		t.Fatalf("QuarantinedNodes = %v", got)
	}
	if got := b.QuarantinedCount(); got != 1 {
		t.Fatalf("QuarantinedCount = %d", got)
	}
	if got := b.Credibility(1); got != credFullScore {
		t.Fatalf("honest winner credibility = %d, want full", got)
	}
	// The liar's fourth lease was revoked at quarantine time (the only
	// redispatch possible here: sim time never advanced, so no lease
	// could expire on its own).
	if got := h.Redispatches(); got != 1 {
		t.Fatalf("redispatches = %d, want exactly the quarantine revocation", got)
	}
	if got := counter(t, reg, "oddci_backend_byzantine_quarantines_total"); got != 1 {
		t.Fatalf("quarantine counter = %v", got)
	}
	if got := counter(t, reg, "oddci_backend_byzantine_vote_losses_total"); got < 3 {
		t.Fatalf("vote losses counter = %v, want >= 3", got)
	}

	// Exclusion: the liar polls but never gets work, and a late vote
	// from it is dropped on the floor.
	if _, ok := b.HandleRequest(&TaskRequest{NodeID: liar}).(*NoTask); !ok {
		t.Fatal("quarantined node was dispatched work")
	}
	b.HandleResult(&TaskResult{NodeID: liar, JobID: assigns[3].JobID,
		TaskID: assigns[3].TaskID, Payload: []byte("WRONG")})
	if got := counter(t, reg, "oddci_backend_byzantine_votes_dropped_total"); got != 1 {
		t.Fatalf("votes dropped counter = %v", got)
	}
}

// TestRewardCapsAtFullScore: winners earn credWinReward per committed
// vote but never exceed full trust.
func TestRewardCapsAtFullScore(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	h, err := b.Submit(mkJob(t, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, done := h.Done(); done {
			break
		}
		runVoters(b, []uint64{1, 2, 3}, func(uint64) []byte { return []byte("ok") })
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	for n := uint64(1); n <= 3; n++ {
		if got := b.Credibility(n); got != credFullScore {
			t.Fatalf("node %d credibility = %d after all-honest commits", n, got)
		}
	}
}

// TestCredentialVerdictsAndEnforcement covers the four verdicts against
// a live backend: a clean echo commits, a missing echo counts, a forged
// one is rejected with a credibility penalty, and a genuine token echoed
// for the wrong slot reads as a replay.
func TestCredentialVerdictsAndEnforcement(t *testing.T) {
	secret := []byte("0123456789abcdef0123456789abcdef")
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	b, err := New(Config{Clock: clk, CredentialMode: CredEnforce, Obs: reg,
		CredentialSecret: secret, RetryAfter: 5 * time.Second, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(mkJob(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	grab := func(node uint64) *TaskAssign {
		t.Helper()
		a, ok := b.HandleRequest(&TaskRequest{NodeID: node}).(*TaskAssign)
		if !ok {
			t.Fatal("no assignment")
		}
		if len(a.Credential) != CredentialLen {
			t.Fatalf("assignment credential %d bytes", len(a.Credential))
		}
		return a
	}

	// Clean echo commits.
	a := grab(1)
	b.HandleResult(&TaskResult{NodeID: 1, JobID: a.JobID, TaskID: a.TaskID,
		Payload: []byte("ok"), Credential: a.Credential})
	if got := h.Results()[a.TaskID]; string(got) != "ok" {
		t.Fatalf("clean echo did not commit: %q", got)
	}

	// Missing credential: rejected in enforce mode, sender penalized.
	a = grab(2)
	b.HandleResult(&TaskResult{NodeID: 2, JobID: a.JobID, TaskID: a.TaskID,
		Payload: []byte("ok")})
	if _, committed := h.Results()[a.TaskID]; committed {
		t.Fatal("missing credential committed in enforce mode")
	}
	if got := counter(t, reg, "oddci_backend_byzantine_cred_missing_total"); got != 1 {
		t.Fatalf("cred missing counter = %v", got)
	}
	if got := b.Credibility(2); got != credFullScore/2 {
		t.Fatalf("credibility after rejection = %d, want %d", got, credFullScore/2)
	}

	// Forged: flip one MAC byte.
	a = grab(3)
	forged := append([]byte(nil), a.Credential...)
	forged[CredentialLen-1] ^= 1
	b.HandleResult(&TaskResult{NodeID: 3, JobID: a.JobID, TaskID: a.TaskID,
		Payload: []byte("ok"), Credential: forged})
	if got := counter(t, reg, "oddci_backend_byzantine_cred_forged_total"); got != 1 {
		t.Fatalf("cred forged counter = %v", got)
	}

	// Replayed: a genuine MAC bound to another node's slot.
	a = grab(5)
	stolen := AppendCredential(nil, secret, 999, 1, a.JobID, a.TaskID)
	b.HandleResult(&TaskResult{NodeID: 5, JobID: a.JobID, TaskID: a.TaskID,
		Payload: []byte("ok"), Credential: stolen})
	if got := counter(t, reg, "oddci_backend_byzantine_cred_replayed_total"); got != 1 {
		t.Fatalf("cred replayed counter = %v", got)
	}
	if got := counter(t, reg, "oddci_backend_byzantine_cred_rejected_total"); got != 3 {
		t.Fatalf("cred rejected counter = %v, want 3", got)
	}

	// Rejected slots were refunded: honest echoes still finish the job.
	for i := 0; i < 16; i++ {
		if _, done := h.Done(); done {
			break
		}
		for n := uint64(6); n <= 9; n++ {
			a, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign)
			if !ok {
				continue
			}
			b.HandleResult(&TaskResult{NodeID: n, JobID: a.JobID, TaskID: a.TaskID,
				Payload: []byte("ok"), Credential: a.Credential})
		}
	}
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete after credential rejections")
	}
}

// TestCredentialWarnModeAccepts: warn mode verifies and counts but the
// vote still lands — and a generated secret (none injected) works.
func TestCredentialWarnModeAccepts(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	b, err := New(Config{Clock: clk, CredentialMode: CredWarn, Obs: reg,
		RetryAfter: 5 * time.Second, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign)
	if !ok {
		t.Fatal("no assignment")
	}
	b.HandleResult(&TaskResult{NodeID: 1, JobID: a.JobID, TaskID: a.TaskID,
		Payload: []byte("ok")}) // pre-credential node: no echo
	if _, done := h.Done(); !done {
		t.Fatal("warn mode refused a missing credential")
	}
	if got := counter(t, reg, "oddci_backend_byzantine_cred_missing_total"); got != 1 {
		t.Fatalf("cred missing counter = %v", got)
	}
	if got := counter(t, reg, "oddci_backend_byzantine_cred_rejected_total"); got != 0 {
		t.Fatalf("warn mode rejected %v votes", got)
	}
	if got := b.Credibility(1); got != credFullScore {
		t.Fatalf("warn mode penalized credibility to %d", got)
	}
}
