package backend

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/simtime"
)

// Lease-expiry retries must not consume the MaxReplicas budget: a first
// wave of stragglers whose leases expire is refunded, so a second wave
// plus the conflict top-up still fit. Before the fix, the three expired
// slots burned half the 2×3 budget and the split vote below was forced
// into a premature Unresolved plurality commit.
func TestLeaseRetryDoesNotBurnReplicaBudget(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3) // quorum 2, MaxReplicas 6, lease ≈ 34 s
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wave 1: three nodes take the replicas and die.
	for _, n := range []uint64{1, 2, 3} {
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign); !ok {
			t.Fatalf("node %d not served", n)
		}
	}
	clk.AfterFunc(60*time.Second, func() {
		// Wave 2: three fresh nodes pick up the expired slots and split
		// the vote three ways.
		for _, n := range []uint64{4, 5, 6} {
			a, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign)
			if !ok {
				t.Errorf("node %d starved after lease-expiry retries", n)
				return
			}
			b.HandleResult(&TaskResult{NodeID: n, JobID: a.JobID, TaskID: a.TaskID,
				Payload: []byte(fmt.Sprintf("answer-%d", n))})
		}
		// The conflict top-up must still have budget to break the tie.
		a, ok := b.HandleRequest(&TaskRequest{NodeID: 7}).(*TaskAssign)
		if !ok {
			t.Error("conflict top-up denied: lease retries burned the replica budget")
			return
		}
		b.HandleResult(&TaskResult{NodeID: 7, JobID: a.JobID, TaskID: a.TaskID,
			Payload: []byte("answer-4")})
	})
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	if got := h.Results()[0]; string(got) != "answer-4" {
		t.Fatalf("committed %q, want the tie-broken majority answer-4", got)
	}
	if b.Unresolved != 0 {
		t.Fatalf("unresolved = %d: lease retries were charged to the replica budget", b.Unresolved)
	}
	if h.Redispatches() != 3 {
		t.Fatalf("redispatches = %d, want 3", h.Redispatches())
	}
}

// A committed task is purged from the scheduler immediately, even while
// a straggler still holds a lease on it. Before the fix, such tasks
// leaked in the active table until a reclaim sweep happened to visit
// them after the straggler's lease expired.
func TestCommittedTaskPurgedDespiteStragglers(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []uint64{1, 2, 3} {
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign); !ok {
			t.Fatalf("node %d not served", n)
		}
	}
	// Nodes 1 and 2 agree: quorum commits with node 3 still leased.
	b.HandleResult(&TaskResult{NodeID: 1, JobID: 1, TaskID: 0, Payload: []byte("ok")})
	b.HandleResult(&TaskResult{NodeID: 2, JobID: 1, TaskID: 0, Payload: []byte("ok")})
	if _, done := h.Done(); !done {
		t.Fatal("quorum did not commit")
	}
	if got := b.ActiveTasks(); got != 0 {
		t.Fatalf("active tasks = %d after commit; straggler lease kept the task alive", got)
	}
	// The straggler's late result is still ignored.
	b.HandleResult(&TaskResult{NodeID: 3, JobID: 1, TaskID: 0, Payload: []byte("late")})
	if got := h.Results()[0]; string(got) != "ok" {
		t.Fatalf("late straggler overwrote commit: %q", got)
	}
}

// The scheduler's task table returns to empty after whole jobs complete
// — the leak regression test for b.active.
func TestActiveTasksReturnsToZeroAfterJobs(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h1, _ := b.Submit(mkJob(t, 8, 1))
	h2, _ := b.Submit(mkJob(t, 8, 1))
	for n := uint64(1); n <= 16; n++ {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign)
		if !ok {
			t.Fatalf("node %d starved", n)
		}
		b.HandleResult(&TaskResult{NodeID: n, JobID: a.JobID, TaskID: a.TaskID, Payload: []byte("r")})
	}
	if _, done := h1.Done(); !done {
		t.Fatal("job 1 incomplete")
	}
	if _, done := h2.Done(); !done {
		t.Fatal("job 2 incomplete")
	}
	if got := b.ActiveTasks(); got != 0 {
		t.Fatalf("active tasks = %d after all jobs completed, want 0", got)
	}
	if got := b.open.Load(); got != 0 {
		t.Fatalf("open tasks = %d after all jobs completed, want 0", got)
	}
}

// One reclaim pass requeues at most the task's replica deficit. A task
// with two expired leases but a quorum gap of one must put exactly one
// slot back — before the fix, every expired lease appended a slot
// unconditionally, inflating the in-flight count the quorum top-up math
// in HandleResult relies on.
func TestReclaimRequeueCappedAtDeficit(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3) // quorum 2, lease ≈ 34 s
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []uint64{1, 2, 3} {
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign); !ok {
			t.Fatalf("node %d not served", n)
		}
	}
	// Nodes 1 and 2 disagree; node 3's replica stays leased.
	b.HandleResult(&TaskResult{NodeID: 1, JobID: 1, TaskID: 0, Payload: []byte("a")})
	b.HandleResult(&TaskResult{NodeID: 2, JobID: 1, TaskID: 0, Payload: []byte("b")})
	// Graft a fourth, already-expired lease onto the task (as left by an
	// earlier top-up whose node vanished): the task now carries two
	// expired leases at reclaim time but only one slot of deficit.
	key := taskKey{job: 1, task: 0}
	s := b.shardFor(key)
	s.mu.Lock()
	ts := s.active[key]
	ghostDeadline := epoch.Add(time.Second)
	ts.outstanding[99] = ghostDeadline
	s.leases.push(leaseEntry{at: ghostDeadline, key: key, node: 99})
	ts.launched++
	s.mu.Unlock()
	clk.AfterFunc(60*time.Second, func() {
		// Both leases (ghost at 1 s, node 3 at ≈34 s) are expired. One
		// reclaim pass must requeue exactly one slot: node 5 gets it,
		// node 6 must find nothing.
		a, ok := b.HandleRequest(&TaskRequest{NodeID: 5}).(*TaskAssign)
		if !ok {
			t.Error("deficit slot not requeued")
			return
		}
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: 6}).(*NoTask); !ok {
			t.Error("reclaim requeued past the replica deficit")
		}
		b.HandleResult(&TaskResult{NodeID: 5, JobID: a.JobID, TaskID: a.TaskID,
			Payload: []byte("a")})
	})
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	if got := h.Results()[0]; string(got) != "a" {
		t.Fatalf("committed %q, want a", got)
	}
	if b.Unresolved != 0 {
		t.Fatalf("unresolved = %d", b.Unresolved)
	}
	if h.Redispatches() != 2 {
		t.Fatalf("redispatches = %d, want 2 (ghost and node 3)", h.Redispatches())
	}
}

// Draining flips NoTask.Done exactly when the last task commits, and
// back off again when draining is cleared.
func TestDrainingSignalsDoneOnlyWhenAllCommitted(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	b.Submit(mkJob(t, 2, 1))
	b.SetDraining(true)
	a1 := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign)
	a2 := b.HandleRequest(&TaskRequest{NodeID: 2}).(*TaskAssign)
	if nt := b.HandleRequest(&TaskRequest{NodeID: 3}).(*NoTask); nt.Done {
		t.Fatal("Done with both tasks still leased")
	}
	b.HandleResult(&TaskResult{NodeID: 1, JobID: a1.JobID, TaskID: a1.TaskID})
	if nt := b.HandleRequest(&TaskRequest{NodeID: 3}).(*NoTask); nt.Done {
		t.Fatal("Done with one task still open")
	}
	b.HandleResult(&TaskResult{NodeID: 2, JobID: a2.JobID, TaskID: a2.TaskID})
	nt := b.HandleRequest(&TaskRequest{NodeID: 3}).(*NoTask)
	if !nt.Done {
		t.Fatal("draining backend with no open tasks should dismiss workers")
	}
	if nt.RetryAfter <= 0 {
		t.Fatalf("retry-after = %v", nt.RetryAfter)
	}
	b.SetDraining(false)
	if nt := b.HandleRequest(&TaskRequest{NodeID: 3}).(*NoTask); nt.Done {
		t.Fatal("Done after draining was cleared")
	}
}

// The ready queue is a ring buffer: interleaved front/back pushes and
// pops across growth boundaries preserve FIFO order.
func TestReadyQueueWraparound(t *testing.T) {
	mk := func(i int) *taskState { return &taskState{key: taskKey{job: 1, task: i}} }
	var q readyQueue
	for i := 0; i < 5; i++ {
		q.pushBack(mk(i))
	}
	for i := 0; i < 3; i++ {
		if got := q.popFront(); got.key.task != i {
			t.Fatalf("pop %d = task %d", i, got.key.task)
		}
	}
	// Wrap: head is past the midpoint; these pushes wrap around.
	for i := 5; i < 12; i++ {
		q.pushBack(mk(i))
	}
	q.pushFront(mk(99))
	want := []int{99, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if q.len() != len(want) {
		t.Fatalf("len = %d, want %d", q.len(), len(want))
	}
	for _, w := range want {
		if got := q.popFront(); got.key.task != w {
			t.Fatalf("pop = task %d, want %d", got.key.task, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after draining", q.len())
	}
}

// The lease heap pops entries in deadline order regardless of insertion
// order.
func TestLeaseHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	var h leaseHeap
	const n = 200
	for i := 0; i < n; i++ {
		h.push(leaseEntry{
			at:   epoch.Add(time.Duration(rng.Intn(1_000_000)) * time.Millisecond),
			key:  taskKey{job: 1, task: i},
			node: uint64(i),
		})
	}
	if h.len() != n {
		t.Fatalf("len = %d", h.len())
	}
	prev, _ := h.peek()
	for h.len() > 0 {
		e := h.popMin()
		if e.at.Before(prev.at) {
			t.Fatalf("heap popped %v after %v", e.at, prev.at)
		}
		prev = e
	}
	if _, ok := h.peek(); ok {
		t.Fatal("peek on empty heap")
	}
}

// Tasks spread across shards and single-task jobs are still found by
// any node regardless of its hash offset.
func TestShardScanFindsWorkAnywhere(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b, err := New(Config{Clock: clk, Shards: 8, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Whatever shard the task hashed to, an arbitrary node finds it.
	a, ok := b.HandleRequest(&TaskRequest{NodeID: 0xdeadbeef}).(*TaskAssign)
	if !ok {
		t.Fatal("single-task job not reachable across shards")
	}
	b.HandleResult(&TaskResult{NodeID: 0xdeadbeef, JobID: a.JobID, TaskID: a.TaskID})
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
}
