package backend

import (
	"sync"
	"time"
)

// taskKey identifies one task globally. It replaces the old
// fmt.Sprintf("%d/%d") string lease key: an integer pair hashes and
// compares without allocating on the dispatch path.
type taskKey struct {
	job  int
	task int
}

// mix64 is a SplitMix64-style finalizer: cheap, well-distributed bits
// for shard selection.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (k taskKey) hash() uint64 {
	return mix64(uint64(k.job)*0x9e3779b97f4a7c15 + uint64(k.task))
}

// shard is one stripe of the scheduler. Tasks are pinned to a shard by
// taskKey hash, so every per-task mutation (dispatch, vote, lease
// bookkeeping) takes only that stripe's lock; worker connections
// hitting different stripes proceed in parallel.
type shard struct {
	mu     sync.Mutex
	ready  readyQueue // dispatchable slots, FIFO
	leases leaseHeap  // outstanding leases by deadline, lazily invalidated
	active map[taskKey]*taskState
}

// readyQueue is a ring-buffer FIFO of dispatchable task slots. Pops and
// pushes are O(1); the old slice-based queue copied the whole backlog on
// every head removal, which dominated dispatch cost at 10k+ pending.
// Capacity is kept a power of two so the index wraps with a mask.
type readyQueue struct {
	buf  []*taskState
	head int
	n    int
}

func (q *readyQueue) len() int { return q.n }

func (q *readyQueue) grow() {
	c := len(q.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]*taskState, c)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

func (q *readyQueue) pushBack(ts *taskState) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = ts
	q.n++
}

func (q *readyQueue) pushFront(ts *taskState) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = ts
	q.n++
}

func (q *readyQueue) popFront() *taskState {
	ts := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return ts
}

// leaseEntry records one granted lease for expiry tracking. Entries are
// never removed eagerly: an entry is live only while the task is still
// active and the node's recorded deadline equals at, so results and
// re-leases invalidate old entries for free.
type leaseEntry struct {
	at   time.Time
	key  taskKey
	node uint64
}

// leaseHeap is a binary min-heap on deadline. Reclamation pops only
// actually-expired entries (O(log n) each) instead of sweeping the
// whole active-task map per idle request.
type leaseHeap []leaseEntry

func (h leaseHeap) len() int { return len(h) }

func (h leaseHeap) peek() (leaseEntry, bool) {
	if len(h) == 0 {
		return leaseEntry{}, false
	}
	return h[0], true
}

func (h *leaseHeap) push(e leaseEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].at.Before(s[p].at) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *leaseHeap) popMin() leaseEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = leaseEntry{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && s[l].at.Before(s[min].at) {
			min = l
		}
		if r < n && s[r].at.Before(s[min].at) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
