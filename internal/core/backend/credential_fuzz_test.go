package backend

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCredential hammers the credential codec with arbitrary secrets
// and tokens: DecodeCredential must never panic, anything it accepts
// must be canonical (re-encoding the decoded binding under the same
// secret reproduces the token bit-exactly), a freshly issued credential
// must always round-trip, and any single-byte tamper of a fresh token
// must read as forged.
func FuzzCredential(f *testing.F) {
	secret := []byte("0123456789abcdef0123456789abcdef")
	good := AppendCredential(nil, secret, 1, 2, 3, 4)
	tampered := append([]byte(nil), good...)
	tampered[CredentialLen-1] ^= 1
	f.Add(secret, good, byte(0))
	f.Add([]byte{}, good, byte(7))
	f.Add(secret, good[:CredentialLen-1], byte(1))
	f.Add(secret, tampered, byte(63))
	f.Add(secret, []byte{}, byte(0))
	f.Add(secret, AppendCredential(nil, secret, ^uint64(0), 0, -1, 1<<31), byte(32))

	f.Fuzz(func(t *testing.T, secret, cred []byte, flip byte) {
		seq, node, job, task, err := DecodeCredential(secret, cred)
		if err == nil {
			if re := AppendCredential(nil, secret, seq, node, job, task); !bytes.Equal(re, cred) {
				t.Fatal("accepted credential is not canonical")
			}
		}
		// Issue a fresh token for a binding derived from the input and
		// check both directions of the verify contract.
		fseq := seq + uint64(flip) + 1
		fresh := AppendCredential(nil, secret, fseq, node+1, job, task)
		s2, n2, j2, t2, err := DecodeCredential(secret, fresh)
		if err != nil {
			t.Fatalf("fresh credential rejected: %v", err)
		}
		if s2 != fseq || n2 != node+1 || j2 != job || t2 != task {
			t.Fatalf("fresh credential binding mutated: (%d,%d,%d,%d) != (%d,%d,%d,%d)",
				s2, n2, j2, t2, fseq, node+1, job, task)
		}
		fresh[int(flip)%CredentialLen] ^= flip | 1 // guaranteed to change the byte
		if _, _, _, _, err := DecodeCredential(secret, fresh); !errors.Is(err, ErrCredentialForged) {
			t.Fatalf("tampered credential not forged: %v", err)
		}
	})
}
