package backend

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/simtime"
)

// Property test for the quorum top-up math (slotDeficitLocked and the
// HandleResult top-up loop): over a randomized Replication ×
// MaxReplicas × vote-order grid with liars, dropped leases, duplicate
// submissions, and lease expiries interleaved, it holds that
//
//  1. a committed value is always a weighted-plurality winner of the
//     votes the backend actually accepted,
//  2. launched+queued never exceeds MaxReplicas (the replica budget),
//  3. expiry refunds never drive a slot counter negative, and the
//     outstanding-lease count never exceeds the launched slots.

// budgetViolations walks every live task and reports violations of the
// slot-accounting invariants the top-up math relies on.
func budgetViolations(b *Backend) []string {
	var bad []string
	for _, s := range b.shards {
		s.mu.Lock()
		for _, ts := range s.active {
			if ts.launched < 0 || ts.queued < 0 || ts.retries < 0 {
				bad = append(bad, fmt.Sprintf("task %+v: negative counter launched=%d queued=%d retries=%d",
					ts.key, ts.launched, ts.queued, ts.retries))
			}
			if ts.launched+ts.queued > b.cfg.MaxReplicas {
				bad = append(bad, fmt.Sprintf("task %+v: launched+queued = %d+%d exceeds MaxReplicas %d",
					ts.key, ts.launched, ts.queued, b.cfg.MaxReplicas))
			}
			if len(ts.outstanding) > ts.launched {
				bad = append(bad, fmt.Sprintf("task %+v: %d outstanding leases exceed %d launched slots",
					ts.key, len(ts.outstanding), ts.launched))
			}
		}
		s.mu.Unlock()
	}
	return bad
}

// propVote mirrors one vote the backend accepted: the payload and the
// weight snapshotted at submission time (exactly what the backend
// stores).
type propVote struct {
	payload string
	weight  int64
}

type propTrial struct {
	t     *testing.T
	trial int
	b     *Backend
	h     *JobHandle
	liars int

	votes     map[int][]propVote      // accepted votes by task ID
	voted     map[int]map[uint64]bool // which nodes' votes were accepted
	committed map[int]bool
	failed    bool
}

// payloadFor is a node's answer: honest nodes agree on "ok", liars
// collude in two parity classes so agreeing wrong answers occur.
func (p *propTrial) payloadFor(node uint64) []byte {
	if node <= uint64(p.liars) {
		return []byte(fmt.Sprintf("lie-%d", node%2))
	}
	return []byte("ok")
}

// submit plays one result into the backend, mirroring the accept/drop
// decision (quarantine, already-committed, duplicate vote) so the
// plurality check below sees exactly the votes the backend counted.
func (p *propTrial) submit(node uint64, jobID, taskID int) {
	payload := p.payloadFor(node)
	weight := p.b.voteWeight(node) // snapshot before commit can move it
	accepted := !p.b.trust.quarantined(node) && !p.committed[taskID] && !p.voted[taskID][node]
	p.b.HandleResult(&TaskResult{NodeID: node, JobID: jobID, TaskID: taskID, Payload: payload})
	if accepted {
		if p.voted[taskID] == nil {
			p.voted[taskID] = make(map[uint64]bool)
		}
		p.voted[taskID][node] = true
		p.votes[taskID] = append(p.votes[taskID], propVote{string(payload), weight})
	}
	p.check()
}

// check asserts the budget invariants and audits any newly committed
// task: the committed payload must have been voted, and its weighted
// support must be no lower than any rival payload's.
func (p *propTrial) check() {
	for _, v := range budgetViolations(p.b) {
		p.t.Errorf("trial %d: %s", p.trial, v)
		p.failed = true
	}
	for id, got := range p.h.Results() {
		if p.committed[id] {
			continue
		}
		p.committed[id] = true
		sums := make(map[string]int64)
		for _, v := range p.votes[id] {
			sums[v.payload] += v.weight
		}
		w, cast := sums[string(got)]
		if !cast {
			p.t.Errorf("trial %d: task %d committed %q, which no accepted vote carried", p.trial, id, got)
			p.failed = true
			continue
		}
		for pay, sum := range sums {
			if sum > w {
				p.t.Errorf("trial %d: task %d committed %q (weight %d) over plurality winner %q (weight %d)",
					p.trial, id, got, w, pay, sum)
				p.failed = true
			}
		}
		if string(got) != "ok" {
			// With fewer than quorum liars and MaxReplicas ≥ Replication
			// this is unreachable (see the exhaustion-commit analysis in
			// DESIGN.md) — a wrong commit here is a safety regression.
			p.t.Errorf("trial %d: task %d committed liar payload %q", p.trial, id, got)
			p.failed = true
		}
	}
}

type pendingAssign struct {
	node uint64
	a    *TaskAssign
}

func runQuorumTrial(t *testing.T, trial int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	repl := 1 + rng.Intn(5)
	maxR := repl + rng.Intn(2*repl+1)
	// Fewer than quorum liars, and enough honest nodes that every task
	// can always reach quorum even after liars are quarantined.
	liars := rng.Intn((repl-1)/2 + 1)
	nodes := repl + liars + 4 + rng.Intn(6)
	tasks := 1 + rng.Intn(6)

	clk := simtime.NewSim(epoch)
	b, err := New(Config{Clock: clk, Replication: repl, MaxReplicas: maxR,
		LeaseBase: 30 * time.Second, RetryAfter: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(mkJob(t, tasks, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := &propTrial{t: t, trial: trial, b: b, h: h, liars: liars,
		votes: make(map[int][]propVote), voted: make(map[int]map[uint64]bool),
		committed: make(map[int]bool)}

	clk.Go(func() {
		var pending, answered []pendingAssign
		drop := func(i int) pendingAssign {
			pa := pending[i]
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			return pa
		}
		for step := 0; step < 250 && !p.failed; step++ {
			switch rng.Intn(12) {
			case 0, 1, 2, 3, 4: // ask for work
				node := uint64(1 + rng.Intn(nodes))
				if a, ok := b.HandleRequest(&TaskRequest{NodeID: node}).(*TaskAssign); ok {
					pending = append(pending, pendingAssign{node, a})
				}
				p.check()
			case 5, 6, 7, 8: // answer a random outstanding assignment
				if len(pending) == 0 {
					continue
				}
				pa := drop(rng.Intn(len(pending)))
				p.submit(pa.node, pa.a.JobID, pa.a.TaskID)
				answered = append(answered, pa)
			case 9: // duplicate or post-commit straggler re-submission
				if len(answered) == 0 {
					continue
				}
				pa := answered[rng.Intn(len(answered))]
				p.submit(pa.node, pa.a.JobID, pa.a.TaskID)
			case 10: // lose an assignment; its lease must expire and refund
				if len(pending) > 0 {
					drop(rng.Intn(len(pending)))
				}
			case 11: // let virtual time pass (expires some leases)
				clk.Sleep(time.Duration(1+rng.Intn(120)) * time.Second)
			}
		}
		// Drain: answer leftovers, then serve every node promptly until
		// the job commits. Liars keep lying; quarantine retires them.
		for len(pending) > 0 && !p.failed {
			pa := drop(rng.Intn(len(pending)))
			p.submit(pa.node, pa.a.JobID, pa.a.TaskID)
		}
		for round := 0; round < 400 && !p.failed; round++ {
			if _, done := h.Done(); done {
				break
			}
			clk.Sleep(3 * time.Minute)
			for n := 1; n <= nodes && !p.failed; n++ {
				for {
					a, ok := b.HandleRequest(&TaskRequest{NodeID: uint64(n)}).(*TaskAssign)
					if !ok {
						break
					}
					p.submit(uint64(n), a.JobID, a.TaskID)
					if p.failed {
						break
					}
				}
			}
		}
		if p.failed {
			return
		}
		if _, done := h.Done(); !done {
			p.t.Errorf("trial %d: job wedged (R=%d maxR=%d liars=%d nodes=%d tasks=%d)",
				trial, repl, maxR, liars, nodes, tasks)
			return
		}
		if got := b.ActiveTasks(); got != 0 {
			p.t.Errorf("trial %d: %d tasks still active after completion", trial, got)
		}
		if got := b.open.Load(); got != 0 {
			p.t.Errorf("trial %d: open count %d after completion", trial, got)
		}
	})
	clk.Wait()
}

func TestQuorumTopUpProperty(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		runQuorumTrial(t, trial, 0x0DDC1+int64(trial)*0x9E3779B9)
		if t.Failed() {
			return
		}
	}
}
