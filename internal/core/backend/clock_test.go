package backend

import (
	"testing"
	"time"

	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// TestDispatchLatencyUsesInjectedClock is the wall-clock-leak
// regression: under a frozen Sim clock the dispatch-latency histogram
// must record exact zeros, and two identical runs must produce
// byte-identical telemetry — HandleRequest used to stamp time.Now(),
// which smeared host jitter into deterministic replays.
func TestDispatchLatencyUsesInjectedClock(t *testing.T) {
	run := func() (*obs.Registry, int64, float64) {
		clk := simtime.NewSim(epoch)
		reg := obs.NewRegistry()
		b, err := New(Config{Clock: clk, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Submit(mkJob(t, 4, 1)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			b.HandleRequest(&TaskRequest{NodeID: uint64(i%3 + 1)})
		}
		h := b.met.dispatchLat
		return reg, h.Count(), h.Sum()
	}
	reg1, count, sum := run()
	if count != 8 {
		t.Fatalf("histogram count = %d, want 8", count)
	}
	if sum != 0 {
		t.Fatalf("histogram sum = %v under a frozen sim clock, want exactly 0", sum)
	}
	reg2, _, _ := run()
	if a, b := reg1.RenderPrometheus(), reg2.RenderPrometheus(); a != b {
		t.Fatalf("identical frozen-clock runs rendered different telemetry:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
}

// TestDispatchLatencyAdvancesWithSimTime: when virtual time moves
// between the entry and exit stamps (it cannot inside dispatch, which
// never blocks, but the seam is the injected clock), the histogram
// tracks virtual seconds. Guarded by observing a nonzero virtual
// latency through a wrapped clock.
func TestDispatchLatencyAdvancesWithSimTime(t *testing.T) {
	clk := simtime.NewSim(epoch)
	reg := obs.NewRegistry()
	b, err := New(Config{Clock: &steppingClock{Sim: clk, step: 3 * time.Millisecond}, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	b.HandleRequest(&TaskRequest{NodeID: 1})
	if got := b.met.dispatchLat.Sum(); got <= 0 {
		t.Fatalf("histogram sum = %v, want the virtual time the injected clock advanced", got)
	}
}

// steppingClock advances its Sim base by step on every Now call,
// emulating virtual time passing between the entry and exit stamps.
type steppingClock struct {
	*simtime.Sim
	step    time.Duration
	elapsed time.Duration
}

func (c *steppingClock) Now() time.Time {
	now := c.Sim.Now().Add(c.elapsed)
	c.elapsed += c.step
	return now
}
