package backend

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Result credentials. Every dispatch in a credentialed deployment hands
// the worker an opaque token bound to (seq, node, job, task); the worker
// echoes it with its result, and the Backend — the only holder of the
// MAC secret — verifies the echo before counting the vote. A forged
// token fails the MAC; a genuine token presented for the wrong slot
// (another node's lease, another task, or a lease that was re-granted
// since) is a replay. Nodes never verify credentials, so no key is
// distributed: the token round-trips as opaque bytes.
//
// The MAC is HMAC-SHA256 over the 32-byte binding prefix, not an
// ed25519 signature: credentials are issued and verified by the same
// party on the dispatch hot path, so a keyed hash gives the same
// unforgeability against nodes at a fraction of the signing cost.

// CredentialMode selects how the Backend treats result credentials.
type CredentialMode int

// Credential modes. CredOff is the pre-credential wire (nothing issued
// or checked). CredWarn issues and verifies but still accepts bad or
// missing echoes — the mixed-fleet migration mode. CredEnforce rejects
// them and penalizes the sender's credibility.
const (
	CredOff CredentialMode = iota
	CredWarn
	CredEnforce
)

// CredentialLen is the wire size of a credential:
// seq(8) | node(8) | job(8) | task(8) | mac(32).
const CredentialLen = 64

// credentialSecretLen is the generated MAC secret size.
const credentialSecretLen = 32

// Credential decode/verify errors.
var (
	ErrCredentialMalformed = errors.New("backend: malformed credential")
	ErrCredentialForged    = errors.New("backend: forged credential")
	ErrCredentialReplayed  = errors.New("backend: replayed credential")
)

// AppendCredential appends the credential binding (seq, node, job, task)
// under secret to dst.
func AppendCredential(dst []byte, secret []byte, seq, node uint64, job, task int) []byte {
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, node)
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(job)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(task)))
	mac := hmac.New(sha256.New, secret)
	mac.Write(dst[len(dst)-32:])
	return mac.Sum(dst)
}

// DecodeCredential checks cred's shape and MAC under secret and returns
// its bound fields. It does not know which slot the credential was
// issued for — callers compare the fields against the submitting slot to
// tell a replay from a genuine echo.
func DecodeCredential(secret, cred []byte) (seq, node uint64, job, task int, err error) {
	if len(cred) != CredentialLen {
		return 0, 0, 0, 0, ErrCredentialMalformed
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(cred[:32])
	if !hmac.Equal(mac.Sum(nil), cred[32:]) {
		return 0, 0, 0, 0, ErrCredentialForged
	}
	seq = binary.BigEndian.Uint64(cred)
	node = binary.BigEndian.Uint64(cred[8:])
	job = int(int64(binary.BigEndian.Uint64(cred[16:])))
	task = int(int64(binary.BigEndian.Uint64(cred[24:])))
	return seq, node, job, task, nil
}

// credVerdict classifies one result's credential.
type credVerdict int

const (
	credOK credVerdict = iota
	credMissing
	credForged   // malformed or failing the MAC: cryptographic proof of tampering
	credReplayed // genuine token, wrong slot: stale seq or another lease's binding
)

// verifyCredentialLocked classifies res's credential against the seq the
// task last issued to that node. Called with ts's shard lock held.
func (b *Backend) verifyCredentialLocked(ts *taskState, res *TaskResult) credVerdict {
	if len(res.Credential) == 0 {
		return credMissing
	}
	seq, node, job, task, err := DecodeCredential(b.trust.secret, res.Credential)
	if err != nil {
		return credForged
	}
	issued, ok := ts.credSeqs[res.NodeID]
	if !ok || seq != issued || node != res.NodeID || job != res.JobID || task != res.TaskID {
		return credReplayed
	}
	return credOK
}

// generateCredentialSecret draws a fresh MAC secret.
func generateCredentialSecret() ([]byte, error) {
	secret := make([]byte, credentialSecretLen)
	if _, err := rand.Read(secret); err != nil {
		return nil, err
	}
	return secret, nil
}
