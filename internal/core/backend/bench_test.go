package backend

import (
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// benchJob builds one n-task job with trivial payloads.
func benchJob(b *testing.B, n int) *workload.Job {
	b.Helper()
	tasks := make([]workload.Task, n)
	for i := range tasks {
		tasks[i] = workload.Task{ID: i, InputBytes: 64, OutputBytes: 32, STBSeconds: 1}
	}
	return &workload.Job{Name: "bench", Tasks: tasks}
}

// benchBackend builds a real-clock backend with n tasks queued.
func benchBackend(b *testing.B, tasks int) *Backend {
	b.Helper()
	be, err := New(Config{Clock: simtime.NewReal(), LeaseBase: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	submitted := 0
	for submitted < tasks {
		n := tasks - submitted
		if n > 100_000 {
			n = 100_000
		}
		if _, err := be.Submit(benchJob(b, n)); err != nil {
			b.Fatal(err)
		}
		submitted += n
	}
	return be
}

// BenchmarkHandleRequestParallel measures the dispatch path under
// concurrent workers against a backlog that never drops below 10k
// pending tasks — the regime where the pre-indexed scheduler's
// O(pending) scan and head-of-slice removal dominated.
func BenchmarkHandleRequestParallel(b *testing.B) {
	const floor = 10_000
	be := benchBackend(b, b.N+floor)
	var nodeSeq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		node := nodeSeq.Add(1)
		for pb.Next() {
			if _, ok := be.HandleRequest(&TaskRequest{NodeID: node}).(*TaskAssign); !ok {
				b.Error("dispatch starved with pending backlog")
				return
			}
		}
	})
}

// BenchmarkHandleResultParallel measures the result-commit path: every
// task is pre-assigned, then results stream back concurrently.
func BenchmarkHandleResultParallel(b *testing.B) {
	be := benchBackend(b, b.N)
	assigns := make([]*TaskAssign, 0, b.N)
	for i := 0; i < b.N; i++ {
		a, ok := be.HandleRequest(&TaskRequest{NodeID: uint64(i%4096 + 1)}).(*TaskAssign)
		if !ok {
			b.Fatal("setup dispatch starved")
		}
		assigns = append(assigns, a)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1) - 1
			a := assigns[i]
			be.HandleResult(&TaskResult{NodeID: uint64(i%4096 + 1), JobID: a.JobID,
				TaskID: a.TaskID, Payload: []byte("r")})
		}
	})
}

// BenchmarkEndToEndThroughput100k measures whole request→result task
// round-trips against 100k-task jobs, the end-to-end scheduler
// throughput number tracked by `oddci-bench -sweep backend`.
func BenchmarkEndToEndThroughput100k(b *testing.B) {
	be := benchBackend(b, ((b.N/100_000)+1)*100_000)
	var nodeSeq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		node := nodeSeq.Add(1)
		for pb.Next() {
			a, ok := be.HandleRequest(&TaskRequest{NodeID: node}).(*TaskAssign)
			if !ok {
				b.Error("dispatch starved")
				return
			}
			be.HandleResult(&TaskResult{NodeID: node, JobID: a.JobID, TaskID: a.TaskID,
				Payload: []byte("r")})
		}
	})
}
