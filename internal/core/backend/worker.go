package backend

import (
	"oddci/internal/core/dve"
)

// WorkerEntryPoint is the image entry point of the generic bag-of-tasks
// worker, registered on every node's DVE registry by the system wiring.
const WorkerEntryPoint = "oddci.worker"

// Worker is the paper's "client module": the application that runs
// inside a DVE, pulling tasks from the Backend over the direct channel,
// executing them on the device CPU, and pushing results back. It runs
// until the Backend reports the work done or the DVE is destroyed.
func Worker(env *dve.Env) error {
	if env.Backend == nil {
		return nil
	}
	for !env.Destroyed() {
		// Propagate the DVE's trace context (the PNA's dve-start span)
		// so the Backend's dispatch span joins this node's wakeup trace.
		env.Backend.Send("backend", &TaskRequest{NodeID: env.NodeID, Trace: env.Trace}, RequestWireSize)
		pkt, err := env.Backend.Recv()
		if err != nil {
			return nil // channel closed: DVE destroyed
		}
		switch m := pkt.Payload.(type) {
		case *TaskAssign:
			if !env.Execute(m.RefSeconds) {
				return nil // destroyed mid-task: result discarded
			}
			// The result parents under the dispatch that assigned it,
			// falling back to the DVE context against traced backends
			// reached through an untraced relay.
			resTrace := m.Trace
			if !resTrace.Valid() {
				resTrace = env.Trace
			}
			result := &TaskResult{
				NodeID:     env.NodeID,
				JobID:      m.JobID,
				TaskID:     m.TaskID,
				Payload:    runPayload(env, m),
				Trace:      resTrace,
				Credential: m.Credential, // opaque echo; the Backend verifies
			}
			env.Backend.Send("backend", result, resultOverhead+m.OutputSize)
			env.NoteTaskDone()
		case *NoTask:
			if m.Done {
				return nil
			}
			if !env.Sleep(m.RetryAfter) {
				return nil
			}
		}
	}
	return nil
}

// runPayload produces the task's result payload. Tasks that carry
// concrete work (a BLAST work unit) are actually executed; pure timing
// tasks return nothing.
func runPayload(env *dve.Env, a *TaskAssign) []byte {
	if len(a.Payload) == 0 {
		return nil
	}
	return RunConcrete(a.Payload)
}

// RunConcrete executes a concrete task payload if a handler is
// registered. The default understands nothing and echoes nil; the blast
// farm example installs a handler. Kept as a package variable so the
// simulator does not depend on application packages.
var RunConcrete = func(payload []byte) []byte { return nil }
