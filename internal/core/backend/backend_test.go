package backend

import (
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/dve"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func newBackend(t *testing.T, clk simtime.Clock) *Backend {
	t.Helper()
	b, err := New(Config{Clock: clk, RetryAfter: 5 * time.Second, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mkJob(t *testing.T, n int, p float64) *workload.Job {
	t.Helper()
	g := workload.Generator{Name: "t", Tasks: n, InputBytes: 512, OutputBytes: 256, MeanSeconds: p}
	j, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// dial opens a worker-side channel served by the backend, returning the
// client endpoint and a hangup that releases both sides.
func dial(clk simtime.Clock, b *Backend) (*netsim.Endpoint, func()) {
	cfg := netsim.LinkConfig{RateBps: 150e3}
	client, srv := netsim.NewDuplex(clk, "node", "backend", cfg, cfg)
	clk.Go(func() { b.Serve(srv) })
	return client, func() {
		client.Close()
		srv.Close()
	}
}

func TestAssignAndComplete(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h, err := b.Submit(mkJob(t, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	b.SetDraining(true) // wind the worker down when the work is gone
	ep, hangup := dial(clk, b)
	clk.Go(func() {
		defer hangup()
		for {
			ep.Send("backend", &TaskRequest{NodeID: 1}, RequestWireSize)
			pkt, err := ep.Recv()
			if err != nil {
				return
			}
			switch m := pkt.Payload.(type) {
			case *TaskAssign:
				clk.Sleep(time.Duration(m.RefSeconds * float64(time.Second)))
				ep.Send("backend", &TaskResult{NodeID: 1, JobID: m.JobID, TaskID: m.TaskID}, 256)
			case *NoTask:
				if m.Done {
					return
				}
				clk.Sleep(m.RetryAfter)
			}
		}
	})
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job not completed")
	}
	ms, ok := h.Makespan()
	if !ok || ms <= 0 {
		t.Fatalf("makespan = %v, %v", ms, ok)
	}
	if b.Assigned != 3 || b.Completed != 3 {
		t.Fatalf("assigned=%d completed=%d", b.Assigned, b.Completed)
	}
}

func TestLeaseExpiryRedispatch(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h, err := b.Submit(mkJob(t, 1, 1)) // lease ≈ 4s + 30s base
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 takes the task and dies.
	if a, ok := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign); !ok {
		t.Fatalf("expected assignment, got %+v", a)
	}
	// Before expiry: no work available.
	if _, ok := b.HandleRequest(&TaskRequest{NodeID: 2}).(*NoTask); !ok {
		t.Fatal("task double-assigned inside lease")
	}
	// After expiry: re-dispatched.
	clk.AfterFunc(60*time.Second, func() {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: 2}).(*TaskAssign)
		if !ok {
			t.Error("expired lease not re-dispatched")
			return
		}
		b.HandleResult(&TaskResult{NodeID: 2, JobID: a.JobID, TaskID: a.TaskID})
	})
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job not completed after re-dispatch")
	}
	if h.Redispatches() != 1 {
		t.Fatalf("redispatches = %d", h.Redispatches())
	}
}

func TestLateDuplicateResultIgnored(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h, _ := b.Submit(mkJob(t, 1, 1))
	a := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign)
	b.HandleResult(&TaskResult{NodeID: 1, JobID: a.JobID, TaskID: a.TaskID, Payload: []byte("first")})
	b.HandleResult(&TaskResult{NodeID: 9, JobID: a.JobID, TaskID: a.TaskID, Payload: []byte("dup")})
	if got := h.Results()[a.TaskID]; string(got) != "first" {
		t.Fatalf("result = %q, want first", got)
	}
	if b.Completed != 1 {
		t.Fatalf("completed = %d", b.Completed)
	}
}

func TestNoTaskDoneSignalling(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	nt := b.HandleRequest(&TaskRequest{NodeID: 1}).(*NoTask)
	if nt.Done {
		t.Fatal("idle backend must not dismiss workers (instance lifetime is the Provider's)")
	}
	b.SetDraining(true)
	nt = b.HandleRequest(&TaskRequest{NodeID: 1}).(*NoTask)
	if !nt.Done {
		t.Fatal("draining empty backend should report Done")
	}
	b.SetDraining(false)
	b.Submit(mkJob(t, 1, 1))
	nt2, ok := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign)
	if !ok {
		t.Fatalf("expected assignment, got %+v", nt2)
	}
	// Task outstanding (leased): not done yet.
	nt3 := b.HandleRequest(&TaskRequest{NodeID: 2}).(*NoTask)
	if nt3.Done {
		t.Fatal("Done while a task is still leased")
	}
}

func TestOnCompleteAfterDoneFiresImmediately(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h, _ := b.Submit(mkJob(t, 1, 1))
	a := b.HandleRequest(&TaskRequest{NodeID: 1}).(*TaskAssign)
	b.HandleResult(&TaskResult{NodeID: 1, JobID: a.JobID, TaskID: a.TaskID})
	fired := false
	h.OnComplete(func(time.Time) { fired = true })
	if !fired {
		t.Fatal("late OnComplete not fired")
	}
}

func TestSubmitEmptyJobRejected(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	if _, err := b.Submit(&workload.Job{}); err == nil {
		t.Fatal("empty job accepted")
	}
}

func TestTwoJobsInterleaved(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	h1, _ := b.Submit(mkJob(t, 2, 1))
	h2, _ := b.Submit(mkJob(t, 2, 1))
	for i := 0; i < 4; i++ {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: uint64(i)}).(*TaskAssign)
		if !ok {
			t.Fatalf("request %d starved", i)
		}
		b.HandleResult(&TaskResult{NodeID: uint64(i), JobID: a.JobID, TaskID: a.TaskID})
	}
	if _, d1 := h1.Done(); !d1 {
		t.Fatal("job 1 incomplete")
	}
	if _, d2 := h2.Done(); !d2 {
		t.Fatal("job 2 incomplete")
	}
}

// Worker is exercised directly (not through the full system): it must
// pull, execute with the device model, run concrete payloads, and exit
// on Done.
func TestWorkerLoopDirect(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	job := mkJob(t, 4, 1)
	job.Tasks[2].Payload = []byte("concrete-input")
	h, err := b.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if h.SubmittedAt() != epoch {
		t.Fatalf("submitted at %v", h.SubmittedAt())
	}
	b.SetDraining(true)

	prev := RunConcrete
	defer func() { RunConcrete = prev }()
	var sawPayload []byte
	RunConcrete = func(p []byte) []byte {
		sawPayload = p
		return []byte("concrete-output")
	}

	ep, hangup := dial(clk, b)
	reg := dve.NewRegistry()
	reg.Register(WorkerEntryPoint, Worker)
	d, err := dve.Launch(dve.Config{
		Clock:    clk,
		Registry: reg,
		Image:    &appimage.Image{Name: "w", EntryPoint: WorkerEntryPoint, Payload: []byte{1}},
		NodeID:   9,
		Backend:  ep,
		Hangup:   hangup,
		TaskDuration: func(ref float64) time.Duration {
			return time.Duration(ref * 2 * float64(time.Second)) // 2× slow device
		},
		// In the full system the PNA destroys the DVE when the worker
		// returns; here the test releases the channel itself.
		OnExit: func(error) { hangup() },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Wait()
	if done, err := d.Done(); !done || err != nil {
		t.Fatalf("worker done=%v err=%v", done, err)
	}
	if _, ok := h.Done(); !ok {
		t.Fatal("job incomplete")
	}
	if string(sawPayload) != "concrete-input" {
		t.Fatalf("payload = %q", sawPayload)
	}
	if string(h.Results()[2]) != "concrete-output" {
		t.Fatalf("concrete result = %q", h.Results()[2])
	}
	// 4 tasks × 1 ref-second × 2 slowdown on one worker ≥ 8 s.
	if ms, _ := h.Makespan(); ms < 8*time.Second {
		t.Fatalf("makespan %v ignores the device model", ms)
	}
}

// Task IDs are caller-chosen: non-contiguous IDs must resolve to the
// right task for wire pacing (taskInputSize previously indexed the
// task slice by ID, silently returning the wrong s — or panicking —
// whenever IDs were not 0..n-1).
func TestNonContiguousTaskIDs(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	job := &workload.Job{
		Name: "sparse",
		Tasks: []workload.Task{
			{ID: 100, InputBytes: 1111, OutputBytes: 1, STBSeconds: 1},
			{ID: 5, InputBytes: 2222, OutputBytes: 1, STBSeconds: 1},
			{ID: 31, InputBytes: 3333, OutputBytes: 1, STBSeconds: 1},
		},
	}
	h, err := b.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{100: 1111, 5: 2222, 31: 3333}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: uint64(i + 1)}).(*TaskAssign)
		if !ok {
			t.Fatalf("request %d got no assignment", i)
		}
		if seen[a.TaskID] {
			t.Fatalf("task %d assigned twice", a.TaskID)
		}
		seen[a.TaskID] = true
		if got := taskInputSize(b, a); got != want[a.TaskID] {
			t.Fatalf("task %d input size = %d, want %d", a.TaskID, got, want[a.TaskID])
		}
		b.HandleResult(&TaskResult{NodeID: uint64(i + 1), JobID: a.JobID, TaskID: a.TaskID, Payload: []byte("r")})
	}
	if _, done := h.Done(); !done {
		t.Fatal("sparse-ID job did not complete")
	}
	if len(h.Results()) != 3 {
		t.Fatalf("results = %d", len(h.Results()))
	}
}

func TestSubmitRejectsBadTaskIDs(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	if _, err := b.Submit(&workload.Job{Tasks: []workload.Task{{ID: -1, STBSeconds: 1}}}); err == nil {
		t.Fatal("negative task ID accepted")
	}
	if _, err := b.Submit(&workload.Job{Tasks: []workload.Task{
		{ID: 3, STBSeconds: 1}, {ID: 3, STBSeconds: 1},
	}}); err == nil {
		t.Fatal("duplicate task IDs accepted")
	}
}

// taskInputSize falls back to the payload length for unknown jobs and
// unknown task IDs instead of misreading another task's size.
func TestTaskInputSizeUnknownFallsBack(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk)
	if _, err := b.Submit(mkJob(t, 2, 1)); err != nil {
		t.Fatal(err)
	}
	a := &TaskAssign{JobID: 99, TaskID: 0, Payload: []byte("xyz")}
	if got := taskInputSize(b, a); got != 3 {
		t.Fatalf("unknown job size = %d, want payload length 3", got)
	}
	a = &TaskAssign{JobID: 1, TaskID: 12345, Payload: []byte("xy")}
	if got := taskInputSize(b, a); got != 2 {
		t.Fatalf("unknown task size = %d, want payload length 2", got)
	}
}
