package backend

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"oddci/internal/span"
)

// Credibility-weighted quorum. Every node carries a trust score in
// integer milli-credits: a fresh node is worth credFullScore, each vote
// counts its holder's score at vote time, and a payload commits when its
// weighted support reaches quorum × credFullScore. With an all-honest
// population every score stays at credFullScore and the weighted
// arithmetic is exactly the old vote counting — the machinery only
// changes outcomes once nodes start losing conflicts.
//
// Scores move at commit time: votes on the committed payload earn
// credWinReward (capped at credFullScore), votes on a losing payload
// halve the holder's score, and an enforce-mode credential rejection
// halves it too. A node falling below Config.QuarantineBelow is
// quarantined: its outstanding leases are revoked and refunded, it no
// longer receives dispatches, and its future votes are dropped.
//
// Integer credits, not floats: weighted sums hit the quorum boundary
// exactly, so the commit decision never depends on rounding.
const (
	// credFullScore is a fresh (or fully rehabilitated) node's score.
	credFullScore = 1000
	// credWinReward is earned per committed vote, up to credFullScore.
	credWinReward = 100
	// defaultQuarantineBelow quarantines after two straight losses from
	// full trust (1000 → 500 → 250 < 300).
	defaultQuarantineBelow = 300
)

// nodeTrust is one node's running reputation.
type nodeTrust struct {
	score       int64
	wins        int64
	losses      int64
	rejections  int64 // enforce-mode credential rejections
	quarantined bool
}

// trustTracker holds per-node credibility across every task and shard.
// Its mutex is never held while a shard lock is held (and vice versa):
// vote weights are snapshotted before the shard section, and commit-time
// verdicts are applied after it.
type trustTracker struct {
	secret []byte        // credential MAC secret (nil when CredOff)
	seq    atomic.Uint64 // credential issue sequence

	mu    sync.Mutex
	nodes map[uint64]*nodeTrust
	// quarCount mirrors the number of quarantined nodes so the dispatch
	// hot path can skip the map lookup entirely while it is zero.
	quarCount atomic.Int64
}

func newTrustTracker(secret []byte) *trustTracker {
	return &trustTracker{secret: secret, nodes: make(map[uint64]*nodeTrust)}
}

// get returns node's entry, creating it at full trust. Called with mu
// held.
func (t *trustTracker) get(node uint64) *nodeTrust {
	nt := t.nodes[node]
	if nt == nil {
		nt = &nodeTrust{score: credFullScore}
		t.nodes[node] = nt
	}
	return nt
}

// weight returns node's current vote weight.
func (t *trustTracker) weight(node uint64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if nt := t.nodes[node]; nt != nil {
		return nt.score
	}
	return credFullScore
}

// quarantined reports whether node is quarantined. The atomic pre-check
// keeps the all-honest path a single load.
func (t *trustTracker) quarantined(node uint64) bool {
	if t == nil || t.quarCount.Load() == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := t.nodes[node]
	return nt != nil && nt.quarantined
}

// voteWeight returns the weight res-submitting node n's vote should
// carry, credFullScore when credibility tracking is off.
func (b *Backend) voteWeight(n uint64) int64 {
	if b.trust == nil {
		return credFullScore
	}
	return b.trust.weight(n)
}

// quorumWeight is the weighted-support threshold for committing.
func (b *Backend) quorumWeight() int64 {
	return int64(b.cfg.quorum()) * credFullScore
}

// penalize halves node's score (credential rejection or lost conflict)
// and reports whether this crossing quarantined it. Called with mu NOT
// held.
func (t *trustTracker) penalize(node uint64, rejection bool, below int64) (quarantinedNow bool, score int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := t.get(node)
	nt.score /= 2
	if rejection {
		nt.rejections++
	} else {
		nt.losses++
	}
	if !nt.quarantined && below > 0 && nt.score < below {
		nt.quarantined = true
		t.quarCount.Add(1)
		return true, nt.score
	}
	return false, nt.score
}

// reward credits node for a committed vote.
func (t *trustTracker) reward(node uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := t.get(node)
	nt.wins++
	nt.score += credWinReward
	if nt.score > credFullScore {
		nt.score = credFullScore
	}
}

// applyVerdicts settles a committed task's votes: winners earn
// reward, losers are penalized, and any node crossing the quarantine
// threshold is quarantined (leases revoked, metrics and span emitted).
// Called after the committing shard section released its lock.
func (b *Backend) applyVerdicts(winner []byte, votes []vote) {
	if b.trust == nil {
		return
	}
	for _, v := range votes {
		if string(v.payload) == string(winner) {
			b.trust.reward(v.node)
			continue
		}
		b.met.byzLosses.Inc()
		if quarantinedNow, score := b.trust.penalize(v.node, false, b.cfg.QuarantineBelow); quarantinedNow {
			b.quarantineNode(v.node, score)
		}
	}
}

// penalizeRejection settles an enforce-mode credential rejection.
func (b *Backend) penalizeRejection(node uint64) {
	if b.trust == nil {
		return
	}
	if quarantinedNow, score := b.trust.penalize(node, true, b.cfg.QuarantineBelow); quarantinedNow {
		b.quarantineNode(node, score)
	}
}

// quarantineNode completes a quarantine: counts it, force-records the
// evidence span, and revokes the node's outstanding leases so its
// in-flight slots return to honest nodes instead of wedging their tasks
// until lease expiry.
func (b *Backend) quarantineNode(node uint64, score int64) {
	b.met.byzQuarantines.Inc()
	if b.cfg.Spans != nil {
		now := b.cfg.Clock.Now()
		// Quarantines are evidence, recorded even when no trace is
		// sampled — same policy as lease-expiry retries.
		b.cfg.Spans.ForceRecord(span.Data{
			Name:   "quarantine",
			Node:   "backend",
			Detail: fmt.Sprintf("node=%d score=%d", node, score),
			Start:  now,
			End:    now,
		})
	}
	b.revokeLeases(node)
}

// revokeLeases walks every shard and returns node's leased slots to the
// pool: each revoked lease is refunded against the replica budget (like
// an expiry) and requeued if its task still has a deficit. Heap entries
// invalidate lazily, exactly as results do.
func (b *Backend) revokeLeases(node uint64) {
	for _, s := range b.shards {
		s.mu.Lock()
		for _, ts := range s.active {
			if _, held := ts.outstanding[node]; !held {
				continue
			}
			delete(ts.outstanding, node)
			delete(ts.credSeqs, node)
			ts.launched--
			ts.retries++
			b.met.retried.Inc()
			ts.job.mu.Lock()
			ts.job.redispatch++
			ts.job.mu.Unlock()
			if b.slotDeficitLocked(ts) {
				s.ready.pushBack(ts)
				ts.queued++
				b.met.requeued.Inc()
			}
		}
		s.mu.Unlock()
	}
}

// Credibility returns node's current score in milli-credits
// (credFullScore = full trust). Untracked deployments and unseen nodes
// report full trust.
func (b *Backend) Credibility(node uint64) int64 {
	if b.trust == nil {
		return credFullScore
	}
	return b.trust.weight(node)
}

// Quarantined reports whether node is quarantined.
func (b *Backend) Quarantined(node uint64) bool {
	return b.trust.quarantined(node)
}

// QuarantinedNodes returns the quarantined node IDs, sorted.
func (b *Backend) QuarantinedNodes() []uint64 {
	if b.trust == nil {
		return nil
	}
	b.trust.mu.Lock()
	var out []uint64
	for id, nt := range b.trust.nodes {
		if nt.quarantined {
			out = append(out, id)
		}
	}
	b.trust.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QuarantinedCount returns the number of quarantined nodes in O(1).
func (b *Backend) QuarantinedCount() int {
	if b.trust == nil {
		return 0
	}
	return int(b.trust.quarCount.Load())
}

// issueCredential mints the credential for one dispatch and records its
// seq as the node's live binding on ts. Called with ts's shard lock
// held; the tracker's seq is atomic so no tracker lock is needed.
func (b *Backend) issueCredentialLocked(ts *taskState, node uint64) []byte {
	seq := b.trust.seq.Add(1)
	if ts.credSeqs == nil {
		ts.credSeqs = make(map[uint64]uint64, 2)
	}
	ts.credSeqs[node] = seq
	return AppendCredential(nil, b.trust.secret, seq, node, ts.key.job, ts.key.task)
}
