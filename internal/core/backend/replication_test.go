package backend

import (
	"fmt"
	"testing"
	"time"

	"oddci/internal/simtime"
	"oddci/internal/workload"
)

func newReplicatedBackend(t *testing.T, clk simtime.Clock, r int) *Backend {
	t.Helper()
	b, err := New(Config{Clock: clk, Replication: r,
		RetryAfter: 5 * time.Second, LeaseBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runVoters drives one task through n distinct nodes, each answering
// with answer(node).
func runVoters(b *Backend, nodes []uint64, answer func(node uint64) []byte) int {
	served := 0
	for _, n := range nodes {
		a, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign)
		if !ok {
			continue
		}
		served++
		b.HandleResult(&TaskResult{NodeID: n, JobID: a.JobID, TaskID: a.TaskID,
			Payload: answer(n)})
	}
	return served
}

func TestReplicationQuorumCommitsMajority(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Three replicas of the one task go to three distinct nodes; node 2
	// is byzantine.
	runVoters(b, []uint64{1, 2, 3}, func(n uint64) []byte {
		if n == 2 {
			return []byte("WRONG")
		}
		return []byte("right")
	})
	if _, done := h.Done(); !done {
		t.Fatal("majority did not commit")
	}
	if got := h.Results()[0]; string(got) != "right" {
		t.Fatalf("committed %q", got)
	}
	if b.Conflicts != 1 {
		t.Fatalf("conflicts = %d", b.Conflicts)
	}
	if b.Unresolved != 0 {
		t.Fatalf("unresolved = %d", b.Unresolved)
	}
}

func TestReplicationNoDoubleAssignSameNode(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	if _, err := b.Submit(mkJob(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// The same node asks three times: only the first succeeds.
	assigns := 0
	for i := 0; i < 3; i++ {
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: 7}).(*TaskAssign); ok {
			assigns++
		}
	}
	if assigns != 1 {
		t.Fatalf("node got %d replicas of one task", assigns)
	}
}

func TestReplicationConflictTriggersExtraReplica(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Replicas split 1/1/1 three ways: no quorum from the first wave.
	runVoters(b, []uint64{1, 2, 3}, func(n uint64) []byte {
		return []byte(fmt.Sprintf("answer-%d", n))
	})
	if _, done := h.Done(); done {
		t.Fatal("committed without a quorum")
	}
	// Extra replicas (budget 2×3 = 6) break the tie.
	runVoters(b, []uint64{4, 5, 6}, func(uint64) []byte { return []byte("answer-1") })
	if _, done := h.Done(); !done {
		t.Fatal("extra replicas did not commit")
	}
	if got := h.Results()[0]; string(got) != "answer-1" {
		t.Fatalf("committed %q", got)
	}
}

func TestReplicationExhaustedCommitsPlurality(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3) // MaxReplicas = 6
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Every node disagrees: 6 replicas, all distinct.
	nodes := []uint64{1, 2, 3, 4, 5, 6}
	served := runVoters(b, nodes, func(n uint64) []byte {
		return []byte(fmt.Sprintf("answer-%d", n))
	})
	if served != 6 {
		t.Fatalf("served %d replicas, want 6", served)
	}
	if _, done := h.Done(); !done {
		t.Fatal("exhausted task did not commit plurality")
	}
	if b.Unresolved != 1 {
		t.Fatalf("unresolved = %d", b.Unresolved)
	}
}

func TestReplicationLeaseExpiryAcrossReplicas(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newReplicatedBackend(t, clk, 3)
	h, err := b.Submit(mkJob(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 1..3 take the replicas; node 2 dies.
	for _, n := range []uint64{1, 2, 3} {
		if _, ok := b.HandleRequest(&TaskRequest{NodeID: n}).(*TaskAssign); !ok {
			t.Fatalf("node %d not served", n)
		}
	}
	a1 := &TaskResult{NodeID: 1, JobID: 1, TaskID: 0, Payload: []byte("ok")}
	a3 := &TaskResult{NodeID: 3, JobID: 1, TaskID: 0, Payload: []byte("ok")}
	b.HandleResult(a1)
	b.HandleResult(a3)
	// Two matching votes of three: quorum reached without node 2.
	if _, done := h.Done(); !done {
		t.Fatal("quorum of 2/3 did not commit")
	}
	// Node 2's late result is ignored.
	b.HandleResult(&TaskResult{NodeID: 2, JobID: 1, TaskID: 0, Payload: []byte("late-WRONG")})
	if got := h.Results()[0]; string(got) != "ok" {
		t.Fatalf("late result overwrote commit: %q", got)
	}
}

func TestReplicationDefaultSingleUnchanged(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b := newBackend(t, clk) // Replication 1
	h, _ := b.Submit(mkJob(t, 2, 1))
	runVoters(b, []uint64{1, 2}, func(uint64) []byte { return []byte("x") })
	if _, done := h.Done(); !done {
		t.Fatal("single-replication flow broken")
	}
}

// Full-stack: a fleet with a byzantine minority still yields correct
// results through redundant execution.
func TestReplicationEndToEndWithByzantineNodes(t *testing.T) {
	clk := simtime.NewSim(epoch)
	b, err := New(Config{Clock: clk, Replication: 3, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.Generator{Name: "byz", Tasks: 30, InputBytes: 64, OutputBytes: 32, MeanSeconds: 1}
	job, _ := g.Generate()
	h, err := b.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	b.SetDraining(true)
	const nodes = 12
	for n := uint64(1); n <= nodes; n++ {
		n := n
		byzantine := n <= 2 // 2 of 12 lie
		clk.Go(func() {
			ep, hangup := dial(clk, b)
			defer hangup()
			for {
				ep.Send("backend", &TaskRequest{NodeID: n}, RequestWireSize)
				pkt, err := ep.Recv()
				if err != nil {
					return
				}
				switch m := pkt.Payload.(type) {
				case *TaskAssign:
					clk.Sleep(time.Duration(m.RefSeconds * float64(time.Second)))
					payload := []byte(fmt.Sprintf("task-%d-ok", m.TaskID))
					if byzantine {
						// Distinct garbage per liar: colluding liars with
						// identical payloads can outvote honest nodes —
						// the known limit of majority voting.
						payload = []byte(fmt.Sprintf("garbage-%d-%d", n, m.TaskID))
					}
					ep.Send("backend", &TaskResult{NodeID: n, JobID: m.JobID,
						TaskID: m.TaskID, Payload: payload}, 32)
				case *NoTask:
					if m.Done {
						return
					}
					clk.Sleep(m.RetryAfter)
				}
			}
		})
	}
	clk.Wait()
	if _, done := h.Done(); !done {
		t.Fatal("job incomplete")
	}
	for id, payload := range h.Results() {
		want := fmt.Sprintf("task-%d-ok", id)
		if string(payload) != want {
			t.Fatalf("task %d committed %q, want %q", id, payload, want)
		}
	}
	if b.Unresolved != 0 {
		t.Fatalf("unresolved = %d; majority should always win here", b.Unresolved)
	}
}
