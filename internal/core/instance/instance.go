// Package instance holds the types shared across the OddCI control
// plane: instance identifiers, device profiles, and the requirement
// matching a PNA performs against a wakeup message ("the PNA assesses
// its own compliance with the requirements present in the message").
package instance

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ID identifies one OddCI instance.
type ID uint64

// DeviceClass partitions the heterogeneous device population reachable
// by a broadcast network.
type DeviceClass uint8

// Device classes from §3 of the paper.
const (
	AnyClass DeviceClass = iota
	ClassSTB
	ClassMobile
	ClassDesktop
	ClassConsole
)

// String implements fmt.Stringer.
func (c DeviceClass) String() string {
	switch c {
	case AnyClass:
		return "any"
	case ClassSTB:
		return "stb"
	case ClassMobile:
		return "mobile"
	case ClassDesktop:
		return "desktop"
	case ClassConsole:
		return "console"
	default:
		return fmt.Sprintf("DeviceClass(%d)", uint8(c))
	}
}

// DeviceProfile describes one processing node's capabilities.
type DeviceProfile struct {
	Class DeviceClass
	// MemMB is the device's memory in megabytes (the prototype STB had
	// 256 MB).
	MemMB uint32
	// CPUScore is relative compute capability; 100 is the reference STB.
	CPUScore uint32
}

// Requirements is the compliance filter a wakeup message carries.
type Requirements struct {
	// Class restricts the device class (AnyClass accepts all).
	Class DeviceClass
	// MinMemMB and MinCPUScore set floors (0 = no floor).
	MinMemMB    uint32
	MinCPUScore uint32
}

// Match reports whether a device satisfies the requirements.
func (r Requirements) Match(p DeviceProfile) bool {
	if r.Class != AnyClass && r.Class != p.Class {
		return false
	}
	if p.MemMB < r.MinMemMB {
		return false
	}
	if p.CPUScore < r.MinCPUScore {
		return false
	}
	return true
}

// encodedLen is the wire size of Requirements and DeviceProfile.
const encodedLen = 9

// Encode appends the wire form of r to b.
func (r Requirements) Encode(b []byte) []byte {
	b = append(b, byte(r.Class))
	b = binary.BigEndian.AppendUint32(b, r.MinMemMB)
	b = binary.BigEndian.AppendUint32(b, r.MinCPUScore)
	return b
}

// DecodeRequirements reads a Requirements from the front of b, returning
// the remainder.
func DecodeRequirements(b []byte) (Requirements, []byte, error) {
	if len(b) < encodedLen {
		return Requirements{}, nil, errors.New("instance: truncated requirements")
	}
	r := Requirements{
		Class:       DeviceClass(b[0]),
		MinMemMB:    binary.BigEndian.Uint32(b[1:]),
		MinCPUScore: binary.BigEndian.Uint32(b[5:]),
	}
	return r, b[encodedLen:], nil
}

// Encode appends the wire form of p to b.
func (p DeviceProfile) Encode(b []byte) []byte {
	b = append(b, byte(p.Class))
	b = binary.BigEndian.AppendUint32(b, p.MemMB)
	b = binary.BigEndian.AppendUint32(b, p.CPUScore)
	return b
}

// DecodeProfile reads a DeviceProfile from the front of b, returning the
// remainder.
func DecodeProfile(b []byte) (DeviceProfile, []byte, error) {
	if len(b) < encodedLen {
		return DeviceProfile{}, nil, errors.New("instance: truncated profile")
	}
	p := DeviceProfile{
		Class:    DeviceClass(b[0]),
		MemMB:    binary.BigEndian.Uint32(b[1:]),
		CPUScore: binary.BigEndian.Uint32(b[5:]),
	}
	return p, b[encodedLen:], nil
}
