package instance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchSemantics(t *testing.T) {
	p := DeviceProfile{Class: ClassMobile, MemMB: 64, CPUScore: 40}
	if !(Requirements{}).Match(p) {
		t.Fatal("empty requirements must match everything")
	}
	if (Requirements{Class: ClassSTB}).Match(p) {
		t.Fatal("class mismatch accepted")
	}
	if (Requirements{MinMemMB: 65}).Match(p) {
		t.Fatal("memory floor violated")
	}
	if !(Requirements{Class: ClassMobile, MinMemMB: 64, MinCPUScore: 40}).Match(p) {
		t.Fatal("exact floors rejected")
	}
}

// Property: requirements and profiles round-trip on the wire, and Match
// is invariant under encoding.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Requirements{
			Class:       DeviceClass(rng.Intn(5)),
			MinMemMB:    rng.Uint32(),
			MinCPUScore: rng.Uint32(),
		}
		p := DeviceProfile{
			Class:    DeviceClass(rng.Intn(5)),
			MemMB:    rng.Uint32(),
			CPUScore: rng.Uint32(),
		}
		rb := r.Encode(nil)
		pb := p.Encode(nil)
		r2, rest, err := DecodeRequirements(rb)
		if err != nil || len(rest) != 0 || r2 != r {
			return false
		}
		p2, rest, err := DecodeProfile(pb)
		if err != nil || len(rest) != 0 || p2 != p {
			return false
		}
		return r.Match(p) == r2.Match(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, _, err := DecodeRequirements(make([]byte, 8)); err == nil {
		t.Fatal("truncated requirements accepted")
	}
	if _, _, err := DecodeProfile(nil); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestDeviceClassString(t *testing.T) {
	for c, want := range map[DeviceClass]string{
		AnyClass: "any", ClassSTB: "stb", ClassMobile: "mobile",
		ClassDesktop: "desktop", ClassConsole: "console",
	} {
		if c.String() != want {
			t.Errorf("%d → %q", uint8(c), c.String())
		}
	}
	if DeviceClass(200).String() == "" {
		t.Fatal("unknown class empty")
	}
}
