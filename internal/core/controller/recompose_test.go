package controller

import (
	"errors"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/instance"
)

// Recompose replaces an instance's image in place: busy members keep
// working (carried by the OnImageUpdate hook downstream), idle nodes
// never roll against the bump (probability 0), and the sequence
// advances so receivers re-evaluate.
func TestRecomposeSemantics(t *testing.T) {
	var hook []struct {
		id  instance.ID
		img *appimage.Image
	}
	type wake struct {
		seq  uint32
		prob float64
	}
	var wakes []wake
	r := newRigWith(t, nil, func(cfg *Config) {
		cfg.OnImageUpdate = func(id instance.ID, img *appimage.Image) {
			hook = append(hook, struct {
				id  instance.ID
				img *appimage.Image
			}{id, img})
		}
		cfg.OnWakeup = func(_ instance.ID, seq uint32, prob float64) {
			wakes = append(wakes, wake{seq, prob})
		}
	})
	defer r.ctrl.Stop()

	for n := uint64(1); n <= 8; n++ {
		r.heartbeatIdle(n)
	}
	id, err := r.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 4, InitialProbability: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(time.Second)
	for n := uint64(1); n <= 4; n++ {
		r.heartbeatBusy(n, id)
	}

	if err := r.ctrl.Recompose(id, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := r.ctrl.Recompose(99, testImage(t)); err == nil {
		t.Fatal("unknown instance accepted")
	}

	img2 := testImage(t)
	img2.Version = 2
	img2.Payload[0] ^= 0xFF
	if err := r.ctrl.Recompose(id, img2); err != nil {
		t.Fatal(err)
	}
	if len(hook) != 1 || hook[0].id != id || hook[0].img != img2 {
		t.Fatalf("OnImageUpdate saw %+v, want one call for instance %d", hook, id)
	}
	st, err := r.ctrl.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wakeups != 2 {
		t.Fatalf("wakeups = %d, want 2 (create + recompose)", st.Wakeups)
	}
	// Busy members survive the recomposition: no reset was issued.
	if st.Busy != 4 || st.Resets != 0 {
		t.Fatalf("busy=%d resets=%d after recompose, want 4/0", st.Busy, st.Resets)
	}
	// A recomposition is a content update, not a recruitment round: the
	// OnWakeup recruitment hook fires only for the original create —
	// downstream wakeup accounting (the federation's duplicate-wakeup
	// gate) never sees recompositions.
	if len(wakes) != 1 {
		t.Fatalf("observed %d recruitment wakeups, want the create only", len(wakes))
	}
	if wakes[0].seq != 1 || wakes[0].prob != 1 {
		t.Fatalf("create wakeup seq=%d prob=%v, want 1/1", wakes[0].seq, wakes[0].prob)
	}

	// A destroyed instance refuses recomposition.
	if err := r.ctrl.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Recompose(id, img2); !errors.Is(err, ErrInstanceGone) {
		t.Fatalf("recompose after destroy: %v, want ErrInstanceGone", err)
	}
}

func TestRecomposeRequiresStarted(t *testing.T) {
	r := newRigWith(t, nil, nil)
	r.ctrl.Stop()
	r.clk.Wait()
	if err := r.ctrl.Recompose(1, testImage(t)); err == nil {
		t.Fatal("stopped controller accepted recompose")
	}
}

func TestLifecycleKindString(t *testing.T) {
	for k, want := range map[LifecycleKind]string{
		LifecycleCreated:      "created",
		LifecycleRecomposed:   "recomposed",
		LifecycleTrimmed:      "trimmed",
		LifecycleDestroyed:    "destroyed",
		LifecycleGCed:         "gc",
		LifecycleRefreshRetry: "refresh-retry",
	} {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := LifecycleKind(250).String(); got == "" {
		t.Fatal("unknown kind stringifies empty")
	}
}
