package controller

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oddci/internal/netsim"
	"oddci/internal/obs"
)

func getObs(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHealthzFlipsWhenRefreshStuck drives the Controller into the
// refresh-retry backoff with an injected head-end fault and checks the
// /healthz endpoint flips to 503 at the stuck threshold, then recovers
// to 200 once a retry lands.
func TestHealthzFlipsWhenRefreshStuck(t *testing.T) {
	reg := obs.NewRegistry()
	plan := netsim.NewFaultPlan(nil, 0, 0)
	r := newFlakyRig(t, plan, func(cfg *Config) {
		cfg.Obs = reg
		cfg.RefreshRetryBase = 2 * time.Second
		cfg.RefreshRetryMax = 8 * time.Second
	})
	srv := httptest.NewServer(obs.NewHandler(reg, nil, nil))
	defer srv.Close()

	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second)
	if code, body := getObs(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while healthy = %d %q, want 200", code, body)
	}

	// Destroy with the next three updates failing: the immediate refresh
	// plus the +2s and +6s retries fail, reaching the stuck threshold
	// (RefreshStuckAfter defaults to 3) while the +14s retry is pending.
	plan.FailNext(3)
	if err := r.ctrl.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	r.advance(10 * time.Second)
	if pending, attempts := r.ctrl.RefreshPending(); !pending || attempts < 3 {
		t.Fatalf("pending=%v attempts=%d, want stuck refresh", pending, attempts)
	}
	code, body := getObs(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while stuck = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "carousel-refresh:") {
		t.Fatalf("/healthz body %q, want carousel-refresh failure line", body)
	}

	// The 14s retry succeeds; health recovers.
	r.advance(10 * time.Second)
	if pending, _ := r.ctrl.RefreshPending(); pending {
		t.Fatal("refresh did not recover")
	}
	if code, body := getObs(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after recovery = %d %q, want 200", code, body)
	}

	// The same run's telemetry is visible on /metrics in valid
	// Prometheus exposition format.
	code, body = getObs(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, want := range []string{
		"# TYPE oddci_controller_refresh_retries_total counter",
		"oddci_controller_refresh_retries_total 3",
		"oddci_controller_refresh_recoveries_total 1",
		"oddci_controller_instances_destroyed_total 1",
		"# TYPE oddci_controller_wakeup_to_join_seconds histogram",
		"oddci_controller_wakeup_to_join_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// TestControllerMetricsCountHeartbeatsAndJoins exercises the hot-path
// instrumentation: heartbeat counters, node gauges, and the
// wakeup-to-first-join histogram.
func TestControllerMetricsCountHeartbeatsAndJoins(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRigWith(t, nil, func(cfg *Config) { cfg.Obs = reg })
	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(2 * time.Second)
	r.heartbeatBusy(1, id)
	r.heartbeatBusy(2, id)
	r.heartbeatIdle(3)

	if got, _ := reg.Value("oddci_controller_heartbeats_total"); got != 3 {
		t.Fatalf("heartbeats_total = %g, want 3", got)
	}
	if got, _ := reg.Value("oddci_controller_nodes"); got != 3 {
		t.Fatalf("nodes gauge = %g, want 3", got)
	}
	if got, _ := reg.Value("oddci_controller_nodes_idle"); got != 1 {
		t.Fatalf("nodes_idle gauge = %g, want 1", got)
	}
	if got, _ := reg.Value("oddci_controller_instances_live"); got != 1 {
		t.Fatalf("instances_live gauge = %g, want 1", got)
	}
	// Two busy members against target 2: deficit zero.
	if got, _ := reg.Value("oddci_controller_size_deficit"); got != 0 {
		t.Fatalf("size_deficit gauge = %g, want 0", got)
	}
	// The first busy heartbeat after the wakeup records one
	// wakeup-to-join latency sample (2 s on the virtual clock).
	snap := reg.Snapshot().Histograms["oddci_controller_wakeup_to_join_seconds"]
	if snap.Count != 1 {
		t.Fatalf("wakeup_to_join count = %d, want 1", snap.Count)
	}
	if snap.Sum < 1.9 || snap.Sum > 2.1 {
		t.Fatalf("wakeup_to_join sum = %gs, want ~2s", snap.Sum)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}
